package flexflow

import (
	"errors"
	"os"
	"testing"
)

func exampleCampaign(seed uint64) CampaignConfig {
	nw, _ := Workload("Example")
	return CampaignConfig{Workload: nw, Scale: 8, Trials: 15, Seed: seed}
}

func TestCampaignDeterministic(t *testing.T) {
	a, err := RunCampaign(exampleCampaign(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCampaign(exampleCampaign(42))
	if err != nil {
		t.Fatal(err)
	}
	if a.Table() != b.Table() {
		t.Errorf("same seed produced different coverage tables:\n%s\nvs\n%s", a.Table(), b.Table())
	}
	c, err := RunCampaign(exampleCampaign(43))
	if err != nil {
		t.Fatal(err)
	}
	if a.Table() == c.Table() {
		t.Error("different seeds produced identical coverage tables")
	}
}

func TestCampaignAccounting(t *testing.T) {
	r, err := RunCampaign(exampleCampaign(7))
	if err != nil {
		t.Fatal(err)
	}
	nw, _ := Workload("Example")
	wantTrials := len(nw.ConvLayers()) * 15
	if r.Total.Trials != wantTrials {
		t.Errorf("total trials = %d, want %d", r.Total.Trials, wantTrials)
	}
	if r.Total.Masked+r.Total.Detected+r.Total.SDC != wantTrials {
		t.Errorf("taxonomy does not partition the trials: %+v", r.Total)
	}
	var bySite, byLayer int
	for _, tl := range r.BySite {
		bySite += tl.Trials
	}
	for _, row := range r.Rows {
		byLayer += row.Trials
		if row.Masked+row.Detected+row.SDC != row.Trials {
			t.Errorf("layer %s taxonomy does not partition: %+v", row.Layer, row.CampaignTally)
		}
	}
	if bySite != wantTrials || byLayer != wantTrials {
		t.Errorf("per-site (%d) / per-layer (%d) tallies disagree with total %d", bySite, byLayer, wantTrials)
	}
	// A campaign that never activates or never corrupts would be
	// vacuous; the Example workload at these sizes reliably produces
	// both fired faults and at least one non-masked outcome.
	if r.Total.Fired == 0 || r.Total.Detected+r.Total.SDC == 0 {
		t.Errorf("campaign looks vacuous: %+v", r.Total)
	}
}

func TestCampaignValidation(t *testing.T) {
	nw, _ := Workload("Example")
	bad := []CampaignConfig{
		{Workload: nil, Scale: 8, Trials: 5, Seed: 1},
		{Workload: nw, Scale: 0, Trials: 5, Seed: 1},
		{Workload: nw, Scale: 8, Trials: 0, Seed: 1},
		{Workload: &Network{Name: "empty", InputN: 1, InputS: 4}, Scale: 8, Trials: 5, Seed: 1},
	}
	for i, cfg := range bad {
		if _, err := RunCampaign(cfg); !errors.Is(err, ErrInvalidConfig) {
			t.Errorf("config %d: err = %v, want ErrInvalidConfig", i, err)
		}
	}
}

// TestCampaignArtifactCurrent pins the committed fault-coverage table:
// regenerating it with the same parameters must reproduce the file
// byte for byte (the acceptance criterion that a campaign seed is a
// reproducible artifact, not a one-off log).
func TestCampaignArtifactCurrent(t *testing.T) {
	if testing.Short() {
		t.Skip("LeNet-5 campaign in -short mode")
	}
	want, err := os.ReadFile("results/fault_coverage.txt")
	if err != nil {
		t.Skipf("no committed artifact: %v", err)
	}
	nw, _ := Workload("LeNet-5")
	r, err := RunCampaign(CampaignConfig{Workload: nw, Scale: 16, Trials: 25, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if r.Table() != string(want) {
		t.Error("results/fault_coverage.txt is stale; regenerate with: go run ./cmd/flexfault -out results/fault_coverage.txt -workload LeNet-5 -scale 16 -n 25 -seed 7")
	}
}
