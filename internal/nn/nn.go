// Package nn describes CNN topologies at the level the accelerator
// architectures consume them: a sequence of CONV, POOL and FC layers
// with the four shape parameters the paper analyzes — M (output feature
// maps), N (input feature maps), S (output feature-map size) and K
// (kernel size).
package nn

import (
	"errors"
	"fmt"

	"flexflow/internal/tensor"
)

// LayerKind discriminates the three operation-layer types of a CNN
// (paper §2.1).
type LayerKind int

const (
	// Conv is a convolutional layer.
	Conv LayerKind = iota
	// Pool is a subsampling layer.
	Pool
	// FC is a classifier (fully connected) layer.
	FC
)

// String returns the paper's abbreviation for the layer kind.
func (k LayerKind) String() string {
	switch k {
	case Conv:
		return "CONV"
	case Pool:
		return "POOL"
	case FC:
		return "FC"
	default:
		return "?"
	}
}

// ConvLayer is one convolutional layer characterized by the paper's four
// object-related parameters (Fig. 3). InH/InW are derived input sizes.
type ConvLayer struct {
	Name string
	M    int // number of output feature maps
	N    int // number of input feature maps
	S    int // output feature map size (S×S neurons)
	K    int // kernel size (K×K synapses)

	// Stride is the convolution stride; zero means 1. The paper's
	// dataflow analysis assumes unit stride — strided layers (e.g.
	// AlexNet's real C1) are an extension supported by the golden
	// reference and the FlexFlow engine; the rigid baselines keep
	// their unit-stride contract.
	Stride int

	// ReLU applies the rectifier to the layer's outputs. Activations
	// ride the lightweight ALU path after the convolution array (the
	// same unit that pools), so they change values but neither cycles
	// nor dataflow.
	ReLU bool
}

// Str returns the effective stride (Stride, defaulting to 1).
func (l ConvLayer) Str() int {
	if l.Stride <= 1 {
		return 1
	}
	return l.Stride
}

// InSize returns the input feature-map edge length for valid
// convolution: (S-1)·stride + K.
func (l ConvLayer) InSize() int { return (l.S-1)*l.Str() + l.K }

// MACs returns the number of multiply-accumulate operations in the
// layer: M·N·S²·K².
func (l ConvLayer) MACs() int64 {
	return int64(l.M) * int64(l.N) * int64(l.S) * int64(l.S) * int64(l.K) * int64(l.K)
}

// Ops returns the operation count used for GOPS reporting (2 ops per
// MAC: one multiply + one add), the convention of the paper's GOPS
// figures.
func (l ConvLayer) Ops() int64 { return 2 * l.MACs() }

// InputWords and related counters size the data objects in 16-bit words.
func (l ConvLayer) InputWords() int64 {
	in := int64(l.InSize())
	return int64(l.N) * in * in
}

// OutputWords returns the number of output neurons (words).
func (l ConvLayer) OutputWords() int64 {
	return int64(l.M) * int64(l.S) * int64(l.S)
}

// KernelWords returns the number of synapses (words).
func (l ConvLayer) KernelWords() int64 {
	return int64(l.M) * int64(l.N) * int64(l.K) * int64(l.K)
}

// Validate reports whether the layer shape is well formed.
func (l ConvLayer) Validate() error {
	if l.M <= 0 || l.N <= 0 || l.S <= 0 || l.K <= 0 {
		return fmt.Errorf("nn: layer %s has non-positive shape M=%d N=%d S=%d K=%d", l.Name, l.M, l.N, l.S, l.K)
	}
	if l.Stride < 0 {
		return fmt.Errorf("nn: layer %s has negative stride %d", l.Name, l.Stride)
	}
	return nil
}

// String renders the layer in the Table 1 style: "N×M@K×K → M@S×S".
func (l ConvLayer) String() string {
	return fmt.Sprintf("%s: %d×%d@%d×%d -> %d@%d×%d", l.Name, l.N, l.M, l.K, l.K, l.M, l.S, l.S)
}

// PoolLayer is a subsampling layer with a P×P window and stride P.
type PoolLayer struct {
	Name string
	N    int // feature map count (unchanged by pooling)
	In   int // input feature-map edge length
	P    int // pooling window edge
	Kind tensor.PoolKind
}

// OutSize returns the pooled feature-map edge length.
func (l PoolLayer) OutSize() int { return l.In / l.P }

// Validate reports whether the pooling layer is well formed. The
// window need not divide the input edge: pooling truncates (In/P),
// which is how several Table 1 workloads chain.
func (l PoolLayer) Validate() error {
	if l.N <= 0 || l.In <= 0 || l.P <= 0 {
		return fmt.Errorf("nn: pool %s has non-positive shape N=%d In=%d P=%d", l.Name, l.N, l.In, l.P)
	}
	if l.OutSize() < 1 {
		return fmt.Errorf("nn: pool %s window %d swallows the whole %d-wide input", l.Name, l.P, l.In)
	}
	return nil
}

// Ops returns the comparison/add operation count of the pooling layer.
func (l PoolLayer) Ops() int64 {
	out := int64(l.OutSize())
	return int64(l.N) * out * out * int64(l.P) * int64(l.P)
}

// FCLayer is a classifier layer mapping In inputs to Out outputs.
type FCLayer struct {
	Name string
	In   int
	Out  int
}

// Ops returns the operation count (2 per MAC).
func (l FCLayer) Ops() int64 { return 2 * int64(l.In) * int64(l.Out) }

// Validate reports whether the classifier layer is well formed.
func (l FCLayer) Validate() error {
	if l.In <= 0 || l.Out <= 0 {
		return fmt.Errorf("nn: classifier %s has non-positive shape In=%d Out=%d", l.Name, l.In, l.Out)
	}
	return nil
}

// Layer is one element of a network: exactly one of the three layer
// structs, discriminated by Kind.
type Layer struct {
	Kind LayerKind
	Conv ConvLayer
	Pool PoolLayer
	FC   FCLayer
}

// Network is an ordered CNN topology plus the input stack shape.
type Network struct {
	Name   string
	InputN int // input feature maps (channels)
	InputS int // input edge length
	Layers []Layer
}

// ConvLayers returns just the convolutional layers, in order. The
// paper's evaluation (like most accelerator papers of its era) focuses
// on CONV layers, which take >90% of computation.
func (nw *Network) ConvLayers() []ConvLayer {
	// Exact-size allocation: this runs once per model evaluation on the
	// analytic fast path, so append growth (log₂ n re-allocations) is
	// measurable churn the hotalloc budget charges for.
	n := 0
	for _, l := range nw.Layers {
		if l.Kind == Conv {
			n++
		}
	}
	out := make([]ConvLayer, 0, n)
	for _, l := range nw.Layers {
		if l.Kind == Conv {
			out = append(out, l.Conv)
		}
	}
	return out
}

// TotalConvOps returns the summed operation count of all CONV layers.
func (nw *Network) TotalConvOps() int64 {
	var total int64
	for _, l := range nw.ConvLayers() {
		total += l.Ops()
	}
	return total
}

// ErrShapeMismatch is returned by Validate when consecutive layers do
// not agree on intermediate tensor shapes.
var ErrShapeMismatch = errors.New("nn: layer shape mismatch")

// Validate checks that the network's layers chain: each layer's input
// shape must equal the previous layer's output shape.
func (nw *Network) Validate() error {
	if nw == nil {
		return errors.New("nn: nil network")
	}
	if nw.InputN <= 0 || nw.InputS <= 0 {
		return fmt.Errorf("nn: network %s has non-positive input shape %d@%d×%d", nw.Name, nw.InputN, nw.InputS, nw.InputS)
	}
	n, s := nw.InputN, nw.InputS
	for idx, l := range nw.Layers {
		switch l.Kind {
		case Conv:
			c := l.Conv
			if err := c.Validate(); err != nil {
				return err
			}
			if c.N != n {
				return fmt.Errorf("%w: %s expects %d input maps, previous layer provides %d", ErrShapeMismatch, c.Name, c.N, n)
			}
			if c.InSize() != s {
				return fmt.Errorf("%w: %s expects %d×%d input, previous layer provides %d×%d", ErrShapeMismatch, c.Name, c.InSize(), c.InSize(), s, s)
			}
			n, s = c.M, c.S
		case Pool:
			p := l.Pool
			if err := p.Validate(); err != nil {
				return err
			}
			if p.N != n || p.In != s {
				return fmt.Errorf("%w: %s expects %d@%d×%d, previous layer provides %d@%d×%d", ErrShapeMismatch, p.Name, p.N, p.In, p.In, n, s, s)
			}
			s = p.OutSize()
		case FC:
			f := l.FC
			if err := f.Validate(); err != nil {
				return err
			}
			if f.In != n*s*s {
				return fmt.Errorf("%w: %s expects %d inputs, previous layer provides %d", ErrShapeMismatch, f.Name, f.In, n*s*s)
			}
			n, s = f.Out, 1
		default:
			return fmt.Errorf("nn: layer %d has unknown kind %d", idx, l.Kind)
		}
	}
	return nil
}

// NextConvAfter returns the CONV layer that follows the CONV layer at
// convIndex (counting only CONV layers), and the pooling window P
// between them (1 if none). ok is false for the last CONV layer. The
// compiler needs this to couple consecutive layers' unrolling factors
// (paper §5).
func (nw *Network) NextConvAfter(convIndex int) (next ConvLayer, poolP int, ok bool) {
	seen := -1
	poolP = 1
	collecting := false
	for _, l := range nw.Layers {
		switch l.Kind {
		case Conv:
			if collecting {
				return l.Conv, poolP, true
			}
			seen++
			if seen == convIndex {
				collecting = true
				poolP = 1
			}
		case Pool:
			if collecting {
				poolP = l.Pool.P
			}
		}
	}
	return ConvLayer{}, 1, false
}
