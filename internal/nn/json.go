package nn

import (
	"encoding/json"
	"fmt"

	"flexflow/internal/tensor"
)

// NetworkSpec is the JSON interchange form of a Network, so custom
// topologies can be fed to the tools without recompiling:
//
//	{
//	  "name": "custom",
//	  "input": {"maps": 1, "size": 32},
//	  "layers": [
//	    {"type": "conv", "name": "C1", "m": 6, "s": 28, "k": 5},
//	    {"type": "pool", "p": 2, "kind": "max"},
//	    {"type": "conv", "name": "C3", "m": 16, "s": 10, "k": 5},
//	    {"type": "fc", "out": 10}
//	  ]
//	}
//
// Shapes that follow from the previous layer (a CONV's input-map count,
// a POOL's map count and input size, an FC's input width) may be
// omitted and are inferred; anything given explicitly is checked by
// Network.Validate.
type NetworkSpec struct {
	Name  string      `json:"name"`
	Input InputSpec   `json:"input"`
	Specs []LayerSpec `json:"layers"`
}

// InputSpec describes the input stack.
type InputSpec struct {
	Maps int `json:"maps"`
	Size int `json:"size"`
}

// LayerSpec describes one layer; fields are by layer type.
type LayerSpec struct {
	Type string `json:"type"`
	Name string `json:"name,omitempty"`

	// conv
	M      int `json:"m,omitempty"`
	N      int `json:"n,omitempty"`
	S      int `json:"s,omitempty"`
	K      int `json:"k,omitempty"`
	Stride int `json:"stride,omitempty"`

	// pool
	P    int    `json:"p,omitempty"`
	Kind string `json:"kind,omitempty"`
	In   int    `json:"in,omitempty"` // pool input size / fc input width

	// fc
	Out int `json:"out,omitempty"`

	// pool map count (shared with conv's N semantically, kept separate
	// for clarity in specs)
	Maps int `json:"maps,omitempty"`
}

// ParseJSON decodes a NetworkSpec document into a validated Network,
// inferring omitted chained shapes.
func ParseJSON(data []byte) (*Network, error) {
	var spec NetworkSpec
	if err := json.Unmarshal(data, &spec); err != nil {
		return nil, fmt.Errorf("nn: bad network spec: %w", err)
	}
	if spec.Input.Maps <= 0 || spec.Input.Size <= 0 {
		return nil, fmt.Errorf("nn: spec %q needs positive input maps and size", spec.Name)
	}
	nw := &Network{Name: spec.Name, InputN: spec.Input.Maps, InputS: spec.Input.Size}
	curN, curS := spec.Input.Maps, spec.Input.Size
	for idx, ls := range spec.Specs {
		switch ls.Type {
		case "conv":
			c := ConvLayer{Name: ls.Name, M: ls.M, N: ls.N, S: ls.S, K: ls.K, Stride: ls.Stride}
			if c.Name == "" {
				c.Name = fmt.Sprintf("C%d", idx+1)
			}
			if c.N == 0 {
				c.N = curN
			}
			if c.S == 0 {
				// Infer the output size from the chained input; the
				// stride must tile the input exactly or the network
				// would fail validation anyway.
				if c.K <= 0 || curS < c.K || (curS-c.K)%c.Str() != 0 {
					return nil, fmt.Errorf("nn: spec layer %d: cannot infer S from input %d, K=%d, stride=%d", idx, curS, c.K, c.Str())
				}
				c.S = (curS-c.K)/c.Str() + 1
			}
			if err := c.Validate(); err != nil {
				return nil, fmt.Errorf("nn: spec layer %d: %w", idx, err)
			}
			nw.Layers = append(nw.Layers, Layer{Kind: Conv, Conv: c})
			curN, curS = c.M, c.S
		case "pool":
			p := PoolLayer{Name: ls.Name, N: ls.Maps, In: ls.In, P: ls.P}
			if p.Name == "" {
				p.Name = fmt.Sprintf("P%d", idx+1)
			}
			if p.N == 0 {
				p.N = curN
			}
			if p.In == 0 {
				p.In = curS
			}
			if p.P <= 0 {
				return nil, fmt.Errorf("nn: spec layer %d: pool needs positive p", idx)
			}
			switch ls.Kind {
			case "", "max":
				p.Kind = tensor.MaxPool
			case "avg":
				p.Kind = tensor.AvgPool
			default:
				return nil, fmt.Errorf("nn: spec layer %d: unknown pool kind %q", idx, ls.Kind)
			}
			nw.Layers = append(nw.Layers, Layer{Kind: Pool, Pool: p})
			curS = p.OutSize()
		case "fc":
			f := FCLayer{Name: ls.Name, In: ls.In, Out: ls.Out}
			if f.Name == "" {
				f.Name = fmt.Sprintf("F%d", idx+1)
			}
			if f.In == 0 {
				f.In = curN * curS * curS
			}
			if f.Out <= 0 {
				return nil, fmt.Errorf("nn: spec layer %d: fc needs positive out", idx)
			}
			nw.Layers = append(nw.Layers, Layer{Kind: FC, FC: f})
			curN, curS = f.Out, 1
		default:
			return nil, fmt.Errorf("nn: spec layer %d: unknown type %q", idx, ls.Type)
		}
	}
	if err := nw.Validate(); err != nil {
		return nil, err
	}
	return nw, nil
}

// ToJSON encodes a Network as a NetworkSpec document (fully explicit,
// no inferred fields).
func ToJSON(nw *Network) ([]byte, error) {
	spec := NetworkSpec{
		Name:  nw.Name,
		Input: InputSpec{Maps: nw.InputN, Size: nw.InputS},
	}
	for _, l := range nw.Layers {
		switch l.Kind {
		case Conv:
			spec.Specs = append(spec.Specs, LayerSpec{
				Type: "conv", Name: l.Conv.Name,
				M: l.Conv.M, N: l.Conv.N, S: l.Conv.S, K: l.Conv.K, Stride: l.Conv.Stride,
			})
		case Pool:
			kind := "max"
			if l.Pool.Kind == tensor.AvgPool {
				kind = "avg"
			}
			spec.Specs = append(spec.Specs, LayerSpec{
				Type: "pool", Name: l.Pool.Name,
				Maps: l.Pool.N, In: l.Pool.In, P: l.Pool.P, Kind: kind,
			})
		case FC:
			spec.Specs = append(spec.Specs, LayerSpec{
				Type: "fc", Name: l.FC.Name, In: l.FC.In, Out: l.FC.Out,
			})
		default:
			return nil, fmt.Errorf("nn: unknown layer kind %d", l.Kind)
		}
	}
	return json.MarshalIndent(spec, "", "  ")
}
