package nn

import (
	"strings"
	"testing"

	"flexflow/internal/tensor"
)

const lenetSpec = `{
  "name": "lenet",
  "input": {"maps": 1, "size": 32},
  "layers": [
    {"type": "conv", "name": "C1", "m": 6, "k": 5},
    {"type": "pool", "p": 2},
    {"type": "conv", "name": "C3", "m": 16, "k": 5},
    {"type": "fc", "out": 10}
  ]
}`

func TestParseJSONInfersShapes(t *testing.T) {
	nw, err := ParseJSON([]byte(lenetSpec))
	if err != nil {
		t.Fatal(err)
	}
	convs := nw.ConvLayers()
	if len(convs) != 2 {
		t.Fatalf("conv layers = %d", len(convs))
	}
	if convs[0].N != 1 || convs[0].S != 28 {
		t.Errorf("C1 inferred N=%d S=%d, want 1/28", convs[0].N, convs[0].S)
	}
	if convs[1].N != 6 || convs[1].S != 10 {
		t.Errorf("C3 inferred N=%d S=%d, want 6/10", convs[1].N, convs[1].S)
	}
	fc := nw.Layers[len(nw.Layers)-1].FC
	if fc.In != 16*10*10 || fc.Out != 10 {
		t.Errorf("FC inferred In=%d Out=%d", fc.In, fc.Out)
	}
	if err := nw.Validate(); err != nil {
		t.Errorf("parsed network invalid: %v", err)
	}
}

func TestParseJSONStride(t *testing.T) {
	spec := `{
	  "name": "strided",
	  "input": {"maps": 3, "size": 227},
	  "layers": [{"type": "conv", "m": 48, "k": 11, "stride": 4}]
	}`
	nw, err := ParseJSON([]byte(spec))
	if err != nil {
		t.Fatal(err)
	}
	c := nw.ConvLayers()[0]
	if c.S != 55 || c.Stride != 4 {
		t.Errorf("inferred S=%d stride=%d, want 55/4", c.S, c.Stride)
	}
}

func TestParseJSONAvgPool(t *testing.T) {
	spec := `{
	  "name": "p",
	  "input": {"maps": 2, "size": 8},
	  "layers": [{"type": "pool", "p": 2, "kind": "avg"}]
	}`
	nw, err := ParseJSON([]byte(spec))
	if err != nil {
		t.Fatal(err)
	}
	if nw.Layers[0].Pool.Kind != tensor.AvgPool {
		t.Error("avg pool kind not parsed")
	}
}

func TestParseJSONErrors(t *testing.T) {
	cases := map[string]string{
		"bad json":      `{`,
		"no input":      `{"name":"x","layers":[]}`,
		"unknown type":  `{"input":{"maps":1,"size":8},"layers":[{"type":"wat"}]}`,
		"bad pool kind": `{"input":{"maps":1,"size":8},"layers":[{"type":"pool","p":2,"kind":"median"}]}`,
		"zero pool":     `{"input":{"maps":1,"size":8},"layers":[{"type":"pool"}]}`,
		"zero fc out":   `{"input":{"maps":1,"size":8},"layers":[{"type":"fc"}]}`,
		"kernel > in":   `{"input":{"maps":1,"size":4},"layers":[{"type":"conv","m":1,"k":5}]}`,
		"stride no fit": `{"input":{"maps":1,"size":8},"layers":[{"type":"conv","m":1,"k":3,"stride":2}]}`,
		"mismatch":      `{"input":{"maps":1,"size":8},"layers":[{"type":"conv","m":1,"n":5,"s":6,"k":3}]}`,
	}
	for name, spec := range cases {
		if _, err := ParseJSON([]byte(spec)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	nw, err := ParseJSON([]byte(lenetSpec))
	if err != nil {
		t.Fatal(err)
	}
	data, err := ToJSON(nw)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"type": "conv"`) {
		t.Errorf("serialized spec missing conv: %s", data)
	}
	back, err := ParseJSON(data)
	if err != nil {
		t.Fatalf("round trip parse: %v", err)
	}
	if back.Name != nw.Name || len(back.Layers) != len(nw.Layers) {
		t.Error("round trip changed the network")
	}
	for i := range nw.Layers {
		if back.Layers[i] != nw.Layers[i] {
			t.Errorf("layer %d changed: %+v vs %+v", i, back.Layers[i], nw.Layers[i])
		}
	}
}
