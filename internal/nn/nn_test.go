package nn

import (
	"errors"
	"testing"

	"flexflow/internal/tensor"
)

func chainNet() *Network {
	return &Network{
		Name:   "chain",
		InputN: 1,
		InputS: 13,
		Layers: []Layer{
			{Kind: Conv, Conv: ConvLayer{Name: "C1", M: 2, N: 1, S: 10, K: 4}},
			{Kind: Pool, Pool: PoolLayer{Name: "P1", N: 2, In: 10, P: 2, Kind: tensor.MaxPool}},
			{Kind: Conv, Conv: ConvLayer{Name: "C2", M: 3, N: 2, S: 4, K: 2}},
			{Kind: FC, FC: FCLayer{Name: "F1", In: 3 * 4 * 4, Out: 10}},
		},
	}
}

func TestConvLayerDerived(t *testing.T) {
	l := ConvLayer{Name: "C3", M: 16, N: 6, S: 10, K: 5}
	if got := l.InSize(); got != 14 {
		t.Errorf("InSize = %d, want 14", got)
	}
	if got := l.MACs(); got != 16*6*10*10*5*5 {
		t.Errorf("MACs = %d", got)
	}
	if got := l.Ops(); got != 2*l.MACs() {
		t.Errorf("Ops = %d", got)
	}
	if got := l.InputWords(); got != 6*14*14 {
		t.Errorf("InputWords = %d", got)
	}
	if got := l.OutputWords(); got != 16*10*10 {
		t.Errorf("OutputWords = %d", got)
	}
	if got := l.KernelWords(); got != 16*6*5*5 {
		t.Errorf("KernelWords = %d", got)
	}
}

func TestConvLayerValidate(t *testing.T) {
	if err := (ConvLayer{Name: "ok", M: 1, N: 1, S: 1, K: 1}).Validate(); err != nil {
		t.Errorf("valid layer rejected: %v", err)
	}
	if err := (ConvLayer{Name: "bad", M: 0, N: 1, S: 1, K: 1}).Validate(); err == nil {
		t.Error("zero-M layer accepted")
	}
}

func TestNetworkValidateChains(t *testing.T) {
	if err := chainNet().Validate(); err != nil {
		t.Errorf("chaining network rejected: %v", err)
	}
}

func TestNetworkValidateDetectsMismatch(t *testing.T) {
	nw := chainNet()
	nw.Layers[2].Conv.N = 5 // breaks: previous provides 2 maps
	err := nw.Validate()
	if !errors.Is(err, ErrShapeMismatch) {
		t.Errorf("want ErrShapeMismatch, got %v", err)
	}
}

func TestNetworkValidateFCMismatch(t *testing.T) {
	nw := chainNet()
	nw.Layers[3].FC.In = 7
	if err := nw.Validate(); !errors.Is(err, ErrShapeMismatch) {
		t.Errorf("want ErrShapeMismatch, got %v", err)
	}
}

func TestConvLayersOrder(t *testing.T) {
	nw := chainNet()
	convs := nw.ConvLayers()
	if len(convs) != 2 || convs[0].Name != "C1" || convs[1].Name != "C2" {
		t.Errorf("ConvLayers = %v", convs)
	}
}

func TestTotalConvOps(t *testing.T) {
	nw := chainNet()
	want := nw.Layers[0].Conv.Ops() + nw.Layers[2].Conv.Ops()
	if got := nw.TotalConvOps(); got != want {
		t.Errorf("TotalConvOps = %d, want %d", got, want)
	}
}

func TestNextConvAfter(t *testing.T) {
	nw := chainNet()
	next, p, ok := nw.NextConvAfter(0)
	if !ok || next.Name != "C2" || p != 2 {
		t.Errorf("NextConvAfter(0) = %v, p=%d, ok=%v", next.Name, p, ok)
	}
	if _, _, ok := nw.NextConvAfter(1); ok {
		t.Error("NextConvAfter(last) should report !ok")
	}
}

func TestNextConvAfterNoPool(t *testing.T) {
	nw := &Network{
		InputN: 1, InputS: 6,
		Layers: []Layer{
			{Kind: Conv, Conv: ConvLayer{Name: "A", M: 2, N: 1, S: 4, K: 3}},
			{Kind: Conv, Conv: ConvLayer{Name: "B", M: 2, N: 2, S: 2, K: 3}},
		},
	}
	next, p, ok := nw.NextConvAfter(0)
	if !ok || next.Name != "B" || p != 1 {
		t.Errorf("NextConvAfter = %v p=%d ok=%v, want B p=1", next.Name, p, ok)
	}
}

func TestLayerKindString(t *testing.T) {
	if Conv.String() != "CONV" || Pool.String() != "POOL" || FC.String() != "FC" {
		t.Error("LayerKind.String mismatch")
	}
}

func TestPoolLayerDerived(t *testing.T) {
	p := PoolLayer{N: 4, In: 9, P: 2}
	if p.OutSize() != 4 {
		t.Errorf("OutSize = %d, want 4 (truncating)", p.OutSize())
	}
	if p.Ops() != 4*4*4*2*2 {
		t.Errorf("Ops = %d", p.Ops())
	}
}
