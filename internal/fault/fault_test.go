package fault

import (
	"testing"

	"flexflow/internal/fixed"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed RNGs diverged at step %d", i)
		}
	}
	// Pin the first value so the sequence can never drift silently
	// between platforms or refactors (splitmix64 of seed 1).
	if got := NewRNG(1).Uint64(); got != 0x910a2dec89025cc1 {
		t.Errorf("splitmix64(1) = %#x, want 0x910a2dec89025cc1", got)
	}
}

func TestRandomPlanDeterministic(t *testing.T) {
	b := Bounds{Cycles: 500, Rows: 16, Cols: 16, NeuronWords: 1024, KernelWords: 512}
	p1 := RandomPlan(7, 32, b)
	p2 := RandomPlan(7, 32, b)
	if len(p1.Events) != 32 || len(p2.Events) != 32 {
		t.Fatalf("plan sizes %d, %d, want 32", len(p1.Events), len(p2.Events))
	}
	for i := range p1.Events {
		if p1.Events[i] != p2.Events[i] {
			t.Fatalf("event %d differs: %v vs %v", i, p1.Events[i], p2.Events[i])
		}
	}
	p3 := RandomPlan(8, 32, b)
	same := true
	for i := range p1.Events {
		if p1.Events[i] != p3.Events[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical plans")
	}
}

func TestRandomPlanRespectsBounds(t *testing.T) {
	b := Bounds{Cycles: 100, Rows: 4, Cols: 8, NeuronWords: 64, KernelWords: 32}
	p := RandomPlan(3, 256, b)
	for _, e := range p.Events {
		if e.Cycle < 0 || e.Cycle >= b.Cycles {
			t.Errorf("event cycle %d outside [0,%d): %v", e.Cycle, b.Cycles, e)
		}
		if e.Row < 0 || e.Row >= b.Rows || e.Col < 0 || e.Col >= b.Cols {
			t.Errorf("event coordinates outside %dx%d: %v", b.Rows, b.Cols, e)
		}
		if e.Site == SiteDRAMNeuron && e.Addr >= b.NeuronWords {
			t.Errorf("DRAM neuron addr %d outside %d words", e.Addr, b.NeuronWords)
		}
		if e.Site == SiteDRAMKernel && e.Addr >= b.KernelWords {
			t.Errorf("DRAM kernel addr %d outside %d words", e.Addr, b.KernelWords)
		}
		if e.Bit > 15 {
			t.Errorf("bit index %d outside a 16-bit word", e.Bit)
		}
	}
}

func TestBitFlipFiresOnce(t *testing.T) {
	p := &Plan{Events: []Event{{Site: SiteNeuronStore, Model: BitFlip, Cycle: 10, Row: 2, Col: 3, Bit: 5}}}
	in := NewInjector(p)

	// Before the armed cycle: untouched.
	if got := in.Word(SiteNeuronStore, 9, 2, 3, 100); got != 100 {
		t.Errorf("pre-arm read corrupted: %d", got)
	}
	// Wrong coordinates: untouched.
	if got := in.Word(SiteNeuronStore, 10, 2, 4, 100); got != 100 {
		t.Errorf("wrong-PE read corrupted: %d", got)
	}
	// Wrong site: untouched.
	if got := in.Word(SiteKernelStore, 10, 2, 3, 100); got != 100 {
		t.Errorf("wrong-site read corrupted: %d", got)
	}
	// First matching access flips bit 5.
	if got := in.Word(SiteNeuronStore, 12, 2, 3, 100); got != 100^(1<<5) {
		t.Errorf("flip read = %d, want %d", got, 100^(1<<5))
	}
	// One-shot: the next access is clean again.
	if got := in.Word(SiteNeuronStore, 13, 2, 3, 100); got != 100 {
		t.Errorf("post-fire read corrupted: %d", got)
	}
	if in.Fired() != 1 || in.Hits() != 1 {
		t.Errorf("Fired=%d Hits=%d, want 1, 1", in.Fired(), in.Hits())
	}
}

func TestStuckAtZeroPersists(t *testing.T) {
	p := &Plan{Events: []Event{{Site: SiteMAC, Model: StuckAtZero, Cycle: 5, Row: 1, Col: -1}}}
	in := NewInjector(p)
	if in.MACZero(4, 1, 0) {
		t.Error("stuck-at fired before its armed cycle")
	}
	if !in.MACZero(5, 1, 0) || !in.MACZero(6, 1, 7) {
		t.Error("stuck-at did not persist across matching accesses")
	}
	if in.MACZero(6, 2, 0) {
		t.Error("stuck-at fired on the wrong row")
	}
	if in.Hits() != 2 {
		t.Errorf("Hits = %d, want 2", in.Hits())
	}
}

func TestBusDropAndDuplicate(t *testing.T) {
	p := &Plan{Events: []Event{
		{Site: SiteBusVertical, Model: Drop, Cycle: 0},
		{Site: SiteBusHorizontal, Model: Duplicate, Cycle: 0},
	}}
	in := NewInjector(p)
	if got := in.BusWords(SiteBusVertical, 3, 10); got != 9 {
		t.Errorf("drop: %d words, want 9", got)
	}
	if got := in.BusWords(SiteBusVertical, 4, 10); got != 10 {
		t.Errorf("drop fired twice: %d words", got)
	}
	if got := in.BusWords(SiteBusHorizontal, 3, 10); got != 11 {
		t.Errorf("duplicate: %d words, want 11", got)
	}
	if in.Fired() != 2 {
		t.Errorf("Fired = %d, want 2", in.Fired())
	}
}

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if got := in.Word(SiteNeuronStore, 0, 0, 0, 7); got != 7 {
		t.Errorf("nil injector corrupted a word: %d", got)
	}
	if in.MACZero(0, 0, 0) {
		t.Error("nil injector stuck a MAC")
	}
	if got := in.BusWords(SiteBusVertical, 0, 5); got != 5 {
		t.Errorf("nil injector adjusted bus words: %d", got)
	}
	if in.Fired() != 0 || in.Hits() != 0 {
		t.Error("nil injector reports activity")
	}
	empty := NewInjector(nil)
	if got := empty.Word(SiteKernelStore, 0, 0, 0, 7); got != 7 {
		t.Errorf("empty injector corrupted a word: %d", got)
	}
}

func TestStoreAndBusHooks(t *testing.T) {
	p := &Plan{Events: []Event{
		{Site: SiteBankRead, Model: BitFlip, Cycle: 0, Row: 0, Col: 2, Bit: 0},
		{Site: SiteBusVertical, Model: Drop, Cycle: 0},
	}}
	in := NewInjector(p)
	cycle := int64(0)
	hook := in.StoreReadHook(SiteBankRead, 0, 2, func() int64 { return cycle })
	if got := hook(17, fixed.Word(4)); got != 5 {
		t.Errorf("bank hook = %d, want 5", got)
	}
	bus := in.BusHook(SiteBusVertical, func() int64 { return cycle })
	if got := bus(8, 3); got != 7 {
		t.Errorf("bus hook = %d, want 7", got)
	}
}

func TestMixIndependentStreams(t *testing.T) {
	a := Mix(1, 0, 0)
	b := Mix(1, 0, 1)
	c := Mix(1, 1, 0)
	if a == b || a == c || b == c {
		t.Errorf("Mix streams collide: %x %x %x", a, b, c)
	}
	if Mix(1, 2, 3) != Mix(1, 2, 3) {
		t.Error("Mix not deterministic")
	}
}

func TestPlanEventsAt(t *testing.T) {
	p := &Plan{Events: []Event{
		{Site: SiteDRAMNeuron, Model: BitFlip, Addr: 3},
		{Site: SiteMAC, Model: StuckAtZero},
		{Site: SiteDRAMNeuron, Model: BitFlip, Addr: 9},
	}}
	if got := len(p.EventsAt(SiteDRAMNeuron)); got != 2 {
		t.Errorf("EventsAt(SiteDRAMNeuron) = %d events, want 2", got)
	}
	var nilPlan *Plan
	if nilPlan.EventsAt(SiteMAC) != nil {
		t.Error("nil plan returned events")
	}
}
