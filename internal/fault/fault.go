// Package fault is the deterministic hardware fault-injection
// subsystem. The cycle-level simulators expose the paper's concrete
// storage and transport structures — per-PE local stores, IADP-banked
// SRAM buffers, the common data buses, the PE multipliers, and the
// external DRAM stream — and this package describes corruptions of
// those structures as data: an injection Plan says what to corrupt, at
// which cycle, with which fault model. An Injector arms a plan against
// one simulation run and applies the corruptions through the hook
// points the simulators expose (nil hooks keep the fault-free fast
// path untouched).
//
// Everything is seed-driven and bit-reproducible: RandomPlan derives a
// plan from a uint64 seed with a splitmix64 generator, so the same
// seed always yields the same campaign — the property the
// fault-coverage tables under results/ rely on.
package fault

import (
	"errors"
	"fmt"

	"flexflow/internal/fixed"
)

// ErrFaulted marks errors caused by an injected (or detected) hardware
// fault, as opposed to invalid configuration or cancellation.
var ErrFaulted = errors.New("fault: hardware fault detected")

// Site identifies an injectable hardware structure of the FlexFlow
// engine (Fig. 6/7 of the paper).
type Site uint8

const (
	// SiteNeuronStore is a PE neuron local-store read port.
	SiteNeuronStore Site = iota
	// SiteKernelStore is a PE kernel local-store read port.
	SiteKernelStore
	// SiteBankRead is a banked on-chip SRAM read port (IADP buffers).
	SiteBankRead
	// SiteMAC is a PE multiplier output.
	SiteMAC
	// SiteBusVertical is a vertical (neuron) common data bus transfer.
	SiteBusVertical
	// SiteBusHorizontal is a horizontal (kernel) common data bus transfer.
	SiteBusHorizontal
	// SiteDRAMNeuron is a word of the layer's input stack as it streams
	// in from external memory.
	SiteDRAMNeuron
	// SiteDRAMKernel is a word of the layer's kernel set as it streams
	// in from external memory.
	SiteDRAMKernel

	numSites
)

// String names the site.
func (s Site) String() string {
	switch s {
	case SiteNeuronStore:
		return "neuron-store"
	case SiteKernelStore:
		return "kernel-store"
	case SiteBankRead:
		return "bank-read"
	case SiteMAC:
		return "mac"
	case SiteBusVertical:
		return "bus-v"
	case SiteBusHorizontal:
		return "bus-h"
	case SiteDRAMNeuron:
		return "dram-neuron"
	case SiteDRAMKernel:
		return "dram-kernel"
	default:
		return fmt.Sprintf("site(%d)", uint8(s))
	}
}

// Model is the fault model applied at a site.
type Model uint8

const (
	// BitFlip XORs one bit of the word at the first matching access at
	// or after the armed cycle (a transient single-event upset).
	BitFlip Model = iota
	// StuckAtZero forces the value to zero at every matching access
	// from the armed cycle on (a permanent stuck-at fault).
	StuckAtZero
	// Drop suppresses one word of a bus transfer batch (the word never
	// reaches its PEs).
	Drop
	// Duplicate replays one word of a bus transfer batch (the word is
	// delivered twice).
	Duplicate
)

// String names the model.
func (m Model) String() string {
	switch m {
	case BitFlip:
		return "bit-flip"
	case StuckAtZero:
		return "stuck-at-0"
	case Drop:
		return "drop"
	case Duplicate:
		return "duplicate"
	default:
		return fmt.Sprintf("model(%d)", uint8(m))
	}
}

// Event is one planned injection: corrupt Site with Model, armed from
// Cycle on, at the PE (or bank) coordinates Row/Col. Row or Col set to
// -1 matches any coordinate. For DRAM sites, Addr indexes the word of
// the streamed working set; for BitFlip, Bit selects the flipped bit
// of the 16-bit word.
type Event struct {
	Site  Site
	Model Model
	Cycle int64
	Row   int
	Col   int
	Addr  int
	Bit   uint8
}

// String renders the event compactly, e.g.
// "bit-flip@neuron-store cyc=120 pe=(3,7) bit=9".
func (e Event) String() string {
	switch e.Site {
	case SiteDRAMNeuron, SiteDRAMKernel:
		return fmt.Sprintf("%s@%s addr=%d bit=%d", e.Model, e.Site, e.Addr, e.Bit)
	case SiteBusVertical, SiteBusHorizontal:
		return fmt.Sprintf("%s@%s cyc=%d", e.Model, e.Site, e.Cycle)
	case SiteMAC:
		return fmt.Sprintf("%s@%s cyc=%d pe=(%d,%d)", e.Model, e.Site, e.Cycle, e.Row, e.Col)
	default:
		return fmt.Sprintf("%s@%s cyc=%d pe=(%d,%d) bit=%d", e.Model, e.Site, e.Cycle, e.Row, e.Col, e.Bit)
	}
}

// Plan is an ordered set of injections for one simulation run.
type Plan struct {
	Events []Event
}

// EventsAt returns the planned events targeting one site (DRAM events
// are applied by the harness before the run; the rest fire through the
// engine hooks during it).
func (p *Plan) EventsAt(site Site) []Event {
	if p == nil {
		return nil
	}
	var out []Event
	for _, e := range p.Events {
		if e.Site == site {
			out = append(out, e)
		}
	}
	return out
}

// Bounds describes one layer run's injectable space, taken from a
// clean (fault-free) reference execution: the cycle count, the active
// PE-array extent, and the DRAM working-set sizes in words.
type Bounds struct {
	Cycles      int64 // clean-run cycle count (events arm in [0, Cycles))
	Rows, Cols  int   // active PE rows/columns
	NeuronWords int   // input-stack words streamed from DRAM
	KernelWords int   // kernel-set words streamed from DRAM
}

// RandomPlan derives an n-event injection plan from seed, uniformly
// covering the sites within b. Same seed and bounds give bit-identical
// plans on every run and platform.
func RandomPlan(seed uint64, n int, b Bounds) *Plan {
	rng := NewRNG(seed)
	p := &Plan{}
	for i := 0; i < n; i++ {
		p.Events = append(p.Events, randomEvent(rng, b))
	}
	return p
}

// randomEvent draws one event. Sites are weighted uniformly; the model
// follows from the site (stores and DRAM flip bits, MACs stick at
// zero, buses drop or duplicate).
func randomEvent(rng *RNG, b Bounds) Event {
	cycles := b.Cycles
	if cycles < 1 {
		cycles = 1
	}
	rows, cols := b.Rows, b.Cols
	if rows < 1 {
		rows = 1
	}
	if cols < 1 {
		cols = 1
	}
	e := Event{
		Site:  Site(rng.Intn(int(numSites))),
		Cycle: int64(rng.Intn(int(cycles))),
		Row:   rng.Intn(rows),
		Col:   rng.Intn(cols),
		Bit:   uint8(rng.Intn(16)),
	}
	switch e.Site {
	case SiteNeuronStore, SiteKernelStore, SiteBankRead:
		e.Model = BitFlip
	case SiteMAC:
		e.Model = StuckAtZero
	case SiteBusVertical, SiteBusHorizontal:
		if rng.Intn(2) == 0 {
			e.Model = Drop
		} else {
			e.Model = Duplicate
		}
	case SiteDRAMNeuron:
		e.Model = BitFlip
		if b.NeuronWords > 0 {
			e.Addr = rng.Intn(b.NeuronWords)
		}
	case SiteDRAMKernel:
		e.Model = BitFlip
		if b.KernelWords > 0 {
			e.Addr = rng.Intn(b.KernelWords)
		}
	}
	return e
}

// RNG is a splitmix64 pseudo-random generator. It is deliberately not
// math/rand: the simulator packages are bound by the repository's
// determinism contract (flexlint detsim), and splitmix64 is a fixed,
// platform-independent sequence.
type RNG struct {
	s uint64
}

// NewRNG seeds a generator.
func NewRNG(seed uint64) *RNG { return &RNG{s: seed} }

// Uint64 returns the next value of the sequence.
func (r *RNG) Uint64() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a value in [0, n); n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("fault: Intn needs positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Mix folds extra stream identifiers into a seed, so one campaign seed
// can derive independent per-layer, per-injection seeds.
func Mix(seed uint64, lanes ...uint64) uint64 {
	r := NewRNG(seed)
	out := r.Uint64()
	for _, l := range lanes {
		out = NewRNG(out ^ (l + 0x9e3779b97f4a7c15)).Uint64()
	}
	return out
}

// Injector arms a plan against one simulation run. It is the state
// machine behind the hook points: each call answers "does a planned
// fault fire here, now?" and applies the corruption. Transient models
// (BitFlip, Drop, Duplicate) fire exactly once; StuckAtZero stays
// active from its armed cycle on. The zero Injector (or nil) injects
// nothing.
type Injector struct {
	plan  *Plan
	fired []bool
	hits  int64
}

// NewInjector arms a plan. A nil plan yields an injector that never
// fires.
func NewInjector(p *Plan) *Injector {
	var n int
	if p != nil {
		n = len(p.Events)
	}
	return &Injector{plan: p, fired: make([]bool, n)}
}

// Plan returns the armed plan (nil for a nil or unarmed injector), so
// layers above can consult the planned events — e.g. to apply
// DRAM-site corruptions to operand tensors before a run.
func (in *Injector) Plan() *Plan {
	if in == nil {
		return nil
	}
	return in.plan
}

// Fired returns how many planned events have fired at least once.
func (in *Injector) Fired() int {
	if in == nil {
		return 0
	}
	n := 0
	for _, f := range in.fired {
		if f {
			n++
		}
	}
	return n
}

// Hits returns the total number of corruptions applied (a persistent
// stuck-at fault counts every corrupted access).
func (in *Injector) Hits() int64 {
	if in == nil {
		return 0
	}
	return in.hits
}

// matches reports whether event i targeting site fires for an access
// at (cycle, row, col), honouring the armed cycle and one-shot state.
func (in *Injector) matches(i int, e Event, site Site, cycle int64, row, col int) bool {
	if e.Site != site || cycle < e.Cycle {
		return false
	}
	if e.Model != StuckAtZero && in.fired[i] {
		return false
	}
	if e.Row >= 0 && row >= 0 && e.Row != row {
		return false
	}
	if e.Col >= 0 && col >= 0 && e.Col != col {
		return false
	}
	return true
}

// Word passes one data word read at (cycle, row, col) from site
// through the armed plan, returning the possibly corrupted word.
func (in *Injector) Word(site Site, cycle int64, row, col int, v fixed.Word) fixed.Word {
	if in == nil || in.plan == nil {
		return v
	}
	for i, e := range in.plan.Events {
		if !in.matches(i, e, site, cycle, row, col) {
			continue
		}
		switch e.Model {
		case BitFlip:
			// Flip the raw storage bit: an SEU corrupts the
			// representation, so this is bit math on the uint16 image,
			// not saturating fixed-point arithmetic.
			v = fixed.Word(uint16(v) ^ uint16(1)<<(e.Bit%16))
		case StuckAtZero:
			v = 0
		default:
			continue
		}
		in.fired[i] = true
		in.hits++
	}
	return v
}

// MACZero reports whether the multiplier of PE (row, col) is stuck at
// zero this cycle; the caller suppresses the MAC's contribution.
func (in *Injector) MACZero(cycle int64, row, col int) bool {
	if in == nil || in.plan == nil {
		return false
	}
	stuck := false
	for i, e := range in.plan.Events {
		if e.Model != StuckAtZero || !in.matches(i, e, SiteMAC, cycle, row, col) {
			continue
		}
		in.fired[i] = true
		in.hits++
		stuck = true
	}
	return stuck
}

// BusWords passes a batch of n bus transfers at cycle through the
// plan's Drop/Duplicate events for the given bus site, returning the
// adjusted word count. Each event fires once, removing or adding one
// word.
func (in *Injector) BusWords(site Site, cycle int64, n int64) int64 {
	if in == nil || in.plan == nil || n <= 0 {
		return n
	}
	for i, e := range in.plan.Events {
		if !in.matches(i, e, site, cycle, -1, -1) {
			continue
		}
		switch e.Model {
		case Drop:
			if n > 0 {
				n--
			}
		case Duplicate:
			n++
		default:
			continue
		}
		in.fired[i] = true
		in.hits++
	}
	return n
}

// CorruptMemory applies the plan's events for an external-memory site
// to a word slice in place — the campaign pre-pass: DRAM corruption
// happens before the run streams the tensors on chip, so the caller
// hands in (a clone of) the flattened resident image. Addr is taken
// modulo the slice length so randomly drawn plans always land; each
// event fires at most once.
func (in *Injector) CorruptMemory(site Site, data []fixed.Word) {
	if in == nil || in.plan == nil || len(data) == 0 {
		return
	}
	for i, e := range in.plan.Events {
		if e.Site != site || in.fired[i] {
			continue
		}
		a := e.Addr % len(data)
		if a < 0 {
			a += len(data)
		}
		switch e.Model {
		case BitFlip:
			data[a] = fixed.Word(uint16(data[a]) ^ uint16(1)<<(e.Bit%16))
		case StuckAtZero:
			data[a] = 0
		default:
			continue
		}
		in.fired[i] = true
		in.hits++
	}
}

// StoreReadHook adapts the injector to the mem package's read-hook
// shape for the local store (or bank) at fixed coordinates; cycle
// supplies the current engine cycle. The returned closure is what gets
// installed on mem.LocalStore.ReadHook / mem.Bank.ReadHook.
func (in *Injector) StoreReadHook(site Site, row, col int, cycle func() int64) func(addr int, v fixed.Word) fixed.Word {
	return func(addr int, v fixed.Word) fixed.Word {
		return in.Word(site, cycle(), row, col, v)
	}
}

// BusHook adapts the injector to the bus package's transfer-hook
// shape; cycle supplies the current engine cycle.
func (in *Injector) BusHook(site Site, cycle func() int64) func(n int64, fanout int) int64 {
	return func(n int64, fanout int) int64 {
		return in.BusWords(site, cycle(), n)
	}
}
