package pipeline

import (
	"sort"
	"sync"

	"flexflow/internal/arch"
	"flexflow/internal/nn"
)

// CacheKeyer is implemented by engines whose analytic evaluation can be
// memoized: LayerCacheKey returns a canonical key covering everything
// the engine's Model reads — the engine kind, its architectural
// configuration, the armed observers (tracer/injector, which change
// nothing analytically but are kept distinct so an armed run never
// aliases an unarmed one), and the layer's shape. The layer Name is
// deliberately excluded: two same-shape layers (conv3/conv4 in a VGG
// block, or one layer across the images of a batch) share an entry.
// ok=false declines memoization for this layer (the result is then
// computed, not cached).
type CacheKeyer interface {
	LayerCacheKey(l nn.ConvLayer) (key string, ok bool)
}

// Cache is a bounded, shape-keyed memo of analytic LayerResults shared
// across runs, engines and goroutines. Eviction is deterministic by
// construction rather than by recency: the cache keeps the
// lexicographically smallest Capacity keys it has ever been offered,
// so the surviving set is a pure function of the offered key set —
// independent of insertion order interleaving and therefore identical
// at any Scheduler worker count (the repo's bit-identical-parallelism
// contract extends to cache state). The hit/miss/eviction counters are
// monotonic diagnostics only: concurrent first misses on one key may
// both compute (the second insert is a no-op), so counter values are
// not part of the determinism contract — cache *contents* and returned
// results are.
type Cache struct {
	mu        sync.Mutex // guards: entries, keys, hits, misses, evictions
	cap       int
	entries   map[string]arch.LayerResult
	keys      []string // ascending; mirrors entries
	hits      int64
	misses    int64
	evictions int64
}

// NewCache returns a cache bounded to capacity entries; capacity < 1
// returns nil (a nil *Cache disables memoization everywhere it is
// accepted).
func NewCache(capacity int) *Cache {
	if capacity < 1 {
		return nil
	}
	return &Cache{
		cap:     capacity,
		entries: make(map[string]arch.LayerResult, capacity),
		keys:    make([]string, 0, capacity),
	}
}

// lookup returns the memoized result for key, counting the probe.
func (c *Cache) lookup(key string) (arch.LayerResult, bool) {
	c.mu.Lock()
	lr, ok := c.entries[key]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	c.mu.Unlock()
	return lr, ok
}

// insert offers a computed result. If the cache is full and key sorts
// after every resident key the offer is rejected; otherwise the
// largest resident key is evicted to make room. Inserting a resident
// key is a no-op, so racing first-misses converge on one entry.
func (c *Cache) insert(key string, lr arch.LayerResult) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; ok {
		return
	}
	i := sort.SearchStrings(c.keys, key)
	if len(c.keys) >= c.cap {
		if i == len(c.keys) {
			c.evictions++
			return
		}
		last := len(c.keys) - 1
		delete(c.entries, c.keys[last])
		c.keys = c.keys[:last]
		c.evictions++
	}
	c.keys = append(c.keys, "")
	copy(c.keys[i+1:], c.keys[i:])
	c.keys[i] = key
	c.entries[key] = lr
}

// CacheStats is a point-in-time snapshot of cache activity.
type CacheStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Entries   int
	Capacity  int
}

// Stats snapshots the counters; safe on a nil cache (all zero).
func (c *Cache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	s := CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Entries:   len(c.keys),
		Capacity:  c.cap,
	}
	c.mu.Unlock()
	return s
}

// Keys returns the resident keys in ascending order — the
// deterministic survivor set the eviction tests pin.
func (c *Cache) Keys() []string {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	out := make([]string, len(c.keys))
	copy(out, c.keys)
	c.mu.Unlock()
	return out
}
