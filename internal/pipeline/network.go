package pipeline

import (
	"fmt"

	"flexflow/internal/arch"
	"flexflow/internal/fault"
	"flexflow/internal/fixed"
	"flexflow/internal/nn"
	"flexflow/internal/tensor"
)

// Pooler is the pooling-unit contract of the functional pipeline;
// core.PoolUnit satisfies it. Keeping it an interface here is what
// lets the pipeline drive any engine without importing one.
type Pooler interface {
	Apply(in *tensor.Map3, p int, kind tensor.PoolKind) (*tensor.Map3, error)
	Cycles() int64
}

// AnalyticPooler is the analytic counterpart of Pooler: AccountPool
// charges the pooling unit for an N@H×W stack without computing any
// values, with accounting identical to Apply on the same shape.
// core.PoolUnit satisfies it.
type AnalyticPooler interface {
	Pooler
	AccountPool(n, h, w, p int) error
}

// NetworkJob is a whole-network functional execution unit: the
// topology, one input image, one kernel set per CONV layer, and
// optionally one row-major Out×In weight slice per FC layer. Without
// FC weights, execution stops at the first classifier with the tensor
// that feeds it.
type NetworkJob struct {
	Network   *nn.Network
	Input     *tensor.Map3
	Kernels   []*tensor.Kernel4
	FCWeights [][]fixed.Word
}

// ExecOutcome is the result of one NetworkJob through the pipeline.
type ExecOutcome struct {
	// Output is the feature-map stack leaving the last executed layer.
	Output *tensor.Map3
	// Layers holds one measurement per executed CONV/FC layer, in order.
	Layers []arch.LayerResult
	// PoolCycles is the total time spent in the pooling unit.
	PoolCycles int64
	// FaultsFired and FaultHits report injector activity when a fault
	// plan was armed: plan events that matched at least once, and
	// individual corruptions applied.
	FaultsFired int
	FaultHits   int64
}

// Validate is the pipeline's job-validation stage (shapes before
// cycles: every malformed input is rejected here as ErrJob, so the
// engines only ever see runnable work). Exec runs it; the facade also
// calls it up front so a malformed job fails before any planning work.
func (job NetworkJob) Validate() error {
	nw := job.Network
	if nw == nil {
		return badJob("nil network")
	}
	if err := nw.Validate(); err != nil {
		return fmt.Errorf("%w: network does not chain: %v", ErrJob, err)
	}
	if job.Input == nil {
		return badJob("nil input tensor")
	}
	if job.Input.N != nw.InputN || job.Input.H != nw.InputS || job.Input.W != nw.InputS {
		return badJob("input is %d@%dx%d, network %s expects %d@%dx%d",
			job.Input.N, job.Input.H, job.Input.W, nw.Name, nw.InputN, nw.InputS, nw.InputS)
	}
	if got, want := len(job.Kernels), len(nw.ConvLayers()); got != want {
		return badJob("%d kernel sets for %d CONV layers", got, want)
	}
	for i, k := range job.Kernels {
		if k == nil {
			return badJob("kernel set %d is nil", i)
		}
	}
	return nil
}

// Exec runs a network end to end through one engine, functionally:
// validation, control attachment (tracer, watchdog, injector — via the
// capability interfaces, so every backend gets the same Options
// semantics), DRAM-site fault application, then the layer loop with
// per-layer counter collection. CONV layers go through the engine's
// cycle-level simulator, POOL layers through the pooling unit, FC
// layers as the equivalent 1×1 CONV problem on the same array.
func Exec(e arch.Engine, pool Pooler, job NetworkJob, opts Options) (ExecOutcome, error) {
	if e == nil {
		return ExecOutcome{}, badJob("nil engine")
	}
	if pool == nil {
		return ExecOutcome{}, badJob("nil pooling unit")
	}
	if opts.Analytic {
		return execAnalytic(e, pool, job, opts)
	}
	if err := job.Validate(); err != nil {
		return ExecOutcome{}, err
	}

	wd := attach(e, opts)
	inj := opts.Injector
	input, kernels := applyDRAMFaults(inj, job.Input, job.Kernels)

	nw := job.Network
	res := ExecOutcome{}
	cur := input
	convIdx := 0
	fcIdx := 0
	for _, layer := range nw.Layers {
		// The inter-layer boundary is a schedule boundary too: poll the
		// watchdog here so even engines without their own polling (and
		// the pooling unit) honour cancellation and the cycle budget.
		if err := wd.Check(0); err != nil {
			return ExecOutcome{}, err
		}
		switch layer.Kind {
		case nn.Conv:
			out, lr, err := RunLayer(e, LayerJob{
				Index: convIdx, Layer: layer.Conv, Input: cur, Kernel: kernels[convIdx]})
			if err != nil {
				return ExecOutcome{}, layerErr(inj, layer.Conv.Name, err)
			}
			if layer.Conv.ReLU {
				out = tensor.ReLU(out)
			}
			res.Layers = append(res.Layers, lr)
			cur = out
			convIdx++
		case nn.Pool:
			out, err := pool.Apply(cur, layer.Pool.P, layer.Pool.Kind)
			if err != nil {
				return ExecOutcome{}, fmt.Errorf("flexflow: layer %s: %w", layer.Pool.Name, err)
			}
			cur = out
		case nn.FC:
			// A classifier layer is a matrix–vector product, which the
			// convolutional unit computes as a CONV layer with M = Out,
			// N = In, S = 1, K = 1: the flattened activations become In
			// single-neuron feature maps and the weight matrix an
			// In-deep stack of 1×1 kernels.
			if fcIdx >= len(job.FCWeights) {
				// No weights supplied: stop at the classifier input,
				// as the paper's engine evaluation does.
				return res.finish(cur, pool, inj), nil
			}
			conv, flat, kset, err := fcAsConv(layer.FC, cur, job.FCWeights[fcIdx])
			if err != nil {
				return ExecOutcome{}, fmt.Errorf("flexflow: layer %s: %w", layer.FC.Name, err)
			}
			out, lr, err := RunLayer(e, LayerJob{Index: convIdx, Layer: conv, Input: flat, Kernel: kset})
			if err != nil {
				return ExecOutcome{}, layerErr(inj, layer.FC.Name, err)
			}
			res.Layers = append(res.Layers, lr)
			// Back to a 1×1 stack of Out maps for any following layer.
			cur = out
			fcIdx++
		}
	}
	return res.finish(cur, pool, inj), nil
}

// ValidateAnalytic is the validation stage of the analytic path: the
// topology must exist and chain, but operand tensors are optional —
// the closed-form models never read them. Operands that *are* supplied
// must still be consistent, so one NetworkJob can be flipped between
// the two modes without changing its meaning.
func (job NetworkJob) ValidateAnalytic() error {
	nw := job.Network
	if nw == nil {
		return badJob("nil network")
	}
	if err := nw.Validate(); err != nil {
		return fmt.Errorf("%w: network does not chain: %v", ErrJob, err)
	}
	if in := job.Input; in != nil &&
		(in.N != nw.InputN || in.H != nw.InputS || in.W != nw.InputS) {
		return badJob("input is %d@%dx%d, network %s expects %d@%dx%d",
			in.N, in.H, in.W, nw.Name, nw.InputN, nw.InputS, nw.InputS)
	}
	if got, want := len(job.Kernels), len(nw.ConvLayers()); got != 0 && got != want {
		return badJob("%d kernel sets for %d CONV layers", got, want)
	}
	return nil
}

// execAnalytic is Exec's closed-form twin: it walks the network's
// shapes instead of its values, answering every CONV/FC layer from the
// engine's analytic Model (memoized through opts.Cache when set) and
// charging the pooling unit by shape. The per-layer counters and
// PoolCycles are bit-identical to the simulated run — that is the
// parity contract the cross-engine test pins — but no feature maps are
// computed (Output is nil) and an armed injector never fires (there is
// no dataflow to corrupt; arming still keys the cache distinctly). The
// cycle budget covers the modelled engine cycles, accumulated in layer
// order exactly like RunModel's post-merge enforcement.
func execAnalytic(e arch.Engine, pool Pooler, job NetworkJob, opts Options) (ExecOutcome, error) {
	ap, ok := pool.(AnalyticPooler)
	if !ok {
		return ExecOutcome{}, badJob("pooling unit %T cannot account analytically", pool)
	}
	if err := job.ValidateAnalytic(); err != nil {
		return ExecOutcome{}, err
	}

	wd := attach(e, opts)
	nw := job.Network
	res := ExecOutcome{}
	// Validate guarantees square chaining, so the live shape is n maps
	// of s×s — exactly the walk Network.Validate performs.
	n, s := nw.InputN, nw.InputS
	var spent int64
	convIdx := 0
	fcIdx := 0
	for _, layer := range nw.Layers {
		if err := wd.Check(spent); err != nil {
			return ExecOutcome{}, err
		}
		switch layer.Kind {
		case nn.Conv:
			_, lr, err := RunLayer(e, LayerJob{Index: convIdx, Layer: layer.Conv, Cache: opts.Cache})
			if err != nil {
				return ExecOutcome{}, fmt.Errorf("flexflow: layer %s: %w", layer.Conv.Name, err)
			}
			res.Layers = append(res.Layers, lr)
			spent += lr.Cycles
			n, s = layer.Conv.M, layer.Conv.S
			convIdx++
		case nn.Pool:
			if err := ap.AccountPool(n, s, s, layer.Pool.P); err != nil {
				return ExecOutcome{}, fmt.Errorf("flexflow: layer %s: %w", layer.Pool.Name, err)
			}
			s = layer.Pool.OutSize()
		case nn.FC:
			if fcIdx >= len(job.FCWeights) {
				// No weights supplied: stop at the classifier input,
				// matching the functional path's semantics.
				return res.finish(nil, pool, opts.Injector), nil
			}
			conv := nn.ConvLayer{Name: layer.FC.Name, M: layer.FC.Out, N: layer.FC.In, S: 1, K: 1}
			_, lr, err := RunLayer(e, LayerJob{Index: convIdx, Layer: conv, Cache: opts.Cache})
			if err != nil {
				return ExecOutcome{}, fmt.Errorf("flexflow: layer %s: %w", layer.FC.Name, err)
			}
			res.Layers = append(res.Layers, lr)
			spent += lr.Cycles
			n, s = layer.FC.Out, 1
			convIdx++
			fcIdx++
		}
	}
	if err := wd.Check(spent); err != nil {
		return ExecOutcome{}, err
	}
	return res.finish(nil, pool, opts.Injector), nil
}

// finish fills the run-level fields of an outcome.
func (r ExecOutcome) finish(cur *tensor.Map3, pool Pooler, inj *fault.Injector) ExecOutcome {
	r.Output = cur
	r.PoolCycles = pool.Cycles()
	r.FaultsFired = inj.Fired()
	r.FaultHits = inj.Hits()
	return r
}

// BatchError is the typed failure of one unit of a batch run: it
// records which image (by batch index) failed alongside the underlying
// error, so callers can attribute a cancellation or fault to a
// specific unit with errors.As instead of parsing the message. Unwrap
// keeps the underlying sentinel (sim.ErrCancelled, sim.ErrBudget,
// fault.ErrFaulted, ErrJob) visible to errors.Is.
type BatchError struct {
	// Index is the batch index of the failed unit. Batch errors always
	// surface the lowest failing index, matching the serial run.
	Index int
	// Err is the unit's underlying error.
	Err error
}

func (e *BatchError) Error() string {
	return fmt.Sprintf("flexflow: batch image %d: %v", e.Index, e.Err)
}

// Unwrap exposes the underlying error to errors.Is/errors.As.
func (e *BatchError) Unwrap() error { return e.Err }

// ExecBatch runs independent NetworkJobs across the scheduler — batch
// images on an accelerator. backend(i) supplies each job's engine,
// pooling unit and options; it must return state not shared with other
// indices (a fresh engine and injector per image), which is what makes
// the parallel run bit-identical to the serial one. Results merge in
// job order; the returned error is the lowest-index failure as a
// *BatchError carrying that image index.
func ExecBatch(workers int, jobs []NetworkJob, backend func(i int) (arch.Engine, Pooler, Options)) ([]ExecOutcome, error) {
	out := make([]ExecOutcome, len(jobs))
	sched := Scheduler{Workers: workers}
	err := sched.Map(len(jobs), func(i int) error {
		e, pool, opts := backend(i)
		o, err := Exec(e, pool, jobs[i], opts)
		if err != nil {
			return &BatchError{Index: i, Err: err}
		}
		out[i] = o
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// layerErr attributes a mid-simulation failure: once an armed injector
// has fired, the failure is additionally marked ErrFaulted so callers
// can tell an injected-fault crash from an ordinary one (both wrapped
// errors stay visible to errors.Is).
func layerErr(inj *fault.Injector, name string, err error) error {
	if inj.Fired() > 0 {
		return fmt.Errorf("flexflow: layer %s: %w: %w", name, fault.ErrFaulted, err)
	}
	return fmt.Errorf("flexflow: layer %s: %w", name, err)
}

// applyDRAMFaults applies the injector's external-memory events to
// clones of the operand tensors (the caller's tensors are never
// touched), returning the possibly corrupted working set. Neuron
// events address the flattened input image; kernel events the
// concatenation of all layers' kernel sets.
func applyDRAMFaults(inj *fault.Injector, input *tensor.Map3, kernels []*tensor.Kernel4) (*tensor.Map3, []*tensor.Kernel4) {
	p := inj.Plan()
	if p == nil {
		return input, kernels
	}
	if len(p.EventsAt(fault.SiteDRAMNeuron)) > 0 {
		input = input.Clone()
		flat := make([]fixed.Word, 0, input.Words())
		for _, m := range input.Maps {
			flat = append(flat, m.Data...)
		}
		inj.CorruptMemory(fault.SiteDRAMNeuron, flat)
		x := 0
		for _, m := range input.Maps {
			copy(m.Data, flat[x:x+len(m.Data)])
			x += len(m.Data)
		}
	}
	if len(p.EventsAt(fault.SiteDRAMKernel)) > 0 {
		cloned := make([]*tensor.Kernel4, len(kernels))
		var total int
		for i, k := range kernels {
			cloned[i] = k.Clone()
			total += k.Words()
		}
		flat := make([]fixed.Word, 0, total)
		for _, k := range cloned {
			flat = append(flat, k.Data...)
		}
		inj.CorruptMemory(fault.SiteDRAMKernel, flat)
		x := 0
		for _, k := range cloned {
			copy(k.Data, flat[x:x+len(k.Data)])
			x += len(k.Data)
		}
		kernels = cloned
	}
	return input, kernels
}

// fcAsConv rewrites a classifier layer over the current activations as
// the equivalent 1×1 CONV problem.
func fcAsConv(fc nn.FCLayer, cur *tensor.Map3, weights []fixed.Word) (nn.ConvLayer, *tensor.Map3, *tensor.Kernel4, error) {
	total := cur.Words()
	if fc.In != total {
		return nn.ConvLayer{}, nil, nil, badJob("classifier expects %d inputs, activations hold %d", fc.In, total)
	}
	if len(weights) != fc.In*fc.Out {
		return nn.ConvLayer{}, nil, nil, badJob("classifier needs %d weights, got %d", fc.In*fc.Out, len(weights))
	}
	flat := tensor.NewMap3(total, 1, 1)
	x := 0
	for n := 0; n < cur.N; n++ {
		for _, v := range cur.Maps[n].Data {
			flat.Set(x, 0, 0, v)
			x++
		}
	}
	kset := tensor.NewKernel4(fc.Out, fc.In, 1)
	for m := 0; m < fc.Out; m++ {
		for n := 0; n < fc.In; n++ {
			kset.Set(m, n, 0, 0, weights[m*fc.In+n])
		}
	}
	conv := nn.ConvLayer{Name: fc.Name, M: fc.Out, N: fc.In, S: 1, K: 1}
	return conv, flat, kset, nil
}
