package pipeline_test

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"

	"flexflow/internal/arch"
	"flexflow/internal/core"
	"flexflow/internal/mapping2d"
	"flexflow/internal/nn"
	"flexflow/internal/pipeline"
	"flexflow/internal/sim"
	"flexflow/internal/systolic"
	"flexflow/internal/tensor"
	"flexflow/internal/tiling"
	"flexflow/internal/workloads"
)

// fakeEngine is a minimal arch.Engine for pipeline plumbing tests.
type fakeEngine struct{}

func (fakeEngine) Name() string { return "fake" }
func (fakeEngine) PEs() int     { return 1 }
func (fakeEngine) Model(l nn.ConvLayer) arch.LayerResult {
	return arch.LayerResult{Arch: "fake", Layer: l, PEs: 1, Cycles: 1, MACs: 1}
}
func (fakeEngine) Simulate(l nn.ConvLayer, in *tensor.Map3, k *tensor.Kernel4) (*tensor.Map3, arch.LayerResult, error) {
	return nil, arch.LayerResult{}, nil
}

func TestSchedulerRunsEveryIndex(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16} {
		n := 100
		hit := make([]int32, n)
		err := pipeline.Scheduler{Workers: workers}.Map(n, func(i int) error {
			atomic.AddInt32(&hit[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, h := range hit {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, h)
			}
		}
	}
}

func TestSchedulerReturnsLowestIndexError(t *testing.T) {
	// Indices 2 and 7 fail; at any worker count the caller must see
	// index 2's error, matching what a serial run reports first.
	for _, workers := range []int{1, 4, 0} {
		err := pipeline.Scheduler{Workers: workers}.Map(10, func(i int) error {
			if i == 2 || i == 7 {
				return fmt.Errorf("boom %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "boom 2" {
			t.Errorf("workers=%d: err = %v, want boom 2", workers, err)
		}
	}
}

func TestRunModelCollectsAllConvLayers(t *testing.T) {
	nw := &nn.Network{
		InputN: 1, InputS: 8,
		Layers: []nn.Layer{
			{Kind: nn.Conv, Conv: nn.ConvLayer{Name: "A", M: 2, N: 1, S: 6, K: 3}},
			{Kind: nn.Pool, Pool: nn.PoolLayer{Name: "P", N: 2, In: 6, P: 2}},
			{Kind: nn.Conv, Conv: nn.ConvLayer{Name: "B", M: 2, N: 2, S: 2, K: 2}},
		},
	}
	r, err := pipeline.RunModel(fakeEngine{}, nw, pipeline.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Arch != "fake" || len(r.Layers) != 2 {
		t.Fatalf("RunModel = %+v", r)
	}
	if r.Layers[0].Layer.Name != "A" || r.Layers[1].Layer.Name != "B" {
		t.Error("layer order wrong")
	}
}

func TestRunModelRejectsMalformedJobs(t *testing.T) {
	if _, err := pipeline.RunModel(nil, workloads.Example(), pipeline.Options{}); !errors.Is(err, pipeline.ErrJob) {
		t.Errorf("nil engine: %v", err)
	}
	if _, err := pipeline.RunModel(fakeEngine{}, nil, pipeline.Options{}); !errors.Is(err, pipeline.ErrJob) {
		t.Errorf("nil network: %v", err)
	}
}

func TestRunModelDeterministicAcrossWorkers(t *testing.T) {
	nw := workloads.LeNet5()
	e := core.New(8)
	base, err := pipeline.RunModel(e, nw, pipeline.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{4, runtime.GOMAXPROCS(0), 0} {
		got, err := pipeline.RunModel(e, nw, pipeline.Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(base, got) {
			t.Errorf("workers=%d: result differs from serial run", workers)
		}
	}
}

func TestRunModelBudgetFailsOnDeterministicLayer(t *testing.T) {
	nw := workloads.LeNet5()
	e := core.New(8)
	full, err := pipeline.RunModel(e, nw, pipeline.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// A budget that the first layer fits but the whole run does not:
	// the walk is in layer order, so the failing layer is always the
	// first one to cross the line, regardless of worker count.
	budget := full.Layers[0].Cycles
	var want string
	for _, workers := range []int{1, 4} {
		_, err := pipeline.RunModel(e, nw, pipeline.Options{MaxCycles: budget, Workers: workers})
		if !errors.Is(err, sim.ErrBudget) {
			t.Fatalf("workers=%d: err = %v, want ErrBudget", workers, err)
		}
		if want == "" {
			want = err.Error()
		} else if err.Error() != want {
			t.Errorf("workers=%d: budget error %q differs from serial %q", workers, err.Error(), want)
		}
	}
}

func TestRunModelCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := pipeline.RunModel(core.New(8), workloads.LeNet5(), pipeline.Options{Context: ctx})
	if !errors.Is(err, sim.ErrCancelled) {
		t.Errorf("err = %v, want ErrCancelled", err)
	}
}

// execEngines are the four cycle-level backends at small scale, for
// end-to-end Exec tests on the Example workload.
func execEngines() []arch.Engine {
	return []arch.Engine{
		systolic.New(4, 4),
		mapping2d.New(4),
		tiling.New(4, 4),
		core.New(4),
	}
}

func exampleJob(seed uint64) pipeline.NetworkJob {
	nw := workloads.Example()
	in := tensor.NewMap3(nw.InputN, nw.InputS, nw.InputS)
	in.FillPattern(seed)
	var kernels []*tensor.Kernel4
	for i, l := range nw.ConvLayers() {
		k := tensor.NewKernel4(l.M, l.N, l.K)
		k.FillPattern(seed + uint64(i)*7919)
		kernels = append(kernels, k)
	}
	return pipeline.NetworkJob{Network: nw, Input: in, Kernels: kernels}
}

func TestExecRunsEveryEngine(t *testing.T) {
	for _, e := range execEngines() {
		out, err := pipeline.Exec(e, core.NewPoolUnit(4), exampleJob(11), pipeline.Options{})
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if out.Output == nil || len(out.Layers) != 2 {
			t.Fatalf("%s: outcome %+v", e.Name(), out)
		}
		if out.Layers[0].Arch != e.Name() {
			t.Errorf("%s: layer arch = %q", e.Name(), out.Layers[0].Arch)
		}
	}
}

func TestExecBudgetStopsEveryEngine(t *testing.T) {
	// One cycle is never enough for Example C1, so the watchdog each
	// backend polls must stop the run with the typed budget error.
	for _, e := range execEngines() {
		_, err := pipeline.Exec(e, core.NewPoolUnit(4), exampleJob(11), pipeline.Options{MaxCycles: 1})
		if !errors.Is(err, sim.ErrBudget) {
			t.Errorf("%s: err = %v, want ErrBudget", e.Name(), err)
		}
	}
}

func TestExecCancelledStopsEveryEngine(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, e := range execEngines() {
		_, err := pipeline.Exec(e, core.NewPoolUnit(4), exampleJob(11), pipeline.Options{Context: ctx})
		if !errors.Is(err, sim.ErrCancelled) {
			t.Errorf("%s: err = %v, want ErrCancelled", e.Name(), err)
		}
	}
}

func TestExecBatchDeterministicAcrossWorkers(t *testing.T) {
	jobs := make([]pipeline.NetworkJob, 6)
	for i := range jobs {
		jobs[i] = exampleJob(uint64(100 + i))
	}
	backend := func(i int) (arch.Engine, pipeline.Pooler, pipeline.Options) {
		return core.New(4), core.NewPoolUnit(4), pipeline.Options{}
	}
	base, err := pipeline.ExecBatch(1, jobs, backend)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{4, 0} {
		got, err := pipeline.ExecBatch(workers, jobs, backend)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(base, got) {
			t.Errorf("workers=%d: batch results differ from serial run", workers)
		}
	}
}

// TestExecBatchCancelledCarriesImageIndex is the regression test for
// mid-batch cancellation attribution: the failure must surface as a
// typed *BatchError carrying the lowest failing image index (the
// message alone used to be the only place the index lived), with the
// cancellation sentinel still visible to errors.Is — at any worker
// count.
func TestExecBatchCancelledCarriesImageIndex(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	jobs := make([]pipeline.NetworkJob, 5)
	for i := range jobs {
		jobs[i] = exampleJob(uint64(200 + i))
	}
	for _, workers := range []int{1, 4, 0} {
		_, err := pipeline.ExecBatch(workers, jobs, func(i int) (arch.Engine, pipeline.Pooler, pipeline.Options) {
			return core.New(4), core.NewPoolUnit(4), pipeline.Options{Context: ctx}
		})
		if !errors.Is(err, sim.ErrCancelled) {
			t.Fatalf("workers=%d: err = %v, want ErrCancelled", workers, err)
		}
		var be *pipeline.BatchError
		if !errors.As(err, &be) {
			t.Fatalf("workers=%d: err = %v, want *BatchError", workers, err)
		}
		if be.Index != 0 {
			t.Errorf("workers=%d: BatchError.Index = %d, want 0 (lowest failing image)", workers, be.Index)
		}
		if !errors.Is(be.Err, sim.ErrCancelled) {
			t.Errorf("workers=%d: BatchError.Err = %v, want ErrCancelled", workers, be.Err)
		}
	}
}

func TestExecBatchReportsLowestFailingImage(t *testing.T) {
	jobs := make([]pipeline.NetworkJob, 4)
	for i := range jobs {
		jobs[i] = exampleJob(uint64(i))
	}
	jobs[1].Input = nil // malformed
	jobs[3].Input = nil
	for _, workers := range []int{1, 4} {
		_, err := pipeline.ExecBatch(workers, jobs, func(i int) (arch.Engine, pipeline.Pooler, pipeline.Options) {
			return core.New(4), core.NewPoolUnit(4), pipeline.Options{}
		})
		if err == nil || !strings.Contains(err.Error(), "batch image 1") {
			t.Errorf("workers=%d: err = %v, want batch image 1", workers, err)
		}
	}
}
