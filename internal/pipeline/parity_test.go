package pipeline_test

import (
	"math/rand"
	"testing"

	"flexflow/internal/arch"
	"flexflow/internal/core"
	"flexflow/internal/mapping2d"
	"flexflow/internal/nn"
	"flexflow/internal/pipeline"
	"flexflow/internal/rowstat"
	"flexflow/internal/systolic"
	"flexflow/internal/tensor"
	"flexflow/internal/tiling"
)

func makeOperands(l nn.ConvLayer, seed uint64) (*tensor.Map3, *tensor.Kernel4) {
	in := tensor.NewMap3(l.N, l.InSize(), l.InSize())
	in.FillPattern(seed)
	k := tensor.NewKernel4(l.M, l.N, l.K)
	k.FillPattern(seed + 1)
	return in, k
}

// counter reads one named counter off a LayerResult, so each engine's
// parity case can declare exactly which counters its Model guarantees.
func counter(lr arch.LayerResult, name string) int64 {
	switch name {
	case "Cycles":
		return lr.Cycles
	case "MACs":
		return lr.MACs
	case "NeuronLoads":
		return lr.NeuronLoads
	case "NeuronStores":
		return lr.NeuronStores
	case "KernelLoads":
		return lr.KernelLoads
	case "LocalReads":
		return lr.LocalReads
	case "LocalWrites":
		return lr.LocalWrites
	case "InterPEMoves":
		return lr.InterPEMoves
	case "DRAMReads":
		return lr.DRAMReads
	default:
		panic("unknown counter " + name)
	}
}

// TestModelMatchesSimulateCounters is the cross-engine parity gate:
// for every backend, the analytic Model and the cycle-level Simulate
// paths of the pipeline must agree exactly on the engine's guaranteed
// counter set over randomized layer shapes. It replaces the five
// per-engine copies of the same test; the seeds, trial counts and
// shape ranges are theirs, so coverage is preserved.
func TestModelMatchesSimulateCounters(t *testing.T) {
	cases := []struct {
		name     string
		seed     int64
		trials   int
		engine   func(rng *rand.Rand, trial int) arch.Engine
		layer    func(rng *rand.Rand) nn.ConvLayer
		counters []string
	}{
		{
			name: "FlexFlow", seed: 31, trials: 16,
			engine: func(rng *rand.Rand, trial int) arch.Engine {
				e := core.New(2 + rng.Intn(5))
				if trial%3 == 1 {
					e.RA, e.RS = false, false
				}
				if trial%3 == 2 {
					e.IPDR = false
				}
				return e
			},
			layer: func(rng *rand.Rand) nn.ConvLayer {
				return nn.ConvLayer{Name: "rand",
					M: 1 + rng.Intn(5), N: 1 + rng.Intn(3), S: 2 + rng.Intn(6), K: 1 + rng.Intn(4)}
			},
			counters: []string{"Cycles", "MACs", "NeuronLoads", "NeuronStores",
				"KernelLoads", "LocalReads", "LocalWrites", "DRAMReads"},
		},
		{
			name: "Systolic", seed: 3, trials: 12,
			engine: func(*rand.Rand, int) arch.Engine { return systolic.New(4, 3) },
			layer: func(rng *rand.Rand) nn.ConvLayer {
				return nn.ConvLayer{Name: "rand",
					M: 1 + rng.Intn(5), N: 1 + rng.Intn(3), S: 2 + rng.Intn(5), K: 1 + rng.Intn(5)}
			},
			counters: []string{"Cycles", "MACs", "NeuronLoads", "NeuronStores",
				"KernelLoads", "InterPEMoves"},
		},
		{
			name: "2D-Mapping", seed: 5, trials: 12,
			engine: func(*rand.Rand, int) arch.Engine { return mapping2d.New(4) },
			layer: func(rng *rand.Rand) nn.ConvLayer {
				return nn.ConvLayer{Name: "rand",
					M: 1 + rng.Intn(4), N: 1 + rng.Intn(3), S: 2 + rng.Intn(8), K: 1 + rng.Intn(4)}
			},
			counters: []string{"Cycles", "NeuronLoads", "KernelLoads",
				"InterPEMoves", "NeuronStores"},
		},
		{
			name: "Tiling", seed: 9, trials: 12,
			engine: func(*rand.Rand, int) arch.Engine { return tiling.New(4, 3) },
			layer: func(rng *rand.Rand) nn.ConvLayer {
				return nn.ConvLayer{Name: "rand",
					M: 1 + rng.Intn(6), N: 1 + rng.Intn(5), S: 2 + rng.Intn(4), K: 1 + rng.Intn(3)}
			},
			counters: []string{"Cycles", "MACs", "NeuronLoads", "NeuronStores",
				"KernelLoads", "LocalReads"},
		},
		{
			name: "Row-Stationary", seed: 17, trials: 14,
			engine: func(*rand.Rand, int) arch.Engine { return rowstat.New(6, 5) },
			layer: func(rng *rand.Rand) nn.ConvLayer {
				return nn.ConvLayer{Name: "rand",
					M: 1 + rng.Intn(7), N: 1 + rng.Intn(3), S: 2 + rng.Intn(7),
					K: 1 + rng.Intn(8)} // K can exceed Rows ⇒ folding
			},
			counters: []string{"Cycles", "MACs", "NeuronLoads", "NeuronStores",
				"KernelLoads", "InterPEMoves"},
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(tc.seed))
			for trial := 0; trial < tc.trials; trial++ {
				e := tc.engine(rng, trial)
				l := tc.layer(rng)
				in, k := makeOperands(l, uint64(trial))
				_, simRes, err := pipeline.RunLayer(e, pipeline.LayerJob{Layer: l, Input: in, Kernel: k})
				if err != nil {
					t.Fatalf("trial %d %+v: %v", trial, l, err)
				}
				_, mod, err := pipeline.RunLayer(e, pipeline.LayerJob{Layer: l})
				if err != nil {
					t.Fatalf("trial %d %+v: %v", trial, l, err)
				}
				for _, name := range tc.counters {
					if s, m := counter(simRes, name), counter(mod, name); s != m {
						t.Errorf("trial %d %+v: %s sim=%d model=%d", trial, l, name, s, m)
					}
				}
			}
		})
	}
}
