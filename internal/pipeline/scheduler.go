package pipeline

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Scheduler is the deterministic worker pool underneath every parallel
// stage of the pipeline: layers within RunModel, images within
// ExecBatch, (workload, engine) pairs within the cross-architecture
// sweeps. Independence is the caller's contract — each index must
// touch only its own slot — and determinism is the scheduler's:
// results are written into per-index slots (counter sharding) and read
// back in index order, so the merged output is bit-identical at any
// worker count.
type Scheduler struct {
	// Workers is the pool width: 0 means GOMAXPROCS, 1 runs inline
	// with no goroutines at all.
	Workers int
}

// width resolves the effective pool size for n independent units.
func (s Scheduler) width(n int) int {
	w := s.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	return w
}

// Map runs fn(0..n-1), each exactly once. With one worker the calls
// run inline in index order and stop at the first error. With more
// workers the calls are pulled off a shared atomic counter; every
// index still runs (an error does not cancel siblings, whose slots
// stay independent) and the returned error is the lowest-index one —
// the same error a serial run would surface — so the observable
// outcome does not depend on the worker count.
func (s Scheduler) Map(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	w := s.width(n)
	if w == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
