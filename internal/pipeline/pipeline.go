// Package pipeline is the single layer-execution path every engine
// plugs into. The per-layer orchestration the paper's evaluation needs
// — validate, plan, Model or Simulate, counter collection, energy
// billing, tracer/watchdog/fault wiring — used to be re-implemented in
// each engine package and in the facade; here it is one pipeline, and
// the four architectures (plus the row-stationary comparator) are
// backends of it. On top sits Scheduler, a deterministic worker pool
// that runs independent units concurrently with per-index result slots
// and an ordered merge, so every counter is bit-identical at any
// GOMAXPROCS or -workers setting.
package pipeline

import (
	"context"
	"errors"
	"fmt"

	"flexflow/internal/arch"
	"flexflow/internal/energy"
	"flexflow/internal/fault"
	"flexflow/internal/nn"
	"flexflow/internal/sim"
	"flexflow/internal/tensor"
)

// ErrJob marks a malformed job: nil tensors, a network that does not
// chain, operand shapes that do not match. The facade maps it onto its
// public ErrInvalidConfig.
var ErrJob = errors.New("pipeline: malformed job")

// badJob wraps a formatted message with ErrJob.
func badJob(format string, a ...any) error {
	return fmt.Errorf("%w: %s", ErrJob, fmt.Sprintf(format, a...))
}

// Options threads the execution controls uniformly through every
// engine — they used to be FlexFlow-only. The zero value is the plain
// fast path: serial-equivalent parallel execution, no cancellation, no
// cycle bound, no tracing, no faults.
type Options struct {
	// Context, when non-nil, cancels the run between schedule passes;
	// the result is a sim.ErrCancelled-wrapped error.
	Context context.Context
	// MaxCycles, when positive, bounds the total engine cycles of the
	// run (simulated or modelled); exceeding it returns a
	// sim.ErrBudget-wrapped error.
	MaxCycles int64
	// Tracer, when non-nil, is attached to backends that support it
	// (TracerHost) for the duration of the run.
	Tracer sim.Tracer
	// Injector, when non-nil, arms fault injection on backends that
	// support it (InjectorHost); DRAM-site events corrupt cloned
	// operand tensors before execution.
	Injector *fault.Injector
	// Workers is the Scheduler pool width for the run's independent
	// units: 0 means GOMAXPROCS, 1 serial. Results are identical at
	// any setting.
	Workers int
	// Analytic switches Exec from the cycle-level simulators to the
	// closed-form models: the run walks the network's shapes and
	// answers with the same per-layer counters and pool cycles, but
	// computes no feature maps (Output is nil) and fires no faults.
	Analytic bool
	// Cache, when non-nil, memoizes analytic LayerResults across runs
	// keyed by the engine's canonical shape key (CacheKeyer). Only
	// analytic evaluations consult it; simulated layers never do.
	Cache *Cache
}

// TracerHost is implemented by backends that can emit dataflow events.
type TracerHost interface {
	SetTracer(t sim.Tracer)
}

// WatchdogHost is implemented by backends whose Simulate polls a
// watchdog at schedule boundaries.
type WatchdogHost interface {
	SetWatchdog(w *sim.Watchdog)
}

// InjectorHost is implemented by backends that can corrupt their
// dataflow according to an armed fault plan.
type InjectorHost interface {
	SetInjector(inj *fault.Injector)
}

// attach wires the run controls into the backend, capability by
// capability. The watchdog is built here so every engine gets the same
// context/budget semantics; it is returned for the caller to poll
// between layers (covering backends without WatchdogHost support, and
// non-engine stages like pooling).
func attach(e arch.Engine, opts Options) *sim.Watchdog {
	if th, ok := e.(TracerHost); ok {
		th.SetTracer(opts.Tracer)
	}
	if ih, ok := e.(InjectorHost); ok {
		ih.SetInjector(opts.Injector)
	}
	var wd *sim.Watchdog
	if opts.Context != nil || opts.MaxCycles > 0 {
		wd = sim.NewWatchdog(opts.Context, opts.MaxCycles)
	}
	if wh, ok := e.(WatchdogHost); ok {
		wh.SetWatchdog(wd)
	}
	return wd
}

// cancelled reports a context cancellation as the typed sentinel.
func cancelled(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	select {
	case <-ctx.Done():
		return fmt.Errorf("%w: %v", sim.ErrCancelled, ctx.Err())
	default:
		return nil
	}
}

// LayerJob is one unit of work through the pipeline: a layer plus its
// operand tensors. A nil Input selects the analytic path (Model); with
// operands the layer goes through the cycle-level simulator.
type LayerJob struct {
	Index  int
	Layer  nn.ConvLayer
	Input  *tensor.Map3
	Kernel *tensor.Kernel4
	// Cache, when non-nil, memoizes the analytic path for engines that
	// implement CacheKeyer. Simulated jobs (Input != nil) ignore it.
	Cache *Cache
}

// RunLayer pushes one job through the pipeline stages on an already
// attached engine: analytic jobs return counters only, simulated jobs
// also the output feature maps. Analytic jobs with a cache consult it
// first; a hit restores the per-occurrence layer identity (Name is the
// only field outside the key) onto the shared entry.
func RunLayer(e arch.Engine, job LayerJob) (*tensor.Map3, arch.LayerResult, error) {
	if job.Input == nil {
		if job.Cache != nil {
			if ck, ok := e.(CacheKeyer); ok {
				if key, ok := ck.LayerCacheKey(job.Layer); ok {
					if lr, hit := job.Cache.lookup(key); hit {
						lr.Layer = job.Layer
						return nil, lr, nil
					}
					lr := e.Model(job.Layer)
					job.Cache.insert(key, lr)
					return nil, lr, nil
				}
			}
		}
		return nil, e.Model(job.Layer), nil
	}
	return e.Simulate(job.Layer, job.Input, job.Kernel)
}

// RunModel analytically evaluates every CONV layer of a network on the
// engine: the CheckNetwork validation stage, then one analytic
// LayerJob per layer fanned across the scheduler (layers are
// independent — Model is read-only on the engine), merged back in
// layer order. The context is polled per layer and the cycle budget is
// enforced on the merged result, walking layers in order so the
// failing layer does not depend on the worker count.
func RunModel(e arch.Engine, nw *nn.Network, opts Options) (arch.RunResult, error) {
	if e == nil {
		return arch.RunResult{}, badJob("nil engine")
	}
	if nw == nil {
		return arch.RunResult{}, badJob("nil network")
	}
	layers := nw.ConvLayers()
	if err := arch.CheckLayers(e, layers); err != nil {
		return arch.RunResult{}, fmt.Errorf("%w: %v", ErrJob, err)
	}
	res := arch.RunResult{Arch: e.Name(), Workload: nw.Name}
	if len(layers) == 0 {
		return res, nil
	}
	res.Layers = make([]arch.LayerResult, len(layers))
	sched := Scheduler{Workers: opts.Workers}
	err := sched.Map(len(layers), func(i int) error {
		if err := cancelled(opts.Context); err != nil {
			return err
		}
		_, lr, err := RunLayer(e, LayerJob{Index: i, Layer: layers[i], Cache: opts.Cache})
		if err != nil {
			return fmt.Errorf("layer %s: %w", layers[i].Name, err)
		}
		res.Layers[i] = lr
		return nil
	})
	if err != nil {
		return arch.RunResult{}, err
	}
	if opts.MaxCycles > 0 {
		var spent int64
		for _, lr := range res.Layers {
			spent += lr.Cycles
			if spent > opts.MaxCycles {
				return arch.RunResult{}, fmt.Errorf("%w: %d modelled cycles exceed budget %d (layer %s)",
					sim.ErrBudget, spent, opts.MaxCycles, lr.Layer.Name)
			}
		}
	}
	return res, nil
}

// RunBilled is RunModel with the energy-billing stage: each layer's
// counters are charged against the tariff table as they merge, in
// layer order, so the float accumulation is bit-identical to a serial
// p.RunEnergy over the same result.
func RunBilled(e arch.Engine, nw *nn.Network, p energy.Params, edge int, opts Options) (arch.RunResult, energy.Breakdown, error) {
	res, err := RunModel(e, nw, opts)
	if err != nil {
		return arch.RunResult{}, energy.Breakdown{}, err
	}
	var b energy.Breakdown
	for _, lr := range res.Layers {
		b = b.Add(p.LayerEnergy(lr, edge))
	}
	return res, b, nil
}
