package pipeline_test

import (
	"reflect"
	"sort"
	"testing"

	"flexflow/internal/arch"
	"flexflow/internal/core"
	"flexflow/internal/mapping"
	"flexflow/internal/mapping2d"
	"flexflow/internal/nn"
	"flexflow/internal/pipeline"
	"flexflow/internal/rowstat"
	"flexflow/internal/sim"
	"flexflow/internal/systolic"
	"flexflow/internal/tiling"
)

// modelVia runs one analytic layer through RunLayer with the cache.
func modelVia(t *testing.T, e arch.Engine, l nn.ConvLayer, c *pipeline.Cache) arch.LayerResult {
	t.Helper()
	_, lr, err := pipeline.RunLayer(e, pipeline.LayerJob{Layer: l, Cache: c})
	if err != nil {
		t.Fatalf("RunLayer %+v: %v", l, err)
	}
	return lr
}

// TestCacheKeyDistinguishesCollidingShapes pins the canonical key's
// field separators: (M=1, N=12) and (M=11, N=2) concatenate to the
// same digit string under a sloppy separator-less key, but must be two
// distinct cache entries with their own results.
func TestCacheKeyDistinguishesCollidingShapes(t *testing.T) {
	e := core.New(4)
	a := nn.ConvLayer{Name: "a", M: 1, N: 12, S: 4, K: 3}
	b := nn.ConvLayer{Name: "b", M: 11, N: 2, S: 4, K: 3}
	c := pipeline.NewCache(8)

	ra := modelVia(t, e, a, c)
	rb := modelVia(t, e, b, c)
	if s := c.Stats(); s.Entries != 2 || s.Misses != 2 {
		t.Fatalf("colliding shapes shared an entry: %+v", s)
	}
	// Warm probes must return each layer's own counters.
	if got := modelVia(t, e, a, c); got.Cycles != ra.Cycles || got.MACs != ra.MACs {
		t.Fatalf("warm a = %+v, cold a = %+v", got, ra)
	}
	if got := modelVia(t, e, b, c); got.MACs != rb.MACs {
		t.Fatalf("warm b = %+v, cold b = %+v", got, rb)
	}
	if s := c.Stats(); s.Hits != 2 {
		t.Fatalf("expected 2 hits, got %+v", s)
	}
}

// TestCacheKeySeparatesArmingStates pins the arming bits of the key:
// the same layer on the same engine with a tracer armed must occupy a
// distinct entry (an armed run may never alias an unarmed one), and
// un-arming must map back to the original entry.
func TestCacheKeySeparatesArmingStates(t *testing.T) {
	e := core.New(4)
	l := nn.ConvLayer{Name: "c", M: 3, N: 2, S: 6, K: 3}
	c := pipeline.NewCache(8)

	modelVia(t, e, l, c)
	e.SetTracer(&sim.Recorder{})
	modelVia(t, e, l, c)
	if s := c.Stats(); s.Entries != 2 || s.Misses != 2 {
		t.Fatalf("armed run aliased the unarmed entry: %+v", s)
	}
	e.SetTracer(nil)
	modelVia(t, e, l, c)
	if s := c.Stats(); s.Hits != 1 || s.Entries != 2 {
		t.Fatalf("un-armed run missed its original entry: %+v", s)
	}
}

// TestCacheHitBitIdentical asserts the full memoization contract on
// every engine: a cache hit returns a LayerResult bit-identical to the
// cold Model call, including the per-occurrence layer Name (the only
// field outside the key, restored on hit).
func TestCacheHitBitIdentical(t *testing.T) {
	l := nn.ConvLayer{Name: "first", M: 4, N: 3, S: 6, K: 3}
	twin := l
	twin.Name = "second"
	engines := []arch.Engine{
		core.New(4), systolic.New(4, 3), mapping2d.New(4),
		tiling.New(4, 3), rowstat.New(6, 5),
	}
	for _, e := range engines {
		c := pipeline.NewCache(8)
		cold := modelVia(t, e, l, c)
		warm := modelVia(t, e, l, c)
		if !reflect.DeepEqual(cold, warm) {
			t.Errorf("%s: hit diverges from cold Model:\ncold %+v\nwarm %+v", e.Name(), cold, warm)
		}
		renamed := modelVia(t, e, twin, c)
		if renamed.Layer.Name != "second" {
			t.Errorf("%s: hit kept the cached Name %q", e.Name(), renamed.Layer.Name)
		}
		renamed.Layer.Name = l.Name
		if !reflect.DeepEqual(cold, renamed) {
			t.Errorf("%s: same-shape twin diverges beyond Name:\ncold %+v\ntwin %+v", e.Name(), cold, renamed)
		}
		if s := c.Stats(); s.Entries != 1 || s.Hits != 2 {
			t.Errorf("%s: same-shape layers did not share one entry: %+v", e.Name(), s)
		}
	}
}

// TestCacheKeySeparatesMappingSpecs pins the mapping-spec digest in the
// key: two distinct specs evaluating the same layer shape must never
// share a cache entry, whether they differ in a dataflow toggle, a
// fixed factor vector, or only in name. A shared entry would let one
// mapping's counters answer for another's.
func TestCacheKeySeparatesMappingSpecs(t *testing.T) {
	base := mapping.PresetFlexFlow(4)
	toggled := base
	toggled.RA = false
	pinned := base.WithFactors(arch.T{Tm: 2, Tn: 1, Tr: 1, Tc: 2, Ti: 1, Tj: 3})
	renamed := base
	renamed.Name = "FlexFlow-b"
	specs := []mapping.Spec{base, toggled, pinned, renamed, mapping.PresetTiling(4, 4)}

	l := nn.ConvLayer{Name: "x", M: 2, N: 1, S: 4, K: 3}
	c := pipeline.NewCache(16)
	results := make([]arch.LayerResult, len(specs))
	for i, s := range specs {
		eng, err := mapping.Lower(s)
		if err != nil {
			t.Fatalf("spec %d (%s) does not lower: %v", i, s.Name, err)
		}
		results[i] = modelVia(t, eng, l, c)
	}
	if s := c.Stats(); s.Entries != len(specs) || s.Misses != int64(len(specs)) || s.Hits != 0 {
		t.Fatalf("distinct specs shared cache entries: %+v, want %d separate misses", s, len(specs))
	}
	// Warm probes must come back bit-identical per spec — proof the hit
	// landed on that spec's own entry.
	for i, s := range specs {
		eng, err := mapping.Lower(s)
		if err != nil {
			t.Fatal(err)
		}
		if got := modelVia(t, eng, l, c); got != results[i] {
			t.Errorf("spec %d (%s): warm result diverges\ncold %+v\nwarm %+v", i, s.Name, results[i], got)
		}
	}
	if s := c.Stats(); s.Hits != int64(len(specs)) {
		t.Fatalf("warm probes missed: %+v", s)
	}
}

// evictionLayers builds distinct layer shapes, more than the cache cap.
func evictionLayers(n int) []nn.ConvLayer {
	out := make([]nn.ConvLayer, n)
	for i := range out {
		out[i] = nn.ConvLayer{Name: "l", M: 1 + i%7, N: 1 + i/7, S: 4 + i%5, K: 3}
	}
	return out
}

// TestCacheEvictionDeterministic pins the eviction contract: the
// survivor set is the lexicographically smallest Capacity keys of the
// offered set — a pure function of what was offered, independent of
// insertion order — so any Scheduler worker count leaves bit-identical
// cache contents.
func TestCacheEvictionDeterministic(t *testing.T) {
	e := core.New(4)
	layers := evictionLayers(40)

	// The full offered key set, from an uncapped cache.
	full := pipeline.NewCache(len(layers))
	for _, l := range layers {
		modelVia(t, e, l, full)
	}
	allKeys := full.Keys()
	if len(allKeys) != len(layers) {
		t.Fatalf("expected %d distinct keys, got %d", len(layers), len(allKeys))
	}
	if !sort.StringsAreSorted(allKeys) {
		t.Fatal("Keys() is not sorted")
	}
	const cap = 16
	want := allKeys[:cap]

	for _, workers := range []int{1, 2, 8} {
		c := pipeline.NewCache(cap)
		sched := pipeline.Scheduler{Workers: workers}
		err := sched.Map(len(layers), func(i int) error {
			_, _, err := pipeline.RunLayer(e, pipeline.LayerJob{Layer: layers[i], Cache: c})
			return err
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got := c.Keys(); !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: survivors diverge\ngot  %q\nwant %q", workers, got, want)
		}
		if s := c.Stats(); s.Entries != cap {
			t.Errorf("workers=%d: %d entries, want %d", workers, s.Entries, cap)
		}
	}
}

// TestCacheDisabledAndDeclined covers the off switches: capacity < 1
// returns a nil cache (zero stats, nil keys), and a nil cache on the
// job leaves RunLayer on the plain Model path.
func TestCacheDisabledAndDeclined(t *testing.T) {
	if c := pipeline.NewCache(0); c != nil {
		t.Fatal("NewCache(0) should disable the cache")
	}
	var c *pipeline.Cache
	if s := c.Stats(); s != (pipeline.CacheStats{}) {
		t.Fatalf("nil cache stats = %+v", s)
	}
	if k := c.Keys(); k != nil {
		t.Fatalf("nil cache keys = %v", k)
	}
	e := core.New(4)
	l := nn.ConvLayer{Name: "x", M: 2, N: 1, S: 4, K: 3}
	_, lr, err := pipeline.RunLayer(e, pipeline.LayerJob{Layer: l})
	if err != nil || lr.Cycles == 0 {
		t.Fatalf("uncached path broken: %+v, %v", lr, err)
	}
}
