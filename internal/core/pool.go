package core

import (
	"fmt"

	"flexflow/internal/fixed"
	"flexflow/internal/tensor"
)

// PoolUnit is FlexFlow's 1-D pooling unit (Fig. 6): a row of Width
// lightweight ALUs that subsample convolution results before they
// re-enter a neuron buffer, reducing inter-layer data transmission.
type PoolUnit struct {
	Width int // number of ALUs (the paper sizes it to the array edge D)

	cycles int64
	ops    int64
}

// NewPoolUnit returns a pooling unit with the given ALU count.
func NewPoolUnit(width int) *PoolUnit {
	if width <= 0 {
		panic("flexflow: pool unit width must be positive")
	}
	return &PoolUnit{Width: width}
}

// Cycles and Ops return the accumulated usage counters.
func (u *PoolUnit) Cycles() int64 { return u.cycles }
func (u *PoolUnit) Ops() int64    { return u.ops }

// AccountPool charges the unit for pooling an N@H×W stack with
// non-overlapping P×P windows without computing any values — the
// analytic pipeline's pooling stage. The validation and the
// cycle/operation accounting mirror Apply exactly (the counters are a
// pure function of the shape), which is what lets the analytic run
// claim bit-identical PoolCycles against the functional one.
func (u *PoolUnit) AccountPool(n, h, w, p int) error {
	if p <= 0 {
		return fmt.Errorf("flexflow: pooling window %d must be positive", p)
	}
	if h/p <= 0 || w/p <= 0 {
		return fmt.Errorf("flexflow: pooling window %d exceeds map %dx%d", p, h, w)
	}
	windows := int64(n) * int64(h/p) * int64(w/p)
	elemsPerWindow := int64(p * p)
	u.cycles += ((windows + int64(u.Width) - 1) / int64(u.Width)) * elemsPerWindow
	u.ops += windows * elemsPerWindow
	return nil
}

// Apply subsamples the stack with non-overlapping P×P windows. Each
// window costs P²-1 comparator/adder operations (plus one scale for
// average pooling); the Width ALUs process windows in parallel, one
// window element per ALU per cycle.
func (u *PoolUnit) Apply(in *tensor.Map3, p int, kind tensor.PoolKind) (*tensor.Map3, error) {
	if p <= 0 {
		return nil, fmt.Errorf("flexflow: pooling window %d must be positive", p)
	}
	if in.H/p <= 0 || in.W/p <= 0 {
		return nil, fmt.Errorf("flexflow: pooling window %d exceeds map %dx%d", p, in.H, in.W)
	}
	outH, outW := in.H/p, in.W/p
	out := tensor.NewMap3(in.N, outH, outW)
	inv := fixed.FromFloat(1.0 / float64(p*p))

	windows := int64(in.N) * int64(outH) * int64(outW)
	elemsPerWindow := int64(p * p)
	// Width windows proceed in parallel; each consumes one element per
	// cycle.
	u.cycles += ((windows + int64(u.Width) - 1) / int64(u.Width)) * elemsPerWindow
	u.ops += windows * elemsPerWindow

	for n := 0; n < in.N; n++ {
		for r := 0; r < outH; r++ {
			for c := 0; c < outW; c++ {
				switch kind {
				case tensor.MaxPool:
					best := in.At(n, r*p, c*p)
					for i := 0; i < p; i++ {
						for j := 0; j < p; j++ {
							if v := in.At(n, r*p+i, c*p+j); v > best {
								best = v
							}
						}
					}
					out.Set(n, r, c, best)
				case tensor.AvgPool:
					var sum fixed.Acc
					for i := 0; i < p; i++ {
						for j := 0; j < p; j++ {
							sum = fixed.AddAcc(sum, in.At(n, r*p+i, c*p+j).Extend())
						}
					}
					out.Set(n, r, c, fixed.Mul(sum.Round(), inv))
				default:
					return nil, fmt.Errorf("flexflow: unknown pooling kind %v", kind)
				}
			}
		}
	}
	return out, nil
}
