package core

// Tests for the robustness wiring of Simulate: the fault-injection
// hook points and the watchdog. The central invariant is that a nil
// (or empty) injector and a nil watchdog leave the fault-free path
// bit-identical — outputs, cycles and every movement counter.

import (
	"context"
	"errors"
	"testing"

	"flexflow/internal/bus"
	"flexflow/internal/fault"
	"flexflow/internal/nn"
	"flexflow/internal/sim"
	"flexflow/internal/tensor"
)

var faultTestLayer = nn.ConvLayer{Name: "ft", M: 3, N: 2, S: 6, K: 3}

func TestSimulateEmptyInjectorUnchanged(t *testing.T) {
	l := faultTestLayer
	in, k := makeOperands(l, 11)

	clean := New(4)
	wantOut, wantRes, err := clean.Simulate(l, in, k)
	if err != nil {
		t.Fatal(err)
	}

	armed := New(4)
	armed.Injector = fault.NewInjector(nil) // armed but empty plan
	armed.Watchdog = sim.NewWatchdog(context.Background(), 1<<40)
	gotOut, gotRes, err := armed.Simulate(l, in, k)
	if err != nil {
		t.Fatal(err)
	}
	if !gotOut.Equal(wantOut) {
		t.Error("empty injector changed the output tensor")
	}
	if gotRes != wantRes {
		t.Errorf("empty injector changed counters:\n got %+v\nwant %+v", gotRes, wantRes)
	}
}

func TestSimulateBitFlipCorruptsDataOnly(t *testing.T) {
	l := faultTestLayer
	in, k := makeOperands(l, 11)

	clean := New(4)
	wantOut, wantRes, err := clean.Simulate(l, in, k)
	if err != nil {
		t.Fatal(err)
	}

	// A high-bit flip on a neuron-store read port early in the run:
	// data corrupts, but the dataflow (cycles, movement counters) is
	// untouched — exactly what makes the SDC taxonomy meaningful.
	faulty := New(4)
	faulty.Injector = fault.NewInjector(&fault.Plan{Events: []fault.Event{
		{Site: fault.SiteNeuronStore, Model: fault.BitFlip, Cycle: 0, Row: 0, Col: 0, Bit: 14},
	}})
	gotOut, gotRes, err := faulty.Simulate(l, in, k)
	if err != nil {
		t.Fatal(err)
	}
	if faulty.Injector.Fired() != 1 {
		t.Fatalf("bit flip did not fire (Fired = %d)", faulty.Injector.Fired())
	}
	if gotOut.Equal(wantOut) {
		t.Error("a 2^6-weight operand flip was silently exact — expected a corrupted output")
	}
	if gotRes != wantRes {
		t.Errorf("bit flip changed counters:\n got %+v\nwant %+v", gotRes, wantRes)
	}
}

func TestSimulateMACStuckAtZero(t *testing.T) {
	l := faultTestLayer
	in, k := makeOperands(l, 11)

	clean := New(4)
	wantOut, wantRes, err := clean.Simulate(l, in, k)
	if err != nil {
		t.Fatal(err)
	}

	faulty := New(4)
	faulty.Injector = fault.NewInjector(&fault.Plan{Events: []fault.Event{
		{Site: fault.SiteMAC, Model: fault.StuckAtZero, Cycle: 0, Row: 0, Col: -1},
	}})
	gotOut, gotRes, err := faulty.Simulate(l, in, k)
	if err != nil {
		t.Fatal(err)
	}
	if faulty.Injector.Hits() == 0 {
		t.Fatal("stuck-at-zero never matched a MAC")
	}
	if gotOut.Equal(wantOut) {
		t.Error("a stuck-at-zero PE left the output intact")
	}
	// The op was issued and its operands read; only the product is lost.
	if gotRes.MACs != wantRes.MACs || gotRes.LocalReads != wantRes.LocalReads {
		t.Errorf("stuck-at fault changed issue counters: MACs %d/%d, LocalReads %d/%d",
			gotRes.MACs, wantRes.MACs, gotRes.LocalReads, wantRes.LocalReads)
	}
}

func TestSimulateBusDropDetectableByAudit(t *testing.T) {
	l := faultTestLayer
	in, k := makeOperands(l, 11)

	run := func(inj *fault.Injector) (int64, int64) {
		e := New(4)
		e.VerticalBus = bus.New("v")
		e.HorizontalBus = bus.New("h")
		e.Injector = inj
		if _, _, err := e.Simulate(l, in, k); err != nil {
			t.Fatal(err)
		}
		return e.VerticalBus.Transfers(), e.HorizontalBus.Transfers()
	}

	cleanV, cleanH := run(nil)
	dropV, _ := run(fault.NewInjector(&fault.Plan{Events: []fault.Event{
		{Site: fault.SiteBusVertical, Model: fault.Drop, Cycle: 0},
	}}))
	if dropV != cleanV-1 {
		t.Errorf("dropped transfer: vertical bus %d, want %d", dropV, cleanV-1)
	}
	_, dupH := run(fault.NewInjector(&fault.Plan{Events: []fault.Event{
		{Site: fault.SiteBusHorizontal, Model: fault.Duplicate, Cycle: 0},
	}}))
	if dupH != cleanH+1 {
		t.Errorf("duplicated transfer: horizontal bus %d, want %d", dupH, cleanH+1)
	}
}

func TestSimulateWatchdogBudget(t *testing.T) {
	l := faultTestLayer
	in, k := makeOperands(l, 11)
	e := New(4)
	e.Watchdog = sim.NewWatchdog(nil, 2) // far below the layer's cycles
	_, _, err := e.Simulate(l, in, k)
	if !errors.Is(err, sim.ErrBudget) {
		t.Errorf("budget watchdog: err = %v, want ErrBudget", err)
	}
}

func TestSimulateWatchdogCancel(t *testing.T) {
	l := faultTestLayer
	in, k := makeOperands(l, 11)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: the run must stop at the first check
	e := New(4)
	e.Watchdog = sim.NewWatchdog(ctx, 0)
	_, _, err := e.Simulate(l, in, k)
	if !errors.Is(err, sim.ErrCancelled) {
		t.Errorf("cancelled context: err = %v, want ErrCancelled", err)
	}
}

func TestMicroSimulateBankReadHook(t *testing.T) {
	// The banked-SRAM hook point: stage a tiny layer through
	// MicroSimulate with a bank read hook installed via the injector
	// adapter, and check the corruption reaches the output.
	l := nn.ConvLayer{Name: "bank", M: 1, N: 1, S: 3, K: 2}
	in, k := makeOperands(l, 5)

	clean := New(4)
	wantOut, _, err := clean.MicroSimulate(l, in, k)
	if err != nil {
		t.Fatal(err)
	}
	if !wantOut.Equal(tensor.Conv(in, k)) {
		t.Fatal("clean MicroSimulate does not match golden conv")
	}
	// MicroSimulate stages operands through mem.BankedBuffer; the bank
	// hook is installed directly (unit-level) in the mem tests. Here we
	// prove the same injector adapter corrupts a raw banked read.
	inj := fault.NewInjector(&fault.Plan{Events: []fault.Event{
		{Site: fault.SiteBankRead, Model: fault.BitFlip, Cycle: 0, Row: -1, Col: -1, Bit: 3},
	}})
	hook := inj.StoreReadHook(fault.SiteBankRead, -1, -1, func() int64 { return 0 })
	if got := hook(0, 8); got != 0 {
		t.Errorf("bank-read adapter: got %d, want 0 (bit 3 cleared)", got)
	}
}
