package core

import (
	"flexflow/internal/arch"
	"flexflow/internal/bus"
	"flexflow/internal/fault"
	"flexflow/internal/mapping"
	"flexflow/internal/nn"
	"flexflow/internal/sim"
)

// Engine is a FlexFlow computing engine: a D×D PE matrix with per-PE
// local stores, per-row adder trees, vertical/horizontal common data
// buses, a 1-D pooling unit and an instruction decoder (Fig. 6).
type Engine struct {
	// D is the PE-array edge; the paper's evaluation configuration is
	// 16 (256 PEs).
	D int

	// NeuronStoreWords and KernelStoreWords size the per-PE local
	// stores in 16-bit words (256 B = 128 words each in Table 5).
	NeuronStoreWords int
	KernelStoreWords int

	// BufferWords sizes each of the three on-chip buffers (two neuron
	// buffers and one kernel buffer; 32 KB = 16384 words each).
	BufferWords int

	// RA, RS and IPDR enable the three dataflow optimizations of
	// Sections 4.3–4.5. All default to on; switching one off models the
	// ablated machine: without RA+RS every PE row fetches its own copy
	// of overlapping neurons (and the vertical buses may stall), and
	// without IPDR every row-group re-reads kernels from the buffer.
	RA, RS, IPDR bool

	// Chooser selects unrolling factors for a layer. The default is
	// ChooseFactors with the layer's own S as the T_r/T_c bound; the
	// compiler package installs a network-coupled chooser.
	Chooser func(l nn.ConvLayer) arch.T

	// Tracer, when non-nil, receives dataflow events from Simulate.
	Tracer sim.Tracer

	// VerticalBus and HorizontalBus, when non-nil, receive the
	// Simulate-time bus activity: every neuron word placed on a column
	// CDB (fanned out to the rows that stage it) and every kernel word
	// placed on a row CDB (replicated by IPDR to the T_r·T_c rows of
	// its logical group). They let tests and tools audit that the bus
	// traffic equals the buffer-read counters.
	VerticalBus   *bus.CDB
	HorizontalBus *bus.CDB

	// Injector, when non-nil, corrupts the dataflow according to its
	// armed fault plan: operand reads out of the PE local stores, PE
	// multiplier outputs, and (through the bus TransferHooks it
	// installs) CDB transfers. Nil keeps the fault-free fast path.
	Injector *fault.Injector

	// Watchdog, when non-nil, bounds Simulate: it is polled at pass
	// boundaries and between compute chunks, so a cancelled context or
	// exhausted cycle budget stops the run with a typed error instead
	// of letting it run away.
	Watchdog *sim.Watchdog

	// micro holds MicroSimulate's reusable per-pass scratch buffers.
	// Keeping them on the engine (grown once, reused across passes and
	// calls) is what makes the micro path's inner loops allocation-free
	// — the flexlint hotalloc budget pins it. The trade-off is that
	// MicroSimulate is not safe for concurrent use on a shared Engine;
	// the pipeline's backend contract (fresh engine per batch index)
	// already guarantees one goroutine per engine.
	micro microScratch
}

// New returns a FlexFlow engine with the paper's Table 5 configuration
// and all dataflow optimizations enabled.
func New(d int) *Engine {
	if d <= 0 {
		panic("flexflow: D must be positive")
	}
	e := &Engine{
		D:                d,
		NeuronStoreWords: 128,
		KernelStoreWords: 128,
		BufferWords:      16384,
		RA:               true,
		RS:               true,
		IPDR:             true,
	}
	e.Chooser = func(l nn.ConvLayer) arch.T { return arch.ChooseFactors(l, e.D, l.S) }
	return e
}

// SetTracer installs (or clears) the dataflow tracer; it is the
// capability setter the execution pipeline uses to thread run options
// uniformly through every engine.
func (e *Engine) SetTracer(t sim.Tracer) { e.Tracer = t }

// SetWatchdog installs (or clears) the simulation watchdog.
func (e *Engine) SetWatchdog(w *sim.Watchdog) { e.Watchdog = w }

// SetInjector arms (or clears) the fault injector.
func (e *Engine) SetInjector(inj *fault.Injector) { e.Injector = inj }

// Name implements arch.Engine.
func (e *Engine) Name() string { return "FlexFlow" }

// PEs implements arch.Engine.
func (e *Engine) PEs() int { return e.D * e.D }

// flex returns the mapping-layer lowering rule configured exactly as
// this engine; every analytic path (Model, Simulate's accounting, the
// schedule inspectors) goes through it, so the engine and its preset
// mapping spec cannot drift.
func (e *Engine) flex() mapping.Flex {
	return mapping.Flex{
		D:                e.D,
		NeuronStoreWords: e.NeuronStoreWords,
		KernelStoreWords: e.KernelStoreWords,
		BufferWords:      e.BufferWords,
		RA:               e.RA, RS: e.RS, IPDR: e.IPDR,
	}
}

// spec returns the engine's configuration as its mapping spec: the
// flexflow preset with this engine's geometry, stores and ablation
// bits.
func (e *Engine) spec() mapping.Spec {
	s := mapping.PresetFlexFlow(e.D)
	s.Geom.NeuronStoreWords = e.NeuronStoreWords
	s.Geom.KernelStoreWords = e.KernelStoreWords
	s.Geom.BufferWords = e.BufferWords
	s.RA, s.RS, s.IPDR = e.RA, e.RS, e.IPDR
	return s
}

// LayerCacheKey implements the pipeline's CacheKeyer: the canonical
// memo key covers everything Model reads — the engine's mapping-spec
// digest (kind, array edge, store and buffer capacities, dataflow
// directives and ablation bits, via mapping.AppendSpecKey), the chosen
// unrolling factors (which capture exactly what Model consumes from
// the installed Chooser, compiled or default), the observer arming
// state, and the layer shape. Name and ReLU are excluded (see
// arch.AppendLayerKey); the watchdog is excluded because it never
// changes Model's output, only whether a run is allowed to finish.
func (e *Engine) LayerCacheKey(l nn.ConvLayer) (string, bool) {
	if e.Chooser == nil {
		return "", false
	}
	b := make([]byte, 0, 224)
	s := e.spec()
	b = mapping.AppendSpecKey(b, &s)
	b = arch.AppendKeyBool(b, e.Tracer != nil)
	b = arch.AppendKeyBool(b, e.Injector != nil)
	b = arch.AppendKeyFactors(b, e.Chooser(l))
	b = arch.AppendLayerKey(b, l)
	return string(b), true
}

// scheduleFor derives the layer's schedule from the chosen factors and
// the local-store capacity (see mapping.Flex.Schedule).
func (e *Engine) scheduleFor(l nn.ConvLayer, t arch.T) mapping.FlexSchedule {
	return e.flex().Schedule(l, t)
}

// Model implements arch.Engine by lowering the layer through the
// flexflow mapping rule under the installed Chooser's factors.
func (e *Engine) Model(l nn.ConvLayer) arch.LayerResult {
	res := e.flex().Account(l, e.Chooser(l), 0)
	res.Arch = e.Name()
	return res
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
