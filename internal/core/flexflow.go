package core

import (
	"flexflow/internal/arch"
	"flexflow/internal/bus"
	"flexflow/internal/fault"
	"flexflow/internal/nn"
	"flexflow/internal/sim"
)

// Engine is a FlexFlow computing engine: a D×D PE matrix with per-PE
// local stores, per-row adder trees, vertical/horizontal common data
// buses, a 1-D pooling unit and an instruction decoder (Fig. 6).
type Engine struct {
	// D is the PE-array edge; the paper's evaluation configuration is
	// 16 (256 PEs).
	D int

	// NeuronStoreWords and KernelStoreWords size the per-PE local
	// stores in 16-bit words (256 B = 128 words each in Table 5).
	NeuronStoreWords int
	KernelStoreWords int

	// BufferWords sizes each of the three on-chip buffers (two neuron
	// buffers and one kernel buffer; 32 KB = 16384 words each).
	BufferWords int

	// RA, RS and IPDR enable the three dataflow optimizations of
	// Sections 4.3–4.5. All default to on; switching one off models the
	// ablated machine: without RA+RS every PE row fetches its own copy
	// of overlapping neurons (and the vertical buses may stall), and
	// without IPDR every row-group re-reads kernels from the buffer.
	RA, RS, IPDR bool

	// Chooser selects unrolling factors for a layer. The default is
	// ChooseFactors with the layer's own S as the T_r/T_c bound; the
	// compiler package installs a network-coupled chooser.
	Chooser func(l nn.ConvLayer) arch.T

	// Tracer, when non-nil, receives dataflow events from Simulate.
	Tracer sim.Tracer

	// VerticalBus and HorizontalBus, when non-nil, receive the
	// Simulate-time bus activity: every neuron word placed on a column
	// CDB (fanned out to the rows that stage it) and every kernel word
	// placed on a row CDB (replicated by IPDR to the T_r·T_c rows of
	// its logical group). They let tests and tools audit that the bus
	// traffic equals the buffer-read counters.
	VerticalBus   *bus.CDB
	HorizontalBus *bus.CDB

	// Injector, when non-nil, corrupts the dataflow according to its
	// armed fault plan: operand reads out of the PE local stores, PE
	// multiplier outputs, and (through the bus TransferHooks it
	// installs) CDB transfers. Nil keeps the fault-free fast path.
	Injector *fault.Injector

	// Watchdog, when non-nil, bounds Simulate: it is polled at pass
	// boundaries and between compute chunks, so a cancelled context or
	// exhausted cycle budget stops the run with a typed error instead
	// of letting it run away.
	Watchdog *sim.Watchdog

	// micro holds MicroSimulate's reusable per-pass scratch buffers.
	// Keeping them on the engine (grown once, reused across passes and
	// calls) is what makes the micro path's inner loops allocation-free
	// — the flexlint hotalloc budget pins it. The trade-off is that
	// MicroSimulate is not safe for concurrent use on a shared Engine;
	// the pipeline's backend contract (fresh engine per batch index)
	// already guarantees one goroutine per engine.
	micro microScratch
}

// New returns a FlexFlow engine with the paper's Table 5 configuration
// and all dataflow optimizations enabled.
func New(d int) *Engine {
	if d <= 0 {
		panic("flexflow: D must be positive")
	}
	e := &Engine{
		D:                d,
		NeuronStoreWords: 128,
		KernelStoreWords: 128,
		BufferWords:      16384,
		RA:               true,
		RS:               true,
		IPDR:             true,
	}
	e.Chooser = func(l nn.ConvLayer) arch.T { return arch.ChooseFactors(l, e.D, l.S) }
	return e
}

// SetTracer installs (or clears) the dataflow tracer; it is the
// capability setter the execution pipeline uses to thread run options
// uniformly through every engine.
func (e *Engine) SetTracer(t sim.Tracer) { e.Tracer = t }

// SetWatchdog installs (or clears) the simulation watchdog.
func (e *Engine) SetWatchdog(w *sim.Watchdog) { e.Watchdog = w }

// SetInjector arms (or clears) the fault injector.
func (e *Engine) SetInjector(inj *fault.Injector) { e.Injector = inj }

// Name implements arch.Engine.
func (e *Engine) Name() string { return "FlexFlow" }

// PEs implements arch.Engine.
func (e *Engine) PEs() int { return e.D * e.D }

// LayerCacheKey implements the pipeline's CacheKeyer: the canonical
// memo key covers everything Model reads — the engine kind, the full
// architectural configuration (array edge, store and buffer
// capacities, dataflow-optimization ablation bits), the chosen
// unrolling factors (which capture exactly what Model consumes from
// the installed Chooser, compiled or default), the observer arming
// state, and the layer shape. Name and ReLU are excluded (see
// arch.AppendLayerKey); the watchdog is excluded because it never
// changes Model's output, only whether a run is allowed to finish.
func (e *Engine) LayerCacheKey(l nn.ConvLayer) (string, bool) {
	if e.Chooser == nil {
		return "", false
	}
	b := make([]byte, 0, 96)
	b = arch.AppendKeyString(b, e.Name())
	b = arch.AppendKeyInt(b, int64(e.D))
	b = arch.AppendKeyInt(b, int64(e.NeuronStoreWords))
	b = arch.AppendKeyInt(b, int64(e.KernelStoreWords))
	b = arch.AppendKeyInt(b, int64(e.BufferWords))
	b = arch.AppendKeyBool(b, e.RA)
	b = arch.AppendKeyBool(b, e.RS)
	b = arch.AppendKeyBool(b, e.IPDR)
	b = arch.AppendKeyBool(b, e.Tracer != nil)
	b = arch.AppendKeyBool(b, e.Injector != nil)
	b = arch.AppendKeyFactors(b, e.Chooser(l))
	b = arch.AppendLayerKey(b, l)
	return string(b), true
}

// schedule is the concrete execution schedule of one layer: the
// unrolling factors plus the input-map chunking that keeps the per-PE
// working set inside the local stores. Each PE consumes one operand
// pair per cycle, so over one pass it touches exactly
// ⌈vN/T_n⌉·⌈K/T_i⌉·⌈K/T_j⌉ words of each kind. Layers whose full-N
// working set overflows the 128-word stores are split into chunks of
// input maps; partial sums are written back to the neuron buffer
// between chunks and re-read for accumulation (the paper's Fig. 13f
// mechanism).
type schedule struct {
	t      arch.T
	kij    int64 // ⌈K/T_i⌉·⌈K/T_j⌉
	nChunk int   // input maps per chunk (multiple of T_n), ≤ N
	chunks int
}

// scheduleFor derives the layer's schedule from the chosen factors and
// the local-store capacity.
func (e *Engine) scheduleFor(l nn.ConvLayer, t arch.T) schedule {
	kij := int64(ceilDiv(l.K, t.Ti)) * int64(ceilDiv(l.K, t.Tj))
	cap64 := int64(min(e.NeuronStoreWords, e.KernelStoreWords))
	blocks := int64(1)
	if kij > 0 && cap64/kij > 0 {
		blocks = cap64 / kij // n-blocks whose operands fit one PE store
	}
	nChunk := int(blocks) * t.Tn
	if nChunk >= l.N {
		nChunk = l.N
	}
	if nChunk < t.Tn {
		nChunk = t.Tn // corner: even one n-block overflows; accept it
	}
	return schedule{
		t:      t,
		kij:    kij,
		nChunk: nChunk,
		chunks: ceilDiv(l.N, nChunk),
	}
}

// cppChunk returns the compute cycles of one pass over a chunk of vN
// input maps.
func (s schedule) cppChunk(vN int) int64 {
	return int64(ceilDiv(vN, s.t.Tn)) * s.kij
}

// passInfo describes one group pass over an output block for one input
// chunk.
type passInfo struct {
	n0, vN        int // input-map chunk
	m0, r0, c0    int // block origin in (map, row, col) space
	vTm, vTr, vTc int // valid extent of the block
	newMBlock     bool
	firstChunk    bool
}

// forEachPass iterates the pass schedule: input chunks outermost (the
// partial-sum loop), then m-blocks (so kernel local stores persist
// across all position passes of an m-block), then output row/column
// blocks.
func forEachPass(l nn.ConvLayer, s schedule, fn func(p passInfo)) {
	t := s.t
	for n0 := 0; n0 < l.N; n0 += s.nChunk {
		vN := min(s.nChunk, l.N-n0)
		for m0 := 0; m0 < l.M; m0 += t.Tm {
			first := true
			for r0 := 0; r0 < l.S; r0 += t.Tr {
				for c0 := 0; c0 < l.S; c0 += t.Tc {
					fn(passInfo{
						n0: n0, vN: vN,
						m0: m0, r0: r0, c0: c0,
						vTm:        min(t.Tm, l.M-m0),
						vTr:        min(t.Tr, l.S-r0),
						vTc:        min(t.Tc, l.S-c0),
						newMBlock:  first,
						firstChunk: n0 == 0,
					})
					first = false
				}
			}
		}
	}
}

// kernelPassReads returns the kernel-buffer reads and kernel
// local-store writes caused by pass p. Kernels are loaded on entry to
// each (chunk, m-block) and stay resident across its position passes;
// when even one chunk overflows the store (the nChunk == Tn corner),
// the non-resident fraction is re-streamed every pass. IPDR replicates
// one buffer read to all T_r·T_c rows of a group; without it each
// row-group issues its own read.
func (e *Engine) kernelPassReads(l nn.ConvLayer, s schedule, p passInfo) (reads, localWrites int64) {
	chunkWords := int64(p.vN) * int64(l.K) * int64(l.K)
	validRows := int64(p.vTm) * int64(p.vTr) * int64(p.vTc)
	cpp := s.cppChunk(p.vN)
	cap64 := int64(e.KernelStoreWords)
	switch {
	case p.newMBlock:
		reads = int64(p.vTm) * chunkWords
		localWrites = validRows * chunkWords
	case cpp > cap64:
		reads = int64(p.vTm) * chunkWords * (cpp - cap64) / cpp
		localWrites = validRows * chunkWords * (cpp - cap64) / cpp
	}
	if !e.IPDR {
		reads *= int64(p.vTr) * int64(p.vTc)
	}
	return reads, localWrites
}

// neuronReuseOK reports whether the inter-pass window reuse of RA+RS is
// available: the chunk working set must fit the neuron local store so
// the previous pass's overlap columns are still staged.
func (e *Engine) neuronReuseOK(s schedule, vN int) bool {
	return e.RA && e.RS && s.cppChunk(vN) <= int64(e.NeuronStoreWords)
}

// accountPass adds the cycle and traffic cost of one pass to res. It is
// the analytic mirror of Simulate's measured accounting; the property
// tests hold the two equal.
func (e *Engine) accountPass(l nn.ConvLayer, s schedule, p passInfo, res *arch.LayerResult) {
	cpp := s.cppChunk(p.vN)
	chunkOps := int64(p.vN) * int64(l.K) * int64(l.K)
	validRows := int64(p.vTm) * int64(p.vTr) * int64(p.vTc)

	// Neuron traffic: with RA+RS the union input window of the block is
	// fetched once (overlaps between rows exploited by reordering and
	// preloading), and consecutive c-blocks of a row band reuse the
	// staged overlap columns, so only the stride·vTc new columns
	// arrive. Without the optimizations every row fetches its own K×K
	// windows. The union spans account for the layer stride: windows of
	// consecutive outputs overlap only while stride < K.
	str := l.Str()
	rowSpan := int64(unionSpan(p.vTr, str, l.K))
	var neuronWords int64
	switch {
	case !(e.RA && e.RS):
		neuronWords = validRows * chunkOps
	case e.neuronReuseOK(s, p.vN) && p.c0 > 0:
		newCols := int64(p.vTc * str)
		if full := int64(unionSpan(p.vTc, str, l.K)); newCols > full {
			newCols = full
		}
		neuronWords = int64(p.vN) * rowSpan * newCols
	default:
		neuronWords = int64(p.vN) * rowSpan * int64(unionSpan(p.vTc, str, l.K))
	}
	res.NeuronLoads += neuronWords

	kr, kw := e.kernelPassReads(l, s, p)
	res.KernelLoads += kr
	res.LocalWrites += kw

	// Cycle cost: the compute schedule, plus vertical-bus stall cycles
	// when the un-optimized neuron traffic exceeds the D words/cycle
	// the D-banked buffer can feed during the pass.
	cycles := cpp
	if !(e.RA && e.RS) {
		loadCycles := (neuronWords + int64(e.D) - 1) / int64(e.D)
		if loadCycles > cycles {
			cycles = loadCycles
		}
	}
	res.Cycles += cycles

	// Each valid output's chunk partial leaves the engine once per
	// chunk; chunks after the first re-read the prior partial for
	// accumulation (Fig. 13f).
	res.NeuronStores += validRows
	if !p.firstChunk {
		res.NeuronLoads += validRows
	}

	// MAC-level counters: every valid output issues vN·K² MACs this
	// pass, each reading both local stores once; RS preloads each
	// operand slot once.
	macs := validRows * chunkOps
	res.MACs += macs
	res.LocalReads += 2 * macs
	res.LocalWrites += macs
}

// Model implements arch.Engine.
func (e *Engine) Model(l nn.ConvLayer) arch.LayerResult {
	t := e.Chooser(l)
	s := e.scheduleFor(l, t)
	res := arch.LayerResult{
		Arch: e.Name(), Layer: l, Factors: t, PEs: e.PEs(),
	}
	forEachPass(l, s, func(p passInfo) {
		e.accountPass(l, s, p, &res)
	})
	e.modelDRAM(l, t, &res)
	return res
}

func (e *Engine) modelDRAM(l nn.ConvLayer, t arch.T, res *arch.LayerResult) {
	mBlocks := int64((l.M + t.Tm - 1) / t.Tm)
	reload := int64(1)
	if l.InputWords() > int64(e.BufferWords) {
		// The input stack exceeds one neuron buffer: it is re-streamed
		// once per m-block.
		reload = mBlocks
	}
	res.DRAMReads = l.InputWords()*reload + l.KernelWords()
	res.DRAMWrites = l.OutputWords()
}

// unionSpan returns the length of the union of v stride-spaced windows
// of length k: contiguous (v-1)·stride + k while stride < k, disjoint
// v·k windows otherwise.
func unionSpan(v, stride, k int) int {
	if stride < k {
		return (v-1)*stride + k
	}
	return v * k
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
