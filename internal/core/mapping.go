// Package core implements the paper's contribution: the FlexFlow
// flexible-dataflow convolutional engine (Section 4). A D×D matrix of
// PEs — each with a multiplier, an adder, a neuron local store and a
// kernel local store — is fed by vertical (neuron) and horizontal
// (kernel) common data buses. Each PE row's adders form an adder tree,
// so one row completes one output neuron. Complementary parallelism
// maps a mixture of feature-map, neuron and synapse parallelism onto
// the array: rows are shared between NP and FP (inter-row complement),
// columns between SP and FP (intra-row complement).
package core

import "flexflow/internal/arch"

// RowOf returns the PE row that output neuron O^(m)_(r,c) is mapped to
// under factors t (paper §4.3): Row((m mod T_m)·T_r·T_c +
// (r mod T_r)·T_c + c mod T_c).
func RowOf(m, r, c int, t arch.T) int {
	return (m%t.Tm)*t.Tr*t.Tc + (r%t.Tr)*t.Tc + c%t.Tc
}

// ColOf returns the PE column that input neuron I^(n)_(r,c) is
// broadcast to under factors t: within its logical group, neuron (r,c)
// goes to column (r mod T_i)·T_j + c mod T_j; groups are stacked along
// the column axis by n mod T_n.
func ColOf(n, r, c int, t arch.T) int {
	return (n%t.Tn)*t.Ti*t.Tj + (r%t.Ti)*t.Tj + c%t.Tj
}

// GroupOf returns the logical group (gm, gn) that kernel K^(m,n) is
// assigned to: Group(m mod T_m, n mod T_n). The complementary
// parallelism principle divides the array into T_m×T_n logical groups
// of (T_i·T_j)×(T_r·T_c) PEs.
func GroupOf(m, n int, t arch.T) (gm, gn int) {
	return m % t.Tm, n % t.Tn
}

// GroupRows returns the PE rows belonging to logical group row gm:
// the T_r·T_c rows serving output map slot gm.
func GroupRows(gm int, t arch.T) (lo, hi int) {
	lo = gm * t.Tr * t.Tc
	return lo, lo + t.Tr*t.Tc
}

// GroupCols returns the PE columns belonging to logical group column
// gn: the T_i·T_j columns serving input map slot gn.
func GroupCols(gn int, t arch.T) (lo, hi int) {
	lo = gn * t.Ti * t.Tj
	return lo, lo + t.Ti*t.Tj
}
