package core

import (
	"math/rand"
	"testing"

	"flexflow/internal/nn"
	"flexflow/internal/tensor"
)

func stridedOperands(l nn.ConvLayer, seed uint64) (*tensor.Map3, *tensor.Kernel4) {
	in := tensor.NewMap3(l.N, l.InSize(), l.InSize())
	in.FillPattern(seed)
	k := tensor.NewKernel4(l.M, l.N, l.K)
	k.FillPattern(seed + 1)
	return in, k
}

func TestStridedSimulateMatchesGolden(t *testing.T) {
	layers := []nn.ConvLayer{
		{Name: "s2", M: 2, N: 1, S: 4, K: 3, Stride: 2},
		{Name: "s3", M: 1, N: 2, S: 3, K: 2, Stride: 3},
		{Name: "s4-alexlike", M: 3, N: 2, S: 5, K: 5, Stride: 4},
		{Name: "s-eq-k", M: 2, N: 1, S: 4, K: 2, Stride: 2}, // stride == K
		{Name: "s-gt-k", M: 1, N: 1, S: 3, K: 2, Stride: 3}, // disjoint windows
	}
	e := New(4)
	for _, l := range layers {
		in, k := stridedOperands(l, 77)
		got, res, err := e.Simulate(l, in, k)
		if err != nil {
			t.Fatalf("%s: %v", l.Name, err)
		}
		want := tensor.ConvStride(in, k, l.Str())
		if !got.Equal(want) {
			t.Errorf("%s: strided output differs from golden", l.Name)
		}
		if res.MACs != l.MACs() {
			t.Errorf("%s: MACs = %d, want %d", l.Name, res.MACs, l.MACs())
		}
	}
}

func TestStridedModelMatchesSimulate(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 14; trial++ {
		e := New(2 + rng.Intn(4))
		l := nn.ConvLayer{
			Name:   "rand",
			M:      1 + rng.Intn(4),
			N:      1 + rng.Intn(3),
			S:      2 + rng.Intn(4),
			K:      1 + rng.Intn(4),
			Stride: 1 + rng.Intn(4),
		}
		in, k := stridedOperands(l, uint64(trial))
		_, simRes, err := e.Simulate(l, in, k)
		if err != nil {
			t.Fatal(err)
		}
		mod := e.Model(l)
		if simRes.NeuronLoads != mod.NeuronLoads {
			t.Errorf("%+v: NeuronLoads sim=%d model=%d", l, simRes.NeuronLoads, mod.NeuronLoads)
		}
		if simRes.Cycles != mod.Cycles {
			t.Errorf("%+v: Cycles sim=%d model=%d", l, simRes.Cycles, mod.Cycles)
		}
		if simRes.MACs != mod.MACs {
			t.Errorf("%+v: MACs sim=%d model=%d", l, simRes.MACs, mod.MACs)
		}
	}
}

func TestInSizeWithStride(t *testing.T) {
	// AlexNet's real C1: 55 outputs, K=11, stride 4 ⇒ 227-pixel input.
	l := nn.ConvLayer{M: 48, N: 3, S: 55, K: 11, Stride: 4}
	if got := l.InSize(); got != 227 {
		t.Errorf("InSize = %d, want 227", got)
	}
	if l.Str() != 4 {
		t.Errorf("Str = %d", l.Str())
	}
	// Zero stride behaves as 1.
	u := nn.ConvLayer{S: 4, K: 3}
	if u.InSize() != 6 || u.Str() != 1 {
		t.Errorf("unit-stride defaults broken: in=%d str=%d", u.InSize(), u.Str())
	}
}

func TestStridedTrafficBelowNaive(t *testing.T) {
	// Even at stride 2, RA/RS reuse must beat the per-row naive fetch.
	l := nn.ConvLayer{M: 4, N: 2, S: 6, K: 3, Stride: 2}
	on := New(8)
	off := New(8)
	off.RA, off.RS = false, false
	if onLoads, offLoads := on.Model(l).NeuronLoads, off.Model(l).NeuronLoads; onLoads >= offLoads {
		t.Errorf("RA/RS loads %d should be below naive %d", onLoads, offLoads)
	}
}

func TestGoldenConvStride(t *testing.T) {
	// Hand-checked 1-map stride-2 case.
	in := tensor.NewMap3(1, 5, 5)
	for r := 0; r < 5; r++ {
		for c := 0; c < 5; c++ {
			in.Set(0, r, c, tensor.NewMap3(1, 1, 1).At(0, 0, 0)) // zero
		}
	}
	in.Set(0, 0, 0, 256) // 1.0
	in.Set(0, 2, 2, 512) // 2.0
	k := tensor.NewKernel4(1, 1, 1)
	k.Set(0, 0, 0, 0, 256) // identity
	out := tensor.ConvStride(in, k, 2)
	if out.H != 3 || out.W != 3 {
		t.Fatalf("stride-2 output %dx%d, want 3x3", out.H, out.W)
	}
	if out.At(0, 0, 0) != 256 || out.At(0, 1, 1) != 512 || out.At(0, 0, 1) != 0 {
		t.Errorf("strided sampling wrong: %v %v %v", out.At(0, 0, 0), out.At(0, 1, 1), out.At(0, 0, 1))
	}
}

func TestStridedAlexNetC1Model(t *testing.T) {
	// The real AlexNet C1 (stride 4) on a 16×16 FlexFlow engine: the
	// analytic model must run and keep utilization in the same band as
	// the unit-stride shape (stride changes traffic, not occupancy).
	l := nn.ConvLayer{Name: "C1", M: 48, N: 3, S: 55, K: 11, Stride: 4}
	e := New(16)
	res := e.Model(l)
	if u := res.Utilization(); u < 0.5 || u > 1.0 {
		t.Errorf("strided C1 utilization = %v", u)
	}
	if res.MACs != l.MACs() {
		t.Errorf("MACs = %d, want %d", res.MACs, l.MACs())
	}
	// Stride 4 windows overlap much less: traffic per MAC must exceed
	// the unit-stride layer's.
	unit := nn.ConvLayer{Name: "C1u", M: 48, N: 3, S: 55, K: 11}
	ru := e.Model(unit)
	perMAC := func(r int64, m int64) float64 { return float64(r) / float64(m) }
	if perMAC(res.NeuronLoads, res.MACs) <= perMAC(ru.NeuronLoads, ru.MACs) {
		t.Error("strided windows should need more fresh words per MAC")
	}
}
