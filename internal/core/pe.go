package core

import (
	"fmt"

	"flexflow/internal/fixed"
	"flexflow/internal/mem"
	"flexflow/internal/tensor"
)

// PE is one FlexFlow processing element (Fig. 7a): a multiplier, an
// adder port into the row tree, a neuron local store, a kernel local
// store, and the two M0–M3 address generators that drive the stores.
// Unlike the 2D-Mapping PE (Fig. 7b) it has no neighbour interfaces:
// operands arrive over the column/row buses into randomly addressable
// local stores.
type PE struct {
	Neurons *mem.LocalStore
	Kernels *mem.LocalStore

	neuronAddr mem.AddrGen
	kernelAddr mem.AddrGen
}

// NewPE builds a PE with the given local-store capacities (the paper's
// configuration is 128+128 words).
func NewPE(neuronWords, kernelWords int) *PE {
	return &PE{
		Neurons: mem.NewLocalStore(neuronWords),
		Kernels: mem.NewLocalStore(kernelWords),
	}
}

// Preload writes operand sequences into the local stores (the RS
// preload over the vertical/horizontal buses). Write addressing is
// auto-increment, as §4.4 specifies.
func (pe *PE) Preload(neurons, kernels []fixed.Word) error {
	if len(neurons) > pe.Neurons.Cap() {
		return fmt.Errorf("core: %d neurons exceed local store capacity %d", len(neurons), pe.Neurons.Cap())
	}
	if len(kernels) > pe.Kernels.Cap() {
		return fmt.Errorf("core: %d kernel words exceed local store capacity %d", len(kernels), pe.Kernels.Cap())
	}
	for i, v := range neurons {
		pe.Neurons.Write(i, v)
	}
	for i, v := range kernels {
		pe.Kernels.Write(i, v)
	}
	return nil
}

// Configure arms the two address generators for a pass. The generator
// parameters are the four quantities §4.4 names: the window length,
// the in-window step, the replay count (HOLD) and the row jump.
func (pe *PE) Configure(neuron, kernel mem.AddrGen) {
	pe.neuronAddr = neuron
	pe.kernelAddr = kernel
	pe.neuronAddr.Reset()
	pe.kernelAddr.Reset()
}

// Step performs one cycle of the PE datapath: fetch one neuron and one
// synapse at the FSM-generated addresses and return their product
// (the PE's contribution into the row adder tree this cycle).
func (pe *PE) Step() (fixed.Acc, error) {
	if pe.neuronAddr.Done() || pe.kernelAddr.Done() {
		return 0, fmt.Errorf("core: PE stepped past its configured sequence")
	}
	na, _ := pe.neuronAddr.Next()
	ka, _ := pe.kernelAddr.Next()
	n := pe.Neurons.Read(na)
	k := pe.Kernels.Read(ka)
	return fixed.MAC(0, n, k), nil
}

// Done reports whether the configured pass sequence is exhausted.
func (pe *PE) Done() bool { return pe.neuronAddr.Done() || pe.kernelAddr.Done() }

// Row is one PE row of the convolutional unit: Width PEs whose adders
// form an adder tree feeding a single output accumulator, so the row
// serves exactly one output neuron at a time (§4.1).
type Row struct {
	PEs []*PE
	acc fixed.Acc
}

// NewRow builds a row of width PEs with the given store capacities.
func NewRow(width, neuronWords, kernelWords int) *Row {
	r := &Row{}
	for i := 0; i < width; i++ {
		r.PEs = append(r.PEs, NewPE(neuronWords, kernelWords))
	}
	return r
}

// ResetAccumulator clears the row output register for a new neuron.
func (r *Row) ResetAccumulator() { r.acc = 0 }

// Step runs one cycle: every active PE produces one product and the
// adder tree folds them into the row accumulator. active limits how
// many PEs participate (lanes beyond the layer's operand count idle).
func (r *Row) Step(active int) error {
	if active < 0 || active > len(r.PEs) {
		return fmt.Errorf("core: active=%d out of row width %d", active, len(r.PEs))
	}
	var tree fixed.Acc
	for i := 0; i < active; i++ {
		p, err := r.PEs[i].Step()
		if err != nil {
			return err
		}
		tree = fixed.AddAcc(tree, p)
	}
	r.acc = fixed.AddAcc(r.acc, tree)
	return nil
}

// Accumulator returns the row's current partial output neuron.
func (r *Row) Accumulator() fixed.Acc { return r.acc }

// RowMicroResult is the outcome of RowComputeWindow: the computed
// output neurons plus the store traffic the microarchitecture needed.
type RowMicroResult struct {
	Outputs     []fixed.Word
	LocalReads  int64
	LocalWrites int64
	Cycles      int64
}

// RowComputeWindow drives one PE row through the explicit Fig. 10
// microarchitecture: K synapse-parallel lanes (T_j = K), each lane j
// holding the staged input window and kernel row slice in its local
// stores, computing `count` consecutive output neurons
// O(m, r, c0..c0+count-1) of one (m, n) pair with a single preload.
//
// Lane j's neuron address generator walks the window rows with
// M1/INCR + M3/JUMP (step = window row stride); its kernel generator
// replays the kernel column with M2/HOLD for every subsequent output —
// exactly the four-state schedule of Fig. 11. The point, and what the
// tests pin, is that consecutive outputs re-use the staged window with
// no new preloads (RA + RS).
func RowComputeWindow(in *tensor.Map3, kn *tensor.Kernel4, m, n, r, c0, count int) (RowMicroResult, error) {
	k := kn.K
	winW := count + k - 1 // staged window width
	row := NewRow(k, winW*k, k*k)

	// Preload: every lane stages the window rows r..r+K-1 (row-major,
	// stride winW) and its kernel column… the kernel store holds the
	// full K×K kernel (IPDR broadcast), each lane reading its column.
	window := make([]fixed.Word, 0, winW*k)
	for i := 0; i < k; i++ {
		for c := 0; c < winW; c++ {
			window = append(window, in.At(n, r+i, c0+c))
		}
	}
	kern := make([]fixed.Word, 0, k*k)
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			kern = append(kern, kn.At(m, n, i, j))
		}
	}
	for _, pe := range row.PEs {
		if err := pe.Preload(window, kern); err != nil {
			return RowMicroResult{}, err
		}
	}

	var res RowMicroResult
	for out := 0; out < count; out++ {
		// Configure the lanes for output c0+out: neuron lane j reads
		// window position (i, out+j) for i = 0..K-1; kernel lane j
		// reads (i, j). Window length 1 with K rows makes every step a
		// JUMP — the generator walks straight down the window column.
		for j, pe := range row.PEs {
			pe.Configure(
				mem.AddrGen{Base: out + j, Step: 1, Window: 1, Replay: 1, Jump: winW, Rows: k},
				mem.AddrGen{Base: j, Step: 1, Window: 1, Replay: 1, Jump: k, Rows: k},
			)
		}
		row.ResetAccumulator()
		for cyc := 0; cyc < k; cyc++ {
			if err := row.Step(k); err != nil {
				return RowMicroResult{}, err
			}
			res.Cycles++
		}
		res.Outputs = append(res.Outputs, row.Accumulator().Round())
	}
	for _, pe := range row.PEs {
		res.LocalReads += pe.Neurons.Reads() + pe.Kernels.Reads()
		res.LocalWrites += pe.Neurons.Writes() + pe.Kernels.Writes()
	}
	return res, nil
}
