package core

import (
	"fmt"

	"flexflow/internal/arch"
	"flexflow/internal/fault"
	"flexflow/internal/fixed"
	"flexflow/internal/mapping"
	"flexflow/internal/nn"
	"flexflow/internal/sim"
	"flexflow/internal/tensor"
)

// Simulate implements arch.Engine: it executes the layer through the
// explicit pass schedule — rows as output neurons, columns as operand
// lanes, a row adder tree per cycle, input-map chunks spilling partial
// sums between passes — producing the actual output feature maps.
// Neuron traffic is counted by set-union over the operands each pass
// actually touches, so the test that Simulate and Model agree
// cross-checks the analytic RA/RS window formula against measured
// dataflow.
func (e *Engine) Simulate(l nn.ConvLayer, in *tensor.Map3, k *tensor.Kernel4) (*tensor.Map3, arch.LayerResult, error) {
	if err := l.Validate(); err != nil {
		return nil, arch.LayerResult{}, err
	}
	if in.N != l.N || k.M != l.M || k.N != l.N || k.K != l.K {
		return nil, arch.LayerResult{}, fmt.Errorf("flexflow: operand shapes do not match layer %v", l)
	}
	if in.H != l.InSize() || in.W != l.InSize() {
		return nil, arch.LayerResult{}, fmt.Errorf("flexflow: input is %dx%d, layer needs %dx%d", in.H, in.W, l.InSize(), l.InSize())
	}

	t := e.Chooser(l)
	if err := t.Validate(l, e.D, l.S); err != nil {
		return nil, arch.LayerResult{}, fmt.Errorf("flexflow: chosen factors invalid: %w", err)
	}
	s := e.scheduleFor(l, t)
	fm := e.flex()

	out := tensor.NewMap3(l.M, l.S, l.S)
	psum := make([]fixed.Acc, l.M*l.S*l.S)
	res := arch.LayerResult{Arch: e.Name(), Layer: l, Factors: t, PEs: e.PEs()}
	var clock sim.Clock

	acc := make([]fixed.Acc, t.Rows())
	seen := make(map[int]struct{})

	// Per-run robustness state: the fault injector and the watchdog.
	// Both are nil on the fast path and cost one pointer test.
	inj := e.Injector
	wd := e.Watchdog
	var simErr error

	// Bus faults flow through the CDB TransferHook so the corruption is
	// applied at the wire, where the transfer counters are kept. The
	// hooks are (re)installed every run because the engine is reusable:
	// a later fault-free run must not inherit a stale injector closure.
	if e.VerticalBus != nil {
		e.VerticalBus.TransferHook = nil
		if inj != nil {
			e.VerticalBus.TransferHook = inj.BusHook(fault.SiteBusVertical, clock.Cycle)
		}
	}
	if e.HorizontalBus != nil {
		e.HorizontalBus.TransferHook = nil
		if inj != nil {
			e.HorizontalBus.TransferHook = inj.BusHook(fault.SiteBusHorizontal, clock.Cycle)
		}
	}

	str := l.Str()
	mapping.ForEachPass(l, s, func(p mapping.Pass) {
		if simErr != nil {
			return
		}
		if err := wd.Check(clock.Cycle()); err != nil {
			simErr = err
			return
		}
		validRows := int64(p.VTm) * int64(p.VTr) * int64(p.VTc)
		chunkOps := int64(p.VN) * int64(l.K) * int64(l.K)

		// Kernel (re)load into the local stores.
		kr, kw := fm.KernelPassReads(l, s, p)
		res.KernelLoads += kr
		res.LocalWrites += kw

		// RS preload: collect the union of neuron operands this pass
		// touches. With RA+RS each word is charged once and the words
		// already staged by earlier c-blocks of the same row band are
		// reused when the per-PE working set fits the local store (seen
		// persists across a band and resets at c0 == 0); without the
		// optimizations every consuming row fetches its own copy.
		if p.C0 == 0 || !fm.NeuronReuseOK(s, p.VN) {
			clear(seen)
		}
		before := int64(len(seen))
		var perRowWords int64
		forEachValidOutput(l, t, p, func(m, r, c int) {
			perRowWords += chunkOps
			for n := p.N0; n < p.N0+p.VN; n++ {
				for i := 0; i < l.K; i++ {
					for j := 0; j < l.K; j++ {
						seen[(n*in.H+(r*str+i))*in.W+(c*str+j)] = struct{}{}
					}
				}
			}
		})
		var neuronWords int64
		if e.RA && e.RS {
			neuronWords = int64(len(seen)) - before
		} else {
			neuronWords = perRowWords
		}
		res.NeuronLoads += neuronWords
		res.LocalWrites += validRows * chunkOps // each operand slot preloaded once
		if e.VerticalBus != nil && neuronWords > 0 {
			e.VerticalBus.BroadcastN(neuronWords, int(validRows))
		}
		if e.HorizontalBus != nil && kr > 0 {
			fanout := 1
			if e.IPDR {
				fanout = p.VTr * p.VTc
			}
			e.HorizontalBus.BroadcastN(kr, fanout)
		}

		// Compute phase: cppChunk block steps through (n, i, j) space.
		for i := range acc {
			acc[i] = 0
		}
		nBlocks := ceilDiv(p.VN, t.Tn)
		iBlocks := ceilDiv(l.K, t.Ti)
		jBlocks := ceilDiv(l.K, t.Tj)
		for nb := 0; nb < nBlocks; nb++ {
			if err := wd.Check(clock.Cycle()); err != nil {
				simErr = err
				return
			}
			for ib := 0; ib < iBlocks; ib++ {
				for jb := 0; jb < jBlocks; jb++ {
					forEachValidOutput(l, t, p, func(m, r, c int) {
						row := RowOf(m, r, c, t)
						var tree fixed.Acc
						for tn := 0; tn < t.Tn; tn++ {
							n := p.N0 + nb*t.Tn + tn
							if n >= p.N0+p.VN {
								continue
							}
							for ti := 0; ti < t.Ti; ti++ {
								i := ib*t.Ti + ti
								if i >= l.K {
									continue
								}
								for tj := 0; tj < t.Tj; tj++ {
									j := jb*t.Tj + tj
									if j >= l.K {
										continue
									}
									nv := in.At(n, r*str+i, c*str+j)
									kv := k.At(m, n, i, j)
									if inj == nil {
										tree = fixed.MAC(tree, nv, kv)
									} else {
										// Faulted path: local-store read
										// ports, then the multiplier.
										cyc := clock.Cycle()
										col := ColOf(n, i, j, t)
										nv = inj.Word(fault.SiteNeuronStore, cyc, row, col, nv)
										kv = inj.Word(fault.SiteKernelStore, cyc, row, col, kv)
										if !inj.MACZero(cyc, row, col) {
											tree = fixed.MAC(tree, nv, kv)
										}
									}
									res.MACs++
									res.LocalReads += 2
									if e.Tracer != nil {
										e.Tracer.Trace(sim.Event{
											Cycle: clock.Cycle(), Kind: sim.EvMAC,
											Row: row, Col: ColOf(n, i, j, t),
											What: fmt.Sprintf("O(%d,%d,%d)", m, r, c),
										})
									}
								}
							}
						}
						acc[row] = fixed.AddAcc(acc[row], tree)
					})
					clock.Tick()
				}
			}
		}

		// Stall cycles for the un-optimized machine (bus-limited loads).
		if !(e.RA && e.RS) {
			loadCycles := (neuronWords + int64(e.D) - 1) / int64(e.D)
			if loadCycles > s.CPPChunk(p.VN) {
				clock.Advance(loadCycles - s.CPPChunk(p.VN))
			}
		}

		// Drain: each valid row's chunk partial leaves through the row
		// tail and accumulates into the neuron buffer; chunks after the
		// first re-read the prior partial (Fig. 13f).
		forEachValidOutput(l, t, p, func(m, r, c int) {
			row := RowOf(m, r, c, t)
			idx := (m*l.S+r)*l.S + c
			psum[idx] = fixed.AddAcc(psum[idx], acc[row])
			res.NeuronStores++
			if !p.FirstChunk {
				res.NeuronLoads++
			}
			if e.Tracer != nil {
				e.Tracer.Trace(sim.Event{Cycle: clock.Cycle(), Kind: sim.EvStore,
					Row: row, Col: -1, What: fmt.Sprintf("O(%d,%d,%d)", m, r, c)})
			}
		})
	})

	if simErr != nil {
		return nil, arch.LayerResult{}, fmt.Errorf("flexflow: layer %s aborted: %w", l.Name, simErr)
	}

	for m := 0; m < l.M; m++ {
		for r := 0; r < l.S; r++ {
			for c := 0; c < l.S; c++ {
				out.Set(m, r, c, psum[(m*l.S+r)*l.S+c].Round())
			}
		}
	}
	res.Cycles = clock.Cycle()
	fm.DRAM(l, t, &res)
	wd.Commit(res.Cycles)
	return out, res, nil
}

// forEachValidOutput visits the valid (m, r, c) outputs of one pass in
// row order.
func forEachValidOutput(l nn.ConvLayer, t arch.T, p mapping.Pass, fn func(m, r, c int)) {
	for tm := 0; tm < t.Tm; tm++ {
		m := p.M0 + tm
		if m >= l.M {
			continue
		}
		for tr := 0; tr < t.Tr; tr++ {
			r := p.R0 + tr
			if r >= l.S {
				continue
			}
			for tc := 0; tc < t.Tc; tc++ {
				c := p.C0 + tc
				if c >= l.S {
					continue
				}
				fn(m, r, c)
			}
		}
	}
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }
