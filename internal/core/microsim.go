package core

import (
	"fmt"

	"flexflow/internal/arch"
	"flexflow/internal/fault"
	"flexflow/internal/fixed"
	"flexflow/internal/mapping"
	"flexflow/internal/mem"
	"flexflow/internal/nn"
	"flexflow/internal/tensor"
)

// rowJob names one active physical row of a pass: the row index and
// the output coordinate it serves.
type rowJob struct {
	row     int
	m, r, c int
}

// microScratch is MicroSimulate's per-pass working set: the active-row
// job list and the two operand staging slices. The slices are reset
// with [:0] and refilled every pass/lane, so their backing arrays are
// allocated once (per engine, at high-water capacity) instead of once
// per lane per pass — the per-iteration allocations the flexlint
// hotalloc analyzer exists to keep out of this loop.
type microScratch struct {
	jobs    []rowJob
	neurons []fixed.Word
	kern    []fixed.Word

	// rows is the physical PE array, rebuilt only when the engine
	// geometry changes. Each call re-preloads every active store from
	// address 0 and the address generators never read past the preload
	// length, so stale contents are unreachable; counters and fault
	// hooks are reset explicitly below.
	rows []*Row

	// banks is the IADP staging buffer, rebuilt only when the layout
	// partition or capacity changes. Stale words are unreachable on
	// reuse: the staging loop writes every input coordinate each call,
	// and reads only ever address input coordinates.
	banks *mem.BankedBuffer

	// psum is the partial-sum accumulator, zeroed on reuse.
	psum []fixed.Acc
}

// iadpBanks returns the reusable IADP banked buffer for the given
// partition geometry, with access counters zeroed and any fault hooks
// from a previous run cleared.
func (e *Engine) iadpBanks(groups, subs, lanes, totalWords int) *mem.BankedBuffer {
	b := e.micro.banks
	if b == nil || b.Groups != groups || b.Subs != subs ||
		b.BanksPerSub != lanes || b.TotalWords() != totalWords {
		b = mem.NewBankedBuffer(groups, subs, lanes, totalWords)
		e.micro.banks = b
		return b
	}
	b.ResetCounters()
	return b
}

// psumScratch returns the reusable partial-sum buffer, zeroed, growing
// the backing array only at a new high-water size.
func (e *Engine) psumScratch(n int) []fixed.Acc {
	if cap(e.micro.psum) < n {
		e.micro.psum = make([]fixed.Acc, n)
	}
	p := e.micro.psum[:n]
	clear(p)
	return p
}

// physRows returns the reusable physical PE rows for the engine's
// current geometry, with access counters zeroed and any fault hooks
// from a previous run cleared.
func (e *Engine) physRows() []*Row {
	rebuild := len(e.micro.rows) != e.D
	if !rebuild && e.D > 0 && len(e.micro.rows[0].PEs) > 0 {
		pe := e.micro.rows[0].PEs[0]
		rebuild = len(e.micro.rows[0].PEs) != e.D ||
			pe.Neurons.Cap() != e.NeuronStoreWords ||
			pe.Kernels.Cap() != e.KernelStoreWords
	}
	if rebuild {
		rows := make([]*Row, e.D)
		for i := range rows {
			rows[i] = NewRow(e.D, e.NeuronStoreWords, e.KernelStoreWords)
		}
		e.micro.rows = rows
		return rows
	}
	for _, row := range e.micro.rows {
		for _, pe := range row.PEs {
			pe.Neurons.ResetCounters()
			pe.Kernels.ResetCounters()
			pe.Neurons.ReadHook = nil
			pe.Kernels.ReadHook = nil
		}
	}
	return e.micro.rows
}

// MicroSimulate executes a layer through the explicit component
// micro-architecture — mem.BankedBuffer banks under the IADP layout,
// per-PE mem.LocalStore pairs driven by mem.AddrGen FSMs, Row adder
// trees — rather than the schedule-level index arithmetic of Simulate.
// It is the slowest, highest-fidelity path and exists to cross-validate
// Simulate: outputs must be bit-identical and the pass/cycle structure
// must agree.
//
// Restrictions (it is a validation vehicle, not the workhorse): unit
// stride, and the per-pass working set must fit the local stores (the
// default schedule guarantees this except in the one-block corner).
func (e *Engine) MicroSimulate(l nn.ConvLayer, in *tensor.Map3, k *tensor.Kernel4) (*tensor.Map3, arch.LayerResult, error) {
	if err := l.Validate(); err != nil {
		return nil, arch.LayerResult{}, err
	}
	if l.Str() != 1 {
		return nil, arch.LayerResult{}, fmt.Errorf("core: MicroSimulate supports unit stride")
	}
	if in.N != l.N || k.M != l.M || k.N != l.N || k.K != l.K {
		return nil, arch.LayerResult{}, fmt.Errorf("core: operand shapes do not match layer %v", l)
	}
	if in.H != l.InSize() || in.W != l.InSize() {
		return nil, arch.LayerResult{}, fmt.Errorf("core: input is %dx%d, layer needs %dx%d", in.H, in.W, l.InSize(), l.InSize())
	}

	t := e.Chooser(l)
	if err := t.Validate(l, e.D, l.S); err != nil {
		return nil, arch.LayerResult{}, err
	}
	s := e.scheduleFor(l, t)
	if cpp := s.CPPChunk(s.NChunk); cpp > int64(e.NeuronStoreWords) || cpp > int64(e.KernelStoreWords) {
		return nil, arch.LayerResult{}, fmt.Errorf("core: pass working set %d words exceeds the local stores", cpp)
	}

	// Stage the input stack into IADP banks (the distribution layer's
	// source) and build the physical rows.
	layout, _, _ := BufferPlan(l, t)
	rowsPerSub := (layout.H + layout.Ti - 1) / layout.Ti
	colsPerLane := (layout.W + layout.Tj - 1) / layout.Tj
	mapsPerGroup := (l.N + layout.Tn - 1) / layout.Tn
	bankWords := mapsPerGroup * rowsPerSub * colsPerLane
	banks := e.iadpBanks(layout.Tn, layout.Ti, layout.Tj,
		layout.Tn*layout.Ti*layout.Tj*bankWords)
	for n := 0; n < in.N; n++ {
		for r := 0; r < in.H; r++ {
			for c := 0; c < in.W; c++ {
				a := layout.Place(n, r, c)
				banks.Bank(a.Group, a.Sub, a.Lane).Write(a.Offset, in.At(n, r, c))
			}
		}
	}

	physRows := e.physRows()

	out := tensor.NewMap3(l.M, l.S, l.S)
	psum := e.psumScratch(l.M * l.S * l.S)
	res := arch.LayerResult{Arch: e.Name() + "-micro", Layer: l, Factors: t, PEs: e.PEs()}

	// Fault hooks: the micro path exercises the real component read
	// ports, so faults are injected where the hardware would see them —
	// the IADP bank read ports and the per-PE local-store read ports.
	// Both the reused banks (iadpBanks) and the reused rows (physRows)
	// had any previous run's hooks cleared above.
	if inj := e.Injector; inj != nil {
		cycle := func() int64 { return res.Cycles }
		for g := 0; g < layout.Tn; g++ {
			for sb := 0; sb < layout.Ti; sb++ {
				for ln := 0; ln < layout.Tj; ln++ {
					banks.Bank(g, sb, ln).ReadHook =
						inj.StoreReadHook(fault.SiteBankRead, g*layout.Ti+sb, ln, cycle)
				}
			}
		}
		for ri, row := range physRows {
			for ci, pe := range row.PEs {
				pe.Neurons.ReadHook = inj.StoreReadHook(fault.SiteNeuronStore, ri, ci, cycle)
				pe.Kernels.ReadHook = inj.StoreReadHook(fault.SiteKernelStore, ri, ci, cycle)
			}
		}
	}

	var simErr error
	mapping.ForEachPass(l, s, func(p mapping.Pass) {
		if simErr != nil {
			return
		}
		cpp := int(s.CPPChunk(p.VN))

		// Preload every active PE's operand sequences in block order:
		// for lane (tn,ti,tj) of the row serving output (m,r,c), the
		// cycle-by-cycle operands across (nb,ib,jb) block steps. Neuron
		// words are fetched through the IADP banks; idle slots (invalid
		// lanes) carry zeros so the adder tree folds them harmlessly.
		jobs := e.micro.jobs[:0]
		forEachValidOutput(l, t, p, func(m, r, c int) {
			jobs = append(jobs, rowJob{RowOf(m, r, c, t), m, r, c})
		})
		e.micro.jobs = jobs
		for _, job := range jobs {
			row := physRows[job.row]
			for lane := 0; lane < t.Cols(); lane++ {
				tn := lane / (t.Ti * t.Tj)
				rem := lane % (t.Ti * t.Tj)
				ti, tj := rem/t.Tj, rem%t.Tj
				neurons := e.micro.neurons[:0]
				kern := e.micro.kern[:0]
				for nb := 0; nb < ceilDiv(p.VN, t.Tn); nb++ {
					for ib := 0; ib < ceilDiv(l.K, t.Ti); ib++ {
						for jb := 0; jb < ceilDiv(l.K, t.Tj); jb++ {
							n := p.N0 + nb*t.Tn + tn
							i := ib*t.Ti + ti
							j := jb*t.Tj + tj
							if n >= p.N0+p.VN || i >= l.K || j >= l.K {
								neurons = append(neurons, 0)
								kern = append(kern, 0)
								continue
							}
							a := layout.Place(n, job.r+i, job.c+j)
							neurons = append(neurons, banks.Bank(a.Group, a.Sub, a.Lane).Read(a.Offset))
							kern = append(kern, k.At(job.m, n, i, j))
						}
					}
				}
				// Preload copies into the local stores, so the scratch
				// backing arrays (kept at high-water capacity) are free
				// for the next lane immediately.
				e.micro.neurons, e.micro.kern = neurons, kern
				pe := row.PEs[lane]
				if err := pe.Preload(neurons, kern); err != nil {
					simErr = err
					return
				}
				gen := mem.AddrGen{Base: 0, Step: 1, Window: cpp, Replay: 1, Jump: 0, Rows: 1}
				pe.Configure(gen, gen)
			}
			row.ResetAccumulator()
		}

		// Compute: cpp lock-step cycles across all active rows.
		for cyc := 0; cyc < cpp; cyc++ {
			for _, job := range jobs {
				if err := physRows[job.row].Step(t.Cols()); err != nil {
					simErr = err
					return
				}
			}
			res.Cycles++
		}
		res.MACs += int64(len(jobs)) * int64(p.VN) * int64(l.K) * int64(l.K)

		// Drain through the row tails into the psum buffer.
		for _, job := range jobs {
			idx := (job.m*l.S+job.r)*l.S + job.c
			psum[idx] = fixed.AddAcc(psum[idx], physRows[job.row].Accumulator())
			res.NeuronStores++
		}
	})
	if simErr != nil {
		return nil, arch.LayerResult{}, simErr
	}

	for m := 0; m < l.M; m++ {
		for r := 0; r < l.S; r++ {
			for c := 0; c < l.S; c++ {
				out.Set(m, r, c, psum[(m*l.S+r)*l.S+c].Round())
			}
		}
	}
	res.NeuronLoads = banks.Reads()
	for _, row := range physRows {
		for _, pe := range row.PEs {
			res.LocalReads += pe.Neurons.Reads() + pe.Kernels.Reads()
			res.LocalWrites += pe.Neurons.Writes() + pe.Kernels.Writes()
		}
	}
	return out, res, nil
}
