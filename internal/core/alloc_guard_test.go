package core

// Allocation regression guards for the two engine hot paths the
// flexlint hotalloc analyzer watches. Model is the analytic fast path
// and must not allocate at all in steady state; MicroSimulate keeps
// its per-pass working set (job list, operand staging, the physical
// PE array, the IADP banks, the psum buffer) on the engine, so a
// warmed-up call allocates only the structures it hands back or
// derives from the layer shape: the output tensor and the schedule.

import (
	"testing"

	"flexflow/internal/tensor"
	"flexflow/internal/workloads"
)

// TestModelAllocGuard pins the analytic model as allocation-free in
// steady state (the chooser is a map lookup, the schedule walk is
// index arithmetic).
func TestModelAllocGuard(t *testing.T) {
	l := workloads.LeNet5().ConvLayers()[1]
	e := New(16)
	e.Model(l)
	n := testing.AllocsPerRun(10, func() { e.Model(l) })
	if n != 0 {
		t.Errorf("Model allocates %.0f times per run, want 0", n)
	}
}

// TestMicroSimulateAllocGuard pins the warmed-up micro simulation.
// Measured: 36 allocs/run on LeNet-5 C3 with a 16×16 engine once the
// scratch buffers, physical rows, IADP banks, and psum buffer all
// live on the engine — down from 73 when banks and psum were per-call
// and from ~50000 when the job list and operand slices were rebuilt
// per pass. The ceiling leaves room for the output tensor and the
// schedule walk, not for per-pass churn.
func TestMicroSimulateAllocGuard(t *testing.T) {
	const ceiling = 60
	l := workloads.LeNet5().ConvLayers()[1]
	e := New(16)
	in := tensor.NewMap3(l.N, l.InSize(), l.InSize())
	in.FillPattern(1)
	k := tensor.NewKernel4(l.M, l.N, l.K)
	k.FillPattern(2)
	if _, _, err := e.MicroSimulate(l, in, k); err != nil {
		t.Fatal(err)
	}
	n := testing.AllocsPerRun(3, func() {
		if _, _, err := e.MicroSimulate(l, in, k); err != nil {
			t.Fatal(err)
		}
	})
	if n > ceiling {
		t.Errorf("MicroSimulate allocates %.0f times per run, guard is %d", n, ceiling)
	}
}

// BenchmarkMicroSimulate reports the micro path's time and allocation
// profile so bench runs catch steady-state regressions the guard's
// ceiling would absorb.
func BenchmarkMicroSimulate(b *testing.B) {
	l := workloads.LeNet5().ConvLayers()[1]
	e := New(16)
	in := tensor.NewMap3(l.N, l.InSize(), l.InSize())
	in.FillPattern(1)
	k := tensor.NewKernel4(l.M, l.N, l.K)
	k.FillPattern(2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := e.MicroSimulate(l, in, k); err != nil {
			b.Fatal(err)
		}
	}
}
