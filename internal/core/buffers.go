package core

import (
	"fmt"

	"flexflow/internal/arch"
	"flexflow/internal/mapping"
	"flexflow/internal/mem"
	"flexflow/internal/nn"
	"flexflow/internal/tensor"
)

// BufferPlan derives the IADP on-chip buffer layouts a layer's factor
// choice implies (§4.5): the input neuron buffer partitioned
// T_n × T_i × T_j and the kernel buffer partitioned T_m × T_r × T_c.
// The output neuron buffer is partitioned by the *same* ⟨T_m,T_r,T_c⟩
// triple, which is exactly what the next layer will read it with
// (the inter-layer coupling of Section 5) — callers can therefore
// reuse the returned output layout as the next layer's input layout.
func BufferPlan(l nn.ConvLayer, t arch.T) (input mem.NeuronLayout, kernels mem.KernelLayout, output mem.NeuronLayout) {
	in := l.InSize()
	input = mem.NeuronLayout{Tn: t.Tn, Ti: t.Ti, Tj: t.Tj, H: in, W: in}
	kernels = mem.KernelLayout{Tm: t.Tm, Tr: t.Tr, Tc: t.Tc, N: l.N, K: l.K}
	output = mem.NeuronLayout{Tn: t.Tm, Ti: t.Tr, Tj: t.Tc, H: l.S, W: l.S}
	return input, kernels, output
}

// CheckDistribution verifies that, under the layer's schedule, every
// distribution-layer line the passes issue is bank-conflict-free in
// the IADP input layout: each cycle's T_n·T_i·T_j operands come from
// distinct banks. It returns the number of lines checked.
func (e *Engine) CheckDistribution(l nn.ConvLayer, t arch.T) (lines int, ok bool) {
	input, _, _ := BufferPlan(l, t)
	s := e.scheduleFor(l, t)
	ok = true
	mapping.ForEachPass(l, s, func(p mapping.Pass) {
		if !ok {
			return
		}
		// One representative line per (n-block, i-block, j-block) step
		// of the pass: the aligned origin the distribution layer reads.
		for nb := 0; nb < ceilDiv(p.VN, t.Tn); nb++ {
			for ib := 0; ib < ceilDiv(l.K, t.Ti); ib++ {
				for jb := 0; jb < ceilDiv(l.K, t.Tj); jb++ {
					n0 := p.N0 + nb*t.Tn
					r0 := ib * t.Ti
					c0 := jb * t.Tj
					if r0 >= input.H || c0 >= input.W {
						continue
					}
					if !mem.LineConflictFree(input.Line(n0, r0, c0)) {
						ok = false
						return
					}
					lines++
				}
			}
		}
	})
	return lines, ok
}

// VerifyBankedPlacement stages an input stack into a mem.BankedBuffer
// under the layer's IADP layout and then replays every operand fetch of
// the schedule against the banks, checking that each read returns the
// same word direct tensor indexing would. It returns the total bank
// reads performed. This is the end-to-end proof that the Fig. 13
// placement, the distribution-layer line addressing and the pass
// schedule agree.
func (e *Engine) VerifyBankedPlacement(l nn.ConvLayer, t arch.T, in *tensor.Map3) (int64, error) {
	if l.Str() != 1 {
		return 0, fmt.Errorf("core: banked placement verification supports unit stride")
	}
	layout, _, _ := BufferPlan(l, t)
	// Size each bank to hold its densest assignment.
	rowsPerSub := (layout.H + layout.Ti - 1) / layout.Ti
	colsPerLane := (layout.W + layout.Tj - 1) / layout.Tj
	mapsPerGroup := (l.N + layout.Tn - 1) / layout.Tn
	bankWords := mapsPerGroup * rowsPerSub * colsPerLane
	buf := mem.NewBankedBuffer(layout.Tn, layout.Ti, layout.Tj,
		layout.Tn*layout.Ti*layout.Tj*bankWords)

	// IADP staging: every word to its bank.
	for n := 0; n < in.N; n++ {
		for r := 0; r < in.H; r++ {
			for c := 0; c < in.W; c++ {
				a := layout.Place(n, r, c)
				buf.Bank(a.Group, a.Sub, a.Lane).Write(a.Offset, in.At(n, r, c))
			}
		}
	}

	// Replay the schedule's fetches through the banks.
	s := e.scheduleFor(l, t)
	var verr error
	mapping.ForEachPass(l, s, func(p mapping.Pass) {
		if verr != nil {
			return
		}
		forEachValidOutput(l, t, p, func(m, r, c int) {
			_ = m
			for n := p.N0; n < p.N0+p.VN && verr == nil; n++ {
				for i := 0; i < l.K; i++ {
					for j := 0; j < l.K; j++ {
						a := layout.Place(n, r+i, c+j)
						got := buf.Bank(a.Group, a.Sub, a.Lane).Read(a.Offset)
						if want := in.At(n, r+i, c+j); got != want {
							verr = fmt.Errorf("core: bank read I(%d,%d,%d) = %v, want %v",
								n, r+i, c+j, got, want)
							return
						}
					}
				}
			}
		})
	})
	return buf.Reads(), verr
}
