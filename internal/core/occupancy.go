package core

import (
	"fmt"
	"strings"

	"flexflow/internal/arch"
	"flexflow/internal/nn"
)

// OccupancyMap renders the Figure 8-style view of how a factor choice
// lays a layer out on the D×D PE array during one (first) group pass:
// each row is labelled with the output neuron it serves (m,r,c), each
// column with its operand lane (n,i,j), idle rows/columns with dots.
// It is the visual form of the complementary-parallelism mapping: rows
// shared between NP and FP, columns between SP and FP.
func OccupancyMap(l nn.ConvLayer, t arch.T, d int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "PE occupancy of %s under %v on %dx%d (first pass)\n", l.Name, t, d, d)
	fmt.Fprintf(&b, "rows = outputs (m,r,c): Tm=%d maps x Tr=%d x Tc=%d positions -> %d/%d rows\n",
		t.Tm, t.Tr, t.Tc, minInt(t.Rows(), d), d)
	fmt.Fprintf(&b, "cols = operands (n,i,j): Tn=%d maps x Ti=%d x Tj=%d taps      -> %d/%d cols\n",
		t.Tn, t.Ti, t.Tj, minInt(t.Cols(), d), d)

	colLabel := make([]string, d)
	for col := 0; col < d; col++ {
		if col >= t.Cols() {
			colLabel[col] = "."
			continue
		}
		tn := col / (t.Ti * t.Tj)
		rem := col % (t.Ti * t.Tj)
		ti, tj := rem/t.Tj, rem%t.Tj
		used := tn < l.N && ti < l.K && tj < l.K
		if !used {
			colLabel[col] = "-"
			continue
		}
		colLabel[col] = fmt.Sprintf("n%d:k%d,%d", tn, ti, tj)
	}
	// Header line of column labels (truncated for readability).
	b.WriteString(fmt.Sprintf("%-14s", ""))
	for col := 0; col < d; col++ {
		b.WriteString(fmt.Sprintf("%-9s", colLabel[col]))
	}
	b.WriteString("\n")

	for row := 0; row < d; row++ {
		label := "."
		if row < t.Rows() {
			tm := row / (t.Tr * t.Tc)
			rem := row % (t.Tr * t.Tc)
			tr, tc := rem/t.Tc, rem%t.Tc
			if tm < l.M && tr < l.S && tc < l.S {
				label = fmt.Sprintf("O(%d,%d,%d)", tm, tr, tc)
			} else {
				label = "-"
			}
		}
		b.WriteString(fmt.Sprintf("%-14s", label))
		for col := 0; col < d; col++ {
			cell := "."
			if label != "." && label != "-" && colLabel[col] != "." && colLabel[col] != "-" {
				cell = "#"
			} else if label != "." && label != "-" || (colLabel[col] != "." && colLabel[col] != "-") {
				cell = "-"
			}
			b.WriteString(fmt.Sprintf("%-9s", cell))
		}
		b.WriteString("\n")
	}
	active := minInt(t.Rows(), d) * minInt(t.Cols(), d)
	fmt.Fprintf(&b, "active PEs: %d/%d (%.1f%%)\n", active, d*d, 100*float64(active)/float64(d*d))
	return b.String()
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Describe renders a human-readable specification of how the engine
// would schedule one layer: the chosen factors and processing style,
// the pass/chunk structure, the IADP buffer partitionings, and the
// local-store working sets. It is the textual counterpart of the
// compiler's assembly output, from the engine's point of view.
func (e *Engine) Describe(l nn.ConvLayer) string {
	t := e.Chooser(l)
	s := e.scheduleFor(l, t)
	input, kernels, output := BufferPlan(l, t)
	cpp := s.CPPChunk(s.NChunk)

	var b strings.Builder
	fmt.Fprintf(&b, "layer %s on %dx%d FlexFlow\n", l, e.D, e.D)
	fmt.Fprintf(&b, "  factors    %v  (style %s)\n", t, t.Style())
	fmt.Fprintf(&b, "  rows       %d/%d outputs in flight, cols %d/%d operand lanes\n",
		t.Rows(), e.D, t.Cols(), e.D)
	fmt.Fprintf(&b, "  schedule   %d group passes x %d cycles", arch.GroupPasses(l, t), cpp)
	if s.Chunks > 1 {
		fmt.Fprintf(&b, ", x%d input chunks of %d maps (partial sums spill)", s.Chunks, s.NChunk)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "  local      %d operand words/PE per pass (stores hold %d+%d)\n",
		cpp, e.NeuronStoreWords, e.KernelStoreWords)
	fmt.Fprintf(&b, "  buffers    in %dx%dx%d banks, kernel %dx%dx%d, out %dx%dx%d (next layer's read layout)\n",
		input.Tn, input.Ti, input.Tj, kernels.Tm, kernels.Tr, kernels.Tc, output.Tn, output.Ti, output.Tj)
	fmt.Fprintf(&b, "  U_r %.3f x U_c %.3f = U_t %.3f\n",
		arch.RowUtilization(l, t, e.D), arch.ColUtilization(l, t, e.D), arch.TotalUtilization(l, t, e.D))
	return b.String()
}
