package core

import (
	"math/rand"
	"testing"

	"flexflow/internal/arch"
	"flexflow/internal/nn"
	"flexflow/internal/tensor"
)

func makeOperands(l nn.ConvLayer, seed uint64) (*tensor.Map3, *tensor.Kernel4) {
	in := tensor.NewMap3(l.N, l.InSize(), l.InSize())
	in.FillPattern(seed)
	k := tensor.NewKernel4(l.M, l.N, l.K)
	k.FillPattern(seed + 1)
	return in, k
}

func TestSimulateMatchesGoldenConv(t *testing.T) {
	layers := []nn.ConvLayer{
		{Name: "tiny", M: 1, N: 1, S: 3, K: 2},
		{Name: "ex-c1", M: 2, N: 1, S: 10, K: 4}, // the paper's running example
		{Name: "ex-c2", M: 2, N: 2, S: 4, K: 2},
		{Name: "odd", M: 5, N: 3, S: 7, K: 3},
	}
	e := New(4)
	for _, l := range layers {
		in, k := makeOperands(l, 21)
		got, res, err := e.Simulate(l, in, k)
		if err != nil {
			t.Fatalf("%s: %v", l.Name, err)
		}
		if !got.Equal(tensor.Conv(in, k)) {
			t.Errorf("%s: output differs from golden conv", l.Name)
		}
		if res.MACs != l.MACs() {
			t.Errorf("%s: MACs = %d, want %d", l.Name, res.MACs, l.MACs())
		}
	}
}

func TestUtilizationEqualsEq2TimesEq3(t *testing.T) {
	// With RA+RS on, achieved utilization is exactly U_r·U_c.
	e := New(16)
	layers := []nn.ConvLayer{
		{Name: "LeNet-C1", M: 6, N: 1, S: 28, K: 5},
		{Name: "LeNet-C3", M: 16, N: 6, S: 10, K: 5},
		{Name: "PV-C3", M: 12, N: 8, S: 20, K: 3},
	}
	for _, l := range layers {
		res := e.Model(l)
		want := arch.TotalUtilization(l, res.Factors, e.D)
		if got := res.Utilization(); !close(got, want) {
			t.Errorf("%s: utilization %v, want Eq2×Eq3 = %v", l.Name, got, want)
		}
	}
}

func TestUtilizationHighAndStableOnPaperWorkloads(t *testing.T) {
	// The substance of Fig. 15: FlexFlow sustains high, stable
	// utilization on every CONV layer shape of the six workloads at
	// 16×16. Note the paper's own Eq. 2/3 with its own Table 4 factors
	// give 0.73 for PV C1 and 0.56 for VGG C1 (27-operand kernel set on
	// 16 lanes), so the per-layer floor is 0.55, with most layers well
	// above 0.75; the >80% headline is a workload-aggregate statement.
	e := New(16)
	layers := []nn.ConvLayer{
		{M: 8, N: 1, S: 45, K: 6}, {M: 12, N: 8, S: 20, K: 3}, // PV
		{M: 4, N: 1, S: 28, K: 5}, {M: 16, N: 4, S: 10, K: 4}, // FR
		{M: 6, N: 1, S: 28, K: 5}, {M: 16, N: 6, S: 10, K: 5}, // LeNet-5
		{M: 6, N: 1, S: 24, K: 5}, {M: 12, N: 6, S: 8, K: 4}, // HG
		{M: 48, N: 3, S: 55, K: 11}, {M: 128, N: 48, S: 27, K: 5}, // AlexNet
		{M: 192, N: 256, S: 13, K: 3},
		{M: 64, N: 3, S: 222, K: 3}, {M: 512, N: 512, S: 6, K: 3}, // VGG
	}
	above75 := 0
	for _, l := range layers {
		u := e.Model(l).Utilization()
		if u < 0.55 {
			t.Errorf("layer %+v: utilization %.3f < 0.55", l, u)
		}
		if u >= 0.75 {
			above75++
		}
	}
	if above75 < len(layers)*2/3 {
		t.Errorf("only %d/%d layers reach 75%% utilization", above75, len(layers))
	}
}

func TestChooseFactorsRespectsConstraints(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 60; trial++ {
		l := nn.ConvLayer{
			M: 1 + rng.Intn(64),
			N: 1 + rng.Intn(32),
			S: 1 + rng.Intn(60),
			K: 1 + rng.Intn(11),
		}
		d := 2 + rng.Intn(31)
		bound := 1 + rng.Intn(l.S)
		f := arch.ChooseFactors(l, d, bound)
		if err := f.Validate(l, d, bound); err != nil {
			t.Errorf("arch.ChooseFactors(%+v, %d, %d) = %v violates constraints: %v", l, d, bound, f, err)
		}
	}
}

func TestChooseFactorsBeatsSingleParallelism(t *testing.T) {
	// Complementary parallelism must never lose to any pure-NP, pure-SP
	// or pure-FP configuration — the Section 4.2 claim.
	e := New(16)
	layers := []nn.ConvLayer{
		{M: 6, N: 1, S: 28, K: 5},
		{M: 16, N: 6, S: 10, K: 5},
		{M: 12, N: 8, S: 20, K: 3},
	}
	for _, l := range layers {
		best := arch.TotalUtilization(l, e.Chooser(l), 16)
		pure := []arch.T{
			{Tm: 1, Tn: 1, Tr: min(4, l.S), Tc: min(4, l.S), Ti: 1, Tj: 1},   // NP
			{Tm: 1, Tn: 1, Tr: 1, Tc: 1, Ti: min(4, l.K), Tj: min(4, l.K)},   // SP
			{Tm: min(16, l.M), Tn: min(16, l.N), Tr: 1, Tc: 1, Ti: 1, Tj: 1}, // FP
		}
		for i, p := range pure {
			if p.Rows() > 16 || p.Cols() > 16 {
				continue
			}
			if u := arch.TotalUtilization(l, p, 16); u > best+1e-9 {
				t.Errorf("%+v: pure config %d (%v) utilization %v beats chosen %v", l, i, p, u, best)
			}
		}
	}
}

func TestCoupledChooserPropagatesLayout(t *testing.T) {
	// LeNet-5: C1's ⟨T_m,T_r,T_c⟩ must become C3's ⟨T_n,T_i,T_j⟩.
	c1 := nn.ConvLayer{Name: "C1", M: 6, N: 1, S: 28, K: 5}
	c3 := nn.ConvLayer{Name: "C3", M: 16, N: 6, S: 10, K: 5}
	f1 := arch.ChooseFactors(c1, 16, 10)
	f3 := arch.ChooseFactorsCoupled(c3, 16, c3.S, f1)
	if f3.Tn != f1.Tm {
		t.Errorf("C3 Tn = %d, want C1 Tm = %d", f3.Tn, f1.Tm)
	}
	if err := f3.Validate(c3, 16, c3.S); err != nil {
		t.Errorf("coupled factors invalid: %v", err)
	}
}

func TestAblationRARSIncreasesTrafficAndCycles(t *testing.T) {
	l := nn.ConvLayer{M: 16, N: 6, S: 10, K: 5}
	on := New(16)
	off := New(16)
	off.RA, off.RS = false, false
	ron, roff := on.Model(l), off.Model(l)
	if roff.NeuronLoads <= ron.NeuronLoads {
		t.Errorf("RA/RS off: NeuronLoads %d should exceed %d", roff.NeuronLoads, ron.NeuronLoads)
	}
	if roff.Cycles < ron.Cycles {
		t.Errorf("RA/RS off: cycles %d should be ≥ %d", roff.Cycles, ron.Cycles)
	}
}

func TestAblationIPDRIncreasesKernelTraffic(t *testing.T) {
	l := nn.ConvLayer{M: 16, N: 6, S: 10, K: 5}
	on := New(16)
	off := New(16)
	off.IPDR = false
	ron, roff := on.Model(l), off.Model(l)
	if roff.KernelLoads <= ron.KernelLoads {
		t.Errorf("IPDR off: KernelLoads %d should exceed %d", roff.KernelLoads, ron.KernelLoads)
	}
}

func TestSmallLocalStoresForceChunking(t *testing.T) {
	// When the per-PE working set overflows the local stores, the
	// schedule splits the input maps into chunks and spills partial
	// sums between chunks (Fig. 13f): outputs are stored more than once
	// and prior partials re-read, while total MACs are unchanged.
	l := nn.ConvLayer{M: 4, N: 8, S: 6, K: 5}
	big := New(2) // 128-word stores: single chunk
	small := New(2)
	small.NeuronStoreWords = 8
	small.KernelStoreWords = 8
	rb, rs := big.Model(l), small.Model(l)
	if rb.NeuronStores != l.OutputWords() {
		t.Errorf("big store: NeuronStores = %d, want %d", rb.NeuronStores, l.OutputWords())
	}
	if rs.NeuronStores <= rb.NeuronStores {
		t.Errorf("small store: NeuronStores %d should exceed %d (partial-sum spills)", rs.NeuronStores, rb.NeuronStores)
	}
	if rs.MACs != rb.MACs {
		t.Errorf("chunking changed MACs: %d vs %d", rs.MACs, rb.MACs)
	}

	// The chunked schedule must still produce bit-exact outputs.
	in, k := makeOperands(l, 8)
	got, _, err := small.Simulate(l, in, k)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(tensor.Conv(in, k)) {
		t.Error("chunked simulation differs from golden conv")
	}
}

func TestNoPartialSumSpills(t *testing.T) {
	// FlexFlow completes each output within one pass: stores == outputs.
	e := New(8)
	l := nn.ConvLayer{M: 5, N: 3, S: 7, K: 3}
	res := e.Model(l)
	if res.NeuronStores != l.OutputWords() {
		t.Errorf("NeuronStores = %d, want exactly %d outputs", res.NeuronStores, l.OutputWords())
	}
}

func TestMappingFunctionsPaperExample(t *testing.T) {
	// C1 of the Section 4 example on a 4×4 array with factors
	// ⟨Tm=2, Tn=1, Tr=1, Tc=2, Ti=1, Tj=4⟩ (Fig. 8): output O(r,c) maps
	// to row (m mod 2)·2 + c mod 2; neuron column is c mod 4.
	t4 := arch.T{Tm: 2, Tn: 1, Tr: 1, Tc: 2, Ti: 1, Tj: 4}
	if got := RowOf(0, 0, 0, t4); got != 0 {
		t.Errorf("RowOf(0,0,0) = %d, want 0", got)
	}
	if got := RowOf(0, 0, 1, t4); got != 1 {
		t.Errorf("RowOf(0,0,1) = %d, want 1 (second row of group 0)", got)
	}
	if got := RowOf(1, 0, 0, t4); got != 2 {
		t.Errorf("RowOf(1,0,0) = %d, want 2 (map 1's rows)", got)
	}
	if got := ColOf(0, 0, 5, t4); got != 1 {
		t.Errorf("ColOf(0,0,5) = %d, want 5 mod 4 = 1", got)
	}
	gm, gn := GroupOf(3, 0, t4)
	if gm != 1 || gn != 0 {
		t.Errorf("GroupOf(3,0) = (%d,%d), want (1,0)", gm, gn)
	}
	lo, hi := GroupRows(1, t4)
	if lo != 2 || hi != 4 {
		t.Errorf("GroupRows(1) = [%d,%d), want [2,4)", lo, hi)
	}
	lo, hi = GroupCols(0, t4)
	if lo != 0 || hi != 4 {
		t.Errorf("GroupCols(0) = [%d,%d), want [0,4)", lo, hi)
	}
}

func TestPoolUnitMatchesGolden(t *testing.T) {
	u := NewPoolUnit(16)
	in := tensor.NewMap3(2, 8, 8)
	in.FillPattern(5)
	for _, kind := range []tensor.PoolKind{tensor.MaxPool, tensor.AvgPool} {
		got, err := u.Apply(in, 2, kind)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(tensor.Pool(in, 2, kind)) {
			t.Errorf("%v pooling differs from golden", kind)
		}
	}
	if u.Cycles() == 0 || u.Ops() == 0 {
		t.Error("pool unit counters not advanced")
	}
}

func TestPoolUnitRejectsBadWindow(t *testing.T) {
	u := NewPoolUnit(4)
	in := tensor.NewMap3(1, 2, 2)
	if _, err := u.Apply(in, 0, tensor.MaxPool); err == nil {
		t.Error("zero window accepted")
	}
	if _, err := u.Apply(in, 3, tensor.MaxPool); err == nil {
		t.Error("oversized window accepted")
	}
}

func TestSimulateRejectsBadShapes(t *testing.T) {
	e := New(4)
	l := nn.ConvLayer{Name: "x", M: 2, N: 1, S: 4, K: 3}
	if _, _, err := e.Simulate(l, tensor.NewMap3(2, 6, 6), tensor.NewKernel4(2, 1, 3)); err == nil {
		t.Error("wrong-N input accepted")
	}
}

func TestEngineIdentity(t *testing.T) {
	e := New(16)
	if e.Name() != "FlexFlow" || e.PEs() != 256 {
		t.Errorf("Name=%q PEs=%d", e.Name(), e.PEs())
	}
}

func close(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}
