package core

import (
	"testing"

	"flexflow/internal/fixed"
	"flexflow/internal/mem"
	"flexflow/internal/tensor"
)

// goldenWindow computes Σ_{i,j} I(n, r+i, c+j)·K(m,n,i,j) directly.
func goldenWindow(in *tensor.Map3, kn *tensor.Kernel4, m, n, r, c int) fixed.Word {
	var acc fixed.Acc
	for i := 0; i < kn.K; i++ {
		for j := 0; j < kn.K; j++ {
			acc = fixed.MAC(acc, in.At(n, r+i, c+j), kn.At(m, n, i, j))
		}
	}
	return acc.Round()
}

func TestRowComputeWindowMatchesGolden(t *testing.T) {
	in := tensor.NewMap3(2, 9, 9)
	in.FillPattern(3)
	kn := tensor.NewKernel4(2, 2, 4)
	kn.FillPattern(4)

	res, err := RowComputeWindow(in, kn, 1, 0, 2, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outputs) != 3 {
		t.Fatalf("outputs = %d, want 3", len(res.Outputs))
	}
	for i, got := range res.Outputs {
		want := goldenWindow(in, kn, 1, 0, 2, 1+i)
		if got != want {
			t.Errorf("output %d = %v, want %v", i, got, want)
		}
	}
	// K cycles per output through K lanes.
	if res.Cycles != 3*4 {
		t.Errorf("cycles = %d, want 12", res.Cycles)
	}
}

func TestRowComputeWindowReusesPreload(t *testing.T) {
	// The RA/RS point: computing more consecutive outputs grows reads
	// but not local-store writes (the window was staged once).
	in := tensor.NewMap3(1, 8, 8)
	in.FillPattern(5)
	kn := tensor.NewKernel4(1, 1, 3)
	kn.FillPattern(6)

	one, err := RowComputeWindow(in, kn, 0, 0, 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	four, err := RowComputeWindow(in, kn, 0, 0, 0, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if four.LocalReads <= one.LocalReads {
		t.Errorf("reads should grow with outputs: %d vs %d", four.LocalReads, one.LocalReads)
	}
	// Writes grow only with the wider staged window (3 extra columns ×
	// K rows × K lanes), far less than a full re-stage per output.
	extra := four.LocalWrites - one.LocalWrites
	if extra >= one.LocalWrites {
		t.Errorf("per-output re-staging detected: base %d, extra %d", one.LocalWrites, extra)
	}
}

func TestPEStepSequence(t *testing.T) {
	pe := NewPE(8, 8)
	if err := pe.Preload(
		[]fixed.Word{fixed.FromFloat(1), fixed.FromFloat(2)},
		[]fixed.Word{fixed.FromFloat(3), fixed.FromFloat(4)},
	); err != nil {
		t.Fatal(err)
	}
	pe.Configure(
		mem.AddrGen{Base: 0, Step: 1, Window: 2, Replay: 1, Jump: 0, Rows: 1},
		mem.AddrGen{Base: 0, Step: 1, Window: 2, Replay: 1, Jump: 0, Rows: 1},
	)
	p1, err := pe.Step()
	if err != nil {
		t.Fatal(err)
	}
	if got := p1.Round(); got != fixed.FromFloat(3) {
		t.Errorf("step 1 product = %v, want 3", got.Float())
	}
	p2, _ := pe.Step()
	if got := p2.Round(); got != fixed.FromFloat(8) {
		t.Errorf("step 2 product = %v, want 8", got.Float())
	}
	if !pe.Done() {
		t.Error("PE should be done after its sequence")
	}
	if _, err := pe.Step(); err == nil {
		t.Error("stepping past the sequence should error")
	}
}

func TestPEPreloadOverflow(t *testing.T) {
	pe := NewPE(2, 2)
	if err := pe.Preload(make([]fixed.Word, 3), nil); err == nil {
		t.Error("neuron overflow accepted")
	}
	if err := pe.Preload(nil, make([]fixed.Word, 3)); err == nil {
		t.Error("kernel overflow accepted")
	}
}

func TestRowAdderTree(t *testing.T) {
	row := NewRow(3, 4, 4)
	for i, pe := range row.PEs {
		if err := pe.Preload(
			[]fixed.Word{fixed.FromFloat(float64(i + 1))},
			[]fixed.Word{fixed.One},
		); err != nil {
			t.Fatal(err)
		}
		pe.Configure(
			mem.AddrGen{Base: 0, Step: 1, Window: 1, Replay: 1, Jump: 0, Rows: 1},
			mem.AddrGen{Base: 0, Step: 1, Window: 1, Replay: 1, Jump: 0, Rows: 1},
		)
	}
	if err := row.Step(3); err != nil {
		t.Fatal(err)
	}
	// 1 + 2 + 3 = 6 folded through the tree in one cycle.
	if got := row.Accumulator().Round(); got != fixed.FromFloat(6) {
		t.Errorf("tree sum = %v, want 6", got.Float())
	}
	row.ResetAccumulator()
	if row.Accumulator() != 0 {
		t.Error("ResetAccumulator failed")
	}
}

func TestRowStepValidatesActive(t *testing.T) {
	row := NewRow(2, 4, 4)
	if err := row.Step(3); err == nil {
		t.Error("active > width accepted")
	}
	if err := row.Step(-1); err == nil {
		t.Error("negative active accepted")
	}
}
