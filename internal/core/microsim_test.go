package core

import (
	"math/rand"
	"testing"

	"flexflow/internal/nn"
	"flexflow/internal/tensor"
)

func TestMicroSimulateMatchesGoldenAndSimulate(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 10; trial++ {
		e := New(2 + rng.Intn(5))
		l := nn.ConvLayer{
			Name: "micro",
			M:    1 + rng.Intn(4),
			N:    1 + rng.Intn(3),
			S:    2 + rng.Intn(5),
			K:    1 + rng.Intn(4),
		}
		in, k := stridedOperands(l, uint64(trial+500))
		micro, microRes, err := e.MicroSimulate(l, in, k)
		if err != nil {
			t.Fatalf("%+v: %v", l, err)
		}
		if !micro.Equal(tensor.Conv(in, k)) {
			t.Errorf("%+v: component-level output differs from golden conv", l)
		}
		_, simRes, err := e.Simulate(l, in, k)
		if err != nil {
			t.Fatal(err)
		}
		if !micro.Equal(mustSim(t, e, l, in, k)) {
			t.Errorf("%+v: micro and schedule simulators disagree", l)
		}
		if microRes.Cycles != simRes.Cycles {
			t.Errorf("%+v: micro cycles %d != schedule cycles %d", l, microRes.Cycles, simRes.Cycles)
		}
		if microRes.MACs != simRes.MACs {
			t.Errorf("%+v: micro MACs %d != schedule MACs %d", l, microRes.MACs, simRes.MACs)
		}
	}
}

func mustSim(t *testing.T, e *Engine, l nn.ConvLayer, in *tensor.Map3, k *tensor.Kernel4) *tensor.Map3 {
	t.Helper()
	out, _, err := e.Simulate(l, in, k)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestMicroSimulateChunked(t *testing.T) {
	// Force chunking with tiny stores sized to still fit one pass.
	e := New(2)
	e.NeuronStoreWords = 16
	e.KernelStoreWords = 16
	l := nn.ConvLayer{Name: "chunked", M: 2, N: 6, S: 3, K: 2}
	in, k := stridedOperands(l, 9)
	out, _, err := e.MicroSimulate(l, in, k)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(tensor.Conv(in, k)) {
		t.Error("chunked micro-simulation differs from golden")
	}
}

func TestMicroSimulateLocalTrafficMatchesMACs(t *testing.T) {
	e := New(4)
	l := nn.ConvLayer{Name: "traffic", M: 3, N: 2, S: 4, K: 3}
	in, k := stridedOperands(l, 10)
	_, res, err := e.MicroSimulate(l, in, k)
	if err != nil {
		t.Fatal(err)
	}
	// Every cycle each active PE reads one neuron and one kernel word;
	// idle lanes read their zero padding too, so local reads are at
	// least 2× the useful MACs.
	if res.LocalReads < 2*res.MACs {
		t.Errorf("LocalReads %d below 2×MACs %d", res.LocalReads, res.MACs)
	}
	if res.NeuronLoads <= 0 {
		t.Error("no bank reads recorded")
	}
}

func TestMicroSimulateRejects(t *testing.T) {
	e := New(4)
	l := nn.ConvLayer{Name: "s", M: 1, N: 1, S: 3, K: 2, Stride: 2}
	in := tensor.NewMap3(1, l.InSize(), l.InSize())
	k := tensor.NewKernel4(1, 1, 2)
	if _, _, err := e.MicroSimulate(l, in, k); err == nil {
		t.Error("strided layer accepted")
	}
}
