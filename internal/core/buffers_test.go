package core

import (
	"strings"
	"testing"

	"flexflow/internal/arch"
	"flexflow/internal/bus"
	"flexflow/internal/nn"
	"flexflow/internal/tensor"
)

func TestBufferPlanCoupling(t *testing.T) {
	l := nn.ConvLayer{Name: "C1", M: 6, N: 1, S: 28, K: 5}
	f := arch.ChooseFactors(l, 16, 10)
	input, kernels, output := BufferPlan(l, f)
	if input.Tn != f.Tn || input.Ti != f.Ti || input.Tj != f.Tj {
		t.Errorf("input layout %+v does not match factors %v", input, f)
	}
	if kernels.Tm != f.Tm || kernels.Tr != f.Tr || kernels.Tc != f.Tc {
		t.Errorf("kernel layout %+v does not match factors %v", kernels, f)
	}
	// The output buffer is laid out for the next layer's read: its
	// partitioning is the row triple.
	if output.Tn != f.Tm || output.Ti != f.Tr || output.Tj != f.Tc {
		t.Errorf("output layout %+v not coupled to row triple of %v", output, f)
	}
	if input.H != l.InSize() || output.H != l.S {
		t.Errorf("layout shapes wrong: in %d want %d, out %d want %d", input.H, l.InSize(), output.H, l.S)
	}
}

func TestCheckDistributionConflictFree(t *testing.T) {
	e := New(16)
	layers := []nn.ConvLayer{
		{Name: "LeNet-C1", M: 6, N: 1, S: 28, K: 5},
		{Name: "LeNet-C3", M: 16, N: 6, S: 10, K: 5},
		{Name: "PV-C3", M: 12, N: 8, S: 20, K: 3},
		{Name: "odd", M: 5, N: 3, S: 7, K: 4},
	}
	for _, l := range layers {
		f := e.Chooser(l)
		lines, ok := e.CheckDistribution(l, f)
		if !ok {
			t.Errorf("%s: distribution line with a bank conflict under %v", l.Name, f)
		}
		if lines == 0 {
			t.Errorf("%s: no lines checked", l.Name)
		}
	}
}

func TestBusProbesMatchBufferReads(t *testing.T) {
	e := New(8)
	e.VerticalBus = bus.New("vertical")
	e.HorizontalBus = bus.New("horizontal")
	l := nn.ConvLayer{Name: "probe", M: 5, N: 3, S: 7, K: 3}
	in := tensor.NewMap3(l.N, l.InSize(), l.InSize())
	in.FillPattern(1)
	k := tensor.NewKernel4(l.M, l.N, l.K)
	k.FillPattern(2)
	_, res, err := e.Simulate(l, in, k)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.VerticalBus.Transfers(); got != res.NeuronLoads {
		t.Errorf("vertical bus transfers %d != neuron loads %d", got, res.NeuronLoads)
	}
	if got := e.HorizontalBus.Transfers(); got != res.KernelLoads {
		t.Errorf("horizontal bus transfers %d != kernel loads %d", got, res.KernelLoads)
	}
	// IPDR fans every kernel word out to the whole logical group:
	// deliveries strictly exceed transfers.
	if e.HorizontalBus.Delivered() <= e.HorizontalBus.Transfers() {
		t.Error("IPDR should deliver more kernel words than it transfers")
	}
}

func TestOccupancyMapRendersFig8(t *testing.T) {
	// The Section 4.2 example: C1 on a 4×4 array fully occupied.
	l := nn.ConvLayer{Name: "C1", M: 2, N: 1, S: 8, K: 4}
	f := arch.ChooseFactors(l, 4, l.S)
	out := OccupancyMap(l, f, 4)
	if !strings.Contains(out, "O(0,0,0)") {
		t.Errorf("missing output label:\n%s", out)
	}
	if !strings.Contains(out, "n0:k0,0") {
		t.Errorf("missing operand label:\n%s", out)
	}
	if !strings.Contains(out, "active PEs: 16/16") {
		t.Errorf("Fig. 8 full occupancy not shown:\n%s", out)
	}
	// Idle structure renders dots for an underfilled choice.
	half := arch.T{Tm: 1, Tn: 1, Tr: 1, Tc: 2, Ti: 1, Tj: 2}
	out2 := OccupancyMap(l, half, 4)
	if !strings.Contains(out2, "active PEs: 4/16") {
		t.Errorf("partial occupancy wrong:\n%s", out2)
	}
}

func TestVerifyBankedPlacement(t *testing.T) {
	e := New(8)
	layers := []nn.ConvLayer{
		{Name: "a", M: 4, N: 2, S: 6, K: 3},
		{Name: "b", M: 3, N: 3, S: 5, K: 2},
		{Name: "c", M: 2, N: 1, S: 9, K: 4},
	}
	for _, l := range layers {
		in := tensor.NewMap3(l.N, l.InSize(), l.InSize())
		in.FillPattern(6)
		f := e.Chooser(l)
		reads, err := e.VerifyBankedPlacement(l, f, in)
		if err != nil {
			t.Errorf("%s under %v: %v", l.Name, f, err)
		}
		// Every MAC operand was fetched through a bank.
		if reads < l.MACs() {
			t.Errorf("%s: %d bank reads below MAC count %d", l.Name, reads, l.MACs())
		}
	}
}

func TestVerifyBankedPlacementRejectsStride(t *testing.T) {
	e := New(4)
	l := nn.ConvLayer{M: 1, N: 1, S: 3, K: 2, Stride: 2}
	in := tensor.NewMap3(1, l.InSize(), l.InSize())
	if _, err := e.VerifyBankedPlacement(l, e.Chooser(l), in); err == nil {
		t.Error("strided layer accepted")
	}
}

func TestDescribe(t *testing.T) {
	e := New(16)
	l := nn.ConvLayer{Name: "C3", M: 16, N: 6, S: 10, K: 5}
	out := e.Describe(l)
	for _, want := range []string{"factors", "style MFMNMS", "group passes", "banks", "U_t"} {
		if !strings.Contains(out, want) {
			t.Errorf("Describe missing %q:\n%s", want, out)
		}
	}
	// A chunked layer mentions its spills.
	big := nn.ConvLayer{Name: "big", M: 8, N: 512, S: 6, K: 3}
	if out := e.Describe(big); !strings.Contains(out, "input chunks") {
		t.Errorf("chunked layer not described:\n%s", out)
	}
}
