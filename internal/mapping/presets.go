package mapping

// The five engine packages as preset specs. Each preset's name matches
// the engine's Name() so a lowered preset stamps the same Arch string;
// the parity table test pins preset-lowered results bit-for-bit
// against the pre-refactor engines on the Table 1 set. The committed
// files under specs/ are these presets at the paper's evaluation
// geometry, pinned by test to stay in sync with this code.

// dirs builds the directive vector of a dataflow with all factors and
// tiles auto (panics on an unknown dataflow — presets only). The panic
// message is constant so the function stays allocation-free: it sits
// on the engines' LayerCacheKey hot path.
func dirs(dataflow string) [numDims]Directive {
	order, kinds, ok := nestOrder(dataflow)
	if !ok {
		panic("mapping: preset with unknown dataflow")
	}
	var ds [numDims]Directive
	for i := range ds {
		ds[i] = Directive{Dim: order[i], Kind: kinds[i]}
	}
	return ds
}

// PresetFlexFlow is the paper's Table 5 FlexFlow configuration at PE
// edge d: 128-word per-PE stores, 32 KB buffers, RA+RS+IPDR on,
// factors chosen by the §5 compiler.
func PresetFlexFlow(d int) Spec {
	return Spec{
		Name:     "FlexFlow",
		Dataflow: DataflowFlexFlow,
		Geom: Geometry{
			Rows: d, Cols: d, Repl: 1,
			NeuronStoreWords: 128, KernelStoreWords: 128,
			BufferWords: 16384,
		},
		RA: true, RS: true, IPDR: true,
		Dirs: dirs(DataflowFlexFlow),
	}
}

// PresetSystolic is the §3.1 baseline: arrays identical k0×k0 systolic
// arrays (the paper uses 6×6×7, kernel-matched 11×11 for AlexNet).
func PresetSystolic(k0, arrays int) Spec {
	return Spec{
		Name:     "Systolic",
		Dataflow: DataflowSystolic,
		Geom:     Geometry{Rows: k0, Cols: k0, Repl: arrays, BufferWords: 16384},
		Dirs:     dirs(DataflowSystolic),
	}
}

// PresetMapping2D is the §3.2 baseline: a d×d ShiDiannao-style grid.
func PresetMapping2D(d int) Spec {
	return Spec{
		Name:     "2D-Mapping",
		Dataflow: DataflowMapping2D,
		Geom:     Geometry{Rows: d, Cols: d, Repl: 1, BufferWords: 16384},
		Dirs:     dirs(DataflowMapping2D),
	}
}

// PresetTiling is the §3.3 baseline: tm PEs of tn multipliers.
func PresetTiling(tm, tn int) Spec {
	return Spec{
		Name:     "Tiling",
		Dataflow: DataflowTiling,
		Geom:     Geometry{Rows: tm, Cols: tn, Repl: 1, BufferWords: 16384},
		Dirs:     dirs(DataflowTiling),
	}
}

// PresetRowStationary is the Eyeriss-style §7 comparator with its
// 108 KB global buffer.
func PresetRowStationary(rows, cols int) Spec {
	return Spec{
		Name:     "Row-Stationary",
		Dataflow: DataflowRowStat,
		Geom:     Geometry{Rows: rows, Cols: cols, Repl: 1, BufferWords: 55296},
		Dirs:     dirs(DataflowRowStat),
	}
}

// PresetEyeriss is PresetRowStationary at the 12×14 Table 7 geometry.
func PresetEyeriss() Spec { return PresetRowStationary(12, 14) }
