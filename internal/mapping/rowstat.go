package mapping

import (
	"flexflow/internal/arch"
	"flexflow/internal/nn"
)

// RowStationary is the lowering rule of the rowstat dataflow: the
// Eyeriss-style row-stationary mapping (§7, Table 7 comparator) on a
// Rows×Cols array — PE sets of K rows × E columns, kernel rows
// stationary, inputs multicast across concurrent sets.
type RowStationary struct {
	Rows, Cols  int
	BufferWords int
}

// Geometry derives the RS mapping of a layer: set height (kernel rows,
// folded when K exceeds the physical height), set width E (output rows
// per pass), and the number of concurrent sets.
func (rs RowStationary) Geometry(l nn.ConvLayer) (setH, setW, sets, folds int) {
	setH = l.K
	folds = 1
	if setH > rs.Rows {
		folds = (l.K + rs.Rows - 1) / rs.Rows
		setH = rs.Rows
	}
	setW = l.S
	if setW > rs.Cols {
		setW = rs.Cols
	}
	sets = rs.Rows / setH
	if sets < 1 {
		sets = 1
	}
	return setH, setW, sets, folds
}

// Account lowers one unit-stride layer: the analytic cycle/traffic
// model of the row-stationary engine. Arch is left empty for the
// caller.
func (rs RowStationary) Account(l nn.ConvLayer) arch.LayerResult {
	if l.Str() != 1 {
		panic("rowstat: unit-stride model only")
	}
	setH, setW, sets, folds := rs.Geometry(l)
	in := int64(l.InSize())

	// One set-pass: setW output rows of one (m, n) pair for one kernel
	// fold; every PE runs a 1-D conv of S outputs × K taps, plus the
	// psum drain down the set.
	cyclesPerPass := int64(l.S)*int64(l.K) + int64(setH)
	rowGroups := int64((l.S + setW - 1) / setW)
	// Rounds are grouped by (n, fold, m-group, row-group): a partial
	// m-group still occupies a full round.
	mGroupsForRounds := int64((l.M + sets - 1) / sets)
	engineRounds := int64(l.N) * int64(folds) * mGroupsForRounds * rowGroups

	res := arch.LayerResult{
		Layer: l,
		Factors: arch.T{Tm: sets, Tn: 1, Tr: setW, Tc: 1,
			Ti: setH, Tj: 1},
		PEs:    rs.Rows * rs.Cols,
		Cycles: engineRounds * cyclesPerPass,
		MACs:   l.MACs(),
	}

	// Kernel rows stay stationary across an (m, n)'s row groups: each
	// fold's rows are loaded once per (m, n), so the folds together load
	// each synapse exactly once.
	res.KernelLoads = int64(l.M) * int64(l.N) * int64(l.K) * int64(l.K)
	// Input rows multicast to the concurrent sets (different m, same n):
	// one buffer read serves a whole m-group. Sum the exact row-group
	// extents (the last group is narrower).
	mGroups := int64((l.M + sets - 1) / sets)
	var rowGroupWords int64
	for e0 := 0; e0 < l.S; e0 += setW {
		ew := setW
		if e0+ew > l.S {
			ew = l.S - e0
		}
		rowGroupWords += int64(ew+setH-1) * in
	}
	res.NeuronLoads = mGroups * int64(l.N) * int64(folds) * rowGroupWords
	_ = rowGroups
	// Partial sums spill to the buffer per n (and per fold) and are
	// re-read for accumulation.
	s2 := int64(l.S) * int64(l.S)
	nPasses := int64(l.N) * int64(folds)
	res.NeuronStores = int64(l.M) * nPasses * s2
	res.NeuronLoads += int64(l.M) * (nPasses - 1) * s2
	// Psums hop up the set once per tap row beyond the first (per fold,
	// a set of ka rows makes ka-1 hops per output element).
	var hopsPerElem int64
	for fold := 0; fold < folds; fold++ {
		ka := setH
		if fold*setH+ka > l.K {
			ka = l.K - fold*setH
		}
		hopsPerElem += int64(ka - 1)
	}
	res.InterPEMoves = int64(l.M) * int64(l.N) * s2 * hopsPerElem
	// The stationary register file is read per MAC (kernel + psum).
	res.LocalReads = 2 * l.MACs()
	res.LocalWrites = l.MACs()

	rs.DRAM(l, &res, mGroups)
	return res
}

// DRAM fills the external-memory counters: compulsory traffic plus an
// input re-stream per m-group when the stack exceeds the buffer.
func (rs RowStationary) DRAM(l nn.ConvLayer, res *arch.LayerResult, mGroups int64) {
	inWords := l.InputWords()
	reload := int64(1)
	if inWords > int64(rs.BufferWords) {
		reload = mGroups
	}
	res.DRAMReads = inWords*reload + l.KernelWords()
	res.DRAMWrites = l.OutputWords()
}
