package mapping

import (
	"fmt"

	"flexflow/internal/arch"
	"flexflow/internal/nn"
	"flexflow/internal/tensor"
)

// Engine is a mapping spec lowered onto the analytic interpreter: an
// arch.Engine whose Model dispatches to the spec's dataflow rule. It
// is the purely analytic face of the DSL — functional (value-moving)
// simulation stays in the engine packages, which the facade's
// NewSpecEngine constructs from the same spec; Simulate here returns
// an error directing callers there. Engine is immutable after Lower
// and safe for concurrent use.
type Engine struct {
	spec Spec
	// keyPrefix is the precomputed cache-key fragment covering the
	// engine name and the full spec (AppendSpecKey), so the per-layer
	// LayerCacheKey only appends the layer shape.
	keyPrefix string
}

// Lower validates a spec and binds it to the interpreter.
func Lower(s Spec) (*Engine, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	b := make([]byte, 0, 160)
	b = AppendSpecKey(b, &s)
	return &Engine{spec: s, keyPrefix: string(b)}, nil
}

// Spec returns the lowered spec (a value copy).
func (e *Engine) Spec() Spec { return e.spec }

// Name implements arch.Engine: the spec's name.
func (e *Engine) Name() string { return e.spec.Name }

// PEs implements arch.Engine: multipliers implied by the geometry.
func (e *Engine) PEs() int {
	g := e.spec.Geom
	return g.Repl * g.Rows * g.Cols
}

// Factors resolves the unrolling-factor vector the spec uses on layer
// l: the fixed vector when the spec pins one, otherwise the rule's
// own choice (the §5 compiler for flexflow, the geometry-derived
// factors for the rigid dataflows).
func (e *Engine) Factors(l nn.ConvLayer) arch.T {
	g := e.spec.Geom
	switch e.spec.Dataflow {
	case DataflowFlexFlow:
		if t := e.spec.FixedFactors(); t.Tm > 0 {
			return t
		}
		return arch.ChooseFactors(l, g.Rows, l.S)
	case DataflowSystolic:
		return arch.T{Tm: min(g.Repl, l.M), Tn: 1, Tr: 1, Tc: 1,
			Ti: min(g.Rows, l.K), Tj: min(g.Cols, l.K)}
	case DataflowMapping2D:
		return arch.T{Tm: 1, Tn: 1, Tr: min(g.Rows, l.S), Tc: min(g.Cols, l.S), Ti: 1, Tj: 1}
	case DataflowTiling:
		return arch.T{Tm: min(g.Rows, l.M), Tn: min(g.Cols, l.N), Tr: 1, Tc: 1, Ti: 1, Tj: 1}
	default: // DataflowRowStat
		setH, setW, sets, _ := RowStationary{Rows: g.Rows, Cols: g.Cols, BufferWords: g.BufferWords}.Geometry(l)
		return arch.T{Tm: sets, Tn: 1, Tr: setW, Tc: 1, Ti: setH, Tj: 1}
	}
}

// CheckLayer implements arch.LayerChecker: shape sanity, the rigid
// dataflows' unit-stride contract, and — for a fixed flexflow factor
// vector — Constraint (1) against this layer.
func (e *Engine) CheckLayer(l nn.ConvLayer) error {
	if err := l.Validate(); err != nil {
		return err
	}
	switch e.spec.Dataflow {
	case DataflowFlexFlow:
		if t := e.spec.FixedFactors(); t.Tm > 0 {
			if err := t.Validate(l, e.spec.Geom.Rows, l.S); err != nil {
				return fmt.Errorf("mapping: spec %s does not fit layer %s: %w", e.spec.Name, l.Name, err)
			}
		}
	default:
		if l.Str() != 1 {
			return fmt.Errorf("mapping: %s dataflow assumes unit stride (paper §3); layer %s has stride %d", e.spec.Dataflow, l.Name, l.Str())
		}
	}
	return nil
}

// Model implements arch.Engine: lower the layer through the spec's
// dataflow rule. Bit-for-bit equal to the corresponding engine
// package's Model for the preset specs (the parity table test).
func (e *Engine) Model(l nn.ConvLayer) arch.LayerResult {
	g := e.spec.Geom
	var res arch.LayerResult
	switch e.spec.Dataflow {
	case DataflowFlexFlow:
		f := Flex{
			D:                g.Rows,
			NeuronStoreWords: g.NeuronStoreWords,
			KernelStoreWords: g.KernelStoreWords,
			BufferWords:      g.BufferWords,
			RA:               e.spec.RA, RS: e.spec.RS, IPDR: e.spec.IPDR,
		}
		res = f.Account(l, e.Factors(l), e.spec.NTile())
	case DataflowSystolic:
		res = Systolic{K0: g.Rows, Arrays: g.Repl, BufferWords: g.BufferWords}.Account(l)
	case DataflowMapping2D:
		res = Grid{D: g.Rows, BufferWords: g.BufferWords}.Account(l)
	case DataflowTiling:
		res = Tree{Tm: g.Rows, Tn: g.Cols, BufferWords: g.BufferWords}.Account(l)
	default: // DataflowRowStat
		res = RowStationary{Rows: g.Rows, Cols: g.Cols, BufferWords: g.BufferWords}.Account(l)
	}
	res.Arch = e.spec.Name
	return res
}

// Simulate implements arch.Engine. The interpreter is analytic-only:
// functional simulation needs an engine package's explicit datapath,
// which the facade's NewSpecEngine lowers the same spec onto.
func (e *Engine) Simulate(l nn.ConvLayer, in *tensor.Map3, k *tensor.Kernel4) (*tensor.Map3, arch.LayerResult, error) {
	return nil, arch.LayerResult{}, fmt.Errorf("mapping: spec %q is lowered analytically; use NewSpecEngine for functional simulation", e.spec.Name)
}

// LayerCacheKey implements the pipeline's CacheKeyer: the precomputed
// spec digest (engine name plus every geometry, toggle and directive
// field — two distinct specs can never alias) followed by the layer
// shape. The resolved factors are a pure function of (spec, layer), so
// they need no separate field.
func (e *Engine) LayerCacheKey(l nn.ConvLayer) (string, bool) {
	b := make([]byte, 0, 224)
	b = append(b, e.keyPrefix...)
	b = arch.AppendLayerKey(b, l)
	return string(b), true
}
