package mapping

import (
	"flexflow/internal/arch"
	"flexflow/internal/nn"
)

// Flex is the lowering rule of the flexflow dataflow: the D×D PE
// matrix with per-PE local stores and the RA/RS/IPDR optimizations of
// §4.3–4.5. It carries exactly the analytic state the core engine's
// Model reads; the core package builds one from its fields and
// delegates, so rule and engine cannot drift.
type Flex struct {
	D                int
	NeuronStoreWords int
	KernelStoreWords int
	BufferWords      int
	RA, RS, IPDR     bool
}

// FlexSchedule is the concrete execution schedule of one layer: the
// unrolling factors plus the input-map chunking that keeps the per-PE
// working set inside the local stores. Each PE consumes one operand
// pair per cycle, so over one pass it touches exactly
// ⌈vN/T_n⌉·⌈K/T_i⌉·⌈K/T_j⌉ words of each kind. Layers whose full-N
// working set overflows the 128-word stores are split into chunks of
// input maps; partial sums are written back to the neuron buffer
// between chunks and re-read for accumulation (the paper's Fig. 13f
// mechanism).
type FlexSchedule struct {
	T      arch.T
	KIJ    int64 // ⌈K/T_i⌉·⌈K/T_j⌉
	NChunk int   // input maps per chunk (multiple of T_n), ≤ N
	Chunks int
}

// Schedule derives the layer's schedule from the chosen factors and
// the local-store capacity.
func (f Flex) Schedule(l nn.ConvLayer, t arch.T) FlexSchedule {
	return f.ScheduleTile(l, t, 0)
}

// ScheduleTile is Schedule with an explicit N chunk size (the spec's
// tile=N directive); nChunk 0 means auto — the largest chunk whose
// operands fit the local stores. An explicit chunk is clamped to
// [T_n, N] exactly as the auto path clamps its capacity-derived one.
func (f Flex) ScheduleTile(l nn.ConvLayer, t arch.T, nChunk int) FlexSchedule {
	kij := int64(ceilDiv(l.K, t.Ti)) * int64(ceilDiv(l.K, t.Tj))
	if nChunk == 0 {
		cap64 := int64(min(f.NeuronStoreWords, f.KernelStoreWords))
		blocks := int64(1)
		if kij > 0 && cap64/kij > 0 {
			blocks = cap64 / kij // n-blocks whose operands fit one PE store
		}
		nChunk = int(blocks) * t.Tn
	}
	if nChunk >= l.N {
		nChunk = l.N
	}
	if nChunk < t.Tn {
		nChunk = t.Tn // corner: even one n-block overflows; accept it
	}
	return FlexSchedule{
		T:      t,
		KIJ:    kij,
		NChunk: nChunk,
		Chunks: ceilDiv(l.N, nChunk),
	}
}

// CPPChunk returns the compute cycles of one pass over a chunk of vN
// input maps.
func (s FlexSchedule) CPPChunk(vN int) int64 {
	return int64(ceilDiv(vN, s.T.Tn)) * s.KIJ
}

// Pass describes one group pass over an output block for one input
// chunk.
type Pass struct {
	N0, VN        int // input-map chunk
	M0, R0, C0    int // block origin in (map, row, col) space
	VTm, VTr, VTc int // valid extent of the block
	NewMBlock     bool
	FirstChunk    bool
}

// ForEachPass iterates the pass schedule: input chunks outermost (the
// partial-sum loop), then m-blocks (so kernel local stores persist
// across all position passes of an m-block), then output row/column
// blocks.
func ForEachPass(l nn.ConvLayer, s FlexSchedule, fn func(p Pass)) {
	t := s.T
	for n0 := 0; n0 < l.N; n0 += s.NChunk {
		vN := min(s.NChunk, l.N-n0)
		for m0 := 0; m0 < l.M; m0 += t.Tm {
			first := true
			for r0 := 0; r0 < l.S; r0 += t.Tr {
				for c0 := 0; c0 < l.S; c0 += t.Tc {
					fn(Pass{
						N0: n0, VN: vN,
						M0: m0, R0: r0, C0: c0,
						VTm:        min(t.Tm, l.M-m0),
						VTr:        min(t.Tr, l.S-r0),
						VTc:        min(t.Tc, l.S-c0),
						NewMBlock:  first,
						FirstChunk: n0 == 0,
					})
					first = false
				}
			}
		}
	}
}

// KernelPassReads returns the kernel-buffer reads and kernel
// local-store writes caused by pass p. Kernels are loaded on entry to
// each (chunk, m-block) and stay resident across its position passes;
// when even one chunk overflows the store (the NChunk == Tn corner),
// the non-resident fraction is re-streamed every pass. IPDR replicates
// one buffer read to all T_r·T_c rows of a group; without it each
// row-group issues its own read.
func (f Flex) KernelPassReads(l nn.ConvLayer, s FlexSchedule, p Pass) (reads, localWrites int64) {
	chunkWords := int64(p.VN) * int64(l.K) * int64(l.K)
	validRows := int64(p.VTm) * int64(p.VTr) * int64(p.VTc)
	cpp := s.CPPChunk(p.VN)
	cap64 := int64(f.KernelStoreWords)
	switch {
	case p.NewMBlock:
		reads = int64(p.VTm) * chunkWords
		localWrites = validRows * chunkWords
	case cpp > cap64:
		reads = int64(p.VTm) * chunkWords * (cpp - cap64) / cpp
		localWrites = validRows * chunkWords * (cpp - cap64) / cpp
	}
	if !f.IPDR {
		reads *= int64(p.VTr) * int64(p.VTc)
	}
	return reads, localWrites
}

// NeuronReuseOK reports whether the inter-pass window reuse of RA+RS is
// available: the chunk working set must fit the neuron local store so
// the previous pass's overlap columns are still staged.
func (f Flex) NeuronReuseOK(s FlexSchedule, vN int) bool {
	return f.RA && f.RS && s.CPPChunk(vN) <= int64(f.NeuronStoreWords)
}

// AccountPass adds the cycle and traffic cost of one pass to res. It is
// the analytic mirror of the core engine's Simulate accounting; the
// property tests hold the two equal.
func (f Flex) AccountPass(l nn.ConvLayer, s FlexSchedule, p Pass, res *arch.LayerResult) {
	cpp := s.CPPChunk(p.VN)
	chunkOps := int64(p.VN) * int64(l.K) * int64(l.K)
	validRows := int64(p.VTm) * int64(p.VTr) * int64(p.VTc)

	// Neuron traffic: with RA+RS the union input window of the block is
	// fetched once (overlaps between rows exploited by reordering and
	// preloading), and consecutive c-blocks of a row band reuse the
	// staged overlap columns, so only the stride·vTc new columns
	// arrive. Without the optimizations every row fetches its own K×K
	// windows. The union spans account for the layer stride: windows of
	// consecutive outputs overlap only while stride < K.
	str := l.Str()
	rowSpan := int64(UnionSpan(p.VTr, str, l.K))
	var neuronWords int64
	switch {
	case !(f.RA && f.RS):
		neuronWords = validRows * chunkOps
	case f.NeuronReuseOK(s, p.VN) && p.C0 > 0:
		newCols := int64(p.VTc * str)
		if full := int64(UnionSpan(p.VTc, str, l.K)); newCols > full {
			newCols = full
		}
		neuronWords = int64(p.VN) * rowSpan * newCols
	default:
		neuronWords = int64(p.VN) * rowSpan * int64(UnionSpan(p.VTc, str, l.K))
	}
	res.NeuronLoads += neuronWords

	kr, kw := f.KernelPassReads(l, s, p)
	res.KernelLoads += kr
	res.LocalWrites += kw

	// Cycle cost: the compute schedule, plus vertical-bus stall cycles
	// when the un-optimized neuron traffic exceeds the D words/cycle
	// the D-banked buffer can feed during the pass.
	cycles := cpp
	if !(f.RA && f.RS) {
		loadCycles := (neuronWords + int64(f.D) - 1) / int64(f.D)
		if loadCycles > cycles {
			cycles = loadCycles
		}
	}
	res.Cycles += cycles

	// Each valid output's chunk partial leaves the engine once per
	// chunk; chunks after the first re-read the prior partial for
	// accumulation (Fig. 13f).
	res.NeuronStores += validRows
	if !p.FirstChunk {
		res.NeuronLoads += validRows
	}

	// MAC-level counters: every valid output issues vN·K² MACs this
	// pass, each reading both local stores once; RS preloads each
	// operand slot once.
	macs := validRows * chunkOps
	res.MACs += macs
	res.LocalReads += 2 * macs
	res.LocalWrites += macs
}

// DRAM fills the external-memory counters: compulsory traffic plus an
// input re-stream per m-block when the stack exceeds one neuron
// buffer.
func (f Flex) DRAM(l nn.ConvLayer, t arch.T, res *arch.LayerResult) {
	mBlocks := int64((l.M + t.Tm - 1) / t.Tm)
	reload := int64(1)
	if l.InputWords() > int64(f.BufferWords) {
		// The input stack exceeds one neuron buffer: it is re-streamed
		// once per m-block.
		reload = mBlocks
	}
	res.DRAMReads = l.InputWords()*reload + l.KernelWords()
	res.DRAMWrites = l.OutputWords()
}

// Account lowers one layer under factors t and an explicit N tile
// (0 = auto): the full analytic pass walk plus the DRAM model. The
// result's Arch is left empty — the caller (an engine package or
// Engine) stamps its own name.
func (f Flex) Account(l nn.ConvLayer, t arch.T, nTile int) arch.LayerResult {
	s := f.ScheduleTile(l, t, nTile)
	res := arch.LayerResult{Layer: l, Factors: t, PEs: f.D * f.D}
	ForEachPass(l, s, func(p Pass) {
		f.AccountPass(l, s, p, &res)
	})
	f.DRAM(l, t, &res)
	return res
}

// UnionSpan returns the length of the union of v stride-spaced windows
// of length k: contiguous (v-1)·stride + k while stride < k, disjoint
// v·k windows otherwise.
func UnionSpan(v, stride, k int) int {
	if stride < k {
		return (v-1)*stride + k
	}
	return v * k
}

// ceilDiv returns ⌈a/b⌉.
func ceilDiv(a, b int) int { return (a + b - 1) / b }
