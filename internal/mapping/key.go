package mapping

import "flexflow/internal/arch"

// AppendSpecKey appends every analytically relevant field of a spec to
// a cache key, using the repo's '|'-terminated canonical encoding
// (arch/key.go). The name is included — two specs differing only in
// name stamp different Arch strings on their results, so they must not
// share a memo entry — followed by the dataflow, the full geometry,
// the optimization toggles, and all six directives. The engine
// packages embed their own configuration through this same function
// (via their preset-spec view), which is what extends the repo's
// cache-key contract to "distinct specs never collide".
func AppendSpecKey(b []byte, s *Spec) []byte {
	b = arch.AppendKeyString(b, s.Name)
	b = arch.AppendKeyString(b, s.Dataflow)
	b = arch.AppendKeyInt(b, int64(s.Geom.Rows))
	b = arch.AppendKeyInt(b, int64(s.Geom.Cols))
	b = arch.AppendKeyInt(b, int64(s.Geom.Repl))
	b = arch.AppendKeyInt(b, int64(s.Geom.NeuronStoreWords))
	b = arch.AppendKeyInt(b, int64(s.Geom.KernelStoreWords))
	b = arch.AppendKeyInt(b, int64(s.Geom.BufferWords))
	b = arch.AppendKeyBool(b, s.RA)
	b = arch.AppendKeyBool(b, s.RS)
	b = arch.AppendKeyBool(b, s.IPDR)
	for _, d := range s.Dirs {
		b = arch.AppendKeyInt(b, int64(d.Dim))
		b = arch.AppendKeyInt(b, int64(d.Kind))
		b = arch.AppendKeyInt(b, int64(d.Factor))
		b = arch.AppendKeyInt(b, int64(d.Tile))
	}
	return b
}
