package mapping

import (
	"flexflow/internal/arch"
	"flexflow/internal/nn"
)

// Systolic is the lowering rule of the systolic dataflow (SFSNMS,
// §3.1): Arrays identical K0×K0 delay-line arrays working on different
// output maps, inputs broadcast in raster order, synapses stationary.
type Systolic struct {
	K0, Arrays  int
	BufferWords int
}

// Passes returns how many sub-kernel passes cover a K×K kernel on the
// K0×K0 array (⌈K/K0⌉ in each dimension).
func (y Systolic) Passes(k int) int {
	n := (k + y.K0 - 1) / y.K0
	return n * n
}

// CyclesPerPass returns the cycles of one full raster pass of the
// input feature map through one array: one broadcast per input neuron
// plus one drain cycle for the last partial sum to exit the line.
func systolicCyclesPerPass(l nn.ConvLayer) int64 {
	in := int64(l.InSize())
	return in*in + 1
}

// Account lowers one unit-stride layer: the analytic cycle/traffic
// model of the systolic engine. Arch is left empty for the caller.
func (y Systolic) Account(l nn.ConvLayer) arch.LayerResult {
	if l.Str() != 1 {
		panic("systolic: the rigid baselines assume unit stride (paper §3); strided layers run on FlexFlow only")
	}
	in := int64(l.InSize())
	subPasses := int64(y.Passes(l.K))
	mGroups := int64((l.M + y.Arrays - 1) / y.Arrays)
	// Arrays in one m-group run in lock-step on the same broadcast, so
	// engine cycles follow the per-array schedule.
	cycles := mGroups * int64(l.N) * subPasses * systolicCyclesPerPass(l)

	res := arch.LayerResult{
		Layer: l,
		Factors: arch.T{Tm: min(y.Arrays, l.M), Tn: 1, Tr: 1, Tc: 1,
			Ti: min(y.K0, l.K), Tj: min(y.K0, l.K)},
		PEs:    y.Arrays * y.K0 * y.K0,
		Cycles: cycles,
		MACs:   l.MACs(),
	}

	s2 := int64(l.S) * int64(l.S)
	// Input neurons: broadcast in raster order, shared by all arrays of
	// an m-group (the inter-array sharing the paper credits Systolic
	// with). One buffer read feeds the whole group.
	res.NeuronLoads = mGroups * int64(l.N) * subPasses * (in * in)
	// Synapses: loaded once per (m,n,sub-kernel) pass and then resident.
	res.KernelLoads = l.KernelWords()
	// Partial sums: every pass pumps S² partials out of each array;
	// all but the first pass's stores trigger a re-read of the previous
	// partial for accumulation.
	nPasses := int64(l.N) * subPasses
	res.NeuronStores = int64(l.M) * nPasses * s2
	res.NeuronLoads += int64(l.M) * (nPasses - 1) * s2
	// Partial sums shift once per line position after birth:
	// lineLen-1 moves per slot, with the line length of each sub-pass.
	sub := (l.K + y.K0 - 1) / y.K0
	var movesPerMN int64
	for oi := 0; oi < sub; oi++ {
		for oj := 0; oj < sub; oj++ {
			ka := min(y.K0, l.K-oi*y.K0)
			kb := min(y.K0, l.K-oj*y.K0)
			lineLen := int64(ka-1)*in + int64(kb)
			movesPerMN += s2 * (lineLen - 1)
		}
	}
	res.InterPEMoves = int64(l.M) * int64(l.N) * movesPerMN
	// Each MAC reads the synapse register and the partial-sum register.
	res.LocalReads = 2 * l.MACs()
	res.LocalWrites = l.MACs()

	y.DRAM(l, &res, mGroups)
	return res
}

// DRAM fills the external-memory counters: compulsory traffic plus
// re-fetches when the input stack exceeds the neuron buffer.
func (y Systolic) DRAM(l nn.ConvLayer, res *arch.LayerResult, mGroups int64) {
	inWords := l.InputWords()
	reload := int64(1)
	if inWords > int64(y.BufferWords) {
		// The input stack does not fit: it is re-streamed once per
		// m-group.
		reload = mGroups
	}
	res.DRAMReads = inWords*reload + l.KernelWords()
	res.DRAMWrites = l.OutputWords()
}
