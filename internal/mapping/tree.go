package mapping

import (
	"flexflow/internal/arch"
	"flexflow/internal/nn"
)

// Tree is the lowering rule of the tiling dataflow (MFSNSS, §3.3):
// Tm PEs of Tn multipliers each feeding an adder tree, no local
// operand storage — neurons and synapses are re-fetched every cycle.
type Tree struct {
	Tm, Tn      int
	BufferWords int
}

// Account lowers one unit-stride layer: the analytic cycle/traffic
// model of the tiling engine. Arch is left empty for the caller.
func (tr Tree) Account(l nn.ConvLayer) arch.LayerResult {
	if l.Str() != 1 {
		panic("tiling: the rigid baselines assume unit stride (paper §3); strided layers run on FlexFlow only")
	}
	mBlocks := int64(ceilDiv(l.M, tr.Tm))
	nBlocks := int64(ceilDiv(l.N, tr.Tn))
	s2k2 := int64(l.S) * int64(l.S) * int64(l.K) * int64(l.K)
	cycles := mBlocks * nBlocks * s2k2

	res := arch.LayerResult{
		Layer: l,
		Factors: arch.T{Tm: min(tr.Tm, l.M), Tn: min(tr.Tn, l.N), Tr: 1, Tc: 1,
			Ti: 1, Tj: 1},
		PEs:    tr.Tm * tr.Tn,
		Cycles: cycles,
		MACs:   l.MACs(),
	}

	// Every cycle fetches the active lanes' neurons and synapses anew —
	// there is no local operand storage, so the traffic scales with the
	// MAC count itself (the "poorest data sharing" of §3.3). Inactive
	// lanes are fetch-gated, which is what keeps Tiling's power at the
	// bottom of Fig. 18c even as its traffic tops Fig. 17.
	s2 := int64(l.S) * int64(l.S)
	k2 := int64(l.K) * int64(l.K)
	for m0 := 0; m0 < l.M; m0 += tr.Tm {
		lanes := int64(min(tr.Tm, l.M-m0))
		for n0 := 0; n0 < l.N; n0 += tr.Tn {
			width := int64(min(tr.Tn, l.N-n0))
			res.NeuronLoads += width * s2 * k2
			res.KernelLoads += lanes * width * s2 * k2
		}
	}
	// Partial sums live in the PE across (i,j) but are spilled per
	// n-block: each output is stored once per n-block and re-read for
	// every n-block after the first. Only real outputs spill; for
	// partial m-blocks fewer PEs carry outputs, so count exactly over
	// blocks.
	res.NeuronStores = 0
	for m0 := 0; m0 < l.M; m0 += tr.Tm {
		lanes := int64(min(tr.Tm, l.M-m0))
		res.NeuronStores += nBlocks * lanes * int64(l.S) * int64(l.S)
	}
	res.NeuronLoads += res.NeuronStores - l.OutputWords() // re-reads of partials
	// The adder-tree output register is the only local state: one
	// read-modify-write per active PE per cycle.
	res.LocalReads = 0
	for m0 := 0; m0 < l.M; m0 += tr.Tm {
		lanes := int64(min(tr.Tm, l.M-m0))
		res.LocalReads += lanes * nBlocks * s2k2
	}
	res.LocalWrites = res.LocalReads

	tr.DRAM(l, &res, nBlocks)
	return res
}

// DRAM fills the external-memory counters: kernel re-streams when the
// kernel stack exceeds the buffer, plus partial-sum spills when the
// outputs do not fit on chip.
func (tr Tree) DRAM(l nn.ConvLayer, res *arch.LayerResult, nBlocks int64) {
	kernWords := l.KernelWords()
	reload := int64(1)
	if kernWords > int64(tr.BufferWords) {
		// Kernels exceed the kernel buffer: re-stream per output pass.
		reload = int64(ceilDiv(l.M, tr.Tm))
	}
	if reload > 4 {
		reload = 4
	}
	res.DRAMReads = l.InputWords() + kernWords*reload
	res.DRAMWrites = l.OutputWords()
	// Partial sums that do not fit on chip spill to DRAM.
	if nBlocks > 1 && l.OutputWords() > int64(tr.BufferWords) {
		res.DRAMWrites += (nBlocks - 1) * l.OutputWords()
		res.DRAMReads += (nBlocks - 1) * l.OutputWords()
	}
}
