package mapping

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
)

// The compact text form is line-oriented; '#' starts a comment and
// blank lines are ignored. Header lines (any order, each at most once)
// configure the geometry; one directive line per loop dimension (in
// the dataflow's nest order) maps the loops:
//
//	name FlexFlow
//	dataflow flexflow
//	array 16x16
//	repl 1
//	store neuron=128 kernel=128
//	buffer 16384
//	opt ra rs ipdr
//	spatial N factor=auto tile=auto
//	spatial M factor=auto
//	...
//
// Text renders exactly this shape (headers in canonical order, all
// fields explicit except zero tiles), so ParseText(s.Text()) == s for
// every valid spec — the round-trip the fuzz harness pins.

// ParseText parses and validates the compact text form.
func ParseText(src string) (Spec, error) {
	var s Spec
	s.Geom.Repl = 1
	seen := [8]bool{} // name, dataflow, array, repl, store, buffer, opt + spare
	nDirs := 0

	lines := strings.Split(src, "\n")
	for ln, raw := range lines {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		f := strings.Fields(line)
		if len(f) == 0 {
			continue
		}
		fail := func(format string, args ...any) (Spec, error) {
			return Spec{}, fmt.Errorf("mapping: line %d: %s", ln+1, fmt.Sprintf(format, args...))
		}
		once := func(slot int, kw string) error {
			if seen[slot] {
				return fmt.Errorf("mapping: line %d: duplicate %q", ln+1, kw)
			}
			seen[slot] = true
			return nil
		}
		switch f[0] {
		case "name":
			if err := once(0, "name"); err != nil {
				return Spec{}, err
			}
			if len(f) != 2 {
				return fail("name takes one token")
			}
			s.Name = f[1]
		case "dataflow":
			if err := once(1, "dataflow"); err != nil {
				return Spec{}, err
			}
			if len(f) != 2 {
				return fail("dataflow takes one token")
			}
			s.Dataflow = f[1]
		case "array":
			if err := once(2, "array"); err != nil {
				return Spec{}, err
			}
			if len(f) != 2 {
				return fail("array takes RxC")
			}
			r, c, ok := parseEdgePair(f[1])
			if !ok {
				return fail("array %q is not RxC", f[1])
			}
			s.Geom.Rows, s.Geom.Cols = r, c
		case "repl":
			if err := once(3, "repl"); err != nil {
				return Spec{}, err
			}
			if len(f) != 2 {
				return fail("repl takes one integer")
			}
			v, err := parseBounded(f[1])
			if err != nil {
				return fail("repl: %v", err)
			}
			s.Geom.Repl = v
		case "store":
			if err := once(4, "store"); err != nil {
				return Spec{}, err
			}
			for _, kv := range f[1:] {
				switch {
				case strings.HasPrefix(kv, "neuron="):
					v, err := parseBounded(kv[len("neuron="):])
					if err != nil {
						return fail("store neuron: %v", err)
					}
					s.Geom.NeuronStoreWords = v
				case strings.HasPrefix(kv, "kernel="):
					v, err := parseBounded(kv[len("kernel="):])
					if err != nil {
						return fail("store kernel: %v", err)
					}
					s.Geom.KernelStoreWords = v
				default:
					return fail("store field %q (want neuron=/kernel=)", kv)
				}
			}
		case "buffer":
			if err := once(5, "buffer"); err != nil {
				return Spec{}, err
			}
			if len(f) != 2 {
				return fail("buffer takes one integer")
			}
			v, err := parseBounded(f[1])
			if err != nil {
				return fail("buffer: %v", err)
			}
			s.Geom.BufferWords = v
		case "opt":
			if err := once(6, "opt"); err != nil {
				return Spec{}, err
			}
			for _, tok := range f[1:] {
				switch tok {
				case "ra":
					s.RA = true
				case "rs":
					s.RS = true
				case "ipdr":
					s.IPDR = true
				case "none":
					// explicit no-optimizations marker
				default:
					return fail("unknown optimization %q (want ra/rs/ipdr/none)", tok)
				}
			}
		case "spatial", "temporal":
			if nDirs >= int(numDims) {
				return fail("more than %d loop directives", numDims)
			}
			d, err := parseDirective(f)
			if err != nil {
				return fail("%v", err)
			}
			s.Dirs[nDirs] = d
			nDirs++
		default:
			return fail("unknown keyword %q", f[0])
		}
	}
	if nDirs != int(numDims) {
		return Spec{}, fmt.Errorf("mapping: spec has %d loop directives, need one per dimension (%d)", nDirs, numDims)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// parseDirective parses "spatial N factor=4 tile=8" style fields.
func parseDirective(f []string) (Directive, error) {
	var d Directive
	if f[0] == "spatial" {
		d.Kind = Spatial
	}
	if len(f) < 2 {
		return d, fmt.Errorf("%s needs a dimension", f[0])
	}
	dim, ok := ParseDim(f[1])
	if !ok {
		return d, fmt.Errorf("unknown dimension %q (want M/N/R/C/I/J)", f[1])
	}
	d.Dim = dim
	for _, kv := range f[2:] {
		switch {
		case strings.HasPrefix(kv, "factor="):
			v, err := parseAuto(kv[len("factor="):])
			if err != nil {
				return d, fmt.Errorf("%s factor: %v", dim, err)
			}
			d.Factor = v
		case strings.HasPrefix(kv, "tile="):
			v, err := parseAuto(kv[len("tile="):])
			if err != nil {
				return d, fmt.Errorf("%s tile: %v", dim, err)
			}
			d.Tile = v
		default:
			return d, fmt.Errorf("unknown directive field %q (want factor=/tile=)", kv)
		}
	}
	return d, nil
}

// parseEdgePair parses "16x16".
func parseEdgePair(s string) (r, c int, ok bool) {
	i := strings.IndexByte(s, 'x')
	if i < 0 {
		return 0, 0, false
	}
	r, err1 := parseBounded(s[:i])
	c, err2 := parseBounded(s[i+1:])
	if err1 != nil || err2 != nil {
		return 0, 0, false
	}
	return r, c, true
}

// parseAuto parses an integer or the keyword "auto" (= 0).
func parseAuto(s string) (int, error) {
	if s == "auto" {
		return 0, nil
	}
	return parseBounded(s)
}

// parseBounded parses a non-negative integer with an overflow-safe
// bound; fine-grained range checks live in Validate.
func parseBounded(s string) (int, error) {
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("bad integer %q", s)
	}
	if v < 0 || v > maxBuffer {
		return 0, fmt.Errorf("%d out of [0,%d]", v, maxBuffer)
	}
	return v, nil
}

// Text renders the canonical compact form. ParseText(s.Text())
// reproduces s exactly for any spec that passes Validate.
func (s *Spec) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "name %s\n", s.Name)
	fmt.Fprintf(&b, "dataflow %s\n", s.Dataflow)
	fmt.Fprintf(&b, "array %dx%d\n", s.Geom.Rows, s.Geom.Cols)
	fmt.Fprintf(&b, "repl %d\n", s.Geom.Repl)
	fmt.Fprintf(&b, "store neuron=%d kernel=%d\n", s.Geom.NeuronStoreWords, s.Geom.KernelStoreWords)
	fmt.Fprintf(&b, "buffer %d\n", s.Geom.BufferWords)
	b.WriteString("opt")
	if !s.RA && !s.RS && !s.IPDR {
		b.WriteString(" none")
	} else {
		if s.RA {
			b.WriteString(" ra")
		}
		if s.RS {
			b.WriteString(" rs")
		}
		if s.IPDR {
			b.WriteString(" ipdr")
		}
	}
	b.WriteByte('\n')
	for _, d := range s.Dirs {
		b.WriteString(d.Kind.String())
		b.WriteByte(' ')
		b.WriteString(d.Dim.String())
		if d.Kind == Spatial {
			if d.Factor == 0 {
				b.WriteString(" factor=auto")
			} else {
				fmt.Fprintf(&b, " factor=%d", d.Factor)
			}
		}
		if d.Tile != 0 {
			fmt.Fprintf(&b, " tile=%d", d.Tile)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// specJSON is the JSON wire form of a Spec; field order is the
// canonical marshal order.
type specJSON struct {
	Name        string     `json:"name"`
	Dataflow    string     `json:"dataflow"`
	Rows        int        `json:"rows"`
	Cols        int        `json:"cols"`
	Repl        int        `json:"repl"`
	NeuronStore int        `json:"neuron_store"`
	KernelStore int        `json:"kernel_store"`
	Buffer      int        `json:"buffer"`
	RA          bool       `json:"ra"`
	RS          bool       `json:"rs"`
	IPDR        bool       `json:"ipdr"`
	Loops       []loopJSON `json:"loops"`
}

type loopJSON struct {
	Dim    string `json:"dim"`
	Kind   string `json:"kind"`
	Factor int    `json:"factor,omitempty"` // 0 = auto
	Tile   int    `json:"tile,omitempty"`   // 0 = auto
}

// ParseJSON parses and validates the JSON form.
func ParseJSON(src []byte) (Spec, error) {
	var j specJSON
	if err := json.Unmarshal(src, &j); err != nil {
		return Spec{}, fmt.Errorf("mapping: %v", err)
	}
	var s Spec
	s.Name = j.Name
	s.Dataflow = j.Dataflow
	s.Geom = Geometry{
		Rows: j.Rows, Cols: j.Cols, Repl: j.Repl,
		NeuronStoreWords: j.NeuronStore, KernelStoreWords: j.KernelStore,
		BufferWords: j.Buffer,
	}
	s.RA, s.RS, s.IPDR = j.RA, j.RS, j.IPDR
	if len(j.Loops) != int(numDims) {
		return Spec{}, fmt.Errorf("mapping: spec has %d loops, need one per dimension (%d)", len(j.Loops), numDims)
	}
	for i, lj := range j.Loops {
		dim, ok := ParseDim(lj.Dim)
		if !ok {
			return Spec{}, fmt.Errorf("mapping: loops[%d]: unknown dimension %q", i, lj.Dim)
		}
		var kind Kind
		switch lj.Kind {
		case "spatial":
			kind = Spatial
		case "temporal":
			kind = Temporal
		default:
			return Spec{}, fmt.Errorf("mapping: loops[%d]: unknown kind %q", i, lj.Kind)
		}
		if lj.Factor < 0 || lj.Factor > maxBuffer || lj.Tile < 0 || lj.Tile > maxBuffer {
			return Spec{}, fmt.Errorf("mapping: loops[%d]: factor/tile out of range", i)
		}
		s.Dirs[i] = Directive{Dim: dim, Kind: kind, Factor: lj.Factor, Tile: lj.Tile}
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// JSON renders the canonical JSON form (indented, trailing newline).
// ParseJSON(s.JSON()) reproduces s exactly for any valid spec.
func (s *Spec) JSON() []byte {
	j := specJSON{
		Name: s.Name, Dataflow: s.Dataflow,
		Rows: s.Geom.Rows, Cols: s.Geom.Cols, Repl: s.Geom.Repl,
		NeuronStore: s.Geom.NeuronStoreWords, KernelStore: s.Geom.KernelStoreWords,
		Buffer: s.Geom.BufferWords,
		RA:     s.RA, RS: s.RS, IPDR: s.IPDR,
	}
	for _, d := range s.Dirs {
		j.Loops = append(j.Loops, loopJSON{
			Dim: d.Dim.String(), Kind: d.Kind.String(), Factor: d.Factor, Tile: d.Tile,
		})
	}
	out, err := json.MarshalIndent(&j, "", " ")
	if err != nil {
		// A validated Spec always marshals; this is unreachable.
		panic(err)
	}
	return append(out, '\n')
}

// Parse auto-detects the form: JSON when the first non-space byte is
// '{', compact text otherwise.
func Parse(src []byte) (Spec, error) {
	for _, c := range src {
		switch c {
		case ' ', '\t', '\r', '\n':
			continue
		case '{':
			return ParseJSON(src)
		}
		break
	}
	return ParseText(string(src))
}
