package mapping_test

import (
	"encoding/json"
	"os"
	"testing"

	"flexflow/internal/arch"
	"flexflow/internal/compiler"
	"flexflow/internal/core"
	"flexflow/internal/energy"
	"flexflow/internal/mapping"
	"flexflow/internal/mapping2d"
	"flexflow/internal/nn"
	"flexflow/internal/rowstat"
	"flexflow/internal/systolic"
	"flexflow/internal/tiling"
	"flexflow/internal/workloads"
)

// The golden file was generated ONCE against the pre-refactor engines
// (scripts/gen_parity_golden.go) — before Model lowering moved into
// this package — and is the frozen migration oracle: the refactored
// engines AND the preset specs lowered through the interpreter must
// reproduce every counter and every energy figure bit-for-bit.

type goldenLayer struct {
	Result   arch.LayerResult `json:"result"`
	EnergyPJ float64          `json:"energy_pj"`
}

type goldenEntry struct {
	Engine   string        `json:"engine"`
	Workload string        `json:"workload"`
	Config   string        `json:"config"`
	Layers   []goldenLayer `json:"layers"`
}

type goldenFile struct {
	Scale   int           `json:"scale"`
	Note    string        `json:"note"`
	Entries []goldenEntry `json:"entries"`
}

func loadGolden(t *testing.T) goldenFile {
	t.Helper()
	buf, err := os.ReadFile("testdata/parity_table1.json")
	if err != nil {
		t.Fatalf("migration oracle missing: %v", err)
	}
	var g goldenFile
	if err := json.Unmarshal(buf, &g); err != nil {
		t.Fatalf("migration oracle corrupt: %v", err)
	}
	if len(g.Entries) == 0 {
		t.Fatal("migration oracle is empty")
	}
	return g
}

// liveEngine reconstructs the engine a golden entry was recorded with,
// exactly as scripts/gen_parity_golden.go (and flexflow.NewEngine)
// built it.
func liveEngine(t *testing.T, label string, nw *nn.Network, scale int) arch.Engine {
	t.Helper()
	switch label {
	case "systolic":
		k0 := 6
		if nw.Name == "AlexNet" {
			k0 = 11
		}
		arrays := scale * scale / (k0 * k0)
		if arrays < 1 {
			arrays = 1
		}
		return systolic.New(k0, arrays)
	case "mapping2d":
		return mapping2d.New(scale)
	case "tiling":
		return tiling.New(scale, scale)
	case "rowstat":
		return rowstat.New(scale, scale)
	case "rowstat-eyeriss":
		return rowstat.NewEyeriss()
	case "flexflow-default":
		return core.New(scale)
	case "flexflow-compiled":
		e := core.New(scale)
		e.Chooser = compiler.Plan(nw, scale).Chooser()
		return e
	default:
		t.Fatalf("unknown golden engine label %q", label)
		return nil
	}
}

// presetSpec returns the mapping spec equivalent to a golden entry's
// engine, or ok=false for variants that have no single whole-network
// spec (flexflow-compiled pins per-layer factors; see the per-layer
// fixed-vector check in TestPresetSpecParity).
func presetSpec(t *testing.T, label string, nw *nn.Network, scale int) (mapping.Spec, bool) {
	t.Helper()
	switch label {
	case "systolic":
		k0 := 6
		if nw.Name == "AlexNet" {
			k0 = 11
		}
		arrays := scale * scale / (k0 * k0)
		if arrays < 1 {
			arrays = 1
		}
		return mapping.PresetSystolic(k0, arrays), true
	case "mapping2d":
		return mapping.PresetMapping2D(scale), true
	case "tiling":
		return mapping.PresetTiling(scale, scale), true
	case "rowstat":
		return mapping.PresetRowStationary(scale, scale), true
	case "rowstat-eyeriss":
		return mapping.PresetEyeriss(), true
	case "flexflow-default":
		return mapping.PresetFlexFlow(scale), true
	case "flexflow-compiled":
		return mapping.Spec{}, false
	default:
		t.Fatalf("unknown golden engine label %q", label)
		return mapping.Spec{}, false
	}
}

// TestEngineParity pins the refactored engines bit-for-bit against the
// pre-refactor oracle: every counter of every layer of every Table 1
// workload, plus the 65 nm energy recomputation.
func TestEngineParity(t *testing.T) {
	g := loadGolden(t)
	params := energy.Default65nm()
	for _, entry := range g.Entries {
		nw := workloads.ByName(entry.Workload)
		if nw == nil {
			t.Fatalf("golden workload %q unknown", entry.Workload)
		}
		e := liveEngine(t, entry.Engine, nw, g.Scale)
		layers := nw.ConvLayers()
		if len(layers) != len(entry.Layers) {
			t.Fatalf("%s/%s: %d conv layers, golden has %d", entry.Engine, entry.Workload, len(layers), len(entry.Layers))
		}
		for i, l := range layers {
			got := e.Model(l)
			want := entry.Layers[i].Result
			if got != want {
				t.Errorf("%s/%s layer %s: Model diverged from pre-refactor oracle\n got: %+v\nwant: %+v",
					entry.Engine, entry.Workload, l.Name, got, want)
			}
			if pj := params.LayerEnergy(got, g.Scale).TotalPJ(); pj != entry.Layers[i].EnergyPJ {
				t.Errorf("%s/%s layer %s: energy %v pJ, golden %v pJ",
					entry.Engine, entry.Workload, l.Name, pj, entry.Layers[i].EnergyPJ)
			}
		}
	}
}

// TestPresetSpecParity pins the preset specs, lowered through the
// interpreter, bit-for-bit against the same oracle — the acceptance
// criterion that all five dataflows are expressible as declarative
// specs with nothing lost in translation. The flexflow-compiled
// variant is covered by pinning each layer's compiler-chosen factor
// vector into the spec (the form flextune emits) and lowering that.
func TestPresetSpecParity(t *testing.T) {
	g := loadGolden(t)
	params := energy.Default65nm()
	for _, entry := range g.Entries {
		nw := workloads.ByName(entry.Workload)
		if nw == nil {
			t.Fatalf("golden workload %q unknown", entry.Workload)
		}
		layers := nw.ConvLayers()
		if len(layers) != len(entry.Layers) {
			t.Fatalf("%s/%s: %d conv layers, golden has %d", entry.Engine, entry.Workload, len(layers), len(entry.Layers))
		}

		var model func(l nn.ConvLayer, i int) arch.LayerResult
		if spec, ok := presetSpec(t, entry.Engine, nw, g.Scale); ok {
			eng, err := mapping.Lower(spec)
			if err != nil {
				t.Fatalf("%s/%s: preset spec does not validate: %v", entry.Engine, entry.Workload, err)
			}
			model = func(l nn.ConvLayer, i int) arch.LayerResult { return eng.Model(l) }
		} else {
			// flexflow-compiled: one spec per layer with the compiler's
			// factors pinned.
			chooser := compiler.Plan(nw, g.Scale).Chooser()
			base := mapping.PresetFlexFlow(g.Scale)
			model = func(l nn.ConvLayer, i int) arch.LayerResult {
				spec := base.WithFactors(chooser(l))
				eng, err := mapping.Lower(spec)
				if err != nil {
					t.Fatalf("%s/%s layer %s: pinned spec does not validate: %v", entry.Engine, entry.Workload, l.Name, err)
				}
				return eng.Model(l)
			}
		}

		for i, l := range layers {
			got := model(l, i)
			want := entry.Layers[i].Result
			if got != want {
				t.Errorf("%s/%s layer %s: lowered spec diverged from pre-refactor oracle\n got: %+v\nwant: %+v",
					entry.Engine, entry.Workload, l.Name, got, want)
			}
			if pj := params.LayerEnergy(got, g.Scale).TotalPJ(); pj != entry.Layers[i].EnergyPJ {
				t.Errorf("%s/%s layer %s: energy %v pJ, golden %v pJ",
					entry.Engine, entry.Workload, l.Name, pj, entry.Layers[i].EnergyPJ)
			}
		}
	}
}

// TestGoldenCoverage documents the oracle's breadth: seven variants
// per workload over the six Table 1 networks plus the running example.
func TestGoldenCoverage(t *testing.T) {
	g := loadGolden(t)
	variants := map[string]bool{}
	nets := map[string]bool{}
	for _, e := range g.Entries {
		variants[e.Engine] = true
		nets[e.Workload] = true
	}
	if len(variants) != 7 {
		t.Errorf("oracle covers %d engine variants, want 7: %v", len(variants), variants)
	}
	if len(nets) != 7 {
		t.Errorf("oracle covers %d workloads, want 7 (Table 1 + Example): %v", len(nets), nets)
	}
	if g.Scale != 16 {
		t.Errorf("oracle scale %d, want the paper's 16", g.Scale)
	}
	var layers int
	for _, e := range g.Entries {
		layers += len(e.Layers)
	}
	if layers == 0 {
		t.Fatal("oracle has no layers")
	}
	t.Logf("oracle: %d entries, %d layer results", len(g.Entries), layers)
}
