// Package mapping is the declarative dataflow layer of the repo: a
// mapping Spec names, per loop dimension of the CONV nest, whether the
// dimension is unrolled spatially across the PE array or walked
// temporally, with optional fixed unroll factors and tile sizes, plus
// the engine geometry the spec is lowered onto (array shape,
// replication, local stores, on-chip buffer) and the FlexFlow dataflow
// optimization toggles (RA/RS/IPDR, §4.3–4.5 of the paper).
//
// The five hard-coded engines of the repo are preset specs: the
// lowering rules in this package (flex.go, systolic.go, grid.go,
// tree.go, rowstat.go) carry the analytic accounting the engine
// packages delegate to, so a Spec lowered through Engine produces
// bit-for-bit the same LayerResult as the corresponding engine
// package — the parity table test pins this against pre-refactor
// goldens on the full Table 1 set. In the style of MAESTRO's
// SpatialMap/TemporalMap descriptions, the loop-order of the
// directives is meaningful: each dataflow rule pins the nest order it
// implements, and the validator rejects reorderings the interpreter
// cannot honor (they would silently account a different machine).
//
// Specs parse from a compact line-oriented text (see ParseText) and
// from JSON (see ParseJSON), serialize canonically (Text/JSON), and
// embed into engine cache keys via AppendSpecKey so two distinct
// specs on the same layer shape can never alias one memo entry.
package mapping

import (
	"fmt"

	"flexflow/internal/arch"
)

// Dim names one dimension of the 6-deep CONV loop nest.
type Dim uint8

// The six loop dimensions of the paper's Fig. 2 nest.
const (
	DimM Dim = iota // output feature maps
	DimN            // input feature maps
	DimR            // output rows
	DimC            // output columns
	DimI            // kernel rows
	DimJ            // kernel columns
	numDims
)

// String returns the single-letter name used by the DSL.
func (d Dim) String() string {
	if int(d) < len(dimNames) {
		return dimNames[d]
	}
	return "?"
}

var dimNames = [numDims]string{"M", "N", "R", "C", "I", "J"}

// ParseDim maps a single-letter dimension name back to its Dim.
func ParseDim(s string) (Dim, bool) {
	for d, name := range dimNames {
		if s == name {
			return Dim(d), true
		}
	}
	return 0, false
}

// Kind says whether a loop dimension is unrolled across PEs in one
// cycle (Spatial) or iterated over time (Temporal).
type Kind uint8

const (
	Temporal Kind = iota
	Spatial
)

// String returns the DSL keyword.
func (k Kind) String() string {
	if k == Spatial {
		return "spatial"
	}
	return "temporal"
}

// Directive is the mapping of one loop dimension.
type Directive struct {
	Dim  Dim
	Kind Kind
	// Factor is the spatial unroll factor; 0 means auto (resolved by
	// the dataflow rule — the paper's compiler for flexflow, the
	// geometry for the rigid dataflows). Temporal dimensions carry no
	// factor.
	Factor int
	// Tile is the temporal chunk size in elements of Dim; 0 means
	// auto. Only the flexflow rule consumes a tile (on N: input maps
	// per partial-sum chunk, the Fig. 13f mechanism); elsewhere tiling
	// is implied by the geometry.
	Tile int
}

// Geometry is the physical engine a spec is lowered onto.
type Geometry struct {
	Rows, Cols int // PE array shape
	// Repl replicates the whole array (the systolic baseline's
	// identical K0×K0 arrays); 1 everywhere else.
	Repl int
	// NeuronStoreWords and KernelStoreWords size the per-PE local
	// stores in 16-bit words (flexflow dataflow only; 0 elsewhere).
	NeuronStoreWords int
	KernelStoreWords int
	// BufferWords bounds on-chip reuse in the DRAM traffic model.
	BufferWords int
}

// The five dataflow rules the interpreter implements. Each names the
// loop-nest/accounting of one engine package.
const (
	DataflowFlexFlow  = "flexflow"
	DataflowSystolic  = "systolic"
	DataflowMapping2D = "mapping2d"
	DataflowTiling    = "tiling"
	DataflowRowStat   = "rowstat"
)

// Dataflows lists the supported rule names in canonical order.
func Dataflows() []string {
	return []string{DataflowFlexFlow, DataflowSystolic, DataflowMapping2D, DataflowTiling, DataflowRowStat}
}

// Spec is a complete declarative mapping: a named dataflow rule, the
// geometry it runs on, the optimization toggles, and one directive per
// loop dimension in nest order (outermost first). Spec is a value
// type: comparable with ==, safe to copy, and canonical once
// Validate passes.
type Spec struct {
	Name     string // engine name; appears in LayerResult.Arch and cache keys
	Dataflow string
	Geom     Geometry
	// RA, RS, IPDR are the FlexFlow dataflow optimizations; they must
	// be false for the rigid dataflows (which cannot express them).
	RA, RS, IPDR bool
	// Dirs is the loop nest, outermost first; each dimension appears
	// exactly once, in the order the dataflow rule pins.
	Dirs [numDims]Directive
}

// Bounds that keep parsed specs sane (and arithmetic overflow-free)
// under fuzzing; real configurations sit far below all of them.
const (
	maxName   = 64
	maxEdge   = 4096    // Rows, Cols, Repl
	maxStore  = 1 << 20 // per-PE store words
	maxBuffer = 1 << 30 // on-chip buffer words
	maxFactor = 1 << 20 // directive factor / tile
)

// nestOrder returns the pinned loop order and kinds of a dataflow rule.
// The bool reports whether the rule exists.
func nestOrder(dataflow string) (order [numDims]Dim, kinds [numDims]Kind, ok bool) {
	switch dataflow {
	case DataflowFlexFlow:
		// N chunks outermost (partial-sum loop), then the m/r/c block
		// walk; all six dimensions are spatially unrolled by T.
		return [numDims]Dim{DimN, DimM, DimR, DimC, DimI, DimJ},
			[numDims]Kind{Spatial, Spatial, Spatial, Spatial, Spatial, Spatial}, true
	case DataflowSystolic:
		// m-groups across replicated arrays, input maps temporally,
		// K0×K0 sub-kernels spatial, raster r/c temporal.
		return [numDims]Dim{DimM, DimN, DimI, DimJ, DimR, DimC},
			[numDims]Kind{Spatial, Temporal, Spatial, Spatial, Temporal, Temporal}, true
	case DataflowMapping2D:
		// Output maps temporal, a D×D block of output neurons spatial,
		// input maps and kernel walk temporal.
		return [numDims]Dim{DimM, DimR, DimC, DimN, DimI, DimJ},
			[numDims]Kind{Temporal, Spatial, Spatial, Temporal, Temporal, Temporal}, true
	case DataflowTiling:
		// Tm output maps × Tn input maps spatial; everything else
		// temporal (no local operand storage).
		return [numDims]Dim{DimM, DimN, DimR, DimC, DimI, DimJ},
			[numDims]Kind{Spatial, Spatial, Temporal, Temporal, Temporal, Temporal}, true
	case DataflowRowStat:
		// Input maps and kernel folds temporal; kernel rows, m-sets and
		// output-row groups spatial on the array.
		return [numDims]Dim{DimN, DimI, DimM, DimR, DimC, DimJ},
			[numDims]Kind{Temporal, Spatial, Spatial, Spatial, Temporal, Temporal}, true
	}
	return order, kinds, false
}

// dir returns the directive of dimension d (valid after Validate,
// which guarantees each dimension appears once).
func (s *Spec) dir(d Dim) Directive {
	for _, dd := range s.Dirs {
		if dd.Dim == d {
			return dd
		}
	}
	return Directive{Dim: d}
}

// validName reports whether the spec name is key- and DSL-safe: one
// token of printable ASCII without the '|' key terminator or '#'
// comment introducer.
func validName(name string) bool {
	if name == "" || len(name) > maxName {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		if c <= ' ' || c > '~' || c == '|' || c == '#' {
			return false
		}
	}
	return true
}

// Validate checks the spec against its dataflow rule: geometry bounds,
// directive order/kinds, and the factor discipline (rigid dataflows
// derive every factor from geometry; flexflow takes either all-auto —
// the compiler chooses — or a fully fixed factor vector obeying
// Constraint (1) of §5). A validated spec lowers without panicking on
// any layer its CheckLayer accepts.
func (s *Spec) Validate() error {
	if !validName(s.Name) {
		return fmt.Errorf("mapping: invalid spec name %q (one printable token, no '|' or '#', at most %d bytes)", s.Name, maxName)
	}
	order, kinds, ok := nestOrder(s.Dataflow)
	if !ok {
		return fmt.Errorf("mapping: unknown dataflow %q", s.Dataflow)
	}
	g := s.Geom
	if g.Rows < 1 || g.Rows > maxEdge || g.Cols < 1 || g.Cols > maxEdge {
		return fmt.Errorf("mapping: array %dx%d out of [1,%d]", g.Rows, g.Cols, maxEdge)
	}
	if g.Repl < 1 || g.Repl > maxEdge {
		return fmt.Errorf("mapping: repl %d out of [1,%d]", g.Repl, maxEdge)
	}
	if g.BufferWords < 1 || g.BufferWords > maxBuffer {
		return fmt.Errorf("mapping: buffer %d out of [1,%d]", g.BufferWords, maxBuffer)
	}
	if g.NeuronStoreWords < 0 || g.NeuronStoreWords > maxStore ||
		g.KernelStoreWords < 0 || g.KernelStoreWords > maxStore {
		return fmt.Errorf("mapping: store sizes %d/%d out of [0,%d]", g.NeuronStoreWords, g.KernelStoreWords, maxStore)
	}

	// Directive discipline: pinned order, pinned kinds, bounded values.
	for i, d := range s.Dirs {
		if d.Dim != order[i] {
			return fmt.Errorf("mapping: %s nest order is %s; directive %d is %s", s.Dataflow, orderString(order), i, d.Dim)
		}
		if d.Kind != kinds[i] {
			return fmt.Errorf("mapping: %s maps %s %sly, spec says %s", s.Dataflow, d.Dim, kinds[i], d.Kind)
		}
		if d.Factor < 0 || d.Factor > maxFactor {
			return fmt.Errorf("mapping: %s factor %d out of [0,%d]", d.Dim, d.Factor, maxFactor)
		}
		if d.Tile < 0 || d.Tile > maxFactor {
			return fmt.Errorf("mapping: %s tile %d out of [0,%d]", d.Dim, d.Tile, maxFactor)
		}
		if d.Kind == Temporal && d.Factor != 0 {
			return fmt.Errorf("mapping: temporal %s cannot carry an unroll factor", d.Dim)
		}
	}

	switch s.Dataflow {
	case DataflowFlexFlow:
		if g.Rows != g.Cols {
			return fmt.Errorf("mapping: flexflow needs a square array, got %dx%d", g.Rows, g.Cols)
		}
		if g.Repl != 1 {
			return fmt.Errorf("mapping: flexflow does not replicate arrays (repl=%d)", g.Repl)
		}
		if g.NeuronStoreWords < 1 || g.KernelStoreWords < 1 {
			return fmt.Errorf("mapping: flexflow needs per-PE stores (neuron=%d kernel=%d)", g.NeuronStoreWords, g.KernelStoreWords)
		}
		fixed := 0
		for _, d := range s.Dirs {
			if d.Factor > 0 {
				fixed++
			}
			if d.Tile != 0 && d.Dim != DimN {
				return fmt.Errorf("mapping: flexflow tiles only N (the partial-sum chunk), not %s", d.Dim)
			}
		}
		if fixed != 0 && fixed != int(numDims) {
			return fmt.Errorf("mapping: flexflow factors must be all-auto or a full fixed vector (%d of %d fixed)", fixed, numDims)
		}
		if fixed == int(numDims) {
			t := s.FixedFactors()
			if t.Rows() > g.Rows {
				return fmt.Errorf("mapping: Tm·Tr·Tc=%d exceeds %d PE rows (Constraint 1)", t.Rows(), g.Rows)
			}
			if t.Cols() > g.Cols {
				return fmt.Errorf("mapping: Tn·Ti·Tj=%d exceeds %d PE columns (Constraint 1)", t.Cols(), g.Cols)
			}
		}
	default:
		// The rigid dataflows derive every factor from geometry and
		// cannot express the FlexFlow optimizations.
		if s.RA || s.RS || s.IPDR {
			return fmt.Errorf("mapping: RA/RS/IPDR are flexflow-only optimizations")
		}
		if g.NeuronStoreWords != 0 || g.KernelStoreWords != 0 {
			return fmt.Errorf("mapping: per-PE store sizes are flexflow-only (got neuron=%d kernel=%d)", g.NeuronStoreWords, g.KernelStoreWords)
		}
		for _, d := range s.Dirs {
			if d.Factor != 0 {
				return fmt.Errorf("mapping: %s derives %s's unroll from geometry; factor must be auto", s.Dataflow, d.Dim)
			}
			if d.Tile != 0 {
				return fmt.Errorf("mapping: %s derives tiling from geometry; %s tile must be auto", s.Dataflow, d.Dim)
			}
		}
		if s.Dataflow != DataflowTiling && s.Dataflow != DataflowRowStat && g.Rows != g.Cols {
			return fmt.Errorf("mapping: %s needs a square array, got %dx%d", s.Dataflow, g.Rows, g.Cols)
		}
		if s.Dataflow != DataflowSystolic && g.Repl != 1 {
			return fmt.Errorf("mapping: only the systolic dataflow replicates arrays (repl=%d)", g.Repl)
		}
	}
	return nil
}

// FixedFactors returns the spec's fixed unrolling vector (flexflow
// dataflow with a full factor vector); the zero T when factors are
// auto.
func (s *Spec) FixedFactors() arch.T {
	var t arch.T
	t.Tm = s.dir(DimM).Factor
	t.Tn = s.dir(DimN).Factor
	t.Tr = s.dir(DimR).Factor
	t.Tc = s.dir(DimC).Factor
	t.Ti = s.dir(DimI).Factor
	t.Tj = s.dir(DimJ).Factor
	return t
}

// NTile returns the explicit N chunk size (flexflow partial-sum tile);
// 0 means auto.
func (s *Spec) NTile() int { return s.dir(DimN).Tile }

// WithFactors returns a copy of the spec with every directive's unroll
// factor pinned to the vector t — the per-layer form the compiler and
// the flextune autotuner emit. Pass the zero T to return to all-auto.
func (s Spec) WithFactors(t arch.T) Spec {
	for i := range s.Dirs {
		switch s.Dirs[i].Dim {
		case DimM:
			s.Dirs[i].Factor = t.Tm
		case DimN:
			s.Dirs[i].Factor = t.Tn
		case DimR:
			s.Dirs[i].Factor = t.Tr
		case DimC:
			s.Dirs[i].Factor = t.Tc
		case DimI:
			s.Dirs[i].Factor = t.Ti
		case DimJ:
			s.Dirs[i].Factor = t.Tj
		}
	}
	return s
}

// orderString renders a nest order like "N M R C I J".
func orderString(order [numDims]Dim) string {
	var b []byte
	for i, d := range order {
		if i > 0 {
			b = append(b, ' ')
		}
		b = append(b, d.String()...)
	}
	return string(b)
}
