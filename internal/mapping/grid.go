package mapping

import (
	"flexflow/internal/arch"
	"flexflow/internal/nn"
)

// Grid is the lowering rule of the mapping2d dataflow (SFMNSS, §3.2):
// a D×D block of output neurons of one map held stationary while one
// synapse per cycle is broadcast and inputs shift between neighbours.
type Grid struct {
	D           int
	BufferWords int
}

// BlockGrid returns how many D×D blocks tile an S×S output map.
func (g Grid) BlockGrid(s int) int { return (s + g.D - 1) / g.D }

// Account lowers one unit-stride layer: the analytic cycle/traffic
// model of the 2-D mapping engine, walking the block tiling to count
// loads exactly as its Simulate does. Arch is left empty for the
// caller.
func (g Grid) Account(l nn.ConvLayer) arch.LayerResult {
	if l.Str() != 1 {
		panic("mapping2d: the rigid baselines assume unit stride (paper §3); strided layers run on FlexFlow only")
	}
	res := arch.LayerResult{
		Layer: l,
		Factors: arch.T{Tm: 1, Tn: 1, Tr: min(g.D, l.S), Tc: min(g.D, l.S),
			Ti: 1, Tj: 1},
		PEs:  g.D * g.D,
		MACs: l.MACs(),
	}
	grid := g.BlockGrid(l.S)
	perBlock := int64(l.N) * int64(l.K) * int64(l.K)
	res.Cycles = int64(l.M) * int64(grid) * int64(grid) * perBlock

	// Walk the block tiling to count loads exactly as Simulate does.
	for r0 := 0; r0 < l.S; r0 += g.D {
		for c0 := 0; c0 < l.S; c0 += g.D {
			rows := min(g.D, l.S-r0)
			cols := min(g.D, l.S-c0)
			var loads, shifts int64
			// Initial block load.
			loads += int64(rows * cols)
			for i := 0; i < l.K; i++ {
				for j := 0; j < l.K; j++ {
					if i == 0 && j == 0 {
						continue
					}
					if j == 0 {
						// Row jump: top rows-1 PE rows pop from FIFOs,
						// the bottom row loads fresh.
						shifts += int64((rows - 1) * cols)
						loads += int64(cols)
					} else {
						// Column shift: left cols-1 columns shift, the
						// rightmost column loads fresh.
						shifts += int64(rows * (cols - 1))
						loads += int64(rows)
					}
				}
			}
			res.NeuronLoads += int64(l.M) * int64(l.N) * loads
			res.InterPEMoves += int64(l.M) * int64(l.N) * shifts
		}
	}
	// One synapse broadcast per cycle (one word on the bus per step).
	res.KernelLoads = res.Cycles
	// Outputs accumulate locally across n and (i,j); stored once.
	res.NeuronStores = l.OutputWords()
	// Each MAC reads the neuron register and the partial-sum register,
	// and writes the partial sum back.
	res.LocalReads = 2 * l.MACs()
	res.LocalWrites = l.MACs()

	g.DRAM(l, &res)
	return res
}

// DRAM fills the external-memory counters: compulsory traffic plus a
// per-output-map input re-stream when the stack exceeds the buffer.
func (g Grid) DRAM(l nn.ConvLayer, res *arch.LayerResult) {
	inWords := l.InputWords()
	reload := int64(1)
	if inWords > int64(g.BufferWords) {
		// Input stack exceeds the neuron buffer: re-stream per output map.
		reload = int64(l.M)
	}
	res.DRAMReads = inWords*reload + l.KernelWords()
	res.DRAMWrites = l.OutputWords()
}
