package rowstat

import (
	"testing"

	"flexflow/internal/nn"
	"flexflow/internal/tensor"
)

func makeOperands(l nn.ConvLayer, seed uint64) (*tensor.Map3, *tensor.Kernel4) {
	in := tensor.NewMap3(l.N, l.InSize(), l.InSize())
	in.FillPattern(seed)
	k := tensor.NewKernel4(l.M, l.N, l.K)
	k.FillPattern(seed + 1)
	return in, k
}

func TestSimulateMatchesGoldenConv(t *testing.T) {
	layers := []nn.ConvLayer{
		{Name: "tiny", M: 1, N: 1, S: 3, K: 2},
		{Name: "sets", M: 5, N: 2, S: 4, K: 3},  // several sets + partial m-group
		{Name: "wide", M: 2, N: 1, S: 20, K: 3}, // S > Cols ⇒ row groups
		{Name: "fold", M: 1, N: 1, S: 4, K: 13}, // K > Rows ⇒ kernel folding
		{Name: "deep", M: 3, N: 4, S: 5, K: 4},
	}
	e := NewEyeriss()
	for _, l := range layers {
		in, k := makeOperands(l, 61)
		got, res, err := e.Simulate(l, in, k)
		if err != nil {
			t.Fatalf("%s: %v", l.Name, err)
		}
		if !got.Equal(tensor.Conv(in, k)) {
			t.Errorf("%s: RS output differs from golden conv", l.Name)
		}
		if res.MACs != l.MACs() {
			t.Errorf("%s: MACs = %d, want %d", l.Name, res.MACs, l.MACs())
		}
	}
}

func TestKernelsLoadedOnce(t *testing.T) {
	// The row-stationary point: synapse traffic equals the kernel
	// working set exactly, regardless of the output size.
	e := NewEyeriss()
	l := nn.ConvLayer{M: 4, N: 3, S: 30, K: 3}
	res := e.Model(l)
	if res.KernelLoads != l.KernelWords() {
		t.Errorf("KernelLoads = %d, want exactly %d", res.KernelLoads, l.KernelWords())
	}
}

func TestEyerissUtilizationReasonable(t *testing.T) {
	e := NewEyeriss()
	for _, l := range []nn.ConvLayer{
		{Name: "alex-c3", M: 128, N: 48, S: 27, K: 5},
		{Name: "lenet-c3", M: 16, N: 6, S: 10, K: 5},
	} {
		u := e.Model(l).Utilization()
		if u <= 0.1 || u > 1.0 {
			t.Errorf("%s: utilization %v out of plausible band", l.Name, u)
		}
	}
}

func TestRejectsStride(t *testing.T) {
	e := NewEyeriss()
	l := nn.ConvLayer{M: 1, N: 1, S: 3, K: 2, Stride: 2}
	in := tensor.NewMap3(1, l.InSize(), l.InSize())
	k := tensor.NewKernel4(1, 1, 2)
	if _, _, err := e.Simulate(l, in, k); err == nil {
		t.Error("strided layer accepted")
	}
}

func TestEngineIdentity(t *testing.T) {
	e := NewEyeriss()
	if e.Name() != "Row-Stationary" || e.PEs() != 168 {
		t.Errorf("Name=%q PEs=%d", e.Name(), e.PEs())
	}
}
