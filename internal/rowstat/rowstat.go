// Package rowstat implements a row-stationary (RS) dataflow engine in
// the style of Eyeriss — the strongest contemporary comparator the
// paper discusses (§7, Table 7). It is an extension beyond the paper's
// four architectures: having a measured RS machine lets Table 7's
// DRAM-accesses-per-op comparison be computed instead of quoted.
//
// The canonical RS mapping: a PE set is K rows × E columns. PE (i, e)
// of a set holds kernel row i stationary in its register file and
// computes the 1-D convolution of that kernel row with input row
// (e + i), producing partial sums for output row e; the K per-row
// contributions of output row e accumulate through the set's vertical
// psum links. Multiple sets stack vertically on the physical array
// (⌊Rows/K⌋ of them) and work on different output feature maps, sharing
// the same input rows by multicast — Eyeriss's inter-set input reuse.
package rowstat

import (
	"fmt"

	"flexflow/internal/arch"
	"flexflow/internal/fixed"
	"flexflow/internal/mapping"
	"flexflow/internal/nn"
	"flexflow/internal/sim"
	"flexflow/internal/tensor"
)

// Engine is a row-stationary accelerator with a Rows×Cols PE array
// (Eyeriss's configuration is 12×14 = 168 PEs).
type Engine struct {
	Rows, Cols int

	// BufferWords bounds on-chip reuse in the DRAM model (Eyeriss's
	// global buffer is 108 KB = 55296 words).
	BufferWords int

	// Watchdog, when non-nil, bounds Simulate: it is polled at m-group
	// boundaries, so a cancelled context or exhausted cycle budget stops
	// the run with a typed error.
	Watchdog *sim.Watchdog
}

// New returns an RS engine with the Eyeriss-like global buffer.
func New(rows, cols int) *Engine {
	if rows <= 0 || cols <= 0 {
		panic("rowstat: array dimensions must be positive")
	}
	return &Engine{Rows: rows, Cols: cols, BufferWords: 55296}
}

// NewEyeriss returns the 12×14, 108 KB configuration of Table 7.
func NewEyeriss() *Engine { return New(12, 14) }

// SetWatchdog installs (or clears) the simulation watchdog; it is the
// capability setter the execution pipeline uses to thread run options
// uniformly through every engine.
func (e *Engine) SetWatchdog(w *sim.Watchdog) { e.Watchdog = w }

// Name implements arch.Engine.
func (e *Engine) Name() string { return "Row-Stationary" }

// PEs implements arch.Engine.
func (e *Engine) PEs() int { return e.Rows * e.Cols }

// rule returns the mapping-layer lowering rule configured exactly as
// this engine; Model and Simulate's DRAM accounting both go through it,
// so the engine and its preset spec cannot drift.
func (e *Engine) rule() mapping.RowStationary {
	return mapping.RowStationary{Rows: e.Rows, Cols: e.Cols, BufferWords: e.BufferWords}
}

// spec returns the engine's configuration as its mapping spec: the
// rowstat preset at this engine's geometry.
func (e *Engine) spec() mapping.Spec {
	s := mapping.PresetRowStationary(e.Rows, e.Cols)
	s.Geom.BufferWords = e.BufferWords
	return s
}

// LayerCacheKey implements the pipeline's CacheKeyer: the engine's
// mapping-spec digest (kind, array geometry, buffer capacity and
// dataflow directives, via mapping.AppendSpecKey) and the layer shape —
// everything Model reads (see arch.AppendLayerKey for the exclusions;
// this comparator has no tracer or injector to arm).
func (e *Engine) LayerCacheKey(l nn.ConvLayer) (string, bool) {
	b := make([]byte, 0, 224)
	s := e.spec()
	b = mapping.AppendSpecKey(b, &s)
	b = arch.AppendLayerKey(b, l)
	return string(b), true
}

// geometry derives the RS mapping of a layer (see
// mapping.RowStationary.Geometry).
func (e *Engine) geometry(l nn.ConvLayer) (setH, setW, sets, folds int) {
	return e.rule().Geometry(l)
}

// CheckLayer implements arch.LayerChecker: the RS comparator is a
// unit-stride model.
func (e *Engine) CheckLayer(l nn.ConvLayer) error {
	if err := l.Validate(); err != nil {
		return err
	}
	if l.Str() != 1 {
		return fmt.Errorf("rowstat: layer %s has stride %d; the RS comparator models unit stride only", l.Name, l.Str())
	}
	return nil
}

// Model implements arch.Engine by lowering the layer through the
// row-stationary mapping rule.
func (e *Engine) Model(l nn.ConvLayer) arch.LayerResult {
	res := e.rule().Account(l)
	res.Arch = e.Name()
	return res
}

// Simulate implements arch.Engine: each PE runs its stationary-row 1-D
// convolution explicitly and the set's vertical links accumulate the
// output rows, so the functional result is produced by the actual RS
// dataflow.
func (e *Engine) Simulate(l nn.ConvLayer, in *tensor.Map3, k *tensor.Kernel4) (*tensor.Map3, arch.LayerResult, error) {
	if err := l.Validate(); err != nil {
		return nil, arch.LayerResult{}, err
	}
	if l.Str() != 1 {
		return nil, arch.LayerResult{}, fmt.Errorf("rowstat: unit-stride dataflow cannot execute stride-%d layer %s", l.Str(), l.Name)
	}
	if in.N != l.N || k.M != l.M || k.N != l.N || k.K != l.K {
		return nil, arch.LayerResult{}, fmt.Errorf("rowstat: operand shapes do not match layer %v", l)
	}
	if in.H != l.InSize() || in.W != l.InSize() {
		return nil, arch.LayerResult{}, fmt.Errorf("rowstat: input is %dx%d, layer needs %dx%d", in.H, in.W, l.InSize(), l.InSize())
	}

	setH, setW, sets, folds := e.geometry(l)
	out := tensor.NewMap3(l.M, l.S, l.S)
	psum := make([]fixed.Acc, l.M*l.S*l.S)
	res := arch.LayerResult{
		Arch: e.Name(), Layer: l, PEs: e.PEs(),
		Factors: arch.T{Tm: sets, Tn: 1, Tr: setW, Tc: 1, Ti: setH, Tj: 1},
	}

	cyclesPerPass := int64(l.S)*int64(l.K) + int64(setH)
	var setPasses, rounds int64

	for n := 0; n < l.N; n++ {
		for fold := 0; fold < folds; fold++ {
			i0 := fold * setH
			ka := setH
			if i0+ka > l.K {
				ka = l.K - i0
			}
			// m-groups share the input multicast across concurrent sets.
			for m0 := 0; m0 < l.M; m0 += sets {
				// Poll the watchdog at m-group boundaries; the running
				// cycle estimate is the rounds completed so far.
				if err := e.Watchdog.Check(rounds * cyclesPerPass); err != nil {
					return nil, arch.LayerResult{}, err
				}
				for e0 := 0; e0 < l.S; e0 += setW {
					ew := setW
					if e0+ew > l.S {
						ew = l.S - e0
					}
					// Input rows for this row group, multicast once.
					rounds++
					res.NeuronLoads += int64(ew+setH-1) * int64(in.W)
					for s := 0; s < sets; s++ {
						m := m0 + s
						if m >= l.M {
							break
						}
						setPasses++
						e.runSet(l, in, k, psum, &res, m, n, i0, ka, e0, ew)
					}
				}
			}
		}
	}

	for m := 0; m < l.M; m++ {
		for r := 0; r < l.S; r++ {
			for c := 0; c < l.S; c++ {
				out.Set(m, r, c, psum[(m*l.S+r)*l.S+c].Round())
			}
		}
	}
	// Concurrent sets overlap in time: engine rounds, not set passes.
	res.Cycles = rounds * cyclesPerPass
	_ = setPasses
	res.MACs = l.MACs()
	res.LocalReads = 2 * l.MACs()
	res.LocalWrites = l.MACs()
	mGroups := int64((l.M + sets - 1) / sets)
	e.rule().DRAM(l, &res, mGroups)
	e.Watchdog.Commit(res.Cycles)
	return out, res, nil
}

// runSet executes one PE set pass: output rows e0..e0+ew-1 of map m,
// input map n, kernel rows i0..i0+ka-1.
func (e *Engine) runSet(l nn.ConvLayer, in *tensor.Map3, k *tensor.Kernel4,
	psum []fixed.Acc, res *arch.LayerResult, m, n, i0, ka, e0, ew int) {

	// Kernel rows are loaded stationary into the set's register files on
	// the first row group of each (m, n, fold) and stay resident.
	if e0 == 0 {
		res.KernelLoads += int64(ka) * int64(l.K)
	}
	first := n == 0 && i0 == 0
	for er := e0; er < e0+ew; er++ {
		for c := 0; c < l.S; c++ {
			// Column accumulation: PE (i) contributes its 1-D conv tap
			// sums; the vertical links fold them into the output row.
			var colAcc fixed.Acc
			for i := i0; i < i0+ka; i++ {
				var tap fixed.Acc
				for j := 0; j < l.K; j++ {
					tap = fixed.MAC(tap, in.At(n, er+i, c+j), k.At(m, n, i, j))
				}
				colAcc = fixed.AddAcc(colAcc, tap)
				if i > i0 {
					res.InterPEMoves++ // psum hop up the set
				}
			}
			idx := (m*l.S+er)*l.S + c
			psum[idx] = fixed.AddAcc(psum[idx], colAcc)
			res.NeuronStores++
			if !first {
				res.NeuronLoads++ // re-read of the prior partial
			}
		}
	}
}
