// Package systolic implements the SFSNMS baseline architecture
// (Section 3.1): a set of K₀×K₀ systolic arrays in the style of
// DC-CNN / CNP / Neuflow. Each PE holds one constant synapse; output
// neurons are born at the first pipeline stage, travel through the
// K₀×K₀ stages (with inter-row FIFOs sized inputWidth−K), and
// accumulate one synapse's contribution per stage while input neurons
// are broadcast to all PEs in raster order. Multiple identical arrays
// work in a tiling-like mode over output feature maps (DC-CNN's
// configuration, §6.1.1).
//
// The functional simulator moves partial sums through an explicit
// delay-line of pipeline slots, so pipeline fill/drain time — the
// effect the paper blames for Systolic's poor achieved GOPS — emerges
// from the dataflow rather than being added as a fudge term.
package systolic

import (
	"fmt"

	"flexflow/internal/arch"
	"flexflow/internal/fixed"
	"flexflow/internal/mapping"
	"flexflow/internal/nn"
	"flexflow/internal/sim"
	"flexflow/internal/tensor"
)

// Engine is a systolic computing engine: Arrays identical K0×K0 PE
// arrays plus (modelled) 32 KB neuron and kernel buffers.
type Engine struct {
	K0     int // PE array edge (the paper uses 6, or 11 for AlexNet)
	Arrays int // number of identical arrays (the paper uses 7)

	// BufferWords is the capacity of each on-chip buffer in 16-bit
	// words (32 KB = 16384 words in the paper's configuration). It
	// bounds on-chip reuse in the DRAM traffic model.
	BufferWords int

	// Tracer, when non-nil, receives dataflow events from Simulate.
	Tracer sim.Tracer

	// Watchdog, when non-nil, bounds Simulate: it is polled at pass
	// boundaries, so a cancelled context or exhausted cycle budget
	// stops the run with a typed error.
	Watchdog *sim.Watchdog
}

// New returns a systolic engine with the paper's defaults for buffer
// capacity.
func New(k0, arrays int) *Engine {
	if k0 <= 0 || arrays <= 0 {
		panic("systolic: K0 and Arrays must be positive")
	}
	return &Engine{K0: k0, Arrays: arrays, BufferWords: 16384}
}

// SetTracer installs (or clears) the dataflow tracer; it is the
// capability setter the execution pipeline uses to thread run options
// uniformly through every engine.
func (e *Engine) SetTracer(t sim.Tracer) { e.Tracer = t }

// SetWatchdog installs (or clears) the simulation watchdog.
func (e *Engine) SetWatchdog(w *sim.Watchdog) { e.Watchdog = w }

// Name implements arch.Engine.
func (e *Engine) Name() string { return "Systolic" }

// PEs implements arch.Engine.
func (e *Engine) PEs() int { return e.Arrays * e.K0 * e.K0 }

// rule returns the mapping-layer lowering rule configured exactly as
// this engine; Model and Simulate's DRAM accounting both go through it,
// so the engine and its preset spec cannot drift.
func (e *Engine) rule() mapping.Systolic {
	return mapping.Systolic{K0: e.K0, Arrays: e.Arrays, BufferWords: e.BufferWords}
}

// spec returns the engine's configuration as its mapping spec: the
// systolic preset at this engine's geometry.
func (e *Engine) spec() mapping.Spec {
	s := mapping.PresetSystolic(e.K0, e.Arrays)
	s.Geom.BufferWords = e.BufferWords
	return s
}

// LayerCacheKey implements the pipeline's CacheKeyer: the engine's
// mapping-spec digest (kind, geometry, buffer capacity and dataflow
// directives, via mapping.AppendSpecKey), tracer arming and the layer
// shape — everything Model reads (see arch.AppendLayerKey for the
// exclusions).
func (e *Engine) LayerCacheKey(l nn.ConvLayer) (string, bool) {
	b := make([]byte, 0, 224)
	s := e.spec()
	b = mapping.AppendSpecKey(b, &s)
	b = arch.AppendKeyBool(b, e.Tracer != nil)
	b = arch.AppendLayerKey(b, l)
	return string(b), true
}

// CheckLayer implements arch.LayerChecker: the systolic baseline keeps
// the paper's unit-stride contract (§3), so strided layers are rejected
// up front instead of panicking inside Model.
func (e *Engine) CheckLayer(l nn.ConvLayer) error {
	if err := l.Validate(); err != nil {
		return err
	}
	if l.Str() != 1 {
		return fmt.Errorf("systolic: layer %s has stride %d; the rigid baselines assume unit stride (paper §3)", l.Name, l.Str())
	}
	return nil
}

// Model implements arch.Engine by lowering the layer through the
// systolic mapping rule.
func (e *Engine) Model(l nn.ConvLayer) arch.LayerResult {
	res := e.rule().Account(l)
	res.Arch = e.Name()
	return res
}

// slot is one partial sum travelling along the systolic delay line.
type slot struct {
	valid bool
	r, c  int // output coordinates
	acc   fixed.Acc
}

// Simulate implements arch.Engine: a slot-accurate functional run.
func (e *Engine) Simulate(l nn.ConvLayer, in *tensor.Map3, k *tensor.Kernel4) (*tensor.Map3, arch.LayerResult, error) {
	if err := l.Validate(); err != nil {
		return nil, arch.LayerResult{}, err
	}
	if l.Str() != 1 {
		return nil, arch.LayerResult{}, fmt.Errorf("systolic: unit-stride dataflow cannot execute stride-%d layer %s", l.Str(), l.Name)
	}
	if in.N != l.N || k.M != l.M || k.N != l.N || k.K != l.K {
		return nil, arch.LayerResult{}, fmt.Errorf("systolic: operand shapes do not match layer %v", l)
	}
	if in.H != l.InSize() || in.W != l.InSize() {
		return nil, arch.LayerResult{}, fmt.Errorf("systolic: input is %dx%d, layer needs %dx%d", in.H, in.W, l.InSize(), l.InSize())
	}

	out := tensor.NewMap3(l.M, l.S, l.S)
	psum := make([]fixed.Acc, l.M*l.S*l.S)
	res := arch.LayerResult{
		Arch: e.Name(), Layer: l, PEs: e.PEs(),
		Factors: arch.T{Tm: min(e.Arrays, l.M), Tn: 1, Tr: 1, Tc: 1,
			Ti: min(e.K0, l.K), Tj: min(e.K0, l.K)},
	}

	sub := (l.K + e.K0 - 1) / e.K0
	mGroups := (l.M + e.Arrays - 1) / e.Arrays
	var clock sim.Clock

	for g := 0; g < mGroups; g++ {
		for n := 0; n < l.N; n++ {
			for oi := 0; oi < sub; oi++ {
				for oj := 0; oj < sub; oj++ {
					// A pass boundary is a schedule boundary: poll the
					// watchdog so cancellation and the cycle budget take
					// effect within a layer, not only between layers.
					if err := e.Watchdog.Check(clock.Cycle()); err != nil {
						return nil, arch.LayerResult{}, err
					}
					// All arrays of the group consume one shared
					// broadcast stream; simulate each array's pipeline.
					groupCycles := int64(0)
					first := n == 0 && oi == 0 && oj == 0
					for a := 0; a < e.Arrays; a++ {
						m := g*e.Arrays + a
						if m >= l.M {
							break
						}
						c := e.runPass(l, in, k, psum, &res, m, n, oi*e.K0, oj*e.K0, first)
						if c > groupCycles {
							groupCycles = c
						}
					}
					// Shared input broadcast for the group: one buffer
					// read per input neuron.
					inSz := l.InSize()
					res.NeuronLoads += int64(inSz) * int64(inSz)
					clock.Advance(groupCycles)
				}
			}
		}
	}

	for m := 0; m < l.M; m++ {
		for r := 0; r < l.S; r++ {
			for c := 0; c < l.S; c++ {
				out.Set(m, r, c, psum[(m*l.S+r)*l.S+c].Round())
			}
		}
	}
	res.Cycles = clock.Cycle()
	e.rule().DRAM(l, &res, int64(mGroups))
	e.Watchdog.Commit(res.Cycles)
	return out, res, nil
}

// runPass streams the whole input feature map n through one array
// configured with sub-kernel (oi,oj) of kernel (m,·), accumulating into
// psum. Returns the pass cycle count.
func (e *Engine) runPass(l nn.ConvLayer, in *tensor.Map3, k *tensor.Kernel4, psum []fixed.Acc, res *arch.LayerResult, m, n, oi, oj int, first bool) int64 {
	inSz := l.InSize()
	ka := min(e.K0, l.K-oi) // active kernel rows this pass
	kb := min(e.K0, l.K-oj) // active kernel cols this pass
	// Load the sub-kernel into the PE registers (one word per PE).
	res.KernelLoads += int64(ka * kb)

	// The delay line: ka rows of kb compute stages, rows joined by
	// FIFOs of length inSz-kb, so stage (i,j) sits at line position
	// i*inSz + j. Total length (ka-1)*inSz + kb.
	lineLen := (ka-1)*inSz + kb
	line := make([]slot, lineLen)

	totalCycles := int64(inSz*inSz) + 1
	for t := int64(0); t < totalCycles; t++ {
		// Shift the line right by one position; the slot leaving the
		// end has finished all ka×kb stages.
		last := line[lineLen-1]
		copy(line[1:], line[:lineLen-1])
		if last.valid {
			idx := (m*l.S+last.r)*l.S + last.c
			psum[idx] = fixed.AddAcc(psum[idx], last.acc)
			res.NeuronStores++
			if !first {
				// Accumulating into an existing partial re-reads it.
				res.NeuronLoads++
			}
			if e.Tracer != nil {
				e.Tracer.Trace(sim.Event{Cycle: t, Kind: sim.EvStore, Row: ka - 1, Col: kb - 1,
					What: fmt.Sprintf("O(%d,%d,%d)", m, last.r, last.c)})
			}
		}
		// Count the shifts of live slots.
		for p := 1; p < lineLen; p++ {
			if line[p].valid {
				res.InterPEMoves++
			}
		}
		// Birth: at cycle t = r·inSz + c a new output partial enters if
		// (r-oi, c-oj) is a valid output coordinate.
		line[0] = slot{}
		if t < int64(inSz*inSz) {
			br := int(t)/inSz - oi
			bc := int(t)%inSz - oj
			if br >= 0 && br < l.S && bc >= 0 && bc < l.S {
				line[0] = slot{valid: true, r: br, c: bc}
			}
			// Broadcast input neuron I(n, t/inSz, t%inSz) to all stages.
			iv := in.At(n, int(t)/inSz, int(t)%inSz)
			if e.Tracer != nil {
				e.Tracer.Trace(sim.Event{Cycle: t, Kind: sim.EvBroadcast, Row: -1, Col: -1,
					What: fmt.Sprintf("I(%d,%d,%d)", n, int(t)/inSz, int(t)%inSz)})
			}
			// Every valid slot sitting at a compute stage accumulates.
			for i := 0; i < ka; i++ {
				for j := 0; j < kb; j++ {
					s := &line[i*inSz+j]
					if !s.valid {
						continue
					}
					w := k.At(m, n, oi+i, oj+j)
					s.acc = fixed.MAC(s.acc, iv, w)
					res.MACs++
					res.LocalReads += 2
					res.LocalWrites++
					if e.Tracer != nil {
						e.Tracer.Trace(sim.Event{Cycle: t, Kind: sim.EvMAC, Row: i, Col: j,
							What: fmt.Sprintf("O(%d,%d,%d)", m, s.r, s.c)})
					}
				}
			}
		}
	}
	return totalCycles
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
