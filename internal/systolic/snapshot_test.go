package systolic

// Dataflow snapshot tests: the Go analogue of the paper's Figure 5(a2)
// — pinning *when* and *where* operands move through the systolic
// pipeline, not just that the final numbers are right.

import (
	"fmt"
	"testing"

	"flexflow/internal/nn"
	"flexflow/internal/sim"
	"flexflow/internal/tensor"
)

// snapshotLayer is a single-map layer small enough to reason about by
// hand: K=2 on a 2×2 array, 3×3 input, 2×2 output.
var snapshotLayer = nn.ConvLayer{Name: "snap", M: 1, N: 1, S: 2, K: 2}

func runSnapshot(t *testing.T) *sim.Recorder {
	t.Helper()
	e := New(2, 1)
	rec := &sim.Recorder{}
	e.Tracer = rec
	in := tensor.NewMap3(1, 3, 3)
	in.FillPattern(9)
	k := tensor.NewKernel4(1, 1, 2)
	k.FillPattern(10)
	if _, _, err := e.Simulate(snapshotLayer, in, k); err != nil {
		t.Fatal(err)
	}
	return rec
}

func TestBroadcastIsRasterOrder(t *testing.T) {
	rec := runSnapshot(t)
	bcasts := rec.Filter(sim.EvBroadcast)
	if len(bcasts) != 9 {
		t.Fatalf("broadcasts = %d, want 9 (3×3 raster)", len(bcasts))
	}
	for idx, e := range bcasts {
		want := fmt.Sprintf("I(0,%d,%d)", idx/3, idx%3)
		if e.What != want {
			t.Errorf("broadcast %d = %q, want %q (raster order)", idx, e.What, want)
		}
		if e.Cycle != int64(idx) {
			t.Errorf("broadcast %d at cycle %d, want one per cycle", idx, e.Cycle)
		}
	}
}

func TestOutputBornWithItsWindowOrigin(t *testing.T) {
	// O(r,c) enters the pipeline exactly when I(r,c) — its window
	// origin — is broadcast, and first accumulates at stage (0,0).
	rec := runSnapshot(t)
	for _, e := range rec.Filter(sim.EvMAC) {
		if e.Row == 0 && e.Col == 0 {
			var m, r, c int
			if _, err := fmt.Sscanf(e.What, "O(%d,%d,%d)", &m, &r, &c); err != nil {
				t.Fatalf("bad MAC label %q", e.What)
			}
			if wantCycle := int64(r*3 + c); e.Cycle != wantCycle {
				t.Errorf("O(%d,%d) first MAC at cycle %d, want %d", r, c, e.Cycle, wantCycle)
			}
		}
	}
}

func TestStageTimingSkew(t *testing.T) {
	// The §3.1 skew: an output at stage (i,j) lags its birth by
	// i·inputWidth + j cycles — rows cost a full input-row traversal
	// (the inter-row FIFO), columns one cycle.
	rec := runSnapshot(t)
	firstMAC := map[string]map[[2]int]int64{} // output -> stage -> cycle
	for _, e := range rec.Filter(sim.EvMAC) {
		if firstMAC[e.What] == nil {
			firstMAC[e.What] = map[[2]int]int64{}
		}
		stage := [2]int{e.Row, e.Col}
		if _, seen := firstMAC[e.What][stage]; !seen {
			firstMAC[e.What][stage] = e.Cycle
		}
	}
	for out, stages := range firstMAC {
		birth, ok := stages[[2]int{0, 0}]
		if !ok {
			t.Fatalf("%s never visited stage (0,0)", out)
		}
		for stage, cycle := range stages {
			want := birth + int64(stage[0]*3+stage[1]) // inputWidth = 3
			if cycle != want {
				t.Errorf("%s at stage %v on cycle %d, want %d", out, stage, cycle, want)
			}
		}
	}
}

func TestEveryOutputVisitsEveryStage(t *testing.T) {
	rec := runSnapshot(t)
	visits := map[string]int{}
	for _, e := range rec.Filter(sim.EvMAC) {
		visits[e.What]++
	}
	if len(visits) != 4 { // S² outputs
		t.Fatalf("outputs seen = %d, want 4", len(visits))
	}
	for out, n := range visits {
		if n != 4 { // K² stages
			t.Errorf("%s visited %d stages, want 4", out, n)
		}
	}
}

func TestStoresFollowLastStage(t *testing.T) {
	// Each output is pumped out exactly once, the cycle after its last
	// stage (the line-exit shift).
	rec := runSnapshot(t)
	lastMAC := map[string]int64{}
	for _, e := range rec.Filter(sim.EvMAC) {
		if e.Cycle > lastMAC[e.What] {
			lastMAC[e.What] = e.Cycle
		}
	}
	stores := rec.Filter(sim.EvStore)
	if len(stores) != 4 {
		t.Fatalf("stores = %d, want 4", len(stores))
	}
	for _, e := range stores {
		if e.Cycle != lastMAC[e.What]+1 {
			t.Errorf("%s stored at cycle %d, want %d (one shift after last MAC)",
				e.What, e.Cycle, lastMAC[e.What]+1)
		}
	}
}
