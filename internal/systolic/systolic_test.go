package systolic

import (
	"testing"

	"flexflow/internal/nn"
	"flexflow/internal/sim"
	"flexflow/internal/tensor"
)

func makeOperands(l nn.ConvLayer, seed uint64) (*tensor.Map3, *tensor.Kernel4) {
	in := tensor.NewMap3(l.N, l.InSize(), l.InSize())
	in.FillPattern(seed)
	k := tensor.NewKernel4(l.M, l.N, l.K)
	k.FillPattern(seed + 1)
	return in, k
}

func TestSimulateMatchesGoldenConv(t *testing.T) {
	layers := []nn.ConvLayer{
		{Name: "tiny", M: 1, N: 1, S: 3, K: 2},
		{Name: "c1", M: 2, N: 1, S: 8, K: 4},
		{Name: "c2", M: 2, N: 2, S: 4, K: 2},
		{Name: "deep", M: 3, N: 3, S: 5, K: 3},
	}
	e := New(6, 7)
	for _, l := range layers {
		in, k := makeOperands(l, 42)
		got, res, err := e.Simulate(l, in, k)
		if err != nil {
			t.Fatalf("%s: %v", l.Name, err)
		}
		want := tensor.Conv(in, k)
		if !got.Equal(want) {
			t.Errorf("%s: systolic output differs from golden conv", l.Name)
		}
		if res.MACs != l.MACs() {
			t.Errorf("%s: MACs = %d, want %d", l.Name, res.MACs, l.MACs())
		}
	}
}

func TestSimulateKernelLargerThanArray(t *testing.T) {
	// K=5 on a 3×3 array needs ⌈5/3⌉² = 4 sub-kernel passes.
	l := nn.ConvLayer{Name: "big-k", M: 1, N: 1, S: 4, K: 5}
	e := New(3, 2)
	in, k := makeOperands(l, 7)
	got, res, err := e.Simulate(l, in, k)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(tensor.Conv(in, k)) {
		t.Error("sub-kernel decomposition produced wrong outputs")
	}
	wantCycles := int64(1) * 1 * 4 * (8*8 + 1) // mGroups·N·passes·(Sin²+1)
	if res.Cycles != wantCycles {
		t.Errorf("Cycles = %d, want %d", res.Cycles, wantCycles)
	}
}

func TestModelUtilizationDropsForSmallKernels(t *testing.T) {
	// PV C3 (K=3) on a C1-optimized 6×6 array: static occupancy 25%,
	// and achieved utilization must be below that (raster overhead).
	e := New(6, 7)
	l := nn.ConvLayer{Name: "PV-C3", M: 12, N: 8, S: 20, K: 3}
	res := e.Model(l)
	u := res.Utilization()
	if u > 0.25 {
		t.Errorf("utilization %v should be below the 25%% occupancy bound", u)
	}
	if u < 0.10 {
		t.Errorf("utilization %v unreasonably low", u)
	}
}

func TestPipelineFillHurtsSmallMaps(t *testing.T) {
	// The same MAC volume in a smaller map ⇒ relatively more fill
	// overhead ⇒ lower utilization.
	e := New(3, 1)
	small := nn.ConvLayer{M: 1, N: 1, S: 2, K: 3}
	large := nn.ConvLayer{M: 1, N: 1, S: 30, K: 3}
	us := e.Model(small).Utilization()
	ul := e.Model(large).Utilization()
	if us >= ul {
		t.Errorf("small-map utilization %v should be below large-map %v", us, ul)
	}
}

func TestSevenArraysShareInput(t *testing.T) {
	// With M=7 outputs on 7 arrays, the input is broadcast once for the
	// whole group: neuron loads must not scale with M.
	l := nn.ConvLayer{M: 7, N: 1, S: 4, K: 3}
	in := int64(l.InSize() * l.InSize())
	e := New(3, 7)
	res := e.Model(l)
	// loads = 1 group × 1 n × 1 pass × in² + psum re-reads (none: single pass).
	if res.NeuronLoads != in {
		t.Errorf("NeuronLoads = %d, want %d (shared broadcast)", res.NeuronLoads, in)
	}
}

func TestTraceShowsBroadcastAndStores(t *testing.T) {
	l := nn.ConvLayer{M: 1, N: 1, S: 2, K: 2}
	e := New(2, 1)
	rec := &sim.Recorder{}
	e.Tracer = rec
	in, k := makeOperands(l, 1)
	if _, _, err := e.Simulate(l, in, k); err != nil {
		t.Fatal(err)
	}
	if got := len(rec.Filter(sim.EvBroadcast)); got != 9 { // Sin²=9 broadcasts
		t.Errorf("broadcast events = %d, want 9", got)
	}
	if got := len(rec.Filter(sim.EvStore)); got != 4 { // S²=4 outputs
		t.Errorf("store events = %d, want 4", got)
	}
	if got := len(rec.Filter(sim.EvMAC)); got != 16 { // S²·K²=16 MACs
		t.Errorf("MAC events = %d, want 16", got)
	}
}

func TestSimulateRejectsBadShapes(t *testing.T) {
	e := New(6, 7)
	l := nn.ConvLayer{Name: "x", M: 2, N: 1, S: 4, K: 3}
	in := tensor.NewMap3(2, 6, 6) // wrong N
	k := tensor.NewKernel4(2, 1, 3)
	if _, _, err := e.Simulate(l, in, k); err == nil {
		t.Error("mismatched input accepted")
	}
	in2 := tensor.NewMap3(1, 5, 5) // wrong size
	if _, _, err := e.Simulate(l, in2, k); err == nil {
		t.Error("mismatched size accepted")
	}
}

func TestEngineIdentity(t *testing.T) {
	e := New(6, 7)
	if e.Name() != "Systolic" {
		t.Errorf("Name = %q", e.Name())
	}
	if e.PEs() != 7*36 {
		t.Errorf("PEs = %d, want 252", e.PEs())
	}
}

func TestDRAMReloadWhenInputExceedsBuffer(t *testing.T) {
	e := New(6, 2)
	e.BufferWords = 64                        // tiny buffer
	l := nn.ConvLayer{M: 4, N: 2, S: 8, K: 3} // input 2·100 = 200 words > 64
	res := e.Model(l)
	wantMin := l.InputWords() * 2 // 2 m-groups re-stream
	if res.DRAMReads < wantMin {
		t.Errorf("DRAMReads = %d, want ≥ %d with reload", res.DRAMReads, wantMin)
	}
}

func TestMultiGroupSchedule(t *testing.T) {
	// M=5 on 2 arrays: 3 m-groups; cycles scale with groups, and the
	// functional result still matches golden conv.
	l := nn.ConvLayer{Name: "groups", M: 5, N: 2, S: 3, K: 2}
	e := New(2, 2)
	in, k := makeOperands(l, 77)
	got, res, err := e.Simulate(l, in, k)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(tensor.Conv(in, k)) {
		t.Error("multi-group output differs from golden")
	}
	inSz := int64(l.InSize())
	wantCycles := 3 /*groups*/ * 2 /*N*/ * (inSz*inSz + 1)
	if res.Cycles != wantCycles {
		t.Errorf("Cycles = %d, want %d", res.Cycles, wantCycles)
	}
}

func TestAlexNetConfigurationK11(t *testing.T) {
	// The §6.1.1 AlexNet configuration: 11×11 arrays. C1 (K=11) fits in
	// one pass; C3 (K=5) wastes (5/11)² of the array.
	e := New(11, 2)
	c1 := nn.ConvLayer{Name: "C1", M: 48, N: 3, S: 55, K: 11}
	c3 := nn.ConvLayer{Name: "C3", M: 128, N: 48, S: 27, K: 5}
	u1 := e.Model(c1).Utilization()
	u3 := e.Model(c3).Utilization()
	if u1 < 0.5 {
		t.Errorf("C1 on K0=11: utilization %v too low", u1)
	}
	if u3 > 0.25 {
		t.Errorf("C3 on K0=11: utilization %v should collapse below (5/11)²≈0.21", u3)
	}
}
