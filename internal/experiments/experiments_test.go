package experiments

import (
	"strings"
	"testing"
)

const (
	iSystolic = iota
	iMapping
	iTiling
	iFlexFlow
)

func TestFigure1BaselinesUnderachieve(t *testing.T) {
	rows, text := Figure1()
	if len(rows) != 3 {
		t.Fatalf("Figure1 rows = %d, want 3", len(rows))
	}
	for _, r := range rows {
		ratio := r.Values[2]
		if ratio >= 0.60 {
			t.Errorf("%s achieves %.2f of nominal; the paper's point is a large gap", r.Workload, ratio)
		}
		if ratio <= 0 {
			t.Errorf("%s ratio non-positive", r.Workload)
		}
	}
	if !strings.Contains(text, "Tiling") {
		t.Error("rendered figure missing Tiling row")
	}
}

func TestFigure15FlexFlowHighAndStable(t *testing.T) {
	rows, _ := Figure15()
	if len(rows) != 6 {
		t.Fatalf("Figure15 rows = %d, want 6", len(rows))
	}
	minFF, maxFF := 1.0, 0.0
	for _, r := range rows {
		ff := r.Values[iFlexFlow]
		if ff < minFF {
			minFF = ff
		}
		if ff > maxFF {
			maxFF = ff
		}
		// FlexFlow leads every workload.
		for j, v := range r.Values[:3] {
			if v >= ff {
				t.Errorf("%s: %s utilization %.3f ≥ FlexFlow %.3f", r.Workload, ArchNames[j], v, ff)
			}
		}
	}
	if minFF < 0.70 {
		t.Errorf("FlexFlow minimum utilization %.3f below 0.70", minFF)
	}
	// Stability: spread below 30 points.
	if maxFF-minFF > 0.30 {
		t.Errorf("FlexFlow utilization spread %.3f too volatile", maxFF-minFF)
	}
}

func TestFigure16SpeedupBands(t *testing.T) {
	rows, _ := Figure16()
	for _, r := range rows {
		ff := r.Values[iFlexFlow]
		if ff < 230 {
			t.Errorf("%s: FlexFlow %.0f GOPS; the paper sustains > 230 everywhere", r.Workload, ff)
		}
		// 2–10× speedup bands over the baselines somewhere in the suite
		// are asserted via aggregate below; per-workload FlexFlow must
		// at least win.
		for j, v := range r.Values[:3] {
			if v >= ff {
				t.Errorf("%s: %s %.0f GOPS ≥ FlexFlow %.0f", r.Workload, ArchNames[j], v, ff)
			}
		}
	}
	// At least one workload shows ≥ 2× over Systolic and ≥ 10× over
	// Tiling (the paper's headline bands).
	sys2x, til10x := false, false
	for _, r := range rows {
		if r.Values[iFlexFlow] >= 2*r.Values[iSystolic] {
			sys2x = true
		}
		if r.Values[iFlexFlow] >= 10*r.Values[iTiling] {
			til10x = true
		}
	}
	if !sys2x {
		t.Error("no workload reaches 2x over Systolic")
	}
	if !til10x {
		t.Error("no workload reaches 10x over Tiling")
	}
}

func TestFigure17FlexFlowLowestTilingHighest(t *testing.T) {
	rows, _ := Figure17()
	for _, r := range rows {
		ff := r.Values[iFlexFlow]
		til := r.Values[iTiling]
		for j, v := range r.Values {
			// FlexFlow carries the least traffic. On sub-megabyte nets
			// the volumes are within rounding of each other, so the
			// strict ordering is asserted only where it is material.
			if j != iFlexFlow && v < ff && (v > 1.0 || ff > 2.5*v) {
				t.Errorf("%s: %s volume %.2f below FlexFlow %.2f", r.Workload, ArchNames[j], v, ff)
			}
			if j != iTiling && v > til {
				t.Errorf("%s: %s volume %.2f above Tiling %.2f", r.Workload, ArchNames[j], v, til)
			}
		}
	}
}

func TestFigure18FlexFlowMostEfficient(t *testing.T) {
	rows, _ := Figure18()
	for _, r := range rows {
		ffEff := r.Efficiency[iFlexFlow]
		ffEnergy := r.EnergyMJ[iFlexFlow]
		for j := range ArchNames[:3] {
			if r.Efficiency[j] >= ffEff {
				t.Errorf("%s: %s efficiency %.0f ≥ FlexFlow %.0f", r.Workload, ArchNames[j], r.Efficiency[j], ffEff)
			}
			if r.EnergyMJ[j] <= ffEnergy {
				t.Errorf("%s: %s energy %.2f ≤ FlexFlow %.2f", r.Workload, ArchNames[j], r.EnergyMJ[j], ffEnergy)
			}
		}
		// FlexFlow's power is the highest of the four on the small
		// nets (high utilization costs watts) — §6.2.5's observation.
		if r.Workload == "LeNet-5" || r.Workload == "PV" {
			for j := range ArchNames[:3] {
				if r.PowerMW[j] >= r.PowerMW[iFlexFlow] {
					t.Errorf("%s: %s power %.0f ≥ FlexFlow %.0f", r.Workload, ArchNames[j], r.PowerMW[j], r.PowerMW[iFlexFlow])
				}
			}
		}
	}
}

func TestFlexFlowPowerEnvelope(t *testing.T) {
	// Paper Table 6 totals: 0.84–1.12 W. Allow a generous band.
	rows, _ := Table6()
	for _, r := range rows {
		if total := r.Total(); total < 600 || total > 1500 {
			t.Errorf("%s: FlexFlow power %.0f mW outside the 65nm envelope", r.Workload, total)
		}
		share := r.ComMW / r.Total()
		if share < 0.75 {
			t.Errorf("%s: P_com share %.2f; paper reports ≈ 0.80–0.86", r.Workload, share)
		}
		if r.NeinMW <= 0 || r.NeoutMW <= 0 || r.KerinMW <= 0 {
			t.Errorf("%s: buffer components must be positive: %+v", r.Workload, r)
		}
	}
}

func TestFigure19Scalability(t *testing.T) {
	rows, _ := Figure19()
	if len(rows) != 4 {
		t.Fatalf("Figure19 rows = %d, want 4", len(rows))
	}
	last := rows[len(rows)-1] // 64×64
	// FlexFlow stays high while the baselines collapse.
	if last.Utilization[iFlexFlow] < 0.70 {
		t.Errorf("FlexFlow at 64x64 = %.2f, want ≥ 0.70", last.Utilization[iFlexFlow])
	}
	for j := range ArchNames[:3] {
		if last.Utilization[j] >= last.Utilization[iFlexFlow] {
			t.Errorf("%s at 64x64 = %.2f ≥ FlexFlow", ArchNames[j], last.Utilization[j])
		}
	}
	// 2D-Mapping must collapse drastically as the array outgrows the
	// feature maps.
	if last.Utilization[iMapping] > 0.25 {
		t.Errorf("2D-Mapping at 64x64 = %.2f; should collapse below 0.25", last.Utilization[iMapping])
	}
	// Area: FlexFlow grows slower than 2D-Mapping and Tiling.
	ffGrowth := last.AreaMM2[iFlexFlow] / rows[1].AreaMM2[iFlexFlow]
	for _, j := range []int{iMapping, iTiling} {
		if g := last.AreaMM2[j] / rows[1].AreaMM2[j]; g <= ffGrowth {
			t.Errorf("%s area growth %.2f ≤ FlexFlow %.2f", ArchNames[j], g, ffGrowth)
		}
	}
}

func TestInterconnectShareDeclines(t *testing.T) {
	rows, _ := InterconnectPower()
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if !(rows[0].Share > rows[1].Share && rows[1].Share > rows[2].Share) {
		t.Errorf("share should decline with scale: %v", rows)
	}
	// Paper: 28.3% at 16×16 declining to 21.3% at 64×64.
	if rows[0].Share < 0.15 || rows[0].Share > 0.40 {
		t.Errorf("16x16 share %.2f outside the paper's neighbourhood", rows[0].Share)
	}
}

func TestTable3MatchesPaperCells(t *testing.T) {
	rows, _ := Table3()
	// Pin the cells our principled model reproduces exactly from the
	// paper (±2 points). The paper's FR/HG Systolic "80" entries are
	// its own 1-D counting; our 2-D occupancy gives 64 (EXPERIMENTS.md).
	want := map[string][3]float64{
		"PV/C3 on C1-opt":      {0.25, 0.19, 0.75},
		"PV/C1 on C3-opt":      {1.00, 0.56, 0.083},
		"FR/C1 on C3-opt":      {0.39, 0.87, 0.062},
		"LeNet-5/C3 on C1-opt": {1.00, 0.127, 0.88},
		"LeNet-5/C1 on C3-opt": {1.00, 0.87, 0.062},
		"HG/C1 on C3-opt":      {0.39, 1.00, 0.083},
	}
	for _, r := range rows {
		w, ok := want[r.Workload+"/"+r.Case]
		if !ok {
			continue
		}
		got := [3]float64{r.Systolic, r.Mapping, r.Tiling}
		for i := range got {
			if diff := got[i] - w[i]; diff > 0.02 || diff < -0.02 {
				t.Errorf("%s/%s col %d = %.3f, paper %.3f", r.Workload, r.Case, i, got[i], w[i])
			}
		}
	}
}

func TestTable4OursAtLeastPaper(t *testing.T) {
	rows, _ := Table4()
	for _, r := range rows {
		if r.PaperU >= 0 && r.OursU < r.PaperU-1e-9 {
			t.Errorf("%s %s: ours %.3f below paper %.3f", r.Workload, r.Layer, r.OursU, r.PaperU)
		}
	}
}

func TestTable7DRAMAccOp(t *testing.T) {
	rows, _ := Table7()
	ff := rows[2]
	if ff.Name != "FlexFlow" {
		t.Fatal("row order changed")
	}
	// Paper: 0.0049; ours must land in the same band and below
	// Eyeriss's 0.006.
	if ff.DRAMAccOp < 0.003 || ff.DRAMAccOp > 0.0065 {
		t.Errorf("DRAM Acc/Op = %.4f, want ≈ 0.005", ff.DRAMAccOp)
	}
	if ff.DRAMAccOp >= 0.006 {
		t.Errorf("DRAM Acc/Op %.4f should beat Eyeriss's 0.006", ff.DRAMAccOp)
	}
	if ff.AreaMM2 < 3.3 || ff.AreaMM2 > 4.5 {
		t.Errorf("FlexFlow area %.2f outside the 3.89 neighbourhood", ff.AreaMM2)
	}
}

func TestAreaReportSumsToTotal(t *testing.T) {
	comps, text := AreaReport()
	sum := 0.0
	for _, c := range comps {
		sum += c.AreaMM2
	}
	if sum < 3.3 || sum > 4.5 {
		t.Errorf("component sum %.2f outside the 3.89 neighbourhood", sum)
	}
	if !strings.Contains(text, "Total") {
		t.Error("report missing total")
	}
}

func TestRenderedReportsNonEmpty(t *testing.T) {
	gens := map[string]func() string{
		"Figure1":  func() string { _, s := Figure1(); return s },
		"Figure15": func() string { _, s := Figure15(); return s },
		"Figure16": func() string { _, s := Figure16(); return s },
		"Figure17": func() string { _, s := Figure17(); return s },
		"Figure18": func() string { _, s := Figure18(); return s },
		"Figure19": func() string { _, s := Figure19(); return s },
		"Table3":   func() string { _, s := Table3(); return s },
		"Table4":   func() string { _, s := Table4(); return s },
		"Table6":   func() string { _, s := Table6(); return s },
		"Table7":   func() string { _, s := Table7(); return s },
	}
	for name, g := range gens {
		if s := g(); len(s) < 100 {
			t.Errorf("%s rendered only %d bytes", name, len(s))
		}
	}
}

func TestAblationsShowTheDesignValue(t *testing.T) {
	rows, text := Ablations()
	if len(text) < 200 {
		t.Fatal("empty ablation report")
	}
	// Index by workload/config.
	get := func(w, c string) AblationRow {
		for _, r := range rows {
			if r.Workload == w && r.Config == c {
				return r
			}
		}
		t.Fatalf("missing row %s/%s", w, c)
		return AblationRow{}
	}
	for _, w := range []string{"LeNet-5", "AlexNet"} {
		full := get(w, "full")
		noRARS := get(w, "no-RA/RS")
		noIPDR := get(w, "no-IPDR")
		greedy := get(w, "greedy-coupled")
		if noRARS.Volume <= full.Volume {
			t.Errorf("%s: RA/RS off should inflate traffic (%d vs %d)", w, noRARS.Volume, full.Volume)
		}
		if noRARS.Cycles < full.Cycles {
			t.Errorf("%s: RA/RS off should not be faster", w)
		}
		// IPDR only replicates when a logical group spans multiple rows
		// (T_r·T_c > 1); AlexNet's plan picks T_r = T_c = 1, so assert
		// strict inflation only where replication is in play.
		if w == "LeNet-5" && noIPDR.Volume <= full.Volume {
			t.Errorf("%s: IPDR off should inflate traffic", w)
		}
		if noIPDR.Volume < full.Volume {
			t.Errorf("%s: IPDR off reduced traffic", w)
		}
		if greedy.Cycles < full.Cycles {
			t.Errorf("%s: greedy plan beat the DP (%d vs %d)", w, greedy.Cycles, full.Cycles)
		}
	}
}

func TestStridedAlexNetExtension(t *testing.T) {
	rows, text := StridedAlexNet()
	if len(rows) != 2 || len(text) < 100 {
		t.Fatal("bad strided report")
	}
	unit, strided := rows[0], rows[1]
	if strided.Util < 0.5 {
		t.Errorf("strided utilization %.2f collapsed", strided.Util)
	}
	if strided.Volume <= unit.Volume {
		t.Errorf("stride 4 should need more words (%d vs %d): windows stop overlapping", strided.Volume, unit.Volume)
	}
}

func TestRowStationaryCrossCheck(t *testing.T) {
	// Our RS model at Eyeriss's configuration must land near Eyeriss's
	// published 0.006 DRAM Acc/Op on AlexNet — the cross-check that the
	// DRAM accounting behind the FlexFlow figure is sane.
	_, text := Table7()
	if !strings.Contains(text, "our RS model") {
		t.Fatalf("Table 7 missing the RS cross-check row:\n%s", text)
	}
}

func TestFiveWayIncludesRowStationary(t *testing.T) {
	rows, text := FiveWay()
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	if !strings.Contains(text, "Row-Stationary") {
		t.Fatal("missing RS column")
	}
	for _, r := range rows {
		if len(r.Values) != 5 {
			t.Fatalf("%s: %d values", r.Workload, len(r.Values))
		}
		rs := r.Values[4]
		if rs <= 0 || rs > 1 {
			t.Errorf("%s: RS utilization %v out of range", r.Workload, rs)
		}
		// FlexFlow still leads the five-way field at 16×16.
		if rs >= r.Values[iFlexFlow] {
			t.Errorf("%s: RS %.3f ≥ FlexFlow %.3f", r.Workload, rs, r.Values[iFlexFlow])
		}
	}
}

func TestBalancedSweepMonotone(t *testing.T) {
	pts, text := BalancedSweep("AlexNet")
	if len(pts) != 5 || len(text) < 100 {
		t.Fatal("bad sweep")
	}
	// λ=0 must be the cycle optimum; growing λ never reduces cycles and
	// never increases traffic relative to the previous point... traffic
	// must be non-increasing along the sweep (that's what λ buys).
	for i := 1; i < len(pts); i++ {
		if pts[i].Cycles < pts[0].Cycles {
			t.Errorf("λ=%.0f beat the cycles-only plan on cycles", pts[i].Lambda)
		}
		if pts[i].Volume > pts[i-1].Volume {
			t.Errorf("λ=%.0f increased traffic over λ=%.0f (%d vs %d)",
				pts[i].Lambda, pts[i-1].Lambda, pts[i].Volume, pts[i-1].Volume)
		}
	}
	if _, text := BalancedSweep("nope"); !strings.Contains(text, "unknown") {
		t.Error("unknown workload not reported")
	}
}

func TestRooflinePlacements(t *testing.T) {
	pts, text := Roofline()
	if len(pts) != 24 || len(text) < 200 {
		t.Fatal("bad roofline")
	}
	for _, p := range pts {
		if p.Intensity <= 0 || p.Achieved <= 0 || p.Attainable <= 0 {
			t.Errorf("%s/%s: non-positive roofline values %+v", p.Workload, p.Arch, p)
		}
	}
	// The cycle models assume sufficient memory bandwidth; the roofline
	// shows where that assumption binds. On the big nets FlexFlow's low
	// Acc/Op must keep it comfortably under the roof.
	for _, w := range []string{"AlexNet", "VGG-11"} {
		for _, p := range pts {
			if p.Workload == w && p.Arch == "FlexFlow" && p.Achieved > p.Attainable {
				t.Errorf("%s: FlexFlow memory-bound (%.0f > %.0f) despite its DRAM reuse", w, p.Achieved, p.Attainable)
			}
		}
	}
	// FlexFlow's intensity leads on the big nets (its Fig. 17 advantage).
	get := func(w, a string) RooflinePoint {
		for _, p := range pts {
			if p.Workload == w && p.Arch == a {
				return p
			}
		}
		t.Fatalf("missing %s/%s", w, a)
		return RooflinePoint{}
	}
	for _, w := range []string{"AlexNet", "VGG-11"} {
		ff := get(w, "FlexFlow")
		for _, a := range ArchNames[:3] {
			if p := get(w, a); p.Intensity > ff.Intensity {
				t.Errorf("%s: %s intensity %.0f above FlexFlow %.0f", w, a, p.Intensity, ff.Intensity)
			}
		}
	}
}

func TestBandwidthSensitivity(t *testing.T) {
	pts, text := BandwidthSensitivity()
	if len(pts) != 5 || len(text) < 100 {
		t.Fatal("bad sweep")
	}
	// GOPS is non-decreasing in bandwidth and converges to the compute
	// figure at the top end.
	for j := range ArchNames {
		for i := 1; i < len(pts); i++ {
			if pts[i].GOPS[j] < pts[i-1].GOPS[j]-1e-9 {
				t.Errorf("%s: GOPS fell with more bandwidth", ArchNames[j])
			}
		}
		top := pts[len(pts)-1]
		if top.GOPS[j] > top.Compute[j]+1e-9 {
			t.Errorf("%s: wall-clock GOPS %.1f above compute roof %.1f", ArchNames[j], top.GOPS[j], top.Compute[j])
		}
	}
}
