package experiments

import (
	"fmt"

	"flexflow/internal/arch"
	"flexflow/internal/compiler"
	"flexflow/internal/core"
	"flexflow/internal/energy"
	"flexflow/internal/metrics"
	"flexflow/internal/nn"
	"flexflow/internal/rowstat"
	"flexflow/internal/workloads"
)

func energyDefault() energy.Params { return energy.Default65nm() }

func powerMW(b energy.Breakdown, cycles int64) float64 {
	return energy.PowerMW(b, cycles, ClockHz)
}

// AblationRow measures one FlexFlow configuration against the full
// machine on one workload.
type AblationRow struct {
	Workload string
	Config   string
	Cycles   int64
	Volume   int64 // buffer↔PE words
	Util     float64
}

// Ablations quantifies the design choices DESIGN.md calls out, across
// the six workloads on the 16×16 engine:
//
//   - full: RA+RS+IPDR on, DP-coupled compiler plan;
//   - no-RA/RS: overlapping neurons re-broadcast per row, vertical
//     buses stall when loads exceed D words/cycle;
//   - no-IPDR: kernels re-read per row-group instead of replicated;
//   - greedy-coupled: layer-by-layer coupling instead of the DP.
func Ablations() ([]AblationRow, string) {
	var rows []AblationRow
	tb := metrics.NewTable("Ablations — FlexFlow design choices (16x16)",
		"Workload", "Config", "Cycles", "Buf<->PE words", "Utilization")

	add := func(nw *nn.Network, name string, engine *core.Engine) {
		r := runModel(engine, nw)
		row := AblationRow{Workload: nw.Name, Config: name,
			Cycles: r.Cycles(), Volume: r.DataVolume(), Util: r.Utilization()}
		rows = append(rows, row)
		tb.Add(nw.Name, name,
			fmt.Sprintf("%d", row.Cycles),
			fmt.Sprintf("%d", row.Volume),
			metrics.Pct(row.Util))
	}

	for _, nw := range workloads.All() {
		full := FlexFlowFor(nw, 16)
		add(nw, "full", full)

		noRARS := FlexFlowFor(nw, 16)
		noRARS.RA, noRARS.RS = false, false
		add(nw, "no-RA/RS", noRARS)

		noIPDR := FlexFlowFor(nw, 16)
		noIPDR.IPDR = false
		add(nw, "no-IPDR", noIPDR)

		greedy := core.New(16)
		greedy.Chooser = greedyChooser(nw, 16)
		add(nw, "greedy-coupled", greedy)
	}
	return rows, tb.String()
}

// greedyChooser chains ChooseFactorsCoupled layer by layer — the
// planning strategy the DP replaces — precomputed per layer shape.
func greedyChooser(nw *nn.Network, d int) func(nn.ConvLayer) arch.T {
	byShape := make(map[nn.ConvLayer]arch.T)
	var prev arch.T
	for i, l := range nw.ConvLayers() {
		var f arch.T
		if i == 0 {
			f = arch.ChooseFactors(l, d, l.S)
		} else {
			f = arch.ChooseFactorsCoupled(l, d, l.S, prev)
		}
		byShape[l] = f
		prev = f
	}
	return func(l nn.ConvLayer) arch.T {
		if f, ok := byShape[l]; ok {
			return f
		}
		return arch.ChooseFactors(l, d, l.S)
	}
}

// StridedRow compares one AlexNet C1 representation on FlexFlow.
type StridedRow struct {
	Variant string
	Cycles  int64
	Volume  int64
	Util    float64
	DRAMOp  float64
}

// StridedAlexNet is an extension artifact: the Table 1 (shape-only,
// unit-stride) view of AlexNet C1 against its real geometry (11×11
// kernel at stride 4 over a 227-pixel input) on the 16×16 FlexFlow
// engine. The MAC count is identical; stride cuts window overlap, so
// traffic per MAC rises while occupancy holds — the engine absorbs the
// strided dataflow that the rigid baselines cannot express.
func StridedAlexNet() ([]StridedRow, string) {
	unit := workloads.AlexNet().ConvLayers()[0]
	strided := workloads.AlexNetStrided().ConvLayers()[0]

	var rows []StridedRow
	tb := metrics.NewTable("Extension — AlexNet C1, unit-stride shape vs real stride-4 geometry (FlexFlow 16x16)",
		"Variant", "Input px", "Cycles", "Buf<->PE words", "Utilization", "DRAM Acc/Op")
	for _, v := range []struct {
		name  string
		layer nn.ConvLayer
	}{
		{"Table-1 shape (stride 1)", unit},
		{"real C1 (stride 4)", strided},
	} {
		e := core.New(16)
		r := e.Model(v.layer)
		row := StridedRow{
			Variant: v.name,
			Cycles:  r.Cycles,
			Volume:  r.DataVolume(),
			Util:    r.Utilization(),
			DRAMOp:  float64(r.DRAMReads+r.DRAMWrites) / float64(2*r.MACs),
		}
		rows = append(rows, row)
		tb.Add(v.name,
			fmt.Sprintf("%d", v.layer.InSize()),
			fmt.Sprintf("%d", row.Cycles),
			fmt.Sprintf("%d", row.Volume),
			metrics.Pct(row.Util),
			fmt.Sprintf("%.4f", row.DRAMOp))
	}
	return rows, tb.String()
}

// FiveWay is an extension figure: the paper's four architectures plus
// our row-stationary (Eyeriss-like) engine at a 16×16-comparable scale,
// across the six workloads. RS was the strongest contemporary
// alternative (§7); placing it on the same axes shows where FlexFlow's
// flexibility matters even against a well-reused fixed dataflow.
func FiveWay() ([]WorkloadSeries, string) {
	names := append(append([]string{}, ArchNames...), "Row-Stationary")
	nws := workloads.All()
	var series []WorkloadSeries
	ut := metrics.NewTable("Extension — five-way utilization (16x16-comparable)",
		append([]string{"Workload"}, names...)...)
	gp := metrics.NewTable("Extension — five-way performance, GOPS @ 1 GHz",
		append([]string{"Workload"}, names...)...)
	for _, nw := range nws {
		engines := EnginesFor(nw, 16)
		engines = append(engines, rowstat.New(16, 16))
		vals := make([]float64, len(engines))
		uRow := []string{nw.Name}
		gRow := []string{nw.Name}
		for j, e := range engines {
			r := runModel(e, nw)
			vals[j] = r.Utilization()
			uRow = append(uRow, metrics.Pct(vals[j]))
			gRow = append(gRow, fmt.Sprintf("%.0f", r.GOPS(ClockHz)))
		}
		series = append(series, WorkloadSeries{Workload: nw.Name, Values: vals})
		ut.Add(uRow...)
		gp.Add(gRow...)
	}
	return series, ut.String() + "\n" + gp.String()
}

// BalancedPoint is one λ setting of the cycles/traffic trade-off.
type BalancedPoint struct {
	Lambda  float64
	Cycles  int64
	Volume  int64
	Util    float64
	PowerMW float64
}

// BalancedSweep sweeps the PlanBalanced λ knob on one workload: the
// Pareto curve between latency (cycles) and data movement that the
// traffic-aware compiler exposes. λ = 0 is the paper's cycles-only
// objective.
func BalancedSweep(name string) ([]BalancedPoint, string) {
	nw := workloads.ByName(name)
	if nw == nil {
		return nil, "unknown workload " + name
	}
	p := energyDefault()
	var pts []BalancedPoint
	tb := metrics.NewTable(
		fmt.Sprintf("Balanced-plan sweep on %s (16x16): cycles vs data movement", name),
		"lambda", "Cycles", "Buf<->PE words", "Utilization", "Power (mW)")
	for _, lambda := range []float64{0, 10, 50, 200, 1000} {
		e := core.New(16)
		e.Chooser = compiler.PlanBalanced(nw, 16, lambda).Chooser()
		r, b := runBilled(e, nw, p, 16)
		pt := BalancedPoint{
			Lambda:  lambda,
			Cycles:  r.Cycles(),
			Volume:  r.DataVolume(),
			Util:    r.Utilization(),
			PowerMW: powerMW(b, r.Cycles()),
		}
		pts = append(pts, pt)
		tb.Add(fmt.Sprintf("%.0f", lambda),
			fmt.Sprintf("%d", pt.Cycles),
			fmt.Sprintf("%d", pt.Volume),
			metrics.Pct(pt.Util),
			fmt.Sprintf("%.0f", pt.PowerMW))
	}
	return pts, tb.String() + "\nA YES row means the cycle model's performance would be DRAM-limited\n" +
		"at this bandwidth — the paper's numbers implicitly assume enough\n" +
		"bandwidth; FlexFlow's data reuse keeps the big nets under the roof.\n"
}

// RooflinePoint places one workload×architecture pair on the roofline:
// operational intensity (ops per DRAM byte) against achieved and
// attainable GOPS under a DRAM bandwidth budget.
type RooflinePoint struct {
	Workload   string
	Arch       string
	Intensity  float64 // ops / DRAM byte
	Achieved   float64 // GOPS from the cycle model
	Attainable float64 // min(peak, intensity × bandwidth)
}

// rooflineBandwidthGBs is the assumed DRAM bandwidth: a single DDR3
// channel of the paper's era (~12.8 GB/s).
const rooflineBandwidthGBs = 12.8

// Roofline is an extension artifact: the classic roofline placement of
// every architecture on every workload. FlexFlow's low DRAM Acc/Op
// (Table 7) buys it high operational intensity, so its high utilization
// is actually *servable* by one memory channel — the quantitative link
// between Fig. 17 and Fig. 16.
func Roofline() ([]RooflinePoint, string) {
	nws, results := RunAll(16)
	var pts []RooflinePoint
	tb := metrics.NewTable(
		fmt.Sprintf("Extension — roofline @ %.1f GB/s DRAM, 1 GHz", rooflineBandwidthGBs),
		"Workload", "Architecture", "Ops/byte", "Achieved GOPS", "Attainable GOPS", "Memory-bound?")
	for i, nw := range nws {
		for j, name := range ArchNames {
			r := results[i][j]
			bytes := float64(r.DRAMAccesses()) * 2
			ops := float64(2 * r.MACs())
			intensity := ops / bytes
			peak := 2 * float64(r.Layers[0].PEs)
			attainable := intensity * rooflineBandwidthGBs
			if attainable > peak {
				attainable = peak
			}
			pt := RooflinePoint{
				Workload: nw.Name, Arch: name,
				Intensity:  intensity,
				Achieved:   r.GOPS(ClockHz),
				Attainable: attainable,
			}
			pts = append(pts, pt)
			bound := "no"
			if pt.Achieved > pt.Attainable {
				bound = "YES"
			}
			tb.Add(nw.Name, name,
				fmt.Sprintf("%.0f", pt.Intensity),
				fmt.Sprintf("%.0f", pt.Achieved),
				fmt.Sprintf("%.0f", pt.Attainable),
				bound)
		}
	}
	return pts, tb.String()
}

// BandwidthPoint is one DRAM-bandwidth setting of the sensitivity sweep.
type BandwidthPoint struct {
	GBs     float64
	GOPS    []float64 // wall-clock GOPS per ArchNames entry
	Compute []float64 // pure-compute GOPS (bandwidth-independent)
}

// BandwidthSensitivity is an extension artifact: effective whole-network
// GOPS on AlexNet when DRAM traffic must stream through a finite
// bandwidth with double-buffered overlap. Architectures that re-fetch
// from DRAM (low operational intensity) fall off first; FlexFlow's
// reuse keeps its compute roof reachable at realistic bandwidths.
func BandwidthSensitivity() ([]BandwidthPoint, string) {
	nw := workloads.AlexNet()
	engines := EnginesFor(nw, 16)
	runs := make([]arch.RunResult, len(engines))
	for j, e := range engines {
		runs[j] = runModel(e, nw)
	}
	var pts []BandwidthPoint
	tb := metrics.NewTable("Extension — DRAM bandwidth sensitivity (AlexNet, wall-clock GOPS)",
		append([]string{"Bandwidth"}, ArchNames...)...)
	for _, gbs := range []float64{3.2, 6.4, 12.8, 25.6, 51.2} {
		wordsPerCycle := gbs / 2.0 // GB/s at 1 GHz = bytes/cycle; 2 bytes/word
		pt := BandwidthPoint{GBs: gbs,
			GOPS:    make([]float64, len(engines)),
			Compute: make([]float64, len(engines))}
		row := []string{fmt.Sprintf("%.1f GB/s", gbs)}
		for j := range engines {
			wall, err := runs[j].WallClock(wordsPerCycle)
			if err != nil {
				// The bandwidth list above is hardcoded positive, so an
				// error here is an invariant violation.
				panic(err)
			}
			pt.GOPS[j] = float64(2*runs[j].MACs()) / float64(wall)
			pt.Compute[j] = runs[j].GOPS(ClockHz)
			row = append(row, fmt.Sprintf("%.0f", pt.GOPS[j]))
		}
		pts = append(pts, pt)
		tb.Add(row...)
	}
	return pts, tb.String()
}
