// Package experiments regenerates every table and figure of the
// paper's evaluation (Section 6). Each generator returns typed data
// plus a rendered text report; the repository-level benchmarks and the
// flexbench command drive these generators, and EXPERIMENTS.md records
// the outputs against the paper's numbers.
package experiments

import (
	"fmt"
	"sync"

	"flexflow/internal/arch"
	"flexflow/internal/compiler"
	"flexflow/internal/core"
	"flexflow/internal/mapping2d"
	"flexflow/internal/nn"
	"flexflow/internal/systolic"
	"flexflow/internal/tiling"
	"flexflow/internal/workloads"
)

// ClockHz is the evaluation clock: all baselines run at 1 GHz (§6.2.3).
const ClockHz = 1e9

// ArchNames lists the four architectures in the paper's order.
var ArchNames = []string{"Systolic", "2D-Mapping", "Tiling", "FlexFlow"}

// SystolicFor builds the paper's Systolic baseline at the given
// engine scale (array-edge equivalent): K₀×K₀ arrays with K₀ = 6
// (11 for AlexNet, §6.1.1), replicated to fill the scale² PE budget.
func SystolicFor(nw *nn.Network, scale int) *systolic.Engine {
	k0 := 6
	if nw != nil && nw.Name == "AlexNet" {
		k0 = 11
	}
	arrays := scale * scale / (k0 * k0)
	if arrays < 1 {
		arrays = 1
	}
	return systolic.New(k0, arrays)
}

// FlexFlowFor builds a FlexFlow engine configured by the compiler's
// coupled plan for the workload.
func FlexFlowFor(nw *nn.Network, scale int) *core.Engine {
	e := core.New(scale)
	if nw != nil {
		e.Chooser = compiler.Plan(nw, scale).Chooser()
	}
	return e
}

// EnginesFor returns the four §6.1.1 baselines at the given scale,
// keyed by ArchNames order.
func EnginesFor(nw *nn.Network, scale int) []arch.Engine {
	return []arch.Engine{
		SystolicFor(nw, scale),
		mapping2d.New(scale),
		tiling.New(scale, scale),
		FlexFlowFor(nw, scale),
	}
}

// RunAll evaluates every workload on every architecture at the given
// scale, returning results indexed [workload][arch]. Workloads are
// independent, so they run concurrently (the dominant cost is the
// compiler's factor search for the big nets).
func RunAll(scale int) ([]*nn.Network, [][]arch.RunResult) {
	nws := workloads.All()
	out := make([][]arch.RunResult, len(nws))
	var wg sync.WaitGroup
	for i, nw := range nws {
		wg.Add(1)
		go func(i int, nw *nn.Network) {
			defer wg.Done()
			engines := EnginesFor(nw, scale)
			out[i] = make([]arch.RunResult, len(engines))
			for j, e := range engines {
				out[i][j] = arch.RunModel(e, nw)
			}
		}(i, nw)
	}
	wg.Wait()
	return nws, out
}

// EdgeOf returns the physical array-edge proxy used for wire-length
// dependent energy: the scale the engine was built at.
func EdgeOf(scale int) int { return scale }

func fmtFactor(f arch.T) string {
	return fmt.Sprintf("<%d,%d,%d,%d,%d,%d>", f.Tm, f.Tn, f.Tr, f.Tc, f.Ti, f.Tj)
}
