// Package experiments regenerates every table and figure of the
// paper's evaluation (Section 6). Each generator returns typed data
// plus a rendered text report; the repository-level benchmarks and the
// flexbench command drive these generators, and EXPERIMENTS.md records
// the outputs against the paper's numbers.
package experiments

import (
	"context"
	"fmt"

	"flexflow/internal/arch"
	"flexflow/internal/compiler"
	"flexflow/internal/core"
	"flexflow/internal/energy"
	"flexflow/internal/mapping2d"
	"flexflow/internal/nn"
	"flexflow/internal/pipeline"
	"flexflow/internal/systolic"
	"flexflow/internal/tiling"
	"flexflow/internal/workloads"
)

// ClockHz is the evaluation clock: all baselines run at 1 GHz (§6.2.3).
const ClockHz = 1e9

// Workers is the scheduler pool width the generators use for
// independent evaluation units (0 = GOMAXPROCS, 1 = serial). The
// flexbench and flexreport -workers flags set it; every generator's
// output is bit-identical at any setting.
var Workers int

// Context, when non-nil, threads cancellation into every generator's
// pipeline run — the watchdog path the flexbench -timeout flag
// reaches. The generators evaluate fixed, known-good workloads, so a
// run error is either this context firing (sim.ErrCancelled, wrapped
// in the panic value for the CLI boundary to classify) or a generator
// bug; both panic, as the goldens' invariants elsewhere do.
var Context context.Context

// runModel evaluates a network through the execution pipeline. The
// panic value is a wrapped error so a recover boundary can classify a
// watchdog abort (errors.Is sim.ErrCancelled/ErrBudget) apart from a
// genuine generator bug.
func runModel(e arch.Engine, nw *nn.Network) arch.RunResult {
	r, err := pipeline.RunModel(e, nw, pipeline.Options{Workers: 1, Context: Context})
	if err != nil {
		panic(fmt.Errorf("experiments: %s on %s: %w", e.Name(), nw.Name, err))
	}
	return r
}

// runBilled is runModel plus the energy-billing stage of the pipeline.
func runBilled(e arch.Engine, nw *nn.Network, p energy.Params, edge int) (arch.RunResult, energy.Breakdown) {
	r, b, err := pipeline.RunBilled(e, nw, p, edge, pipeline.Options{Workers: 1, Context: Context})
	if err != nil {
		panic(fmt.Errorf("experiments: %s on %s: %w", e.Name(), nw.Name, err))
	}
	return r, b
}

// ArchNames lists the four architectures in the paper's order.
var ArchNames = []string{"Systolic", "2D-Mapping", "Tiling", "FlexFlow"}

// SystolicFor builds the paper's Systolic baseline at the given
// engine scale (array-edge equivalent): K₀×K₀ arrays with K₀ = 6
// (11 for AlexNet, §6.1.1), replicated to fill the scale² PE budget.
func SystolicFor(nw *nn.Network, scale int) *systolic.Engine {
	k0 := 6
	if nw != nil && nw.Name == "AlexNet" {
		k0 = 11
	}
	arrays := scale * scale / (k0 * k0)
	if arrays < 1 {
		arrays = 1
	}
	return systolic.New(k0, arrays)
}

// FlexFlowFor builds a FlexFlow engine configured by the compiler's
// coupled plan for the workload.
func FlexFlowFor(nw *nn.Network, scale int) *core.Engine {
	e := core.New(scale)
	if nw != nil {
		e.Chooser = compiler.Plan(nw, scale).Chooser()
	}
	return e
}

// EnginesFor returns the four §6.1.1 baselines at the given scale,
// keyed by ArchNames order.
func EnginesFor(nw *nn.Network, scale int) []arch.Engine {
	return []arch.Engine{
		SystolicFor(nw, scale),
		mapping2d.New(scale),
		tiling.New(scale, scale),
		FlexFlowFor(nw, scale),
	}
}

// RunAll evaluates every workload on every architecture at the given
// scale, returning results indexed [workload][arch]. The
// (workload, arch) pairs are independent, so they fan across the
// scheduler at the package Workers setting (the dominant cost is the
// compiler's factor search for the big nets); results merge back in
// index order, identical at any width.
func RunAll(scale int) ([]*nn.Network, [][]arch.RunResult) {
	nws := workloads.All()
	out := make([][]arch.RunResult, len(nws))
	for i := range out {
		out[i] = make([]arch.RunResult, len(ArchNames))
	}
	sched := pipeline.Scheduler{Workers: Workers}
	err := sched.Map(len(nws)*len(ArchNames), func(idx int) error {
		i, j := idx/len(ArchNames), idx%len(ArchNames)
		out[i][j] = runModel(engineFor(nws[i], scale, j), nws[i])
		return nil
	})
	if err != nil {
		panic(fmt.Errorf("experiments: %w", err))
	}
	return nws, out
}

// engineFor builds the j-th ArchNames engine for a workload.
func engineFor(nw *nn.Network, scale, j int) arch.Engine {
	switch j {
	case 0:
		return SystolicFor(nw, scale)
	case 1:
		return mapping2d.New(scale)
	case 2:
		return tiling.New(scale, scale)
	default:
		return FlexFlowFor(nw, scale)
	}
}

// EdgeOf returns the physical array-edge proxy used for wire-length
// dependent energy: the scale the engine was built at.
func EdgeOf(scale int) int { return scale }

func fmtFactor(f arch.T) string {
	return fmt.Sprintf("<%d,%d,%d,%d,%d,%d>", f.Tm, f.Tn, f.Tr, f.Tc, f.Ti, f.Tj)
}
