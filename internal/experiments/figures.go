package experiments

import (
	"fmt"
	"strings"

	"flexflow/internal/energy"
	"flexflow/internal/metrics"
	"flexflow/internal/workloads"
)

// WorkloadSeries is one figure's data: per-workload values for each
// architecture (Values is keyed by ArchNames order).
type WorkloadSeries struct {
	Workload string
	Values   []float64
}

// Figure1 reproduces the motivation figure: achievable performance of
// the three rigid baselines on LeNet-5, normalized to their nominal
// (peak) GOPS.
func Figure1() ([]WorkloadSeries, string) {
	nw := workloads.LeNet5()
	engines := EnginesFor(nw, 16)[:3] // the three baselines
	var series []WorkloadSeries
	tb := metrics.NewTable("Figure 1 — Achievable vs nominal performance, LeNet-5 (16x16-scale engines)",
		"Architecture", "Nominal GOPS", "Achieved GOPS", "Achieved/Nominal")
	var labels []string
	var ratios []float64
	for _, e := range engines {
		res := runModel(e, nw)
		nominal := 2 * float64(e.PEs()) // 2 ops/MAC at 1 GHz
		achieved := res.GOPS(ClockHz)
		ratio := achieved / nominal
		series = append(series, WorkloadSeries{Workload: e.Name(), Values: []float64{nominal, achieved, ratio}})
		tb.AddF(e.Name(), nominal, achieved, metrics.Pct(ratio))
		labels = append(labels, e.Name())
		ratios = append(ratios, ratio)
	}
	return series, tb.String() + "\n" + metrics.BarGroup("Achieved/Nominal", labels, ratios, 40)
}

// Figure15 reproduces the computing-resource-utilization comparison:
// four architectures across the six workloads.
func Figure15() ([]WorkloadSeries, string) {
	nws, results := RunAll(16)
	var series []WorkloadSeries
	tb := metrics.NewTable("Figure 15 — Computing resource utilization (16x16 scale)",
		append([]string{"Workload"}, ArchNames...)...)
	for i, nw := range nws {
		vals := make([]float64, len(ArchNames))
		cells := []string{nw.Name}
		for j := range ArchNames {
			vals[j] = results[i][j].Utilization()
			cells = append(cells, metrics.Pct(vals[j]))
		}
		series = append(series, WorkloadSeries{Workload: nw.Name, Values: vals})
		tb.Add(cells...)
	}
	return series, tb.String()
}

// Figure16 reproduces the performance comparison (GOPS at 1 GHz).
func Figure16() ([]WorkloadSeries, string) {
	nws, results := RunAll(16)
	var series []WorkloadSeries
	tb := metrics.NewTable("Figure 16 — Performance, GOPS @ 1 GHz (16x16 scale)",
		append([]string{"Workload"}, ArchNames...)...)
	var bars strings.Builder
	for i, nw := range nws {
		vals := make([]float64, len(ArchNames))
		cells := []string{nw.Name}
		for j := range ArchNames {
			vals[j] = results[i][j].GOPS(ClockHz)
			cells = append(cells, fmt.Sprintf("%.1f", vals[j]))
		}
		series = append(series, WorkloadSeries{Workload: nw.Name, Values: vals})
		tb.Add(cells...)
		bars.WriteString(metrics.BarGroup(nw.Name, ArchNames, vals, 40))
	}
	return series, tb.String() + "\n" + bars.String()
}

// Figure17 reproduces the data-reusability comparison: total volume of
// data transmitted between on-chip buffers and PEs, in MB.
func Figure17() ([]WorkloadSeries, string) {
	nws, results := RunAll(16)
	var series []WorkloadSeries
	tb := metrics.NewTable("Figure 17 — Data transmission volume, MB (16x16 scale)",
		append([]string{"Workload"}, ArchNames...)...)
	for i, nw := range nws {
		vals := make([]float64, len(ArchNames))
		cells := []string{nw.Name}
		for j := range ArchNames {
			vals[j] = metrics.Words2MB(results[i][j].DataVolume())
			cells = append(cells, fmt.Sprintf("%.2f", vals[j]))
		}
		series = append(series, WorkloadSeries{Workload: nw.Name, Values: vals})
		tb.Add(cells...)
	}
	return series, tb.String()
}

// Figure18Data holds the three §6.2.5 panels for one workload.
type Figure18Data struct {
	Workload   string
	Efficiency []float64 // GOPS/W (Fig. 18a)
	EnergyMJ   []float64 // on-chip energy in mJ (Fig. 18b; millijoules × 10⁻³ for small nets)
	PowerMW    []float64 // average power in mW (Fig. 18c)
}

// Figure18 reproduces the power-efficiency, energy and power panels.
func Figure18() ([]Figure18Data, string) {
	nws, results := RunAll(16)
	p := energy.Default65nm()
	var data []Figure18Data
	eff := metrics.NewTable("Figure 18a — Power efficiency, GOPS/W", append([]string{"Workload"}, ArchNames...)...)
	enr := metrics.NewTable("Figure 18b — On-chip energy, µJ", append([]string{"Workload"}, ArchNames...)...)
	pow := metrics.NewTable("Figure 18c — Average power, mW", append([]string{"Workload"}, ArchNames...)...)
	for i, nw := range nws {
		d := Figure18Data{Workload: nw.Name,
			Efficiency: make([]float64, len(ArchNames)),
			EnergyMJ:   make([]float64, len(ArchNames)),
			PowerMW:    make([]float64, len(ArchNames))}
		effC := []string{nw.Name}
		enrC := []string{nw.Name}
		powC := []string{nw.Name}
		for j := range ArchNames {
			r := results[i][j]
			b := p.RunEnergy(r, EdgeOf(16))
			powerMW := energy.PowerMW(b, r.Cycles(), ClockHz)
			gops := r.GOPS(ClockHz)
			d.PowerMW[j] = powerMW
			d.Efficiency[j] = energy.EfficiencyGOPSPerW(gops, powerMW)
			d.EnergyMJ[j] = b.ChipPJ() * 1e-6 // pJ → µJ
			effC = append(effC, fmt.Sprintf("%.0f", d.Efficiency[j]))
			enrC = append(enrC, fmt.Sprintf("%.1f", d.EnergyMJ[j]))
			powC = append(powC, fmt.Sprintf("%.0f", d.PowerMW[j]))
		}
		data = append(data, d)
		eff.Add(effC...)
		enr.Add(enrC...)
		pow.Add(powC...)
	}
	return data, eff.String() + "\n" + enr.String() + "\n" + pow.String()
}

// Figure19Data is one scalability point.
type Figure19Data struct {
	Scale       int // array edge (8, 16, 32, 64)
	Utilization []float64
	PowerMW     []float64
	AreaMM2     []float64
}

// figure19LocalBytes gives the per-PE local storage of each baseline
// for the area model.
var figure19LocalBytes = []int{4, 8, 2, 512}

// Figure19 reproduces the scalability study on AlexNet: utilization,
// power and area at 8×8 … 64×64 PEs.
func Figure19() ([]Figure19Data, string) {
	nw := workloads.AlexNet()
	p := energy.Default65nm()
	scales := []int{8, 16, 32, 64}
	var data []Figure19Data
	ut := metrics.NewTable("Figure 19a — Utilization vs scale (AlexNet)", append([]string{"Scale"}, ArchNames...)...)
	pw := metrics.NewTable("Figure 19b — Power vs scale, mW (AlexNet)", append([]string{"Scale"}, ArchNames...)...)
	ar := metrics.NewTable("Figure 19c — Area vs scale, mm²", append([]string{"Scale"}, ArchNames...)...)
	for _, s := range scales {
		d := Figure19Data{Scale: s,
			Utilization: make([]float64, len(ArchNames)),
			PowerMW:     make([]float64, len(ArchNames)),
			AreaMM2:     make([]float64, len(ArchNames))}
		utC := []string{fmt.Sprintf("%dx%d", s, s)}
		pwC := []string{fmt.Sprintf("%dx%d", s, s)}
		arC := []string{fmt.Sprintf("%dx%d", s, s)}
		for j, e := range EnginesFor(nw, s) {
			r, b := runBilled(e, nw, p, EdgeOf(s))
			d.Utilization[j] = r.Utilization()
			d.PowerMW[j] = energy.PowerMW(b, r.Cycles(), ClockHz)
			d.AreaMM2[j] = energy.Area(e.Name(), e.PEs(), figure19LocalBytes[j], 64*1024)
			utC = append(utC, metrics.Pct(d.Utilization[j]))
			pwC = append(pwC, fmt.Sprintf("%.0f", d.PowerMW[j]))
			arC = append(arC, fmt.Sprintf("%.2f", d.AreaMM2[j]))
		}
		data = append(data, d)
		ut.Add(utC...)
		pw.Add(pwC...)
		ar.Add(arC...)
	}
	return data, ut.String() + "\n" + pw.String() + "\n" + ar.String()
}

// InterconnectPowerData is the §6.2.5 routing-network power share of
// FlexFlow at one scale.
type InterconnectPowerData struct {
	Scale int
	Share float64
}

// InterconnectPower reproduces the §6.2.5 observation: the share of
// FlexFlow's power spent in the routing network declines gently with
// the PE scale (the paper reports 28.3% at 16×16, 26.0% at 32×32,
// 21.3% at 64×64; our bus model includes the local-store-fed datapath
// so the absolute share is lower, but the declining trend is the
// claim).
func InterconnectPower() ([]InterconnectPowerData, string) {
	nw := workloads.AlexNet()
	p := energy.Default65nm()
	var data []InterconnectPowerData
	tb := metrics.NewTable("§6.2.5 — FlexFlow interconnect power share (AlexNet)",
		"Scale", "Interconnect", "Total chip", "Share")
	for _, s := range []int{16, 32, 64} {
		e := FlexFlowFor(nw, s)
		_, b := runBilled(e, nw, p, EdgeOf(s))
		share := b.Interconnect / b.ChipPJ()
		data = append(data, InterconnectPowerData{Scale: s, Share: share})
		tb.Add(fmt.Sprintf("%dx%d", s, s),
			fmt.Sprintf("%.2e pJ", b.Interconnect),
			fmt.Sprintf("%.2e pJ", b.ChipPJ()),
			metrics.Pct(share))
	}
	return data, tb.String()
}
