package experiments

// Golden-file regression tests: every artifact's rendered text is
// pinned under testdata/golden. Any model or calibration change shows
// up as a diff here and must be refreshed deliberately with
//
//	go test ./internal/experiments -run TestGolden -update
//
// (and EXPERIMENTS.md updated to match).

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden artifact files")

func goldenGenerators() map[string]func() string {
	return map[string]func() string{
		"figure01":  func() string { _, s := Figure1(); return s },
		"table03":   func() string { _, s := Table3(); return s },
		"table04":   func() string { _, s := Table4(); return s },
		"figure14":  func() string { _, s := AreaReport(); return s },
		"figure15":  func() string { _, s := Figure15(); return s },
		"figure16":  func() string { _, s := Figure16(); return s },
		"figure17":  func() string { _, s := Figure17(); return s },
		"figure18":  func() string { _, s := Figure18(); return s },
		"table06":   func() string { _, s := Table6(); return s },
		"figure19":  func() string { _, s := Figure19(); return s },
		"table07":   func() string { _, s := Table7(); return s },
		"sec625":    func() string { _, s := InterconnectPower(); return s },
		"ablations": func() string { _, s := Ablations(); return s },
		"strided":   func() string { _, s := StridedAlexNet(); return s },
		"fiveway":   func() string { _, s := FiveWay(); return s },
		"roofline":  func() string { _, s := Roofline(); return s },
		"bandwidth": func() string { _, s := BandwidthSensitivity(); return s },
	}
}

func TestGoldenArtifacts(t *testing.T) {
	for name, gen := range goldenGenerators() {
		name, gen := name, gen
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			got := gen()
			path := filepath.Join("testdata", "golden", name+".txt")
			if *update {
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("%s drifted from its golden file; if the change is intended, run with -update and refresh EXPERIMENTS.md", name)
			}
		})
	}
}
