package experiments

import (
	"fmt"

	"flexflow/internal/arch"
	"flexflow/internal/compiler"
	"flexflow/internal/energy"
	"flexflow/internal/mapping2d"
	"flexflow/internal/metrics"
	"flexflow/internal/nn"
	"flexflow/internal/rowstat"
	"flexflow/internal/systolic"
	"flexflow/internal/tiling"
	"flexflow/internal/workloads"
)

// Table3Row is one cross-layer utilization measurement: running layer
// "Run" on the hardware optimized for layer "Opt", for each of the
// three rigid baselines, normalized so the optimized layer on its own
// hardware is 100% (the paper's normalization).
type Table3Row struct {
	Workload string
	Case     string // "C3 on C1-opt" or "C1 on C3-opt"
	Systolic float64
	Mapping  float64
	Tiling   float64
}

// table3Opt builds each baseline optimized for the given layer:
// Systolic sized to the layer's kernel, 2D-Mapping to its map size,
// Tiling to its feature-map counts (§3.4's per-layer parameterization).
func table3Engines(opt nn.ConvLayer) []arch.Engine {
	return []arch.Engine{
		systolic.New(opt.K, 1),
		mapping2d.New(opt.S),
		tiling.New(opt.M, opt.N),
	}
}

// Table3 reproduces the cross-layer hardware-utilization study for the
// four small workloads (PV, FR, LeNet-5, HG).
func Table3() ([]Table3Row, string) {
	var rows []Table3Row
	tb := metrics.NewTable("Table 3 — Cross-layer hardware utilization (normalized, %)",
		"Workload", "Case", "Systolic", "2D-Map.", "Tiling")
	for _, name := range []string{"PV", "FR", "LeNet-5", "HG"} {
		nw := workloads.ByName(name)
		convs := nw.ConvLayers()
		c1, c3 := convs[0], convs[1]
		for _, cse := range []struct {
			label    string
			opt, run nn.ConvLayer
		}{
			{"C3 on C1-opt", c1, c3},
			{"C1 on C3-opt", c3, c1},
		} {
			row := Table3Row{Workload: name, Case: cse.label}
			vals := make([]float64, 3)
			optEngines := table3Engines(cse.opt)
			ownEngines := table3Engines(cse.run)
			for i := range optEngines {
				// Normalize the cross-configured run by the same layer
				// on its own optimal hardware (the paper's "C1 on
				// C1-opt is normalized to 100%").
				cross := optEngines[i].Model(cse.run).Utilization()
				own := ownEngines[i].Model(cse.run).Utilization()
				if own > 0 {
					vals[i] = cross / own
				}
			}
			row.Systolic, row.Mapping, row.Tiling = vals[0], vals[1], vals[2]
			rows = append(rows, row)
			tb.Add(name, cse.label, metrics.Pct(vals[0]), metrics.Pct(vals[1]), metrics.Pct(vals[2]))
		}
	}
	return rows, tb.String()
}

// Table4Row is the compiler's factor choice for one layer, alongside
// the paper's published choice.
type Table4Row struct {
	Workload string
	Layer    string
	Ours     arch.T
	OursU    float64
	Paper    arch.T
	PaperU   float64 // -1 when the paper's entry is infeasible
}

// paperTable4 pins the published unrolling factors.
var paperTable4 = map[string]map[string]arch.T{
	"PV": {
		"C1": {Tm: 8, Tn: 1, Tr: 1, Tc: 2, Ti: 2, Tj: 6},
		"C3": {Tm: 3, Tn: 8, Tr: 1, Tc: 5, Ti: 1, Tj: 2},
	},
	"FR": {
		"C1": {Tm: 4, Tn: 1, Tr: 1, Tc: 4, Ti: 3, Tj: 15},
		"C3": {Tm: 16, Tn: 4, Tr: 1, Tc: 1, Ti: 1, Tj: 4},
	},
	"LeNet-5": {
		"C1": {Tm: 3, Tn: 1, Tr: 1, Tc: 5, Ti: 3, Tj: 5},
		"C3": {Tm: 16, Tn: 3, Tr: 1, Tc: 1, Ti: 1, Tj: 5},
	},
	"HG": {
		"C1": {Tm: 3, Tn: 1, Tr: 1, Tc: 5, Ti: 3, Tj: 5},
		"C3": {Tm: 4, Tn: 2, Tr: 1, Tc: 4, Ti: 2, Tj: 4},
	},
}

// Table4 reproduces the unrolling-factor determination for the four
// small workloads on a 16×16 engine.
func Table4() ([]Table4Row, string) {
	var rows []Table4Row
	tb := metrics.NewTable("Table 4 — Unrolling factors <Tm,Tn,Tr,Tc,Ti,Tj> at 16x16",
		"Workload", "Layer", "Ours", "U(ours)", "Paper", "U(paper)")
	for _, name := range []string{"PV", "FR", "LeNet-5", "HG"} {
		nw := workloads.ByName(name)
		prog := compiler.Plan(nw, 16)
		for _, lp := range prog.Plans {
			pf, published := paperTable4[name][lp.Layer.Name]
			paperU := -1.0
			if published && pf.Validate(lp.Layer, 16, lp.Layer.S) == nil {
				paperU = arch.TotalUtilization(lp.Layer, pf, 16)
			}
			rows = append(rows, Table4Row{
				Workload: name, Layer: lp.Layer.Name,
				Ours: lp.Factors, OursU: lp.Utilization,
				Paper: pf, PaperU: paperU,
			})
			paperFactors, paperCell := "—", "—"
			if published {
				paperFactors = fmtFactor(pf)
				paperCell = "infeasible" // e.g. FR C1's Tj=15 > K=5
				if paperU >= 0 {
					paperCell = metrics.Pct(paperU)
				}
			}
			tb.Add(name, lp.Layer.Name, fmtFactor(lp.Factors), metrics.Pct(lp.Utilization),
				paperFactors, paperCell)
		}
	}
	return rows, tb.String()
}

// Table6Row is the power breakdown of FlexFlow on one workload,
// following the paper's component split: neuron-input buffer,
// neuron-output buffer, kernel buffer, and the computing engine
// (PEs + local stores + interconnect + leakage).
type Table6Row struct {
	Workload string
	NeinMW   float64
	NeoutMW  float64
	KerinMW  float64
	ComMW    float64
}

// Total returns the summed chip power.
func (r Table6Row) Total() float64 { return r.NeinMW + r.NeoutMW + r.KerinMW + r.ComMW }

// Table6 reproduces the FlexFlow power breakdown across the six
// workloads.
func Table6() ([]Table6Row, string) {
	p := energy.Default65nm()
	var rows []Table6Row
	tb := metrics.NewTable("Table 6 — FlexFlow power breakdown by component (16x16)",
		"Workload", "P_nein (mW)", "P_neout (mW)", "P_kerin (mW)", "P_com (mW)", "P_com share")
	for _, nw := range workloads.All() {
		e := FlexFlowFor(nw, 16)
		r, b := runBilled(e, nw, p, EdgeOf(16))
		seconds := float64(r.Cycles()) / ClockHz
		toMW := func(pj float64) float64 { return pj * 1e-12 / seconds * 1e3 }
		row := Table6Row{
			Workload: nw.Name,
			NeinMW:   toMW(b.NeuronIn),
			NeoutMW:  toMW(b.NeuronOut),
			KerinMW:  toMW(b.KernelIn),
			ComMW:    toMW(b.Compute + b.Interconnect + b.Leakage),
		}
		rows = append(rows, row)
		tb.Add(nw.Name,
			fmt.Sprintf("%.0f", row.NeinMW),
			fmt.Sprintf("%.0f", row.NeoutMW),
			fmt.Sprintf("%.0f", row.KerinMW),
			fmt.Sprintf("%.0f", row.ComMW),
			metrics.Pct(row.ComMW/row.Total()))
	}
	return rows, tb.String()
}

// Table7Row is one accelerator in the cross-accelerator comparison.
type Table7Row struct {
	Name       string
	Process    string
	PEs        int
	LocalStore string
	BufferKB   int
	AreaMM2    float64
	DRAMAccOp  float64 // -1 when unpublished
}

// Table7 reproduces the comparison with DianNao and Eyeriss. The two
// published rows carry the papers' spec constants; FlexFlow's area and
// DRAM accesses per operation are measured from our models on AlexNet.
// As a cross-check, the Eyeriss row also gets a *measured* Acc/Op from
// our own row-stationary engine (internal/rowstat) at Eyeriss's 12×14,
// 108 KB configuration — landing near the published 0.006 validates the
// DRAM model the FlexFlow figure relies on.
func Table7() ([]Table7Row, string) {
	nw := workloads.AlexNet()
	e := FlexFlowFor(nw, 16)
	r := runModel(e, nw)
	accOp := float64(r.DRAMAccesses()) / float64(2*r.MACs())

	rs := rowstat.NewEyeriss()
	rsRun := runModel(rs, nw)
	rsAccOp := float64(rsRun.DRAMAccesses()) / float64(2*rsRun.MACs())

	rows := []Table7Row{
		{Name: "DianNao", Process: "65nm", PEs: 256, LocalStore: "NA", BufferKB: 36, AreaMM2: 3.02, DRAMAccOp: -1},
		{Name: "Eyeriss", Process: "65nm", PEs: 168, LocalStore: "512B", BufferKB: 108, AreaMM2: 16, DRAMAccOp: 0.006},
		{Name: "FlexFlow", Process: "65nm", PEs: 256, LocalStore: "512B", BufferKB: 64,
			AreaMM2: energy.Area("FlexFlow", 256, 512, 64*1024), DRAMAccOp: accOp},
	}
	tb := metrics.NewTable("Table 7 — Comparison of accelerators",
		"", "DianNao", "Eyeriss", "FlexFlow")
	add := func(label string, f func(Table7Row) string) {
		cells := []string{label}
		for _, r := range rows {
			cells = append(cells, f(r))
		}
		tb.Add(cells...)
	}
	add("Process", func(r Table7Row) string { return r.Process })
	add("Num of PEs", func(r Table7Row) string { return fmt.Sprintf("%d", r.PEs) })
	add("Local Store/PE", func(r Table7Row) string { return r.LocalStore })
	add("Buffer Size", func(r Table7Row) string { return fmt.Sprintf("%dKB", r.BufferKB) })
	add("Area", func(r Table7Row) string { return fmt.Sprintf("%.2fmm2", r.AreaMM2) })
	add("DRAM Acc/Op", func(r Table7Row) string {
		if r.DRAMAccOp < 0 {
			return "NA"
		}
		return fmt.Sprintf("%.4f", r.DRAMAccOp)
	})
	tb.Add("Acc/Op (our RS model)", "-", fmt.Sprintf("%.4f", rsAccOp), "-")
	return rows, tb.String()
}

// AreaComponent is one entry of the Fig. 14 substitute: the analytic
// area breakdown of the 16×16 FlexFlow layout.
type AreaComponent struct {
	Name    string
	AreaMM2 float64
}

// AreaReport substitutes for the Fig. 14 layout plot: the analytic
// area breakdown of FlexFlow at 16×16 and the four baselines' totals.
func AreaReport() ([]AreaComponent, string) {
	p := energy.AreaFor("FlexFlow")
	comps := []AreaComponent{
		{"PE datapaths (256)", p.PEDatapath * 256},
		{"PE local stores (256 × 512B)", p.SRAMPerByte * 256 * 512},
		{"On-chip buffers (64KB)", p.SRAMPerByte * 64 * 1024},
		{"Interconnect (CDBs)", p.WiringBase},
	}
	tb := metrics.NewTable("Figure 14 substitute — FlexFlow 16x16 area breakdown", "Component", "mm²")
	total := 0.0
	for _, c := range comps {
		tb.Add(c.Name, fmt.Sprintf("%.3f", c.AreaMM2))
		total += c.AreaMM2
	}
	tb.Add("Total", fmt.Sprintf("%.3f", total))
	tb.Add("", "")
	tb.Add("Systolic total", fmt.Sprintf("%.3f", energy.Area("Systolic", 252, 4, 64*1024)))
	tb.Add("2D-Mapping total", fmt.Sprintf("%.3f", energy.Area("2D-Mapping", 256, 8, 64*1024)))
	tb.Add("Tiling total", fmt.Sprintf("%.3f", energy.Area("Tiling", 256, 2, 64*1024)))
	return comps, tb.String()
}
