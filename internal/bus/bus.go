// Package bus models FlexFlow's common data buses (CDB): simple
// pipelined data-only broadcast buses. A vertical CDB per PE column
// carries neurons; a horizontal CDB per PE row carries kernels
// (Fig. 6). The buses carry no addresses and no control — the paper's
// point is that this is what keeps FlexFlow's wiring scalable — so the
// model is pure transfer counting plus In-Place Data Replication
// (IPDR, §4.5), which reuses the kernel bus's spare bandwidth to
// broadcast one word to a whole logical group.
package bus

// CDB is one common data bus with transfer accounting. A transfer
// moves one word from the reading controller onto the bus; fan-out to
// any number of listening PEs costs a single bus transfer (broadcast).
type CDB struct {
	name      string
	transfers int64 // words placed on the bus
	delivered int64 // word-arrivals at PEs (transfers × fan-out)

	// TransferHook, when non-nil, intercepts every transfer batch and
	// returns the word count that actually makes it onto the bus — the
	// fault-injection hook point for dropped and duplicated transfers
	// (internal/fault). Nil keeps the fault-free fast path.
	TransferHook func(n int64, fanout int) int64
}

// New creates a named bus.
func New(name string) *CDB { return &CDB{name: name} }

// Name returns the bus name.
func (b *CDB) Name() string { return b.name }

// Broadcast places one word on the bus with the given fan-out.
func (b *CDB) Broadcast(fanout int) {
	if fanout < 1 {
		panic("bus: broadcast fan-out must be ≥ 1")
	}
	b.BroadcastN(1, fanout)
}

// BroadcastN places n words on the bus, each with the given fan-out.
func (b *CDB) BroadcastN(n int64, fanout int) {
	if n < 0 || fanout < 1 {
		panic("bus: invalid BroadcastN")
	}
	if b.TransferHook != nil {
		n = b.TransferHook(n, fanout)
		if n < 0 {
			n = 0
		}
	}
	b.transfers += n
	b.delivered += n * int64(fanout)
}

// Transfers returns how many words were placed on the bus — the energy
// model charges per transfer, not per delivery, because a broadcast
// drives the wire once.
func (b *CDB) Transfers() int64 { return b.transfers }

// Delivered returns total word-arrivals at PEs.
func (b *CDB) Delivered() int64 { return b.delivered }

// Replicator implements IPDR: every word read by the reading controller
// is replicated Factor times onto horizontal buses so all PEs of one
// logical group receive it without dedicated interconnect. The
// replication itself is free (it reuses idle bus slots); only the
// original buffer read and the bus transfers are charged.
type Replicator struct {
	Factor int
	words  int64
}

// NewReplicator creates an IPDR stage with the given replication factor
// (T_r × T_c in the paper, never larger than the PE-array edge).
func NewReplicator(factor int) *Replicator {
	if factor < 1 {
		panic("bus: replication factor must be ≥ 1")
	}
	return &Replicator{Factor: factor}
}

// Replicate accounts for n source words entering the replicator and
// returns the number of bus words produced (n × Factor).
func (r *Replicator) Replicate(n int64) int64 {
	if n < 0 {
		panic("bus: negative replicate count")
	}
	r.words += n
	return n * int64(r.Factor)
}

// SourceWords returns how many distinct words passed through.
func (r *Replicator) SourceWords() int64 { return r.words }
