package bus

import "testing"

func TestBroadcastCounting(t *testing.T) {
	b := New("vertical-0")
	b.Broadcast(16)
	b.BroadcastN(9, 4)
	if b.Transfers() != 10 {
		t.Errorf("Transfers = %d, want 10", b.Transfers())
	}
	if b.Delivered() != 16+36 {
		t.Errorf("Delivered = %d, want 52", b.Delivered())
	}
	if b.Name() != "vertical-0" {
		t.Errorf("Name = %q", b.Name())
	}
}

func TestBroadcastRejectsZeroFanout(t *testing.T) {
	b := New("x")
	defer func() {
		if recover() == nil {
			t.Error("zero fan-out did not panic")
		}
	}()
	b.Broadcast(0)
}

func TestReplicator(t *testing.T) {
	r := NewReplicator(8) // Tr×Tc = 8
	out := r.Replicate(10)
	if out != 80 {
		t.Errorf("Replicate(10) = %d, want 80", out)
	}
	if r.SourceWords() != 10 {
		t.Errorf("SourceWords = %d, want 10", r.SourceWords())
	}
}

func TestReplicatorIdentity(t *testing.T) {
	r := NewReplicator(1)
	if r.Replicate(7) != 7 {
		t.Error("factor-1 replicator should be identity")
	}
}

func TestReplicatorRejectsZeroFactor(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("factor 0 did not panic")
		}
	}()
	NewReplicator(0)
}
