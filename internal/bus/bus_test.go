package bus

import "testing"

func TestBroadcastCounting(t *testing.T) {
	b := New("vertical-0")
	b.Broadcast(16)
	b.BroadcastN(9, 4)
	if b.Transfers() != 10 {
		t.Errorf("Transfers = %d, want 10", b.Transfers())
	}
	if b.Delivered() != 16+36 {
		t.Errorf("Delivered = %d, want 52", b.Delivered())
	}
	if b.Name() != "vertical-0" {
		t.Errorf("Name = %q", b.Name())
	}
}

func TestBroadcastRejectsZeroFanout(t *testing.T) {
	b := New("x")
	defer func() {
		if recover() == nil {
			t.Error("zero fan-out did not panic")
		}
	}()
	b.Broadcast(0)
}

func TestTransferHook(t *testing.T) {
	b := New("v")
	b.TransferHook = func(n int64, fanout int) int64 { return n - 1 } // drop one word
	b.BroadcastN(10, 4)
	if b.Transfers() != 9 || b.Delivered() != 36 {
		t.Errorf("hooked bus = %d transfers / %d delivered, want 9/36", b.Transfers(), b.Delivered())
	}
	// A hook that over-drops clamps at zero rather than going negative.
	b2 := New("w")
	b2.TransferHook = func(n int64, fanout int) int64 { return -5 }
	b2.BroadcastN(2, 1)
	if b2.Transfers() != 0 || b2.Delivered() != 0 {
		t.Errorf("over-dropping hook: %d transfers / %d delivered, want 0/0", b2.Transfers(), b2.Delivered())
	}
}

func TestReplicator(t *testing.T) {
	r := NewReplicator(8) // Tr×Tc = 8
	out := r.Replicate(10)
	if out != 80 {
		t.Errorf("Replicate(10) = %d, want 80", out)
	}
	if r.SourceWords() != 10 {
		t.Errorf("SourceWords = %d, want 10", r.SourceWords())
	}
}

func TestReplicatorIdentity(t *testing.T) {
	r := NewReplicator(1)
	if r.Replicate(7) != 7 {
		t.Error("factor-1 replicator should be identity")
	}
}

func TestReplicatorRejectsZeroFactor(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("factor 0 did not panic")
		}
	}()
	NewReplicator(0)
}
