// Package tiling implements the MFSNSS baseline architecture
// (Section 3.3): a Tiling array in the style of DianNao/DaDianNao.
// The engine has Tm PEs; each PE holds Tn multipliers feeding an adder
// tree. Per cycle, Tn input neurons (one per input feature map) and
// Tm×Tn synapses are loaded; each PE sums its Tn products into one
// output neuron's partial sum. There is no local operand storage:
// neurons and synapses are re-fetched every cycle, which is why the
// paper calls Tiling's data sharing the poorest.
package tiling

import (
	"fmt"

	"flexflow/internal/arch"
	"flexflow/internal/fixed"
	"flexflow/internal/mapping"
	"flexflow/internal/nn"
	"flexflow/internal/sim"
	"flexflow/internal/tensor"
)

// Engine is a Tiling computing engine with Tm PEs of Tn multipliers.
type Engine struct {
	Tm int // output feature maps processed in parallel (PE count)
	Tn int // input feature maps processed in parallel (multipliers/PE)

	// BufferWords bounds on-chip reuse in the DRAM model.
	BufferWords int

	// Tracer, when non-nil, receives dataflow events from Simulate.
	Tracer sim.Tracer

	// Watchdog, when non-nil, bounds Simulate: it is polled at output-row
	// boundaries, so a cancelled context or exhausted cycle budget stops
	// the run with a typed error.
	Watchdog *sim.Watchdog
}

// New returns a tiling engine with the paper's buffer capacity.
func New(tm, tn int) *Engine {
	if tm <= 0 || tn <= 0 {
		panic("tiling: Tm and Tn must be positive")
	}
	return &Engine{Tm: tm, Tn: tn, BufferWords: 16384}
}

// SetTracer installs (or clears) the dataflow tracer; it is the
// capability setter the execution pipeline uses to thread run options
// uniformly through every engine.
func (e *Engine) SetTracer(t sim.Tracer) { e.Tracer = t }

// SetWatchdog installs (or clears) the simulation watchdog.
func (e *Engine) SetWatchdog(w *sim.Watchdog) { e.Watchdog = w }

// Name implements arch.Engine.
func (e *Engine) Name() string { return "Tiling" }

// PEs implements arch.Engine.
func (e *Engine) PEs() int { return e.Tm * e.Tn }

// rule returns the mapping-layer lowering rule configured exactly as
// this engine; Model and Simulate's DRAM accounting both go through it,
// so the engine and its preset spec cannot drift.
func (e *Engine) rule() mapping.Tree {
	return mapping.Tree{Tm: e.Tm, Tn: e.Tn, BufferWords: e.BufferWords}
}

// spec returns the engine's configuration as its mapping spec: the
// tiling preset at this engine's geometry.
func (e *Engine) spec() mapping.Spec {
	s := mapping.PresetTiling(e.Tm, e.Tn)
	s.Geom.BufferWords = e.BufferWords
	return s
}

// LayerCacheKey implements the pipeline's CacheKeyer: the engine's
// mapping-spec digest (kind, tiling factors, buffer capacity and
// dataflow directives, via mapping.AppendSpecKey), tracer arming and
// the layer shape — everything Model reads (see arch.AppendLayerKey
// for the exclusions).
func (e *Engine) LayerCacheKey(l nn.ConvLayer) (string, bool) {
	b := make([]byte, 0, 224)
	s := e.spec()
	b = mapping.AppendSpecKey(b, &s)
	b = arch.AppendKeyBool(b, e.Tracer != nil)
	b = arch.AppendLayerKey(b, l)
	return string(b), true
}

// CheckLayer implements arch.LayerChecker: the tiling baseline keeps
// the paper's unit-stride contract (§3).
func (e *Engine) CheckLayer(l nn.ConvLayer) error {
	if err := l.Validate(); err != nil {
		return err
	}
	if l.Str() != 1 {
		return fmt.Errorf("tiling: layer %s has stride %d; the rigid baselines assume unit stride (paper §3)", l.Name, l.Str())
	}
	return nil
}

// Model implements arch.Engine by lowering the layer through the
// tiling mapping rule.
func (e *Engine) Model(l nn.ConvLayer) arch.LayerResult {
	res := e.rule().Account(l)
	res.Arch = e.Name()
	return res
}

// Simulate implements arch.Engine: the explicit Tm×Tn datapath with an
// adder tree per PE, executed cycle by cycle.
func (e *Engine) Simulate(l nn.ConvLayer, in *tensor.Map3, k *tensor.Kernel4) (*tensor.Map3, arch.LayerResult, error) {
	if err := l.Validate(); err != nil {
		return nil, arch.LayerResult{}, err
	}
	if l.Str() != 1 {
		return nil, arch.LayerResult{}, fmt.Errorf("tiling: unit-stride dataflow cannot execute stride-%d layer %s", l.Str(), l.Name)
	}
	if in.N != l.N || k.M != l.M || k.N != l.N || k.K != l.K {
		return nil, arch.LayerResult{}, fmt.Errorf("tiling: operand shapes do not match layer %v", l)
	}
	if in.H != l.InSize() || in.W != l.InSize() {
		return nil, arch.LayerResult{}, fmt.Errorf("tiling: input is %dx%d, layer needs %dx%d", in.H, in.W, l.InSize(), l.InSize())
	}

	out := tensor.NewMap3(l.M, l.S, l.S)
	psum := make([]fixed.Acc, l.M*l.S*l.S)
	res := arch.LayerResult{
		Arch: e.Name(), Layer: l, PEs: e.PEs(),
		Factors: arch.T{Tm: min(e.Tm, l.M), Tn: min(e.Tn, l.N), Tr: 1, Tc: 1, Ti: 1, Tj: 1},
	}
	var clock sim.Clock

	nBlocks := ceilDiv(l.N, e.Tn)
	for m0 := 0; m0 < l.M; m0 += e.Tm {
		lanes := min(e.Tm, l.M-m0)
		for n0 := 0; n0 < l.N; n0 += e.Tn {
			width := min(e.Tn, l.N-n0)
			for r := 0; r < l.S; r++ {
				// Poll the watchdog once per output row — coarse enough to
				// stay off the MAC fast path, fine enough that a budget or
				// cancellation lands promptly.
				if err := e.Watchdog.Check(clock.Cycle()); err != nil {
					return nil, arch.LayerResult{}, err
				}
				for c := 0; c < l.S; c++ {
					// Each PE accumulates one output neuron over the
					// K×K window for this n-block.
					accs := make([]fixed.Acc, lanes)
					for i := 0; i < l.K; i++ {
						for j := 0; j < l.K; j++ {
							// Fetch the active lanes' neurons and synapses.
							res.NeuronLoads += int64(width)
							res.KernelLoads += int64(lanes) * int64(width)
							for pe := 0; pe < lanes; pe++ {
								m := m0 + pe
								var tree fixed.Acc
								for lane := 0; lane < width; lane++ {
									n := n0 + lane
									tree = fixed.MAC(tree, in.At(n, r+i, c+j), k.At(m, n, i, j))
									res.MACs++
								}
								accs[pe] = fixed.AddAcc(accs[pe], tree)
								res.LocalReads++
								res.LocalWrites++
								if e.Tracer != nil {
									e.Tracer.Trace(sim.Event{Cycle: clock.Cycle(), Kind: sim.EvMAC, Row: pe, Col: 0,
										What: fmt.Sprintf("O(%d,%d,%d)", m, r, c)})
								}
							}
							clock.Tick()
						}
					}
					// Spill this n-block's partials.
					for pe := 0; pe < lanes; pe++ {
						idx := ((m0+pe)*l.S+r)*l.S + c
						psum[idx] = fixed.AddAcc(psum[idx], accs[pe])
						res.NeuronStores++
						if n0 > 0 {
							res.NeuronLoads++ // re-read of the prior partial
						}
					}
				}
			}
		}
	}

	for m := 0; m < l.M; m++ {
		for r := 0; r < l.S; r++ {
			for c := 0; c < l.S; c++ {
				out.Set(m, r, c, psum[(m*l.S+r)*l.S+c].Round())
			}
		}
	}
	res.Cycles = clock.Cycle()
	e.rule().DRAM(l, &res, int64(nBlocks))
	e.Watchdog.Commit(res.Cycles)
	return out, res, nil
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
