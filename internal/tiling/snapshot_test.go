package tiling

// Dataflow snapshot tests for the Tiling baseline: the Figure 5(c2)
// narrative — per cycle, Tn neurons fan out against Tm×Tn synapses and
// each PE's adder tree folds its Tn products into one output's partial
// sum.

import (
	"fmt"
	"testing"

	"flexflow/internal/nn"
	"flexflow/internal/sim"
	"flexflow/internal/tensor"
)

func TestEveryCycleTouchesEveryActivePE(t *testing.T) {
	l := nn.ConvLayer{Name: "snap", M: 3, N: 2, S: 2, K: 2}
	e := New(3, 2)
	rec := &sim.Recorder{}
	e.Tracer = rec
	in := tensor.NewMap3(l.N, l.InSize(), l.InSize())
	in.FillPattern(3)
	k := tensor.NewKernel4(l.M, l.N, l.K)
	k.FillPattern(4)
	_, res, err := e.Simulate(l, in, k)
	if err != nil {
		t.Fatal(err)
	}
	macs := rec.Filter(sim.EvMAC)
	// One tree event per PE per cycle: 3 active PEs × cycles.
	if got, want := int64(len(macs)), 3*res.Cycles; got != want {
		t.Fatalf("MAC events = %d, want %d (3 PEs × %d cycles)", got, want, res.Cycles)
	}
	// Per cycle, the three PEs serve outputs of the three different maps
	// at the same (r,c) — the MFSNSS signature.
	byCycle := map[int64][]string{}
	for _, ev := range macs {
		byCycle[ev.Cycle] = append(byCycle[ev.Cycle], ev.What)
	}
	for cyc, whats := range byCycle {
		if len(whats) != 3 {
			t.Fatalf("cycle %d has %d PE events", cyc, len(whats))
		}
		var r0, c0 int
		seenMaps := map[int]bool{}
		for i, w := range whats {
			var m, r, c int
			if _, err := fmt.Sscanf(w, "O(%d,%d,%d)", &m, &r, &c); err != nil {
				t.Fatalf("bad label %q", w)
			}
			if i == 0 {
				r0, c0 = r, c
			} else if r != r0 || c != c0 {
				t.Fatalf("cycle %d mixes positions (%d,%d) vs (%d,%d)", cyc, r, c, r0, c0)
			}
			seenMaps[m] = true
		}
		if len(seenMaps) != 3 {
			t.Fatalf("cycle %d does not span 3 output maps: %v", cyc, whats)
		}
	}
}

func TestKernelStepOrderIsRowMajor(t *testing.T) {
	// Outputs complete only after the K×K raster finishes: the last MAC
	// of each output lands exactly K²·⌈N/Tn⌉ cycles after its first.
	l := nn.ConvLayer{Name: "snap", M: 1, N: 1, S: 2, K: 3}
	e := New(1, 1)
	rec := &sim.Recorder{}
	e.Tracer = rec
	in := tensor.NewMap3(1, l.InSize(), l.InSize())
	in.FillPattern(5)
	k := tensor.NewKernel4(1, 1, 3)
	k.FillPattern(6)
	if _, _, err := e.Simulate(l, in, k); err != nil {
		t.Fatal(err)
	}
	first := map[string]int64{}
	last := map[string]int64{}
	for _, ev := range rec.Filter(sim.EvMAC) {
		if _, ok := first[ev.What]; !ok {
			first[ev.What] = ev.Cycle
		}
		last[ev.What] = ev.Cycle
	}
	for out := range first {
		if span := last[out] - first[out] + 1; span != 9 {
			t.Errorf("%s spanned %d cycles, want K²=9", out, span)
		}
	}
}
