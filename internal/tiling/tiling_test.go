package tiling

import (
	"testing"

	"flexflow/internal/nn"
	"flexflow/internal/tensor"
)

func makeOperands(l nn.ConvLayer, seed uint64) (*tensor.Map3, *tensor.Kernel4) {
	in := tensor.NewMap3(l.N, l.InSize(), l.InSize())
	in.FillPattern(seed)
	k := tensor.NewKernel4(l.M, l.N, l.K)
	k.FillPattern(seed + 1)
	return in, k
}

func TestSimulateMatchesGoldenConv(t *testing.T) {
	layers := []nn.ConvLayer{
		{Name: "tiny", M: 1, N: 1, S: 3, K: 2},
		{Name: "multi-m", M: 5, N: 2, S: 4, K: 3}, // M > Tm ⇒ 2 m-blocks
		{Name: "multi-n", M: 2, N: 5, S: 3, K: 2}, // N > Tn ⇒ 3 n-blocks
		{Name: "both", M: 7, N: 4, S: 3, K: 2},
	}
	e := New(4, 2)
	for _, l := range layers {
		in, k := makeOperands(l, 17)
		got, res, err := e.Simulate(l, in, k)
		if err != nil {
			t.Fatalf("%s: %v", l.Name, err)
		}
		if !got.Equal(tensor.Conv(in, k)) {
			t.Errorf("%s: output differs from golden conv", l.Name)
		}
		if res.MACs != l.MACs() {
			t.Errorf("%s: MACs = %d, want %d", l.Name, res.MACs, l.MACs())
		}
	}
}

func TestUtilizationTable3Cells(t *testing.T) {
	// PV C3 (M=12, N=8) on C1-optimized Tiling (Tm=8, Tn=1):
	// util = 12·8/(⌈12/8⌉·8 · ⌈8/1⌉·1) = 96/128 = 75% — Table 3's cell.
	e := New(8, 1)
	l := nn.ConvLayer{M: 12, N: 8, S: 20, K: 3}
	if u := e.Model(l).Utilization(); u < 0.749 || u > 0.751 {
		t.Errorf("PV C3 on C1-opt = %v, want 0.75", u)
	}
	// PV C1 (M=8, N=1) on C3-optimized Tiling (Tm=12, Tn=8):
	// util = 8/(12·8) = 8.3%.
	e2 := New(12, 8)
	l2 := nn.ConvLayer{M: 8, N: 1, S: 45, K: 6}
	if u := e2.Model(l2).Utilization(); u < 0.082 || u > 0.085 {
		t.Errorf("PV C1 on C3-opt = %v, want 0.083", u)
	}
}

func TestUtilizationCollapsesForFewMaps(t *testing.T) {
	// LeNet-5 C1 (M=6, N=1) on the 16×16 evaluation configuration:
	// 6/(16·16) ≈ 2.3% — why Tiling bottoms out in Fig. 15.
	e := New(16, 16)
	l := nn.ConvLayer{M: 6, N: 1, S: 28, K: 5}
	u := e.Model(l).Utilization()
	if u > 0.03 {
		t.Errorf("utilization = %v, want ≈ 0.023", u)
	}
}

func TestUtilizationHighWhenMapsAbound(t *testing.T) {
	// AlexNet C6 (M=192, N=192): multiples of 16 ⇒ full utilization.
	e := New(16, 16)
	l := nn.ConvLayer{M: 192, N: 192, S: 13, K: 3}
	if u := e.Model(l).Utilization(); u < 0.999 {
		t.Errorf("utilization = %v, want 1.0", u)
	}
}

func TestDataVolumeIsHuge(t *testing.T) {
	// Tiling reloads Tm×Tn synapses every cycle: its kernel traffic
	// must exceed the kernel working set by orders of magnitude.
	e := New(16, 16)
	l := nn.ConvLayer{M: 16, N: 6, S: 10, K: 5}
	res := e.Model(l)
	if res.KernelLoads < 100*l.KernelWords() {
		t.Errorf("KernelLoads = %d, want ≥ 100× kernel words (%d)", res.KernelLoads, l.KernelWords())
	}
}

func TestSimulateRejectsBadShapes(t *testing.T) {
	e := New(4, 4)
	l := nn.ConvLayer{Name: "x", M: 2, N: 1, S: 4, K: 3}
	if _, _, err := e.Simulate(l, tensor.NewMap3(1, 4, 4), tensor.NewKernel4(2, 1, 3)); err == nil {
		t.Error("wrong-size input accepted")
	}
}

func TestEngineIdentity(t *testing.T) {
	e := New(16, 16)
	if e.Name() != "Tiling" || e.PEs() != 256 {
		t.Errorf("Name=%q PEs=%d", e.Name(), e.PEs())
	}
}

func TestPartialBlocksSpillAccounting(t *testing.T) {
	// N > Tn forces partial-sum spills: every output is stored once per
	// n-block and re-read for each block after the first.
	e := New(4, 2)
	l := nn.ConvLayer{M: 3, N: 5, S: 3, K: 2} // 3 n-blocks (2+2+1)
	res := e.Model(l)
	nBlocks := int64(3)
	wantStores := nBlocks * l.OutputWords()
	if res.NeuronStores != wantStores {
		t.Errorf("NeuronStores = %d, want %d", res.NeuronStores, wantStores)
	}
}

func TestAdderTreeWidthGatesFetches(t *testing.T) {
	// With N=1 on a Tn=16 engine, only one lane fetches: neuron loads
	// equal one word per cycle, not sixteen.
	e := New(4, 16)
	l := nn.ConvLayer{M: 4, N: 1, S: 3, K: 2}
	res := e.Model(l)
	if res.NeuronLoads != res.Cycles {
		t.Errorf("NeuronLoads = %d, want one per cycle (%d) with a single active lane",
			res.NeuronLoads, res.Cycles)
	}
}

func TestDRAMPsumSpillWhenOutputsExceedBuffer(t *testing.T) {
	e := New(2, 2)
	e.BufferWords = 8
	l := nn.ConvLayer{M: 2, N: 4, S: 4, K: 2} // outputs 32 words > 8, 2 n-blocks
	res := e.Model(l)
	if res.DRAMWrites <= l.OutputWords() {
		t.Errorf("DRAMWrites = %d, want psum spills beyond %d", res.DRAMWrites, l.OutputWords())
	}
}
