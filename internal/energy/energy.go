// Package energy provides the analytic power/energy/area model that
// substitutes for the paper's Synopsys DC + PrimeTime + ICC flow on
// TSMC 65 nm (DESIGN.md §1). Per-event energies are charged against the
// event counters every engine measures (arch.LayerResult); the absolute
// pJ constants are calibrated so the 16×16 FlexFlow lands in the
// paper's reported envelope (total power ≈ 0.84–1.12 W at 1 GHz,
// compute ≈ 80–86% of the budget, Table 6), while relative results
// across architectures are driven entirely by the measured counts.
package energy

import (
	"math"

	"flexflow/internal/arch"
)

// Params holds the per-event energies (picojoules per 16-bit word or
// operation) and leakage terms of the 65 nm model.
type Params struct {
	MAC        float64 // one 16×16 multiply-accumulate
	LocalRead  float64 // per-PE local store / register read
	LocalWrite float64 // per-PE local store / register write
	BufRead    float64 // 32 KB on-chip buffer bank read
	BufWrite   float64 // 32 KB on-chip buffer bank write
	BusBase    float64 // bus transfer, fixed part
	BusPerEdge float64 // bus transfer, per unit of array edge (wire length)
	InterPE    float64 // neighbour-to-neighbour hop (FIFO/shift)
	DRAM       float64 // external memory, per 16-bit word

	// TreeBase and TreeAmort charge the operand-delivery wiring (row
	// adder trees, column broadcast spines) per MAC: TreeBase +
	// TreeAmort/edge. The 1/edge term models spine drivers amortizing
	// across a wider word-parallel array, which is what makes the
	// routing-network power share decline gently with scale (§6.2.5).
	TreeBase  float64
	TreeAmort float64

	// IdlePE charges datapath toggling on idle PE-cycles: the
	// baselines' pipelines clock every cycle whether or not the slot
	// carries useful work, so an architecture that cannot keep its PEs
	// busy still pays dynamic power. FlexFlow's near-full occupancy is
	// what converts its utilization advantage into an efficiency
	// advantage (Fig. 18a).
	IdlePE float64

	LeakPerPE float64 // static power per PE, mW
	LeakBuf   float64 // static power of the on-chip buffers, mW
}

// Default65nm returns the calibrated 65 nm parameter set.
func Default65nm() Params {
	return Params{
		MAC:        1.00,
		LocalRead:  0.60,
		LocalWrite: 0.70,
		BufRead:    6.00,
		BufWrite:   7.00,
		BusBase:    0.40,
		BusPerEdge: 0.05,
		InterPE:    0.30,
		DRAM:       200.0,
		TreeBase:   0.75,
		TreeAmort:  8.0,
		IdlePE:     1.0,
		LeakPerPE:  0.05,
		LeakBuf:    4.0,
	}
}

// Breakdown is the energy of one layer (or one run) split by component,
// in picojoules. The component names follow the paper's Table 6:
// NeuronIn (P_nein), NeuronOut (P_neout), KernelIn (P_kerin) and
// Compute (P_com, which includes the PE local stores); Interconnect and
// DRAM are tracked separately for §6.2.5 and Table 7.
type Breakdown struct {
	Compute      float64
	NeuronIn     float64
	NeuronOut    float64
	KernelIn     float64
	Interconnect float64
	Leakage      float64
	DRAM         float64
}

// Add returns the component-wise sum.
func (b Breakdown) Add(o Breakdown) Breakdown {
	b.Compute += o.Compute
	b.NeuronIn += o.NeuronIn
	b.NeuronOut += o.NeuronOut
	b.KernelIn += o.KernelIn
	b.Interconnect += o.Interconnect
	b.Leakage += o.Leakage
	b.DRAM += o.DRAM
	return b
}

// ChipPJ is the on-chip energy (everything except DRAM).
func (b Breakdown) ChipPJ() float64 {
	return b.Compute + b.NeuronIn + b.NeuronOut + b.KernelIn + b.Interconnect + b.Leakage
}

// TotalPJ includes DRAM energy.
func (b Breakdown) TotalPJ() float64 { return b.ChipPJ() + b.DRAM }

// LayerEnergy charges the model against one layer's measured counters.
// edge is the PE-array edge length (wire-length proxy for bus energy).
func (p Params) LayerEnergy(r arch.LayerResult, edge int) Breakdown {
	busWord := p.BusBase + p.BusPerEdge*float64(edge)
	var b Breakdown
	b.Compute = float64(r.MACs)*p.MAC +
		float64(r.LocalReads)*p.LocalRead +
		float64(r.LocalWrites)*p.LocalWrite
	if idle := r.IdleSlots(); idle > 0 {
		b.Compute += float64(idle) * p.IdlePE
	}
	b.NeuronIn = float64(r.NeuronLoads) * p.BufRead
	b.NeuronOut = float64(r.NeuronStores) * p.BufWrite
	b.KernelIn = float64(r.KernelLoads) * p.BufRead
	b.Interconnect = float64(r.NeuronLoads+r.KernelLoads+r.NeuronStores)*busWord +
		float64(r.InterPEMoves)*p.InterPE +
		float64(r.MACs)*(p.TreeBase+p.TreeAmort/float64(edge))
	// Leakage: static power integrated over the layer's runtime at
	// 1 GHz (1 cycle = 1 ns, and 1 mW × 1 ns = 1 pJ).
	b.Leakage = float64(r.Cycles) * (p.LeakPerPE*float64(r.PEs) + p.LeakBuf)
	b.DRAM = float64(r.DRAMReads+r.DRAMWrites) * p.DRAM
	return b
}

// RunEnergy charges the model against a whole network run.
func (p Params) RunEnergy(r arch.RunResult, edge int) Breakdown {
	var b Breakdown
	for _, l := range r.Layers {
		b = b.Add(p.LayerEnergy(l, edge))
	}
	return b
}

// PowerMW returns the average on-chip power in milliwatts of a run
// executed at clockHz.
func PowerMW(b Breakdown, cycles int64, clockHz float64) float64 {
	if cycles == 0 {
		return 0
	}
	seconds := float64(cycles) / clockHz
	return b.ChipPJ() * 1e-12 / seconds * 1e3
}

// EfficiencyGOPSPerW returns performance per watt (the paper's power
// efficiency metric, Fig. 18a).
func EfficiencyGOPSPerW(gops, powerMW float64) float64 {
	if powerMW == 0 {
		return 0
	}
	return gops / (powerMW / 1e3)
}

// --- Area model (Fig. 14 substitute, Fig. 19c) ---

// AreaParams holds the 65 nm area constants, calibrated to the four
// baselines' reported layouts at 16×16-equivalent scale (3.52 / 3.46 /
// 3.21 / 3.89 mm²).
type AreaParams struct {
	PEDatapath  float64 // mm² per PE (multiplier + adder + control)
	SRAMPerByte float64 // mm² per byte of SRAM (local stores + buffers)
	// WiringBase is the interconnect area at the 16×16 reference scale;
	// WiringExp is the growth exponent in the array edge — the paper's
	// point is that FlexFlow's bus-only wiring grows ≈ quadratically
	// (with PE count) while the baselines' dense point-to-point wiring
	// grows super-linearly in PE count.
	WiringBase float64
	WiringExp  float64
}

// AreaFor returns the calibrated area parameters of one architecture.
func AreaFor(archName string) AreaParams {
	base := AreaParams{PEDatapath: 0.005, SRAMPerByte: 1.2e-5}
	switch archName {
	case "FlexFlow":
		base.WiringBase, base.WiringExp = 0.25, 2.0
	case "Systolic":
		base.WiringBase, base.WiringExp = 1.45, 2.4
	case "2D-Mapping":
		base.WiringBase, base.WiringExp = 1.39, 2.5
	case "Tiling":
		base.WiringBase, base.WiringExp = 1.14, 2.6
	default:
		base.WiringBase, base.WiringExp = 1.0, 2.4
	}
	return base
}

// Area returns the chip area in mm² for an engine with the given PE
// count, per-PE local store bytes and total on-chip buffer bytes. The
// wiring term is normalized to the 256-PE reference scale.
func Area(archName string, pes, localBytesPerPE, bufferBytes int) float64 {
	p := AreaFor(archName)
	scale := math.Sqrt(float64(pes) / 256.0) // edge ratio vs 16×16
	wiring := p.WiringBase * math.Pow(scale, p.WiringExp)
	return p.PEDatapath*float64(pes) +
		p.SRAMPerByte*float64(pes*localBytesPerPE+bufferBytes) +
		wiring
}
