package energy

import (
	"math"
	"testing"

	"flexflow/internal/arch"
)

func sampleResult() arch.LayerResult {
	return arch.LayerResult{
		PEs: 256, Cycles: 1000, MACs: 200000,
		LocalReads: 400000, LocalWrites: 200000,
		NeuronLoads: 5000, NeuronStores: 2000, KernelLoads: 1000,
		InterPEMoves: 3000, DRAMReads: 800, DRAMWrites: 200,
	}
}

func TestLayerEnergyComponents(t *testing.T) {
	p := Default65nm()
	b := p.LayerEnergy(sampleResult(), 16)
	idle := float64(1000*256 - 200000)
	wantCompute := 200000*p.MAC + 400000*p.LocalRead + 200000*p.LocalWrite + idle*p.IdlePE
	if !close(b.Compute, wantCompute) {
		t.Errorf("Compute = %v, want %v", b.Compute, wantCompute)
	}
	if !close(b.NeuronIn, 5000*p.BufRead) {
		t.Errorf("NeuronIn = %v", b.NeuronIn)
	}
	if !close(b.NeuronOut, 2000*p.BufWrite) {
		t.Errorf("NeuronOut = %v", b.NeuronOut)
	}
	if !close(b.KernelIn, 1000*p.BufRead) {
		t.Errorf("KernelIn = %v", b.KernelIn)
	}
	if !close(b.DRAM, 1000*p.DRAM) {
		t.Errorf("DRAM = %v", b.DRAM)
	}
	if b.Interconnect <= 0 || b.Leakage <= 0 {
		t.Error("interconnect/leakage must be positive")
	}
	if !close(b.TotalPJ(), b.ChipPJ()+b.DRAM) {
		t.Error("TotalPJ != ChipPJ + DRAM")
	}
}

func TestBreakdownAdd(t *testing.T) {
	a := Breakdown{Compute: 1, NeuronIn: 2, NeuronOut: 3, KernelIn: 4, Interconnect: 5, Leakage: 6, DRAM: 7}
	s := a.Add(a)
	if s.Compute != 2 || s.NeuronIn != 4 || s.DRAM != 14 {
		t.Errorf("Add = %+v", s)
	}
}

func TestPowerMW(t *testing.T) {
	// 1000 pJ chip energy over 1000 cycles at 1 GHz = 1 µs ⇒ 1 mW.
	b := Breakdown{Compute: 1000}
	if got := PowerMW(b, 1000, 1e9); !close(got, 1.0) {
		t.Errorf("PowerMW = %v, want 1", got)
	}
	if PowerMW(b, 0, 1e9) != 0 {
		t.Error("zero cycles should give zero power")
	}
}

func TestEfficiency(t *testing.T) {
	if got := EfficiencyGOPSPerW(400, 1000); !close(got, 400) {
		t.Errorf("400 GOPS at 1 W = %v GOPS/W, want 400", got)
	}
	if EfficiencyGOPSPerW(400, 0) != 0 {
		t.Error("zero power should give zero efficiency")
	}
}

func TestBusEnergyGrowsWithEdge(t *testing.T) {
	// The per-word bus energy grows with wire length (edge); isolate it
	// from the per-MAC delivery term, whose spine cost amortizes with
	// scale.
	p := Default65nm()
	r := sampleResult()
	r.MACs = 0
	small := p.LayerEnergy(r, 16).Interconnect
	large := p.LayerEnergy(r, 64).Interconnect
	if large <= small {
		t.Errorf("bus energy at edge 64 (%v) should exceed edge 16 (%v)", large, small)
	}
}

func TestDeliveryShareDeclines(t *testing.T) {
	// §6.2.5: with the same per-MAC activity, the interconnect share of
	// a MAC-dominated load declines as the array grows.
	p := Default65nm()
	r := sampleResult()
	share := func(edge int) float64 {
		b := p.LayerEnergy(r, edge)
		return b.Interconnect / b.ChipPJ()
	}
	if !(share(16) > share(32) && share(32) > share(64)) {
		t.Errorf("interconnect share should decline: %v %v %v", share(16), share(32), share(64))
	}
}

func TestAreaCalibration(t *testing.T) {
	// The four baselines at the paper's 16×16-equivalent configuration
	// must land near the reported layouts (±15%): Systolic 3.52,
	// 2D-Mapping 3.46, Tiling 3.21, FlexFlow 3.89 mm².
	cases := []struct {
		name       string
		pes, local int
		want       float64
	}{
		{"Systolic", 252, 4, 3.52}, // 7×6×6 PEs, two registers each
		{"2D-Mapping", 256, 8, 3.46},
		{"Tiling", 256, 2, 3.21},
		{"FlexFlow", 256, 512, 3.89},
	}
	for _, c := range cases {
		got := Area(c.name, c.pes, c.local, 64*1024)
		if math.Abs(got-c.want)/c.want > 0.15 {
			t.Errorf("%s area = %.2f mm², want ≈ %.2f", c.name, got, c.want)
		}
	}
}

func TestFlexFlowAreaScalesBetter(t *testing.T) {
	// Fig. 19c: at 64×64 the baselines' wiring must have grown faster
	// than FlexFlow's.
	growth := func(name string, local int) float64 {
		return Area(name, 4096, local, 64*1024) / Area(name, 256, local, 64*1024)
	}
	ff := growth("FlexFlow", 512)
	for _, b := range []struct {
		name  string
		local int
	}{{"2D-Mapping", 8}, {"Tiling", 2}} {
		if g := growth(b.name, b.local); g <= ff {
			t.Errorf("%s growth %.2f should exceed FlexFlow growth %.2f", b.name, g, ff)
		}
	}
}

func TestUnknownArchFallsBack(t *testing.T) {
	if Area("Mystery", 256, 0, 64*1024) <= 0 {
		t.Error("fallback area must be positive")
	}
}

func close(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)+math.Abs(b))
}

func TestDefault65nmCalibrationPins(t *testing.T) {
	// Guard the calibration: these constants were fitted to the paper's
	// reported envelope (FlexFlow ≈ 1 W at 16×16/1 GHz, Table 6 split,
	// §6.2.5 interconnect share). Changing them shifts every artifact
	// in EXPERIMENTS.md, so a change must be deliberate.
	p := Default65nm()
	pins := []struct {
		name string
		got  float64
		want float64
	}{
		{"MAC", p.MAC, 1.00},
		{"LocalRead", p.LocalRead, 0.60},
		{"LocalWrite", p.LocalWrite, 0.70},
		{"BufRead", p.BufRead, 6.00},
		{"BufWrite", p.BufWrite, 7.00},
		{"DRAM", p.DRAM, 200.0},
		{"TreeBase", p.TreeBase, 0.75},
		{"TreeAmort", p.TreeAmort, 8.0},
		{"IdlePE", p.IdlePE, 1.0},
	}
	for _, pin := range pins {
		if !close(pin.got, pin.want) {
			t.Errorf("Default65nm.%s = %v, want %v (recalibrate EXPERIMENTS.md if intentional)", pin.name, pin.got, pin.want)
		}
	}
}

func TestIdlePEChargesIdleCyclesOnly(t *testing.T) {
	p := Default65nm()
	busy := arch.LayerResult{PEs: 4, Cycles: 100, MACs: 400} // fully busy
	idle := arch.LayerResult{PEs: 4, Cycles: 100, MACs: 0}   // fully idle
	bb := p.LayerEnergy(busy, 16)
	bi := p.LayerEnergy(idle, 16)
	// Fully busy: no idle charge beyond the MAC-linear terms.
	wantBusy := 400 * p.MAC
	if !close(bb.Compute, wantBusy) {
		t.Errorf("busy compute = %v, want %v", bb.Compute, wantBusy)
	}
	wantIdle := 400 * p.IdlePE
	if !close(bi.Compute, wantIdle) {
		t.Errorf("idle compute = %v, want %v", bi.Compute, wantIdle)
	}
}
