package serve

import (
	"time"

	"flexflow"
)

// backoffDelay computes the wait before retry `attempt` (1-based):
// exponential base·2^(attempt-1) plus deterministic jitter drawn from
// MixSeed(serverSeed, requestSeed, attempt), capped at cap. Keying the
// jitter on the request's own seed — not on arrival order or a shared
// RNG — makes the whole retry timeline a pure function of (server
// seed, request, attempt): byte-identical at any worker count, which
// the determinism suite pins.
func backoffDelay(base, cap time.Duration, serverSeed, requestSeed uint64, attempt int) time.Duration {
	if base <= 0 {
		return 0
	}
	shift := attempt - 1
	if shift > 30 {
		shift = 30 // past ~base·2³⁰ the cap governs anyway
	}
	d := base << uint(shift)
	jitter := time.Duration(flexflow.MixSeed(serverSeed, requestSeed, uint64(attempt)) % uint64(base))
	d += jitter
	if cap > 0 && d > cap {
		d = cap
	}
	return d
}
