package serve

import (
	"math"
	"time"

	"flexflow"
)

// maxBackoff pins the overflow clamp for delay arithmetic: a computed
// delay never exceeds it (≈292 years) and sums against it cannot wrap
// negative.
const maxBackoff = time.Duration(math.MaxInt64)

// backoffDelay computes the wait before retry `attempt` (1-based):
// exponential base·2^(attempt-1) plus deterministic jitter drawn from
// MixSeed(serverSeed, requestSeed, attempt), capped at cap. Keying the
// jitter on the request's own seed — not on arrival order or a shared
// RNG — makes the whole retry timeline a pure function of (server
// seed, request, attempt): byte-identical at any worker count, which
// the determinism suite pins.
func backoffDelay(base, cap time.Duration, serverSeed, requestSeed uint64, attempt int) time.Duration {
	if base <= 0 {
		return 0
	}
	shift := attempt - 1
	if shift > 30 {
		shift = 30 // past ~base·2³⁰ the cap (or the overflow clamp) governs anyway
	}
	// Double up from base instead of shifting in one go: a base above
	// ~8.5s shifted by 30 wraps int64 into a negative "delay" that
	// slips past the cap check and makes Sleep return immediately.
	// Stop as soon as the cap is reached (further doubling cannot
	// change the clamped result) or the next doubling would overflow.
	d := base
	for i := 0; i < shift; i++ {
		if cap > 0 && d >= cap {
			break
		}
		if d > maxBackoff/2 {
			d = maxBackoff
			break
		}
		d <<= 1
	}
	jitter := time.Duration(flexflow.MixSeed(serverSeed, requestSeed, uint64(attempt)) % uint64(base))
	if d > maxBackoff-jitter {
		d = maxBackoff
	} else {
		d += jitter
	}
	if cap > 0 && d > cap {
		d = cap
	}
	return d
}
