package serve

// End-to-end HTTP tests: the happy path, the typed rejection statuses,
// deadlines through the watchdog, the breaker's degrade/recover arc,
// and graceful shutdown with zero dropped in-flight requests.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"flexflow"
)

// newTestServer starts a serve.Server plus an httptest front end and
// registers cleanup. No clock is wired unless the config carries one:
// the serving logic itself must never need it.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("cleanup shutdown: %v", err)
		}
	})
	return s, ts
}

// post fires one request and decodes the JSON body.
func post(t *testing.T, url string, spec map[string]any) (int, map[string]any) {
	t.Helper()
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/run", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatalf("transport error: %v", err)
	}
	defer resp.Body.Close()
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("status %d with undecodable body: %v", resp.StatusCode, err)
	}
	return resp.StatusCode, body
}

func TestServeModelAndExecuteEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{Scale: 8, Workers: 2})

	status, body := post(t, ts.URL, map[string]any{"workload": "LeNet-5", "mode": "model", "scale": 16})
	if status != http.StatusOK {
		t.Fatalf("model run: status %d body %v", status, body)
	}
	if body["cycles"].(float64) <= 0 || body["layers"].(float64) <= 0 {
		t.Errorf("model reply missing measurements: %v", body)
	}

	status, body = post(t, ts.URL, map[string]any{"workload": "Example", "mode": "execute", "scale": 8, "seed": 7})
	if status != http.StatusOK {
		t.Fatalf("execute run: status %d body %v", status, body)
	}
	if body["mode"] != "execute" || body["cycles"].(float64) <= 0 {
		t.Errorf("execute reply malformed: %v", body)
	}

	// Same spec again: the engine is deterministic, so the cycle count
	// must be identical.
	status2, body2 := post(t, ts.URL, map[string]any{"workload": "Example", "mode": "execute", "scale": 8, "seed": 7})
	if status2 != http.StatusOK || body2["cycles"] != body["cycles"] {
		t.Errorf("repeat run diverged: %v vs %v", body2["cycles"], body["cycles"])
	}
}

func TestServeTypedRejections(t *testing.T) {
	_, ts := newTestServer(t, Config{Scale: 8})

	cases := []struct {
		name   string
		spec   map[string]any
		status int
		kind   string
	}{
		{"unknown workload", map[string]any{"workload": "GPT-5"}, http.StatusBadRequest, "invalid"},
		{"missing workload", map[string]any{"mode": "model"}, http.StatusBadRequest, "invalid"},
		{"bad mode", map[string]any{"workload": "Example", "mode": "turbo"}, http.StatusBadRequest, "invalid"},
		{"negative scale", map[string]any{"workload": "Example", "scale": -1}, http.StatusBadRequest, "invalid"},
		{"cycle budget", map[string]any{"workload": "VGG-11", "mode": "model", "max_cycles": 3}, http.StatusTooManyRequests, "budget"},
	}
	for _, c := range cases {
		status, body := post(t, ts.URL, c.spec)
		if status != c.status || body["kind"] != c.kind {
			t.Errorf("%s: status %d kind %v, want %d %q (body %v)", c.name, status, body["kind"], c.status, c.kind, body)
		}
	}

	// A malformed body is a 400, not a hang or a 500.
	resp, err := http.Post(ts.URL+"/v1/run", "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage body: status %d, want 400", resp.StatusCode)
	}
}

func TestServeDeadlineBecomes504(t *testing.T) {
	// Park the single worker in an injected retry Sleep (blocking on a
	// channel, not burning CPU — this container may have one core, so
	// CPU-bound occupancy would also starve the HTTP path). While the
	// worker is parked, a 1 ms-deadline request must surface as a typed
	// 504 from the handler's watchdog, never a hang.
	gate := make(chan struct{})
	parked := make(chan struct{})
	var once sync.Once
	_, ts := newTestServer(t, Config{
		Scale: 8, Workers: 1, EngineWorkers: 1,
		MaxRetries: 1, RetryBase: time.Millisecond, RetryCap: time.Millisecond,
		Sleep: func(time.Duration) {
			once.Do(func() { close(parked) })
			<-gate
		},
	})
	seed := firingFaultSeeds(t, 8, 4, 1)[0]
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		st, _ := post(t, ts.URL, map[string]any{
			"workload": "Example", "mode": "execute", "scale": 8,
			"fault_seed": seed, "fault_n": 4,
		})
		if st != http.StatusOK {
			t.Errorf("parked request: status %d after retry, want 200", st)
		}
	}()
	<-parked
	status, body := post(t, ts.URL, map[string]any{
		"workload": "AlexNet", "mode": "model", "deadline_ms": 1,
	})
	close(gate)
	wg.Wait()
	if status != http.StatusGatewayTimeout || body["kind"] != "cancelled" {
		t.Errorf("deadline: status %d kind %v, want 504 cancelled", status, body["kind"])
	}
}

func TestServeHealthAndStats(t *testing.T) {
	s, ts := newTestServer(t, Config{Scale: 8})
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: status %d, want 200", path, resp.StatusCode)
		}
	}

	post(t, ts.URL, map[string]any{"workload": "Example", "mode": "execute", "scale": 8})
	resp, err := http.Get(ts.URL + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap StatsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Admitted < 1 || snap.OK < 1 || snap.QueueCap == 0 || snap.Breaker.State == "" {
		t.Errorf("stats snapshot incomplete: %+v", snap)
	}
	_ = s
}

// firingFaultSeeds returns n fault_seed values whose chaos plans
// provably fire on the Example workload at the given scale — verified
// directly against the facade, so the serving tests built on them
// cannot rot if the plan generator changes.
func firingFaultSeeds(t *testing.T, scale, faultN, n int) []uint64 {
	t.Helper()
	nw, err := flexflow.Workload("Example")
	if err != nil {
		t.Fatal(err)
	}
	kernels := flexflow.RandomKernels(nw, 0) // Config.Seed default
	var out []uint64
	for seed := uint64(1); seed < 4000 && len(out) < n; seed++ {
		plan := chaosPlan(seed, faultN, scale)
		res, err := flexflow.ExecuteOpts(nw, flexflow.RandomInput(nw, seed), kernels, scale, flexflow.Options{Plan: plan})
		if err == nil && res.FaultsFired > 0 {
			out = append(out, seed)
		}
	}
	if len(out) < n {
		t.Fatalf("found only %d/%d firing fault seeds", len(out), n)
	}
	return out
}

func TestServeRetriesAbsorbTransientFaults(t *testing.T) {
	var mu sync.Mutex
	var timeline []string
	_, ts := newTestServer(t, Config{
		Scale: 8, Workers: 2, MaxRetries: 3,
		RetryBase: time.Millisecond, RetryCap: 50 * time.Millisecond,
		OnRetry: func(spec RunSpec, attempt int, delay time.Duration) {
			mu.Lock()
			timeline = append(timeline, fmt.Sprintf("%d/%d/%v", spec.FaultSeed, attempt, delay))
			mu.Unlock()
		},
	})
	seed := firingFaultSeeds(t, 8, 4, 1)[0]
	status, body := post(t, ts.URL, map[string]any{
		"workload": "Example", "mode": "execute", "scale": 8,
		"seed": 1, "fault_seed": seed, "fault_n": 4,
	})
	if status != http.StatusOK {
		t.Fatalf("faulted request not absorbed: status %d body %v", status, body)
	}
	if body["retries"].(float64) < 1 {
		t.Errorf("reply reports no retries: %v", body)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(timeline) == 0 {
		t.Error("OnRetry never observed the retry")
	}
}

func TestServeRetriesExhaustedBecomes503(t *testing.T) {
	// MaxRetries 0: the first fault is final and must surface as a
	// typed 503 "faulted", not a 500 and not a corrupted 200.
	_, ts := newTestServer(t, Config{Scale: 8, MaxRetries: 0})
	seed := firingFaultSeeds(t, 8, 4, 1)[0]
	status, body := post(t, ts.URL, map[string]any{
		"workload": "Example", "mode": "execute", "scale": 8,
		"seed": 1, "fault_seed": seed, "fault_n": 4,
	})
	if status != http.StatusServiceUnavailable || body["kind"] != "faulted" {
		t.Errorf("exhausted retries: status %d kind %v, want 503 faulted", status, body["kind"])
	}
}

func TestServeBreakerTripsDegradesAndRecovers(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Scale: 8, Workers: 1, MaxRetries: 0,
		BreakerThreshold: 3, BreakerCooldown: 2,
	})
	seeds := firingFaultSeeds(t, 8, 4, 3)

	// Three consecutive fault failures trip the breaker.
	for i, seed := range seeds {
		status, body := post(t, ts.URL, map[string]any{
			"workload": "Example", "mode": "execute", "scale": 8,
			"seed": 100 + i, "fault_seed": seed, "fault_n": 4,
		})
		if status != http.StatusServiceUnavailable || body["kind"] != "faulted" {
			t.Fatalf("fault %d: status %d kind %v", i, status, body["kind"])
		}
	}
	if snap := s.Snapshot(); snap.Breaker.State != breakerOpen || snap.Breaker.Trips != 1 {
		t.Fatalf("breaker after 3 failures: %+v", snap.Breaker)
	}

	// Open breaker: clean requests are served degraded by the analytic
	// model instead of being dropped.
	for i := 0; i < 2; i++ {
		status, body := post(t, ts.URL, map[string]any{
			"workload": "Example", "mode": "execute", "scale": 8, "seed": 200 + i,
		})
		if status != http.StatusOK || body["degraded"] != "analytic" {
			t.Fatalf("degraded %d: status %d degraded %v", i, status, body["degraded"])
		}
	}

	// Cooldown spent: the next request is the half-open probe; it runs
	// clean, succeeds, and closes the breaker.
	status, body := post(t, ts.URL, map[string]any{
		"workload": "Example", "mode": "execute", "scale": 8, "seed": 300,
	})
	if status != http.StatusOK || body["degraded"] != nil {
		t.Fatalf("probe: status %d degraded %v, want full 200", status, body["degraded"])
	}
	snap := s.Snapshot()
	if snap.Breaker.State != breakerClosed || snap.Breaker.Recoveries != 1 {
		t.Errorf("breaker after probe: %+v", snap.Breaker)
	}
	if snap.DegradedAnalytic != 2 {
		t.Errorf("degraded_analytic = %d, want 2", snap.DegradedAnalytic)
	}

	// And a cached result is preferred over recomputing when degrading:
	// trip it again, then re-ask for a seed served earlier.
	for i, seed := range seeds {
		post(t, ts.URL, map[string]any{
			"workload": "Example", "mode": "execute", "scale": 8,
			"seed": 100 + i, "fault_seed": seed, "fault_n": 4,
		})
	}
	status, body = post(t, ts.URL, map[string]any{
		"workload": "Example", "mode": "execute", "scale": 8, "seed": 300,
	})
	if status != http.StatusOK || body["degraded"] != "cache" {
		t.Errorf("cache degrade: status %d degraded %v, want cache", status, body["degraded"])
	}
}

func TestServeGracefulShutdownDropsNothing(t *testing.T) {
	s, err := New(Config{Scale: 8, Workers: 2, Queue: 64})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const n = 24
	statuses := make([]int, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			data, _ := json.Marshal(map[string]any{
				"workload": "Example", "mode": "execute", "scale": 8, "seed": i,
			})
			resp, err := http.Post(ts.URL+"/v1/run", "application/json", bytes.NewReader(data))
			if err != nil {
				statuses[i] = -1
				return
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			_ = resp.Body.Close()
			statuses[i] = resp.StatusCode
		}(i)
	}
	// Let a slice of the burst get admitted, then pull the plug.
	time.Sleep(20 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	wg.Wait()

	var ok2xx, drained int
	for i, st := range statuses {
		switch st {
		case http.StatusOK:
			ok2xx++
		case http.StatusServiceUnavailable:
			drained++
		case -1:
			t.Errorf("request %d: transport error (dropped connection)", i)
		default:
			t.Errorf("request %d: unexpected status %d", i, st)
		}
	}
	// The drain guarantee, sharply: every admitted request finished
	// with a 200; every rejected one got the typed draining 503.
	snap := s.Snapshot()
	if int64(ok2xx) != snap.Admitted {
		t.Errorf("admitted %d but only %d completed ok", snap.Admitted, ok2xx)
	}
	if int64(drained) != snap.RejectedDraining {
		t.Errorf("draining rejections %d vs 503s seen %d", snap.RejectedDraining, drained)
	}
	if snap.InFlight != 0 || snap.QueueDepth != 0 {
		t.Errorf("post-drain residue: in_flight %d queue %d", snap.InFlight, snap.QueueDepth)
	}

	// Shutdown is idempotent and admission stays fenced.
	if err := s.Shutdown(ctx); err != nil {
		t.Errorf("second shutdown: %v", err)
	}
	status, body := post(t, ts.URL, map[string]any{"workload": "Example"})
	if status != http.StatusServiceUnavailable || body["kind"] != "draining" {
		t.Errorf("post-shutdown request: status %d kind %v, want 503 draining", status, body["kind"])
	}
}
