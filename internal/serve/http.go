package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"flexflow"
)

// maxBodyBytes bounds a request body; a RunSpec is a few hundred bytes.
const maxBodyBytes = 1 << 16

// Handler returns the server's HTTP surface:
//
//	POST /v1/run  — one inference request (RunSpec JSON body)
//	GET  /healthz — liveness (200 while the process runs)
//	GET  /readyz  — readiness (503 once draining)
//	GET  /statz   — JSON stats: queue depth, in-flight, retries, breaker
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/run", s.handleRun)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /statz", s.handleStatz)
	return mux
}

// StatusOf maps the typed error taxonomy onto HTTP statuses — the
// table DESIGN.md §9 documents:
//
//	ErrInvalidConfig → 400   (client mistake)
//	ErrOverload      → 429   (queue full; Retry-After)
//	ErrBudget        → 429   (cycle budget exhausted)
//	ErrCancelled     → 504   (deadline/disconnect through the watchdog)
//	ErrDraining      → 503   (shutting down)
//	ErrBreakerOpen   → 503   (load shed; Retry-After)
//	ErrFaulted       → 503   (retries exhausted on transient faults)
//	anything else    → 500   (escaped internal error)
func StatusOf(err error) int {
	switch {
	case err == nil:
		return http.StatusOK
	case errors.Is(err, ErrOverload):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrDraining), errors.Is(err, ErrBreakerOpen):
		return http.StatusServiceUnavailable
	case errors.Is(err, flexflow.ErrInvalidConfig):
		return http.StatusBadRequest
	case errors.Is(err, flexflow.ErrCancelled):
		return http.StatusGatewayTimeout
	case errors.Is(err, flexflow.ErrBudget):
		return http.StatusTooManyRequests
	case errors.Is(err, flexflow.ErrFaulted):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// errKind names the sentinel for machine-readable error bodies.
func errKind(err error) string {
	switch {
	case errors.Is(err, ErrOverload):
		return "overload"
	case errors.Is(err, ErrDraining):
		return "draining"
	case errors.Is(err, ErrBreakerOpen):
		return "breaker_open"
	case errors.Is(err, flexflow.ErrInvalidConfig):
		return "invalid"
	case errors.Is(err, flexflow.ErrCancelled):
		return "cancelled"
	case errors.Is(err, flexflow.ErrBudget):
		return "budget"
	case errors.Is(err, flexflow.ErrFaulted):
		return "faulted"
	default:
		return "internal"
	}
}

// errReply is the JSON error body.
type errReply struct {
	Error   string `json:"error"`
	Kind    string `json:"kind"`
	Retries int    `json:"retries,omitempty"`
}

// handleRun is the request path: decode → admission → wait for the
// executor or the deadline, whichever answers first.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	start := s.now()
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	var spec RunSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		s.writeError(w, start, fmtInvalid("bad request body: %v", err), 0)
		return
	}
	if err := spec.normalize(s.cfg); err != nil {
		s.writeError(w, start, err, 0)
		return
	}

	ctx := r.Context()
	if d := spec.deadline(s.cfg); d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	req := &request{
		spec:  spec,
		key:   spec.batchKey(),
		ctx:   ctx,
		plan:  spec.clientPlan(),
		start: start,
		done:  make(chan response, 1),
	}
	if err := s.admit(req); err != nil {
		s.writeError(w, start, err, 0)
		return
	}
	// From here the drain guarantee holds: exactly one response is
	// written before reqWG releases this request.
	defer s.reqWG.Done()
	select {
	case resp := <-req.done:
		if resp.err != nil {
			s.writeError(w, start, resp.err, resp.retries)
			return
		}
		reply := resp.body
		if !start.IsZero() {
			reply.LatencyMS = float64(s.now().Sub(start)) / 1e6
		}
		s.writeJSON(w, start, http.StatusOK, reply)
	case <-ctx.Done():
		// The deadline (or the client) gave up before the executor got
		// there; the executor will skip or discard its answer.
		s.writeError(w, start, cancelledResponse(req).err, 0)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte("ok\n")) // nothing to do for a gone client
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	status := http.StatusOK
	if draining {
		status = http.StatusServiceUnavailable
	}
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]bool{"ready": !draining})
}

func (s *Server) handleStatz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = json.NewEncoder(w).Encode(s.Snapshot())
}

// writeError renders a typed error with its mapped status and counts
// it; 429/503 rejections carry a Retry-After hint.
func (s *Server) writeError(w http.ResponseWriter, start time.Time, err error, retries int) {
	status := StatusOf(err)
	if status == http.StatusTooManyRequests || errors.Is(err, ErrBreakerOpen) {
		w.Header().Set("Retry-After", "1")
	}
	s.writeJSONStatus(w, start, status, errReply{Error: err.Error(), Kind: errKind(err), Retries: retries})
}

func (s *Server) writeJSON(w http.ResponseWriter, start time.Time, status int, v any) {
	s.writeJSONStatus(w, start, status, v)
}

func (s *Server) writeJSONStatus(w http.ResponseWriter, start time.Time, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v) // a gone client is not a server error
	latency := time.Duration(0)
	measured := !start.IsZero()
	if measured {
		latency = s.now().Sub(start)
	}
	s.stats.finished(status, latency, measured)
}

// fmtInvalid wraps a formatted message in ErrInvalidConfig.
func fmtInvalid(format string, args ...any) error {
	return fmt.Errorf("%w: %s", flexflow.ErrInvalidConfig, fmt.Sprintf(format, args...))
}
