package serve

import (
	"context"
	"time"
)

// unixNano rebuilds a wall-clock instant from its nanosecond count.
func unixNano(ns int64) time.Time { return time.Unix(0, ns) }

// dispatch is the micro-batching stage: it greedily drains the
// admission queue, coalescing same-key requests (same mode, workload,
// arch, scale, budget) into batches of up to MaxBatch, and hands each
// batch to the worker pool. Batching is opportunistic, not timed —
// there is no batching window and no clock: when the queue goes empty
// everything pending flushes immediately, so an idle server adds zero
// latency and a busy one amortizes the compiler plan across the
// backlog. Keys flush in first-arrival order (a slice, not a map
// range, keeps the order deterministic).
func (s *Server) dispatch() {
	defer s.workWG.Done()
	defer close(s.batches)
	pending := map[string][]*request{}
	var order []string

	flushKey := func(key string) {
		batch := pending[key]
		if len(batch) == 0 {
			return
		}
		delete(pending, key)
		s.stats.batchFormed(len(batch))
		s.batches <- batch
	}
	flushAll := func() {
		for _, key := range order {
			flushKey(key)
		}
		order = order[:0]
	}
	add := func(r *request) {
		if _, ok := pending[r.key]; !ok {
			order = append(order, r.key)
		}
		pending[r.key] = append(pending[r.key], r)
		if len(pending[r.key]) >= s.cfg.MaxBatch {
			flushKey(r.key)
		}
	}

	for {
		r, ok := <-s.queue
		if !ok {
			flushAll()
			return
		}
		add(r)
		// Greedy drain: batch whatever is already queued, then flush.
	drain:
		for {
			select {
			case r2, ok2 := <-s.queue:
				if !ok2 {
					flushAll()
					return
				}
				add(r2)
			default:
				break drain
			}
		}
		flushAll()
	}
}

// worker executes batches until the dispatcher closes the feed.
func (s *Server) worker() {
	defer s.workWG.Done()
	for batch := range s.batches {
		s.runBatch(batch)
	}
}

// runBatch answers one micro-batch: requests whose context already
// expired are answered as cancelled without touching an engine; the
// rest pass the circuit breaker (executing normally, or degrading when
// it is open) and are executed.
func (s *Server) runBatch(batch []*request) {
	live := batch[:0]
	for _, r := range batch {
		if r.ctx.Err() != nil {
			r.respond(cancelledResponse(r))
			continue
		}
		live = append(live, r)
	}
	if len(live) == 0 {
		return
	}
	s.stats.execStarted(len(live))
	defer s.stats.execFinished(len(live))

	ok, probe := s.breaker.allow()
	if !ok {
		for _, r := range live {
			s.degrade(r)
		}
		return
	}
	if probe {
		// Release the probe slot however this batch ends — including
		// paths that never reach record() (cache hits, invalid
		// workloads, expired deadlines) — so one unresolved probe can
		// never wedge the breaker half-open forever.
		defer s.breaker.probeDone()
	}
	s.execute(live)
}

// batchContext derives the watchdog context for a multi-request batch:
// the latest member deadline if every member has one, otherwise
// unbounded. (A single-member batch uses the member's own context
// directly, which also observes client disconnects.) Members whose own
// deadline fires earlier are answered individually by their handler;
// the batch keeps running for whoever remains.
func batchContext(batch []*request) (context.Context, context.CancelFunc) {
	if len(batch) == 1 {
		return batch[0].ctx, func() {}
	}
	var latest int64
	bounded := true
	for _, r := range batch {
		d, ok := r.ctx.Deadline()
		if !ok {
			bounded = false
			break
		}
		if ns := d.UnixNano(); ns > latest {
			latest = ns
		}
	}
	// Derive from a member context with cancellation detached
	// (ctxflow/background: never mint a root context in a library):
	// the batch keeps the request-scoped values but one member's
	// disconnect cannot cancel its batch siblings.
	base := context.WithoutCancel(batch[0].ctx)
	if !bounded {
		return context.WithCancel(base)
	}
	return context.WithDeadline(base, unixNano(latest))
}
