package serve

import (
	"sort"
	"sync"
	"time"
)

// latencySamples bounds the latency reservoir: the most recent samples
// win (a ring), which is what a live p50/p99 wants.
const latencySamples = 4096

// Stats is the server's live counter set. All methods are safe for
// concurrent use; snapshot() renders a consistent copy for /statz.
type Stats struct {
	// guards: admitted, rejectedFull, rejectedDrain, ok, badRequest,
	// overload, unavailable, timeout, internal, inFlight, batches,
	// batchedImages, maxBatch, retries, backoffNS, degradedCache,
	// degradedAnalytic, shed, breakerTrips, lat, latIdx, latCount
	mu       sync.Mutex
	queueCap int // immutable after newStats

	admitted      int64
	rejectedFull  int64
	rejectedDrain int64

	ok          int64
	badRequest  int64
	overload    int64
	unavailable int64
	timeout     int64
	internal    int64

	inFlight      int64
	batches       int64
	batchedImages int64
	maxBatch      int

	retries   int64
	backoffNS int64

	degradedCache    int64
	degradedAnalytic int64
	shed             int64
	breakerTrips     int64

	lat      []time.Duration
	latIdx   int
	latCount int64
}

func newStats(queueCap int) *Stats {
	return &Stats{queueCap: queueCap}
}

func (s *Stats) admitOne()          { s.mu.Lock(); s.admitted++; s.mu.Unlock() }
func (s *Stats) rejectedQueueFull() { s.mu.Lock(); s.rejectedFull++; s.mu.Unlock() }
func (s *Stats) rejectedDraining()  { s.mu.Lock(); s.rejectedDrain++; s.mu.Unlock() }

func (s *Stats) batchFormed(size int) {
	s.mu.Lock()
	s.batches++
	s.batchedImages += int64(size)
	if size > s.maxBatch {
		s.maxBatch = size
	}
	s.mu.Unlock()
}

func (s *Stats) execStarted(n int)  { s.mu.Lock(); s.inFlight += int64(n); s.mu.Unlock() }
func (s *Stats) execFinished(n int) { s.mu.Lock(); s.inFlight -= int64(n); s.mu.Unlock() }

func (s *Stats) retried(delay time.Duration) {
	s.mu.Lock()
	s.retries++
	s.backoffNS += int64(delay)
	s.mu.Unlock()
}

func (s *Stats) degraded(kind string) {
	s.mu.Lock()
	switch kind {
	case "cache":
		s.degradedCache++
	case "analytic":
		s.degradedAnalytic++
	default:
		s.shed++
	}
	s.mu.Unlock()
}

func (s *Stats) breakerTripped() { s.mu.Lock(); s.breakerTrips++; s.mu.Unlock() }

// finished records the HTTP outcome of one request and, when a clock
// is wired, its end-to-end latency.
func (s *Stats) finished(status int, latency time.Duration, measured bool) {
	s.mu.Lock()
	switch {
	case status >= 200 && status < 300:
		s.ok++
	case status == 400:
		s.badRequest++
	case status == 429:
		s.overload++
	case status == 503:
		s.unavailable++
	case status == 504:
		s.timeout++
	default:
		s.internal++
	}
	if measured {
		if len(s.lat) < latencySamples {
			s.lat = append(s.lat, latency)
		} else {
			s.lat[s.latIdx] = latency
			s.latIdx = (s.latIdx + 1) % latencySamples
		}
		s.latCount++
	}
	s.mu.Unlock()
}

// LatencySnapshot summarizes the reservoir in milliseconds.
type LatencySnapshot struct {
	Count int64   `json:"count"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

// LayerCacheSnapshot is the wire form of the analytic layer cache's
// activity in /statz.
type LayerCacheSnapshot struct {
	Enabled   bool  `json:"enabled"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Entries   int   `json:"entries"`
	Capacity  int   `json:"capacity"`
}

// StatsSnapshot is the wire form of /statz.
type StatsSnapshot struct {
	Admitted          int64 `json:"admitted"`
	RejectedQueueFull int64 `json:"rejected_queue_full"`
	RejectedDraining  int64 `json:"rejected_draining"`

	OK          int64 `json:"ok_2xx"`
	BadRequest  int64 `json:"bad_request_400"`
	Overload    int64 `json:"overload_429"`
	Unavailable int64 `json:"unavailable_503"`
	Timeout     int64 `json:"timeout_504"`
	Internal    int64 `json:"internal_500"`

	QueueDepth int   `json:"queue_depth"`
	QueueCap   int   `json:"queue_cap"`
	InFlight   int64 `json:"in_flight"`

	Batches       int64   `json:"batches"`
	BatchedImages int64   `json:"batched_images"`
	MaxBatch      int     `json:"max_batch_seen"`
	MeanBatch     float64 `json:"mean_batch"`

	Retries        int64   `json:"retries"`
	RetryBackoffMS float64 `json:"retry_backoff_ms_total"`

	DegradedCache    int64 `json:"degraded_cache"`
	DegradedAnalytic int64 `json:"degraded_analytic"`
	Shed             int64 `json:"shed"`
	BreakerTrips     int64 `json:"breaker_trips"`

	Breaker    BreakerSnapshot    `json:"breaker"`
	LayerCache LayerCacheSnapshot `json:"layer_cache"`
	Latency    LatencySnapshot    `json:"latency_ms"`
}

func (s *Stats) snapshot(queueDepth int, br BreakerSnapshot, lc LayerCacheSnapshot) StatsSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := StatsSnapshot{
		Admitted:          s.admitted,
		RejectedQueueFull: s.rejectedFull,
		RejectedDraining:  s.rejectedDrain,
		OK:                s.ok,
		BadRequest:        s.badRequest,
		Overload:          s.overload,
		Unavailable:       s.unavailable,
		Timeout:           s.timeout,
		Internal:          s.internal,
		QueueDepth:        queueDepth,
		QueueCap:          s.queueCap,
		InFlight:          s.inFlight,
		Batches:           s.batches,
		BatchedImages:     s.batchedImages,
		MaxBatch:          s.maxBatch,
		Retries:           s.retries,
		RetryBackoffMS:    float64(s.backoffNS) / 1e6,
		DegradedCache:     s.degradedCache,
		DegradedAnalytic:  s.degradedAnalytic,
		Shed:              s.shed,
		BreakerTrips:      s.breakerTrips,
		Breaker:           br,
		LayerCache:        lc,
	}
	if s.batches > 0 {
		snap.MeanBatch = float64(s.batchedImages) / float64(s.batches)
	}
	snap.Latency = latencySummary(s.lat, s.latCount)
	return snap
}

// latencySummary computes percentiles over a copy of the reservoir.
func latencySummary(lat []time.Duration, count int64) LatencySnapshot {
	if len(lat) == 0 {
		return LatencySnapshot{}
	}
	sorted := make([]time.Duration, len(lat))
	copy(sorted, lat)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	pick := func(q float64) float64 {
		idx := int(q * float64(len(sorted)-1))
		return float64(sorted[idx]) / 1e6
	}
	return LatencySnapshot{
		Count: count,
		P50:   pick(0.50),
		P90:   pick(0.90),
		P99:   pick(0.99),
		Max:   float64(sorted[len(sorted)-1]) / 1e6,
	}
}
