package serve

// Analytic-mode serving: the whole-network closed-form walk behind
// POST /v1/run {"mode":"analytic"}, its parity with execute-mode
// counters, the shared layer cache's hit accounting across repeated
// requests, and its surfacing in /statz.

import (
	"encoding/json"
	"net/http"
	"testing"
)

func TestServeAnalyticEndToEnd(t *testing.T) {
	s, ts := newTestServer(t, Config{Scale: 8, Workers: 2})

	status, body := post(t, ts.URL, map[string]any{"workload": "LeNet-5", "mode": "analytic", "scale": 8})
	if status != http.StatusOK {
		t.Fatalf("analytic run: status %d body %v", status, body)
	}
	if body["mode"] != ModeAnalytic || body["cycles"].(float64) <= 0 {
		t.Fatalf("analytic reply malformed: %v", body)
	}
	if body["pool_cycles"].(float64) <= 0 {
		t.Errorf("analytic reply lost the pooling accounting: %v", body)
	}

	// The analytic counters must match the functional execute run on
	// the same workload and scale (the parity contract, served).
	status, exec := post(t, ts.URL, map[string]any{"workload": "LeNet-5", "mode": "execute", "scale": 8, "seed": 3})
	if status != http.StatusOK {
		t.Fatalf("execute run: status %d body %v", status, exec)
	}
	if body["cycles"] != exec["cycles"] || body["macs"] != exec["macs"] || body["pool_cycles"] != exec["pool_cycles"] {
		t.Errorf("analytic/execute counters diverge:\nanalytic %v\nexecute  %v", body, exec)
	}

	// A repeated analytic request is answered from the reply cache, and
	// the layer cache has recorded the first walk's shapes.
	if _, again := post(t, ts.URL, map[string]any{"workload": "LeNet-5", "mode": "analytic", "scale": 8}); again["cycles"] != body["cycles"] {
		t.Errorf("repeated analytic request diverged: %v vs %v", again, body)
	}
	snap := s.Snapshot()
	if !snap.LayerCache.Enabled || snap.LayerCache.Entries == 0 || snap.LayerCache.Misses == 0 {
		t.Errorf("layer cache saw no analytic traffic: %+v", snap.LayerCache)
	}
}

// TestServeLayerCacheHitsAcrossRequests pins cross-request memoization:
// model-mode requests for the same workload on distinct arches populate
// distinct entries, and a re-request hits instead of re-evaluating.
// (The reply cache is keyed per spec, so the layer-level hit is
// observed via a different arch sharing layer shapes — here the same
// arch re-requested after the reply cache is bypassed by scale.)
func TestServeLayerCacheHitsAcrossRequests(t *testing.T) {
	s, ts := newTestServer(t, Config{Scale: 8, Workers: 1})

	if status, body := post(t, ts.URL, map[string]any{"workload": "LeNet-5", "mode": "model", "scale": 8}); status != http.StatusOK {
		t.Fatalf("model run: status %d body %v", status, body)
	}
	after1 := s.Snapshot().LayerCache
	if after1.Misses == 0 || after1.Entries == 0 {
		t.Fatalf("first model run did not populate the layer cache: %+v", after1)
	}
	// Same workload+arch+scale in analytic mode: the CONV layer shapes
	// (and their engine config) are identical, so the walk must hit.
	if status, body := post(t, ts.URL, map[string]any{"workload": "LeNet-5", "mode": "analytic", "scale": 8}); status != http.StatusOK {
		t.Fatalf("analytic run: status %d body %v", status, body)
	}
	after2 := s.Snapshot().LayerCache
	if after2.Hits <= after1.Hits {
		t.Errorf("analytic walk did not reuse model-mode entries: %+v then %+v", after1, after2)
	}
}

// TestServeLayerCacheDisabled pins the off switch: a negative capacity
// serves correctly with the cache reported disabled in /statz.
func TestServeLayerCacheDisabled(t *testing.T) {
	s, ts := newTestServer(t, Config{Scale: 8, Workers: 1, LayerCacheCap: -1})
	if status, body := post(t, ts.URL, map[string]any{"workload": "Example", "mode": "analytic"}); status != http.StatusOK {
		t.Fatalf("analytic run without cache: status %d body %v", status, body)
	}
	snap := s.Snapshot()
	if snap.LayerCache.Enabled || snap.LayerCache.Entries != 0 {
		t.Errorf("disabled cache still reports activity: %+v", snap.LayerCache)
	}

	// /statz carries the layer_cache block either way.
	resp, err := http.Get(ts.URL + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var statz map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&statz); err != nil {
		t.Fatal(err)
	}
	lc, ok := statz["layer_cache"].(map[string]any)
	if !ok {
		t.Fatalf("/statz has no layer_cache block: %v", statz)
	}
	if lc["enabled"] != false {
		t.Errorf("layer_cache should be disabled: %v", lc)
	}
}
