// Package serve is flexserve: a fault-tolerant concurrent inference
// service over the flexflow facade. It is the repository's
// "millions of users" story made concrete — a long-running server
// whose failure behavior is engineered and tested, not hoped for:
//
//   - admission control: a bounded request queue; when it is full the
//     request is rejected immediately with a typed ErrOverload
//     (HTTP 429 + Retry-After) instead of growing without bound;
//   - per-request deadlines: threaded as a context into the engines'
//     existing watchdog path, so an expired deadline stops the
//     simulation at the next schedule boundary and surfaces as a typed
//     ErrCancelled (HTTP 504);
//   - dynamic micro-batching: simultaneously queued requests for the
//     same (mode, workload, arch, scale) coalesce into one
//     ExecuteBatchOpts call, paying the compiler plan once and fanning
//     images across the engine scheduler (Options.Workers);
//   - a retry layer: requests that fail with the transient ErrFaulted
//     (an injected hardware fault detected by the quarantine stage)
//     are retried with deterministic, seed-driven exponential backoff
//     plus jitter — same seed, same fault schedule, same timeline at
//     any worker count;
//   - a circuit breaker: consecutive backend failures trip it open;
//     while open the server degrades gracefully — cached results, then
//     the pure analytic model, then a typed ErrBreakerOpen shed — and
//     a half-open probe closes it again once the backend recovers;
//   - graceful shutdown: Shutdown stops admission, drains the queue
//     and every in-flight request to a real response, then stops the
//     worker pool; zero admitted requests are dropped.
//
// The package is bound by the repository's determinism contract
// (flexlint detsim): it never reads the wall clock or a global RNG
// itself. Time enters only through the injected Config.Now/Sleep
// (cmd/flexserve wires the real clock; tests wire a virtual one), and
// all jitter derives from splitmix64 seed mixing.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"flexflow"
)

// Typed admission/degradation failures of the serving layer, matching
// the facade's sentinel style. The HTTP layer maps them (with the
// facade's ErrBudget/ErrCancelled/ErrFaulted) onto status codes; see
// StatusOf.
var (
	// ErrOverload is returned when the bounded admission queue is full:
	// the caller should back off and retry (HTTP 429 + Retry-After).
	ErrOverload = errors.New("serve: admission queue full")
	// ErrDraining is returned when the server is shutting down and no
	// longer admits work (HTTP 503).
	ErrDraining = errors.New("serve: server draining")
	// ErrBreakerOpen is returned when the circuit breaker is open and
	// the request could not be served degraded (HTTP 503 + Retry-After).
	ErrBreakerOpen = errors.New("serve: circuit breaker open, load shed")
)

// Config parameterizes a Server. The zero value of every field has a
// usable default (see New); the zero Config serves analytic requests
// serially with a 64-deep queue and no retries.
type Config struct {
	// Scale is the default PE-array edge for requests that do not name
	// one (default 16, the paper's configuration).
	Scale int
	// Queue is the admission queue capacity; a full queue rejects with
	// ErrOverload (default 64).
	Queue int
	// Workers is the number of batch-executing worker goroutines
	// (default 1). Each worker runs one micro-batch at a time.
	Workers int
	// EngineWorkers is the Options.Workers width passed to each engine
	// run — the per-engine scheduler pool that fans batch images (and
	// model layers) out; 0 means GOMAXPROCS, 1 serial.
	EngineWorkers int
	// MaxBatch caps how many same-key requests coalesce into one
	// micro-batch (default 8).
	MaxBatch int
	// DefaultDeadline bounds requests that do not carry their own
	// deadline_ms; 0 means no default deadline.
	DefaultDeadline time.Duration
	// MaxCycles is the default modelled-cycle budget per request
	// (watchdog ErrBudget → HTTP 429); 0 means unbounded.
	MaxCycles int64
	// MaxRetries is how many times a request that failed with the
	// transient ErrFaulted is retried (default 0: no retries).
	MaxRetries int
	// RetryBase is the exponential-backoff base: retry k waits
	// base·2^(k-1) plus deterministic jitter in [0, base), capped at
	// RetryCap. 0 disables waiting (retries are immediate).
	RetryBase time.Duration
	// RetryCap bounds a single backoff wait; 0 means uncapped.
	RetryCap time.Duration
	// Seed drives everything pseudo-random in the server: the resident
	// kernel operands and the retry jitter streams (via MixSeed).
	Seed uint64
	// BreakerThreshold is the number of consecutive backend failures
	// (ErrFaulted/ErrInternal outcomes after retries) that trip the
	// circuit breaker open (default 5).
	BreakerThreshold int
	// BreakerCooldown is how many requests are shed/degraded while the
	// breaker is open before it goes half-open and admits one probe
	// (default 16).
	BreakerCooldown int
	// FaultEvery, when positive, arms a deterministic fault-injection
	// plan on every FaultEvery-th admitted execute request (the chaos
	// knob of cmd/flexserve); FaultN and FaultSeed shape the plans.
	FaultEvery int
	// FaultN is the number of fault events per chaos plan (default 4).
	FaultN int
	// FaultSeed seeds the chaos plans; each marked request gets an
	// independent plan via MixSeed(FaultSeed, seq).
	FaultSeed uint64
	// LayerCacheCap bounds the shared analytic layer-result cache that
	// memoizes model- and analytic-mode evaluation across requests
	// (default 256 entries; negative disables the cache entirely).
	LayerCacheCap int
	// Now is the injected clock for latency accounting. nil disables
	// latency measurement (the serving logic itself never needs a
	// clock — detsim). cmd/flexserve passes time.Now.
	Now func() time.Time
	// Sleep is the injected sleeper for retry backoff. nil means
	// retries do not wait (virtual time; tests record the timeline via
	// OnRetry instead). cmd/flexserve passes time.Sleep.
	Sleep func(time.Duration)
	// OnRetry, when non-nil, observes every scheduled retry: the
	// request's spec, the attempt number (1-based) and the
	// deterministic backoff delay. Tests use it to pin the retry
	// timeline.
	OnRetry func(spec RunSpec, attempt int, delay time.Duration)
}

// withDefaults fills the zero fields.
func (c Config) withDefaults() Config {
	if c.Scale == 0 {
		c.Scale = 16
	}
	if c.Queue == 0 {
		c.Queue = 64
	}
	if c.Workers == 0 {
		c.Workers = 1
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 8
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown == 0 {
		c.BreakerCooldown = 16
	}
	if c.FaultN == 0 {
		c.FaultN = 4
	}
	if c.LayerCacheCap == 0 {
		c.LayerCacheCap = 256
	}
	return c
}

// Server is the serving engine: admission queue, micro-batching
// dispatcher, worker pool, retry layer, circuit breaker, result cache
// and stats. Create one with New, expose it with Handler, stop it with
// Shutdown.
type Server struct {
	cfg     Config
	queue   chan *request
	batches chan []*request

	// reqWG tracks admitted requests until their handler has written a
	// response; Shutdown's drain guarantee is this waitgroup.
	reqWG sync.WaitGroup
	// workWG tracks the dispatcher and the workers.
	workWG sync.WaitGroup

	mu       sync.Mutex // guards: draining, seq
	draining bool
	seq      uint64

	stats   *Stats
	breaker *breaker

	cacheMu sync.Mutex // guards: cache
	cache   map[string]runReply

	engineMu sync.Mutex // guards: engines
	engines  map[string]flexflow.Engine

	kernelMu sync.Mutex // guards: kernels
	kernels  map[string][]*flexflow.Kernel4

	// layerCache memoizes analytic layer results across requests (model
	// and analytic modes). It synchronizes internally and its eviction
	// is deterministic; nil when Config.LayerCacheCap is negative.
	layerCache *flexflow.LayerCache
}

// New builds and starts a server: the dispatcher and Workers batch
// executors begin running immediately. It never returns an error for a
// zero Config (defaults apply); negative knobs are invalid.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.Scale < 0 || cfg.Queue < 0 || cfg.Workers < 0 || cfg.MaxBatch < 1 ||
		cfg.MaxRetries < 0 || cfg.BreakerThreshold < 1 || cfg.BreakerCooldown < 1 ||
		cfg.FaultEvery < 0 || cfg.MaxCycles < 0 {
		return nil, fmt.Errorf("%w: negative serving parameter", flexflow.ErrInvalidConfig)
	}
	s := &Server{
		cfg:     cfg,
		queue:   make(chan *request, cfg.Queue),
		batches: make(chan []*request),
		stats:   newStats(cfg.Queue),
		breaker: newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown),
		cache:   map[string]runReply{},
		engines: map[string]flexflow.Engine{},
		kernels: map[string][]*flexflow.Kernel4{},
		// NewLayerCache returns nil for capacities < 1, which disables
		// memoization (negative LayerCacheCap is the off switch).
		layerCache: flexflow.NewLayerCache(cfg.LayerCacheCap),
	}
	s.workWG.Add(1 + cfg.Workers)
	go s.dispatch()
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s, nil
}

// Stats returns the server's live counters.
func (s *Server) Stats() *Stats { return s.stats }

// Snapshot returns a point-in-time copy of the stats, including the
// current queue depth, breaker state and layer-cache activity.
func (s *Server) Snapshot() StatsSnapshot {
	lc := LayerCacheSnapshot{Enabled: s.layerCache != nil}
	if cs := s.layerCache.Stats(); lc.Enabled {
		lc.Hits = cs.Hits
		lc.Misses = cs.Misses
		lc.Evictions = cs.Evictions
		lc.Entries = cs.Entries
		lc.Capacity = cs.Capacity
	}
	return s.stats.snapshot(len(s.queue), s.breaker.snapshot(), lc)
}

// now reads the injected clock; the zero time means "no clock".
func (s *Server) now() time.Time {
	if s.cfg.Now == nil {
		return time.Time{}
	}
	return s.cfg.Now()
}

// admit runs the admission-control stage: refused while draining,
// rejected with ErrOverload when the bounded queue is full, otherwise
// sequenced, chaos-marked and enqueued. Admission and sequencing are
// one critical section so Shutdown can fence new work exactly.
func (s *Server) admit(req *request) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.stats.rejectedDraining()
		return ErrDraining
	}
	req.seq = s.seq
	s.seq++
	s.armChaos(req)
	select {
	case s.queue <- req:
		s.reqWG.Add(1)
		s.mu.Unlock()
		s.stats.admitOne()
		return nil
	default:
		s.mu.Unlock()
		s.stats.rejectedQueueFull()
		return ErrOverload
	}
}

// armChaos installs the server-side fault-injection plan on every
// FaultEvery-th admitted execute request (client-requested plans via
// fault_seed take precedence; model-mode requests run the pure
// analytic path and are never fault-marked).
func (s *Server) armChaos(req *request) {
	if req.plan != nil || req.spec.Mode != ModeExecute {
		return
	}
	if s.cfg.FaultEvery > 0 && req.seq%uint64(s.cfg.FaultEvery) == 0 {
		req.plan = chaosPlan(flexflow.MixSeed(s.cfg.FaultSeed, req.seq), s.cfg.FaultN, req.spec.Scale)
	}
}

// chaosPlan draws a deterministic fault plan sized to the engine.
func chaosPlan(seed uint64, n, scale int) *flexflow.FaultPlan {
	return flexflow.RandomFaultPlan(seed, n, flexflow.FaultBounds{
		Cycles: 256, Rows: scale, Cols: scale,
		NeuronWords: 1 << 10, KernelWords: 1 << 10,
	})
}

// Shutdown drains the server gracefully: admission stops (new requests
// get ErrDraining), the queue is closed so the dispatcher and workers
// run the backlog dry, and every already-admitted request is waited on
// until its handler has written a real response — zero in-flight
// drops. The context bounds the wait; on expiry the workers keep
// draining in the background but Shutdown reports the incomplete
// drain. Shutdown is idempotent.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	s.mu.Unlock()
	if !already {
		// No admit call can be between its draining check and its queue
		// send now (both happen under mu), so closing the queue is safe
		// and lets the dispatcher flush its tail.
		close(s.queue)
	}

	done := make(chan struct{})
	go func() {
		s.reqWG.Wait()  // every admitted request answered
		s.workWG.Wait() // dispatcher and workers exited
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("%w: drain incomplete: %v", ErrDraining, ctx.Err())
	}
}
