package serve

// Satellite determinism contract: the retry/backoff machinery is a
// pure function of (server seed, request, attempt). Replaying the same
// fault schedule against servers with different worker counts must
// produce a byte-identical retry timeline and identical counters —
// scheduling may reorder execution, never outcomes.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

// replayFaultSchedule fires the same request set (half fault-marked,
// half clean) at a fresh server with the given worker count and
// returns the sorted retry timeline plus the counters that must not
// depend on scheduling.
func replayFaultSchedule(t *testing.T, workers int, faultSeeds []uint64) (timeline string, retries, ok, faulted int) {
	t.Helper()
	var mu sync.Mutex
	var events []string
	s, err := New(Config{
		Scale: 8, Workers: workers, Queue: 64, MaxRetries: 3,
		RetryBase: 2 * time.Millisecond, RetryCap: 100 * time.Millisecond,
		Seed: 11,
		// No Sleep: retries are immediate; the timeline is virtual.
		OnRetry: func(spec RunSpec, attempt int, delay time.Duration) {
			mu.Lock()
			events = append(events, fmt.Sprintf("fault_seed=%d attempt=%d delay=%v", spec.FaultSeed, attempt, delay))
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		_ = s.Shutdown(t.Context())
	}()

	n := 2 * len(faultSeeds)
	var wg sync.WaitGroup
	wg.Add(n)
	results := make([]int, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			spec := map[string]any{"workload": "Example", "mode": "execute", "scale": 8, "seed": 1}
			if i < len(faultSeeds) {
				spec["fault_seed"] = faultSeeds[i]
				spec["fault_n"] = 4
			} else {
				spec["seed"] = 1000 + i // clean traffic interleaved
			}
			data, _ := json.Marshal(spec)
			resp, err := http.Post(ts.URL+"/v1/run", "application/json", bytes.NewReader(data))
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			_ = resp.Body.Close()
			results[i] = resp.StatusCode
		}(i)
	}
	wg.Wait()

	for i, st := range results {
		switch st {
		case http.StatusOK:
			ok++
		case http.StatusServiceUnavailable:
			faulted++
		default:
			t.Errorf("workers=%d request %d: unexpected status %d", workers, i, st)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	retries = len(events)
	// Arrival order varies with scheduling; the per-request content
	// must not. Sorting normalizes the former and pins the latter.
	sort.Strings(events)
	return strings.Join(events, "\n"), retries, ok, faulted
}

func TestRetryTimelineIdenticalAtAnyWorkerCount(t *testing.T) {
	faultSeeds := firingFaultSeeds(t, 8, 4, 4)
	baseline, baseRetries, baseOK, baseFaulted := replayFaultSchedule(t, 1, faultSeeds)
	if baseRetries == 0 {
		t.Fatal("fault schedule produced no retries; the test is vacuous")
	}
	if baseOK == 0 {
		t.Fatal("no request succeeded")
	}
	for _, workers := range []int{2, 8} {
		timeline, retries, ok, faulted := replayFaultSchedule(t, workers, faultSeeds)
		if timeline != baseline {
			t.Errorf("workers=%d: retry timeline diverged\n--- workers=1 ---\n%s\n--- workers=%d ---\n%s",
				workers, baseline, workers, timeline)
		}
		if retries != baseRetries || ok != baseOK || faulted != baseFaulted {
			t.Errorf("workers=%d: counters (retries=%d ok=%d faulted=%d) != baseline (%d %d %d)",
				workers, retries, ok, faulted, baseRetries, baseOK, baseFaulted)
		}
	}

	// The timeline is also exactly reconstructible from the backoff
	// function alone — nothing hidden feeds it.
	for _, seed := range faultSeeds {
		want := fmt.Sprintf("fault_seed=%d attempt=1 delay=%v", seed,
			backoffDelay(2*time.Millisecond, 100*time.Millisecond, 11, 1, 1))
		if !strings.Contains(baseline, want) {
			t.Errorf("timeline missing reconstructed entry %q", want)
		}
	}
}
