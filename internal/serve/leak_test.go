package serve

// Goroutine-hygiene test: a served-and-shut-down server must leave no
// goroutines behind. This is the runtime counterpart of the static
// goleak analyzer — the conc_manifest says every spawn has join
// evidence; this test says the evidence actually holds at runtime.

import (
	"context"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"
)

// TestNoGoroutineLeakAfterClose serves a mixed batch of requests, shuts
// the server down, and requires the goroutine count to return to its
// pre-New baseline. The dispatcher, every worker, and Shutdown's own
// drain-waiter must all have exited.
func TestNoGoroutineLeakAfterClose(t *testing.T) {
	// Settle any goroutines left over from earlier tests before taking
	// the baseline.
	runtime.GC()
	time.Sleep(20 * time.Millisecond)
	baseline := runtime.NumGoroutine()

	s, err := New(Config{Scale: 8, Workers: 3, Queue: 16})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())

	for i := 0; i < 8; i++ {
		spec := map[string]any{"workload": "Example", "mode": "model", "scale": 8}
		if i%2 == 1 {
			spec = map[string]any{"workload": "Example", "mode": "execute", "scale": 8, "seed": i}
		}
		if status, body := post(t, ts.URL, spec); status != 200 {
			t.Fatalf("request %d: status %d body %v", i, status, body)
		}
	}

	ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	// httptest and the net/http client park a few goroutines that wind
	// down asynchronously after Close; poll until the count is back to
	// the baseline instead of asserting instantly.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: baseline %d, now %d\n%s",
				baseline, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(25 * time.Millisecond)
	}
}
