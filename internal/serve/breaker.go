package serve

import "sync"

// breaker states.
const (
	breakerClosed   = "closed"
	breakerOpen     = "open"
	breakerHalfOpen = "half-open"
)

// breaker is a request-count-based circuit breaker (deterministic: no
// clocks). Closed, it counts consecutive backend failures; at
// threshold it opens. Open, it refuses execution for cooldown
// decisions (each refused batch degrades instead), then goes half-open
// and lets exactly one probe batch through: a probe success closes the
// breaker, a probe failure re-opens it for another cooldown.
type breaker struct {
	mu        sync.Mutex // guards: state, fails, shed, probing, trips, probes, recovers
	threshold int        // immutable after newBreaker
	cooldown  int        // immutable after newBreaker

	state    string
	fails    int // consecutive failures while closed
	shed     int // decisions refused while open
	probing  bool
	trips    int64
	probes   int64
	recovers int64
}

func newBreaker(threshold, cooldown int) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown, state: breakerClosed}
}

// allow decides whether the next batch may execute. While open it
// counts the refusal toward the cooldown; when the cooldown is spent
// the breaker goes half-open and admits one probe. probe reports that
// the admitted batch IS that probe: its runner owns the probe slot and
// must release it via probeDone once the batch has fully resolved,
// whether or not any outcome reached record().
func (b *breaker) allow() (ok, probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true, false
	case breakerHalfOpen:
		if b.probing {
			return false, false // one probe at a time; others stay degraded
		}
		b.probing = true
		b.probes++
		return true, true
	default: // open
		b.shed++
		if b.shed >= b.cooldown {
			b.state = breakerHalfOpen
			b.shed = 0
		}
		return false, false
	}
}

// probeDone releases the half-open probe slot after the probe batch
// has resolved. record() already clears the slot when it delivers a
// backend verdict, making this a no-op; probeDone matters for probe
// batches that end without one — a cache hit, an invalid workload, an
// expired deadline, a cancelled context or a spent cycle budget. The
// breaker then stays half-open so the next batch becomes the probe,
// instead of wedging with probing set forever.
func (b *breaker) probeDone() {
	b.mu.Lock()
	b.probing = false
	b.mu.Unlock()
}

// record feeds one request outcome back. It reports whether this
// outcome tripped the breaker open.
func (b *breaker) record(ok bool) (tripped bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if ok {
		if b.state == breakerHalfOpen {
			b.recovers++
		}
		b.state = breakerClosed
		b.fails = 0
		b.probing = false
		return false
	}
	switch b.state {
	case breakerHalfOpen:
		// The probe failed: straight back to open for another cooldown.
		b.state = breakerOpen
		b.shed = 0
		b.probing = false
		b.trips++
		return true
	case breakerClosed:
		b.fails++
		if b.fails >= b.threshold {
			b.state = breakerOpen
			b.fails = 0
			b.shed = 0
			b.trips++
			return true
		}
	}
	return false
}

// BreakerSnapshot is the breaker's observable state for /statz.
type BreakerSnapshot struct {
	State            string `json:"state"`
	ConsecutiveFails int    `json:"consecutive_fails"`
	Trips            int64  `json:"trips"`
	Probes           int64  `json:"probes"`
	Recoveries       int64  `json:"recoveries"`
}

func (b *breaker) snapshot() BreakerSnapshot {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BreakerSnapshot{
		State:            b.state,
		ConsecutiveFails: b.fails,
		Trips:            b.trips,
		Probes:           b.probes,
		Recoveries:       b.recovers,
	}
}
