package serve

// Unit tests for the serving primitives: admission control, the
// micro-batching dispatcher, the circuit breaker's state machine, the
// deterministic backoff, and the error-to-status table.

import (
	"context"
	"errors"
	"net/http"
	"testing"
	"time"

	"flexflow"
)

// testRequest builds a minimal admitted-shape request.
func testRequest(spec RunSpec) *request {
	if spec.Mode == "" {
		spec.Mode = ModeModel
	}
	if spec.Workload == "" {
		spec.Workload = "Example"
	}
	return &request{
		spec: spec,
		key:  spec.batchKey(),
		ctx:  context.Background(),
		done: make(chan response, 1),
	}
}

// bareServer builds a Server whose dispatcher/workers are NOT running,
// so queue behavior can be tested deterministically.
func bareServer(queueCap int, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		queue:   make(chan *request, queueCap),
		batches: make(chan []*request, 64),
		stats:   newStats(queueCap),
		breaker: newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown),
		cache:   map[string]runReply{},
		engines: map[string]flexflow.Engine{},
		kernels: map[string][]*flexflow.Kernel4{},
	}
	s.workWG.Add(1) // tests run dispatch() synchronously; it Dones once
	return s
}

func TestAdmissionControl(t *testing.T) {
	s := bareServer(2, Config{})
	if err := s.admit(testRequest(RunSpec{})); err != nil {
		t.Fatalf("first admit: %v", err)
	}
	if err := s.admit(testRequest(RunSpec{})); err != nil {
		t.Fatalf("second admit: %v", err)
	}
	// Queue full: typed overload, not a block and not a drop.
	if err := s.admit(testRequest(RunSpec{})); !errors.Is(err, ErrOverload) {
		t.Fatalf("full queue: err = %v, want ErrOverload", err)
	}
	if StatusOf(ErrOverload) != http.StatusTooManyRequests {
		t.Error("ErrOverload must map to 429")
	}
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	if err := s.admit(testRequest(RunSpec{})); !errors.Is(err, ErrDraining) {
		t.Fatalf("draining: err = %v, want ErrDraining", err)
	}
	snap := s.stats.snapshot(len(s.queue), s.breaker.snapshot())
	if snap.Admitted != 2 || snap.RejectedQueueFull != 1 || snap.RejectedDraining != 1 {
		t.Errorf("counters = %+v, want 2 admitted / 1 full / 1 draining", snap)
	}
}

func TestDispatcherCoalescesSameKey(t *testing.T) {
	s := bareServer(16, Config{MaxBatch: 4})
	for i := 0; i < 4; i++ {
		s.queue <- testRequest(RunSpec{Workload: "Example", Seed: uint64(i)})
	}
	close(s.queue)
	s.dispatch() // synchronous: drains, flushes, closes batches

	var got [][]*request
	for b := range s.batches {
		got = append(got, b)
	}
	if len(got) != 1 || len(got[0]) != 4 {
		t.Fatalf("batches = %v groups, want one batch of 4", lens(got))
	}
}

func TestDispatcherKeepsKeysApartInArrivalOrder(t *testing.T) {
	s := bareServer(16, Config{MaxBatch: 8})
	s.queue <- testRequest(RunSpec{Workload: "Example"})
	s.queue <- testRequest(RunSpec{Workload: "LeNet-5"})
	s.queue <- testRequest(RunSpec{Workload: "Example", Seed: 1})
	s.queue <- testRequest(RunSpec{Workload: "LeNet-5", Seed: 1})
	close(s.queue)
	s.dispatch()

	var got [][]*request
	for b := range s.batches {
		got = append(got, b)
	}
	if len(got) != 2 || len(got[0]) != 2 || len(got[1]) != 2 {
		t.Fatalf("batches = %v, want two batches of 2", lens(got))
	}
	if got[0][0].spec.Workload != "Example" || got[1][0].spec.Workload != "LeNet-5" {
		t.Errorf("flush order = %s, %s; want arrival order Example, LeNet-5",
			got[0][0].spec.Workload, got[1][0].spec.Workload)
	}
}

func TestDispatcherFlushesAtMaxBatch(t *testing.T) {
	s := bareServer(16, Config{MaxBatch: 2})
	for i := 0; i < 5; i++ {
		s.queue <- testRequest(RunSpec{Workload: "Example", Seed: uint64(i)})
	}
	close(s.queue)
	s.dispatch()

	var sizes []int
	for b := range s.batches {
		sizes = append(sizes, len(b))
	}
	if len(sizes) != 3 || sizes[0] != 2 || sizes[1] != 2 || sizes[2] != 1 {
		t.Fatalf("batch sizes = %v, want [2 2 1]", sizes)
	}
}

func lens(batches [][]*request) []int {
	var out []int
	for _, b := range batches {
		out = append(out, len(b))
	}
	return out
}

func TestBreakerStateMachine(t *testing.T) {
	b := newBreaker(3, 2)
	if !b.allow() {
		t.Fatal("closed breaker must allow")
	}
	// Two failures: still closed.
	b.record(false)
	b.record(false)
	if got := b.snapshot(); got.State != breakerClosed || got.ConsecutiveFails != 2 {
		t.Fatalf("after 2 fails: %+v", got)
	}
	// A success resets the streak.
	b.record(true)
	b.record(false)
	b.record(false)
	if tripped := b.record(false); !tripped {
		t.Fatal("third consecutive failure must trip")
	}
	if got := b.snapshot(); got.State != breakerOpen || got.Trips != 1 {
		t.Fatalf("after trip: %+v", got)
	}
	// Open: cooldown refusals, then half-open admits one probe.
	if b.allow() || b.allow() {
		t.Fatal("open breaker must refuse during cooldown")
	}
	if !b.allow() {
		t.Fatal("half-open breaker must admit the probe")
	}
	if b.allow() {
		t.Fatal("only one probe at a time")
	}
	// Probe failure: straight back to open.
	b.record(false)
	if got := b.snapshot(); got.State != breakerOpen || got.Trips != 2 {
		t.Fatalf("after failed probe: %+v", got)
	}
	// Next cooldown, probe succeeds: closed again.
	b.allow()
	b.allow()
	if !b.allow() {
		t.Fatal("second probe must be admitted")
	}
	b.record(true)
	if got := b.snapshot(); got.State != breakerClosed || got.Recoveries != 1 {
		t.Fatalf("after recovery: %+v", got)
	}
}

func TestBackoffDeterministicAndCapped(t *testing.T) {
	base, cap := 2*time.Millisecond, 20*time.Millisecond
	d1 := backoffDelay(base, cap, 1, 42, 1)
	d2 := backoffDelay(base, cap, 1, 42, 1)
	if d1 != d2 {
		t.Fatalf("same inputs gave %v and %v", d1, d2)
	}
	if d1 < base || d1 >= 2*base {
		t.Errorf("attempt 1 delay %v outside [base, 2·base)", d1)
	}
	if d := backoffDelay(base, cap, 1, 42, 10); d != cap {
		t.Errorf("attempt 10 delay %v, want cap %v", d, cap)
	}
	if d := backoffDelay(0, cap, 1, 42, 1); d != 0 {
		t.Errorf("zero base must not wait, got %v", d)
	}
	if a, b := backoffDelay(base, cap, 1, 1, 1), backoffDelay(base, cap, 1, 2, 1); a == b {
		t.Errorf("different request seeds gave identical jitter %v", a)
	}
}

func TestStatusOfTaxonomy(t *testing.T) {
	cases := []struct {
		err    error
		status int
		kind   string
	}{
		{nil, http.StatusOK, ""},
		{ErrOverload, http.StatusTooManyRequests, "overload"},
		{ErrDraining, http.StatusServiceUnavailable, "draining"},
		{ErrBreakerOpen, http.StatusServiceUnavailable, "breaker_open"},
		{flexflow.ErrInvalidConfig, http.StatusBadRequest, "invalid"},
		{flexflow.ErrCancelled, http.StatusGatewayTimeout, "cancelled"},
		{flexflow.ErrBudget, http.StatusTooManyRequests, "budget"},
		{flexflow.ErrFaulted, http.StatusServiceUnavailable, "faulted"},
		{errors.New("boom"), http.StatusInternalServerError, "internal"},
	}
	for _, c := range cases {
		if got := StatusOf(c.err); got != c.status {
			t.Errorf("StatusOf(%v) = %d, want %d", c.err, got, c.status)
		}
		if c.err != nil {
			if got := errKind(c.err); got != c.kind {
				t.Errorf("errKind(%v) = %q, want %q", c.err, got, c.kind)
			}
		}
	}
}

func TestSpecNormalizeAndKeys(t *testing.T) {
	cfg := Config{}.withDefaults()
	sp := RunSpec{Workload: "Example"}
	if err := sp.normalize(cfg); err != nil {
		t.Fatal(err)
	}
	if sp.Mode != ModeModel || sp.Arch != "FlexFlow" || sp.Scale != 16 {
		t.Errorf("defaults not applied: %+v", sp)
	}
	bad := RunSpec{}
	if err := bad.normalize(cfg); !errors.Is(err, flexflow.ErrInvalidConfig) {
		t.Errorf("missing workload: err = %v", err)
	}
	bad = RunSpec{Workload: "x", Mode: "turbo"}
	if err := bad.normalize(cfg); !errors.Is(err, flexflow.ErrInvalidConfig) {
		t.Errorf("bad mode: err = %v", err)
	}

	a := RunSpec{Workload: "Example", Mode: ModeExecute, Scale: 8, Seed: 1}
	b := RunSpec{Workload: "Example", Mode: ModeExecute, Scale: 8, Seed: 2}
	if a.batchKey() != b.batchKey() {
		t.Error("different seeds must share a batch key")
	}
	if a.cacheKey() == b.cacheKey() {
		t.Error("different seeds must not share a cache key")
	}
}
