package serve

// Unit tests for the serving primitives: admission control, the
// micro-batching dispatcher, the circuit breaker's state machine, the
// deterministic backoff, and the error-to-status table.

import (
	"context"
	"errors"
	"net/http"
	"testing"
	"time"

	"flexflow"
)

// testRequest builds a minimal admitted-shape request.
func testRequest(spec RunSpec) *request {
	if spec.Mode == "" {
		spec.Mode = ModeModel
	}
	if spec.Workload == "" {
		spec.Workload = "Example"
	}
	return &request{
		spec: spec,
		key:  spec.batchKey(),
		ctx:  context.Background(),
		done: make(chan response, 1),
	}
}

// bareServer builds a Server whose dispatcher/workers are NOT running,
// so queue behavior can be tested deterministically.
func bareServer(queueCap int, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		queue:   make(chan *request, queueCap),
		batches: make(chan []*request, 64),
		stats:   newStats(queueCap),
		breaker: newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown),
		cache:   map[string]runReply{},
		engines: map[string]flexflow.Engine{},
		kernels: map[string][]*flexflow.Kernel4{},
	}
	s.workWG.Add(1) // tests run dispatch() synchronously; it Dones once
	return s
}

func TestAdmissionControl(t *testing.T) {
	s := bareServer(2, Config{})
	if err := s.admit(testRequest(RunSpec{})); err != nil {
		t.Fatalf("first admit: %v", err)
	}
	if err := s.admit(testRequest(RunSpec{})); err != nil {
		t.Fatalf("second admit: %v", err)
	}
	// Queue full: typed overload, not a block and not a drop.
	if err := s.admit(testRequest(RunSpec{})); !errors.Is(err, ErrOverload) {
		t.Fatalf("full queue: err = %v, want ErrOverload", err)
	}
	if StatusOf(ErrOverload) != http.StatusTooManyRequests {
		t.Error("ErrOverload must map to 429")
	}
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	if err := s.admit(testRequest(RunSpec{})); !errors.Is(err, ErrDraining) {
		t.Fatalf("draining: err = %v, want ErrDraining", err)
	}
	snap := s.stats.snapshot(len(s.queue), s.breaker.snapshot(), LayerCacheSnapshot{})
	if snap.Admitted != 2 || snap.RejectedQueueFull != 1 || snap.RejectedDraining != 1 {
		t.Errorf("counters = %+v, want 2 admitted / 1 full / 1 draining", snap)
	}
}

func TestDispatcherCoalescesSameKey(t *testing.T) {
	s := bareServer(16, Config{MaxBatch: 4})
	for i := 0; i < 4; i++ {
		s.queue <- testRequest(RunSpec{Workload: "Example", Seed: uint64(i)})
	}
	close(s.queue)
	s.dispatch() // synchronous: drains, flushes, closes batches

	var got [][]*request
	for b := range s.batches {
		got = append(got, b)
	}
	if len(got) != 1 || len(got[0]) != 4 {
		t.Fatalf("batches = %v groups, want one batch of 4", lens(got))
	}
}

func TestDispatcherKeepsKeysApartInArrivalOrder(t *testing.T) {
	s := bareServer(16, Config{MaxBatch: 8})
	s.queue <- testRequest(RunSpec{Workload: "Example"})
	s.queue <- testRequest(RunSpec{Workload: "LeNet-5"})
	s.queue <- testRequest(RunSpec{Workload: "Example", Seed: 1})
	s.queue <- testRequest(RunSpec{Workload: "LeNet-5", Seed: 1})
	close(s.queue)
	s.dispatch()

	var got [][]*request
	for b := range s.batches {
		got = append(got, b)
	}
	if len(got) != 2 || len(got[0]) != 2 || len(got[1]) != 2 {
		t.Fatalf("batches = %v, want two batches of 2", lens(got))
	}
	if got[0][0].spec.Workload != "Example" || got[1][0].spec.Workload != "LeNet-5" {
		t.Errorf("flush order = %s, %s; want arrival order Example, LeNet-5",
			got[0][0].spec.Workload, got[1][0].spec.Workload)
	}
}

func TestDispatcherFlushesAtMaxBatch(t *testing.T) {
	s := bareServer(16, Config{MaxBatch: 2})
	for i := 0; i < 5; i++ {
		s.queue <- testRequest(RunSpec{Workload: "Example", Seed: uint64(i)})
	}
	close(s.queue)
	s.dispatch()

	var sizes []int
	for b := range s.batches {
		sizes = append(sizes, len(b))
	}
	if len(sizes) != 3 || sizes[0] != 2 || sizes[1] != 2 || sizes[2] != 1 {
		t.Fatalf("batch sizes = %v, want [2 2 1]", sizes)
	}
}

func lens(batches [][]*request) []int {
	var out []int
	for _, b := range batches {
		out = append(out, len(b))
	}
	return out
}

func TestBreakerStateMachine(t *testing.T) {
	b := newBreaker(3, 2)
	allowOK := func() bool { ok, _ := b.allow(); return ok }
	if !allowOK() {
		t.Fatal("closed breaker must allow")
	}
	// Two failures: still closed.
	b.record(false)
	b.record(false)
	if got := b.snapshot(); got.State != breakerClosed || got.ConsecutiveFails != 2 {
		t.Fatalf("after 2 fails: %+v", got)
	}
	// A success resets the streak.
	b.record(true)
	b.record(false)
	b.record(false)
	if tripped := b.record(false); !tripped {
		t.Fatal("third consecutive failure must trip")
	}
	if got := b.snapshot(); got.State != breakerOpen || got.Trips != 1 {
		t.Fatalf("after trip: %+v", got)
	}
	// Open: cooldown refusals, then half-open admits one probe.
	if allowOK() || allowOK() {
		t.Fatal("open breaker must refuse during cooldown")
	}
	if ok, probe := b.allow(); !ok || !probe {
		t.Fatalf("half-open breaker must admit the probe (ok=%v probe=%v)", ok, probe)
	}
	if allowOK() {
		t.Fatal("only one probe at a time")
	}
	// Probe failure: straight back to open.
	b.record(false)
	if got := b.snapshot(); got.State != breakerOpen || got.Trips != 2 {
		t.Fatalf("after failed probe: %+v", got)
	}
	// Next cooldown, probe succeeds: closed again.
	allowOK()
	allowOK()
	if !allowOK() {
		t.Fatal("second probe must be admitted")
	}
	b.record(true)
	if got := b.snapshot(); got.State != breakerClosed || got.Recoveries != 1 {
		t.Fatalf("after recovery: %+v", got)
	}
}

// A probe batch can end without any record() verdict (cache hit,
// invalid workload, expired deadline). probeDone must return the
// breaker to a probe-able half-open instead of wedging it.
func TestBreakerProbeReleasedWithoutVerdict(t *testing.T) {
	b := newBreaker(1, 1)
	b.record(false) // trip
	b.allow()       // spends the cooldown → half-open
	if ok, probe := b.allow(); !ok || !probe {
		t.Fatalf("probe not admitted (ok=%v probe=%v)", ok, probe)
	}
	// The probe resolves neutrally; before probeDone every future
	// batch would be refused forever.
	b.probeDone()
	if got := b.snapshot().State; got != breakerHalfOpen {
		t.Fatalf("state after neutral probe = %s, want half-open", got)
	}
	if ok, probe := b.allow(); !ok || !probe {
		t.Fatalf("next batch must become the probe (ok=%v probe=%v)", ok, probe)
	}
	b.record(true)
	if got := b.snapshot(); got.State != breakerClosed || got.Recoveries != 1 {
		t.Fatalf("after healthy probe: %+v", got)
	}
	// probeDone after record() already resolved the probe is a no-op.
	b.probeDone()
	if got := b.snapshot().State; got != breakerClosed {
		t.Fatalf("probeDone disturbed a closed breaker: %s", got)
	}
}

// End-to-end wedge regression: trip the breaker, spend the cooldown,
// then make the probe batch a pure model-cache hit — a path that
// answers without ever feeding the breaker. A following healthy
// request must still be admitted as the next probe and close the
// breaker; before the fix it would degrade all traffic forever.
func TestProbeCacheHitDoesNotWedgeBreaker(t *testing.T) {
	s := bareServer(4, Config{Scale: 8, BreakerThreshold: 1, BreakerCooldown: 1})
	mkReq := func(spec RunSpec) *request {
		if err := spec.normalize(s.cfg); err != nil {
			t.Fatal(err)
		}
		return testRequest(spec)
	}

	s.breaker.record(false) // one failure trips (threshold 1)
	if st := s.breaker.snapshot().State; st != breakerOpen {
		t.Fatalf("state after trip = %s, want open", st)
	}

	// Cooldown spender: degraded via the analytic fallback.
	shed := mkReq(RunSpec{Workload: "Example"})
	s.runBatch([]*request{shed})
	if resp := <-shed.done; resp.err != nil || resp.body.Degraded != "analytic" {
		t.Fatalf("cooldown request: err=%v degraded=%q, want analytic fallback", resp.err, resp.body.Degraded)
	}
	if st := s.breaker.snapshot().State; st != breakerHalfOpen {
		t.Fatalf("state after cooldown = %s, want half-open", st)
	}

	// The probe batch hits the model cache and answers without a
	// breaker verdict.
	probe := mkReq(RunSpec{Workload: "Example"})
	s.cachePut(probe.spec.cacheKey(), runReply{Workload: "Example"})
	s.runBatch([]*request{probe})
	if resp := <-probe.done; resp.err != nil {
		t.Fatalf("cache-hit probe: %v", resp.err)
	}
	if st := s.breaker.snapshot().State; st != breakerHalfOpen {
		t.Fatalf("state after cache-hit probe = %s, want half-open (probe released)", st)
	}

	// A healthy request becomes the next probe and recovers. Model-mode
	// cache keys ignore the seed, so a different scale keeps this one
	// out of the cache.
	healthy := mkReq(RunSpec{Workload: "Example", Scale: 16})
	s.runBatch([]*request{healthy})
	resp := <-healthy.done
	if resp.err != nil {
		t.Fatalf("post-probe request: %v", resp.err)
	}
	if resp.body.Degraded != "" {
		t.Fatalf("post-probe request degraded (%q): breaker wedged", resp.body.Degraded)
	}
	if got := s.breaker.snapshot(); got.State != breakerClosed || got.Recoveries != 1 {
		t.Fatalf("after healthy probe: %+v, want closed with 1 recovery", got)
	}
}

// An unknown workload is a client mistake (400) whichever state the
// breaker is in; the open-breaker degrade path must not relabel it as
// a 503 breaker_open shed.
func TestDegradeInvalidWorkloadStays400(t *testing.T) {
	s := bareServer(4, Config{BreakerThreshold: 1, BreakerCooldown: 8})
	s.breaker.record(false) // breaker open
	spec := RunSpec{Workload: "NoSuchNet"}
	if err := spec.normalize(s.cfg); err != nil {
		t.Fatal(err)
	}
	r := testRequest(spec)
	s.runBatch([]*request{r})
	resp := <-r.done
	if !errors.Is(resp.err, flexflow.ErrInvalidConfig) || errors.Is(resp.err, ErrBreakerOpen) {
		t.Fatalf("open-breaker unknown workload: err = %v, want plain ErrInvalidConfig", resp.err)
	}
	if got := StatusOf(resp.err); got != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", got)
	}
}

func TestBackoffDeterministicAndCapped(t *testing.T) {
	base, cap := 2*time.Millisecond, 20*time.Millisecond
	d1 := backoffDelay(base, cap, 1, 42, 1)
	d2 := backoffDelay(base, cap, 1, 42, 1)
	if d1 != d2 {
		t.Fatalf("same inputs gave %v and %v", d1, d2)
	}
	if d1 < base || d1 >= 2*base {
		t.Errorf("attempt 1 delay %v outside [base, 2·base)", d1)
	}
	if d := backoffDelay(base, cap, 1, 42, 10); d != cap {
		t.Errorf("attempt 10 delay %v, want cap %v", d, cap)
	}
	if d := backoffDelay(0, cap, 1, 42, 1); d != 0 {
		t.Errorf("zero base must not wait, got %v", d)
	}
	if a, b := backoffDelay(base, cap, 1, 1, 1), backoffDelay(base, cap, 1, 2, 1); a == b {
		t.Errorf("different request seeds gave identical jitter %v", a)
	}
}

// A large base at a deep attempt used to shift past int64 into a
// negative delay that slipped under the cap check and made Sleep
// return immediately. The delay must stay positive and capped for any
// (base, attempt).
func TestBackoffNeverNegativeOnOverflow(t *testing.T) {
	for _, base := range []time.Duration{10 * time.Second, time.Hour, 1000 * time.Hour} {
		for attempt := 1; attempt <= 64; attempt++ {
			if d := backoffDelay(base, 0, 1, 42, attempt); d < base {
				t.Fatalf("uncapped base=%v attempt=%d: delay %v below base", base, attempt, d)
			}
			if d := backoffDelay(base, time.Minute, 1, 42, attempt); d <= 0 || d > time.Minute {
				t.Fatalf("capped base=%v attempt=%d: delay %v outside (0, cap]", base, attempt, d)
			}
		}
	}
	// The old code went negative exactly here: 10s << 30 > MaxInt64.
	if d := backoffDelay(10*time.Second, 20*time.Second, 1, 42, 31); d != 20*time.Second {
		t.Fatalf("overflow attempt: delay %v, want pinned to cap", d)
	}
}

func TestStatusOfTaxonomy(t *testing.T) {
	cases := []struct {
		err    error
		status int
		kind   string
	}{
		{nil, http.StatusOK, ""},
		{ErrOverload, http.StatusTooManyRequests, "overload"},
		{ErrDraining, http.StatusServiceUnavailable, "draining"},
		{ErrBreakerOpen, http.StatusServiceUnavailable, "breaker_open"},
		{flexflow.ErrInvalidConfig, http.StatusBadRequest, "invalid"},
		{flexflow.ErrCancelled, http.StatusGatewayTimeout, "cancelled"},
		{flexflow.ErrBudget, http.StatusTooManyRequests, "budget"},
		{flexflow.ErrFaulted, http.StatusServiceUnavailable, "faulted"},
		{errors.New("boom"), http.StatusInternalServerError, "internal"},
	}
	for _, c := range cases {
		if got := StatusOf(c.err); got != c.status {
			t.Errorf("StatusOf(%v) = %d, want %d", c.err, got, c.status)
		}
		if c.err != nil {
			if got := errKind(c.err); got != c.kind {
				t.Errorf("errKind(%v) = %q, want %q", c.err, got, c.kind)
			}
		}
	}
}

func TestSpecNormalizeAndKeys(t *testing.T) {
	cfg := Config{}.withDefaults()
	sp := RunSpec{Workload: "Example"}
	if err := sp.normalize(cfg); err != nil {
		t.Fatal(err)
	}
	if sp.Mode != ModeModel || sp.Arch != "FlexFlow" || sp.Scale != 16 {
		t.Errorf("defaults not applied: %+v", sp)
	}
	bad := RunSpec{}
	if err := bad.normalize(cfg); !errors.Is(err, flexflow.ErrInvalidConfig) {
		t.Errorf("missing workload: err = %v", err)
	}
	bad = RunSpec{Workload: "x", Mode: "turbo"}
	if err := bad.normalize(cfg); !errors.Is(err, flexflow.ErrInvalidConfig) {
		t.Errorf("bad mode: err = %v", err)
	}

	a := RunSpec{Workload: "Example", Mode: ModeExecute, Scale: 8, Seed: 1}
	b := RunSpec{Workload: "Example", Mode: ModeExecute, Scale: 8, Seed: 2}
	if a.batchKey() != b.batchKey() {
		t.Error("different seeds must share a batch key")
	}
	if a.cacheKey() == b.cacheKey() {
		t.Error("different seeds must not share a cache key")
	}
}
