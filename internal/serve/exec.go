package serve

import (
	"errors"
	"fmt"

	"flexflow"
)

// maxCachedResults bounds the degraded-mode result cache; once full,
// new keys are not inserted (the steady-state working set — the small
// fixed workload×arch×scale grid plus recent execute seeds — fits
// comfortably).
const maxCachedResults = 512

// execute answers a breaker-approved batch. Model-mode requests run
// the pure analytic path per request; execute-mode requests split into
// the clean majority — one shared ExecuteBatchOpts call on one
// compiled plan — and the fault-marked minority, which run one at a
// time through the retry loop so a fault cannot poison batch siblings.
func (s *Server) execute(batch []*request) {
	nw, err := flexflow.Workload(batch[0].spec.Workload)
	if err != nil {
		// A bad workload name is the client's fault, not backend health:
		// answer 400 without recording a breaker failure.
		for _, r := range batch {
			r.respond(response{err: err})
		}
		return
	}
	if batch[0].spec.Mode == ModeModel {
		for _, r := range batch {
			s.runModel(nw, r)
		}
		return
	}
	if batch[0].spec.Mode == ModeAnalytic {
		for _, r := range batch {
			s.runAnalytic(nw, r)
		}
		return
	}
	var clean, faulted []*request
	for _, r := range batch {
		if r.plan != nil {
			faulted = append(faulted, r)
		} else {
			clean = append(clean, r)
		}
	}
	s.runCleanBatch(nw, clean)
	for _, r := range faulted {
		s.runOne(nw, r, r.plan)
	}
}

// runModel answers one analytic request from the model cache or by
// evaluating the performance model.
func (s *Server) runModel(nw *flexflow.Network, r *request) {
	if reply, ok := s.cacheGet(r.spec.cacheKey()); ok {
		r.respond(response{body: reply})
		return
	}
	reply, err := s.modelReply(nw, r)
	if err != nil {
		s.recordOutcome(err)
		r.respond(response{err: err})
		return
	}
	s.recordOutcome(nil)
	s.cachePut(r.spec.cacheKey(), reply)
	r.respond(response{body: reply})
}

// modelReply evaluates the analytic model under the request's watchdog.
func (s *Server) modelReply(nw *flexflow.Network, r *request) (runReply, error) {
	engine, err := flexflow.NewEngine(flexflow.Arch(r.spec.Arch), r.spec.Scale, nw)
	if err != nil {
		return runReply{}, err
	}
	run, err := flexflow.RunOpts(engine, nw, flexflow.Options{
		Context:   r.ctx,
		MaxCycles: r.spec.MaxCycles,
		Workers:   s.cfg.EngineWorkers,
		Cache:     s.layerCache,
	})
	if err != nil {
		return runReply{}, err
	}
	return runReply{
		Workload:    r.spec.Workload,
		Arch:        r.spec.Arch,
		Mode:        ModeModel,
		Scale:       r.spec.Scale,
		Cycles:      run.Cycles(),
		MACs:        run.MACs(),
		Utilization: run.Utilization(),
		Layers:      len(run.Layers),
	}, nil
}

// runAnalytic answers one whole-network analytic request: the execute
// shape — CONV, POOL and FC stages — evaluated from the closed-form
// models through the shared layer cache, never touching the functional
// backend. Like runModel it is cached for degraded-mode reuse (the
// result is seed-independent, so the cache key carries no seed).
func (s *Server) runAnalytic(nw *flexflow.Network, r *request) {
	if reply, ok := s.cacheGet(r.spec.cacheKey()); ok {
		r.respond(response{body: reply})
		return
	}
	reply, err := s.analyticReply(nw, r)
	if err != nil {
		s.recordOutcome(err)
		r.respond(response{err: err})
		return
	}
	s.recordOutcome(nil)
	s.cachePut(r.spec.cacheKey(), reply)
	r.respond(response{body: reply})
}

// analyticReply runs the analytic network walk under the request's
// watchdog. Analytic requests mirror execute-mode semantics on the
// FlexFlow engine (operand tensors are optional and omitted here).
func (s *Server) analyticReply(nw *flexflow.Network, r *request) (runReply, error) {
	res, err := flexflow.ExecuteOpts(nw, nil, nil, r.spec.Scale, flexflow.Options{
		Context:   r.ctx,
		MaxCycles: r.spec.MaxCycles,
		Workers:   s.cfg.EngineWorkers,
		Mode:      flexflow.ModeAnalytic,
		Cache:     s.layerCache,
	})
	if err != nil {
		return runReply{}, err
	}
	run := flexflow.RunResult{Layers: res.Layers}
	return runReply{
		Workload:    r.spec.Workload,
		Arch:        string(flexflow.FlexFlow),
		Mode:        ModeAnalytic,
		Scale:       r.spec.Scale,
		Cycles:      res.Cycles(),
		MACs:        run.MACs(),
		Utilization: run.Utilization(),
		Layers:      len(res.Layers),
		PoolCycles:  res.PoolCycles,
	}, nil
}

// runCleanBatch executes fault-free requests as one micro-batch: one
// compiled plan, images fanned across the engine scheduler. On a
// partial failure the typed BatchError attributes it to one image;
// that request is answered with the inner error and the siblings are
// re-run individually rather than collectively failed.
func (s *Server) runCleanBatch(nw *flexflow.Network, batch []*request) {
	if len(batch) == 0 {
		return
	}
	if len(batch) == 1 {
		s.runOne(nw, batch[0], nil)
		return
	}
	ctx, cancel := batchContext(batch)
	defer cancel()

	spec := batch[0].spec
	inputs := make([]*flexflow.Map3, len(batch))
	for i, r := range batch {
		inputs[i] = flexflow.RandomInput(nw, r.spec.Seed)
	}
	results, err := flexflow.ExecuteBatchOpts(nw, inputs, s.kernelsFor(nw, spec.Workload), spec.Scale, flexflow.Options{
		Context:   ctx,
		MaxCycles: spec.MaxCycles,
		Workers:   s.cfg.EngineWorkers,
	})
	if err != nil {
		var be *flexflow.BatchError
		if errors.As(err, &be) && be.Index >= 0 && be.Index < len(batch) {
			s.finishExec(batch[be.Index], nil, be.Err, len(batch), 0)
			for i, r := range batch {
				if i != be.Index {
					s.runOne(nw, r, nil)
				}
			}
			return
		}
		for _, r := range batch {
			s.finishExec(r, nil, err, len(batch), 0)
		}
		return
	}
	for i, r := range batch {
		s.finishExec(r, &results[i], nil, len(batch), 0)
	}
}

// runOne executes a single request through the retry loop. A fired
// fault event is treated like an ECC detection: the result is
// quarantined (never served) and surfaces as the transient ErrFaulted,
// which retries — without the plan, modelling a transient upset — with
// deterministic exponential backoff until MaxRetries is spent.
func (s *Server) runOne(nw *flexflow.Network, r *request, plan *flexflow.FaultPlan) {
	kernels := s.kernelsFor(nw, r.spec.Workload)
	attempt := 0
	for {
		if r.ctx.Err() != nil {
			r.respond(cancelledResponse(r))
			return
		}
		res, err := flexflow.ExecuteOpts(nw, flexflow.RandomInput(nw, r.spec.Seed), kernels, r.spec.Scale, flexflow.Options{
			Context:   r.ctx,
			MaxCycles: r.spec.MaxCycles,
			Workers:   s.cfg.EngineWorkers,
			Plan:      plan,
		})
		if err == nil && res.FaultsFired > 0 {
			// The injected fault fired somewhere in the dataflow; even if
			// the numeric output happens to be masked, the result is
			// untrustworthy. Quarantine it.
			err = fmt.Errorf("%w: %d fault event(s) fired (%d corruptions), result quarantined",
				flexflow.ErrFaulted, res.FaultsFired, res.FaultHits)
		}
		if err == nil {
			s.finishExec(r, &res, nil, 1, attempt)
			return
		}
		if !errors.Is(err, flexflow.ErrFaulted) || attempt >= s.cfg.MaxRetries {
			s.finishExec(r, nil, err, 1, attempt)
			return
		}
		attempt++
		delay := backoffDelay(s.cfg.RetryBase, s.cfg.RetryCap, s.cfg.Seed, r.spec.Seed, attempt)
		s.stats.retried(delay)
		if s.cfg.OnRetry != nil {
			s.cfg.OnRetry(r.spec, attempt, delay)
		}
		if s.cfg.Sleep != nil && delay > 0 {
			s.cfg.Sleep(delay)
		}
		plan = nil // a transient fault does not recur on the retry
	}
}

// finishExec answers one execute-mode request and records its outcome
// with the circuit breaker and the result cache.
func (s *Server) finishExec(r *request, res *flexflow.ExecResult, err error, batchSize, retries int) {
	if err != nil {
		s.recordOutcome(err)
		r.respond(response{err: err, retries: retries})
		return
	}
	s.recordOutcome(nil)
	run := flexflow.RunResult{Layers: res.Layers}
	reply := runReply{
		Workload:    r.spec.Workload,
		Arch:        string(flexflow.FlexFlow),
		Mode:        ModeExecute,
		Scale:       r.spec.Scale,
		Cycles:      res.Cycles(),
		MACs:        run.MACs(),
		Utilization: run.Utilization(),
		Layers:      len(res.Layers),
		PoolCycles:  res.PoolCycles,
		Batch:       batchSize,
		Retries:     retries,
	}
	s.cachePut(r.spec.cacheKey(), reply)
	r.respond(response{body: reply, retries: retries})
}

// recordOutcome feeds the circuit breaker. Only backend-health
// failures count: an exhausted retry budget (ErrFaulted) or an escaped
// internal error. Client mistakes (ErrInvalidConfig), expired
// deadlines (ErrCancelled) and watchdog budgets (ErrBudget) say
// nothing about the backend and leave the breaker alone.
func (s *Server) recordOutcome(err error) {
	switch {
	case err == nil:
		s.breaker.record(true)
	case errors.Is(err, flexflow.ErrFaulted), errors.Is(err, flexflow.ErrInternal):
		if s.breaker.record(false) {
			s.stats.breakerTripped()
		}
	}
}

// degrade answers a request while the breaker is open, in preference
// order: a cached identical result, the pure analytic model (which
// runs the fault-free performance path, not the suspect functional
// backend), and finally a typed ErrBreakerOpen load-shed.
func (s *Server) degrade(r *request) {
	if reply, ok := s.cacheGet(r.spec.cacheKey()); ok {
		reply.Degraded = "cache"
		s.stats.degraded("cache")
		r.respond(response{body: reply})
		return
	}
	nw, err := flexflow.Workload(r.spec.Workload)
	if err == nil {
		var reply runReply
		if reply, err = s.modelReply(nw, r); err == nil {
			reply.Mode = r.spec.Mode
			reply.Degraded = "analytic"
			s.stats.degraded("analytic")
			r.respond(response{body: reply})
			return
		}
	} else if errors.Is(err, flexflow.ErrInvalidConfig) {
		// An unknown workload is the client's mistake whatever state the
		// breaker is in: answer 400 exactly as the closed-breaker path
		// does, instead of folding it into a 503 shed.
		r.respond(response{err: err})
		return
	}
	s.stats.degraded("shed")
	r.respond(response{err: fmt.Errorf("%w (fallback also failed: %v)", ErrBreakerOpen, err)})
}

// kernelsFor returns the server's resident kernel operands for a
// workload, drawn once from the server seed — the accelerator keeps
// weights resident; requests only stream activations.
func (s *Server) kernelsFor(nw *flexflow.Network, workload string) []*flexflow.Kernel4 {
	s.kernelMu.Lock()
	defer s.kernelMu.Unlock()
	if ks, ok := s.kernels[workload]; ok {
		return ks
	}
	ks := flexflow.RandomKernels(nw, s.cfg.Seed)
	s.kernels[workload] = ks
	return ks
}

// cacheGet looks up a degraded-mode result.
func (s *Server) cacheGet(key string) (runReply, bool) {
	s.cacheMu.Lock()
	defer s.cacheMu.Unlock()
	reply, ok := s.cache[key]
	return reply, ok
}

// cachePut stores a served result for degraded-mode reuse.
func (s *Server) cachePut(key string, reply runReply) {
	reply.LatencyMS = 0 // cached replies report their own service time
	reply.Batch = 0
	reply.Retries = 0
	s.cacheMu.Lock()
	defer s.cacheMu.Unlock()
	if _, ok := s.cache[key]; !ok && len(s.cache) >= maxCachedResults {
		return
	}
	s.cache[key] = reply
}
