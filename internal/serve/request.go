package serve

import (
	"context"
	"fmt"
	"time"

	"flexflow"
)

// Request modes: the analytic performance model of the CONV layers
// (pure, fault-free, cheap), a functional cycle-level execution of a
// seeded input, or the whole-network analytic walk (the execute shape
// — CONV, POOL and FC stages — answered from the closed-form models,
// memoized through the server's layer cache).
const (
	ModeModel    = "model"
	ModeExecute  = "execute"
	ModeAnalytic = "analytic"
)

// RunSpec is the wire form of one inference request (POST /v1/run).
type RunSpec struct {
	// Workload names a Table 1 network ("LeNet-5", "AlexNet", …) or
	// "Example". Required.
	Workload string `json:"workload"`
	// Arch picks the architecture for model mode (default "FlexFlow").
	// Execute mode always runs the FlexFlow functional engine.
	Arch string `json:"arch,omitempty"`
	// Scale is the PE-array edge (default Config.Scale).
	Scale int `json:"scale,omitempty"`
	// Mode is "model" (default), "execute" or "analytic".
	Mode string `json:"mode,omitempty"`
	// Seed draws the pseudo-random input image for execute mode.
	Seed uint64 `json:"seed,omitempty"`
	// DeadlineMS bounds this request end to end; 0 inherits
	// Config.DefaultDeadline, negative means explicitly unbounded.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// MaxCycles bounds the modelled engine cycles (watchdog budget);
	// 0 inherits Config.MaxCycles.
	MaxCycles int64 `json:"max_cycles,omitempty"`
	// FaultSeed, when non-zero with FaultN > 0, arms a client-chosen
	// fault-injection plan on an execute request (chaos testing).
	FaultSeed uint64 `json:"fault_seed,omitempty"`
	// FaultN is the number of fault events in the client plan.
	FaultN int `json:"fault_n,omitempty"`
}

// normalize fills defaults and validates the spec's envelope (the
// workload name itself is resolved at execution time).
func (sp *RunSpec) normalize(cfg Config) error {
	if sp.Workload == "" {
		return fmt.Errorf("%w: missing workload", flexflow.ErrInvalidConfig)
	}
	if sp.Mode == "" {
		sp.Mode = ModeModel
	}
	if sp.Mode != ModeModel && sp.Mode != ModeExecute && sp.Mode != ModeAnalytic {
		return fmt.Errorf("%w: unknown mode %q (want %q, %q or %q)",
			flexflow.ErrInvalidConfig, sp.Mode, ModeModel, ModeExecute, ModeAnalytic)
	}
	if sp.Arch == "" {
		sp.Arch = string(flexflow.FlexFlow)
	}
	if sp.Scale == 0 {
		sp.Scale = cfg.Scale
	}
	if sp.Scale < 1 {
		return fmt.Errorf("%w: scale must be positive, got %d", flexflow.ErrInvalidConfig, sp.Scale)
	}
	if sp.MaxCycles == 0 {
		sp.MaxCycles = cfg.MaxCycles
	}
	if sp.MaxCycles < 0 || sp.FaultN < 0 {
		return fmt.Errorf("%w: negative max_cycles/fault_n", flexflow.ErrInvalidConfig)
	}
	return nil
}

// deadline resolves the effective end-to-end bound (0 = none).
func (sp RunSpec) deadline(cfg Config) time.Duration {
	switch {
	case sp.DeadlineMS > 0:
		return time.Duration(sp.DeadlineMS) * time.Millisecond
	case sp.DeadlineMS < 0:
		return 0
	default:
		return cfg.DefaultDeadline
	}
}

// batchKey groups requests that can share one compiled plan and one
// ExecuteBatchOpts call: same mode, workload, architecture, scale and
// watchdog budget.
func (sp RunSpec) batchKey() string {
	return fmt.Sprintf("%s|%s|%s|%d|%d", sp.Mode, sp.Workload, sp.Arch, sp.Scale, sp.MaxCycles)
}

// cacheKey identifies a deterministic result for the degraded-mode
// cache; execute results additionally depend on the input seed.
func (sp RunSpec) cacheKey() string {
	if sp.Mode == ModeExecute {
		return fmt.Sprintf("%s|%d", sp.batchKey(), sp.Seed)
	}
	return sp.batchKey()
}

// clientPlan builds the fault plan a request asked for, if any.
func (sp RunSpec) clientPlan() *flexflow.FaultPlan {
	if sp.Mode != ModeExecute || sp.FaultN <= 0 {
		return nil
	}
	return chaosPlan(sp.FaultSeed, sp.FaultN, sp.Scale)
}

// request is one admitted unit of work flowing through queue →
// dispatcher → worker. The worker answers on done (buffered, so an
// abandoned request never blocks a worker); the handler answers the
// HTTP side from done or from its own expired context, whichever is
// first.
type request struct {
	seq   uint64
	spec  RunSpec
	key   string
	ctx   context.Context
	plan  *flexflow.FaultPlan
	start time.Time // admission clock reading; zero without a clock
	done  chan response
}

// response is the executor's answer: a reply body or a typed error.
type response struct {
	body    runReply
	err     error
	retries int
}

// respond delivers the executor's answer without ever blocking: done
// is buffered one-deep and written exactly once per request.
func (r *request) respond(resp response) {
	select {
	case r.done <- resp:
	default:
	}
}

// cancelledResponse wraps a dead request context in the facade's typed
// cancellation sentinel.
func cancelledResponse(r *request) response {
	return response{err: fmt.Errorf("%w: %v", flexflow.ErrCancelled, context.Cause(r.ctx))}
}

// runReply is the wire form of a successful (or degraded) result.
type runReply struct {
	Workload    string  `json:"workload"`
	Arch        string  `json:"arch"`
	Mode        string  `json:"mode"`
	Scale       int     `json:"scale"`
	Cycles      int64   `json:"cycles"`
	MACs        int64   `json:"macs"`
	Utilization float64 `json:"utilization"`
	Layers      int     `json:"layers"`
	PoolCycles  int64   `json:"pool_cycles,omitempty"`
	// Batch is how many images were co-executed in this micro-batch.
	Batch int `json:"batch,omitempty"`
	// Retries counts attempts beyond the first (transient faults).
	Retries int `json:"retries,omitempty"`
	// FaultsFired is nonzero only on degraded diagnostics; quarantined
	// results are never served.
	FaultsFired int `json:"faults_fired,omitempty"`
	// Degraded marks a breaker-open fallback: "cache" (an earlier
	// identical result) or "analytic" (the pure performance model).
	Degraded string `json:"degraded,omitempty"`
	// LatencyMS is the end-to-end service time when a clock is wired.
	LatencyMS float64 `json:"latency_ms,omitempty"`
}
