package serve

// The chaos harness: a concurrent burst with server-side fault
// injection armed, a tiny queue, tight deadlines on part of the
// traffic, and a graceful shutdown race at the end. The service
// contract under all of that: zero panics (a panic kills the test
// process), every response a typed status, every admitted request
// answered.

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func TestChaosBurstStaysTyped(t *testing.T) {
	s, err := New(Config{
		Scale: 8, Workers: 2, Queue: 8, MaxBatch: 4,
		MaxRetries: 2, RetryBase: time.Millisecond, RetryCap: 10 * time.Millisecond,
		FaultEvery: 3, FaultN: 4, FaultSeed: 99,
		BreakerThreshold: 4, BreakerCooldown: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const n = 120
	statuses := make([]int, n)
	kinds := make([]string, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			spec := map[string]any{"workload": "Example", "mode": "execute", "scale": 8, "seed": i}
			switch i % 10 {
			case 7: // a slice of impossible deadlines
				spec = map[string]any{"workload": "VGG-11", "mode": "model", "deadline_ms": 1}
			case 8: // a slice of client mistakes
				spec = map[string]any{"workload": "NoSuchNet"}
			case 9: // a slice of tiny cycle budgets
				spec["max_cycles"] = 2
			}
			data, _ := json.Marshal(spec)
			resp, err := http.Post(ts.URL+"/v1/run", "application/json", bytes.NewReader(data))
			if err != nil {
				statuses[i] = -1
				return
			}
			var body struct {
				Kind string `json:"kind"`
			}
			raw, _ := io.ReadAll(resp.Body)
			_ = resp.Body.Close()
			_ = json.Unmarshal(raw, &body)
			statuses[i] = resp.StatusCode
			kinds[i] = body.Kind
		}(i)
	}
	wg.Wait()

	allowed := map[int]bool{200: true, 400: true, 429: true, 503: true, 504: true}
	allowedKinds := map[string]bool{"": true, "invalid": true, "overload": true, "budget": true,
		"cancelled": true, "faulted": true, "breaker_open": true, "draining": true}
	var ok2xx int
	for i, st := range statuses {
		if st == -1 {
			t.Errorf("request %d: transport error", i)
			continue
		}
		if !allowed[st] {
			t.Errorf("request %d: untyped status %d (kind %q)", i, st, kinds[i])
		}
		if !allowedKinds[kinds[i]] {
			t.Errorf("request %d: unknown error kind %q", i, kinds[i])
		}
		if st == 200 {
			ok2xx++
		}
	}
	if ok2xx == 0 {
		t.Error("chaos burst produced zero successes")
	}

	// Drain under the same chaos: nothing admitted may be dropped.
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown after chaos: %v", err)
	}
	snap := s.Snapshot()
	if snap.InFlight != 0 || snap.QueueDepth != 0 {
		t.Errorf("post-chaos residue: in_flight %d queue %d", snap.InFlight, snap.QueueDepth)
	}
	if snap.Admitted == 0 || snap.Batches == 0 {
		t.Errorf("chaos never exercised the pipeline: %+v", snap)
	}
	t.Logf("chaos: admitted=%d ok=%d overload=%d faulted_503=%d timeout=%d retries=%d trips=%d mean_batch=%.2f",
		snap.Admitted, snap.OK, snap.Overload, snap.Unavailable, snap.Timeout,
		snap.Retries, snap.BreakerTrips, snap.MeanBatch)
}
