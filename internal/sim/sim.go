// Package sim provides the small cycle-simulation substrate shared by
// the four architecture simulators: a clock, and an event tracer that
// can record operand movements for dataflow-snapshot tests (the Go
// equivalent of the paper's Figure 5 snapshots).
package sim

import "fmt"

// Clock counts engine cycles. The zero value is a clock at cycle 0.
type Clock struct {
	cycle int64
}

// Cycle returns the current cycle number.
func (c *Clock) Cycle() int64 { return c.cycle }

// Tick advances the clock by one cycle.
func (c *Clock) Tick() { c.cycle++ }

// Advance advances the clock by n cycles (n ≥ 0).
func (c *Clock) Advance(n int64) {
	if n < 0 {
		panic("sim: Advance by negative cycles")
	}
	c.cycle += n
}

// EventKind classifies traced dataflow events.
type EventKind int

const (
	// EvBroadcast is an operand broadcast onto a bus.
	EvBroadcast EventKind = iota
	// EvShift is an operand move between neighbouring PEs/pipeline slots.
	EvShift
	// EvMAC is a multiply-accumulate issued by a PE.
	EvMAC
	// EvLoad is an operand load from a buffer into a PE.
	EvLoad
	// EvStore is an output neuron leaving the engine.
	EvStore
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EvBroadcast:
		return "broadcast"
	case EvShift:
		return "shift"
	case EvMAC:
		return "mac"
	case EvLoad:
		return "load"
	case EvStore:
		return "store"
	default:
		return "?"
	}
}

// Event is one traced dataflow occurrence.
type Event struct {
	Cycle int64
	Kind  EventKind
	// PE row/column (or pipeline stage) the event happened at; -1 when
	// not applicable.
	Row, Col int
	// What describes the operand, e.g. "I(1,5,4)" or "O(0,3,1)".
	What string
}

// String renders the event compactly.
func (e Event) String() string {
	return fmt.Sprintf("@%d %s PE(%d,%d) %s", e.Cycle, e.Kind, e.Row, e.Col, e.What)
}

// Tracer receives dataflow events from a simulator. Implementations
// must be cheap; simulators call Trace on hot paths only when a tracer
// is installed.
type Tracer interface {
	Trace(Event)
}

// Recorder is a Tracer that stores every event, for tests.
type Recorder struct {
	Events []Event
}

// Trace implements Tracer.
func (r *Recorder) Trace(e Event) { r.Events = append(r.Events, e) }

// Filter returns the recorded events of one kind.
func (r *Recorder) Filter(k EventKind) []Event {
	var out []Event
	for _, e := range r.Events {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}

// AtCycle returns the recorded events of one cycle.
func (r *Recorder) AtCycle(c int64) []Event {
	var out []Event
	for _, e := range r.Events {
		if e.Cycle == c {
			out = append(out, e)
		}
	}
	return out
}
