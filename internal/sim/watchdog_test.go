package sim

import (
	"context"
	"errors"
	"testing"
)

func TestNilWatchdogIsInert(t *testing.T) {
	var w *Watchdog
	if err := w.Check(1 << 40); err != nil {
		t.Errorf("nil watchdog erred: %v", err)
	}
	w.Commit(5)
	if w.Spent() != 0 {
		t.Error("nil watchdog accumulated cycles")
	}
}

func TestWatchdogBudget(t *testing.T) {
	w := NewWatchdog(nil, 1000)
	if err := w.Check(1000); err != nil {
		t.Errorf("at-budget check erred: %v", err)
	}
	if err := w.Check(1001); !errors.Is(err, ErrBudget) {
		t.Errorf("over-budget check = %v, want ErrBudget", err)
	}
	w.Commit(600)
	if err := w.Check(500); !errors.Is(err, ErrBudget) {
		t.Errorf("committed+current over budget = %v, want ErrBudget", err)
	}
	if w.Spent() != 600 {
		t.Errorf("Spent = %d, want 600", w.Spent())
	}
}

func TestWatchdogUnlimited(t *testing.T) {
	w := NewWatchdog(nil, 0)
	if err := w.Check(1 << 50); err != nil {
		t.Errorf("unbudgeted watchdog erred: %v", err)
	}
}

func TestWatchdogCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	w := NewWatchdog(ctx, 0)
	if err := w.Check(1); err != nil {
		t.Errorf("live context erred: %v", err)
	}
	cancel()
	if err := w.Check(1); !errors.Is(err, ErrCancelled) {
		t.Errorf("cancelled context = %v, want ErrCancelled", err)
	}
}
