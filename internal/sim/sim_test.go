package sim

import (
	"strings"
	"testing"
)

func TestClock(t *testing.T) {
	var c Clock
	if c.Cycle() != 0 {
		t.Error("zero clock should be at cycle 0")
	}
	c.Tick()
	c.Advance(10)
	if c.Cycle() != 11 {
		t.Errorf("Cycle = %d, want 11", c.Cycle())
	}
}

func TestClockAdvanceNegativePanics(t *testing.T) {
	var c Clock
	defer func() {
		if recover() == nil {
			t.Error("negative advance did not panic")
		}
	}()
	c.Advance(-1)
}

func TestRecorderFilter(t *testing.T) {
	var r Recorder
	r.Trace(Event{Cycle: 0, Kind: EvBroadcast, Row: -1, Col: 2, What: "I(1,5,4)"})
	r.Trace(Event{Cycle: 0, Kind: EvMAC, Row: 1, Col: 2, What: "O(0,3,1)"})
	r.Trace(Event{Cycle: 1, Kind: EvMAC, Row: 1, Col: 3, What: "O(0,3,2)"})
	if got := len(r.Filter(EvMAC)); got != 2 {
		t.Errorf("Filter(EvMAC) = %d events, want 2", got)
	}
	if got := len(r.AtCycle(0)); got != 2 {
		t.Errorf("AtCycle(0) = %d events, want 2", got)
	}
}

func TestEventString(t *testing.T) {
	e := Event{Cycle: 3, Kind: EvShift, Row: 1, Col: 2, What: "O(0,0,0)"}
	if got := e.String(); got != "@3 shift PE(1,2) O(0,0,0)" {
		t.Errorf("String = %q", got)
	}
}

func TestEventKindStrings(t *testing.T) {
	kinds := map[EventKind]string{
		EvBroadcast: "broadcast", EvShift: "shift", EvMAC: "mac",
		EvLoad: "load", EvStore: "store",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("kind %d String = %q, want %q", int(k), k.String(), want)
		}
	}
}

func TestTraceWriterFiltersAndWrites(t *testing.T) {
	var buf strings.Builder
	tw := NewTraceWriter(&buf, TraceFilter{Kinds: []EventKind{EvMAC}, MaxEvents: 2})
	events := []Event{
		{Cycle: 0, Kind: EvBroadcast, Row: -1, Col: -1, What: "I(0,0,0)"},
		{Cycle: 0, Kind: EvMAC, Row: 1, Col: 2, What: "O(0,0,0)"},
		{Cycle: 1, Kind: EvMAC, Row: 1, Col: 3, What: "O(0,0,1)"},
		{Cycle: 2, Kind: EvMAC, Row: 1, Col: 4, What: "O(0,0,2)"}, // beyond cap
	}
	for _, e := range events {
		tw.Trace(e)
	}
	n, err := tw.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("written = %d, want 2 (kind filter + cap)", n)
	}
	out := buf.String()
	if strings.Contains(out, "broadcast") {
		t.Error("filter leaked a broadcast event")
	}
	if !strings.Contains(out, "O(0,0,1)") {
		t.Errorf("missing expected line in %q", out)
	}
}

func TestTraceWriterCycleWindow(t *testing.T) {
	var buf strings.Builder
	tw := NewTraceWriter(&buf, TraceFilter{FromCycle: 5, ToCycle: 6})
	for c := int64(0); c < 10; c++ {
		tw.Trace(Event{Cycle: c, Kind: EvLoad})
	}
	if n, _ := tw.Flush(); n != 2 {
		t.Errorf("window wrote %d events, want 2", n)
	}
}
