package sim

import (
	"context"
	"errors"
	"fmt"
)

// ErrCancelled and ErrBudget are the two ways a watchdogged simulation
// stops early: its context was cancelled (deadline, Ctrl-C, caller
// decision) or it exhausted its cycle budget (a runaway or
// pathologically configured run).
var (
	ErrCancelled = errors.New("sim: simulation cancelled")
	ErrBudget    = errors.New("sim: cycle budget exhausted")
)

// Watchdog bounds a simulation run: an optional context for
// cancellation and an optional cycle budget. Engines poll Check at
// schedule boundaries (pass and chunk granularity — cheap enough to
// never show up in profiles, frequent enough that cancellation latency
// stays a tiny fraction of a layer) and Commit completed work so the
// budget spans a whole multi-layer run. A nil *Watchdog is inert and
// costs one pointer test.
type Watchdog struct {
	ctx    context.Context
	budget int64
	spent  int64
}

// NewWatchdog builds a watchdog; ctx may be nil (no cancellation) and
// budget may be 0 (no cycle bound).
func NewWatchdog(ctx context.Context, budget int64) *Watchdog {
	return &Watchdog{ctx: ctx, budget: budget}
}

// Check reports whether the run must stop, given the cycles the
// current simulation has accumulated on top of previously committed
// work. It returns nil, ErrCancelled, or ErrBudget.
func (w *Watchdog) Check(currentCycles int64) error {
	if w == nil {
		return nil
	}
	if w.ctx != nil {
		select {
		case <-w.ctx.Done():
			return fmt.Errorf("%w: %v", ErrCancelled, w.ctx.Err())
		default:
		}
	}
	if w.budget > 0 && w.spent+currentCycles > w.budget {
		return fmt.Errorf("%w: %d cycles exceed budget %d", ErrBudget, w.spent+currentCycles, w.budget)
	}
	return nil
}

// Commit adds finished cycles to the spent tally, so the budget covers
// an entire run across layers and engines.
func (w *Watchdog) Commit(cycles int64) {
	if w == nil {
		return
	}
	w.spent += cycles
}

// Spent returns the committed cycle tally.
func (w *Watchdog) Spent() int64 {
	if w == nil {
		return 0
	}
	return w.spent
}
