package sim

import (
	"bufio"
	"fmt"
	"io"
)

// TraceFilter selects which events a TraceWriter emits. The zero value
// passes everything.
type TraceFilter struct {
	// Kinds restricts output to the listed kinds; empty means all.
	Kinds []EventKind
	// FromCycle/ToCycle bound the emitted window; ToCycle 0 means
	// unbounded.
	FromCycle, ToCycle int64
	// MaxEvents caps the output; 0 means unlimited.
	MaxEvents int
}

func (f TraceFilter) pass(e Event) bool {
	if e.Cycle < f.FromCycle {
		return false
	}
	if f.ToCycle > 0 && e.Cycle > f.ToCycle {
		return false
	}
	if len(f.Kinds) == 0 {
		return true
	}
	for _, k := range f.Kinds {
		if e.Kind == k {
			return true
		}
	}
	return false
}

// TraceWriter is a Tracer that streams events as text lines, one per
// event, in the Event.String format — the textual analogue of the
// paper's Figure 5 dataflow snapshots. It is safe to hand to a
// simulator directly.
type TraceWriter struct {
	w       *bufio.Writer
	filter  TraceFilter
	written int
	err     error
}

// NewTraceWriter wraps w with an optional filter.
func NewTraceWriter(w io.Writer, filter TraceFilter) *TraceWriter {
	return &TraceWriter{w: bufio.NewWriter(w), filter: filter}
}

// Trace implements Tracer.
func (t *TraceWriter) Trace(e Event) {
	if t.err != nil || !t.filter.pass(e) {
		return
	}
	if t.filter.MaxEvents > 0 && t.written >= t.filter.MaxEvents {
		return
	}
	if _, err := fmt.Fprintln(t.w, e.String()); err != nil {
		t.err = err
		return
	}
	t.written++
}

// Flush drains the buffer and reports the first write error and the
// number of events written.
func (t *TraceWriter) Flush() (int, error) {
	if err := t.w.Flush(); t.err == nil {
		t.err = err
	}
	return t.written, t.err
}
