// Package fixed implements the 16-bit fixed-point arithmetic used by all
// accelerator datapaths in this repository.
//
// The paper evaluates every architecture with a 16-bit fixed-point data
// type (Section 6.1.1). We use the Q7.8 format: 1 sign bit, 7 integer
// bits, 8 fractional bits. All arithmetic saturates rather than wraps,
// which is the conventional behaviour of accelerator MAC datapaths.
//
// Accumulation inside a PE happens at 32-bit precision (type Acc) and is
// rounded back to 16 bits when an output neuron is written to a buffer,
// mirroring the wide-accumulator-narrow-storage structure of the
// hardware.
package fixed

import "fmt"

// FracBits is the number of fractional bits in the Q7.8 format.
const FracBits = 8

// One is the fixed-point representation of 1.0.
const One Word = 1 << FracBits

// MaxWord and MinWord are the saturation bounds of the 16-bit format.
const (
	MaxWord Word = 0x7FFF
	MinWord Word = -0x8000
)

// Word is a 16-bit Q7.8 fixed-point value: the unit of storage in every
// buffer, local store, bus and DRAM model in this repository.
type Word int16

// Acc is the 32-bit accumulator type used inside PEs. Products of two
// Words are Q14.16 values; Acc holds running sums of such products.
type Acc int32

// FromFloat converts a float64 to the nearest representable Word,
// saturating at the format bounds.
func FromFloat(f float64) Word {
	v := int64(f*float64(One) + copysign(0.5, f))
	return saturate(v)
}

// Float returns the float64 value of w.
func (w Word) Float() float64 { return float64(w) / float64(One) }

// String renders the word as a decimal fixed-point number.
func (w Word) String() string { return fmt.Sprintf("%.4f", w.Float()) }

// Add returns w+v with saturation.
func Add(w, v Word) Word { return saturate(int64(w) + int64(v)) }

// Sub returns w-v with saturation.
func Sub(w, v Word) Word { return saturate(int64(w) - int64(v)) }

// Mul returns the Q7.8 product of w and v, rounded to nearest and
// saturated. This models a standalone 16×16 multiplier with a rounding
// output stage (used by the pooling unit's average mode).
func Mul(w, v Word) Word {
	p := int64(w) * int64(v) // Q14.16
	p += 1 << (FracBits - 1) // round half up
	return saturate(p >> FracBits)
}

// MAC returns acc + w*v at full accumulator precision. This is the PE
// datapath operation: the 16×16 product is kept as a 32-bit Q14.16 value
// and summed without intermediate rounding.
func MAC(acc Acc, w, v Word) Acc {
	return satAcc(int64(acc) + int64(w)*int64(v))
}

// AddAcc returns a+b with 32-bit saturation; used when partial results
// written back to a neuron buffer are re-read and merged (Fig. 13f).
func AddAcc(a, b Acc) Acc { return satAcc(int64(a) + int64(b)) }

// Round converts a Q14.16 accumulator to a Q7.8 word, rounding to
// nearest and saturating. Used when an output neuron leaves the
// computing engine.
func (a Acc) Round() Word {
	v := int64(a)
	if v >= 0 {
		return saturate((v + 1<<(FracBits-1)) >> FracBits)
	}
	return saturate(-((-v + 1<<(FracBits-1)) >> FracBits))
}

// Extend widens a word to accumulator precision (Q7.8 → Q14.16).
func (w Word) Extend() Acc { return Acc(int32(w) << FracBits) }

func saturate(v int64) Word {
	if v > int64(MaxWord) {
		return MaxWord
	}
	if v < int64(MinWord) {
		return MinWord
	}
	return Word(v)
}

func satAcc(v int64) Acc {
	const maxAcc = int64(1)<<31 - 1
	const minAcc = -int64(1) << 31
	if v > maxAcc {
		return Acc(maxAcc)
	}
	if v < minAcc {
		return Acc(minAcc)
	}
	return Acc(v)
}

func copysign(mag, sign float64) float64 {
	if sign < 0 {
		return -mag
	}
	return mag
}
