package fixed

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFromFloatRoundTrip(t *testing.T) {
	cases := []float64{0, 1, -1, 0.5, -0.5, 3.25, -3.25, 127.99, -128}
	for _, f := range cases {
		w := FromFloat(f)
		if got := w.Float(); math.Abs(got-f) > 1.0/float64(One) {
			t.Errorf("FromFloat(%v).Float() = %v, want within 1 ulp", f, got)
		}
	}
}

func TestFromFloatSaturates(t *testing.T) {
	if w := FromFloat(1e6); w != MaxWord {
		t.Errorf("FromFloat(1e6) = %v, want MaxWord", w)
	}
	if w := FromFloat(-1e6); w != MinWord {
		t.Errorf("FromFloat(-1e6) = %v, want MinWord", w)
	}
}

func TestAddSaturates(t *testing.T) {
	if got := Add(MaxWord, 1); got != MaxWord {
		t.Errorf("Add(MaxWord,1) = %v, want MaxWord", got)
	}
	if got := Sub(MinWord, 1); got != MinWord {
		t.Errorf("Sub(MinWord,1) = %v, want MinWord", got)
	}
}

func TestMulIdentity(t *testing.T) {
	for _, w := range []Word{0, 1, -1, One, -One, 1000, -1000, MaxWord, MinWord + 1} {
		if got := Mul(w, One); got != w {
			t.Errorf("Mul(%d, One) = %d, want %d", w, got, w)
		}
	}
}

func TestMulKnown(t *testing.T) {
	a := FromFloat(2.5)
	b := FromFloat(-1.5)
	if got, want := Mul(a, b).Float(), -3.75; math.Abs(got-want) > 0.01 {
		t.Errorf("2.5 * -1.5 = %v, want %v", got, want)
	}
}

func TestMACMatchesExactArithmetic(t *testing.T) {
	var acc Acc
	acc = MAC(acc, FromFloat(2), FromFloat(3))
	acc = MAC(acc, FromFloat(-1), FromFloat(4))
	if got, want := acc.Round().Float(), 2.0; math.Abs(got-want) > 0.01 {
		t.Errorf("MAC chain = %v, want %v", got, want)
	}
}

func TestRoundNegative(t *testing.T) {
	a := FromFloat(-2.5).Extend()
	if got := a.Round(); got != FromFloat(-2.5) {
		t.Errorf("Round(-2.5) = %v", got)
	}
}

func TestExtendRoundIsIdentity(t *testing.T) {
	f := func(w Word) bool { return w.Extend().Round() == w }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddCommutes(t *testing.T) {
	f := func(a, b Word) bool { return Add(a, b) == Add(b, a) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMulCommutes(t *testing.T) {
	f := func(a, b Word) bool { return Mul(a, b) == Mul(b, a) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMACCommutesInOperands(t *testing.T) {
	f := func(acc Acc, a, b Word) bool { return MAC(acc, a, b) == MAC(acc, b, a) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMACZeroIsIdentity(t *testing.T) {
	f := func(acc Acc, a Word) bool { return MAC(acc, a, 0) == acc && MAC(acc, 0, a) == acc }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddAccAssociativeOnSmallValues(t *testing.T) {
	// Saturation breaks associativity at the bounds, but within a safe
	// range 32-bit addition must be exact and associative.
	f := func(a, b, c int16) bool {
		x, y, z := Acc(a), Acc(b), Acc(c)
		return AddAcc(AddAcc(x, y), z) == AddAcc(x, AddAcc(y, z))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSaturationOrdering(t *testing.T) {
	// Saturating add never moves past the true sum: |sat(a+b)| <= |a+b|.
	f := func(a, b Word) bool {
		exact := int64(a) + int64(b)
		sat := int64(Add(a, b))
		if exact > int64(MaxWord) {
			return sat == int64(MaxWord)
		}
		if exact < int64(MinWord) {
			return sat == int64(MinWord)
		}
		return sat == exact
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringFormat(t *testing.T) {
	if got := FromFloat(1.5).String(); got != "1.5000" {
		t.Errorf("String() = %q", got)
	}
}
