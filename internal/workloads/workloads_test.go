package workloads

import (
	"testing"

	"flexflow/internal/nn"
)

// table1 pins the exact shapes the paper publishes in Table 1.
var table1 = map[string][]nn.ConvLayer{
	"PV": {
		{Name: "C1", M: 8, N: 1, S: 45, K: 6},
		{Name: "C3", M: 12, N: 8, S: 20, K: 3},
		{Name: "C5", M: 16, N: 12, S: 8, K: 3},
		{Name: "C6", M: 10, N: 16, S: 6, K: 3},
		{Name: "C7", M: 6, N: 10, S: 4, K: 3},
	},
	"FR": {
		{Name: "C1", M: 4, N: 1, S: 28, K: 5},
		{Name: "C3", M: 16, N: 4, S: 10, K: 4},
	},
	"LeNet-5": {
		{Name: "C1", M: 6, N: 1, S: 28, K: 5},
		{Name: "C3", M: 16, N: 6, S: 10, K: 5},
	},
	"HG": {
		{Name: "C1", M: 6, N: 1, S: 24, K: 5},
		{Name: "C3", M: 12, N: 6, S: 8, K: 4},
	},
	"AlexNet": {
		{Name: "C1", M: 48, N: 3, S: 55, K: 11},
		{Name: "C3", M: 128, N: 48, S: 27, K: 5},
		{Name: "C5", M: 192, N: 256, S: 13, K: 3},
		{Name: "C6", M: 192, N: 192, S: 13, K: 3},
		{Name: "C7", M: 128, N: 192, S: 13, K: 3},
	},
	"VGG-11": {
		{Name: "C1", M: 64, N: 3, S: 222, K: 3},
		{Name: "C3", M: 128, N: 64, S: 109, K: 3},
		{Name: "C5", M: 256, N: 128, S: 52, K: 3},
		{Name: "C6", M: 256, N: 256, S: 50, K: 3},
		{Name: "C8", M: 512, N: 256, S: 23, K: 3},
		{Name: "C9", M: 512, N: 512, S: 21, K: 3},
		{Name: "C11", M: 512, N: 512, S: 8, K: 3},
		{Name: "C12", M: 512, N: 512, S: 6, K: 3},
	},
}

func TestTable1Shapes(t *testing.T) {
	for _, w := range All() {
		want, ok := table1[w.Name]
		if !ok {
			t.Fatalf("workload %q not in Table 1 pin map", w.Name)
		}
		got := w.ConvLayers()
		if len(got) != len(want) {
			t.Fatalf("%s: %d conv layers, want %d", w.Name, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%s layer %d = %+v, want %+v", w.Name, i, got[i], want[i])
			}
		}
	}
}

func TestAllHasSixWorkloads(t *testing.T) {
	if len(All()) != 6 {
		t.Fatalf("All() returned %d workloads, want 6", len(All()))
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"PV", "FR", "LeNet-5", "HG", "AlexNet", "VGG-11", "Example"} {
		if ByName(name) == nil {
			t.Errorf("ByName(%q) = nil", name)
		}
	}
	if ByName("nope") != nil {
		t.Error("ByName(nope) should be nil")
	}
}

func TestExampleChains(t *testing.T) {
	if err := Example().Validate(); err != nil {
		t.Errorf("Example network must chain exactly: %v", err)
	}
}

func TestLeNet5FirstLayersChain(t *testing.T) {
	// LeNet-5's published shapes chain exactly; verify end to end.
	if err := LeNet5().Validate(); err != nil {
		t.Errorf("LeNet-5 should chain: %v", err)
	}
}

func TestPVChains(t *testing.T) {
	if err := PV().Validate(); err != nil {
		t.Errorf("PV should chain: %v", err)
	}
}

func TestNextConvCoupling(t *testing.T) {
	le := LeNet5()
	next, p, ok := le.NextConvAfter(0)
	if !ok || next.Name != "C3" || p != 2 {
		t.Errorf("LeNet-5 C1 coupling = %v p=%d ok=%v, want C3 p=2", next.Name, p, ok)
	}
}

func TestWorkloadOpsMagnitude(t *testing.T) {
	// Sanity-pin total CONV op counts (2 ops per MAC): AlexNet's listed
	// half-network is on the order of 2 GOP, VGG-11 tens of GOP.
	al := AlexNet().TotalConvOps()
	if al < 3e8 || al > 5e9 {
		t.Errorf("AlexNet ops = %d, expected ~7e8", al)
	}
	vg := VGG11().TotalConvOps()
	if vg < 1e9 || vg > 1e11 {
		t.Errorf("VGG-11 ops = %d, expected ~1e10", vg)
	}
	le := LeNet5().TotalConvOps()
	if le < 1e5 || le > 1e7 {
		t.Errorf("LeNet-5 ops = %d, expected ~7e5", le)
	}
}

func TestAlexNetStrided(t *testing.T) {
	nw := AlexNetStrided()
	c1 := nw.ConvLayers()[0]
	if c1.Stride != 4 || c1.InSize() != 227 {
		t.Errorf("C1 stride=%d in=%d, want 4/227", c1.Stride, c1.InSize())
	}
	if c1.MACs() != AlexNet().ConvLayers()[0].MACs() {
		t.Error("stride must not change the MAC count")
	}
	// The strided variant is not in All() — the paper's evaluation uses
	// the Table 1 shapes.
	for _, w := range All() {
		if w.Name == nw.Name {
			t.Error("AlexNet-strided leaked into the Table 1 set")
		}
	}
}
