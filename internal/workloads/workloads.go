// Package workloads defines the six practical CNNs of the paper's
// Table 1 (PV, FR, LeNet-5, HG, AlexNet, VGG-11) plus the small running
// example of Figure 2 used throughout Section 4.
//
// Layer shapes are taken verbatim from Table 1. A few published shapes
// do not chain exactly under valid convolution + 2×2 pooling (FR C3,
// HG C3, AlexNet's strided C1, VGG's C9 output-map count, which the
// table prints as 128 although its kernel column says 512×512); we keep
// the published per-layer (M, N, S, K) values because every evaluated
// metric — utilization, cycles, GOPS, data volume, power — depends only
// on the individual layer shapes, never on inter-layer tensor identity.
// Pooling layers between CONV layers are recorded so the compiler can
// apply the paper's §5 inter-layer constraint (T_r, T_c ≤ P·K′).
package workloads

import (
	"flexflow/internal/nn"
	"flexflow/internal/tensor"
)

func conv(name string, m, n, s, k int) nn.Layer {
	return nn.Layer{Kind: nn.Conv, Conv: nn.ConvLayer{Name: name, M: m, N: n, S: s, K: k}}
}

func pool(name string, n, in, p int) nn.Layer {
	return nn.Layer{Kind: nn.Pool, Pool: nn.PoolLayer{Name: name, N: n, In: in, P: p, Kind: tensor.MaxPool}}
}

// PV is the pedestrian-and-vehicle recognition model [28] of Table 1.
func PV() *nn.Network {
	return &nn.Network{
		Name:   "PV",
		InputN: 1,
		InputS: 50,
		Layers: []nn.Layer{
			conv("C1", 8, 1, 45, 6),
			pool("P2", 8, 45, 2),
			conv("C3", 12, 8, 20, 3),
			pool("P4", 12, 20, 2),
			conv("C5", 16, 12, 8, 3),
			conv("C6", 10, 16, 6, 3),
			conv("C7", 6, 10, 4, 3),
		},
	}
}

// FR is the face recognition model [5] of Table 1.
func FR() *nn.Network {
	return &nn.Network{
		Name:   "FR",
		InputN: 1,
		InputS: 32,
		Layers: []nn.Layer{
			conv("C1", 4, 1, 28, 5),
			pool("P2", 4, 28, 2),
			conv("C3", 16, 4, 10, 4),
		},
	}
}

// LeNet5 is the handwriting recognition model [16] of Table 1.
func LeNet5() *nn.Network {
	return &nn.Network{
		Name:   "LeNet-5",
		InputN: 1,
		InputS: 32,
		Layers: []nn.Layer{
			conv("C1", 6, 1, 28, 5),
			pool("P2", 6, 28, 2),
			conv("C3", 16, 6, 10, 5),
		},
	}
}

// HG is the hand-gesture recognition model [17] of Table 1.
func HG() *nn.Network {
	return &nn.Network{
		Name:   "HG",
		InputN: 1,
		InputS: 28,
		Layers: []nn.Layer{
			conv("C1", 6, 1, 24, 5),
			pool("P2", 6, 24, 2),
			conv("C3", 12, 6, 8, 4),
		},
	}
}

// AlexNet is the image-classification model [13] of Table 1. Per the
// table's caption, just one of the two identical layer-parts is listed,
// except C5 whose input merges both parts (N = 256).
func AlexNet() *nn.Network {
	return &nn.Network{
		Name:   "AlexNet",
		InputN: 3,
		InputS: 224,
		Layers: []nn.Layer{
			conv("C1", 48, 3, 55, 11),
			pool("P2", 48, 55, 2),
			conv("C3", 128, 48, 27, 5),
			pool("P4", 128, 27, 2),
			conv("C5", 192, 256, 13, 3),
			conv("C6", 192, 192, 13, 3),
			conv("C7", 128, 192, 13, 3),
		},
	}
}

// AlexNetStrided is AlexNet with its real first-layer geometry — an
// 11×11 kernel at stride 4 over a 227-pixel input — rather than the
// shape-only Table 1 view. Strided layers are an extension of this
// reproduction: the FlexFlow engine executes them natively, while the
// rigid baselines (like the paper's) assume unit stride.
func AlexNetStrided() *nn.Network {
	nw := AlexNet()
	nw.Name = "AlexNet-strided"
	nw.InputS = 227
	nw.Layers[0].Conv.Stride = 4
	return nw
}

// VGG11 is the VGG image-classification model [25] of Table 1. C9's
// output-map count follows its kernel column (512×512 ⇒ M = 512); the
// table's "128@21×21" layer-size entry is a typo.
func VGG11() *nn.Network {
	return &nn.Network{
		Name:   "VGG-11",
		InputN: 3,
		InputS: 224,
		Layers: []nn.Layer{
			conv("C1", 64, 3, 222, 3),
			pool("P2", 64, 222, 2),
			conv("C3", 128, 64, 109, 3),
			pool("P4", 128, 109, 2),
			conv("C5", 256, 128, 52, 3),
			conv("C6", 256, 256, 50, 3),
			pool("P7", 256, 50, 2),
			conv("C8", 512, 256, 23, 3),
			conv("C9", 512, 512, 21, 3),
			pool("P10", 512, 21, 2),
			conv("C11", 512, 512, 8, 3),
			conv("C12", 512, 512, 6, 3),
		},
	}
}

// Example is the small running example of Section 4 (Fig. 6's engine
// walk-through): two CONV layers C1 (M=2, N=1, K=4) and C2 (M=2, N=2,
// S=4, K=2) with a 2×2 pooling layer between them. C1's output size is
// 10 (the paper uses 8) so that the chain C1 → pool → C2 closes exactly
// under valid convolution; C2 keeps the paper's shape. Because it
// chains, the functional simulators can execute it end-to-end.
func Example() *nn.Network {
	return &nn.Network{
		Name:   "Example",
		InputN: 1,
		InputS: 13,
		Layers: []nn.Layer{
			conv("C1", 2, 1, 10, 4),
			pool("P1", 2, 10, 2),
			conv("C2", 2, 2, 4, 2),
		},
	}
}

// All returns the six Table 1 workloads in the paper's order.
func All() []*nn.Network {
	return []*nn.Network{PV(), FR(), LeNet5(), HG(), AlexNet(), VGG11()}
}

// ByName returns the workload with the given name (case-sensitive,
// matching the Name field) or nil.
func ByName(name string) *nn.Network {
	for _, w := range All() {
		if w.Name == name {
			return w
		}
	}
	if name == "Example" {
		return Example()
	}
	return nil
}
