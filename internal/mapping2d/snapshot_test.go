package mapping2d

// Dataflow snapshot tests: the Go analogue of the paper's Figure 5(b2)
// — pinning the synapse-broadcast order and the neuron shift/FIFO reuse
// pattern of the 2-D mapping dataflow.

import (
	"fmt"
	"testing"

	"flexflow/internal/nn"
	"flexflow/internal/sim"
	"flexflow/internal/tensor"
)

func runSnapshot(t *testing.T, l nn.ConvLayer, d int) *sim.Recorder {
	t.Helper()
	e := New(d)
	rec := &sim.Recorder{}
	e.Tracer = rec
	in := tensor.NewMap3(l.N, l.InSize(), l.InSize())
	in.FillPattern(31)
	k := tensor.NewKernel4(l.M, l.N, l.K)
	k.FillPattern(32)
	if _, _, err := e.Simulate(l, in, k); err != nil {
		t.Fatal(err)
	}
	return rec
}

func TestSynapseBroadcastOrder(t *testing.T) {
	// One synapse per cycle, walked in row-major kernel order for each
	// (m, n) — the §3.2 schedule.
	l := nn.ConvLayer{Name: "snap", M: 2, N: 2, S: 3, K: 2}
	rec := runSnapshot(t, l, 3)
	bcasts := rec.Filter(sim.EvBroadcast)
	if len(bcasts) != int(2*2*2*2) { // M·N·K² steps (one block per map)
		t.Fatalf("broadcasts = %d, want 16", len(bcasts))
	}
	idx := 0
	for m := 0; m < l.M; m++ {
		for n := 0; n < l.N; n++ {
			for i := 0; i < l.K; i++ {
				for j := 0; j < l.K; j++ {
					want := fmt.Sprintf("K(%d,%d,%d,%d)", m, n, i, j)
					if bcasts[idx].What != want {
						t.Fatalf("broadcast %d = %q, want %q", idx, bcasts[idx].What, want)
					}
					if bcasts[idx].Cycle != int64(idx) {
						t.Fatalf("broadcast %d at cycle %d, want one per cycle", idx, bcasts[idx].Cycle)
					}
					idx++
				}
			}
		}
	}
}

func TestRowJumpShiftsComeFromBelow(t *testing.T) {
	// On a kernel-row jump, PE(r,c) receives I(r+i, c) — the value PE
	// row r+1 consumed during the previous kernel row (the FIFO path).
	l := nn.ConvLayer{Name: "snap", M: 1, N: 1, S: 3, K: 3}
	rec := runSnapshot(t, l, 3)
	shifts := rec.Filter(sim.EvShift)
	if len(shifts) == 0 {
		t.Fatal("no shift events")
	}
	for _, e := range shifts {
		var n, r, c int
		if _, err := fmt.Sscanf(e.What, "I(%d,%d,%d)", &n, &r, &c); err != nil {
			t.Fatalf("bad shift label %q", e.What)
		}
		// The receiving PE is (e.Row, e.Col); the value's input row must
		// be strictly below the PE's own output row (r > e.Row) — it
		// came up from the row beneath.
		if r <= e.Row {
			t.Errorf("shift %q into PE(%d,%d): value did not come from below", e.What, e.Row, e.Col)
		}
		if c != e.Col {
			t.Errorf("shift %q into PE(%d,%d): column changed", e.What, e.Row, e.Col)
		}
	}
}

func TestShiftsOnlyOnRowJumps(t *testing.T) {
	// Traced shift events (FIFO pops) happen exactly on the K-1 row
	// jumps per (block, n): (rows-1)·cols values each.
	l := nn.ConvLayer{Name: "snap", M: 1, N: 2, S: 3, K: 3}
	rec := runSnapshot(t, l, 3)
	want := 2 /*n*/ * (3 - 1) /*jumps*/ * (3 - 1) * 3 /*rows-1 × cols*/
	if got := len(rec.Filter(sim.EvShift)); got != want {
		t.Errorf("FIFO shifts = %d, want %d", got, want)
	}
}
