// Package mapping2d implements the SFMNSS baseline architecture
// (Section 3.2): a D×D 2-D mapping array in the style of ShiDiannao.
// Each PE computes one output neuron of a D×D block of a single output
// feature map. Per cycle, one synapse is broadcast to all PEs and each
// PE multiplies it with an input neuron that arrives either fresh from
// the buffer (rightmost column / bottom row) or shifted from a
// neighbouring PE's FIFO (everything else), accumulating locally until
// the output neuron is complete after N·K² cycles.
package mapping2d

import (
	"fmt"

	"flexflow/internal/arch"
	"flexflow/internal/fixed"
	"flexflow/internal/mapping"
	"flexflow/internal/nn"
	"flexflow/internal/sim"
	"flexflow/internal/tensor"
)

// Engine is a 2-D mapping computing engine with a D×D PE array.
type Engine struct {
	D int // array edge (the paper's configuration is 16)

	// BufferWords bounds on-chip reuse in the DRAM model (32 KB = 16384
	// words in the paper's configuration).
	BufferWords int

	// Tracer, when non-nil, receives dataflow events from Simulate.
	Tracer sim.Tracer

	// Watchdog, when non-nil, bounds Simulate: it is polled at block
	// boundaries, so a cancelled context or exhausted cycle budget
	// stops the run with a typed error.
	Watchdog *sim.Watchdog
}

// New returns a 2-D mapping engine with the paper's buffer capacity.
func New(d int) *Engine {
	if d <= 0 {
		panic("mapping2d: D must be positive")
	}
	return &Engine{D: d, BufferWords: 16384}
}

// SetTracer installs (or clears) the dataflow tracer; it is the
// capability setter the execution pipeline uses to thread run options
// uniformly through every engine.
func (e *Engine) SetTracer(t sim.Tracer) { e.Tracer = t }

// SetWatchdog installs (or clears) the simulation watchdog.
func (e *Engine) SetWatchdog(w *sim.Watchdog) { e.Watchdog = w }

// Name implements arch.Engine.
func (e *Engine) Name() string { return "2D-Mapping" }

// PEs implements arch.Engine.
func (e *Engine) PEs() int { return e.D * e.D }

// rule returns the mapping-layer lowering rule configured exactly as
// this engine; Model and Simulate's DRAM accounting both go through it,
// so the engine and its preset spec cannot drift.
func (e *Engine) rule() mapping.Grid {
	return mapping.Grid{D: e.D, BufferWords: e.BufferWords}
}

// spec returns the engine's configuration as its mapping spec: the
// mapping2d preset at this engine's geometry.
func (e *Engine) spec() mapping.Spec {
	s := mapping.PresetMapping2D(e.D)
	s.Geom.BufferWords = e.BufferWords
	return s
}

// LayerCacheKey implements the pipeline's CacheKeyer: the engine's
// mapping-spec digest (kind, array edge, buffer capacity and dataflow
// directives, via mapping.AppendSpecKey), tracer arming and the layer
// shape — everything Model reads (see arch.AppendLayerKey for the
// exclusions).
func (e *Engine) LayerCacheKey(l nn.ConvLayer) (string, bool) {
	b := make([]byte, 0, 224)
	s := e.spec()
	b = mapping.AppendSpecKey(b, &s)
	b = arch.AppendKeyBool(b, e.Tracer != nil)
	b = arch.AppendLayerKey(b, l)
	return string(b), true
}

// CheckLayer implements arch.LayerChecker: the 2-D mapping baseline
// keeps the paper's unit-stride contract (§3).
func (e *Engine) CheckLayer(l nn.ConvLayer) error {
	if err := l.Validate(); err != nil {
		return err
	}
	if l.Str() != 1 {
		return fmt.Errorf("mapping2d: layer %s has stride %d; the rigid baselines assume unit stride (paper §3)", l.Name, l.Str())
	}
	return nil
}

// Model implements arch.Engine by lowering the layer through the 2-D
// mapping rule.
func (e *Engine) Model(l nn.ConvLayer) arch.LayerResult {
	res := e.rule().Account(l)
	res.Arch = e.Name()
	return res
}

// Simulate implements arch.Engine. The PE grid is explicit: registers
// shift right-to-left on j-steps and pop from row FIFOs on i-steps,
// exactly the §3.2 dataflow, so the movement counters are measured, not
// estimated.
func (e *Engine) Simulate(l nn.ConvLayer, in *tensor.Map3, k *tensor.Kernel4) (*tensor.Map3, arch.LayerResult, error) {
	if err := l.Validate(); err != nil {
		return nil, arch.LayerResult{}, err
	}
	if l.Str() != 1 {
		return nil, arch.LayerResult{}, fmt.Errorf("mapping2d: unit-stride dataflow cannot execute stride-%d layer %s", l.Str(), l.Name)
	}
	if in.N != l.N || k.M != l.M || k.N != l.N || k.K != l.K {
		return nil, arch.LayerResult{}, fmt.Errorf("mapping2d: operand shapes do not match layer %v", l)
	}
	if in.H != l.InSize() || in.W != l.InSize() {
		return nil, arch.LayerResult{}, fmt.Errorf("mapping2d: input is %dx%d, layer needs %dx%d", in.H, in.W, l.InSize(), l.InSize())
	}

	out := tensor.NewMap3(l.M, l.S, l.S)
	res := arch.LayerResult{
		Arch: e.Name(), Layer: l, PEs: e.PEs(),
		Factors: arch.T{Tm: 1, Tn: 1, Tr: min(e.D, l.S), Tc: min(e.D, l.S), Ti: 1, Tj: 1},
	}
	var clock sim.Clock

	cur := make([][]fixed.Word, e.D)
	acc := make([][]fixed.Acc, e.D)
	// fifo[r][c] holds the values PE(r,c) consumed during the current
	// kernel row, which PE(r-1,c) will need during the next kernel row.
	fifo := make([][][]fixed.Word, e.D)
	for r := 0; r < e.D; r++ {
		cur[r] = make([]fixed.Word, e.D)
		acc[r] = make([]fixed.Acc, e.D)
		fifo[r] = make([][]fixed.Word, e.D)
	}

	for m := 0; m < l.M; m++ {
		for r0 := 0; r0 < l.S; r0 += e.D {
			for c0 := 0; c0 < l.S; c0 += e.D {
				rows := min(e.D, l.S-r0)
				cols := min(e.D, l.S-c0)
				for r := 0; r < rows; r++ {
					for c := 0; c < cols; c++ {
						acc[r][c] = 0
					}
				}
				for n := 0; n < l.N; n++ {
					// Poll the watchdog at block boundaries so a budget or
					// cancellation lands without touching the cycle loop.
					if err := e.Watchdog.Check(clock.Cycle()); err != nil {
						return nil, arch.LayerResult{}, err
					}
					e.runBlock(l, in, k, cur, acc, fifo, &res, &clock, m, n, r0, c0, rows, cols)
				}
				for r := 0; r < rows; r++ {
					for c := 0; c < cols; c++ {
						out.Set(m, r0+r, c0+c, acc[r][c].Round())
						res.NeuronStores++
					}
				}
			}
		}
	}
	res.Cycles = clock.Cycle()
	e.rule().DRAM(l, &res)
	e.Watchdog.Commit(res.Cycles)
	return out, res, nil
}

// runBlock executes the N·K² cycle schedule of one output block for one
// input feature map.
func (e *Engine) runBlock(l nn.ConvLayer, in *tensor.Map3, k *tensor.Kernel4,
	cur [][]fixed.Word, acc [][]fixed.Acc, fifo [][][]fixed.Word,
	res *arch.LayerResult, clock *sim.Clock, m, n, r0, c0, rows, cols int) {

	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			fifo[r][c] = fifo[r][c][:0]
		}
	}
	for i := 0; i < l.K; i++ {
		for j := 0; j < l.K; j++ {
			switch {
			case i == 0 && j == 0:
				// Initial parallel load of the whole block.
				for r := 0; r < rows; r++ {
					for c := 0; c < cols; c++ {
						cur[r][c] = in.At(n, r0+r, c0+c)
						res.NeuronLoads++
					}
				}
			case j == 0:
				// Kernel-row jump: PE(r,c) needs I(r0+r+i, c0+c), which
				// PE(r+1,c) consumed first during kernel row i-1 and
				// queued in its FIFO. The bottom row loads fresh.
				for r := 0; r < rows-1; r++ {
					for c := 0; c < cols; c++ {
						cur[r][c] = fifo[r+1][c][0]
						res.InterPEMoves++
						if e.Tracer != nil {
							e.Tracer.Trace(sim.Event{Cycle: clock.Cycle(), Kind: sim.EvShift, Row: r, Col: c,
								What: fmt.Sprintf("I(%d,%d,%d)", n, r0+r+i, c0+c)})
						}
					}
				}
				for c := 0; c < cols; c++ {
					cur[rows-1][c] = in.At(n, r0+rows-1+i, c0+c)
					res.NeuronLoads++
				}
				// New kernel row: reset the FIFO queues.
				for r := 0; r < rows; r++ {
					for c := 0; c < cols; c++ {
						fifo[r][c] = fifo[r][c][:0]
					}
				}
			default:
				// Column shift: PE(r,c) takes PE(r,c+1)'s value; the
				// rightmost column loads fresh.
				for r := 0; r < rows; r++ {
					for c := 0; c < cols-1; c++ {
						cur[r][c] = cur[r][c+1]
						res.InterPEMoves++
					}
					cur[r][cols-1] = in.At(n, r0+r+i, c0+cols-1+j)
					res.NeuronLoads++
				}
			}
			// Queue the value each PE holds at the start of the kernel
			// row (j == 0 position) for the row above.
			if j == 0 {
				for r := 0; r < rows; r++ {
					for c := 0; c < cols; c++ {
						fifo[r][c] = append(fifo[r][c], cur[r][c])
					}
				}
			}
			// Broadcast one synapse to all PEs and MAC.
			w := k.At(m, n, i, j)
			res.KernelLoads++
			if e.Tracer != nil {
				e.Tracer.Trace(sim.Event{Cycle: clock.Cycle(), Kind: sim.EvBroadcast, Row: -1, Col: -1,
					What: fmt.Sprintf("K(%d,%d,%d,%d)", m, n, i, j)})
			}
			for r := 0; r < rows; r++ {
				for c := 0; c < cols; c++ {
					acc[r][c] = fixed.MAC(acc[r][c], cur[r][c], w)
					res.MACs++
					res.LocalReads += 2
					res.LocalWrites++
				}
			}
			clock.Tick()
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
