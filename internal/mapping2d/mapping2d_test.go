package mapping2d

import (
	"testing"

	"flexflow/internal/nn"
	"flexflow/internal/sim"
	"flexflow/internal/tensor"
)

func makeOperands(l nn.ConvLayer, seed uint64) (*tensor.Map3, *tensor.Kernel4) {
	in := tensor.NewMap3(l.N, l.InSize(), l.InSize())
	in.FillPattern(seed)
	k := tensor.NewKernel4(l.M, l.N, l.K)
	k.FillPattern(seed + 1)
	return in, k
}

func TestSimulateMatchesGoldenConv(t *testing.T) {
	layers := []nn.ConvLayer{
		{Name: "tiny", M: 1, N: 1, S: 3, K: 2},
		{Name: "fits", M: 2, N: 2, S: 4, K: 3},
		{Name: "tiles", M: 2, N: 1, S: 9, K: 2}, // S > D ⇒ multiple blocks
		{Name: "exact", M: 1, N: 2, S: 4, K: 4},
	}
	e := New(4)
	for _, l := range layers {
		in, k := makeOperands(l, 99)
		got, res, err := e.Simulate(l, in, k)
		if err != nil {
			t.Fatalf("%s: %v", l.Name, err)
		}
		if !got.Equal(tensor.Conv(in, k)) {
			t.Errorf("%s: output differs from golden conv", l.Name)
		}
		if res.MACs != l.MACs() {
			t.Errorf("%s: MACs = %d, want %d", l.Name, res.MACs, l.MACs())
		}
	}
}

func TestUtilizationFullWhenMapMatchesArray(t *testing.T) {
	// S = D: every PE busy every cycle ⇒ utilization 1.
	e := New(8)
	l := nn.ConvLayer{M: 3, N: 2, S: 8, K: 3}
	if u := e.Model(l).Utilization(); u < 0.999 {
		t.Errorf("utilization = %v, want 1.0", u)
	}
}

func TestUtilizationCollapsesForSmallMaps(t *testing.T) {
	// The paper's core criticism: feature maps smaller than the array
	// waste PEs. S=10 on 16×16 ⇒ (10/16)² ≈ 39%.
	e := New(16)
	l := nn.ConvLayer{M: 16, N: 6, S: 10, K: 5}
	u := e.Model(l).Utilization()
	if u < 0.38 || u > 0.40 {
		t.Errorf("utilization = %v, want ≈ 0.39", u)
	}
}

func TestTable3Cell(t *testing.T) {
	// LeNet-5 C3 (S=10) on a C1-optimized 28×28 array: (10/28)² ≈ 12.7%
	// — the exact cell of the paper's Table 3.
	e := New(28)
	l := nn.ConvLayer{M: 16, N: 6, S: 10, K: 5}
	u := e.Model(l).Utilization()
	if u < 0.125 || u > 0.13 {
		t.Errorf("utilization = %v, want ≈ 0.127", u)
	}
}

func TestSynapseBroadcastOncePerCycle(t *testing.T) {
	e := New(4)
	l := nn.ConvLayer{M: 1, N: 1, S: 4, K: 3}
	in, k := makeOperands(l, 3)
	_, res, err := e.Simulate(l, in, k)
	if err != nil {
		t.Fatal(err)
	}
	if res.KernelLoads != res.Cycles {
		t.Errorf("KernelLoads = %d, want one per cycle (%d)", res.KernelLoads, res.Cycles)
	}
}

func TestShiftsReuseNeurons(t *testing.T) {
	// Most operand arrivals must come from shifts, not buffer loads,
	// when the block is large — that is the FIFO reuse the paper
	// credits 2D-Mapping with.
	e := New(8)
	l := nn.ConvLayer{M: 1, N: 1, S: 8, K: 4}
	in, k := makeOperands(l, 4)
	_, res, err := e.Simulate(l, in, k)
	if err != nil {
		t.Fatal(err)
	}
	if res.InterPEMoves <= res.NeuronLoads {
		t.Errorf("InterPEMoves %d should exceed NeuronLoads %d", res.InterPEMoves, res.NeuronLoads)
	}
}

func TestTracerSeesShifts(t *testing.T) {
	e := New(3)
	rec := &sim.Recorder{}
	e.Tracer = rec
	l := nn.ConvLayer{M: 1, N: 1, S: 3, K: 2}
	in, k := makeOperands(l, 5)
	if _, _, err := e.Simulate(l, in, k); err != nil {
		t.Fatal(err)
	}
	if len(rec.Filter(sim.EvBroadcast)) != 4 { // K² synapse broadcasts
		t.Errorf("broadcasts = %d, want 4", len(rec.Filter(sim.EvBroadcast)))
	}
	if len(rec.Filter(sim.EvShift)) == 0 {
		t.Error("no shift events recorded")
	}
}

func TestSimulateRejectsBadShapes(t *testing.T) {
	e := New(4)
	l := nn.ConvLayer{Name: "x", M: 2, N: 1, S: 4, K: 3}
	if _, _, err := e.Simulate(l, tensor.NewMap3(3, 6, 6), tensor.NewKernel4(2, 1, 3)); err == nil {
		t.Error("wrong-N input accepted")
	}
}

func TestEngineIdentity(t *testing.T) {
	e := New(16)
	if e.Name() != "2D-Mapping" || e.PEs() != 256 {
		t.Errorf("Name=%q PEs=%d", e.Name(), e.PEs())
	}
}

func TestDRAMReloadPerOutputMap(t *testing.T) {
	e := New(4)
	e.BufferWords = 16
	l := nn.ConvLayer{M: 3, N: 1, S: 4, K: 2} // input 25 words > 16
	res := e.Model(l)
	if res.DRAMReads < l.InputWords()*3 {
		t.Errorf("DRAMReads = %d, want ≥ %d", res.DRAMReads, l.InputWords()*3)
	}
}
