package mem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKernelLayoutInjective(t *testing.T) {
	l := KernelLayout{Tm: 3, Tr: 2, Tc: 2, N: 4, K: 3}
	seen := make(map[BankAddr][4]int)
	for m := 0; m < 6; m++ {
		for n := 0; n < l.N; n++ {
			for i := 0; i < l.K; i++ {
				for j := 0; j < l.K; j++ {
					a := l.Place(m, n, i, j)
					if prev, dup := seen[a]; dup {
						t.Fatalf("words %v and %v collide at %+v", prev, [4]int{m, n, i, j}, a)
					}
					seen[a] = [4]int{m, n, i, j}
					if a.Group != m%l.Tm {
						t.Fatalf("kernel (%d,...) in group %d, want %d", m, a.Group, m%l.Tm)
					}
					if a.Sub < 0 || a.Sub >= l.Tr || a.Lane < 0 || a.Lane >= l.Tc || a.Offset < 0 {
						t.Fatalf("address out of geometry: %+v", a)
					}
				}
			}
		}
	}
}

func TestKernelLayoutAlignedRunsConflictFree(t *testing.T) {
	// Any aligned run of Tr·Tc consecutive words of one kernel stream
	// must land in distinct banks (that is what lets the reading
	// controller pull a full line per cycle for IPDR).
	l := KernelLayout{Tm: 2, Tr: 2, Tc: 3, N: 3, K: 5}
	banks := l.Tr * l.Tc
	words := l.N * l.K * l.K
	for start := 0; start+banks <= words; start += banks {
		var addrs []BankAddr
		for w := start; w < start+banks; w++ {
			n := w / (l.K * l.K)
			rem := w % (l.K * l.K)
			addrs = append(addrs, l.Place(0, n, rem/l.K, rem%l.K))
		}
		if !LineConflictFree(addrs) {
			t.Fatalf("run starting at %d conflicts", start)
		}
	}
}

func TestNeuronLayoutInjective(t *testing.T) {
	l := NeuronLayout{Tn: 2, Ti: 3, Tj: 2, H: 7, W: 9}
	seen := make(map[BankAddr]bool)
	for n := 0; n < 4; n++ {
		for r := 0; r < l.H; r++ {
			for c := 0; c < l.W; c++ {
				a := l.Place(n, r, c)
				if seen[a] {
					t.Fatalf("collision at (%d,%d,%d) -> %+v", n, r, c, a)
				}
				seen[a] = true
			}
		}
	}
}

func TestNeuronLayoutGroupAssignment(t *testing.T) {
	// The paper's assignment: I^(n) goes to Group(:, n mod Tn), row r
	// to sub-group r mod Ti.
	l := NeuronLayout{Tn: 3, Ti: 2, Tj: 4, H: 8, W: 8}
	a := l.Place(5, 3, 6)
	if a.Group != 2 || a.Sub != 1 || a.Lane != 2 {
		t.Errorf("Place(5,3,6) = %+v, want group 2, sub 1, lane 2", a)
	}
}

func TestNeuronLineConflictFreeWhenAligned(t *testing.T) {
	f := func(tn, ti, tj, hw uint8) bool {
		l := NeuronLayout{
			Tn: int(tn%3) + 1,
			Ti: int(ti%3) + 1,
			Tj: int(tj%4) + 1,
			H:  int(hw%6) + 6,
			W:  int(hw%5) + 6,
		}
		// Aligned origins.
		for _, origin := range [][3]int{{0, 0, 0}, {l.Tn, l.Ti, l.Tj}, {0, 2 * l.Ti, l.Tj}} {
			r0, c0 := origin[1], origin[2]
			if r0 >= l.H || c0 >= l.W {
				continue
			}
			if !LineConflictFree(l.Line(origin[0], r0, c0)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNeuronLayoutFillsBanksDensely(t *testing.T) {
	// Offsets within one bank must be dense enough to fit the buffer:
	// the maximum offset is bounded by ⌈maps/Tn⌉·⌈H/Ti⌉·⌈W/Tj⌉.
	l := NeuronLayout{Tn: 2, Ti: 2, Tj: 2, H: 6, W: 6}
	maxOffset := 0
	for n := 0; n < 4; n++ {
		for r := 0; r < l.H; r++ {
			for c := 0; c < l.W; c++ {
				if a := l.Place(n, r, c); a.Offset > maxOffset {
					maxOffset = a.Offset
				}
			}
		}
	}
	bound := (4/l.Tn)*((l.H+l.Ti-1)/l.Ti)*((l.W+l.Tj-1)/l.Tj) - 1
	if maxOffset > bound {
		t.Errorf("max offset %d exceeds dense bound %d", maxOffset, bound)
	}
}

func TestPlacePanicsOutsideDomain(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("out-of-domain Place did not panic")
		}
	}()
	NeuronLayout{Tn: 1, Ti: 1, Tj: 1, H: 4, W: 4}.Place(0, 4, 0)
}

func TestLineConflictFreeDetectsCollision(t *testing.T) {
	a := BankAddr{Group: 0, Sub: 0, Lane: 0, Offset: 1}
	b := BankAddr{Group: 0, Sub: 0, Lane: 0, Offset: 2}
	if LineConflictFree([]BankAddr{a, b}) {
		t.Error("same bank, different offsets should conflict (one port)")
	}
	c := BankAddr{Group: 0, Sub: 0, Lane: 1}
	if !LineConflictFree([]BankAddr{a, c}) {
		t.Error("distinct banks should not conflict")
	}
}

func TestKernelLayoutRandomizedInjectivity(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 30; trial++ {
		l := KernelLayout{
			Tm: 1 + rng.Intn(4), Tr: 1 + rng.Intn(3), Tc: 1 + rng.Intn(3),
			N: 1 + rng.Intn(4), K: 1 + rng.Intn(5),
		}
		m1, m2 := rng.Intn(8), rng.Intn(8)
		n1, n2 := rng.Intn(l.N), rng.Intn(l.N)
		i1, i2 := rng.Intn(l.K), rng.Intn(l.K)
		j1, j2 := rng.Intn(l.K), rng.Intn(l.K)
		if [4]int{m1, n1, i1, j1} == [4]int{m2, n2, i2, j2} {
			continue
		}
		if l.Place(m1, n1, i1, j1) == l.Place(m2, n2, i2, j2) {
			t.Fatalf("layout %+v: (%d,%d,%d,%d) and (%d,%d,%d,%d) collide",
				l, m1, n1, i1, j1, m2, n2, i2, j2)
		}
	}
}
