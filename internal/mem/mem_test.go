package mem

import (
	"testing"
	"testing/quick"
)

func TestLocalStoreReadWrite(t *testing.T) {
	s := NewLocalStore(128)
	s.Write(5, 42)
	if got := s.Read(5); got != 42 {
		t.Errorf("Read(5) = %d, want 42", got)
	}
	if s.Reads() != 1 || s.Writes() != 1 {
		t.Errorf("counters = %d/%d, want 1/1", s.Reads(), s.Writes())
	}
	s.ResetCounters()
	if s.Reads() != 0 || s.Writes() != 0 {
		t.Error("ResetCounters did not zero counters")
	}
	if got := s.Read(5); got != 42 {
		t.Error("ResetCounters cleared contents")
	}
}

func TestLocalStoreBounds(t *testing.T) {
	s := NewLocalStore(4)
	defer func() {
		if recover() == nil {
			t.Error("out-of-bounds read did not panic")
		}
	}()
	s.Read(4)
}

func TestAddrGenSimpleWindow(t *testing.T) {
	// One window of 4, single pass: INIT then 3 INCRs.
	g := &AddrGen{Base: 10, Step: 1, Window: 4, Replay: 1, Jump: 0, Rows: 1}
	g.Reset()
	var addrs []int
	var states []FSMState
	for !g.Done() {
		a, s := g.Next()
		addrs = append(addrs, a)
		states = append(states, s)
	}
	wantA := []int{10, 11, 12, 13}
	wantS := []FSMState{Init, Incr, Incr, Incr}
	for i := range wantA {
		if addrs[i] != wantA[i] || states[i] != wantS[i] {
			t.Fatalf("step %d = (%d,%v), want (%d,%v)", i, addrs[i], states[i], wantA[i], wantS[i])
		}
	}
}

func TestAddrGenHoldReplaysWindow(t *testing.T) {
	// Kernel local store of C1 Group(0,0) (paper Fig. 10): a window of
	// T_j=4 synapses replayed for T_c=2 output neurons, then jumping to
	// the next kernel row.
	g := &AddrGen{Base: 0, Step: 1, Window: 4, Replay: 2, Jump: 4, Rows: 2}
	want := []int{
		0, 1, 2, 3, // window row 0, output 0
		0, 1, 2, 3, // HOLD: replay for output 1
		4, 5, 6, 7, // JUMP to row 1
		4, 5, 6, 7,
	}
	got := g.Sequence()
	if len(got) != len(want) {
		t.Fatalf("sequence length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("addr[%d] = %d, want %d (full: %v)", i, got[i], want[i], got)
		}
	}
}

func TestAddrGenStates(t *testing.T) {
	g := &AddrGen{Base: 0, Step: 2, Window: 2, Replay: 2, Jump: 10, Rows: 2}
	g.Reset()
	var states []FSMState
	for !g.Done() {
		_, s := g.Next()
		states = append(states, s)
	}
	want := []FSMState{Init, Incr, Hold, Incr, Jump, Incr, Hold, Incr}
	for i := range want {
		if states[i] != want[i] {
			t.Fatalf("state[%d] = %v, want %v (full: %v)", i, states[i], want[i], states)
		}
	}
}

func TestAddrGenTotalLength(t *testing.T) {
	f := func(window, replay, rows uint8) bool {
		w := int(window%6) + 1
		rp := int(replay%4) + 1
		rw := int(rows%5) + 1
		g := &AddrGen{Base: 0, Step: 1, Window: w, Replay: rp, Jump: w, Rows: rw}
		return len(g.Sequence()) == w*rp*rw
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddrGenNextAfterDonePanics(t *testing.T) {
	g := &AddrGen{Base: 0, Step: 1, Window: 1, Replay: 1, Jump: 0, Rows: 1}
	g.Reset()
	g.Next()
	defer func() {
		if recover() == nil {
			t.Error("Next after Done did not panic")
		}
	}()
	g.Next()
}

func TestBankedBufferGeometry(t *testing.T) {
	// Kernel buffer of the 16×16 FlexFlow: 32 KB = 16384 words split
	// into Tm=2 groups × Tr=1 subs × Tc=2 banks.
	b := NewBankedBuffer(2, 1, 2, 16384)
	if b.NumBanks() != 4 || b.TotalWords() != 16384 {
		t.Fatalf("banks=%d words=%d", b.NumBanks(), b.TotalWords())
	}
	b.Bank(1, 0, 1).Write(3, 9)
	if got := b.Bank(1, 0, 1).Read(3); got != 9 {
		t.Errorf("bank read = %d, want 9", got)
	}
	if b.Reads() != 1 || b.Writes() != 1 {
		t.Errorf("aggregate counters = %d/%d", b.Reads(), b.Writes())
	}
}

func TestBankedBufferRejectsUneven(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("uneven split did not panic")
		}
	}()
	NewBankedBuffer(3, 1, 1, 100)
}

func TestBankParallelReadsAreIndependent(t *testing.T) {
	// IADP's point: one read per bank per cycle, all banks in parallel.
	b := NewBankedBuffer(2, 2, 2, 64)
	for g := 0; g < 2; g++ {
		for s := 0; s < 2; s++ {
			for l := 0; l < 2; l++ {
				b.Bank(g, s, l).Write(0, 1)
			}
		}
	}
	// After one "cycle" of full-width reads, every bank has exactly one read.
	for g := 0; g < 2; g++ {
		for s := 0; s < 2; s++ {
			for l := 0; l < 2; l++ {
				b.Bank(g, s, l).Read(0)
			}
		}
	}
	for g := 0; g < 2; g++ {
		for s := 0; s < 2; s++ {
			for l := 0; l < 2; l++ {
				if b.Bank(g, s, l).Reads() != 1 {
					t.Fatalf("bank (%d,%d,%d) reads = %d, want 1", g, s, l, b.Bank(g, s, l).Reads())
				}
			}
		}
	}
}

func TestFIFOOrder(t *testing.T) {
	f := NewFIFO(3)
	f.Push(1)
	f.Push(2)
	f.Push(3)
	if f.Pop() != 1 || f.Pop() != 2 || f.Pop() != 3 {
		t.Error("FIFO order violated")
	}
	if f.Pushes() != 3 || f.Pops() != 3 {
		t.Errorf("counters = %d/%d", f.Pushes(), f.Pops())
	}
}

func TestFIFOWraps(t *testing.T) {
	f := NewFIFO(2)
	f.Push(1)
	f.Push(2)
	f.Pop()
	f.Push(3)
	if f.Pop() != 2 || f.Pop() != 3 {
		t.Error("FIFO wrap-around broken")
	}
}

func TestFIFOOverflowPanics(t *testing.T) {
	f := NewFIFO(1)
	f.Push(1)
	defer func() {
		if recover() == nil {
			t.Error("overflow did not panic")
		}
	}()
	f.Push(2)
}

func TestFIFOUnderflowPanics(t *testing.T) {
	f := NewFIFO(1)
	defer func() {
		if recover() == nil {
			t.Error("underflow did not panic")
		}
	}()
	f.Pop()
}

func TestDRAMCounters(t *testing.T) {
	var d DRAM
	d.ReadBlock(100)
	d.WriteBlock(25)
	if d.Reads() != 100 || d.Writes() != 25 || d.Accesses() != 125 {
		t.Errorf("DRAM counters = %d/%d/%d", d.Reads(), d.Writes(), d.Accesses())
	}
}

func TestFSMStateString(t *testing.T) {
	names := map[FSMState]string{Init: "M0/INIT", Incr: "M1/INCR", Hold: "M2/HOLD", Jump: "M3/JUMP"}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%v.String() = %q, want %q", int(s), s.String(), want)
		}
	}
}
