package mem

import (
	"errors"
	"testing"
	"testing/quick"

	"flexflow/internal/fixed"
)

func TestLocalStoreReadWrite(t *testing.T) {
	s := NewLocalStore(128)
	s.Write(5, 42)
	if got := s.Read(5); got != 42 {
		t.Errorf("Read(5) = %d, want 42", got)
	}
	if s.Reads() != 1 || s.Writes() != 1 {
		t.Errorf("counters = %d/%d, want 1/1", s.Reads(), s.Writes())
	}
	s.ResetCounters()
	if s.Reads() != 0 || s.Writes() != 0 {
		t.Error("ResetCounters did not zero counters")
	}
	if got := s.Read(5); got != 42 {
		t.Error("ResetCounters cleared contents")
	}
}

func TestLocalStoreBounds(t *testing.T) {
	s := NewLocalStore(4)
	defer func() {
		if recover() == nil {
			t.Error("out-of-bounds read did not panic")
		}
	}()
	s.Read(4)
}

func TestAddrGenSimpleWindow(t *testing.T) {
	// One window of 4, single pass: INIT then 3 INCRs.
	g := &AddrGen{Base: 10, Step: 1, Window: 4, Replay: 1, Jump: 0, Rows: 1}
	g.Reset()
	var addrs []int
	var states []FSMState
	for !g.Done() {
		a, s := g.Next()
		addrs = append(addrs, a)
		states = append(states, s)
	}
	wantA := []int{10, 11, 12, 13}
	wantS := []FSMState{Init, Incr, Incr, Incr}
	for i := range wantA {
		if addrs[i] != wantA[i] || states[i] != wantS[i] {
			t.Fatalf("step %d = (%d,%v), want (%d,%v)", i, addrs[i], states[i], wantA[i], wantS[i])
		}
	}
}

func TestAddrGenHoldReplaysWindow(t *testing.T) {
	// Kernel local store of C1 Group(0,0) (paper Fig. 10): a window of
	// T_j=4 synapses replayed for T_c=2 output neurons, then jumping to
	// the next kernel row.
	g := &AddrGen{Base: 0, Step: 1, Window: 4, Replay: 2, Jump: 4, Rows: 2}
	want := []int{
		0, 1, 2, 3, // window row 0, output 0
		0, 1, 2, 3, // HOLD: replay for output 1
		4, 5, 6, 7, // JUMP to row 1
		4, 5, 6, 7,
	}
	got := g.Sequence()
	if len(got) != len(want) {
		t.Fatalf("sequence length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("addr[%d] = %d, want %d (full: %v)", i, got[i], want[i], got)
		}
	}
}

func TestAddrGenStates(t *testing.T) {
	g := &AddrGen{Base: 0, Step: 2, Window: 2, Replay: 2, Jump: 10, Rows: 2}
	g.Reset()
	var states []FSMState
	for !g.Done() {
		_, s := g.Next()
		states = append(states, s)
	}
	want := []FSMState{Init, Incr, Hold, Incr, Jump, Incr, Hold, Incr}
	for i := range want {
		if states[i] != want[i] {
			t.Fatalf("state[%d] = %v, want %v (full: %v)", i, states[i], want[i], states)
		}
	}
}

func TestAddrGenTotalLength(t *testing.T) {
	f := func(window, replay, rows uint8) bool {
		w := int(window%6) + 1
		rp := int(replay%4) + 1
		rw := int(rows%5) + 1
		g := &AddrGen{Base: 0, Step: 1, Window: w, Replay: rp, Jump: w, Rows: rw}
		return len(g.Sequence()) == w*rp*rw
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddrGenNextAfterDonePanics(t *testing.T) {
	g := &AddrGen{Base: 0, Step: 1, Window: 1, Replay: 1, Jump: 0, Rows: 1}
	g.Reset()
	g.Next()
	defer func() {
		if recover() == nil {
			t.Error("Next after Done did not panic")
		}
	}()
	g.Next()
}

func TestBankedBufferGeometry(t *testing.T) {
	// Kernel buffer of the 16×16 FlexFlow: 32 KB = 16384 words split
	// into Tm=2 groups × Tr=1 subs × Tc=2 banks.
	b := NewBankedBuffer(2, 1, 2, 16384)
	if b.NumBanks() != 4 || b.TotalWords() != 16384 {
		t.Fatalf("banks=%d words=%d", b.NumBanks(), b.TotalWords())
	}
	b.Bank(1, 0, 1).Write(3, 9)
	if got := b.Bank(1, 0, 1).Read(3); got != 9 {
		t.Errorf("bank read = %d, want 9", got)
	}
	if b.Reads() != 1 || b.Writes() != 1 {
		t.Errorf("aggregate counters = %d/%d", b.Reads(), b.Writes())
	}
}

func TestBankedBufferRejectsUneven(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("uneven split did not panic")
		}
	}()
	NewBankedBuffer(3, 1, 1, 100)
}

func TestBankParallelReadsAreIndependent(t *testing.T) {
	// IADP's point: one read per bank per cycle, all banks in parallel.
	b := NewBankedBuffer(2, 2, 2, 64)
	for g := 0; g < 2; g++ {
		for s := 0; s < 2; s++ {
			for l := 0; l < 2; l++ {
				b.Bank(g, s, l).Write(0, 1)
			}
		}
	}
	// After one "cycle" of full-width reads, every bank has exactly one read.
	for g := 0; g < 2; g++ {
		for s := 0; s < 2; s++ {
			for l := 0; l < 2; l++ {
				b.Bank(g, s, l).Read(0)
			}
		}
	}
	for g := 0; g < 2; g++ {
		for s := 0; s < 2; s++ {
			for l := 0; l < 2; l++ {
				if b.Bank(g, s, l).Reads() != 1 {
					t.Fatalf("bank (%d,%d,%d) reads = %d, want 1", g, s, l, b.Bank(g, s, l).Reads())
				}
			}
		}
	}
}

// mustPush and mustPop are test helpers for the error-returning FIFO
// accessors in flows where over/underflow would be a test bug.
func mustPush(t *testing.T, f *FIFO, v fixed.Word) {
	t.Helper()
	if err := f.Push(v); err != nil {
		t.Fatalf("Push(%d): %v", v, err)
	}
}

func mustPop(t *testing.T, f *FIFO) fixed.Word {
	t.Helper()
	v, err := f.Pop()
	if err != nil {
		t.Fatalf("Pop: %v", err)
	}
	return v
}

func TestFIFOOrder(t *testing.T) {
	f := NewFIFO(3)
	mustPush(t, f, 1)
	mustPush(t, f, 2)
	mustPush(t, f, 3)
	if mustPop(t, f) != 1 || mustPop(t, f) != 2 || mustPop(t, f) != 3 {
		t.Error("FIFO order violated")
	}
	if f.Pushes() != 3 || f.Pops() != 3 {
		t.Errorf("counters = %d/%d", f.Pushes(), f.Pops())
	}
}

func TestFIFOWraps(t *testing.T) {
	f := NewFIFO(2)
	mustPush(t, f, 1)
	mustPush(t, f, 2)
	mustPop(t, f)
	mustPush(t, f, 3)
	if mustPop(t, f) != 2 || mustPop(t, f) != 3 {
		t.Error("FIFO wrap-around broken")
	}
}

func TestFIFOOverflowError(t *testing.T) {
	f := NewFIFO(1)
	mustPush(t, f, 1)
	if err := f.Push(2); !errors.Is(err, ErrFIFOOverflow) {
		t.Errorf("full push: err = %v, want ErrFIFOOverflow", err)
	}
	// The failed push must not disturb the queue.
	if f.Len() != 1 || mustPop(t, f) != 1 {
		t.Error("failed push corrupted the FIFO")
	}
}

func TestFIFOUnderflowError(t *testing.T) {
	f := NewFIFO(1)
	if _, err := f.Pop(); !errors.Is(err, ErrFIFOUnderflow) {
		t.Errorf("empty pop: err = %v, want ErrFIFOUnderflow", err)
	}
}

func TestLocalStoreReadHook(t *testing.T) {
	s := NewLocalStore(8)
	s.Write(3, 40)
	if got := s.Read(3); got != 40 {
		t.Fatalf("hookless read = %d, want 40", got)
	}
	var sawAddr int
	s.ReadHook = func(addr int, v fixed.Word) fixed.Word {
		sawAddr = addr
		return v ^ 1
	}
	if got := s.Read(3); got != 41 || sawAddr != 3 {
		t.Errorf("hooked read = %d (addr %d), want 41 at addr 3", got, sawAddr)
	}
	// The hook corrupts the read value only, never the stored word.
	s.ReadHook = nil
	if got := s.Read(3); got != 40 {
		t.Errorf("stored word corrupted by hook: %d", got)
	}
}

func TestBankReadHook(t *testing.T) {
	b := NewBank(4)
	b.Write(1, 7)
	b.ReadHook = func(addr int, v fixed.Word) fixed.Word { return v ^ (1 << 2) }
	if got := b.Read(1); got != 3 {
		t.Errorf("hooked bank read = %d, want 3", got)
	}
	b.ReadHook = nil
	if got := b.Read(1); got != 7 {
		t.Errorf("stored bank word corrupted by hook: %d", got)
	}
}

func TestDRAMCounters(t *testing.T) {
	var d DRAM
	d.ReadBlock(100)
	d.WriteBlock(25)
	if d.Reads() != 100 || d.Writes() != 25 || d.Accesses() != 125 {
		t.Errorf("DRAM counters = %d/%d/%d", d.Reads(), d.Writes(), d.Accesses())
	}
}

func TestFSMStateString(t *testing.T) {
	names := map[FSMState]string{Init: "M0/INIT", Incr: "M1/INCR", Hold: "M2/HOLD", Jump: "M3/JUMP"}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%v.String() = %q, want %q", int(s), s.String(), want)
		}
	}
}
