// Package mem models the storage hierarchy of the accelerators: per-PE
// local stores with the paper's four-state addressing FSM, the
// IADP-partitioned on-chip buffers, inter-PE FIFOs, and the external
// DRAM. Every component counts its accesses so the energy model and the
// data-reusability experiment (Fig. 17) can be driven from measured
// event counts.
package mem

import (
	"fmt"

	"flexflow/internal/fixed"
)

// LocalStore is a per-PE randomly addressable store (the paper's neuron
// local store and kernel local store, 256 B = 128 words each in the
// 16×16 configuration). Unlike the FIFOs of prior architectures it
// supports random reads, which is what enables RA/RS data reuse.
type LocalStore struct {
	data   []fixed.Word
	reads  int64
	writes int64

	// ReadHook, when non-nil, intercepts every read's value — the
	// fault-injection hook point (internal/fault wires bit flips in
	// here). Nil keeps the fault-free fast path.
	ReadHook func(addr int, v fixed.Word) fixed.Word
}

// NewLocalStore allocates a store of capacity words.
func NewLocalStore(capacity int) *LocalStore {
	if capacity <= 0 {
		panic("mem: local store capacity must be positive")
	}
	return &LocalStore{data: make([]fixed.Word, capacity)}
}

// Cap returns the store capacity in words.
func (s *LocalStore) Cap() int { return len(s.data) }

// Read returns the word at addr, counting the access.
func (s *LocalStore) Read(addr int) fixed.Word {
	if addr < 0 || addr >= len(s.data) {
		panic(fmt.Sprintf("mem: local store read at %d, cap %d", addr, len(s.data)))
	}
	s.reads++
	v := s.data[addr]
	if s.ReadHook != nil {
		v = s.ReadHook(addr, v)
	}
	return v
}

// Write stores v at addr, counting the access.
func (s *LocalStore) Write(addr int, v fixed.Word) {
	if addr < 0 || addr >= len(s.data) {
		panic(fmt.Sprintf("mem: local store write at %d, cap %d", addr, len(s.data)))
	}
	s.writes++
	s.data[addr] = v
}

// Reads and Writes return the access counters.
func (s *LocalStore) Reads() int64  { return s.reads }
func (s *LocalStore) Writes() int64 { return s.writes }

// ResetCounters zeroes the access counters (contents are kept).
func (s *LocalStore) ResetCounters() { s.reads, s.writes = 0, 0 }

// FSMState is the state of the local-store read-address FSM (Fig. 11).
type FSMState int

const (
	// Init (M0): a new computation starts; the address is reset to the
	// window base.
	Init FSMState = iota
	// Incr (M1): the address advances by Step within a computing window.
	Incr
	// Hold (M2): one computing window completed; the address holds so
	// the window can be replayed for the next output neuron.
	Hold
	// Jump (M3): one neuron row completed; the address jumps to the
	// next row base.
	Jump
)

// String names the FSM state with the paper's M0–M3 labels.
func (s FSMState) String() string {
	switch s {
	case Init:
		return "M0/INIT"
	case Incr:
		return "M1/INCR"
	case Hold:
		return "M2/HOLD"
	case Jump:
		return "M3/JUMP"
	default:
		return "?"
	}
}

// AddrGen is the four-state read-address generator that drives a local
// store (paper §4.4). Reading is regulated by four parameters: the
// window length (the paper's T_i boundary), the in-window Step, the
// row-to-row Jump, and the replay count (how many times each window is
// replayed before jumping — the HOLD behaviour that lets T_c output
// neurons reuse one kernel window).
type AddrGen struct {
	Base   int // first address of the sequence (M0 target)
	Step   int // address increment inside a window (M1)
	Window int // reads per window before M2/M3 is taken
	Replay int // times each window is replayed (M2 loops); ≥ 1
	Jump   int // increment applied to the window base at row end (M3)
	Rows   int // number of windows (neuron rows)

	state   FSMState
	addr    int
	winBase int
	inWin   int
	replays int
	row     int
	done    bool
}

// Reset arms the generator: the next call to Next performs M0/INIT.
func (g *AddrGen) Reset() {
	if g.Window <= 0 || g.Rows <= 0 {
		panic("mem: AddrGen needs positive Window and Rows")
	}
	if g.Replay < 1 {
		g.Replay = 1
	}
	g.state = Init
	g.addr = g.Base
	g.winBase = g.Base
	g.inWin = 0
	g.replays = 0
	g.row = 0
	g.done = false
}

// Done reports whether the whole sequence has been emitted.
func (g *AddrGen) Done() bool { return g.done }

// Next emits the next read address and the FSM state that produced it.
// The sequence is: for each of Rows windows, (Window addresses starting
// at the window base, stepping by Step) repeated Replay times, the
// window base advancing by Jump between rows. Calling Next after the
// sequence is exhausted panics.
func (g *AddrGen) Next() (int, FSMState) {
	if g.done {
		panic("mem: AddrGen.Next called after Done")
	}
	st := g.state
	a := g.addr
	// Advance.
	g.inWin++
	if g.inWin < g.Window {
		g.addr += g.Step
		g.state = Incr
		return a, st
	}
	// Window boundary.
	g.inWin = 0
	g.replays++
	if g.replays < g.Replay {
		// Replay the same window for the next output neuron.
		g.addr = g.winBase
		g.state = Hold
		return a, st
	}
	g.replays = 0
	g.row++
	if g.row < g.Rows {
		g.winBase += g.Jump
		g.addr = g.winBase
		g.state = Jump
		return a, st
	}
	g.done = true
	return a, st
}

// Sequence drains the generator into a slice of addresses (testing
// convenience).
func (g *AddrGen) Sequence() []int {
	g.Reset()
	var out []int
	for !g.Done() {
		a, _ := g.Next()
		out = append(out, a)
	}
	return out
}
