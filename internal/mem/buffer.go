package mem

import (
	"errors"
	"fmt"

	"flexflow/internal/fixed"
)

// Bank is one SRAM bank of an on-chip buffer. Reads and writes are
// counted per bank so bank-level parallelism (IADP, §4.5) can be
// checked by tests.
type Bank struct {
	data   []fixed.Word
	reads  int64
	writes int64

	// ReadHook, when non-nil, intercepts every read's value — the
	// fault-injection hook point for bit flips in banked SRAM reads.
	// Nil keeps the fault-free fast path.
	ReadHook func(addr int, v fixed.Word) fixed.Word
}

// NewBank allocates a bank of capacity words.
func NewBank(capacity int) *Bank {
	return &Bank{data: make([]fixed.Word, capacity)}
}

// Cap returns the bank capacity in words.
func (b *Bank) Cap() int { return len(b.data) }

// Read returns the word at addr.
func (b *Bank) Read(addr int) fixed.Word {
	if addr < 0 || addr >= len(b.data) {
		panic(fmt.Sprintf("mem: bank read at %d, cap %d", addr, len(b.data)))
	}
	b.reads++
	v := b.data[addr]
	if b.ReadHook != nil {
		v = b.ReadHook(addr, v)
	}
	return v
}

// Write stores v at addr.
func (b *Bank) Write(addr int, v fixed.Word) {
	if addr < 0 || addr >= len(b.data) {
		panic(fmt.Sprintf("mem: bank write at %d, cap %d", addr, len(b.data)))
	}
	b.writes++
	b.data[addr] = v
}

// Reads and Writes return the access counters.
func (b *Bank) Reads() int64  { return b.reads }
func (b *Bank) Writes() int64 { return b.writes }

// ResetCounters zeroes the access counters and clears any installed
// read hook, so a reused bank starts a run with clean accounting and a
// fault-free read port. Contents are left in place — a reuser must
// overwrite every word it will later read.
func (b *Bank) ResetCounters() {
	b.reads, b.writes = 0, 0
	b.ReadHook = nil
}

// BankedBuffer is an on-chip buffer divided into groups, sub-groups and
// banks following In-Advanced Data Placement (IADP, Fig. 12/13): the
// kernel buffer is partitioned T_m groups × T_r sub-groups × T_c banks;
// a neuron buffer is partitioned T_n groups × T_i sub-groups × T_j
// banks. One word per bank can be read each cycle, so a full
// distribution-layer line of Groups×Subs×BanksPerSub words is available
// per cycle without conflicts.
type BankedBuffer struct {
	Groups      int
	Subs        int
	BanksPerSub int
	banks       []*Bank
}

// NewBankedBuffer partitions totalWords of SRAM into groups × subs ×
// banksPerSub equal banks (totalWords must divide evenly).
func NewBankedBuffer(groups, subs, banksPerSub, totalWords int) *BankedBuffer {
	nb := groups * subs * banksPerSub
	if nb <= 0 {
		panic("mem: banked buffer needs positive geometry")
	}
	if totalWords%nb != 0 {
		panic(fmt.Sprintf("mem: %d words do not divide into %d banks", totalWords, nb))
	}
	b := &BankedBuffer{Groups: groups, Subs: subs, BanksPerSub: banksPerSub}
	per := totalWords / nb
	for i := 0; i < nb; i++ {
		b.banks = append(b.banks, NewBank(per))
	}
	return b
}

// Bank returns the bank of (group, sub, lane).
func (b *BankedBuffer) Bank(group, sub, lane int) *Bank {
	if group < 0 || group >= b.Groups || sub < 0 || sub >= b.Subs || lane < 0 || lane >= b.BanksPerSub {
		panic(fmt.Sprintf("mem: bank index (%d,%d,%d) out of %dx%dx%d", group, sub, lane, b.Groups, b.Subs, b.BanksPerSub))
	}
	return b.banks[(group*b.Subs+sub)*b.BanksPerSub+lane]
}

// NumBanks returns the total bank count.
func (b *BankedBuffer) NumBanks() int { return len(b.banks) }

// TotalWords returns the buffer capacity in words.
func (b *BankedBuffer) TotalWords() int { return len(b.banks) * b.banks[0].Cap() }

// Reads returns the summed read count of all banks.
func (b *BankedBuffer) Reads() int64 {
	var n int64
	for _, bk := range b.banks {
		n += bk.reads
	}
	return n
}

// ResetCounters resets every bank (counters zeroed, read hooks
// cleared); see Bank.ResetCounters for the contents caveat.
func (b *BankedBuffer) ResetCounters() {
	for _, bk := range b.banks {
		bk.ResetCounters()
	}
}

// Writes returns the summed write count of all banks.
func (b *BankedBuffer) Writes() int64 {
	var n int64
	for _, bk := range b.banks {
		n += bk.writes
	}
	return n
}

// ErrFIFOOverflow and ErrFIFOUnderflow are the typed full-push /
// empty-pop errors. FIFO capacities are caller-supplied (schedules
// size them from layer shapes), so a mis-sized queue must surface as
// an error the simulator can return, not a process crash.
var (
	ErrFIFOOverflow  = errors.New("mem: FIFO overflow")
	ErrFIFOUnderflow = errors.New("mem: FIFO underflow")
)

// FIFO is a fixed-capacity word queue: the inter-row pipeline buffer of
// the Systolic architecture and the neuron-reuse buffer of the
// 2D-Mapping PEs.
type FIFO struct {
	buf        []fixed.Word
	head, size int
	pushes     int64
	pops       int64
}

// NewFIFO allocates a FIFO of the given capacity.
func NewFIFO(capacity int) *FIFO {
	if capacity < 0 {
		panic("mem: negative FIFO capacity")
	}
	return &FIFO{buf: make([]fixed.Word, capacity)}
}

// Cap and Len return capacity and current occupancy.
func (f *FIFO) Cap() int { return len(f.buf) }
func (f *FIFO) Len() int { return f.size }

// Push enqueues v; a push into a full FIFO returns ErrFIFOOverflow
// (hardware FIFOs can't drop — a full push means the schedule that
// sized the queue was wrong).
func (f *FIFO) Push(v fixed.Word) error {
	if f.size == len(f.buf) {
		return fmt.Errorf("%w: capacity %d", ErrFIFOOverflow, len(f.buf))
	}
	f.buf[(f.head+f.size)%len(f.buf)] = v
	f.size++
	f.pushes++
	return nil
}

// Pop dequeues the oldest word; popping an empty FIFO returns
// ErrFIFOUnderflow.
func (f *FIFO) Pop() (fixed.Word, error) {
	if f.size == 0 {
		return 0, ErrFIFOUnderflow
	}
	v := f.buf[f.head]
	f.head = (f.head + 1) % len(f.buf)
	f.size--
	f.pops++
	return v, nil
}

// Pushes and Pops return the movement counters.
func (f *FIFO) Pushes() int64 { return f.pushes }
func (f *FIFO) Pops() int64   { return f.pops }

// DRAM models the external memory: word-granular reads/writes with
// access counting. Latency is not modelled per access — all four
// architectures in the paper stream from double-buffered on-chip SRAM,
// so DRAM appears only in the traffic/energy accounting (DRAM Acc/Op,
// Table 7).
type DRAM struct {
	reads  int64
	writes int64
}

// ReadBlock counts a read of n words.
func (d *DRAM) ReadBlock(n int64) { d.reads += n }

// WriteBlock counts a write of n words.
func (d *DRAM) WriteBlock(n int64) { d.writes += n }

// Reads and Writes return the counters.
func (d *DRAM) Reads() int64  { return d.reads }
func (d *DRAM) Writes() int64 { return d.writes }

// Accesses returns reads+writes.
func (d *DRAM) Accesses() int64 { return d.reads + d.writes }
