package mem

import "fmt"

// This file implements In-Advanced Data Placement (IADP, §4.5): the
// concrete word-to-bank mappings that let the distribution layer read
// a full line of operands — one word per bank — every cycle, with no
// bank conflicts.

// BankAddr locates one word inside a BankedBuffer.
type BankAddr struct {
	Group, Sub, Lane int // bank coordinates
	Offset           int // word offset within the bank
}

// KernelLayout is the kernel-buffer placement of Fig. 12: the buffer
// is divided into T_m groups, each group into T_r sub-groups of T_c
// banks. Kernel K^(m,n) is concentrated (row-major) in group m mod T_m;
// within a group, consecutive words round-robin across the group's
// T_r·T_c banks so any aligned run of T_r·T_c words is conflict-free.
type KernelLayout struct {
	Tm, Tr, Tc int // the factor triple partitioning the buffer
	N, K       int // layer shape (input maps, kernel edge)
}

// Place maps synapse K^(m,n)_(i,j) to its bank address.
func (l KernelLayout) Place(m, n, i, j int) BankAddr {
	if l.Tm <= 0 || l.Tr <= 0 || l.Tc <= 0 {
		panic("mem: KernelLayout with non-positive factors")
	}
	if n < 0 || n >= l.N || i < 0 || i >= l.K || j < 0 || j >= l.K || m < 0 {
		panic(fmt.Sprintf("mem: kernel word (%d,%d,%d,%d) outside layout", m, n, i, j))
	}
	group := m % l.Tm
	// Linear word index of this group's kernel stream: kernels stack by
	// their within-group ordinal (m / Tm), then by n, row-major in (i,j).
	w := ((m/l.Tm)*l.N+n)*l.K*l.K + i*l.K + j
	banks := l.Tr * l.Tc
	return BankAddr{
		Group:  group,
		Sub:    (w % banks) / l.Tc,
		Lane:   w % l.Tc,
		Offset: w / banks,
	}
}

// LineConflictFree reports whether the given addresses can be read in
// a single cycle: at most one word per (group, sub, lane) bank.
func LineConflictFree(addrs []BankAddr) bool {
	seen := make(map[[3]int]bool, len(addrs))
	for _, a := range addrs {
		key := [3]int{a.Group, a.Sub, a.Lane}
		if seen[key] {
			return false
		}
		seen[key] = true
	}
	return true
}

// NeuronLayout is the neuron-buffer placement of Fig. 13: T_n groups ×
// T_i sub-groups × T_j banks. Feature map n is concentrated in group
// n mod T_n, its neuron row r in sub-group r mod T_i, and columns
// round-robin over the sub-group's T_j banks — so the T_n·T_i·T_j
// operands of one distribution-layer line land in distinct banks.
type NeuronLayout struct {
	Tn, Ti, Tj int // the factor triple partitioning the buffer
	H, W       int // feature-map shape held by the buffer
}

// Place maps neuron I^(n)_(r,c) to its bank address.
func (l NeuronLayout) Place(n, r, c int) BankAddr {
	if l.Tn <= 0 || l.Ti <= 0 || l.Tj <= 0 {
		panic("mem: NeuronLayout with non-positive factors")
	}
	if n < 0 || r < 0 || r >= l.H || c < 0 || c >= l.W {
		panic(fmt.Sprintf("mem: neuron (%d,%d,%d) outside layout", n, r, c))
	}
	rowsPerSub := (l.H + l.Ti - 1) / l.Ti
	colsPerLane := (l.W + l.Tj - 1) / l.Tj
	return BankAddr{
		Group:  n % l.Tn,
		Sub:    r % l.Ti,
		Lane:   c % l.Tj,
		Offset: ((n/l.Tn)*rowsPerSub+r/l.Ti)*colsPerLane + c/l.Tj,
	}
}

// Line returns the bank addresses of one distribution-layer line: the
// T_n·T_i·T_j operands at lane offsets (tn, ti, tj) from an aligned
// origin (n0, r0, c0). When the origin is aligned (n0 ≡ 0 mod T_n,
// r0 ≡ 0 mod T_i, c0 ≡ 0 mod T_j) the line is conflict-free by
// construction; Line lets callers and tests verify exactly that.
func (l NeuronLayout) Line(n0, r0, c0 int) []BankAddr {
	var out []BankAddr
	for tn := 0; tn < l.Tn; tn++ {
		for ti := 0; ti < l.Ti; ti++ {
			for tj := 0; tj < l.Tj; tj++ {
				n, r, c := n0+tn, r0+ti, c0+tj
				if r >= l.H || c >= l.W {
					continue
				}
				out = append(out, l.Place(n, r, c))
			}
		}
	}
	return out
}
