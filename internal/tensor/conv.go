package tensor

import "flexflow/internal/fixed"

// Conv computes the reference (golden) convolution of the paper's
// Figure 3 pseudo-code: for every output feature map m and output
// location (r,c),
//
//	O^(m)_(r,c) = Σ_n Σ_i Σ_j K^(m,n)_(i,j) · I^(n)_(r+i, c+j)
//
// with unit stride and no padding ("valid" convolution). The input must
// have in.N == k.N feature maps; the output has k.M maps of size
// (in.H-K+1) × (in.W-K+1).
//
// All accumulation is done at 32-bit precision and rounded once at the
// end, exactly as the accelerator datapaths do, so simulator outputs can
// be compared bit-exactly against this function.
func Conv(in *Map3, k *Kernel4) *Map3 { return ConvStride(in, k, 1) }

// ConvStride is Conv with a convolution stride: output (r,c) reads the
// input window anchored at (r·stride, c·stride). Stride 1 is the
// paper's setting; larger strides support real strided layers such as
// AlexNet's C1.
func ConvStride(in *Map3, k *Kernel4, stride int) *Map3 {
	if in.N != k.N {
		panic("tensor: Conv input map count does not match kernel set")
	}
	if stride < 1 {
		panic("tensor: Conv stride must be ≥ 1")
	}
	outH := (in.H-k.K)/stride + 1
	outW := (in.W-k.K)/stride + 1
	if outH <= 0 || outW <= 0 {
		panic("tensor: Conv kernel larger than input")
	}
	out := NewMap3(k.M, outH, outW)
	for m := 0; m < k.M; m++ {
		for r := 0; r < outH; r++ {
			for c := 0; c < outW; c++ {
				var acc fixed.Acc
				for n := 0; n < k.N; n++ {
					for i := 0; i < k.K; i++ {
						for j := 0; j < k.K; j++ {
							acc = fixed.MAC(acc, in.At(n, r*stride+i, c*stride+j), k.At(m, n, i, j))
						}
					}
				}
				out.Set(m, r, c, acc.Round())
			}
		}
	}
	return out
}

// PoolKind selects the subsampling operation of a pooling layer.
type PoolKind int

const (
	// MaxPool takes the maximum of each P×P window.
	MaxPool PoolKind = iota
	// AvgPool takes the rounded average of each P×P window.
	AvgPool
)

// String returns the conventional name of the pooling kind.
func (p PoolKind) String() string {
	switch p {
	case MaxPool:
		return "max"
	case AvgPool:
		return "avg"
	default:
		return "unknown"
	}
}

// Pool computes reference non-overlapping P×P pooling with stride P.
// Trailing rows/columns that do not fill a complete window are dropped,
// which matches the truncating behaviour of the 1-D pooling unit.
func Pool(in *Map3, p int, kind PoolKind) *Map3 {
	if p <= 0 {
		panic("tensor: Pool window must be positive")
	}
	outH := in.H / p
	outW := in.W / p
	out := NewMap3(in.N, outH, outW)
	inv := fixed.FromFloat(1.0 / float64(p*p))
	for n := 0; n < in.N; n++ {
		for r := 0; r < outH; r++ {
			for c := 0; c < outW; c++ {
				switch kind {
				case MaxPool:
					best := in.At(n, r*p, c*p)
					for i := 0; i < p; i++ {
						for j := 0; j < p; j++ {
							if v := in.At(n, r*p+i, c*p+j); v > best {
								best = v
							}
						}
					}
					out.Set(n, r, c, best)
				case AvgPool:
					var sum fixed.Acc
					for i := 0; i < p; i++ {
						for j := 0; j < p; j++ {
							sum = fixed.AddAcc(sum, in.At(n, r*p+i, c*p+j).Extend())
						}
					}
					out.Set(n, r, c, fixed.Mul(sum.Round(), inv))
				}
			}
		}
	}
	return out
}

// FullyConnected computes a reference classifier layer: out[m] =
// Σ_x w[m][x] · in[x], where in is the flattened input stack. Weights
// are indexed row-major as w[m*len(in)+x].
func FullyConnected(in *Map3, w []fixed.Word, outputs int) []fixed.Word {
	total := in.Words()
	if len(w) != total*outputs {
		panic("tensor: FullyConnected weight count mismatch")
	}
	flat := make([]fixed.Word, 0, total)
	for n := 0; n < in.N; n++ {
		flat = append(flat, in.Maps[n].Data...)
	}
	out := make([]fixed.Word, outputs)
	for m := 0; m < outputs; m++ {
		var acc fixed.Acc
		for x, v := range flat {
			acc = fixed.MAC(acc, v, w[m*total+x])
		}
		out[m] = acc.Round()
	}
	return out
}

// ReLU applies the rectifier max(0, x) in place and returns the stack.
// In the FlexFlow engine activations ride the lightweight ALU path of
// the pooling unit, after the convolution array and before write-back.
func ReLU(in *Map3) *Map3 {
	for n := 0; n < in.N; n++ {
		for i, v := range in.Maps[n].Data {
			if v < 0 {
				in.Maps[n].Data[i] = 0
			}
		}
	}
	return in
}
