// Package tensor provides the 2-D/3-D fixed-point tensors that flow
// between layers, plus the golden (reference) implementations of
// convolution and pooling that every accelerator simulator is validated
// against.
//
// Feature maps are stored as Map3 values: a stack of N two-dimensional
// feature maps, matching the paper's notation I^(n)_(r,c). Kernel sets
// are stored as Kernel4 values indexed K^(m,n)_(i,j).
package tensor

import (
	"fmt"

	"flexflow/internal/fixed"
)

// Map2 is a single 2-D feature map of H×W neurons, stored row-major.
type Map2 struct {
	H, W int
	Data []fixed.Word
}

// NewMap2 allocates an H×W feature map initialized to zero.
func NewMap2(h, w int) *Map2 {
	if h < 0 || w < 0 {
		panic(fmt.Sprintf("tensor: invalid map size %dx%d", h, w))
	}
	return &Map2{H: h, W: w, Data: make([]fixed.Word, h*w)}
}

// At returns the neuron at row r, column c.
func (m *Map2) At(r, c int) fixed.Word { return m.Data[r*m.W+c] }

// Set writes the neuron at row r, column c.
func (m *Map2) Set(r, c int, v fixed.Word) { m.Data[r*m.W+c] = v }

// Clone returns a deep copy of the map.
func (m *Map2) Clone() *Map2 {
	out := NewMap2(m.H, m.W)
	copy(out.Data, m.Data)
	return out
}

// Equal reports whether two maps have identical shape and contents.
func (m *Map2) Equal(o *Map2) bool {
	if m.H != o.H || m.W != o.W {
		return false
	}
	for i, v := range m.Data {
		if o.Data[i] != v {
			return false
		}
	}
	return true
}

// Map3 is a stack of N feature maps of identical shape: the input or
// output of one CNN layer.
type Map3 struct {
	N, H, W int
	Maps    []*Map2
}

// NewMap3 allocates N zeroed H×W feature maps.
func NewMap3(n, h, w int) *Map3 {
	t := &Map3{N: n, H: h, W: w, Maps: make([]*Map2, n)}
	for i := range t.Maps {
		t.Maps[i] = NewMap2(h, w)
	}
	return t
}

// At returns neuron (r,c) of feature map n.
func (t *Map3) At(n, r, c int) fixed.Word { return t.Maps[n].At(r, c) }

// Set writes neuron (r,c) of feature map n.
func (t *Map3) Set(n, r, c int, v fixed.Word) { t.Maps[n].Set(r, c, v) }

// Clone returns a deep copy.
func (t *Map3) Clone() *Map3 {
	out := &Map3{N: t.N, H: t.H, W: t.W, Maps: make([]*Map2, t.N)}
	for i, m := range t.Maps {
		out.Maps[i] = m.Clone()
	}
	return out
}

// Equal reports whether two stacks have identical shape and contents.
func (t *Map3) Equal(o *Map3) bool {
	if t.N != o.N || t.H != o.H || t.W != o.W {
		return false
	}
	for i, m := range t.Maps {
		if !m.Equal(o.Maps[i]) {
			return false
		}
	}
	return true
}

// Words returns the total number of 16-bit words held by the stack.
func (t *Map3) Words() int { return t.N * t.H * t.W }

// Kernel4 is a full CONV-layer kernel set: M×N kernels of K×K synapses,
// indexed K^(m,n)_(i,j) as in the paper.
type Kernel4 struct {
	M, N, K int
	Data    []fixed.Word // [m][n][i][j] row-major
}

// NewKernel4 allocates a zeroed kernel set.
func NewKernel4(m, n, k int) *Kernel4 {
	return &Kernel4{M: m, N: n, K: k, Data: make([]fixed.Word, m*n*k*k)}
}

// At returns synapse (i,j) of kernel (m,n).
func (k *Kernel4) At(m, n, i, j int) fixed.Word {
	return k.Data[((m*k.N+n)*k.K+i)*k.K+j]
}

// Set writes synapse (i,j) of kernel (m,n).
func (k *Kernel4) Set(m, n, i, j int, v fixed.Word) {
	k.Data[((m*k.N+n)*k.K+i)*k.K+j] = v
}

// Words returns the total number of 16-bit synapse words.
func (k *Kernel4) Words() int { return len(k.Data) }

// Clone returns a deep copy of the kernel set.
func (k *Kernel4) Clone() *Kernel4 {
	c := NewKernel4(k.M, k.N, k.K)
	copy(c.Data, k.Data)
	return c
}

// FillPattern fills a Map3 with a deterministic pseudo-random pattern
// seeded by seed. Values are kept small (|v| < 2.0) so that deep MAC
// chains stay far from the accumulator saturation bounds and the golden
// and simulated datapaths agree bit-exactly.
func (t *Map3) FillPattern(seed uint64) {
	s := seed*2862933555777941757 + 3037000493
	for n := 0; n < t.N; n++ {
		for i := range t.Maps[n].Data {
			s = s*6364136223846793005 + 1442695040888963407
			// 10-bit signed fraction: range (-2.0, 2.0) in Q7.8.
			t.Maps[n].Data[i] = fixed.Word(int16(s>>48) >> 6) // [-512,511]
		}
	}
}

// FillPattern fills a Kernel4 with a deterministic pattern (see
// Map3.FillPattern).
func (k *Kernel4) FillPattern(seed uint64) {
	s := seed*2862933555777941757 + 5023861921
	for i := range k.Data {
		s = s*6364136223846793005 + 1442695040888963407
		k.Data[i] = fixed.Word(int16(s>>48) >> 6)
	}
}
