package tensor

import (
	"math/rand"
	"testing"
	"testing/quick"

	"flexflow/internal/fixed"
)

func TestMap2SetAt(t *testing.T) {
	m := NewMap2(3, 4)
	m.Set(2, 3, 42)
	if got := m.At(2, 3); got != 42 {
		t.Errorf("At(2,3) = %d, want 42", got)
	}
	if got := m.At(0, 0); got != 0 {
		t.Errorf("At(0,0) = %d, want 0", got)
	}
}

func TestMap3CloneIsDeep(t *testing.T) {
	a := NewMap3(2, 2, 2)
	a.Set(1, 1, 1, 7)
	b := a.Clone()
	b.Set(1, 1, 1, 9)
	if a.At(1, 1, 1) != 7 {
		t.Error("Clone shares storage with original")
	}
	if !a.Equal(a.Clone()) {
		t.Error("Clone not Equal to original")
	}
}

func TestKernel4Indexing(t *testing.T) {
	k := NewKernel4(2, 3, 4)
	k.Set(1, 2, 3, 0, 5)
	if got := k.At(1, 2, 3, 0); got != 5 {
		t.Errorf("At = %d, want 5", got)
	}
	// All other cells untouched.
	count := 0
	for _, v := range k.Data {
		if v != 0 {
			count++
		}
	}
	if count != 1 {
		t.Errorf("Set wrote %d cells, want 1", count)
	}
}

func TestFillPatternDeterministic(t *testing.T) {
	a := NewMap3(2, 5, 5)
	b := NewMap3(2, 5, 5)
	a.FillPattern(1)
	b.FillPattern(1)
	if !a.Equal(b) {
		t.Error("FillPattern not deterministic")
	}
	b.FillPattern(2)
	if a.Equal(b) {
		t.Error("FillPattern ignores seed")
	}
}

func TestFillPatternBounded(t *testing.T) {
	a := NewMap3(1, 16, 16)
	a.FillPattern(3)
	for _, v := range a.Maps[0].Data {
		if v < -512 || v > 511 {
			t.Fatalf("FillPattern value %d out of bounds", v)
		}
	}
	// And not all zero.
	nonzero := false
	for _, v := range a.Maps[0].Data {
		if v != 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Error("FillPattern produced all zeros")
	}
}

func TestConvIdentityKernel(t *testing.T) {
	in := NewMap3(1, 4, 4)
	in.FillPattern(7)
	k := NewKernel4(1, 1, 1)
	k.Set(0, 0, 0, 0, fixed.One)
	out := Conv(in, k)
	if !out.Equal(in) {
		t.Error("1x1 identity kernel should reproduce input")
	}
}

func TestConvShapes(t *testing.T) {
	in := NewMap3(3, 10, 10)
	k := NewKernel4(5, 3, 3)
	out := Conv(in, k)
	if out.N != 5 || out.H != 8 || out.W != 8 {
		t.Errorf("Conv output shape = %dx%dx%d, want 5x8x8", out.N, out.H, out.W)
	}
}

func TestConvKnownValue(t *testing.T) {
	// 2x2 input, 2x2 kernel of ones => single output = sum of inputs.
	in := NewMap3(1, 2, 2)
	in.Set(0, 0, 0, fixed.FromFloat(1))
	in.Set(0, 0, 1, fixed.FromFloat(2))
	in.Set(0, 1, 0, fixed.FromFloat(3))
	in.Set(0, 1, 1, fixed.FromFloat(4))
	k := NewKernel4(1, 1, 2)
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			k.Set(0, 0, i, j, fixed.One)
		}
	}
	out := Conv(in, k)
	if got := out.At(0, 0, 0); got != fixed.FromFloat(10) {
		t.Errorf("Conv sum = %v, want 10", got.Float())
	}
}

func TestConvLinearInKernel(t *testing.T) {
	// Conv(in, k1+k2) == Conv(in,k1) + Conv(in,k2) for values far from
	// saturation.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(2)
		m := 1 + rng.Intn(2)
		kk := 1 + rng.Intn(3)
		sz := kk + rng.Intn(4)
		in := NewMap3(n, sz, sz)
		in.FillPattern(uint64(trial))
		k1 := NewKernel4(m, n, kk)
		k2 := NewKernel4(m, n, kk)
		k1.FillPattern(uint64(trial * 2))
		k2.FillPattern(uint64(trial*2 + 1))
		sum := NewKernel4(m, n, kk)
		for i := range sum.Data {
			sum.Data[i] = fixed.Add(k1.Data[i], k2.Data[i])
		}
		o1 := Conv(in, k1)
		o2 := Conv(in, k2)
		os := Conv(in, sum)
		for mi := 0; mi < m; mi++ {
			for r := 0; r < os.H; r++ {
				for c := 0; c < os.W; c++ {
					got := os.At(mi, r, c).Float()
					want := o1.At(mi, r, c).Float() + o2.At(mi, r, c).Float()
					if diff := got - want; diff > 0.02 || diff < -0.02 {
						t.Fatalf("linearity violated at (%d,%d,%d): %v vs %v", mi, r, c, got, want)
					}
				}
			}
		}
	}
}

func TestMaxPool(t *testing.T) {
	in := NewMap3(1, 4, 4)
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			in.Set(0, r, c, fixed.Word(r*4+c))
		}
	}
	out := Pool(in, 2, MaxPool)
	if out.H != 2 || out.W != 2 {
		t.Fatalf("pool shape = %dx%d", out.H, out.W)
	}
	if got := out.At(0, 0, 0); got != 5 {
		t.Errorf("max of top-left window = %d, want 5", got)
	}
	if got := out.At(0, 1, 1); got != 15 {
		t.Errorf("max of bottom-right window = %d, want 15", got)
	}
}

func TestAvgPool(t *testing.T) {
	in := NewMap3(1, 2, 2)
	in.Set(0, 0, 0, fixed.FromFloat(1))
	in.Set(0, 0, 1, fixed.FromFloat(2))
	in.Set(0, 1, 0, fixed.FromFloat(3))
	in.Set(0, 1, 1, fixed.FromFloat(4))
	out := Pool(in, 2, AvgPool)
	if got := out.At(0, 0, 0).Float(); got < 2.49 || got > 2.51 {
		t.Errorf("avg = %v, want 2.5", got)
	}
}

func TestPoolDropsPartialWindows(t *testing.T) {
	in := NewMap3(1, 5, 5)
	out := Pool(in, 2, MaxPool)
	if out.H != 2 || out.W != 2 {
		t.Errorf("pool of 5x5 by 2 = %dx%d, want 2x2", out.H, out.W)
	}
}

func TestPoolMonotone(t *testing.T) {
	// Max-pooling a pointwise-larger stack yields pointwise-larger output.
	f := func(seed uint64) bool {
		a := NewMap3(1, 6, 6)
		a.FillPattern(seed)
		b := a.Clone()
		for i := range b.Maps[0].Data {
			b.Maps[0].Data[i] = fixed.Add(b.Maps[0].Data[i], 10)
		}
		pa := Pool(a, 2, MaxPool)
		pb := Pool(b, 2, MaxPool)
		for i := range pa.Maps[0].Data {
			if pb.Maps[0].Data[i] < pa.Maps[0].Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestFullyConnected(t *testing.T) {
	in := NewMap3(1, 1, 3)
	in.Set(0, 0, 0, fixed.FromFloat(1))
	in.Set(0, 0, 1, fixed.FromFloat(2))
	in.Set(0, 0, 2, fixed.FromFloat(3))
	w := []fixed.Word{
		fixed.One, fixed.One, fixed.One, // output 0: sum = 6
		fixed.One, 0, -fixed.One, // output 1: 1-3 = -2
	}
	out := FullyConnected(in, w, 2)
	if out[0] != fixed.FromFloat(6) || out[1] != fixed.FromFloat(-2) {
		t.Errorf("FC = %v,%v, want 6,-2", out[0].Float(), out[1].Float())
	}
}

func TestPoolKindString(t *testing.T) {
	if MaxPool.String() != "max" || AvgPool.String() != "avg" {
		t.Error("PoolKind.String mismatch")
	}
}

func TestReLU(t *testing.T) {
	in := NewMap3(1, 2, 2)
	in.Set(0, 0, 0, -5)
	in.Set(0, 0, 1, 7)
	in.Set(0, 1, 0, 0)
	in.Set(0, 1, 1, -1)
	out := ReLU(in)
	if out.At(0, 0, 0) != 0 || out.At(0, 0, 1) != 7 || out.At(0, 1, 1) != 0 {
		t.Errorf("ReLU wrong: %v %v %v", out.At(0, 0, 0), out.At(0, 0, 1), out.At(0, 1, 1))
	}
	// In-place: the same storage is returned.
	if out != in {
		t.Error("ReLU should operate in place")
	}
}
