package metrics

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := NewTable("Title", "A", "Bee")
	tb.Add("x", "1")
	tb.Add("longer", "2")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "Title") {
		t.Errorf("missing title: %q", lines[0])
	}
	if !strings.Contains(lines[1], "A") || !strings.Contains(lines[1], "Bee") {
		t.Errorf("missing header: %q", lines[1])
	}
	// Columns align: "1" and "2" start at the same offset.
	if strings.Index(lines[3], "1") != strings.Index(lines[4], "2") {
		t.Errorf("columns misaligned:\n%s", out)
	}
}

func TestAddF(t *testing.T) {
	tb := NewTable("", "x", "y")
	tb.AddF("name", 0.12345)
	if got := tb.Rows[0][1]; got != "0.123" {
		t.Errorf("float cell = %q, want 0.123", got)
	}
	tb.AddF(42, "s")
	if tb.Rows[1][0] != "42" {
		t.Errorf("int cell = %q", tb.Rows[1][0])
	}
}

func TestBar(t *testing.T) {
	s := Bar("x", 5, 10, 10)
	if !strings.Contains(s, "#####") || strings.Contains(s, "######") {
		t.Errorf("bar = %q, want exactly 5 hashes", s)
	}
	// Degenerate inputs must not panic or overflow.
	if s := Bar("x", 20, 10, 10); !strings.Contains(s, strings.Repeat("#", 10)) {
		t.Errorf("over-max bar = %q", s)
	}
	Bar("x", -1, 10, 10)
	Bar("x", 1, 0, 10)
}

func TestBarGroup(t *testing.T) {
	out := BarGroup("G", []string{"a", "b"}, []float64{1, 2}, 8)
	if !strings.HasPrefix(out, "G\n") || strings.Count(out, "|") != 4 {
		t.Errorf("BarGroup = %q", out)
	}
}

func TestHelpers(t *testing.T) {
	if Pct(0.5) != "50.0%" {
		t.Errorf("Pct = %q", Pct(0.5))
	}
	if Words2MB(500000) != 1.0 {
		t.Errorf("Words2MB = %v", Words2MB(500000))
	}
}

func TestCSV(t *testing.T) {
	tb := NewTable("ignored", "a", "b")
	tb.Add("plain", `has,comma`)
	tb.Add(`has"quote`, "x")
	got := tb.CSV()
	want := "a,b\nplain,\"has,comma\"\n\"has\"\"quote\",x\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}
