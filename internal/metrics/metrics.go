// Package metrics renders experiment results as aligned ASCII tables
// and bar charts, the text equivalents of the paper's figures.
package metrics

import (
	"fmt"
	"strings"
)

// Table is a titled grid of cells rendered with aligned columns.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// Add appends one row; missing cells render empty.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddF appends one row of formatted cells: each argument is rendered
// with %v.
func (t *Table) AddF(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table.
func (t *Table) String() string {
	cols := len(t.Header)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	width := make([]int, cols)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	measure(t.Header)
	for _, r := range t.Rows {
		measure(r)
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(r []string) {
		for i := 0; i < cols; i++ {
			c := ""
			if i < len(r) {
				c = r[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteString("\n")
	}
	if len(t.Header) > 0 {
		writeRow(t.Header)
		total := 0
		for _, w := range width {
			total += w
		}
		b.WriteString(strings.Repeat("-", total+2*(cols-1)))
		b.WriteString("\n")
	}
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// Bar renders one labelled horizontal bar scaled to max, e.g.
//
//	FlexFlow  |##########################          | 432.1
func Bar(label string, value, max float64, width int) string {
	if width <= 0 {
		width = 40
	}
	n := 0
	if max > 0 {
		n = int(value / max * float64(width))
	}
	if n > width {
		n = width
	}
	if n < 0 {
		n = 0
	}
	return fmt.Sprintf("%-12s |%s%s| %.2f", label,
		strings.Repeat("#", n), strings.Repeat(" ", width-n), value)
}

// BarGroup renders a titled group of bars on a shared scale.
func BarGroup(title string, labels []string, values []float64, width int) string {
	max := 0.0
	for _, v := range values {
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for i, l := range labels {
		b.WriteString(Bar(l, values[i], max, width))
		b.WriteString("\n")
	}
	return b.String()
}

// Pct formats a ratio as a percentage string.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }

// Words2MB converts a 16-bit word count to megabytes.
func Words2MB(words int64) float64 { return float64(words) * 2 / 1e6 }

// CSV renders the table as RFC-4180-style comma-separated values
// (header row first when present). Cells containing commas, quotes or
// newlines are quoted.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(r []string) {
		for i, c := range r {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, "\"", "\"\""))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	if len(t.Header) > 0 {
		writeRow(t.Header)
	}
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}
