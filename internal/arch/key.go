package arch

import (
	"strconv"

	"flexflow/internal/nn"
)

// Canonical cache-key encoding shared by every engine's LayerCacheKey.
// Each field is rendered in decimal and terminated with '|', so two
// adjacent integers can never alias across the boundary (M=1,N=12 and
// M=11,N=2 encode as "1|12|" and "11|2|"). Engines build the key into
// a locally owned byte slice; the helpers only ever append.

// AppendKeyString appends a string field and its terminator.
func AppendKeyString(b []byte, s string) []byte {
	b = append(b, s...)
	return append(b, '|')
}

// AppendKeyInt appends a decimal integer field and its terminator.
func AppendKeyInt(b []byte, v int64) []byte {
	b = strconv.AppendInt(b, v, 10)
	return append(b, '|')
}

// AppendKeyBool appends a boolean field as 0/1 and its terminator.
func AppendKeyBool(b []byte, v bool) []byte {
	if v {
		b = append(b, '1')
	} else {
		b = append(b, '0')
	}
	return append(b, '|')
}

// AppendKeyFactors appends an unrolling-factor tuple field by field.
func AppendKeyFactors(b []byte, t T) []byte {
	b = AppendKeyInt(b, int64(t.Tm))
	b = AppendKeyInt(b, int64(t.Tn))
	b = AppendKeyInt(b, int64(t.Tr))
	b = AppendKeyInt(b, int64(t.Tc))
	b = AppendKeyInt(b, int64(t.Ti))
	return AppendKeyInt(b, int64(t.Tj))
}

// AppendLayerKey appends the analytically relevant shape of a CONV
// layer: M, N, S, K and the effective stride. Name is excluded on
// purpose — same-shape layers share one cache entry — and ReLU is
// excluded because it changes neither cycles nor dataflow (nn docs).
func AppendLayerKey(b []byte, l nn.ConvLayer) []byte {
	b = AppendKeyInt(b, int64(l.M))
	b = AppendKeyInt(b, int64(l.N))
	b = AppendKeyInt(b, int64(l.S))
	b = AppendKeyInt(b, int64(l.K))
	return AppendKeyInt(b, int64(l.Str()))
}
