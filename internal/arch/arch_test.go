package arch

import (
	"errors"
	"math"
	"testing"

	"flexflow/internal/nn"
)

var lenetC1 = nn.ConvLayer{Name: "C1", M: 6, N: 1, S: 28, K: 5}
var lenetC3 = nn.ConvLayer{Name: "C3", M: 16, N: 6, S: 10, K: 5}

func TestTGeometry(t *testing.T) {
	f := T{Tm: 3, Tn: 1, Tr: 1, Tc: 5, Ti: 3, Tj: 5}
	if f.Rows() != 15 || f.Cols() != 15 || f.MACsPerCycle() != 225 {
		t.Errorf("Rows=%d Cols=%d MACs=%d", f.Rows(), f.Cols(), f.MACsPerCycle())
	}
}

func TestValidateAcceptsTable4Factors(t *testing.T) {
	// Table 4's LeNet-5 C1 factors on a 16×16 unit must be feasible.
	f := T{Tm: 3, Tn: 1, Tr: 1, Tc: 5, Ti: 3, Tj: 5}
	if err := f.Validate(lenetC1, 16, lenetC1.S); err != nil {
		t.Errorf("Table 4 factors rejected: %v", err)
	}
	// LeNet-5 C3 factors.
	f3 := T{Tm: 16, Tn: 3, Tr: 1, Tc: 1, Ti: 1, Tj: 5}
	if err := f3.Validate(lenetC3, 16, lenetC3.S); err != nil {
		t.Errorf("Table 4 C3 factors rejected: %v", err)
	}
}

func TestValidateRejectsOversize(t *testing.T) {
	cases := []T{
		{Tm: 7, Tn: 1, Tr: 1, Tc: 1, Ti: 1, Tj: 1},  // Tm > M
		{Tm: 1, Tn: 2, Tr: 1, Tc: 1, Ti: 1, Tj: 1},  // Tn > N
		{Tm: 1, Tn: 1, Tr: 1, Tc: 1, Ti: 6, Tj: 1},  // Ti > K
		{Tm: 1, Tn: 1, Tr: 29, Tc: 1, Ti: 1, Tj: 1}, // Tr > bound
		{Tm: 6, Tn: 1, Tr: 1, Tc: 3, Ti: 1, Tj: 1},  // rows 18 > 16
		{Tm: 1, Tn: 1, Tr: 1, Tc: 1, Ti: 5, Tj: 5},  // cols 25 > 16
		{Tm: 0, Tn: 1, Tr: 1, Tc: 1, Ti: 1, Tj: 1},  // non-positive
	}
	for i, f := range cases {
		if err := f.Validate(lenetC1, 16, lenetC1.S); err == nil {
			t.Errorf("case %d (%v) accepted, want reject", i, f)
		}
	}
}

func TestUtilizationEquations(t *testing.T) {
	// LeNet-5 C1 with Table 4 factors on D=16:
	// U_r = 1·5·5 / (1·⌈5/3⌉·⌈5/5⌉·16) = 25/32.
	// U_c = 6·28·28 / (⌈6/3⌉·⌈28/1⌉·⌈28/5⌉·16) = 4704/5376.
	f := T{Tm: 3, Tn: 1, Tr: 1, Tc: 5, Ti: 3, Tj: 5}
	ur := RowUtilization(lenetC1, f, 16)
	if want := 25.0 / 32.0; !close(ur, want) {
		t.Errorf("U_r = %v, want %v", ur, want)
	}
	uc := ColUtilization(lenetC1, f, 16)
	if want := 4704.0 / 5376.0; !close(uc, want) {
		t.Errorf("U_c = %v, want %v", uc, want)
	}
	if ut := TotalUtilization(lenetC1, f, 16); !close(ut, ur*uc) {
		t.Errorf("U_t = %v, want U_r*U_c = %v", ut, ur*uc)
	}
}

func TestUtilizationEqualsMACOverPECycles(t *testing.T) {
	// U_t must equal MACs / (cycles·D²) with the pass-structured cycle
	// count — the identity underlying Eq. 2/3.
	layers := []nn.ConvLayer{lenetC1, lenetC3, {M: 12, N: 8, S: 20, K: 3}}
	factors := []T{
		{Tm: 3, Tn: 1, Tr: 1, Tc: 5, Ti: 3, Tj: 5},
		{Tm: 16, Tn: 3, Tr: 1, Tc: 1, Ti: 1, Tj: 5},
		{Tm: 3, Tn: 8, Tr: 1, Tc: 5, Ti: 1, Tj: 2},
	}
	d := 16
	for i, l := range layers {
		f := factors[i]
		cycles := GroupPasses(l, f) * CyclesPerPass(l, f)
		got := float64(l.MACs()) / (float64(cycles) * float64(d*d))
		want := TotalUtilization(l, f, d)
		if !close(got, want) {
			t.Errorf("layer %d: MAC/PE-cycle = %v, Eq2×Eq3 = %v", i, got, want)
		}
	}
}

func TestLayerResultDerived(t *testing.T) {
	r := LayerResult{PEs: 256, Cycles: 1000, MACs: 128000,
		NeuronLoads: 10, NeuronStores: 20, KernelLoads: 30,
		DRAMReads: 5, DRAMWrites: 7}
	if got := r.Utilization(); !close(got, 0.5) {
		t.Errorf("Utilization = %v, want 0.5", got)
	}
	// 2*128000 ops in 1 µs at 1 GHz = 256 GOPS.
	if got := r.GOPS(1e9); !close(got, 256) {
		t.Errorf("GOPS = %v, want 256", got)
	}
	if got := r.DataVolume(); got != 60 {
		t.Errorf("DataVolume = %d, want 60", got)
	}
}

func TestLayerResultZeroSafe(t *testing.T) {
	var r LayerResult
	if r.Utilization() != 0 || r.GOPS(1e9) != 0 {
		t.Error("zero result should have zero metrics")
	}
}

func TestRunResultAggregation(t *testing.T) {
	r := RunResult{Layers: []LayerResult{
		{PEs: 256, Cycles: 100, MACs: 12800, DRAMReads: 1},
		{PEs: 256, Cycles: 300, MACs: 76800, DRAMWrites: 2},
	}}
	if r.Cycles() != 400 || r.MACs() != 89600 {
		t.Errorf("Cycles=%d MACs=%d", r.Cycles(), r.MACs())
	}
	// weighted utilization = 89600/(400*256) = 0.875
	if got := r.Utilization(); !close(got, 0.875) {
		t.Errorf("Utilization = %v", got)
	}
	if r.DRAMAccesses() != 3 {
		t.Errorf("DRAMAccesses = %d", r.DRAMAccesses())
	}
	if got := r.GOPS(1e9); !close(got, 448) {
		t.Errorf("GOPS = %v, want 448", got)
	}
}

func TestLayerResultAdd(t *testing.T) {
	a := LayerResult{Cycles: 1, MACs: 2, NeuronLoads: 3, KernelLoads: 4, InterPEMoves: 5}
	b := LayerResult{Cycles: 10, MACs: 20, NeuronLoads: 30, KernelLoads: 40, InterPEMoves: 50}
	c := a.Add(b)
	if c.Cycles != 11 || c.MACs != 22 || c.NeuronLoads != 33 || c.KernelLoads != 44 || c.InterPEMoves != 55 {
		t.Errorf("Add = %+v", c)
	}
}

func TestTString(t *testing.T) {
	f := T{Tm: 1, Tn: 2, Tr: 3, Tc: 4, Ti: 5, Tj: 6}
	if got := f.String(); got != "<Tm=1 Tn=2 Tr=3 Tc=4 Ti=5 Tj=6>" {
		t.Errorf("String = %q", got)
	}
}

func close(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}

func TestStyleClassification(t *testing.T) {
	cases := []struct {
		t    T
		want string
	}{
		{T{Tm: 1, Tn: 1, Tr: 1, Tc: 1, Ti: 6, Tj: 6}, "SFSNMS"},   // Systolic
		{T{Tm: 1, Tn: 1, Tr: 16, Tc: 16, Ti: 1, Tj: 1}, "SFMNSS"}, // 2D-Mapping
		{T{Tm: 16, Tn: 16, Tr: 1, Tc: 1, Ti: 1, Tj: 1}, "MFSNSS"}, // Tiling
		{T{Tm: 3, Tn: 1, Tr: 1, Tc: 5, Ti: 3, Tj: 5}, "MFMNMS"},   // FlexFlow mix
		{T{Tm: 1, Tn: 1, Tr: 1, Tc: 1, Ti: 1, Tj: 1}, "SFSNSS"},
		{T{Tm: 1, Tn: 2, Tr: 1, Tc: 1, Ti: 1, Tj: 2}, "MFSNMS"},
	}
	for _, c := range cases {
		if got := c.t.Style(); got != c.want {
			t.Errorf("Style(%v) = %q, want %q", c.t, got, c.want)
		}
	}
}

func TestFigure8FullOccupancy(t *testing.T) {
	// The Section 4.2 complementary-parallelism example: on a 4×4
	// array, C1 (M=2,N=1,K=4) mixes high SP (Tj=4) with FP+NP on the
	// rows (Tm=2,Tc=2); C2 (M=2,N=2,K=2) mixes SP+FP on the columns
	// (Tn=2,Tj=2) with FP+NP on the rows. Both fully occupy the PEs.
	c1 := T{Tm: 2, Tn: 1, Tr: 1, Tc: 2, Ti: 1, Tj: 4}
	c2 := T{Tm: 2, Tn: 2, Tr: 1, Tc: 2, Ti: 1, Tj: 2}
	for name, f := range map[string]T{"C1": c1, "C2": c2} {
		if f.Rows() != 4 || f.Cols() != 4 {
			t.Errorf("%s: %v occupies %dx%d of the 4x4 array", name, f, f.Rows(), f.Cols())
		}
	}
	// And the corresponding utilizations are total on the example's
	// shapes (C1 S=8 pads to the paper's figure; the occupancy claim is
	// the rows/cols one above).
	l2 := nn.ConvLayer{M: 2, N: 2, S: 4, K: 2}
	if u := TotalUtilization(l2, c2, 4); !close(u, 1.0) {
		t.Errorf("C2 utilization = %v, want 1.0", u)
	}
}

func TestWallClock(t *testing.T) {
	r := LayerResult{Cycles: 1000, DRAMReads: 3000, DRAMWrites: 1000}
	// 2 words/cycle: memory needs 2000 cycles > 1000 compute.
	if got, err := r.WallClock(2); err != nil || got != 2000 {
		t.Errorf("WallClock(2) = %d, %v, want 2000", got, err)
	}
	// 8 words/cycle: memory hides behind compute.
	if got, err := r.WallClock(8); err != nil || got != 1000 {
		t.Errorf("WallClock(8) = %d, %v, want 1000", got, err)
	}
	run := RunResult{Layers: []LayerResult{r, r}}
	if got, err := run.WallClock(2); err != nil || got != 4000 {
		t.Errorf("run WallClock = %d, %v, want 4000", got, err)
	}
}

func TestWallClockRejectsBadBandwidth(t *testing.T) {
	for _, bw := range []float64{0, -1, math.NaN()} {
		if _, err := (LayerResult{Cycles: 1}).WallClock(bw); !errors.Is(err, ErrBandwidth) {
			t.Errorf("WallClock(%v) err = %v, want ErrBandwidth", bw, err)
		}
		if _, err := (RunResult{Layers: []LayerResult{{Cycles: 1}}}).WallClock(bw); !errors.Is(err, ErrBandwidth) {
			t.Errorf("run WallClock(%v) err = %v, want ErrBandwidth", bw, err)
		}
	}
}

func TestWallClockRoundsMemoryCyclesUp(t *testing.T) {
	// 4000 words at 3.2 words/cycle is 1250 cycles exactly; at 3 it is
	// 1333.33…, which must round up to 1334, not truncate to 1333.
	r := LayerResult{Cycles: 100, DRAMReads: 4000}
	if got, err := r.WallClock(3); err != nil || got != 1334 {
		t.Errorf("WallClock(3) = %d, %v, want 1334", got, err)
	}
	if got, err := r.WallClock(3.2); err != nil || got != 1250 {
		t.Errorf("WallClock(3.2) = %d, %v, want 1250", got, err)
	}
}

func TestRunResultDataVolumeAndWallClockAggregation(t *testing.T) {
	r := RunResult{Layers: []LayerResult{
		{Cycles: 10, NeuronLoads: 1, NeuronStores: 2, KernelLoads: 3, DRAMReads: 100},
		{Cycles: 20, NeuronLoads: 4, NeuronStores: 5, KernelLoads: 6, DRAMWrites: 40},
	}}
	if r.DataVolume() != 21 {
		t.Errorf("DataVolume = %d", r.DataVolume())
	}
	// Layer 1 memory-bound at 1 word/cycle (100 > 10); layer 2 not (40 > 20 → bound too).
	if got, err := r.WallClock(1); err != nil || got != 140 {
		t.Errorf("WallClock = %d, %v, want 140", got, err)
	}
}
