package arch

import "flexflow/internal/nn"

// ChooseFactors exhaustively searches the feasible unrolling factors of
// Constraint (1) for the factor vector maximizing U_r·U_c (Section 5).
// Because U_r depends only on ⟨T_n,T_i,T_j⟩ and U_c only on
// ⟨T_m,T_r,T_c⟩, and the two triples are constrained independently
// (column side ≤ D, row side ≤ D), the search decomposes into two
// small independent maximizations. rcBound is the paper's P·K′ limit
// on T_r and T_c from the next layers (pass l.S when unconstrained).
//
// The search lives here rather than in the simulator packages because
// it is pure planning math over the Section 5 equations: both the
// compiler and the FlexFlow engine consume it, and the repository's
// layering contract (flexlint layering) forbids the compiler from
// importing a simulator.
func ChooseFactors(l nn.ConvLayer, d, rcBound int) T {
	if rcBound > l.S {
		rcBound = l.S
	}
	if rcBound < 1 {
		rcBound = 1
	}
	best := T{Tm: 1, Tn: 1, Tr: 1, Tc: 1, Ti: 1, Tj: 1}

	// Column side: maximize Eq. 2 over ⟨T_n,T_i,T_j⟩ with Tn·Ti·Tj ≤ D.
	bestUr := -1.0
	for tn := 1; tn <= minFactor(l.N, d); tn++ {
		for ti := 1; ti <= minFactor(l.K, d/tn); ti++ {
			for tj := 1; tj <= minFactor(l.K, d/(tn*ti)); tj++ {
				t := T{Tn: tn, Ti: ti, Tj: tj, Tm: 1, Tr: 1, Tc: 1}
				if ur := RowUtilization(l, t, d); ur > bestUr+1e-12 {
					bestUr = ur
					best.Tn, best.Ti, best.Tj = tn, ti, tj
				}
			}
		}
	}

	// Row side: maximize Eq. 3 over ⟨T_m,T_r,T_c⟩ with Tm·Tr·Tc ≤ D and
	// T_r,T_c ≤ rcBound.
	bestUc := -1.0
	for tm := 1; tm <= minFactor(l.M, d); tm++ {
		for tr := 1; tr <= minFactor(rcBound, d/tm); tr++ {
			for tc := 1; tc <= minFactor(rcBound, d/(tm*tr)); tc++ {
				t := T{Tm: tm, Tr: tr, Tc: tc, Tn: 1, Ti: 1, Tj: 1}
				if uc := ColUtilization(l, t, d); uc > bestUc+1e-12 {
					bestUc = uc
					best.Tm, best.Tr, best.Tc = tm, tr, tc
				}
			}
		}
	}
	return best
}

// ChooseFactorsCoupled is ChooseFactors with the column-side triple
// ⟨T_n,T_i,T_j⟩ fixed by the previous layer's ⟨T_m,T_r,T_c⟩ (the IADP
// inter-layer coupling of Section 5: outputs are written in the next
// layer's layout, so the next layer must read with that geometry). The
// coupled values are clamped into the layer's feasible range.
func ChooseFactorsCoupled(l nn.ConvLayer, d, rcBound int, prev T) T {
	t := ChooseFactors(l, d, rcBound)
	t.Tn = clampFactor(prev.Tm, 1, minFactor(l.N, d))
	t.Ti = clampFactor(prev.Tr, 1, minFactor(l.K, d/t.Tn))
	t.Tj = clampFactor(prev.Tc, 1, minFactor(l.K, d/(t.Tn*t.Ti)))
	return t
}

func minFactor(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func clampFactor(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
