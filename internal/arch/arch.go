// Package arch holds the abstractions shared by all four accelerator
// architectures: the loop-unrolling factor vector T, the utilization
// equations of the paper's Section 5, the Engine interface every
// architecture implements, and the per-layer/per-network result
// records that the metrics and energy models consume.
package arch

import (
	"errors"
	"fmt"
	"math"

	"flexflow/internal/nn"
	"flexflow/internal/tensor"
)

// T is the unrolling-factor vector ⟨T_m, T_n, T_r, T_c, T_i, T_j⟩ of
// Figure 4: the parallel degree of each of the six CONV loops.
type T struct {
	Tm int // output feature maps processed in parallel
	Tn int // input feature maps processed in parallel
	Tr int // output neuron rows processed in parallel
	Tc int // output neuron columns processed in parallel
	Ti int // kernel rows processed in parallel
	Tj int // kernel columns processed in parallel
}

// Rows returns the number of PE rows a FlexFlow engine needs for these
// factors: T_m·T_r·T_c (one output neuron per PE row).
func (t T) Rows() int { return t.Tm * t.Tr * t.Tc }

// Cols returns the number of PE columns needed: T_n·T_i·T_j (one
// operand pair per PE within a row).
func (t T) Cols() int { return t.Tn * t.Ti * t.Tj }

// MACsPerCycle is the number of multiply-accumulates issued per cycle
// when every unrolled lane is busy.
func (t T) MACsPerCycle() int { return t.Rows() * t.Cols() }

// String renders the factors in the paper's ⟨...⟩ notation.
func (t T) String() string {
	return fmt.Sprintf("<Tm=%d Tn=%d Tr=%d Tc=%d Ti=%d Tj=%d>", t.Tm, t.Tn, t.Tr, t.Tc, t.Ti, t.Tj)
}

// Validate checks Constraint (1) of Section 5 for a D×D convolutional
// unit running layer l, with T_r/T_c additionally bounded by rcBound
// (= P·K′ of the next CONV layer; pass l.S when there is no next layer).
func (t T) Validate(l nn.ConvLayer, d, rcBound int) error {
	switch {
	case t.Tm <= 0 || t.Tm > l.M:
		return fmt.Errorf("arch: Tm=%d out of (0,%d]", t.Tm, l.M)
	case t.Tn <= 0 || t.Tn > l.N:
		return fmt.Errorf("arch: Tn=%d out of (0,%d]", t.Tn, l.N)
	case t.Ti <= 0 || t.Ti > l.K:
		return fmt.Errorf("arch: Ti=%d out of (0,%d]", t.Ti, l.K)
	case t.Tj <= 0 || t.Tj > l.K:
		return fmt.Errorf("arch: Tj=%d out of (0,%d]", t.Tj, l.K)
	case t.Tr <= 0 || t.Tr > rcBound:
		return fmt.Errorf("arch: Tr=%d out of (0,%d]", t.Tr, rcBound)
	case t.Tc <= 0 || t.Tc > rcBound:
		return fmt.Errorf("arch: Tc=%d out of (0,%d]", t.Tc, rcBound)
	case t.Cols() > d:
		return fmt.Errorf("arch: Tn·Ti·Tj=%d exceeds D=%d", t.Cols(), d)
	case t.Rows() > d:
		return fmt.Errorf("arch: Tm·Tr·Tc=%d exceeds D=%d", t.Rows(), d)
	}
	return nil
}

// ceilDiv returns ⌈a/b⌉.
func ceilDiv(a, b int) int { return (a + b - 1) / b }

// RowUtilization is Equation 2: the PE-column occupancy within rows.
func RowUtilization(l nn.ConvLayer, t T, d int) float64 {
	denom := float64(ceilDiv(l.N, t.Tn)) * float64(ceilDiv(l.K, t.Ti)) * float64(ceilDiv(l.K, t.Tj)) * float64(d)
	return float64(l.N) * float64(l.K) * float64(l.K) / denom
}

// ColUtilization is Equation 3: the PE-row occupancy.
func ColUtilization(l nn.ConvLayer, t T, d int) float64 {
	denom := float64(ceilDiv(l.M, t.Tm)) * float64(ceilDiv(l.S, t.Tr)) * float64(ceilDiv(l.S, t.Tc)) * float64(d)
	return float64(l.M) * float64(l.S) * float64(l.S) / denom
}

// TotalUtilization is U_t = U_r · U_c.
func TotalUtilization(l nn.ConvLayer, t T, d int) float64 {
	return RowUtilization(l, t, d) * ColUtilization(l, t, d)
}

// GroupPasses returns the number of group passes a FlexFlow engine
// makes over the output space: ⌈M/T_m⌉·⌈S/T_r⌉·⌈S/T_c⌉.
func GroupPasses(l nn.ConvLayer, t T) int64 {
	return int64(ceilDiv(l.M, t.Tm)) * int64(ceilDiv(l.S, t.Tr)) * int64(ceilDiv(l.S, t.Tc))
}

// CyclesPerPass returns the compute cycles of one group pass:
// ⌈N/T_n⌉·⌈K/T_i⌉·⌈K/T_j⌉.
func CyclesPerPass(l nn.ConvLayer, t T) int64 {
	return int64(ceilDiv(l.N, t.Tn)) * int64(ceilDiv(l.K, t.Ti)) * int64(ceilDiv(l.K, t.Tj))
}

// LayerResult records everything the metrics, energy and experiment
// layers need to know about executing one CONV layer on one engine.
// All data-movement counters are in 16-bit words.
type LayerResult struct {
	Arch    string       // engine name
	Layer   nn.ConvLayer // the layer executed
	Factors T            // unrolling factors in effect
	PEs     int          // multipliers in the engine
	Cycles  int64        // total cycles, including fill/drain overhead
	MACs    int64        // useful multiply-accumulates performed

	NeuronLoads  int64 // input-neuron words moved buffer → PE
	NeuronStores int64 // output-neuron words moved PE → buffer (incl. partial-sum spills)
	KernelLoads  int64 // synapse words moved buffer → PE
	LocalReads   int64 // PE local-store / register-file reads
	LocalWrites  int64 // PE local-store / register-file writes
	InterPEMoves int64 // words moved over inter-PE links or FIFOs
	DRAMReads    int64 // words read from external memory
	DRAMWrites   int64 // words written to external memory
}

// IdleSlots returns the PE-cycle slots that issued no useful MAC:
// total slots (Cycles × PEs) minus the useful ones. It is the
// sanctioned cycles→events conversion for idle-energy billing — the
// one place the cycle axis and the event axis legitimately meet
// (flexlint unitcheck treats it as a conversion helper).
func (r LayerResult) IdleSlots() int64 {
	idle := r.Cycles*int64(r.PEs) - r.MACs
	if idle < 0 {
		return 0
	}
	return idle
}

// Utilization is the computing-resource utilization the paper plots:
// useful PE-cycles over total PE-cycles.
func (r LayerResult) Utilization() float64 {
	if r.Cycles == 0 || r.PEs == 0 {
		return 0
	}
	return float64(r.MACs) / (float64(r.Cycles) * float64(r.PEs))
}

// GOPS returns giga-operations per second at the given clock (Hz),
// counting 2 ops per MAC.
func (r LayerResult) GOPS(clockHz float64) float64 {
	if r.Cycles == 0 {
		return 0
	}
	seconds := float64(r.Cycles) / clockHz
	return float64(2*r.MACs) / seconds / 1e9
}

// DataVolume is the buffer↔PE traffic the paper's Figure 17 plots
// (neuron loads + output stores + kernel loads), in words.
func (r LayerResult) DataVolume() int64 {
	return r.NeuronLoads + r.NeuronStores + r.KernelLoads
}

// Add accumulates counters from another result (used when an engine
// composes sub-passes); shape fields are taken from r.
func (r LayerResult) Add(o LayerResult) LayerResult {
	r.Cycles += o.Cycles
	r.MACs += o.MACs
	r.NeuronLoads += o.NeuronLoads
	r.NeuronStores += o.NeuronStores
	r.KernelLoads += o.KernelLoads
	r.LocalReads += o.LocalReads
	r.LocalWrites += o.LocalWrites
	r.InterPEMoves += o.InterPEMoves
	r.DRAMReads += o.DRAMReads
	r.DRAMWrites += o.DRAMWrites
	return r
}

// RunResult aggregates the per-layer results of one network on one
// engine.
type RunResult struct {
	Arch     string
	Workload string
	Layers   []LayerResult
}

// Cycles returns total cycles across layers.
func (r RunResult) Cycles() int64 {
	var c int64
	for _, l := range r.Layers {
		c += l.Cycles
	}
	return c
}

// MACs returns total useful MACs across layers.
func (r RunResult) MACs() int64 {
	var m int64
	for _, l := range r.Layers {
		m += l.MACs
	}
	return m
}

// Utilization returns the cycle-weighted utilization across layers,
// i.e. total useful PE-cycles over total PE-cycles.
func (r RunResult) Utilization() float64 {
	var mac, peCycles float64
	for _, l := range r.Layers {
		mac += float64(l.MACs)
		peCycles += float64(l.Cycles) * float64(l.PEs)
	}
	if peCycles == 0 {
		return 0
	}
	return mac / peCycles
}

// GOPS returns whole-network throughput at the given clock.
func (r RunResult) GOPS(clockHz float64) float64 {
	c := r.Cycles()
	if c == 0 {
		return 0
	}
	return float64(2*r.MACs()) / (float64(c) / clockHz) / 1e9
}

// DataVolume returns total buffer↔PE traffic in words.
func (r RunResult) DataVolume() int64 {
	var v int64
	for _, l := range r.Layers {
		v += l.DataVolume()
	}
	return v
}

// DRAMAccesses returns total external-memory word transfers.
func (r RunResult) DRAMAccesses() int64 {
	var v int64
	for _, l := range r.Layers {
		v += l.DRAMReads + l.DRAMWrites
	}
	return v
}

// Engine is the interface all four accelerator architectures implement.
type Engine interface {
	// Name identifies the architecture ("Systolic", "2D-Mapping",
	// "Tiling", "FlexFlow").
	Name() string
	// PEs returns the number of multipliers in the computing engine.
	PEs() int
	// Model analytically evaluates one CONV layer: cycle count,
	// utilization and data-movement counters, without computing values.
	Model(l nn.ConvLayer) LayerResult
	// Simulate executes the layer cycle-by-cycle through the explicit
	// PE dataflow, producing the actual output feature maps along with
	// the same counters Model predicts. Used for functional validation
	// on small layers.
	Simulate(l nn.ConvLayer, in *tensor.Map3, k *tensor.Kernel4) (*tensor.Map3, LayerResult, error)
}

// Style classifies a factor vector into the paper's eight processing
// styles (§2.2): {Single,Multiple} Feature map × Neuron × Synapse,
// e.g. "SFSNMS" for the Systolic style or "MFMNMS" for FlexFlow's
// fully mixed style. Feature-map parallelism is multiple when T_m > 1
// or T_n > 1; neuron parallelism when T_r > 1 or T_c > 1; synapse
// parallelism when T_i > 1 or T_j > 1.
func (t T) Style() string {
	letter := func(multiple bool) byte {
		if multiple {
			return 'M'
		}
		return 'S'
	}
	return string([]byte{
		letter(t.Tm > 1 || t.Tn > 1), 'F',
		letter(t.Tr > 1 || t.Tc > 1), 'N',
		letter(t.Ti > 1 || t.Tj > 1), 'S',
	})
}

// ErrBandwidth is returned by WallClock when the memory bandwidth is
// not a positive number of words per cycle. The bandwidth typically
// arrives from a CLI flag or a config file, so this is a user error,
// not an invariant violation.
var ErrBandwidth = errors.New("arch: bandwidth must be positive")

// WallClock estimates the layer's wall-clock cycles when DRAM traffic
// is streamed concurrently with compute through double-buffered on-chip
// memories: the slower of the compute schedule and the memory stream at
// the given bandwidth (words per cycle). The paper's cycle counts
// assume the memory side keeps up; WallClock quantifies when it does
// not.
func (r LayerResult) WallClock(wordsPerCycle float64) (int64, error) {
	if !(wordsPerCycle > 0) { // also rejects NaN
		return 0, fmt.Errorf("%w: got %v words/cycle", ErrBandwidth, wordsPerCycle)
	}
	// Ceiling, not truncation: a stream that needs a fraction of a cycle
	// still occupies the whole cycle, and truncating let memory-bound
	// layers report fewer cycles than the traffic actually takes.
	memCycles := int64(math.Ceil(float64(r.DRAMReads+r.DRAMWrites) / wordsPerCycle))
	if memCycles > r.Cycles {
		return memCycles, nil
	}
	return r.Cycles, nil
}

// WallClock sums the per-layer wall-clock cycles of a run.
func (r RunResult) WallClock(wordsPerCycle float64) (int64, error) {
	var c int64
	for _, l := range r.Layers {
		w, err := l.WallClock(wordsPerCycle)
		if err != nil {
			return 0, err
		}
		c += w
	}
	return c, nil
}

// LayerChecker is implemented by engines whose dataflow cannot run
// every well-formed layer (the rigid baselines keep the paper's
// unit-stride contract). CheckLayer reports, without executing
// anything, whether Model/Simulate would accept the layer; callers that
// take untrusted networks probe it before invoking Model, which keeps
// its panic an invariant check rather than a reachable crash.
type LayerChecker interface {
	CheckLayer(l nn.ConvLayer) error
}

// CheckNetwork validates a network against an engine for analytic
// evaluation: every CONV layer must be well formed and runnable on the
// engine (per LayerChecker, when implemented). Full topology chaining
// is deliberately NOT required here — the analytic models consume
// per-layer shapes only, and several Table 1 workloads keep published
// shapes that do not chain exactly (see internal/workloads); the
// functional Execute path enforces chaining separately.
func CheckNetwork(e Engine, nw *nn.Network) error {
	if nw == nil {
		return errors.New("arch: nil network")
	}
	return CheckLayers(e, nw.ConvLayers())
}

// CheckLayers is CheckNetwork over an already-extracted CONV layer
// slice. Callers that have the slice in hand (the pipeline extracts it
// once per run) use this form so validation does not re-extract it —
// ConvLayers allocates, and the hot analytic path is budgeted
// allocation-by-allocation (flexlint hotalloc).
func CheckLayers(e Engine, layers []nn.ConvLayer) error {
	c, _ := e.(LayerChecker)
	for _, l := range layers {
		if err := l.Validate(); err != nil {
			return err
		}
		if c != nil {
			if err := c.CheckLayer(l); err != nil {
				return err
			}
		}
	}
	return nil
}
