package lint

// Package-graph edge cases for the loader, exercised against the
// nested fixture module under testdata/loader: walk exclusions
// (testdata, vendor, hidden and underscore directories), test-only
// packages, non-recursive roots with lazy sibling resolution, and
// import cycles.

import (
	"slices"
	"strings"
	"testing"
)

// TestLoadNestedModule pins the walk's selection set over a module
// that carries every directory kind the loader must skip: only the
// three real packages load, and the import edge between siblings
// resolves through the module's own loader.
func TestLoadNestedModule(t *testing.T) {
	prog, err := Load("testdata/loader/mod")
	if err != nil {
		t.Fatal(err)
	}
	if prog.ModPath != "loaderx" {
		t.Errorf("ModPath = %q, want loaderx", prog.ModPath)
	}
	want := []string{"loaderx", "loaderx/a", "loaderx/b"}
	if got := pkgPaths(prog); !slices.Equal(got, want) {
		t.Fatalf("Pkgs = %v, want %v", got, want)
	}
	// The import edge a -> b type-checked: a.Answer folded to b's value.
	var a *Package
	for _, p := range prog.Pkgs {
		if p.Path == "loaderx/a" {
			a = p
		}
	}
	if a.Types.Scope().Lookup("Answer") == nil {
		t.Error("package a did not type-check its import of loaderx/b")
	}
}

// TestLoadNonRecursiveRoot checks that a root without the /...
// suffix selects exactly one package, with its module-local imports
// resolved lazily rather than added to the analysis set.
func TestLoadNonRecursiveRoot(t *testing.T) {
	prog, err := Load("testdata/loader/mod", "a")
	if err != nil {
		t.Fatal(err)
	}
	if got := pkgPaths(prog); !slices.Equal(got, []string{"loaderx/a"}) {
		t.Fatalf("Pkgs = %v, want just loaderx/a", got)
	}
	// b was loaded to satisfy a's import and stays reachable lazily.
	b, err := prog.Package("loaderx/b")
	if err != nil {
		t.Fatal(err)
	}
	if b.Types.Scope().Lookup("Answer") == nil {
		t.Error("lazily resolved package b lacks Answer")
	}
}

// TestLoadTestOnlyPackage pins both sides of the test-only contract:
// the recursive walk passes the package over silently (covered by
// TestLoadNestedModule's selection set), and naming it as an explicit
// root fails loudly instead of yielding an empty package.
func TestLoadTestOnlyPackage(t *testing.T) {
	_, err := Load("testdata/loader/mod", "testonly")
	if err == nil {
		t.Fatal("loading a test-only package succeeded; want a no-buildable-files error")
	}
	if !strings.Contains(err.Error(), "no buildable Go files") {
		t.Errorf("unexpected error for test-only package: %v", err)
	}
}

// TestLoadImportCycle pins the loader's cycle detection: a module
// whose packages import each other fails with an error naming the
// cycle instead of recursing forever.
func TestLoadImportCycle(t *testing.T) {
	_, err := Load("testdata/loader/cycmod", "p")
	if err == nil {
		t.Fatal("loading a cyclic module succeeded")
	}
	if !strings.Contains(err.Error(), "import cycle") {
		t.Errorf("error does not name the cycle: %v", err)
	}
}
