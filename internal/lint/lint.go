// Package lint is flexlint: a standard-library-only static-analysis
// suite enforcing the repository's simulator invariants. The paper's
// evaluation rests on contracts the compiler cannot check — all
// datapath arithmetic saturates like the 16-bit fixed-point MAC
// hardware (§6.1.1), cycle-level simulators are deterministic so the
// analytical models can be validated against them, and every event a
// simulator counts is charged by the energy model. Each analyzer
// mechanically enforces one such contract over the type-checked
// source of the module; cmd/flexlint runs them all and gates CI.
//
// Findings carry stable IDs of the form "<analyzer>/<rule>" and can be
// suppressed at a specific site with a comment on, or on the line
// above, the offending code:
//
//	//lint:ignore detsim/map-range order is re-sorted by the caller
//
// The ignore must name the finding's full ID, an ID glob such as
// "lockguard/*" (path.Match syntax), or just the analyzer name to
// suppress every rule of that analyzer — and must give a reason.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"path"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one diagnostic. ID is stable across runs ("fixedsat/raw-op");
// Pos is the offending source position.
type Finding struct {
	ID      string
	Pos     token.Position
	Message string
}

// String renders the finding in the conventional file:line:col form,
// with the file path relative to dir when possible.
func (f Finding) String() string { return f.Render("") }

// Render renders the finding with the file path made relative to dir.
func (f Finding) Render(dir string) string {
	file := f.Pos.Filename
	if dir != "" {
		if rel, err := filepath.Rel(dir, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = rel
		}
	}
	return fmt.Sprintf("%s:%d:%d: %s [%s]", file, f.Pos.Line, f.Pos.Column, f.Message, f.ID)
}

// Analyzer is one flexlint check, run over a whole Program so that
// cross-package analyses (counteraudit) fit the same interface as
// per-package syntax checks.
type Analyzer interface {
	// Name is the analyzer's short name, the first segment of its
	// finding IDs.
	Name() string
	// Doc is a one-line description of the enforced invariant.
	Doc() string
	// Run reports findings over the program. Findings suppressed by
	// //lint:ignore comments are filtered out by Run/RunAnalyzers, not
	// by the analyzer.
	Run(prog *Program) ([]Finding, error)
}

// SuiteVersion identifies the analyzer suite revision. It is embedded
// in -json output and in the emitted artifacts so a findings dump or
// baseline records which suite produced it. Bump it whenever an
// analyzer is added, removed, or changes the meaning of its rules.
const SuiteVersion = 4

// DefaultAnalyzers returns the full suite with the repository's
// canonical configuration.
func DefaultAnalyzers() []Analyzer {
	return []Analyzer{
		NewFixedSat(),
		NewDetSim(),
		NewCounterAudit(),
		NewErrDrop(),
		NewConcSafe(),
		NewLayering(),
		NewUnitCheck(),
		NewAPIGuard(),
		NewHookParity(),
		NewPurity(),
		NewHotAlloc(),
		NewSharedCapture(),
		NewLockGuard(),
		NewCtxFlow(),
		NewGoLeak(),
		NewChanAudit(),
	}
}

// RunAnalyzers runs every analyzer, filters findings suppressed by
// //lint:ignore comments in the analyzed packages, and returns the
// remainder sorted by position.
func RunAnalyzers(prog *Program, analyzers []Analyzer) ([]Finding, error) {
	ignores := collectIgnores(prog)
	var out []Finding
	for _, a := range analyzers {
		fs, err := a.Run(prog)
		if err != nil {
			return nil, fmt.Errorf("lint: %s: %w", a.Name(), err)
		}
		for _, f := range fs {
			if !ignores.covers(f) {
				out = append(out, f)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.ID < b.ID
	})
	return out, nil
}

// ignoreIndex maps file → line → the IDs suppressed at that line.
type ignoreIndex map[string]map[int][]string

// collectIgnores parses //lint:ignore directives out of every analyzed
// file. A directive suppresses matching findings on its own line and
// on the line directly below it (the "comment above the statement"
// placement).
func collectIgnores(prog *Program) ignoreIndex {
	idx := ignoreIndex{}
	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					text := strings.TrimPrefix(c.Text, "//")
					text = strings.TrimSpace(text)
					rest, ok := strings.CutPrefix(text, "lint:ignore")
					if !ok {
						continue
					}
					fields := strings.Fields(rest)
					if len(fields) < 2 {
						// An ignore without a reason is not honored.
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					m := idx[pos.Filename]
					if m == nil {
						m = map[int][]string{}
						idx[pos.Filename] = m
					}
					m[pos.Line] = append(m[pos.Line], fields[0])
					m[pos.Line+1] = append(m[pos.Line+1], fields[0])
				}
			}
		}
	}
	return idx
}

func (idx ignoreIndex) covers(f Finding) bool {
	for _, pat := range idx[f.Pos.Filename][f.Pos.Line] {
		if pat == f.ID || pat == analyzerOf(f.ID) {
			return true
		}
		if strings.ContainsAny(pat, "*?[") {
			if ok, err := path.Match(pat, f.ID); err == nil && ok {
				return true
			}
		}
	}
	return false
}

func analyzerOf(id string) string {
	if i := strings.IndexByte(id, '/'); i >= 0 {
		return id[:i]
	}
	return id
}

// inspectFiles runs fn over every node of every file of pkg.
func inspectFiles(pkg *Package, fn func(*ast.File, ast.Node) bool) {
	for _, file := range pkg.Files {
		f := file
		ast.Inspect(f, func(n ast.Node) bool { return fn(f, n) })
	}
}

// unparen strips redundant parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
