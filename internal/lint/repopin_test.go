package lint

// Repo-level pins for the committed analysis artifacts. The files
// under results/ are soundness certificates: CI archives them, so a
// drifted copy would advertise guarantees the tree no longer has.
// These tests regenerate each artifact from source and byte-compare
// it against the committed copy.

import (
	"maps"
	"os"
	"path/filepath"
	"slices"
	"strings"
	"testing"
)

// TestRepoPurityManifest certifies every engine's Model (and the
// analytic cost helpers) as pure and pins the committed manifest.
// Regenerate with:
//
//	go run ./cmd/flexlint -purity-manifest results/purity_manifest.json ./...
func TestRepoPurityManifest(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	prog, err := Load(".")
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewPurity().Manifest(prog)
	if err != nil {
		t.Fatal(err)
	}
	modelRoots := 0
	for _, e := range m.Roots {
		if !e.Pure {
			t.Errorf("root %s is not certified pure: impure=%v mutates=%v", e.Root, e.Impure, e.Mutates)
		}
		if strings.HasSuffix(e.Root, ".Engine).Model") {
			modelRoots++
		}
	}
	// The five engine packages plus the mapping-spec interpreter.
	if modelRoots != 6 {
		t.Errorf("manifest certifies %d engine Model methods, want all 6", modelRoots)
	}

	path := filepath.Join(prog.ModRoot, "results", "purity_manifest.json")
	committed, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(committed) != string(m.Encode()) {
		t.Errorf("results/purity_manifest.json is stale; regenerate with `go run ./cmd/flexlint -purity-manifest results/purity_manifest.json ./...`")
	}
}

// TestRepoConcManifest certifies the repository's concurrency
// contracts and pins the committed certificate: every mutex field is
// annotated with a guarded-field map, every go statement has join
// evidence, and every channel field has at most one closing owner.
// Regenerate with:
//
//	go run ./cmd/flexlint -conc-manifest results/conc_manifest.json ./...
func TestRepoConcManifest(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	prog, err := Load(".")
	if err != nil {
		t.Fatal(err)
	}
	m, err := BuildConcManifest(prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Locks) < 6 {
		t.Errorf("manifest records %d annotated locks, want the serving layer's 6", len(m.Locks))
	}
	for _, g := range m.Goroutines {
		if g.Join == "none" {
			t.Errorf("go statement in %s (spawns %s) has no join evidence", g.Func, g.Spawns)
		}
	}
	closers := map[string]string{}
	for _, c := range m.Channels {
		closers[c.Channel] = c.Closer
	}
	if got := closers["flexflow/internal/serve.Server.queue"]; got != "(*flexflow/internal/serve.Server).Shutdown" {
		t.Errorf("Server.queue closer = %q, want Shutdown", got)
	}
	if got := closers["flexflow/internal/serve.Server.batches"]; got != "(*flexflow/internal/serve.Server).dispatch" {
		t.Errorf("Server.batches closer = %q, want dispatch", got)
	}

	path := filepath.Join(prog.ModRoot, "results", "conc_manifest.json")
	committed, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(committed) != string(m.Encode()) {
		t.Errorf("results/conc_manifest.json is stale; regenerate with `go run ./cmd/flexlint -conc-manifest results/conc_manifest.json ./...`")
	}
}

// TestRepoAllocBudgetMatchesReality pins the committed allocation
// ledger exactly against the source tree, layering-style: a new
// allocation site must be argued into RepoAllocBudget, and a removed
// one must shrink it. The committed results/hotalloc_budget.json must
// match too. Regenerate with:
//
//	go run ./cmd/flexlint -alloc-report results/hotalloc_budget.json ./...
func TestRepoAllocBudgetMatchesReality(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	prog, err := Load(".")
	if err != nil {
		t.Fatal(err)
	}
	a := NewHotAlloc()
	actual, err := a.Report(prog)
	if err != nil {
		t.Fatal(err)
	}
	committed := RepoAllocBudget()
	if !slices.Equal(actual.Roots, committed.Roots) {
		t.Errorf("roots diverge: actual %v, committed %v", actual.Roots, committed.Roots)
	}
	if !maps.Equal(actual.Budget, committed.Budget) {
		for name, n := range actual.Budget {
			if committed.Budget[name] != n {
				t.Errorf("RepoAllocBudget[%q] = %d, but the tree has %d site(s)", name, committed.Budget[name], n)
			}
		}
		for name, n := range committed.Budget {
			if _, ok := actual.Budget[name]; !ok {
				t.Errorf("RepoAllocBudget lists %q (%d site(s)), which no longer allocates or is unreachable", name, n)
			}
		}
	}

	path := filepath.Join(prog.ModRoot, "results", "hotalloc_budget.json")
	file, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(file) != string(committed.Encode()) {
		t.Errorf("results/hotalloc_budget.json is stale; regenerate with `go run ./cmd/flexlint -alloc-report results/hotalloc_budget.json ./...`")
	}
}
