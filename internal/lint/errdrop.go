package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// ErrDrop flags statements in cmd/ and internal/ packages that
// silently discard an error result. A simulator that swallows an I/O
// or validation error reports numbers computed from partial state,
// which is worse than failing. Two rules:
//
//   - errdrop/ignored: a bare call statement whose results include an
//     error;
//   - errdrop/deferred: a defer of such a call (the classic
//     `defer f.Close()` on a file open for writing, where the flush
//     error vanishes); wrap the call in a closure that records the
//     error into a named return instead.
//
// Pragmatic exemptions (the conventional errcheck whitelist):
//
//   - fmt.Print/Printf/Println, and fmt.Fprint* when the writer is
//     os.Stdout, os.Stderr, a *bytes.Buffer or a *strings.Builder —
//     best-effort CLI output and infallible in-memory writers;
//   - methods on *bytes.Buffer and *strings.Builder, whose error
//     results are documented to always be nil.
//
// Explicitly assigning to the blank identifier (_ = f()) is treated as
// a deliberate, visible decision and is not flagged.
type ErrDrop struct {
	// Match selects the package import paths the check applies to.
	Match func(pkgPath string) bool
}

// NewErrDrop returns the analyzer scoped to any module's cmd/ and
// internal/ trees (module-relative, so the tool also works when
// pointed at a different module).
func NewErrDrop() *ErrDrop {
	return &ErrDrop{Match: func(path string) bool {
		return strings.Contains(path, "/cmd/") || strings.Contains(path, "/internal/") ||
			strings.HasPrefix(path, "cmd/") || strings.HasPrefix(path, "internal/")
	}}
}

func (*ErrDrop) Name() string { return "errdrop" }
func (*ErrDrop) Doc() string {
	return "call statements must not silently discard error results"
}

func (a *ErrDrop) Run(prog *Program) ([]Finding, error) {
	var out []Finding
	for _, pkg := range prog.Pkgs {
		if !a.Match(pkg.Path) {
			continue
		}
		info := pkg.Info
		inspectFiles(pkg, func(_ *ast.File, n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.ExprStmt:
				call, ok := unparen(stmt.X).(*ast.CallExpr)
				if !ok {
					return true
				}
				if !returnsError(info, call) || exemptCall(info, call) {
					return true
				}
				out = append(out, Finding{
					ID:      "errdrop/ignored",
					Pos:     prog.Fset.Position(call.Pos()),
					Message: fmt.Sprintf("result of %s includes an error that is silently discarded; handle it or assign it to _ explicitly", calleeName(info, call)),
				})
			case *ast.DeferStmt:
				call := stmt.Call
				if _, isClosure := unparen(call.Fun).(*ast.FuncLit); isClosure {
					return true // its body is inspected like any other code
				}
				if !returnsError(info, call) || exemptCall(info, call) {
					return true
				}
				out = append(out, Finding{
					ID:      "errdrop/deferred",
					Pos:     prog.Fset.Position(call.Pos()),
					Message: fmt.Sprintf("deferred call to %s discards its error; wrap it in a closure that records the error into a named return", calleeName(info, call)),
				})
			}
			return true
		})
	}
	return out, nil
}

// returnsError reports whether the call produces an error among its
// results.
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	t := info.TypeOf(call)
	switch t := t.(type) {
	case nil:
		return false
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(t)
	}
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// exemptCall implements the whitelist documented on ErrDrop.
func exemptCall(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil {
		return false
	}
	name := fn.FullName()
	switch name {
	case "fmt.Print", "fmt.Printf", "fmt.Println":
		return true
	case "fmt.Fprint", "fmt.Fprintf", "fmt.Fprintln":
		if len(call.Args) > 0 {
			return infallibleWriter(info, call.Args[0])
		}
	}
	if strings.HasPrefix(name, "(*bytes.Buffer).") || strings.HasPrefix(name, "(*strings.Builder).") {
		return true
	}
	return false
}

// infallibleWriter reports whether the expression denotes os.Stdout /
// os.Stderr or an in-memory writer whose Write never fails.
func infallibleWriter(info *types.Info, e ast.Expr) bool {
	e = unparen(e)
	if sel, ok := e.(*ast.SelectorExpr); ok {
		if v, ok := info.Uses[sel.Sel].(*types.Var); ok && v.Pkg() != nil && v.Pkg().Path() == "os" {
			if v.Name() == "Stdout" || v.Name() == "Stderr" {
				return true
			}
		}
	}
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	for _, name := range []string{"bytes.Buffer", "strings.Builder"} {
		if t.String() == "*"+name {
			return true
		}
	}
	return false
}

// calleeName renders a human-readable name for the called function.
func calleeName(info *types.Info, call *ast.CallExpr) string {
	if fn := calleeFunc(info, call); fn != nil {
		return fn.FullName()
	}
	switch f := unparen(call.Fun).(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		return f.Sel.Name
	}
	return "call"
}
