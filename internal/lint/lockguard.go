package lint

// lockguard certifies the repository's mutex discipline:
//
//   - lockguard/annotation: every sync.Mutex / sync.RWMutex struct
//     field must carry a `// guards: field, ...` annotation (or
//     `// guards: none`) declaring exactly which sibling fields it
//     protects — the lock → data map is a contract, not tribal
//     knowledge, and the conc manifest certificate publishes it.
//   - lockguard/unknown-field: an annotation naming a field that does
//     not exist in the struct is a stale contract.
//   - lockguard/unguarded-access: a guarded field may only be read or
//     written while its lock is held, established by an
//     intraprocedural lock-set walk over Lock/RLock/Unlock/RUnlock
//     calls (defer Unlock keeps the lock held to function end; a
//     function literal starts with an empty lock set, since it may
//     run on another goroutine).
//   - lockguard/hold-blocking: no lock may be held across a blocking
//     operation — a channel send/receive/range, a select without a
//     default arm, or a call into a configured blocking entry point
//     (pipeline.Exec, ExecuteBatch, WaitGroup.Wait, …). This is the
//     breaker-wedge bug class: a lock held across a blocked channel
//     op deadlocks every other path that needs the lock.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockGuard is the mutex-contract analyzer.
type LockGuard struct {
	// BlockingCalls lists go/types FullNames of functions that can
	// block indefinitely; holding any tracked lock across a call to
	// one is a finding. Entries that never resolve simply never match.
	BlockingCalls []string
}

// NewLockGuard returns the repository configuration: the sync and
// time blockers plus every facade/pipeline execution entry point (all
// of which run whole simulations and park on the scheduler).
func NewLockGuard() *LockGuard {
	return &LockGuard{BlockingCalls: []string{
		"(*sync.WaitGroup).Wait",
		"time.Sleep",
		"flexflow.Run",
		"flexflow.RunOpts",
		"flexflow.Execute",
		"flexflow.ExecuteOpts",
		"flexflow.ExecuteBatch",
		"flexflow.ExecuteBatchOpts",
		"flexflow/internal/pipeline.Exec",
		"flexflow/internal/pipeline.ExecBatch",
		"flexflow/internal/pipeline.RunModel",
		"flexflow/internal/pipeline.RunBilled",
		"flexflow/internal/pipeline.RunLayer",
		"(flexflow/internal/pipeline.Scheduler).Map",
	}}
}

func (*LockGuard) Name() string { return "lockguard" }
func (*LockGuard) Doc() string {
	return "mutex fields declare `// guards:` contracts; guarded fields are accessed under the lock, never held across blocking ops"
}

// guardRef records which mutex field guards a data field.
type guardRef struct {
	structFull string // "pkg/path.Type"
	lockField  string // sibling mutex field name
}

// lockTable is the per-program annotation harvest.
type lockTable struct {
	entries  []LockEntry
	findings []Finding
	guardOf  map[types.Object]guardRef
}

// Run harvests the annotations, then walks every function body with
// the lock-set analysis.
func (a *LockGuard) Run(prog *Program) ([]Finding, error) {
	table := collectLocks(prog)
	findings := table.findings
	blocking := map[string]bool{}
	for _, full := range a.BlockingCalls {
		blocking[full] = true
	}
	for _, pkg := range prog.Pkgs {
		sc := &lockScope{prog: prog, pkg: pkg, guardOf: table.guardOf, blocking: blocking}
		for _, file := range pkg.Files {
			for _, d := range file.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
					sc.walkBody(fd.Body)
				}
			}
		}
		findings = append(findings, sc.out...)
	}
	return findings, nil
}

// Locks returns the annotated lock → guarded-field map for the
// concurrency manifest. Guard lists are sorted; unannotated mutexes
// appear with an empty list (and a finding from Run).
func (a *LockGuard) Locks(prog *Program) ([]LockEntry, error) {
	return collectLocks(prog).entries, nil
}

// guardsAnnotation parses a field's comments for `guards: a, b` (or
// `guards: none`). A guards: line ending with a comma continues onto
// the next line of the same comment group, so a long field list can
// wrap. found reports whether any guards: directive was present.
func guardsAnnotation(groups ...*ast.CommentGroup) (names []string, found bool) {
	for _, g := range groups {
		if g == nil {
			continue
		}
		continuing := false
		for _, c := range g.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			rest, ok := strings.CutPrefix(text, "guards:")
			if !ok {
				if !continuing {
					continue
				}
				rest = text
			} else {
				found = true
			}
			continuing = strings.HasSuffix(strings.TrimSpace(rest), ",")
			for _, part := range strings.Split(rest, ",") {
				name := strings.TrimSpace(part)
				if name == "" || name == "none" {
					continue
				}
				names = append(names, name)
			}
		}
	}
	return names, found
}

// collectLocks scans every analyzed struct type for mutex fields and
// their annotations.
func collectLocks(prog *Program) *lockTable {
	table := &lockTable{guardOf: map[types.Object]guardRef{}}
	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				ts, ok := n.(*ast.TypeSpec)
				if !ok {
					return true
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					return true
				}
				structFull := pkg.Path + "." + ts.Name.Name
				// Index the sibling fields so annotations can be
				// validated and guarded objects resolved.
				siblings := map[string]types.Object{}
				for _, f := range st.Fields.List {
					for _, name := range f.Names {
						siblings[name.Name] = pkg.Info.Defs[name]
					}
				}
				for _, f := range st.Fields.List {
					if !isMutexType(pkg.Info.TypeOf(f.Type)) {
						continue
					}
					names := f.Names
					if len(names) == 0 {
						continue // embedded mutex: lockable type, not a contract field
					}
					guards, found := guardsAnnotation(f.Doc, f.Comment)
					for _, lockName := range names {
						entry := LockEntry{Lock: structFull + "." + lockName.Name, Guards: []string{}}
						if !found {
							table.findings = append(table.findings, Finding{
								ID:  "lockguard/annotation",
								Pos: prog.Fset.Position(lockName.Pos()),
								Message: fmt.Sprintf("sync mutex field %s.%s has no `// guards: field, ...` annotation (use `guards: none` for a free-standing lock)",
									structFull, lockName.Name),
							})
						}
						for _, g := range guards {
							obj, ok := siblings[g]
							if !ok || obj == nil {
								table.findings = append(table.findings, Finding{
									ID:  "lockguard/unknown-field",
									Pos: prog.Fset.Position(lockName.Pos()),
									Message: fmt.Sprintf("guards: annotation on %s.%s names %q, which is not a field of the struct",
										structFull, lockName.Name, g),
								})
								continue
							}
							entry.Guards = append(entry.Guards, g)
							table.guardOf[obj] = guardRef{structFull: structFull, lockField: lockName.Name}
						}
						sort.Strings(entry.Guards)
						table.entries = append(table.entries, entry)
					}
				}
				return true
			})
		}
	}
	return table
}

// lockScope is the per-package lock-set walker state.
type lockScope struct {
	prog     *Program
	pkg      *Package
	guardOf  map[types.Object]guardRef
	blocking map[string]bool
	out      []Finding
}

func (s *lockScope) report(id string, pos token.Pos, format string, args ...any) {
	s.out = append(s.out, Finding{ID: id, Pos: s.prog.Fset.Position(pos), Message: fmt.Sprintf(format, args...)})
}

func copyHeld(held map[string]bool) map[string]bool {
	cp := make(map[string]bool, len(held))
	for k := range held {
		cp[k] = true
	}
	return cp
}

func heldNames(held map[string]bool) string {
	names := make([]string, 0, len(held))
	for k := range held {
		names = append(names, k)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// walkBody analyzes one function (or function-literal) body with an
// empty lock set.
func (s *lockScope) walkBody(body *ast.BlockStmt) {
	s.walkStmts(body.List, map[string]bool{})
}

func (s *lockScope) walkStmts(list []ast.Stmt, held map[string]bool) {
	for _, st := range list {
		s.walkStmt(st, held)
	}
}

// lockCallKey recognizes a Lock/RLock/Unlock/RUnlock call on a
// rendered mutex path ("s.mu") and returns the path and method name.
func (s *lockScope) lockCallKey(call *ast.CallExpr) (key, method string) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", ""
	}
	if !isMutexType(s.pkg.Info.TypeOf(sel.X)) {
		return "", ""
	}
	path := renderPath(sel.X)
	if path == "" {
		return "", ""
	}
	return path, sel.Sel.Name
}

// walkStmt threads the lock set through one statement. Branch bodies
// get a copy of the set (the branch may unlock without affecting the
// fall-through path); the entry set flows on afterwards, which is
// conservative in the safe direction for the access rule.
func (s *lockScope) walkStmt(st ast.Stmt, held map[string]bool) {
	switch x := st.(type) {
	case *ast.BlockStmt:
		s.walkStmts(x.List, held)
	case *ast.ExprStmt:
		if call, ok := unparen(x.X).(*ast.CallExpr); ok {
			if key, method := s.lockCallKey(call); key != "" {
				switch method {
				case "Lock", "RLock":
					held[key] = true
				case "Unlock", "RUnlock":
					delete(held, key)
				}
				return
			}
		}
		s.checkExpr(x.X, held, true)
	case *ast.DeferStmt:
		if key, method := s.lockCallKey(x.Call); key != "" && strings.HasSuffix(method, "Unlock") {
			return // deferred unlock: the lock stays held to function end
		}
		// The deferred call runs at return under an unknown lock set;
		// only its argument evaluation happens here.
		if lit, ok := x.Call.Fun.(*ast.FuncLit); ok {
			s.walkBody(lit.Body)
		}
		for _, arg := range x.Call.Args {
			s.checkExpr(arg, held, true)
		}
	case *ast.GoStmt:
		// The spawned body runs without the caller's locks.
		if lit, ok := x.Call.Fun.(*ast.FuncLit); ok {
			s.walkBody(lit.Body)
		}
		for _, arg := range x.Call.Args {
			s.checkExpr(arg, held, true)
		}
	case *ast.SendStmt:
		if len(held) > 0 {
			s.report("lockguard/hold-blocking", x.Pos(), "channel send while holding %s", heldNames(held))
		}
		s.checkExpr(x.Chan, held, false)
		s.checkExpr(x.Value, held, true)
	case *ast.AssignStmt:
		for _, e := range x.Rhs {
			s.checkExpr(e, held, true)
		}
		for _, e := range x.Lhs {
			s.checkExpr(e, held, true)
		}
	case *ast.IncDecStmt:
		s.checkExpr(x.X, held, true)
	case *ast.ReturnStmt:
		for _, e := range x.Results {
			s.checkExpr(e, held, true)
		}
	case *ast.IfStmt:
		if x.Init != nil {
			s.walkStmt(x.Init, held)
		}
		s.checkExpr(x.Cond, held, true)
		s.walkStmt(x.Body, copyHeld(held))
		if x.Else != nil {
			s.walkStmt(x.Else, copyHeld(held))
		}
	case *ast.ForStmt:
		if x.Init != nil {
			s.walkStmt(x.Init, held)
		}
		if x.Cond != nil {
			s.checkExpr(x.Cond, held, true)
		}
		body := copyHeld(held)
		s.walkStmt(x.Body, body)
		if x.Post != nil {
			s.walkStmt(x.Post, body)
		}
	case *ast.RangeStmt:
		if chanType(s.pkg.Info.TypeOf(x.X)) != nil && len(held) > 0 {
			s.report("lockguard/hold-blocking", x.Pos(), "range over a channel while holding %s", heldNames(held))
		}
		s.checkExpr(x.X, held, false)
		s.walkStmt(x.Body, copyHeld(held))
	case *ast.SwitchStmt:
		if x.Init != nil {
			s.walkStmt(x.Init, held)
		}
		if x.Tag != nil {
			s.checkExpr(x.Tag, held, true)
		}
		for _, clause := range x.Body.List {
			cc, ok := clause.(*ast.CaseClause)
			if !ok {
				continue
			}
			for _, e := range cc.List {
				s.checkExpr(e, held, true)
			}
			s.walkStmts(cc.Body, copyHeld(held))
		}
	case *ast.TypeSwitchStmt:
		if x.Init != nil {
			s.walkStmt(x.Init, held)
		}
		s.walkStmt(x.Assign, held)
		for _, clause := range x.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				s.walkStmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.SelectStmt:
		if len(held) > 0 && !selectHasDefault(x) {
			s.report("lockguard/hold-blocking", x.Pos(), "select without a default arm while holding %s", heldNames(held))
		}
		for _, clause := range x.Body.List {
			cc, ok := clause.(*ast.CommClause)
			if !ok {
				continue
			}
			branch := copyHeld(held)
			if cc.Comm != nil {
				s.walkComm(cc.Comm, branch)
			}
			s.walkStmts(cc.Body, branch)
		}
	case *ast.LabeledStmt:
		s.walkStmt(x.Stmt, held)
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						s.checkExpr(e, held, true)
					}
				}
			}
		}
	}
}

// walkComm analyzes a select communication statement: its guarded
// accesses count, but its send/receive is governed by the enclosing
// select's verdict, not flagged as a standalone blocking op.
func (s *lockScope) walkComm(comm ast.Stmt, held map[string]bool) {
	switch x := comm.(type) {
	case *ast.SendStmt:
		s.checkExpr(x.Chan, held, false)
		s.checkExpr(x.Value, held, false)
	case *ast.ExprStmt:
		s.checkExpr(x.X, held, false)
	case *ast.AssignStmt:
		for _, e := range x.Rhs {
			s.checkExpr(e, held, false)
		}
		for _, e := range x.Lhs {
			s.checkExpr(e, held, false)
		}
	}
}

// checkExpr scans an expression for guarded-field accesses and, when
// flagChanOps is set, blocking operations performed under a lock.
func (s *lockScope) checkExpr(e ast.Expr, held map[string]bool, flagChanOps bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			// May run on another goroutine: empty lock set. A
			// synchronous closure that needs the enclosing lock should
			// hoist the value or take the lock itself.
			s.walkBody(x.Body)
			return false
		case *ast.UnaryExpr:
			if x.Op == token.ARROW && flagChanOps && len(held) > 0 {
				s.report("lockguard/hold-blocking", x.Pos(), "channel receive while holding %s", heldNames(held))
			}
		case *ast.CallExpr:
			if len(held) > 0 {
				if fn := calleeFunc(s.pkg.Info, x); fn != nil && s.blocking[fn.FullName()] {
					s.report("lockguard/hold-blocking", x.Pos(), "call to blocking %s while holding %s", fn.FullName(), heldNames(held))
				}
			}
		case *ast.SelectorExpr:
			s.access(x, held)
		}
		return true
	})
}

// access reports a guarded-field selector evaluated without its lock.
func (s *lockScope) access(sel *ast.SelectorExpr, held map[string]bool) {
	obj := s.pkg.Info.Uses[sel.Sel]
	if obj == nil {
		if selection := s.pkg.Info.Selections[sel]; selection != nil {
			obj = selection.Obj()
		}
	}
	ref, ok := s.guardOf[obj]
	if !ok {
		return
	}
	base := renderPath(sel.X)
	if base != "" && held[base+"."+ref.lockField] {
		return
	}
	s.report("lockguard/unguarded-access", sel.Sel.Pos(),
		"field %s.%s is guarded by %s but accessed without %s.%s held",
		ref.structFull, sel.Sel.Name, ref.lockField, baseOrValue(base), ref.lockField)
}

func baseOrValue(base string) string {
	if base == "" {
		return "<expr>"
	}
	return base
}
