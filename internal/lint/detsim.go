package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// DetSim forbids sources of nondeterminism in the simulator, compiler
// and experiment packages. The analytical models are validated against
// the cycle-level simulators and the experiment goldens are compared
// byte-for-byte, so those packages must be bit-reproducible run to
// run. Three rules:
//
//   - detsim/map-range: a range over a map — Go randomizes map
//     iteration order, so any result, counter or output ordering fed
//     from such a loop differs between runs. Iterate a sorted key
//     slice instead (or suppress with a reason when order provably
//     cannot escape).
//   - detsim/time-now: time.Now in simulation code makes results
//     depend on the wall clock.
//   - detsim/rand: importing math/rand (or math/rand/v2) into
//     simulation code; layer data for functional runs must come from
//     the repository's seeded deterministic generators instead.
type DetSim struct {
	// Match selects the package import paths the determinism contract
	// applies to.
	Match func(pkgPath string) bool
}

// NewDetSim returns the analyzer configured for this repository: the
// whole module except cmd/ (CLI frontends may time themselves),
// examples/, and internal/lint itself.
func NewDetSim() *DetSim {
	return &DetSim{Match: func(path string) bool {
		switch {
		case strings.HasPrefix(path, "flexflow/cmd/"),
			strings.HasPrefix(path, "flexflow/examples/"),
			strings.HasPrefix(path, "flexflow/internal/lint"):
			return false
		}
		return path == "flexflow" || strings.HasPrefix(path, "flexflow/")
	}}
}

func (*DetSim) Name() string { return "detsim" }
func (*DetSim) Doc() string {
	return "simulator/compiler packages must be deterministic: no map-order dependence, time.Now or math/rand"
}

func (a *DetSim) Run(prog *Program) ([]Finding, error) {
	var out []Finding
	for _, pkg := range prog.Pkgs {
		if !a.Match(pkg.Path) {
			continue
		}
		info := pkg.Info
		inspectFiles(pkg, func(_ *ast.File, n ast.Node) bool {
			switch e := n.(type) {
			case *ast.ImportSpec:
				path, err := strconv.Unquote(e.Path.Value)
				if err == nil && (path == "math/rand" || path == "math/rand/v2") {
					out = append(out, Finding{
						ID:      "detsim/rand",
						Pos:     prog.Fset.Position(e.Pos()),
						Message: fmt.Sprintf("simulation package imports %s; use the seeded deterministic generators instead", path),
					})
				}
			case *ast.RangeStmt:
				if t := info.TypeOf(e.X); t != nil {
					if _, ok := t.Underlying().(*types.Map); ok {
						out = append(out, Finding{
							ID:      "detsim/map-range",
							Pos:     prog.Fset.Position(e.For),
							Message: "range over a map iterates in randomized order; iterate sorted keys to keep simulation results deterministic",
						})
					}
				}
			case *ast.CallExpr:
				if fn := calleeFunc(info, e); fn != nil && fn.FullName() == "time.Now" {
					out = append(out, Finding{
						ID:      "detsim/time-now",
						Pos:     prog.Fset.Position(e.Pos()),
						Message: "time.Now makes simulation results depend on the wall clock",
					})
				}
			}
			return true
		})
	}
	return out, nil
}

// calleeFunc resolves the *types.Func a call statically invokes, or
// nil for builtins, conversions and indirect calls.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch f := unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[f]
	case *ast.SelectorExpr:
		obj = info.Uses[f.Sel]
	}
	fn, _ := obj.(*types.Func)
	return fn
}
