package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// APIGuard statically pins the facade's panic-free contract: every
// exported function or method of the public package that can fail must
// route through the guard recovery boundary (so an escaped internal
// panic surfaces as ErrInternal, never a crash), and every error the
// package fabricates must wrap a typed sentinel (so errors.Is works on
// the public API). Two rules:
//
//   - apiguard/unguarded: an exported error-returning function of the
//     guarded package neither calls the guard function nor reaches it
//     through package-local calls.
//   - apiguard/naked-error: a function body in the guarded package
//     builds an error with errors.New, or with fmt.Errorf whose format
//     string has no %w verb — an unwrapped error a caller cannot match
//     with errors.Is. Package-level sentinel declarations (outside any
//     function body) are the sanctioned use of errors.New.
type APIGuard struct {
	// Pkg is the import path of the guarded (public) package.
	Pkg string
	// GuardFunc is the package-local recovery boundary function.
	GuardFunc string
}

// NewAPIGuard returns the analyzer configured for this repository's
// root facade package.
func NewAPIGuard() *APIGuard {
	return &APIGuard{Pkg: "flexflow", GuardFunc: "guard"}
}

func (*APIGuard) Name() string { return "apiguard" }
func (*APIGuard) Doc() string {
	return "exported error-returning functions of the facade must pass through the guard recovery boundary and return only wrapped typed errors"
}

func (a *APIGuard) Run(prog *Program) ([]Finding, error) {
	if !prog.IsModuleLocal(a.Pkg) {
		return nil, nil
	}
	pkg, err := prog.Package(a.Pkg)
	if err != nil {
		return nil, err
	}
	info := pkg.Info

	guardObj := pkg.Types.Scope().Lookup(a.GuardFunc)
	if guardObj == nil {
		return nil, fmt.Errorf("%s has no %s function", a.Pkg, a.GuardFunc)
	}

	// Package-local call graph: which functions does each function body
	// call, and which call guard directly.
	type node struct {
		decl    *ast.FuncDecl
		callees map[types.Object]bool
		guarded bool
	}
	nodes := map[types.Object]*node{}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj := info.Defs[fd.Name]
			if obj == nil {
				continue
			}
			n := &node{decl: fd, callees: map[types.Object]bool{}}
			ast.Inspect(fd.Body, func(x ast.Node) bool {
				call, ok := x.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := calleeObj(info, unparen(call.Fun))
				if callee == nil || callee.Pkg() != pkg.Types {
					return true
				}
				if callee == guardObj {
					n.guarded = true
				} else {
					n.callees[callee] = true
				}
				return true
			})
			nodes[obj] = n
		}
	}

	// reaches reports whether fn reaches guard through package-local
	// calls (including transitively).
	var reaches func(obj types.Object, seen map[types.Object]bool) bool
	reaches = func(obj types.Object, seen map[types.Object]bool) bool {
		n, ok := nodes[obj]
		if !ok || seen[obj] {
			return false
		}
		if n.guarded {
			return true
		}
		seen[obj] = true
		for callee := range n.callees {
			if reaches(callee, seen) {
				return true
			}
		}
		return false
	}

	var out []Finding
	for obj, n := range nodes {
		fd := n.decl
		if !fd.Name.IsExported() || !exposedReceiver(fd) {
			continue
		}
		fn, ok := obj.(*types.Func)
		if !ok || !signatureReturnsError(fn) {
			continue
		}
		if !reaches(obj, map[types.Object]bool{}) {
			out = append(out, Finding{
				ID:  "apiguard/unguarded",
				Pos: prog.Fset.Position(fd.Name.Pos()),
				Message: fmt.Sprintf("exported %s returns an error without passing through %s: a panic inside it would crash the caller instead of becoming ErrInternal",
					fd.Name.Name, a.GuardFunc),
			})
		}
	}

	// naked-error: unwrapped error fabrication inside function bodies.
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(x ast.Node) bool {
				call, ok := x.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := calleeObj(info, unparen(call.Fun))
				if callee == nil {
					return true
				}
				switch callee.FullName() {
				case "errors.New":
					out = append(out, Finding{
						ID:      "apiguard/naked-error",
						Pos:     prog.Fset.Position(call.Pos()),
						Message: "errors.New inside a function body builds an unwrapped error: wrap a typed sentinel instead (package-level sentinel declarations are the sanctioned use)",
					})
				case "fmt.Errorf":
					if format, ok := constString(info, call.Args); ok && !strings.Contains(format, "%w") {
						out = append(out, Finding{
							ID:      "apiguard/naked-error",
							Pos:     prog.Fset.Position(call.Pos()),
							Message: fmt.Sprintf("fmt.Errorf(%q, …) does not wrap a sentinel with %%w: callers cannot match the error with errors.Is", format),
						})
					}
				}
				return true
			})
		}
	}
	return out, nil
}

// exposedReceiver reports whether fd is a plain function or a method
// on an exported receiver type (methods on unexported types are not
// public API surface).
func exposedReceiver(fd *ast.FuncDecl) bool {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return true
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if ix, ok := t.(*ast.IndexExpr); ok { // generic receiver
		t = ix.X
	}
	id, ok := t.(*ast.Ident)
	return ok && id.IsExported()
}

// signatureReturnsError reports whether fn's results include error.
func signatureReturnsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if isErrorType(res.At(i).Type()) {
			return true
		}
	}
	return false
}

// constString extracts a constant first-argument string.
func constString(info *types.Info, args []ast.Expr) (string, bool) {
	if len(args) == 0 {
		return "", false
	}
	tv, ok := info.Types[args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
