package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one parsed and type-checked package of the module.
type Package struct {
	Path  string // import path ("flexflow/internal/core")
	Dir   string // absolute directory
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Program is the unit flexlint analyzers run over: the set of packages
// selected for analysis plus a lazy resolver for the rest of the
// module (cross-package analyzers such as counteraudit pull in the
// energy and arch packages on demand even when they are not analysis
// roots).
type Program struct {
	Fset    *token.FileSet
	ModPath string // module path from go.mod
	ModRoot string // absolute directory containing go.mod
	Pkgs    []*Package

	ld *loader
}

// Package returns the type-checked package for an import path, loading
// it on demand. Only module-local and standard-library paths resolve.
func (p *Program) Package(path string) (*Package, error) { return p.ld.load(path) }

// IsModuleLocal reports whether an import path belongs to the loaded
// module.
func (p *Program) IsModuleLocal(path string) bool { return p.ld.isModuleLocal(path) }

// sharedFset and sharedStd give every Load in the process one file set
// and one source-based standard-library importer, so repeated loads
// (the golden self-tests load one fixture tree each) type-check fmt,
// sync and friends only once.
var (
	sharedOnce sync.Once
	sharedFset *token.FileSet
	sharedStd  types.ImporterFrom
)

func shared() (*token.FileSet, types.ImporterFrom) {
	sharedOnce.Do(func() {
		sharedFset = token.NewFileSet()
		sharedStd = importer.ForCompiler(sharedFset, "source", nil).(types.ImporterFrom)
	})
	return sharedFset, sharedStd
}

type loader struct {
	fset    *token.FileSet
	modRoot string
	modPath string
	std     types.ImporterFrom

	pkgs    map[string]*Package
	loading map[string]bool
}

// Import and ImportFrom make the loader a types.Importer: module-local
// paths are type-checked from source inside the module, everything
// else is delegated to the standard-library source importer.
func (l *loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.modRoot, 0)
}

func (l *loader) ImportFrom(path, dir string, _ types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if l.isModuleLocal(path) {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, l.modRoot, 0)
}

func (l *loader) isModuleLocal(path string) bool {
	return path == l.modPath || strings.HasPrefix(path, l.modPath+"/")
}

// dirFor maps a module-local import path to its directory.
func (l *loader) dirFor(path string) string {
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modPath), "/")
	return filepath.Join(l.modRoot, filepath.FromSlash(rel))
}

// pathFor maps a directory inside the module to its import path.
func (l *loader) pathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.modRoot, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.modPath, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module %s", dir, l.modRoot)
	}
	return l.modPath + "/" + filepath.ToSlash(rel), nil
}

// load parses and type-checks one module-local package, memoized.
func (l *loader) load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.dirFor(path)
	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no buildable Go files in %s", dir)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	// Collect every type error instead of stopping at the first: a
	// broken package surfaces with full context rather than silently
	// degrading the analysis (or drip-feeding one error per run).
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if len(typeErrs) > 0 {
		const maxShown = 10
		msgs := make([]string, 0, maxShown+1)
		for i, e := range typeErrs {
			if i == maxShown {
				msgs = append(msgs, fmt.Sprintf("… and %d more", len(typeErrs)-maxShown))
				break
			}
			msgs = append(msgs, e.Error())
		}
		return nil, fmt.Errorf("lint: type-checking %s:\n\t%s", path, strings.Join(msgs, "\n\t"))
	}
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}

// parseDir parses the non-test Go files of one directory.
func (l *loader) parseDir(dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// Load type-checks the module containing dir. With no roots, every
// package of the module is selected for analysis (skipping testdata,
// hidden and vendor directories); otherwise only packages under the
// given root directories are selected. A root may end in "/..." to
// walk recursively; without the suffix it names a single package
// directory.
func Load(dir string, roots ...string) (*Program, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	modRoot, modPath, err := findModule(abs)
	if err != nil {
		return nil, err
	}
	fset, std := shared()
	ld := &loader{
		fset:    fset,
		modRoot: modRoot,
		modPath: modPath,
		std:     std,
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
	}
	if len(roots) == 0 {
		roots = []string{modRoot + "/..."}
	}

	var dirs []string
	seen := map[string]bool{}
	addDir := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, root := range roots {
		recursive := false
		if strings.HasSuffix(root, "...") {
			recursive = true
			root = strings.TrimSuffix(strings.TrimSuffix(root, "..."), string(filepath.Separator))
			root = strings.TrimSuffix(root, "/")
		}
		if root == "" || root == "." {
			root = abs
		}
		if !filepath.IsAbs(root) {
			root = filepath.Join(abs, root)
		}
		if !recursive {
			addDir(root)
			continue
		}
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				addDir(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}

	prog := &Program{Fset: fset, ModPath: modPath, ModRoot: modRoot, ld: ld}
	for _, d := range dirs {
		path, err := ld.pathFor(d)
		if err != nil {
			return nil, err
		}
		pkg, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		prog.Pkgs = append(prog.Pkgs, pkg)
	}
	sort.Slice(prog.Pkgs, func(i, j int) bool { return prog.Pkgs[i].Path < prog.Pkgs[j].Path })
	return prog, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") &&
			!strings.HasPrefix(name, ".") && !strings.HasPrefix(name, "_") {
			return true
		}
	}
	return false
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func findModule(dir string) (root, path string, err error) {
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module"); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		d = parent
	}
}
