package lint

// ctxflow certifies that the request path cannot park forever on a
// channel and that cancellation is threaded, not forged:
//
//   - ctxflow/background: context.Background() / context.TODO() are
//     forbidden outside package main (and tests, which the loader
//     never analyzes). A library that mints its own root context
//     detaches itself from the caller's deadline and disconnect
//     signals; derive from the request context instead
//     (context.WithoutCancel preserves values while detaching
//     cancellation when that is the intent).
//   - ctxflow/bare-op: a blocking channel send or receive written
//     outside any select, in code reachable from a configured
//     request-path root, has no cancellation path. Ranging over a
//     channel is exempt: it terminates at close, and chanaudit
//     certifies the closer.
//   - ctxflow/no-cancel-arm: a select reachable from a request-path
//     root must either have a default arm (non-blocking) or an arm
//     that receives from a ctx.Done()-style call or a conventionally
//     named shutdown channel (done/stop/quit/shut/cancel/close/ctx).
//
// Reachability is the static call graph from Roots (interface
// dispatch is not expanded), so backend code the request path drives
// is certified along with the handlers themselves.

import (
	"fmt"
	"go/ast"
	"go/token"
)

// CtxFlow is the cancellation-flow analyzer.
type CtxFlow struct {
	// Roots are the request-path entry points (go/types FullNames)
	// whose reachable call trees must keep every blocking channel op
	// cancellable.
	Roots []string
}

// NewCtxFlow returns the repository configuration: the HTTP handler,
// the batch worker, and the drain path.
func NewCtxFlow() *CtxFlow {
	return &CtxFlow{Roots: []string{
		"(*flexflow/internal/serve.Server).handleRun",
		"(*flexflow/internal/serve.Server).worker",
		"(*flexflow/internal/serve.Server).Shutdown",
	}}
}

func (*CtxFlow) Name() string { return "ctxflow" }
func (*CtxFlow) Doc() string {
	return "request-path channel ops sit in selects with a ctx.Done()/shutdown arm; context.Background/TODO only in package main"
}

// Run applies the background rule package-wide and the blocking-op
// rules over the call trees of the configured roots.
func (a *CtxFlow) Run(prog *Program) ([]Finding, error) {
	var findings []Finding
	for _, pkg := range prog.Pkgs {
		if pkg.Types.Name() == "main" {
			continue // a binary's main owns the root context
		}
		inspectFiles(pkg, func(_ *ast.File, n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fn := calleeFunc(pkg.Info, call); fn != nil {
				full := fn.FullName()
				if full == "context.Background" || full == "context.TODO" {
					findings = append(findings, Finding{
						ID:      "ctxflow/background",
						Pos:     prog.Fset.Position(call.Pos()),
						Message: fmt.Sprintf("%s mints a root context in a library package; derive from the caller's context (context.WithoutCancel to detach cancellation)", full),
					})
				}
			}
			return true
		})
	}

	reached, err := reachableFrom(prog, a.Roots)
	if err != nil {
		return nil, err
	}
	for _, rf := range reached {
		findings = append(findings, a.checkBlocking(prog, rf)...)
	}
	return findings, nil
}

// checkBlocking enforces the bare-op and no-cancel-arm rules over one
// reached function body (function literals included: they are part of
// the same request path).
func (a *CtxFlow) checkBlocking(prog *Program, rf reachedFunc) []Finding {
	var findings []Finding
	handled := map[ast.Node]bool{}
	ast.Inspect(rf.decl.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		markCommNodes(sel, handled)
		if !selectHasDefault(sel) && !selectHasCancelArm(sel) {
			findings = append(findings, Finding{
				ID:      "ctxflow/no-cancel-arm",
				Pos:     prog.Fset.Position(sel.Pos()),
				Message: fmt.Sprintf("select in %s (request path) has neither a default arm nor a ctx.Done()/shutdown arm; it can park forever", rf.fn.FullName()),
			})
		}
		return true
	})
	ast.Inspect(rf.decl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SendStmt:
			if !handled[x] {
				findings = append(findings, Finding{
					ID:      "ctxflow/bare-op",
					Pos:     prog.Fset.Position(x.Pos()),
					Message: fmt.Sprintf("blocking send on %s in %s (request path) outside a cancellable select", renderOp(x.Chan), rf.fn.FullName()),
				})
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW && !handled[x] {
				findings = append(findings, Finding{
					ID:      "ctxflow/bare-op",
					Pos:     prog.Fset.Position(x.Pos()),
					Message: fmt.Sprintf("blocking receive from %s in %s (request path) outside a cancellable select", renderOp(x.X), rf.fn.FullName()),
				})
			}
		}
		return true
	})
	return findings
}

func renderOp(e ast.Expr) string {
	if path := renderPath(e); path != "" {
		return path
	}
	return "a channel"
}
