// Package unitx is the unitcheck golden fixture: a miniature result
// record with a cycle axis, an event axis and a tariff, exercising the
// mixed-unit rule, the conversion-helper exemption and suppression.
package unitx

// Result mirrors the shape of the real per-layer record.
type Result struct {
	Cycles int64
	MACs   int64
	Loads  int64
	PEs    int
}

// Tariff mirrors the energy parameter table.
type Tariff struct {
	MAC float64
}

// IdleSlots is the declared conversion helper: its body may mix the
// cycle and event axes (it is the boundary), and its result carries
// the event unit.
func IdleSlots(r Result) int64 {
	return r.Cycles*int64(r.PEs) - r.MACs
}

// BadAdd mixes the cycle and event axes additively.
func BadAdd(r Result) int64 {
	return r.Cycles + r.MACs // want "mixes cycles with events"
}

// BadCompare compares across the axes.
func BadCompare(r Result) bool {
	return r.Cycles > r.MACs // want "mixes cycles with events"
}

// BadAccum mixes the axes through a compound assignment.
func BadAccum(r Result) Result {
	r.Loads += r.Cycles // want "mixes events with cycles"
	return r
}

// BadEnergy adds a raw event count to a picojoule subtotal.
func BadEnergy(r Result, t Tariff) float64 {
	return float64(r.MACs)*t.MAC + float64(r.Loads) // want "mixes picojoules with events"
}

// GoodBilling is the sanctioned form: count × tariff = energy, summed
// per axis, with the helper carrying cycles across to events.
func GoodBilling(r Result, t Tariff) float64 {
	busy := float64(r.MACs) * t.MAC
	idle := float64(IdleSlots(r)) * t.MAC
	return busy + idle
}

// GoodRatio divides freely: ratios are dimensionless.
func GoodRatio(r Result) float64 {
	return float64(r.MACs) / (float64(r.Cycles) * float64(r.PEs))
}

// GoodSameUnit adds within one axis.
func GoodSameUnit(r Result) int64 {
	return r.MACs + r.Loads
}

// GoodHelperUnit still type-checks the helper's result: events from
// the helper add to events.
func GoodHelperUnit(r Result) int64 {
	return IdleSlots(r) + r.Loads
}

// Suppressed demonstrates the reasoned-ignore workflow.
func Suppressed(r Result) int64 {
	//lint:ignore unitcheck/mixed fixture demonstrates the suppression workflow
	return r.Cycles - r.MACs
}
