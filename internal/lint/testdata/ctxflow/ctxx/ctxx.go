// Package ctxx is the ctxflow fixture: forged root contexts, and
// blocking channel ops on the request path without a cancellation
// arm.
package ctxx

import "context"

// Detach mints a root context in a library package.
func Detach() context.Context {
	return context.Background() // want "ctxflow/background"
}

// Todo is the other spelling of the same mistake.
func Todo() context.Context {
	return context.TODO() // want "ctxflow/background"
}

// Server's Handle* methods are the fixture's configured request-path
// roots.
type Server struct {
	jobs chan int
	done chan struct{}
}

// Handle is compliant: the blocking send sits in a select with a
// ctx.Done() arm.
func (s *Server) Handle(ctx context.Context, v int) error {
	select {
	case s.jobs <- v:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// HandleBare sends with no select at all.
func (s *Server) HandleBare(v int) {
	s.jobs <- v // want "ctxflow/bare-op"
}

// HandleNoCancel selects, but every arm is work — nothing can cancel.
func (s *Server) HandleNoCancel(v int) {
	select { // want "ctxflow/no-cancel-arm"
	case s.jobs <- v:
	case s.jobs <- v + 1:
	}
}

// HandleTry is compliant: the default arm makes it non-blocking.
func (s *Server) HandleTry(v int) bool {
	select {
	case s.jobs <- v:
		return true
	default:
		return false
	}
}

// HandleShutdownArm is compliant: a conventionally named shutdown
// channel is a cancellation arm.
func (s *Server) HandleShutdownArm(v int) {
	select {
	case s.jobs <- v:
	case <-s.done:
	}
}

// HandleNested reaches a bare receive through a helper: the contract
// follows the call graph, not just the root's own body.
func (s *Server) HandleNested() int {
	return s.pull()
}

func (s *Server) pull() int {
	return <-s.jobs // want "ctxflow/bare-op"
}

// Consume is compliant: ranging over a channel ends at close, whose
// single owner chanaudit certifies separately.
func (s *Server) Consume() int {
	total := 0
	for v := range s.jobs {
		total += v
	}
	return total
}
