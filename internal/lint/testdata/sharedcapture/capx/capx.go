// Package capx exercises the sharedcapture analyzer: the Good
// functions follow the per-index result-slot pattern, each Bad
// function escapes the invocation frame a different way.
package capx

import "flexflow/internal/lint/testdata/sharedcapture/schedx"

// Result mimics a merged result struct with per-index slots.
type Result struct{ Layers []int }

// GoodSlot writes each invocation's slot of a captured slice field.
func GoodSlot(n int) Result {
	res := Result{Layers: make([]int, n)}
	p := schedx.Pool{}
	_ = p.Map(n, func(i int) error {
		v := i * 2
		res.Layers[i] = v
		return nil
	})
	return res
}

// GoodDerived decomposes the flat index into grid coordinates — both
// locals derive from the index parameter, so the nested write is a
// slot write.
func GoodDerived(rows, cols int) [][]int {
	grid := make([][]int, rows)
	for i := range grid {
		grid[i] = make([]int, cols)
	}
	p := schedx.Pool{}
	_ = p.Map(rows*cols, func(idx int) error {
		a, b := idx/cols, idx%cols
		grid[a][b] = idx
		return nil
	})
	return grid
}

// BadNonLiteral hands the scheduler an opaque function value.
func BadNonLiteral(n int, fn func(int) error) error {
	p := schedx.Pool{}
	return p.Map(n, fn) // want "sharedcapture/non-literal"
}

// BadSum accumulates into a captured scalar.
func BadSum(n int) int {
	sum := 0
	p := schedx.Pool{}
	_ = p.Map(n, func(i int) error {
		sum += i // want "sharedcapture/captured-write"
		return nil
	})
	return sum
}

// BadMapWrite writes a captured map; distinct keys do not make
// concurrent map writes safe.
func BadMapWrite(n int) map[int]int {
	m := map[int]int{}
	p := schedx.Pool{}
	_ = p.Map(n, func(i int) error {
		m[i] = i // want "sharedcapture/map-write"
		return nil
	})
	return m
}

// BadFixedSlot writes a captured slice at an index that does not vary
// with the invocation.
func BadFixedSlot(n int, out []int) {
	p := schedx.Pool{}
	_ = p.Map(n, func(i int) error {
		out[0] = i // want "not derived from the closure's index parameter"
		return nil
	})
}

// BadField overwrites a field of a captured pointer.
func BadField(n int, r *Result) {
	p := schedx.Pool{}
	_ = p.Map(n, func(i int) error {
		r.Layers = nil // want "writes a field of captured r"
		return nil
	})
}

// BadPointer writes through a captured pointer.
func BadPointer(n int, x *int) {
	p := schedx.Pool{}
	_ = p.Map(n, func(i int) error {
		*x = i // want "through captured pointer"
		return nil
	})
}
