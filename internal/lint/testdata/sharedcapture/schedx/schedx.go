// Package schedx mimics the pipeline scheduler's fan-out entry point
// for the sharedcapture fixtures.
package schedx

// Pool mimics pipeline.Scheduler.
type Pool struct{ Workers int }

// Map mimics Scheduler.Map: fn runs concurrently above one worker.
func (p Pool) Map(n int, fn func(i int) error) error {
	for i := 0; i < n; i++ {
		if err := fn(i); err != nil {
			return err
		}
	}
	return nil
}
