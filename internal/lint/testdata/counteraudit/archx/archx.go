// Package archx is the result-record fixture for the counteraudit
// golden test: a miniature arch.LayerResult analogue.
package archx

// Result mimics arch.LayerResult: int64 fields are audited counters,
// everything else is configuration.
type Result struct {
	Name   string
	PEs    int
	Cycles int64
	MACs   int64
	Spills int64 // counted by the simulator, never billed
	Ghost  int64 // billed by the energy model, never counted
}
