// Package energyx is the energy-model fixture for the counteraudit
// golden test.
package energyx

import "flexflow/internal/lint/testdata/counteraudit/archx"

// LayerEnergy bills Cycles and MACs (fine), never reads Spills
// (reported in the simulator fixture) and reads Ghost, which no
// simulator produces.
func LayerEnergy(r archx.Result) float64 {
	e := float64(r.Cycles)*2.0 + float64(r.MACs)
	e += float64(r.Ghost) // want "charges Result\.Ghost but no simulator package ever writes it"
	return e
}
