// Package simx is the simulator fixture for the counteraudit golden
// test: it writes counters through every form the analyzer tracks.
package simx

import "flexflow/internal/lint/testdata/counteraudit/archx"

// Simulate writes Cycles (plain assignment), MACs (inc/dec),
// Spills (compound assignment) and a composite-literal record.
func Simulate() archx.Result {
	var r archx.Result
	r.Cycles = 10
	r.MACs++
	r.Spills += 4 // want "Result\.Spills is accumulated by the simulators but never read"
	other := archx.Result{Name: "x", Cycles: 5}
	r.Cycles += other.Cycles
	return r
}
