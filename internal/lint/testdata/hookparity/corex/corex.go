// Package corex is the wiring side of the hookparity golden fixture:
// it arms SiteArmed by name, SiteImplicit through the dedicated
// injector method, and installs the store's ReadHook.
package corex

import (
	"flexflow/internal/lint/testdata/hookparity/faultx"
	"flexflow/internal/lint/testdata/hookparity/memx"
)

// Simulate wires the observation surface the way a simulator would.
func Simulate(s *memx.Store, in *faultx.Injector) faultx.Site {
	s.ReadHook = func(addr int, v int16) int16 { return v }
	if in.MACZero(0) {
		return faultx.SiteArmed
	}
	return faultx.SiteArmed
}
