// Package memx is the component side of the hookparity golden
// fixture: a store with two hook points, one installed by the wiring
// package and one dead.
package memx

// Store is a word store with instrumentation hooks.
type Store struct {
	// ReadHook intercepts reads; the wiring package installs it.
	ReadHook func(addr int, v int16) int16

	// DropHook would intercept evictions, but nobody installs it.
	DropHook func(addr int) // want "hook field memx.DropHook is never installed"

	// Capacity is not func-typed, so it is not a hook point.
	Capacity int
}

// Read returns the stored word through the hook.
func (s *Store) Read(addr int) int16 {
	var v int16
	if s.ReadHook != nil {
		v = s.ReadHook(addr, v)
	}
	return v
}
