// Package faultx is the fault-model side of the hookparity golden
// fixture: a site enumeration and an injector with one dedicated
// arming method.
package faultx

// Site identifies an injectable structure.
type Site uint8

// The fixture's sites: Armed is named by the wiring package, Implicit
// is armed through Injector.MACZero, Unwired is armed by nobody, and
// Reserved carries a reasoned ignore.
const (
	SiteArmed Site = iota
	SiteImplicit
	SiteUnwired // want "fault site SiteUnwired is never armed"
	//lint:ignore hookparity/unwired-site reserved for the DMA model of a later PR
	SiteReserved
)

// Injector is the fixture's fault injector.
type Injector struct{}

// MACZero arms SiteImplicit without naming it (the dedicated-method
// wiring form).
func (in *Injector) MACZero(cycle int64) bool { return false }
