// Package energyx is the billing side of the hookparity golden
// fixture: a tariff table with one charged and one dead entry.
package energyx

// Tariff is the fixture's per-event charge table.
type Tariff struct {
	MAC  float64
	Dead float64 // want "tariff Tariff.Dead is never read by Bill"

	//lint:ignore hookparity/dead-tariff calibration pending; charged in a later PR
	Pending float64
}

// Bill charges the table against a MAC count.
func Bill(t Tariff, macs int64) float64 {
	return float64(macs) * t.MAC
}
