// Package brokenx is syntactically valid but does not type-check; the
// loader test pins that flexlint reports the errors with package
// context instead of silently degrading to syntax-only analysis.
package brokenx

// Busted assigns a number to a string and calls a missing function.
func Busted() string {
	var s string = 42
	return s + missing()
}
