// Package e is tracked with an empty allow-list; package a's import of
// it is forbidden but suppressed with a reasoned ignore.
package e

// Legacy is referenced by package a.
const Legacy = 3
