// Package b is a leaf of the layering golden fixture: its table row
// allows no module-local imports, and it has none.
package b

// Leaf is referenced by package a.
const Leaf = 1
