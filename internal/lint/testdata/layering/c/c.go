// Package c has no row in the fixture's layering table, so importing
// it is forbidden and the package itself is flagged as untracked.
package c // want "package internal/lint/testdata/layering/c has no row in the layering table"

// Orphan is referenced by package a.
const Orphan = 2
