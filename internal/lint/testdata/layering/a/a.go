// Package a exercises the layering rules: an allowed edge, a
// forbidden edge, and a forbidden edge suppressed with a reasoned
// ignore.
package a

import (
	"flexflow/internal/lint/testdata/layering/b"
	"flexflow/internal/lint/testdata/layering/c" // want "package internal/lint/testdata/layering/a may not import internal/lint/testdata/layering/c"
	//lint:ignore layering/forbidden historical edge being unwound
	"flexflow/internal/lint/testdata/layering/e"
)

// Sum ties the imports together.
const Sum = b.Leaf + c.Orphan + e.Legacy
