// Package chanx is the chanaudit fixture: parameter direction
// discipline, single-owner close, and cancellable sends to
// channel-typed fields.
package chanx

// Hub owns two channel fields.
type Hub struct {
	feed chan int
	out  chan int
}

// Run is feed's closing owner: its plain send drives its own
// protocol and is exempt.
func (h *Hub) Run(vs []int) {
	defer close(h.feed)
	for _, v := range vs {
		h.feed <- v
	}
}

// Offer sends to out under a shutdown arm — compliant.
func (h *Hub) Offer(v int, done <-chan struct{}) bool {
	select {
	case h.out <- v:
		return true
	case <-done:
		return false
	}
}

// Push sends to out with no cancellation path and is not its owner.
func (h *Hub) Push(v int) {
	h.out <- v // want "chanaudit/send-no-cancel"
}

// CloseOut is out's closing owner (first close site in source order).
func (h *Hub) CloseOut() { close(h.out) }

// CloseOutAgain is a second closer — a panic waiting for a race.
func (h *Hub) CloseOutAgain() {
	close(h.out) // want "chanaudit/multi-close"
}

// Sink only receives; the parameter must say so.
func Sink(in chan int) int { // want "chanaudit/direction"
	total := 0
	for v := range in {
		total += v
	}
	return total
}

// Feed only sends (closing counts as the send side's act).
func Feed(out chan int, vs []int) { // want "chanaudit/direction"
	defer close(out)
	for _, v := range vs {
		out <- v
	}
}

// Pump already declares both directions — nothing to claim.
func Pump(in <-chan int, out chan<- int) {
	for v := range in {
		out <- v
	}
}

// Handoff lets the channel escape as a value: no direction claim.
func Handoff(ch chan int) chan int { return ch }

// Mixed uses both directions: bidirectional is the honest type.
func Mixed(ch chan int) int {
	ch <- 1
	return <-ch
}
