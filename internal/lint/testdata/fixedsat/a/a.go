// Package a is the fixedsat golden fixture: raw two's-complement
// arithmetic on the saturating fixed-point types must be flagged
// everywhere outside internal/fixed.
package a

import "flexflow/internal/fixed"

// Constant expressions are folded and overflow-checked by the
// compiler, so they cannot wrap at run time and are not flagged.
const scale = fixed.One * 2

func Bad(w, v fixed.Word, acc fixed.Acc) fixed.Acc {
	x := w + v  // want "raw \+ on fixed\.Word"
	y := w * v  // want "raw \* on fixed\.Word"
	z := w - v  // want "raw - on fixed\.Word"
	s := w << 1 // want "raw << on fixed\.Word"
	acc += 1    // want "raw \+= on fixed\.Acc"
	w++         // want "raw \+\+ on fixed\.Word"
	_, _, _, _, _ = x, y, z, s, w
	return acc
}

func Good(w, v fixed.Word, acc fixed.Acc) fixed.Word {
	sum := fixed.Add(w, v)
	acc = fixed.MAC(acc, sum, v)
	acc = fixed.AddAcc(acc, w.Extend())
	i := int(w) + int(v) // plain integer arithmetic is fine
	_ = i
	if w > v { // comparisons cannot overflow
		return acc.Round()
	}
	return scale
}
