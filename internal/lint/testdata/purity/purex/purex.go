// Package purex exercises the purity analyzer: GoodModel certifies
// cleanly through every sanctioned pattern (out-param helper,
// higher-order pass-through, sentinel read, assumed field call), and
// each Bad* root violates exactly one rule.
package purex

import (
	"errors"
	"time"
)

var counter int

// ErrSat is an error-typed sentinel: reads of it are exempt from
// purity/global-read by the errors.Is convention.
var ErrSat = errors.New("purex: saturated")

// Engine mimics the core engine: a geometry field plus a
// function-typed chooser the walker cannot resolve statically.
type Engine struct {
	D       int
	Chooser func(int) int
}

// Result mimics a counter struct built through out-params.
type Result struct{ Cycles int }

// GoodModel is pure: it reads its receiver, lets a helper write
// through a pointer to a root-local, calls its assumed-pure chooser
// field, and hands a closure to a higher-order walker.
func (e *Engine) GoodModel(n int) Result {
	var r Result
	account(&r, n*e.D)
	if n < 0 {
		_ = ErrSat
	}
	c := e.Chooser(n)
	forEach(n, func(i int) { r.Cycles += i + c })
	return r
}

// account writes through its out-param — allowed for helpers, the
// pointee is a root-local.
func account(r *Result, c int) { r.Cycles += c }

// forEach calls its function-typed parameter — the higher-order
// pass-through the analyzer allows by construction.
func forEach(n int, fn func(int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}

// BadGlobalWrite mutates package-level state.
func BadGlobalWrite(n int) {
	counter = n // want "purity/global-write"
}

// BadGlobalRead depends on package-level state.
func BadGlobalRead() int {
	return counter // want "purity/global-read"
}

// BadMapRange folds over a map in iteration order.
func BadMapRange(m map[string]int) int {
	s := 0
	for _, v := range m { // want "purity/map-range"
		s += v
	}
	return s
}

// BadClock reads the wall clock.
func BadClock() time.Time {
	return time.Now() // want "purity/nondet-call"
}

// Namer is an interface the static walker cannot see through.
type Namer interface{ Name() string }

// BadDynamic calls an interface method with no AssumePure entry.
func BadDynamic(n Namer) string {
	return n.Name() // want "purity/dynamic-call"
}

// BadParamMutation writes directly through its own parameter.
func BadParamMutation(r *Result) { // want "purity/param-mutation"
	r.Cycles = 0
}

// BadEscapedMutation lets a pointer into its parameter escape local
// tracking before writing through it.
func BadEscapedMutation(r *Result) { // want "purity/param-mutation"
	p := &r.Cycles
	*p = 1
}

// BadHelperMutation mutates its parameter only transitively, through
// a helper's out-param write — the propagation the summaries exist
// to catch.
func BadHelperMutation(r *Result) { // want "purity/param-mutation"
	zero(r)
}

func zero(r *Result) { r.Cycles = 0 }

// BadChan performs a channel operation.
func BadChan(ch chan int) {
	ch <- 1 // want "purity/chan-op"
}

// BadGo spawns a goroutine.
func BadGo(fn func()) {
	go fn() // want "purity/chan-op"
}
