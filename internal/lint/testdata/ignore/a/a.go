// Package a exercises the //lint:ignore suppression mechanism: a
// directive on the offending line or on the line directly above it
// suppresses matching findings, but only when it gives a reason.
package a

import "os"

func Ignored(path string) {
	//lint:ignore errdrop/ignored cleanup of a scratch file is best-effort
	os.Remove(path)
	os.Remove(path) //lint:ignore errdrop bare analyzer name suppresses all its rules
	//lint:ignore errdrop/* an analyzer-id glob suppresses every matching rule
	os.Remove(path)
	//lint:ignore errdrop
	os.Remove(path) // want "os\.Remove includes an error" — an ignore without a reason is not honored
	os.Remove(path) // want "os\.Remove includes an error"
}
