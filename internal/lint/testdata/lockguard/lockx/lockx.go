// Package lockx is the lockguard fixture: annotation discipline,
// lock-set access checking, and the hold-across-blocking-op rule (the
// breaker-wedge bug class).
package lockx

import "sync"

// Store carries the canonical annotation on its mutex field.
type Store struct {
	mu    sync.Mutex // guards: n, items
	n     int
	items []int
	out   chan int
}

// Add accesses both guarded fields under the lock.
func (s *Store) Add(v int) {
	s.mu.Lock()
	s.n++
	s.items = append(s.items, v)
	s.mu.Unlock()
}

// Len holds the lock through a defer to function end.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Racy reads a guarded field with no lock at all.
func (s *Store) Racy() int {
	return s.n // want "lockguard/unguarded-access"
}

// AfterUnlock keeps reading once the lock is gone.
func (s *Store) AfterUnlock() int {
	s.mu.Lock()
	n := s.n
	s.mu.Unlock()
	return n + s.n // want "lockguard/unguarded-access"
}

// Spawn leaks a guarded access onto another goroutine: the literal
// body starts with an empty lock set.
func (s *Store) Spawn(done chan struct{}) {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		s.n++ // want "lockguard/unguarded-access"
		done <- struct{}{}
	}()
}

// Publish blocks on a channel send while holding the lock — the wedge.
func (s *Store) Publish() {
	s.mu.Lock()
	s.out <- s.n // want "lockguard/hold-blocking"
	s.mu.Unlock()
}

// Drain blocks on a receive while holding the lock.
func (s *Store) Drain(in chan int) {
	s.mu.Lock()
	v := <-in // want "lockguard/hold-blocking"
	s.n += v
	s.mu.Unlock()
}

// Park blocks on a select with no default arm while holding the lock.
func (s *Store) Park(stop chan struct{}) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want "lockguard/hold-blocking"
	case s.out <- s.n:
	case <-stop:
	}
}

// TryPublish is the compliant shape: the select's default arm makes
// the send non-blocking, so holding the lock across it is fine.
func (s *Store) TryPublish() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case s.out <- s.n:
	default:
	}
}

// Wedge calls a configured blocking entry point under the lock.
func (s *Store) Wedge(run func() error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return execBackend(run) // want "lockguard/hold-blocking"
}

// Safe drops the lock before the blocking call.
func (s *Store) Safe(run func() error) error {
	s.mu.Lock()
	n := s.n
	s.mu.Unlock()
	_ = n
	return execBackend(run)
}

// execBackend stands in for pipeline.Exec in the fixture config.
func execBackend(run func() error) error { return run() }

// RW exercises the read-lock side of an RWMutex annotation, declared
// in a doc comment above the field.
type RW struct {
	// guards: m
	mu sync.RWMutex
	m  map[string]int
}

// Get reads the guarded map under the read lock.
func (r *RW) Get(k string) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.m[k]
}

// Naked has no guards: annotation at all.
type Naked struct {
	mu sync.Mutex // want "lockguard/annotation"
	n  int
}

// Free uses `guards: none` for a lock protecting no sibling field.
type Free struct {
	mu sync.Mutex // guards: none
}

// Typo annotates a field that does not exist.
type Typo struct {
	// guards: count
	mu sync.Mutex // want "lockguard/unknown-field"
	n  int
}
