// Package apix is the apiguard golden fixture: a miniature facade
// with its own guard boundary, exercising direct and transitive guard
// reachability, the unguarded rule, both naked-error forms and
// suppression.
package apix

import (
	"errors"
	"fmt"
)

// ErrBad is a package-level sentinel: the sanctioned use of errors.New.
var ErrBad = errors.New("apix: bad input")

// guard is the fixture's recovery boundary.
func guard(f func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%w: %v", ErrBad, r)
		}
	}()
	return f()
}

// Direct passes through guard itself.
func Direct(x int) error {
	return guard(func() error {
		if x < 0 {
			return fmt.Errorf("%w: negative", ErrBad)
		}
		return nil
	})
}

// Transitive reaches guard through Direct.
func Transitive(x int) error {
	return Direct(x + 1)
}

// Unguarded returns an error without any path through guard.
func Unguarded(x int) error { // want "exported Unguarded returns an error without passing through guard"
	if x < 0 {
		return fmt.Errorf("%w: negative", ErrBad)
	}
	return nil
}

// Suppressed is unguarded but carries a reasoned ignore.
//
//lint:ignore apiguard/unguarded fixture demonstrates the suppression workflow
func Suppressed(x int) error {
	return nil
}

// NoError returns nothing fallible, so the guard contract does not
// apply.
func NoError(x int) int { return x + 1 }

// helper is unexported, so the guard contract does not apply either.
func helper() error { return nil }

// Naked builds errors a caller cannot match with errors.Is.
func Naked(x int) error {
	return guard(func() error {
		if x == 1 {
			return errors.New("boom") // want "errors.New inside a function body"
		}
		if x == 2 {
			return fmt.Errorf("bad value %d", x) // want "does not wrap a sentinel"
		}
		return nil
	})
}
