// Vendored code must never be selected by the loader's walk.
package v

// Marker would leak into the analysis if vendor were walked.
const Marker = "vendor"
