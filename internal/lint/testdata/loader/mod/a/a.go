// Package a imports a sibling so the test can prove module-local
// resolution works inside a nested fixture module.
package a

import "loaderx/b"

// Answer re-exports b's value through an import edge.
const Answer = b.Answer
