// Hidden directories must never be selected.
package cache

// Marker would leak into the analysis if .cache were walked.
const Marker = "hidden"
