// A package with only test files has no buildable Go files: the walk
// must pass it over, and naming it explicitly must fail loudly.
package testonly

const marker = "test-only"
