// Package loadermod is the root package of the loader fixture module.
package loadermod

// Marker identifies the module-root package in tests.
const Marker = "root"
