module loaderx

go 1.21
