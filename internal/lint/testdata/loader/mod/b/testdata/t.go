// This file lives under a nested testdata directory and must never be
// selected by the loader's walk.
package tdonly

// Marker would leak into the analysis if testdata were walked.
const Marker = "testdata"
