// Package b is the imported sibling.
package b

// Answer is read by package a.
const Answer = 42
