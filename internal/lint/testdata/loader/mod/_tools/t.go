// Underscore-prefixed directories must never be selected.
package tools

// Marker would leak into the analysis if _tools were walked.
const Marker = "underscore"
