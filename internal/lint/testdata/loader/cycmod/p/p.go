// Package p participates in a deliberate import cycle with q.
package p

import "cycx/q"

// V closes the cycle.
const V = q.V
