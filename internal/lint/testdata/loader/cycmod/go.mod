module cycx

go 1.21
