// Package q participates in a deliberate import cycle with p.
package q

import "cycx/p"

// V closes the cycle.
const V = p.V
