// Package hotx exercises the hotalloc analyzer: Busy holds every
// counted site kind at its exact budget, Hot exceeds its budget by
// one site, and Clean's budget overstates a body that no longer
// allocates.
package hotx

// Pair is heap-allocated when taken by address.
type Pair struct{ A int }

// box forces interface boxing of its concrete argument.
func box(v interface{}) { _ = v }

// Hot is a root whose budget (1) the body exceeds.
func Hot(n int) []int { // want "hotalloc/over-budget"
	out := make([]int, 0, n)
	out = append(out, n)
	return out
}

// Clean is a root whose budget (2) overstates reality — the
// allocations were removed but the ledger was not shrunk.
func Clean(n int) int { // want "hotalloc/stale-budget"
	return helper(n)
}

// helper is reachable from Clean; its single boxing site is budgeted.
func helper(n int) int {
	box(n)
	return n
}

// Busy carries one of every counted site kind — seven sites, budget
// seven, no finding.
func Busy(name string, n int) string {
	p := &Pair{A: n}
	xs := []int{n}
	m := map[string]int{}
	_ = m
	fn := func() { xs[0] = p.A }
	go fn()
	box(n)
	return name + "!"
}
