// Package a is the errdrop golden fixture: silently discarded error
// results must be flagged, while the documented exemptions stay quiet.
package a

import (
	"bytes"
	"fmt"
	"os"
	"strings"
)

func fallible() error { return nil }

func multi() (int, error) { return 0, nil }

func Drop(path string) {
	os.Remove(path) // want "os\.Remove includes an error"
	fallible()      // want "fallible includes an error"
	multi()         // want "multi includes an error"

	fmt.Println("ok")              // stdout output is best-effort
	fmt.Fprintf(os.Stderr, "no\n") // stderr likewise
	var b bytes.Buffer
	b.WriteString("x") // (*bytes.Buffer) errors are documented nil
	fmt.Fprintf(&b, "%d", 1)
	var sb strings.Builder
	fmt.Fprintln(&sb, "y")
	sb.WriteString("z")

	_ = fallible() // explicit blank assignment is a visible decision
	if err := os.Remove(path); err != nil {
		_ = err
	}
}

func DeferredDrop(path string) (err error) {
	f, cerr := os.Create(path)
	if cerr != nil {
		return cerr
	}
	defer f.Close() // want "deferred call to .*Close.* discards its error"
	defer func() {  // the sanctioned pattern: record the error
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	defer fmt.Println("done") // exempt writer, quiet
	return nil
}
