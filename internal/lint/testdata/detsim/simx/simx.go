// Package simx is the detsim golden fixture: nondeterminism sources
// in simulation code must be flagged.
package simx

import (
	"math/rand" // want "imports math/rand"
	"sort"
	"time"
)

// Nondet shows the three forbidden constructs.
func Nondet(counts map[string]int64) int64 {
	var total int64
	for _, v := range counts { // want "range over a map"
		total += v
	}
	start := time.Now() // want "time\.Now"
	_ = start
	return total + int64(rand.Intn(3))
}

// SortedKeys shows the sanctioned pattern: collecting keys for
// sorting is order-independent, which the suppression records.
func SortedKeys(counts map[string]int64) []string {
	keys := make([]string, 0, len(counts))
	//lint:ignore detsim/map-range keys are sorted before any use
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
