// Package leakx is the goleak fixture: every go statement needs join
// evidence — a waitgroup Add/Done pair or a channel the spawner
// receives from.
package leakx

import "sync"

// Forget spawns a dynamic function value with no evidence at all.
func Forget(work func()) {
	go work() // want "goleak/unjoined"
}

// ForgetLit spawns a literal nobody ever joins.
func ForgetLit(n *int) {
	go func() { *n++ }() // want "goleak/unjoined"
}

// Joined is the canonical waitgroup shape: Add before the spawn, Done
// in the body, Wait after.
func Joined(items []int) int {
	var wg sync.WaitGroup
	total := make([]int, len(items))
	wg.Add(len(items))
	for i, it := range items {
		go func(i, it int) {
			defer wg.Done()
			total[i] = it * it
		}(i, it)
	}
	wg.Wait()
	n := 0
	for _, t := range total {
		n += t
	}
	return n
}

// Pool spawns a named method; the evidence resolves through the
// callee's declaration.
type Pool struct {
	wg   sync.WaitGroup
	feed chan int
}

// Start registers the workers before spawning them; run's Done is the
// other half of the pair.
func (p *Pool) Start(workers int) {
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.run()
	}
}

func (p *Pool) run() {
	defer p.wg.Done()
	for range p.feed {
	}
}

// DoneChannel joins through a channel: the body's send is received by
// the spawner.
func DoneChannel(f func() error) error {
	errc := make(chan error, 1)
	go func() { errc <- f() }()
	return <-errc
}

// AddInside registers from inside the spawned body — a race, not
// evidence: the spawner can reach Wait before Add runs.
func AddInside() {
	var wg sync.WaitGroup
	go func() { // want "goleak/unjoined"
		wg.Add(1)
		defer wg.Done()
	}()
	wg.Wait()
}
