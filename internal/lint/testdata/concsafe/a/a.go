// Package a is the concsafe golden fixture: copied sync primitives
// and goroutine-local WaitGroup.Add must be flagged.
package a

import "sync"

// Guarded embeds a mutex, so any by-value copy of it is a dead lock.
type Guarded struct {
	mu sync.Mutex
	n  int
}

func (g *Guarded) Inc() { // pointer receiver: fine
	g.mu.Lock()
	g.n++
	g.mu.Unlock()
}

func (g Guarded) Get() int { // want "receiver copies"
	return g.n
}

func ByValue(g Guarded) int { // want "parameter copies"
	return g.n
}

func ByPointer(g *Guarded) int { return g.n }

func Copies(list []Guarded, g *Guarded) {
	cp := *g // want "assignment copies"
	_ = cp
	for _, v := range list { // want "range clause copies"
		_ = v
	}
	for i := range list { // index-only range copies nothing
		_ = i
	}
	fresh := Guarded{} // composite literals are fresh values, not copies
	_ = fresh.n
}

func Spawn(items []int) int {
	var wg sync.WaitGroup
	var mu sync.Mutex
	total := 0
	for _, it := range items {
		go func(it int) {
			wg.Add(1) // want "WaitGroup\.Add inside the spawned goroutine"
			defer wg.Done()
			mu.Lock()
			total += it
			mu.Unlock()
		}(it)
	}
	wg.Wait()
	return total
}

func SpawnRight(items []int) int {
	var wg sync.WaitGroup
	var mu sync.Mutex
	total := 0
	for _, it := range items {
		wg.Add(1) // Add before the go statement: correct
		go func(it int) {
			defer wg.Done()
			mu.Lock()
			total += it
			mu.Unlock()
		}(it)
	}
	wg.Wait()
	return total
}
