package lint

// goleak certifies goroutine lifetimes: every `go` statement must
// carry join evidence, so no goroutine outlives the structure that
// spawned it (the static twin of the runtime
// TestNoGoroutineLeakAfterClose check in internal/serve).
//
// Accepted evidence, resolved syntactically against the spawned body
// (a function literal, or the declaration of a statically resolved
// module-local callee):
//
//   - waitgroup: some wg.Add(...) call textually precedes the go
//     statement in the spawning function, and the spawned body calls
//     Done() on a waitgroup of the same name (concsafe separately
//     enforces Add-before-spawn placement).
//   - channel: the spawned body sends on or closes a channel that the
//     spawning function receives from (directly, in a select arm, or
//     by ranging) outside the spawned body itself.
//
// A `go` statement with neither is goleak/unjoined: fire-and-forget
// concurrency, invisible to every drain path.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// GoLeak is the goroutine-lifetime analyzer. It has no configuration:
// the join-evidence contract is universal.
type GoLeak struct{}

// NewGoLeak returns the analyzer.
func NewGoLeak() *GoLeak { return &GoLeak{} }

func (*GoLeak) Name() string { return "goleak" }
func (*GoLeak) Doc() string {
	return "every go statement has join evidence (waitgroup Add/Done or a joined channel); no fire-and-forget goroutines"
}

// goSite is one go statement and the evidence resolved for it.
type goSite struct {
	enclosing *types.Func // declared function containing the statement
	spawns    string      // callee FullName, or "func literal"
	join      string      // "waitgroup X", "channel X", or "none"
	pos       token.Pos
}

// Run reports every go statement without join evidence.
func (a *GoLeak) Run(prog *Program) ([]Finding, error) {
	sites, err := a.sites(prog)
	if err != nil {
		return nil, err
	}
	var findings []Finding
	for _, site := range sites {
		if site.join != "none" {
			continue
		}
		findings = append(findings, Finding{
			ID:  "goleak/unjoined",
			Pos: prog.Fset.Position(site.pos),
			Message: fmt.Sprintf("go statement in %s spawns %s with no join evidence (no waitgroup Add/Done pair, no joined channel): fire-and-forget goroutine",
				site.enclosing.FullName(), site.spawns),
		})
	}
	return findings, nil
}

// Inventory returns the goroutine table for the concurrency manifest.
func (a *GoLeak) Inventory(prog *Program) ([]GoroutineEntry, error) {
	sites, err := a.sites(prog)
	if err != nil {
		return nil, err
	}
	var out []GoroutineEntry
	for _, site := range sites {
		out = append(out, GoroutineEntry{
			Func:   site.enclosing.FullName(),
			Spawns: site.spawns,
			Join:   site.join,
		})
	}
	return out, nil
}

// sites collects every go statement of every analyzed package with
// its resolved evidence.
func (a *GoLeak) sites(prog *Program) ([]goSite, error) {
	var sites []goSite
	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			for _, d := range file.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				var err error
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					gs, ok := n.(*ast.GoStmt)
					if !ok || err != nil {
						return err == nil
					}
					site := goSite{enclosing: fn, pos: gs.Pos()}
					var spawnedBody *ast.BlockStmt
					var spawnedInfo *types.Info
					if lit, ok := gs.Call.Fun.(*ast.FuncLit); ok {
						site.spawns = "func literal"
						spawnedBody = lit.Body
						spawnedInfo = pkg.Info
					} else if callee := calleeFunc(pkg.Info, gs.Call); callee != nil {
						site.spawns = callee.FullName()
						spawnedBody, spawnedInfo, err = spawnedDecl(prog, callee)
						if err != nil {
							return false
						}
					} else {
						site.spawns = "<dynamic>"
					}
					site.join = joinEvidence(pkg, fd.Body, gs, spawnedBody, spawnedInfo)
					sites = append(sites, site)
					return true
				})
				if err != nil {
					return nil, err
				}
			}
		}
	}
	return sites, nil
}

// spawnedDecl resolves a statically called module-local function's
// body for evidence scanning.
func spawnedDecl(prog *Program, fn *types.Func) (*ast.BlockStmt, *types.Info, error) {
	if fn.Pkg() == nil || !prog.IsModuleLocal(fn.Pkg().Path()) {
		return nil, nil, nil
	}
	pkg, err := prog.Package(fn.Pkg().Path())
	if err != nil {
		return nil, nil, err
	}
	decl := funcDecls(pkg)[types.Object(fn)]
	if decl == nil || decl.Body == nil {
		return nil, nil, nil
	}
	return decl.Body, pkg.Info, nil
}

// joinEvidence resolves the strongest join evidence for one go
// statement: a waitgroup pair first, then a joined channel.
func joinEvidence(pkg *Package, enclosing *ast.BlockStmt, gs *ast.GoStmt, spawned *ast.BlockStmt, spawnedInfo *types.Info) string {
	if spawned == nil {
		return "none"
	}
	// Waitgroup evidence: Add before the spawn, Done in the body.
	adds := map[string]bool{}
	ast.Inspect(enclosing, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() >= gs.Pos() {
			return true
		}
		if name := waitGroupCall(pkg.Info, call, "Add"); name != "" {
			adds[name] = true
		}
		return true
	})
	var joined string
	ast.Inspect(spawned, func(n ast.Node) bool {
		if joined != "" {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if name := waitGroupCall(spawnedInfo, call, "Done"); name != "" && adds[name] {
				joined = "waitgroup " + name
			}
		}
		return true
	})
	if joined != "" {
		return joined
	}

	// Channel evidence: the body sends/closes what the spawner joins.
	sent := map[string]bool{}
	ast.Inspect(spawned, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SendStmt:
			if name := lastComponent(renderPath(x.Chan)); name != "" {
				sent[name] = true
			}
		case *ast.CallExpr:
			if id, ok := unparen(x.Fun).(*ast.Ident); ok && id.Name == "close" && len(x.Args) == 1 {
				if name := lastComponent(renderPath(x.Args[0])); name != "" {
					sent[name] = true
				}
			}
		}
		return true
	})
	ast.Inspect(enclosing, func(n ast.Node) bool {
		if joined != "" {
			return false
		}
		// The spawned body's own receives are not a join for itself.
		if n != nil && n.Pos() >= gs.Pos() && n.End() <= gs.End() {
			return n == gs || n == gs.Call // descend only past the go statement shell
		}
		switch x := n.(type) {
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				if name := lastComponent(renderPath(x.X)); name != "" && sent[name] {
					joined = "channel " + name
				}
			}
		case *ast.RangeStmt:
			if chanType(pkg.Info.TypeOf(x.X)) != nil {
				if name := lastComponent(renderPath(x.X)); name != "" && sent[name] {
					joined = "channel " + name
				}
			}
		}
		return true
	})
	if joined != "" {
		return joined
	}
	return "none"
}

// waitGroupCall returns the rendered-base last component of a
// wg.Add/Done call ("s.workWG.Add(1)" → "workWG"), or "".
func waitGroupCall(info *types.Info, call *ast.CallExpr, method string) string {
	if info == nil {
		return ""
	}
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return ""
	}
	if !isWaitGroupType(info.TypeOf(sel.X)) {
		return ""
	}
	return lastComponent(renderPath(sel.X))
}
