package lint

// Shared machinery for the concurrency-certification analyzers
// (lockguard, ctxflow, goleak, chanaudit) plus the canonical
// conc_manifest.json certificate they jointly emit: the lock →
// guarded-field map, the goroutine inventory with join evidence, and
// the channel inventory with its inferred closer. The committed copy
// under results/ is byte-pinned by a repo test and regenerated+diffed
// in CI, like the purity and allocation certificates.

import (
	"encoding/json"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// renderPath renders a plain identifier/selector chain ("s.mu",
// "b.breaker.mu") or "" when the expression is anything richer (an
// index, a call result, …) that the syntactic lock-set and join
// analyses cannot track.
func renderPath(e ast.Expr) string {
	switch x := unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		base := renderPath(x.X)
		if base == "" {
			return ""
		}
		return base + "." + x.Sel.Name
	}
	return ""
}

// lastComponent returns the final segment of a rendered path
// ("s.workWG" → "workWG"), the name-level identity the join-evidence
// matching keys on.
func lastComponent(path string) string {
	if i := strings.LastIndexByte(path, '.'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// namedSyncType reports whether t (possibly behind a pointer) is the
// named sync type, e.g. namedSyncType(t, "Mutex").
func namedSyncType(t types.Type, names ...string) bool {
	if t == nil {
		return false
	}
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	for _, n := range names {
		if obj.Name() == n {
			return true
		}
	}
	return false
}

func isMutexType(t types.Type) bool     { return namedSyncType(t, "Mutex", "RWMutex") }
func isWaitGroupType(t types.Type) bool { return namedSyncType(t, "WaitGroup") }

// chanType returns the channel type of an expression's type, or nil.
func chanType(t types.Type) *types.Chan {
	if t == nil {
		return nil
	}
	ch, _ := t.Underlying().(*types.Chan)
	return ch
}

// reachedFunc is one module-local function reached from a configured
// root by the static call graph.
type reachedFunc struct {
	fn   *types.Func
	decl *ast.FuncDecl
	pkg  *Package
}

// reachableFrom walks the static call graph (resolved calls only;
// interface dispatch and function values are not expanded) from the
// named roots and returns every module-local function declaration
// reached. Roots configured for another module are skipped, so the
// repository defaults stay inert over fixture trees.
func reachableFrom(prog *Program, roots []string) ([]reachedFunc, error) {
	var queue []*types.Func
	for _, full := range roots {
		if !prog.IsModuleLocal(fullNamePkgPath(full)) {
			continue
		}
		fn, err := resolveFullName(prog, full)
		if err != nil {
			return nil, err
		}
		queue = append(queue, fn)
	}
	seen := map[*types.Func]bool{}
	declIdx := map[*Package]map[types.Object]*ast.FuncDecl{}
	var out []reachedFunc
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		if seen[fn] {
			continue
		}
		seen[fn] = true
		if fn.Pkg() == nil || !prog.IsModuleLocal(fn.Pkg().Path()) {
			continue
		}
		pkg, err := prog.Package(fn.Pkg().Path())
		if err != nil {
			return nil, err
		}
		idx := declIdx[pkg]
		if idx == nil {
			idx = funcDecls(pkg)
			declIdx[pkg] = idx
		}
		decl := idx[fn]
		if decl == nil || decl.Body == nil {
			continue // interface method or bodyless declaration
		}
		out = append(out, reachedFunc{fn: fn, decl: decl, pkg: pkg})
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if callee := calleeFunc(pkg.Info, call); callee != nil && !seen[callee] {
					queue = append(queue, callee)
				}
			}
			return true
		})
	}
	return out, nil
}

// cancelNameRE matches channel names that conventionally carry a
// shutdown/cancellation signal; a receive from one counts as a select
// cancel arm.
var cancelNameRE = regexp.MustCompile(`(?i)(done|stop|quit|shut|cancel|close|ctx)`)

// selectHasDefault reports whether a select is non-blocking.
func selectHasDefault(sel *ast.SelectStmt) bool {
	for _, clause := range sel.Body.List {
		if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// selectHasCancelArm reports whether any case receives from a
// ctx.Done()-style call or a conventionally named shutdown channel.
func selectHasCancelArm(sel *ast.SelectStmt) bool {
	for _, clause := range sel.Body.List {
		cc, ok := clause.(*ast.CommClause)
		if !ok || cc.Comm == nil {
			continue
		}
		var recv ast.Expr
		switch comm := cc.Comm.(type) {
		case *ast.ExprStmt:
			if u, ok := unparen(comm.X).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				recv = u.X
			}
		case *ast.AssignStmt:
			if len(comm.Rhs) == 1 {
				if u, ok := unparen(comm.Rhs[0]).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
					recv = u.X
				}
			}
		}
		if recv == nil {
			continue
		}
		if call, ok := unparen(recv).(*ast.CallExpr); ok {
			if s, ok := unparen(call.Fun).(*ast.SelectorExpr); ok && s.Sel.Name == "Done" {
				return true
			}
			continue
		}
		if cancelNameRE.MatchString(lastComponent(renderPath(recv))) {
			return true
		}
	}
	return false
}

// markCommNodes records every node inside a select's communication
// clauses, so the bare-op scans know those sends/receives are already
// governed by the select's own verdict.
func markCommNodes(sel *ast.SelectStmt, handled map[ast.Node]bool) {
	for _, clause := range sel.Body.List {
		cc, ok := clause.(*ast.CommClause)
		if !ok || cc.Comm == nil {
			continue
		}
		ast.Inspect(cc.Comm, func(n ast.Node) bool {
			if n != nil {
				handled[n] = true
			}
			return true
		})
	}
}

// ConcManifest is the concurrency-contract certificate
// (results/conc_manifest.json): every annotated lock with its guarded
// fields, every go statement with its join evidence, and every
// channel-typed struct field with its single inferred closer.
type ConcManifest struct {
	Schema     int              `json:"schema"`
	Module     string           `json:"module"`
	Locks      []LockEntry      `json:"locks"`
	Goroutines []GoroutineEntry `json:"goroutines"`
	Channels   []ChannelEntry   `json:"channels"`
}

// LockEntry is one annotated mutex field and its guarded siblings.
type LockEntry struct {
	Lock   string   `json:"lock"` // "pkg/path.Type.field"
	Guards []string `json:"guards"`
}

// GoroutineEntry is one go statement: the declared function it occurs
// in, what it spawns, and the join evidence goleak accepted.
type GoroutineEntry struct {
	Func   string `json:"func"`
	Spawns string `json:"spawns"`
	Join   string `json:"join"`
}

// ChannelEntry is one channel-typed struct field with its element
// type, declared direction, and single closing function ("none" for
// channels that are never closed, such as buffered reply slots).
type ChannelEntry struct {
	Channel string `json:"channel"` // "pkg/path.Type.field"
	Elem    string `json:"elem"`
	Dir     string `json:"dir"`
	Closer  string `json:"closer"`
}

// Encode renders the manifest in its canonical committed form:
// two-space-indented JSON with a trailing newline, byte-reproducible
// between the pin test and cmd/flexlint -conc-manifest.
func (m *ConcManifest) Encode() []byte {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil { // a struct of strings and slices cannot fail to marshal
		panic(err)
	}
	return append(b, '\n')
}

// BuildConcManifest assembles the concurrency certificate from the
// three inventory passes. Like the purity manifest, it records the
// code as analyzed, not as triaged: findings suppressed with
// //lint:ignore still shape the manifest.
func BuildConcManifest(prog *Program) (*ConcManifest, error) {
	m := &ConcManifest{Schema: 1, Module: prog.ModPath}
	locks, err := NewLockGuard().Locks(prog)
	if err != nil {
		return nil, err
	}
	m.Locks = locks
	goroutines, err := NewGoLeak().Inventory(prog)
	if err != nil {
		return nil, err
	}
	m.Goroutines = goroutines
	channels, err := NewChanAudit().Channels(prog)
	if err != nil {
		return nil, err
	}
	m.Channels = channels
	sort.Slice(m.Locks, func(i, j int) bool { return m.Locks[i].Lock < m.Locks[j].Lock })
	sort.Slice(m.Goroutines, func(i, j int) bool {
		a, b := m.Goroutines[i], m.Goroutines[j]
		if a.Func != b.Func {
			return a.Func < b.Func
		}
		if a.Spawns != b.Spawns {
			return a.Spawns < b.Spawns
		}
		return a.Join < b.Join
	})
	sort.Slice(m.Channels, func(i, j int) bool { return m.Channels[i].Channel < m.Channels[j].Channel })
	return m, nil
}
