package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Units of the simulator/energy boundary. UnitPlain marks known
// dimensionless scale factors (literals, ratios, configuration fields
// such as a PE count); the empty string is "unknown" — a variable the
// expression-local analysis cannot see through — and never constrains
// an expression.
const (
	UnitCycles = "cycles"
	UnitEvents = "events"
	UnitPJ     = "picojoules"
	UnitPlain  = "plain"
)

// UnitCheck enforces named-unit discipline across the sim/energy
// boundary: cycle counters, event counters and picojoule charges are
// all plain int64/float64 to the compiler, so nothing stops code from
// adding a cycle count to an event count — the exact bug class that
// silently corrupts the paper's energy identity (energy = Σ events ×
// pJ/event, leakage = cycles × mW). The analyzer assigns units to
// expressions from a table of well-known fields and methods and flags
// additive arithmetic and comparisons whose operands carry different
// tracked units:
//
//   - unitcheck/mixed: a +, -, +=, -= or comparison whose two sides
//     carry different tracked units with no conversion helper between
//     them.
//
// Multiplication is never flagged: count × charge = energy is the
// sanctioned billing form (the product takes the picojoule unit), and
// scaling a tracked quantity by a plain factor keeps its unit.
// Division always yields a plain ratio (utilization, GOPS). Units
// propagate through float64/int64 conversions and parentheses but not
// through variables — the check is expression-local by design, so it
// pins the boundary without a dataflow engine. Declared conversion
// helpers (Funcs entries, e.g. LayerResult.IdleSlots, which turns
// cycle×PE slots into billable idle events) give their result the
// mapped unit and their bodies are exempt.
type UnitCheck struct {
	// Fields maps "pkgpath.Type.Field" to a unit.
	Fields map[string]string
	// Funcs maps types.Func.FullName() strings — functions, methods,
	// conversion helpers — to the unit of their result.
	Funcs map[string]string
	// Exempt lists FullNames of conversion helpers whose bodies may mix
	// units (they are the boundary).
	Exempt []string
}

// NewUnitCheck returns the analyzer configured for this repository:
// the arch.LayerResult counter record, the sim clock, and the energy
// model's tariff table and bill.
func NewUnitCheck() *UnitCheck {
	const (
		archLR = "flexflow/internal/arch.LayerResult"
		params = "flexflow/internal/energy.Params"
		brk    = "flexflow/internal/energy.Breakdown"
	)
	fields := map[string]string{
		archLR + ".Cycles": UnitCycles,
		archLR + ".PEs":    UnitPlain,
	}
	for _, f := range []string{"MACs", "NeuronLoads", "NeuronStores", "KernelLoads",
		"LocalReads", "LocalWrites", "InterPEMoves", "DRAMReads", "DRAMWrites"} {
		fields[archLR+"."+f] = UnitEvents
	}
	for _, f := range []string{"MAC", "LocalRead", "LocalWrite", "BufRead", "BufWrite",
		"BusBase", "BusPerEdge", "InterPE", "DRAM", "TreeBase", "TreeAmort",
		"IdlePE", "LeakPerPE", "LeakBuf"} {
		fields[params+"."+f] = UnitPJ
	}
	for _, f := range []string{"Compute", "NeuronIn", "NeuronOut", "KernelIn",
		"Interconnect", "Leakage", "DRAM"} {
		fields[brk+"."+f] = UnitPJ
	}
	return &UnitCheck{
		Fields: fields,
		Funcs: map[string]string{
			"(flexflow/internal/arch.LayerResult).IdleSlots": UnitEvents,
			"(flexflow/internal/arch.RunResult).Cycles":      UnitCycles,
			"(flexflow/internal/arch.RunResult).MACs":        UnitEvents,
			"(*flexflow/internal/sim.Clock).Cycle":           UnitCycles,
			"(flexflow/internal/energy.Breakdown).ChipPJ":    UnitPJ,
			"(flexflow/internal/energy.Breakdown).TotalPJ":   UnitPJ,
		},
		Exempt: []string{
			"(flexflow/internal/arch.LayerResult).IdleSlots",
		},
	}
}

func (*UnitCheck) Name() string { return "unitcheck" }
func (*UnitCheck) Doc() string {
	return "cycle counters, event counters and picojoule values must not mix in additive arithmetic without a conversion helper"
}

func (a *UnitCheck) Run(prog *Program) ([]Finding, error) {
	exempt := map[string]bool{}
	for _, name := range a.Exempt {
		exempt[name] = true
	}
	var out []Finding
	for _, pkg := range prog.Pkgs {
		info := pkg.Info
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fn, ok := info.Defs[fd.Name].(*types.Func); ok && exempt[fn.FullName()] {
					continue
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					switch x := n.(type) {
					case *ast.BinaryExpr:
						switch x.Op {
						case token.ADD, token.SUB, token.LSS, token.LEQ,
							token.GTR, token.GEQ, token.EQL, token.NEQ:
							a.check(prog, info, x.OpPos, x.Op, x.X, x.Y, &out)
						}
					case *ast.AssignStmt:
						if (x.Tok == token.ADD_ASSIGN || x.Tok == token.SUB_ASSIGN) &&
							len(x.Lhs) == 1 && len(x.Rhs) == 1 {
							a.check(prog, info, x.TokPos, x.Tok, x.Lhs[0], x.Rhs[0], &out)
						}
					}
					return true
				})
			}
		}
	}
	return out, nil
}

func tracked(u string) bool {
	return u == UnitCycles || u == UnitEvents || u == UnitPJ
}

func (a *UnitCheck) check(prog *Program, info *types.Info, pos token.Pos, op token.Token, l, r ast.Expr, out *[]Finding) {
	lu, ru := a.unitOf(info, l), a.unitOf(info, r)
	if !tracked(lu) || !tracked(ru) || lu == ru {
		return
	}
	*out = append(*out, Finding{
		ID:  "unitcheck/mixed",
		Pos: prog.Fset.Position(pos),
		Message: fmt.Sprintf("%q mixes %s with %s: convert through a declared helper instead of raw arithmetic",
			op, lu, ru),
	})
}

// unitOf derives the unit of an expression, expression-locally.
func (a *UnitCheck) unitOf(info *types.Info, e ast.Expr) string {
	switch x := unparen(e).(type) {
	case *ast.SelectorExpr:
		return a.Fields[qualifiedField(info, x)]
	case *ast.CallExpr:
		fn := unparen(x.Fun)
		// A type conversion — float64(r.Cycles) — preserves the unit.
		if tv, ok := info.Types[fn]; ok && tv.IsType() && len(x.Args) == 1 {
			return a.unitOf(info, x.Args[0])
		}
		if f := calleeObj(info, fn); f != nil {
			return a.Funcs[f.FullName()]
		}
	case *ast.UnaryExpr:
		if x.Op == token.SUB || x.Op == token.ADD {
			return a.unitOf(info, x.X)
		}
	case *ast.BasicLit:
		return UnitPlain
	case *ast.BinaryExpr:
		lu, ru := a.unitOf(info, x.X), a.unitOf(info, x.Y)
		switch x.Op {
		case token.ADD, token.SUB:
			if tracked(lu) {
				return lu
			}
			if tracked(ru) {
				return ru
			}
			if lu == UnitPlain && ru == UnitPlain {
				return UnitPlain
			}
		case token.MUL:
			// count × tariff = energy; plain scaling keeps the unit;
			// a factor of unknown unit poisons the product (except for
			// picojoules, which absorb any factor: leakage legitimately
			// bills mW × cycles at 1 GHz).
			if lu == UnitPJ || ru == UnitPJ {
				return UnitPJ
			}
			switch {
			case tracked(lu) && ru == UnitPlain:
				return lu
			case tracked(ru) && lu == UnitPlain:
				return ru
			case lu == UnitPlain && ru == UnitPlain:
				return UnitPlain
			}
		case token.QUO:
			// Ratios are dimensionless: utilization, GOPS, averages.
			return UnitPlain
		}
	}
	return ""
}

// qualifiedField returns "pkgpath.Type.Field" for a field selection on
// a named struct type, else "".
func qualifiedField(info *types.Info, sel *ast.SelectorExpr) string {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return ""
	}
	recv := s.Recv()
	if p, ok := recv.Underlying().(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := types.Unalias(recv).(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + s.Obj().Name()
}

// calleeObj resolves a call's callee to its function object, through a
// plain identifier or a selection.
func calleeObj(info *types.Info, fn ast.Expr) *types.Func {
	switch f := fn.(type) {
	case *ast.Ident:
		if obj, ok := info.Uses[f].(*types.Func); ok {
			return obj
		}
	case *ast.SelectorExpr:
		if obj, ok := info.Uses[f.Sel].(*types.Func); ok {
			return obj
		}
	}
	return nil
}
