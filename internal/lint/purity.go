package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Purity certifies that a configured set of root functions — the
// engines' analytic Model methods and the arch cost helpers — are
// deterministic functions of their explicit inputs (receiver and
// arguments). The certificate is what makes memoization and an
// analytic fast path sound: a certified root may be called
// concurrently, reordered, cached or replayed without changing any
// observable result.
//
// The analysis walks the static module-local call graph from each
// root and rejects, anywhere in the tree:
//
//   - purity/global-write: an assignment, ++/--, or escaping
//     address-of targeting a package-level variable.
//   - purity/global-read: a read of a package-level variable.
//     Error-typed sentinels (errors.New at package scope, the
//     errors.Is convention) are exempt: the repository treats them as
//     immutable.
//   - purity/map-range: ranging over a map — iteration order would
//     leak runtime nondeterminism into the result.
//   - purity/nondet-call: a call into a package outside the
//     deterministic stdlib allowlist (time, math/rand, os, io, sync …).
//   - purity/dynamic-call: a call whose target the static walker
//     cannot resolve (interface method, function-typed field or
//     stored function value) and that is not vouched for in
//     AssumePure.
//   - purity/param-mutation: the root mutates state reachable from
//     its receiver or parameters. Helpers may freely write through
//     pointers handed to them (the out-parameter pattern): mutation
//     summaries propagate call-by-call, and only writes that reach a
//     root's own inputs make the root impure.
//   - purity/chan-op: channel sends/receives, select, or go
//     statements — concurrency effects are never pure.
//
// Two higher-order escapes are allowed by construction rather than
// assumption: calling a function-typed parameter (every concrete
// value passed at an analyzed call site is itself analyzed where it
// is written, as function literals are scanned inline in their
// enclosing function), and calling a local variable that is directly
// bound to a function literal.
//
// panic is allowed: the certificate covers the value returned on the
// non-panicking path, and the repository's facade converts escaped
// panics to errors at its guard boundary.
type Purity struct {
	// Roots are the certified functions, as go/types FullName strings:
	// "(*flexflow/internal/core.Engine).Model" or
	// "flexflow/internal/arch.ChooseFactors".
	Roots []string
	// AssumePure lists dynamic call targets taken as pure without
	// analysis, each discharged by certifying every concrete value the
	// repository installs (typically by listing the producing function
	// as a root). Entries name interface methods
	// ("(flexflow/internal/arch.Engine).Model") or function-typed
	// struct fields ("flexflow/internal/core.Engine.Chooser").
	AssumePure []string
}

// NewPurity returns the analyzer configured for this repository: the
// five engines' Model methods, their LayerCacheKey canonical-key
// builders (the memoization layer may only key on deterministic
// state), the arch occupancy/cost helpers the models are built from,
// and the compiler's chooser factory. The one
// assumption — the FlexFlow engine's Chooser field — is discharged by
// certifying (*compiler.Program).Chooser, the only producer the
// repository wires in (the default is arch.ChooseFactors, also a
// root).
func NewPurity() *Purity {
	return &Purity{
		Roots: []string{
			"(*flexflow/internal/core.Engine).Model",
			"(*flexflow/internal/mapping2d.Engine).Model",
			"(*flexflow/internal/rowstat.Engine).Model",
			"(*flexflow/internal/systolic.Engine).Model",
			"(*flexflow/internal/tiling.Engine).Model",
			"(*flexflow/internal/mapping.Engine).Model",
			"(*flexflow/internal/core.Engine).LayerCacheKey",
			"(*flexflow/internal/mapping.Engine).LayerCacheKey",
			"(*flexflow/internal/mapping2d.Engine).LayerCacheKey",
			"(*flexflow/internal/rowstat.Engine).LayerCacheKey",
			"(*flexflow/internal/systolic.Engine).LayerCacheKey",
			"(*flexflow/internal/tiling.Engine).LayerCacheKey",
			"(*flexflow/internal/compiler.Program).Chooser",
			"flexflow/internal/arch.ChooseFactors",
			"flexflow/internal/arch.ChooseFactorsCoupled",
			"flexflow/internal/arch.RowUtilization",
			"flexflow/internal/arch.ColUtilization",
			"flexflow/internal/arch.TotalUtilization",
			"flexflow/internal/arch.GroupPasses",
			"flexflow/internal/arch.CyclesPerPass",
			"(flexflow/internal/arch.LayerResult).IdleSlots",
			"(flexflow/internal/arch.LayerResult).Utilization",
			"(flexflow/internal/arch.LayerResult).GOPS",
			"(flexflow/internal/arch.LayerResult).DataVolume",
			"(flexflow/internal/arch.LayerResult).WallClock",
			"(flexflow/internal/arch.RunResult).Cycles",
			"(flexflow/internal/arch.RunResult).MACs",
			"(flexflow/internal/arch.RunResult).Utilization",
			"(flexflow/internal/arch.RunResult).GOPS",
			"(flexflow/internal/arch.RunResult).DataVolume",
			"(flexflow/internal/arch.RunResult).DRAMAccesses",
			"(flexflow/internal/arch.RunResult).WallClock",
		},
		AssumePure: []string{
			"flexflow/internal/core.Engine.Chooser",
		},
	}
}

func (*Purity) Name() string { return "purity" }
func (*Purity) Doc() string {
	return "analytic model roots must be deterministic functions of their inputs: no global state, no map-order or clock dependence, no mutation reachable from receiver or parameters"
}

// purePkgs is the deterministic stdlib allowlist: calls into these
// packages are pure for certification purposes (argument-mutating
// entries are covered separately by extMutates).
var purePkgs = map[string]bool{
	"math":         true,
	"math/bits":    true,
	"math/cmplx":   true,
	"strings":      true,
	"strconv":      true,
	"sort":         true,
	"errors":       true,
	"slices":       true,
	"maps":         true,
	"cmp":          true,
	"unicode":      true,
	"unicode/utf8": true,
	"bytes":        true,
}

// pureFuncs allows individual functions of otherwise-unvetted
// packages (fmt's formatters allocate but read no external state).
var pureFuncs = map[string]bool{
	"fmt.Sprintf":  true,
	"fmt.Sprint":   true,
	"fmt.Sprintln": true,
	"fmt.Errorf":   true,
}

// extMutates records allowlisted external functions that mutate an
// argument in place, by zero-based argument index, so the mutation
// summaries stay sound across them.
var extMutates = map[string]int{
	"sort.Slice":            0,
	"sort.SliceStable":      0,
	"sort.Sort":             0,
	"sort.Stable":           0,
	"sort.Strings":          0,
	"sort.Ints":             0,
	"sort.Float64s":         0,
	"slices.Sort":           0,
	"slices.SortFunc":       0,
	"slices.SortStableFunc": 0,
	"slices.Reverse":        0,
}

// purityIssue is one impurity site inside a function body.
type purityIssue struct {
	id  string
	pos token.Pos
	msg string
}

// condMut is a deferred mutation edge: if callee mutates its input
// slot calleeIdx, the enclosing function mutates its own input slot
// callerIdx. Slot 0 is the receiver; parameters are 1-based.
type condMut struct {
	callerIdx int
	callee    *types.Func
	calleeIdx int
}

// fnSummary is the per-function analysis result the walker memoizes.
type fnSummary struct {
	fn      *types.Func
	decl    *ast.FuncDecl
	pkg     *Package
	issues  []purityIssue
	callees []*types.Func // module-local callees with bodies
	direct  map[int]bool  // input slots mutated by this body
	cond    []condMut
	assumed []string // AssumePure entries this body relies on

	funcLitVars map[types.Object]bool // locals bound directly to func literals
}

// purityState is one analysis run over a Program.
type purityState struct {
	prog      *Program
	assume    map[string]bool
	summaries map[*types.Func]*fnSummary
	declIndex map[*Package]map[types.Object]*ast.FuncDecl
}

func newPurityState(a *Purity, prog *Program) *purityState {
	assume := map[string]bool{}
	for _, s := range a.AssumePure {
		assume[s] = true
	}
	return &purityState{
		prog:      prog,
		assume:    assume,
		summaries: map[*types.Func]*fnSummary{},
		declIndex: map[*Package]map[types.Object]*ast.FuncDecl{},
	}
}

// rootReport is the per-root analysis outcome feeding both findings
// and the manifest.
type rootReport struct {
	root      *types.Func
	reachable []*fnSummary
	assumed   []string
	issues    []purityIssue
	mutated   []string // names of root inputs the tree mutates
}

func (a *Purity) Run(prog *Program) ([]Finding, error) {
	reports, err := a.analyze(prog)
	if err != nil {
		return nil, err
	}
	type key struct {
		id  string
		pos token.Pos
	}
	seen := map[key]bool{}
	var out []Finding
	for _, r := range reports {
		for _, is := range r.issues {
			k := key{is.id, is.pos}
			if seen[k] {
				continue
			}
			seen[k] = true
			out = append(out, Finding{
				ID:      is.id,
				Pos:     prog.Fset.Position(is.pos),
				Message: fmt.Sprintf("%s (reached from certified root %s)", is.msg, r.root.FullName()),
			})
		}
		if len(r.mutated) > 0 {
			out = append(out, Finding{
				ID:  "purity/param-mutation",
				Pos: prog.Fset.Position(r.root.Pos()),
				Message: fmt.Sprintf("certified root %s mutates state reachable from its inputs (%s): callers could observe the call",
					r.root.FullName(), strings.Join(r.mutated, ", ")),
			})
		}
	}
	return out, nil
}

// PurityManifest is the machine-readable certificate cmd/flexlint
// emits (results/purity_manifest.json): one entry per configured
// root, stating whether the whole call tree certified pure, how many
// functions the certificate covers, and which AssumePure entries it
// leans on. Consumers (a future memoization layer, ModeAnalytic) gate
// on Pure; the committed copy is pinned byte-for-byte by a test so
// drift in the certified surface shows up in review.
type PurityManifest struct {
	Schema   int           `json:"schema"`
	Module   string        `json:"module"`
	Analyzer string        `json:"analyzer"`
	Roots    []PurityEntry `json:"roots"`
}

// PurityEntry is one root's certificate.
type PurityEntry struct {
	Root      string   `json:"root"`
	Pure      bool     `json:"pure"`
	Functions int      `json:"functions"`         // call-tree size covered by the certificate
	Assumed   []string `json:"assumed,omitempty"` // AssumePure entries relied on
	Impure    []string `json:"impure,omitempty"`  // rule IDs hit in the tree
	Mutates   []string `json:"mutates,omitempty"` // root inputs the tree writes through
}

// Encode renders the manifest in its canonical committed form:
// two-space-indented JSON with a trailing newline. The pin test and
// cmd/flexlint -purity-manifest both go through here, so the
// committed artifact is byte-reproducible.
func (m *PurityManifest) Encode() []byte {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil { // a struct of strings and ints cannot fail to marshal
		panic(err)
	}
	return append(b, '\n')
}

// Manifest runs the analysis and builds the certificate. Findings
// suppressed with //lint:ignore still count against purity here: the
// manifest certifies the code as analyzed, not as triaged.
func (a *Purity) Manifest(prog *Program) (*PurityManifest, error) {
	reports, err := a.analyze(prog)
	if err != nil {
		return nil, err
	}
	m := &PurityManifest{Schema: 1, Module: prog.ModPath, Analyzer: a.Name()}
	for _, r := range reports {
		e := PurityEntry{
			Root:      r.root.FullName(),
			Functions: len(r.reachable),
			Assumed:   r.assumed,
			Mutates:   r.mutated,
		}
		rules := map[string]bool{}
		for _, is := range r.issues {
			rules[is.id] = true
		}
		e.Impure = sortedKeys(rules)
		e.Pure = len(e.Impure) == 0 && len(e.Mutates) == 0
		m.Roots = append(m.Roots, e)
	}
	sort.Slice(m.Roots, func(i, j int) bool { return m.Roots[i].Root < m.Roots[j].Root })
	return m, nil
}

// analyze resolves every root and walks its call tree.
func (a *Purity) analyze(prog *Program) ([]*rootReport, error) {
	st := newPurityState(a, prog)
	roots := append([]string(nil), a.Roots...)
	sort.Strings(roots)
	var reports []*rootReport
	for _, name := range roots {
		// Roots configured for another module (the repo defaults, when
		// flexlint analyzes an unrelated tree) are skipped, matching
		// the other repo-configured analyzers.
		if !prog.IsModuleLocal(fullNamePkgPath(name)) {
			continue
		}
		fn, err := resolveFullName(prog, name)
		if err != nil {
			return nil, fmt.Errorf("purity: root %s: %w", name, err)
		}
		rep, err := st.walkRoot(fn)
		if err != nil {
			return nil, fmt.Errorf("purity: root %s: %w", name, err)
		}
		reports = append(reports, rep)
	}
	return reports, nil
}

// walkRoot collects the reachable summaries, solves the mutation
// fixpoint over them, and checks the root's own input slots.
func (st *purityState) walkRoot(root *types.Func) (*rootReport, error) {
	var reach []*fnSummary
	inReach := map[*types.Func]bool{}
	var visit func(fn *types.Func) error
	visit = func(fn *types.Func) error {
		if inReach[fn] {
			return nil
		}
		sum, err := st.summary(fn)
		if err != nil {
			return err
		}
		if sum == nil {
			return nil
		}
		inReach[fn] = true
		reach = append(reach, sum)
		for _, c := range sum.callees {
			if err := visit(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := visit(root); err != nil {
		return nil, err
	}

	// Mutation fixpoint over the reachable set: start from the direct
	// writes, then push conditional edges until nothing changes.
	mutated := map[*types.Func]map[int]bool{}
	for _, s := range reach {
		m := map[int]bool{}
		for i := range s.direct {
			m[i] = true
		}
		mutated[s.fn] = m
	}
	for changed := true; changed; {
		changed = false
		for _, s := range reach {
			for _, c := range s.cond {
				if mutated[c.callee][c.calleeIdx] && !mutated[s.fn][c.callerIdx] {
					mutated[s.fn][c.callerIdx] = true
					changed = true
				}
			}
		}
	}

	rep := &rootReport{root: root, reachable: reach}
	assumed := map[string]bool{}
	for _, s := range reach {
		rep.issues = append(rep.issues, s.issues...)
		for _, as := range s.assumed {
			assumed[as] = true
		}
	}
	rep.assumed = sortedKeys(assumed)

	rootSum := st.summaries[root]
	if rootSum != nil {
		var names []string
		for idx := range mutated[root] {
			names = append(names, slotName(rootSum, idx))
		}
		sort.Strings(names)
		rep.mutated = names
	}
	return rep, nil
}

// slotName names input slot idx of sum for diagnostics.
func slotName(sum *fnSummary, idx int) string {
	sig := sum.fn.Type().(*types.Signature)
	if idx == 0 {
		if r := sig.Recv(); r != nil && r.Name() != "" {
			return "receiver " + r.Name()
		}
		return "receiver"
	}
	p := idx - 1
	if p < sig.Params().Len() {
		if n := sig.Params().At(p).Name(); n != "" {
			return "parameter " + n
		}
	}
	return fmt.Sprintf("parameter #%d", p)
}

// summary scans fn's body once, memoized. A nil summary (no error)
// means fn has no analyzable body in the module (never reached here
// for module-local functions, which always carry source).
func (st *purityState) summary(fn *types.Func) (*fnSummary, error) {
	if s, ok := st.summaries[fn]; ok {
		return s, nil
	}
	// Break cycles: mark in-progress as present-but-empty; the real
	// summary replaces it below and recursion sees a stable pointer.
	pkgPath := fn.Pkg().Path()
	pkg, err := st.prog.Package(pkgPath)
	if err != nil {
		return nil, err
	}
	decl := st.declOf(pkg, fn)
	if decl == nil || decl.Body == nil {
		return nil, fmt.Errorf("no body found for %s", fn.FullName())
	}
	sum := &fnSummary{fn: fn, decl: decl, pkg: pkg, direct: map[int]bool{}}
	st.summaries[fn] = sum
	st.scan(sum)
	return sum, nil
}

// declOf finds the FuncDecl defining fn inside pkg, indexing the
// package's files on first use.
func (st *purityState) declOf(pkg *Package, fn *types.Func) *ast.FuncDecl {
	idx := st.declIndex[pkg]
	if idx == nil {
		idx = funcDecls(pkg)
		st.declIndex[pkg] = idx
	}
	return idx[fn]
}

// funcDecls indexes a package's function declarations by their
// defining object (shared by the call-graph walkers: purity,
// hotalloc).
func funcDecls(pkg *Package) map[types.Object]*ast.FuncDecl {
	idx := map[types.Object]*ast.FuncDecl{}
	for _, file := range pkg.Files {
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				if obj := pkg.Info.Defs[fd.Name]; obj != nil {
					idx[obj] = fd
				}
			}
		}
	}
	return idx
}

// inputSlots maps fn's receiver and parameter objects to their slot
// indices (receiver 0, parameters 1-based).
func inputSlots(pkg *Package, decl *ast.FuncDecl) map[types.Object]int {
	slots := map[types.Object]int{}
	bind := func(names []*ast.Ident, idx func(i int) int) {
		for i, n := range names {
			if obj := pkg.Info.Defs[n]; obj != nil {
				slots[obj] = idx(i)
			}
		}
	}
	if decl.Recv != nil {
		for _, f := range decl.Recv.List {
			bind(f.Names, func(int) int { return 0 })
		}
	}
	slot := 1
	if decl.Type.Params != nil {
		for _, f := range decl.Type.Params.List {
			n := len(f.Names)
			base := slot
			bind(f.Names, func(i int) int { return base + i })
			if n == 0 {
				n = 1
			}
			slot += n
		}
	}
	return slots
}

// scan walks one function body (function literals included, analyzed
// in the enclosing context) and fills the summary.
func (st *purityState) scan(sum *fnSummary) {
	info := sum.pkg.Info
	slots := inputSlots(sum.pkg, sum.decl)

	// slotOf resolves the base object of a reference path (through
	// derefs, fields, indexes, slices and address-of) to an input
	// slot, or -1.
	slotOf := func(e ast.Expr) int {
		for {
			switch x := e.(type) {
			case *ast.ParenExpr:
				e = x.X
			case *ast.StarExpr:
				e = x.X
			case *ast.SelectorExpr:
				// A qualified package reference bottoms out in a
				// PkgName, handled by the Ident case below.
				e = x.X
			case *ast.IndexExpr:
				e = x.X
			case *ast.SliceExpr:
				e = x.X
			case *ast.UnaryExpr:
				if x.Op != token.AND {
					return -1
				}
				e = x.X
			case *ast.TypeAssertExpr:
				e = x.X
			case *ast.Ident:
				if obj := info.Uses[x]; obj != nil {
					if idx, ok := slots[obj]; ok {
						return idx
					}
				}
				return -1
			default:
				return -1
			}
		}
	}

	packageLevelVar := func(obj types.Object) *types.Var {
		v, ok := obj.(*types.Var)
		if !ok || v.Pkg() == nil {
			return nil
		}
		if v.Parent() != v.Pkg().Scope() {
			return nil
		}
		return v
	}

	issue := func(id string, pos token.Pos, format string, args ...any) {
		sum.issues = append(sum.issues, purityIssue{id: id, pos: pos, msg: fmt.Sprintf(format, args...)})
	}

	// Pre-passes over the body: address-of expressions that are direct
	// call arguments (their escape is judged by the callee's mutation
	// summary, not syntactically), and local variables bound directly
	// to function literals (calls to them are covered by the inline
	// scan of the literal).
	callArgAddrs := map[*ast.UnaryExpr]bool{}
	funcLitVars := map[types.Object]bool{}
	ast.Inspect(sum.decl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			for _, arg := range x.Args {
				if u, ok := unparen(arg).(*ast.UnaryExpr); ok && u.Op == token.AND {
					callArgAddrs[u] = true
				}
			}
		case *ast.AssignStmt:
			if len(x.Lhs) == len(x.Rhs) {
				for i, lhs := range x.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok {
						continue
					}
					if _, ok := unparen(x.Rhs[i]).(*ast.FuncLit); !ok {
						continue
					}
					if obj := info.Defs[id]; obj != nil {
						funcLitVars[obj] = true
					} else if obj := info.Uses[id]; obj != nil {
						funcLitVars[obj] = true
					}
				}
			}
		}
		return true
	})
	sum.funcLitVars = funcLitVars

	// handledWrites are identifiers consumed as write targets; the
	// read pass skips them.
	handledWrites := map[*ast.Ident]bool{}

	baseIdent := func(e ast.Expr) *ast.Ident {
		for {
			switch x := e.(type) {
			case *ast.ParenExpr:
				e = x.X
			case *ast.StarExpr:
				e = x.X
			case *ast.SelectorExpr:
				e = x.X
			case *ast.IndexExpr:
				e = x.X
			case *ast.SliceExpr:
				e = x.X
			case *ast.TypeAssertExpr:
				e = x.X
			case *ast.Ident:
				return x
			default:
				return nil
			}
		}
	}

	writeTarget := func(lhs ast.Expr) {
		lhs = unparen(lhs)
		if id, ok := lhs.(*ast.Ident); ok {
			// Bare identifier: rebinding a local or parameter copy is
			// harmless; a package-level variable is not.
			if v := packageLevelVar(firstObj(info, id)); v != nil {
				handledWrites[id] = true
				issue("purity/global-write", id.Pos(), "assignment to package-level variable %s", v.Name())
			}
			return
		}
		id := baseIdent(lhs)
		if id == nil {
			return
		}
		handledWrites[id] = true
		if v := packageLevelVar(firstObj(info, id)); v != nil {
			issue("purity/global-write", lhs.Pos(), "write through package-level variable %s", v.Name())
			return
		}
		if idx := slotOf(lhs); idx >= 0 {
			sum.direct[idx] = true
		}
	}

	ast.Inspect(sum.decl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				writeTarget(lhs)
			}
		case *ast.IncDecStmt:
			writeTarget(x.X)
		case *ast.RangeStmt:
			if tv, ok := info.Types[x.X]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					issue("purity/map-range", x.Pos(), "range over a map: iteration order is runtime-nondeterministic")
				}
			}
			if x.Tok == token.ASSIGN {
				if x.Key != nil {
					writeTarget(x.Key)
				}
				if x.Value != nil {
					writeTarget(x.Value)
				}
			}
		case *ast.SendStmt:
			issue("purity/chan-op", x.Pos(), "channel send")
		case *ast.SelectStmt:
			issue("purity/chan-op", x.Pos(), "select statement")
		case *ast.GoStmt:
			issue("purity/chan-op", x.Pos(), "go statement spawns a goroutine")
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				issue("purity/chan-op", x.Pos(), "channel receive")
			}
			if x.Op == token.AND && !callArgAddrs[x] {
				// An address that is not a direct call argument
				// escapes the walker's tracking: if it is rooted in an
				// input, assume the worst.
				if idx := slotOf(x.X); idx >= 0 {
					sum.direct[idx] = true
				}
				if id := baseIdent(x.X); id != nil {
					if v := packageLevelVar(firstObj(info, id)); v != nil {
						issue("purity/global-write", x.Pos(), "address of package-level variable %s escapes", v.Name())
					}
				}
			}
		case *ast.CallExpr:
			st.scanCall(sum, slots, slotOf, x, issue)
		case *ast.Ident:
			if handledWrites[x] {
				return true
			}
			v := packageLevelVar(info.Uses[x])
			if v == nil {
				return true
			}
			if isErrorType(v.Type()) {
				return true // immutable sentinel convention
			}
			issue("purity/global-read", x.Pos(), "read of package-level variable %s", v.Name())
		}
		return true
	})

}

// scanCall classifies one call expression.
func (st *purityState) scanCall(sum *fnSummary, slots map[types.Object]int, slotOf func(ast.Expr) int, call *ast.CallExpr, issue func(string, token.Pos, string, ...any)) {
	info := sum.pkg.Info
	fun := unparen(call.Fun)

	// Conversions are values, not calls.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return
	}

	// markExtMutation applies an external in-place mutator's effect.
	markExtMutation := func(argIdx int) {
		if argIdx < len(call.Args) {
			if idx := slotOf(call.Args[argIdx]); idx >= 0 {
				sum.direct[idx] = true
			}
		}
	}

	// propagate records conditional mutation edges for a resolved
	// module-local callee: receiver slot 0, argument slots 1-based,
	// clamped for variadics.
	propagate := func(callee *types.Func) {
		sig, ok := callee.Type().(*types.Signature)
		if !ok {
			return
		}
		if sel, ok := fun.(*ast.SelectorExpr); ok && sig.Recv() != nil {
			if idx := slotOf(sel.X); idx >= 0 {
				sum.cond = append(sum.cond, condMut{callerIdx: idx, callee: callee, calleeIdx: 0})
			}
		}
		np := sig.Params().Len()
		for i, arg := range call.Args {
			idx := slotOf(arg)
			if idx < 0 {
				continue
			}
			p := i
			if p >= np {
				p = np - 1 // variadic tail
			}
			if p < 0 {
				continue
			}
			sum.cond = append(sum.cond, condMut{callerIdx: idx, callee: callee, calleeIdx: p + 1})
		}
	}

	dynamic := func(full, what string) {
		if full != "" && st.assume[full] {
			sum.assumed = append(sum.assumed, full)
			return
		}
		if full == "" {
			full = "<unknown>"
		}
		issue("purity/dynamic-call", call.Pos(), "%s %s cannot be resolved statically and is not in AssumePure", what, full)
	}

	classify := func(fn *types.Func) {
		sig, _ := fn.Type().(*types.Signature)
		if sig != nil && sig.Recv() != nil && types.IsInterface(sig.Recv().Type()) {
			dynamic(fn.FullName(), "interface method call")
			return
		}
		if fn.Pkg() == nil {
			dynamic(fn.FullName(), "call")
			return
		}
		path := fn.Pkg().Path()
		if st.prog.IsModuleLocal(path) {
			sum.callees = append(sum.callees, fn)
			propagate(fn)
			return
		}
		full := fn.FullName()
		if mutIdx, ok := extMutates[full]; ok {
			markExtMutation(mutIdx)
			return
		}
		if purePkgs[path] || pureFuncs[full] {
			return
		}
		issue("purity/nondet-call", call.Pos(), "call into %s: outside the deterministic stdlib allowlist", full)
	}

	switch f := fun.(type) {
	case *ast.FuncLit:
		return // body scanned inline by the enclosing Inspect
	case *ast.Ident:
		switch obj := info.Uses[f].(type) {
		case *types.Builtin:
			switch obj.Name() {
			case "copy", "clear", "delete":
				markExtMutation(0)
			case "print", "println":
				issue("purity/nondet-call", call.Pos(), "builtin %s writes to stderr", obj.Name())
			case "append":
				// append may write into the backing array of its
				// first argument when capacity allows.
				markExtMutation(0)
			}
			return
		case *types.Func:
			classify(obj)
			return
		case *types.Var:
			if _, isSlot := slots[obj]; isSlot {
				return // higher-order pass-through: vetted at the call sites that built the value
			}
			if sum.funcLitVars[obj] {
				return // bound to a function literal scanned inline
			}
			dynamic("", "call of function value "+obj.Name())
			return
		case *types.TypeName, nil:
			return // conversion or predeclared
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[f]; ok {
			switch sel.Kind() {
			case types.FieldVal:
				dynamic(fieldFullName(sel), "call through function-typed field")
				return
			case types.MethodVal, types.MethodExpr:
				if fn, ok := sel.Obj().(*types.Func); ok {
					classify(fn)
					return
				}
			}
			return
		}
		// Package-qualified reference.
		switch obj := info.Uses[f.Sel].(type) {
		case *types.Func:
			classify(obj)
		case *types.Var:
			dynamic("", "call of package-level function variable "+obj.Name())
		}
		return
	case *ast.IndexExpr: // generic instantiation F[T](…)
		if id, ok := unparen(f.X).(*ast.Ident); ok {
			if fn, ok := info.Uses[id].(*types.Func); ok {
				classify(fn)
				return
			}
		}
		dynamic("", "generic call")
		return
	}
	dynamic("", "call")
}

// fieldFullName renders a field selection as pkgpath.Type.Field for
// AssumePure matching.
func fieldFullName(sel *types.Selection) string {
	recv := sel.Recv()
	if p, ok := recv.Underlying().(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := types.Unalias(recv).(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + sel.Obj().Name()
}

// firstObj returns the use or def object of an identifier.
func firstObj(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

// fullNamePkgPath extracts the package path of a go/types FullName
// ("pkg/path.Func", "(pkg/path.Type).Method" or
// "(*pkg/path.Type).Method"), so analyzers can skip roots configured
// for a different module before attempting resolution.
func fullNamePkgPath(full string) string {
	s := full
	if strings.HasPrefix(s, "(") {
		if end := strings.Index(s, ")"); end > 0 {
			s = strings.TrimPrefix(s[1:end], "*")
		}
	}
	if dot := strings.LastIndex(s, "."); dot > 0 {
		return s[:dot]
	}
	return s
}

// resolveFullName resolves a go/types FullName string to its function
// object: "pkg/path.Func", "(pkg/path.Type).Method" or
// "(*pkg/path.Type).Method".
func resolveFullName(prog *Program, full string) (*types.Func, error) {
	if strings.HasPrefix(full, "(") {
		end := strings.Index(full, ")")
		if end < 0 || end+2 > len(full) || full[end+1] != '.' {
			return nil, fmt.Errorf("malformed method name %q", full)
		}
		recv := strings.TrimPrefix(full[1:end], "*")
		method := full[end+2:]
		dot := strings.LastIndex(recv, ".")
		if dot < 0 {
			return nil, fmt.Errorf("malformed receiver %q", recv)
		}
		pkgPath, typeName := recv[:dot], recv[dot+1:]
		pkg, err := prog.Package(pkgPath)
		if err != nil {
			return nil, err
		}
		obj := pkg.Types.Scope().Lookup(typeName)
		tn, ok := obj.(*types.TypeName)
		if !ok {
			return nil, fmt.Errorf("%s is not a type in %s", typeName, pkgPath)
		}
		named, ok := types.Unalias(tn.Type()).(*types.Named)
		if !ok {
			return nil, fmt.Errorf("%s is not a named type", typeName)
		}
		for i := 0; i < named.NumMethods(); i++ {
			m := named.Method(i)
			if m.Name() == method {
				if m.FullName() != full {
					return nil, fmt.Errorf("receiver mismatch: declared as %s", m.FullName())
				}
				return m, nil
			}
		}
		return nil, fmt.Errorf("type %s has no method %s", typeName, method)
	}
	dot := strings.LastIndex(full, ".")
	if dot < 0 {
		return nil, fmt.Errorf("malformed function name %q", full)
	}
	pkgPath, fnName := full[:dot], full[dot+1:]
	pkg, err := prog.Package(pkgPath)
	if err != nil {
		return nil, err
	}
	fn, ok := pkg.Types.Scope().Lookup(fnName).(*types.Func)
	if !ok {
		return nil, fmt.Errorf("%s has no function %s", pkgPath, fnName)
	}
	return fn, nil
}
