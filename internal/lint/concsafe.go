package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// ConcSafe enforces two concurrency-safety contracts the race
// detector cannot always see:
//
//   - concsafe/copy: a sync.Mutex, sync.RWMutex, sync.WaitGroup,
//     sync.Once or sync.Cond (or any struct/array containing one)
//     copied by value — by-value parameters and receivers, plain
//     assignments from an existing value, and range-clause element
//     copies. A copied lock guards nothing.
//   - concsafe/goroutine-add: WaitGroup.Add called inside the spawned
//     goroutine itself; the parent may reach Wait before the goroutine
//     is scheduled, so Add must run before the go statement.
type ConcSafe struct{}

// NewConcSafe returns the analyzer.
func NewConcSafe() *ConcSafe { return &ConcSafe{} }

func (*ConcSafe) Name() string { return "concsafe" }
func (*ConcSafe) Doc() string {
	return "sync primitives must not be copied, and WaitGroup.Add must precede the go statement"
}

func (a *ConcSafe) Run(prog *Program) ([]Finding, error) {
	var out []Finding
	for _, pkg := range prog.Pkgs {
		info := pkg.Info
		reportCopy := func(what string, t types.Type, p token.Pos) {
			out = append(out, Finding{
				ID:      "concsafe/copy",
				Pos:     prog.Fset.Position(p),
				Message: fmt.Sprintf("%s copies %s, which contains a sync primitive; use a pointer", what, t),
			})
		}
		checkFieldList := func(fl *ast.FieldList, what string) {
			if fl == nil {
				return
			}
			for _, f := range fl.List {
				if t := info.TypeOf(f.Type); t != nil && containsLock(t) {
					reportCopy(what, t, f.Type.Pos())
				}
			}
		}
		inspectFiles(pkg, func(_ *ast.File, n ast.Node) bool {
			switch e := n.(type) {
			case *ast.FuncDecl:
				checkFieldList(e.Recv, "receiver")
				checkFieldList(e.Type.Params, "parameter")
			case *ast.FuncLit:
				checkFieldList(e.Type.Params, "parameter")
			case *ast.AssignStmt:
				for i, rhs := range e.Rhs {
					if !copiesExistingValue(rhs) {
						continue
					}
					// Assigning to the blank identifier discards the
					// copy; nothing can use the dead lock.
					if len(e.Lhs) == len(e.Rhs) {
						if id, ok := unparen(e.Lhs[i]).(*ast.Ident); ok && id.Name == "_" {
							continue
						}
					}
					if t := info.TypeOf(rhs); t != nil && containsLock(t) {
						reportCopy("assignment", t, rhs.Pos())
					}
				}
			case *ast.RangeStmt:
				if e.Value != nil {
					if t := info.TypeOf(e.Value); t != nil && containsLock(t) {
						reportCopy("range clause", t, e.Value.Pos())
					}
				}
			case *ast.GoStmt:
				fl, ok := unparen(e.Call.Fun).(*ast.FuncLit)
				if !ok {
					return true
				}
				ast.Inspect(fl.Body, func(m ast.Node) bool {
					call, ok := m.(*ast.CallExpr)
					if !ok {
						return true
					}
					if fn := calleeFunc(info, call); fn != nil && fn.FullName() == "(*sync.WaitGroup).Add" {
						out = append(out, Finding{
							ID:      "concsafe/goroutine-add",
							Pos:     prog.Fset.Position(call.Pos()),
							Message: "WaitGroup.Add inside the spawned goroutine races with Wait; call Add before the go statement",
						})
					}
					return true
				})
			}
			return true
		})
	}
	return out, nil
}

// copiesExistingValue reports whether the expression denotes an
// already-existing value whose assignment performs a copy (as opposed
// to a freshly constructed composite literal, call result or
// conversion).
func copiesExistingValue(e ast.Expr) bool {
	switch unparen(e).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	default:
		return false
	}
}

// containsLock reports whether t (not a pointer to t) contains a sync
// primitive that must not be copied.
func containsLock(t types.Type) bool {
	return containsLock1(t, map[types.Type]bool{})
}

func containsLock1(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	if named, ok := types.Unalias(t).(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			switch obj.Name() {
			case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond":
				return true
			}
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLock1(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLock1(u.Elem(), seen)
	}
	return false
}
