package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HookParity is the cross-package parity check between the fault
// model, the component hook points and the energy tariff table —
// counteraudit generalized from counters to the whole observation
// surface. A fault site nobody arms is a coverage hole the campaign
// tables silently omit; an instrumentation hook nobody installs is
// dead observation surface; a tariff nobody charges hides a missing
// accounting path. Three rules:
//
//   - hookparity/unwired-site: an exported fault-site constant is
//     never referenced inside a function body of any wiring package
//     (re-export alias declarations do not count as wiring). Sites
//     armed through a dedicated injector method (SiteMAC via MACZero)
//     are declared in ImplicitWiring.
//   - hookparity/unused-hook: an exported func-typed …Hook field of a
//     component package is never referenced outside its declaring
//     package — the hook point exists but no simulator installs it.
//   - hookparity/dead-tariff: an exported field of the energy tariff
//     record is never read by the per-layer billing function.
type HookParity struct {
	FaultPkg   string   // package declaring the site enumeration
	SiteType   string   // the site enumeration's type name
	WiringPkgs []string // packages whose bodies must arm the sites
	// ImplicitWiring maps a site constant name to callee FullNames
	// whose call arms the site without naming it.
	ImplicitWiring map[string][]string
	HookPkgs       []string // packages declaring exported …Hook fields
	EnergyPkg      string   // package holding the tariff table
	ParamsType     string   // the tariff record's type name
	EnergyFunc     string   // the billing function reading the tariffs
}

// NewHookParity returns the analyzer configured for this repository.
func NewHookParity() *HookParity {
	return &HookParity{
		FaultPkg:   "flexflow/internal/fault",
		SiteType:   "Site",
		WiringPkgs: []string{"flexflow/internal/core", "flexflow/internal/pipeline", "flexflow"},
		ImplicitWiring: map[string][]string{
			// The multiplier site is armed through the dedicated
			// stuck-at-zero query on the MAC fast path.
			"SiteMAC": {"(*flexflow/internal/fault.Injector).MACZero"},
		},
		HookPkgs:   []string{"flexflow/internal/mem", "flexflow/internal/bus"},
		EnergyPkg:  "flexflow/internal/energy",
		ParamsType: "Params",
		EnergyFunc: "LayerEnergy",
	}
}

func (*HookParity) Name() string { return "hookparity" }
func (*HookParity) Doc() string {
	return "every fault site must be armed by a simulator, every component hook installed, and every energy tariff charged"
}

func (a *HookParity) Run(prog *Program) ([]Finding, error) {
	if !prog.IsModuleLocal(a.FaultPkg) {
		return nil, nil
	}
	var out []Finding
	if err := a.checkSites(prog, &out); err != nil {
		return nil, err
	}
	if err := a.checkHooks(prog, &out); err != nil {
		return nil, err
	}
	if err := a.checkTariffs(prog, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// checkSites enforces hookparity/unwired-site.
func (a *HookParity) checkSites(prog *Program, out *[]Finding) error {
	faultPkg, err := prog.Package(a.FaultPkg)
	if err != nil {
		return err
	}
	siteObj := faultPkg.Types.Scope().Lookup(a.SiteType)
	if siteObj == nil {
		return fmt.Errorf("%s.%s not found", a.FaultPkg, a.SiteType)
	}
	siteType := siteObj.Type()

	// The exported site constants, in declaration order.
	type site struct {
		obj types.Object
		pos token.Pos
	}
	var sites []site
	scope := faultPkg.Types.Scope()
	for _, name := range scope.Names() {
		obj := scope.Lookup(name)
		c, ok := obj.(*types.Const)
		if !ok || !c.Exported() || !types.Identical(c.Type(), siteType) {
			continue
		}
		sites = append(sites, site{obj: obj, pos: obj.Pos()})
	}

	implicit := map[string]string{} // callee FullName → site const name
	for siteName, callees := range a.ImplicitWiring {
		for _, callee := range callees {
			implicit[callee] = siteName
		}
	}
	// Arming is matched by constant value, not object identity, so a
	// wiring package using a re-exported alias of a site still counts.
	armedValue := map[string]bool{}
	armedByName := map[string]bool{}

	for _, path := range a.WiringPkgs {
		pkg, err := prog.Package(path)
		if err != nil {
			return err
		}
		info := pkg.Info
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					switch x := n.(type) {
					case *ast.Ident:
						if c, ok := info.Uses[x].(*types.Const); ok && types.Identical(c.Type(), siteType) {
							armedValue[c.Val().String()] = true
						}
					case *ast.CallExpr:
						if f := calleeObj(info, unparen(x.Fun)); f != nil {
							if siteName, ok := implicit[f.FullName()]; ok {
								armedByName[siteName] = true
							}
						}
					}
					return true
				})
			}
		}
	}

	for _, s := range sites {
		if armedValue[s.obj.(*types.Const).Val().String()] || armedByName[s.obj.Name()] {
			continue
		}
		*out = append(*out, Finding{
			ID:  "hookparity/unwired-site",
			Pos: prog.Fset.Position(s.pos),
			Message: fmt.Sprintf("fault site %s is never armed by a wiring package: campaigns cannot exercise it, so its coverage row is silently empty",
				s.obj.Name()),
		})
	}
	return nil
}

// checkHooks enforces hookparity/unused-hook.
func (a *HookParity) checkHooks(prog *Program, out *[]Finding) error {
	for _, path := range a.HookPkgs {
		hookPkg, err := prog.Package(path)
		if err != nil {
			return err
		}
		// The exported func-typed …Hook fields declared in this package.
		hooks := map[types.Object]token.Pos{}
		scope := hookPkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || !tn.Exported() {
				continue
			}
			st, ok := tn.Type().Underlying().(*types.Struct)
			if !ok {
				continue
			}
			for i := 0; i < st.NumFields(); i++ {
				f := st.Field(i)
				if !f.Exported() || !strings.HasSuffix(f.Name(), "Hook") {
					continue
				}
				if _, ok := f.Type().Underlying().(*types.Signature); !ok {
					continue
				}
				hooks[f] = f.Pos()
			}
		}
		if len(hooks) == 0 {
			continue
		}
		// A hook is used when any analyzed package other than the
		// declaring one selects it.
		for _, pkg := range prog.Pkgs {
			if pkg.Path == path {
				continue
			}
			for _, s := range pkg.Info.Selections {
				if s.Kind() == types.FieldVal {
					delete(hooks, s.Obj())
				}
			}
		}
		for obj, pos := range hooks {
			*out = append(*out, Finding{
				ID:  "hookparity/unused-hook",
				Pos: prog.Fset.Position(pos),
				Message: fmt.Sprintf("hook field %s.%s is never installed outside %s: the observation point exists but no simulator wires it",
					lastSegment(path), obj.Name(), lastSegment(path)),
			})
		}
	}
	return nil
}

// checkTariffs enforces hookparity/dead-tariff.
func (a *HookParity) checkTariffs(prog *Program, out *[]Finding) error {
	energyPkg, err := prog.Package(a.EnergyPkg)
	if err != nil {
		return err
	}
	obj := energyPkg.Types.Scope().Lookup(a.ParamsType)
	if obj == nil {
		return fmt.Errorf("%s.%s not found", a.EnergyPkg, a.ParamsType)
	}
	named, ok := types.Unalias(obj.Type()).(*types.Named)
	if !ok {
		return fmt.Errorf("%s.%s is not a named type", a.EnergyPkg, a.ParamsType)
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return fmt.Errorf("%s.%s is not a struct", a.EnergyPkg, a.ParamsType)
	}
	unread := map[string]token.Pos{}
	for i := 0; i < st.NumFields(); i++ {
		if f := st.Field(i); f.Exported() {
			unread[f.Name()] = f.Pos()
		}
	}

	found := false
	for _, file := range energyPkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != a.EnergyFunc || fd.Body == nil {
				continue
			}
			found = true
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if sel, ok := n.(*ast.SelectorExpr); ok {
					if field := fieldOf(energyPkg.Info, sel, named); field != "" {
						delete(unread, field)
					}
				}
				return true
			})
		}
	}
	if !found {
		return fmt.Errorf("%s.%s not found", a.EnergyPkg, a.EnergyFunc)
	}

	for _, name := range sortedKeys(boolKeys(unread)) {
		*out = append(*out, Finding{
			ID:  "hookparity/dead-tariff",
			Pos: prog.Fset.Position(unread[name]),
			Message: fmt.Sprintf("tariff %s.%s is never read by %s: the charge exists in the table but no event is ever billed at it",
				a.ParamsType, name, a.EnergyFunc),
		})
	}
	return nil
}

func boolKeys(m map[string]token.Pos) map[string]bool {
	out := make(map[string]bool, len(m))
	for k := range m {
		out[k] = true
	}
	return out
}

func lastSegment(path string) string { return path[lastSlash(path)+1:] }
