package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// JSONFinding is the machine-readable rendering of one finding, the
// element type of flexlint -json output and of baseline files. File is
// the module-relative path (stable across checkouts, unlike the
// absolute position the human rendering shows).
type JSONFinding struct {
	ID      string `json:"id"`
	File    string `json:"file"`
	Line    int    `json:"line,omitempty"`
	Column  int    `json:"column,omitempty"`
	Message string `json:"message,omitempty"`
}

// ToJSON converts findings to their machine-readable form with paths
// relative to modRoot.
func ToJSON(findings []Finding, modRoot string) []JSONFinding {
	out := make([]JSONFinding, 0, len(findings))
	for _, f := range findings {
		file := f.Pos.Filename
		if modRoot != "" {
			if rel, ok := strings.CutPrefix(file, modRoot+string(os.PathSeparator)); ok {
				file = filepath.ToSlash(rel)
			}
		}
		out = append(out, JSONFinding{
			ID:      f.ID,
			File:    file,
			Line:    f.Pos.Line,
			Column:  f.Pos.Column,
			Message: f.Message,
		})
	}
	return out
}

// Baseline is a set of accepted findings: flexlint subtracts it from a
// run's findings so a new analyzer can be adopted in stages. An entry
// matches on (id, file) — line numbers churn with unrelated edits, so
// they are deliberately not part of the key. The shipped baseline is
// empty; entries are a temporary debt ledger, not a suppression
// mechanism (that is //lint:ignore's job, with a reason, at the site).
type Baseline struct {
	// Version and Analyzers make a findings dump self-describing: they
	// record the suite revision and the enabled analyzer set that
	// produced it, so a stale baseline is attributable. Both are
	// optional on input — hand-maintained baselines may omit them, and
	// a version mismatch only matters when findings actually differ.
	Version   int           `json:"version,omitempty"`
	Analyzers []string      `json:"analyzers,omitempty"`
	Findings  []JSONFinding `json:"findings"`
}

// ParseBaseline reads and validates a baseline file.
func ParseBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var b Baseline
	if err := dec.Decode(&b); err != nil {
		return nil, fmt.Errorf("baseline %s: %v", path, err)
	}
	for i, f := range b.Findings {
		if f.ID == "" || f.File == "" {
			return nil, fmt.Errorf("baseline %s: entry %d must carry both id and file", path, i)
		}
	}
	return &b, nil
}

// Filter splits findings into those not covered by the baseline (new)
// and those covered (known). Matching is by (id, module-relative
// file).
func (b *Baseline) Filter(findings []Finding, modRoot string) (fresh, known []Finding) {
	if b == nil || len(b.Findings) == 0 {
		return findings, nil
	}
	accepted := map[string]bool{}
	for _, f := range b.Findings {
		accepted[f.ID+"\x00"+f.File] = true
	}
	js := ToJSON(findings, modRoot)
	for i, f := range findings {
		if accepted[js[i].ID+"\x00"+js[i].File] {
			known = append(known, f)
		} else {
			fresh = append(fresh, f)
		}
	}
	return fresh, known
}

// SelectAnalyzers filters the suite by comma-separated enable/disable
// lists. An empty enable list keeps everything; disable wins over
// enable. Unknown names are an error so a typo cannot silently turn a
// gate off.
func SelectAnalyzers(all []Analyzer, enable, disable string) ([]Analyzer, error) {
	names := map[string]bool{}
	for _, a := range all {
		names[a.Name()] = true
	}
	parse := func(list string) (map[string]bool, error) {
		if strings.TrimSpace(list) == "" {
			return nil, nil
		}
		set := map[string]bool{}
		for _, n := range strings.Split(list, ",") {
			n = strings.TrimSpace(n)
			if n == "" {
				continue
			}
			if !names[n] {
				return nil, fmt.Errorf("unknown analyzer %q (have %s)", n, strings.Join(analyzerNames(all), ", "))
			}
			set[n] = true
		}
		return set, nil
	}
	on, err := parse(enable)
	if err != nil {
		return nil, err
	}
	off, err := parse(disable)
	if err != nil {
		return nil, err
	}
	var out []Analyzer
	for _, a := range all {
		if on != nil && !on[a.Name()] {
			continue
		}
		if off[a.Name()] {
			continue
		}
		out = append(out, a)
	}
	return out, nil
}

// AnalyzerNames returns the sorted names of a suite — the value the
// Baseline.Analyzers field records.
func AnalyzerNames(all []Analyzer) []string { return analyzerNames(all) }

func analyzerNames(all []Analyzer) []string {
	out := make([]string, 0, len(all))
	for _, a := range all {
		out = append(out, a.Name())
	}
	sort.Strings(out)
	return out
}
