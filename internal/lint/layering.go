package lint

import (
	"fmt"
	"go/token"
	"strings"
)

// Layering enforces the module's dependency DAG: every module-local
// import must appear in a committed allow-table. The table is the
// architecture document the compiler cannot hold — simulators never
// reach the energy model, the compiler never reaches a simulator, leaf
// packages (fixed, bus, sim) import nothing — and a test pins it
// exactly against reality so both a new forbidden edge and a stale
// table entry fail fast. Two rules:
//
//   - layering/forbidden: a tracked package imports a module-local
//     package that its table row does not allow.
//   - layering/untracked: a module-local package has no table row at
//     all, so its dependencies are unreviewed.
//
// Table keys and values are module-relative paths ("internal/core",
// "cmd/flexlint"); the module root package is ".".
type Layering struct {
	// Module is the module path the table describes; the analyzer is a
	// no-op on any other module (the repository's DAG says nothing
	// about a scratch module under test). Empty means any module.
	Module string
	// Allowed maps each tracked package to the exact set of
	// module-local packages it may import.
	Allowed map[string][]string
}

// RepoLayering is the repository's committed dependency DAG. Layer
// order, bottom up: word-level leaves (fixed, bus, sim, metrics) →
// data/model substrate (tensor, nn, mem, fault) → architecture algebra
// (arch, workloads) → the mapping DSL and its lowering rules (mapping,
// which every simulator's analytic model is expressed in) → simulators
// (core, systolic, mapping2d, tiling,
// rowstat) ∥ planners (compiler) ∥ billing (energy) → the execution
// pipeline (pipeline, which drives engines only through the arch
// interface — no edge to any simulator) → experiments → the facade and
// the commands. The factor search lives in arch precisely so compiler
// and the simulators can share it without an edge between them.
func RepoLayering() map[string][]string {
	return map[string][]string{
		"internal/fixed":   {},
		"internal/bus":     {},
		"internal/sim":     {},
		"internal/metrics": {},
		"internal/lint":    {},

		"internal/tensor":    {"internal/fixed"},
		"internal/nn":        {"internal/tensor"},
		"internal/mem":       {"internal/fixed"},
		"internal/fault":     {"internal/fixed"},
		"internal/workloads": {"internal/nn", "internal/tensor"},

		"internal/arch": {"internal/nn", "internal/tensor"},

		"internal/mapping": {"internal/arch", "internal/nn", "internal/tensor"},

		"internal/core":      {"internal/arch", "internal/bus", "internal/fault", "internal/fixed", "internal/mapping", "internal/mem", "internal/nn", "internal/sim", "internal/tensor"},
		"internal/systolic":  {"internal/arch", "internal/fixed", "internal/mapping", "internal/nn", "internal/sim", "internal/tensor"},
		"internal/mapping2d": {"internal/arch", "internal/fixed", "internal/mapping", "internal/nn", "internal/sim", "internal/tensor"},
		"internal/tiling":    {"internal/arch", "internal/fixed", "internal/mapping", "internal/nn", "internal/sim", "internal/tensor"},
		"internal/rowstat":   {"internal/arch", "internal/fixed", "internal/mapping", "internal/nn", "internal/sim", "internal/tensor"},

		"internal/compiler": {"internal/arch", "internal/nn", "internal/tensor"},
		"internal/energy":   {"internal/arch"},

		"internal/pipeline": {"internal/arch", "internal/energy", "internal/fault", "internal/fixed", "internal/nn", "internal/sim", "internal/tensor"},

		"internal/experiments": {"internal/arch", "internal/compiler", "internal/core", "internal/energy", "internal/mapping2d", "internal/metrics", "internal/nn", "internal/pipeline", "internal/rowstat", "internal/systolic", "internal/tiling", "internal/workloads"},

		"internal/serve": {"."},

		".": {"internal/arch", "internal/bus", "internal/compiler", "internal/core", "internal/energy", "internal/fault", "internal/fixed", "internal/mapping", "internal/mapping2d", "internal/nn", "internal/pipeline", "internal/rowstat", "internal/sim", "internal/systolic", "internal/tensor", "internal/tiling", "internal/workloads"},

		"scripts": {"internal/arch", "internal/compiler", "internal/core", "internal/energy", "internal/mapping2d", "internal/nn", "internal/rowstat", "internal/systolic", "internal/tiling", "internal/workloads"},

	"cmd/flexbench":  {"internal/arch", "internal/experiments", "internal/metrics", "internal/sim"},
		"cmd/flexcc":     {".", "internal/compiler", "internal/core", "internal/metrics"},
		"cmd/flexfault":  {"."},
		"cmd/flextune":   {"internal/arch", "internal/compiler", "internal/mapping", "internal/nn", "internal/pipeline", "internal/workloads"},
		"cmd/flexlint":   {"internal/lint"},
		"cmd/flexreport": {".", "internal/experiments"},
		"cmd/flexserve":  {"internal/serve"},
		"cmd/flexsim":    {".", "internal/core", "internal/metrics", "internal/nn", "internal/sim"},

		"examples/compiler":    {".", "internal/compiler", "internal/metrics"},
		"examples/custom":      {".", "internal/metrics", "internal/nn"},
		"examples/lenet":       {".", "internal/metrics"},
		"examples/mapping":     {".", "internal/metrics", "internal/tensor"},
		"examples/precision":   {".", "internal/metrics", "internal/nn", "internal/tensor"},
		"examples/quickstart":  {".", "internal/metrics", "internal/tensor"},
		"examples/scalability": {".", "internal/metrics"},
	}
}

// NewLayering returns the analyzer configured with the repository's
// committed DAG.
func NewLayering() *Layering { return &Layering{Module: "flexflow", Allowed: RepoLayering()} }

func (*Layering) Name() string { return "layering" }
func (*Layering) Doc() string {
	return "module-local imports must follow the committed dependency DAG (simulators never import energy/compiler, the compiler never imports a simulator)"
}

// relPath maps a module-local import path to a table key.
func relPath(modPath, path string) string {
	if path == modPath {
		return "."
	}
	return strings.TrimPrefix(path, modPath+"/")
}

func (a *Layering) Run(prog *Program) ([]Finding, error) {
	if a.Module != "" && prog.ModPath != a.Module {
		return nil, nil
	}
	var out []Finding
	for _, pkg := range prog.Pkgs {
		key := relPath(prog.ModPath, pkg.Path)
		allowed, tracked := a.Allowed[key]
		if !tracked {
			pos := token.NoPos
			if len(pkg.Files) > 0 {
				pos = pkg.Files[0].Package
			}
			out = append(out, Finding{
				ID:  "layering/untracked",
				Pos: prog.Fset.Position(pos),
				Message: fmt.Sprintf("package %s has no row in the layering table: declare its allowed imports in RepoLayering",
					key),
			})
			continue
		}
		allow := map[string]bool{}
		for _, p := range allowed {
			allow[p] = true
		}
		for _, file := range pkg.Files {
			for _, imp := range file.Imports {
				path := strings.Trim(imp.Path.Value, `"`)
				if !prog.IsModuleLocal(path) {
					continue
				}
				dep := relPath(prog.ModPath, path)
				if !allow[dep] {
					out = append(out, Finding{
						ID:  "layering/forbidden",
						Pos: prog.Fset.Position(imp.Path.Pos()),
						Message: fmt.Sprintf("package %s may not import %s: the edge is not in the layering table",
							key, dep),
					})
				}
			}
		}
	}
	return out, nil
}

// ActualEdges computes the real module-local import graph of the
// analyzed packages, keyed like the layering table. The table test
// pins Allowed equal to this, so a removed edge must be deleted from
// the table (stale rows fail fast, not just missing ones).
func ActualEdges(prog *Program) map[string][]string {
	edges := map[string][]string{}
	for _, pkg := range prog.Pkgs {
		key := relPath(prog.ModPath, pkg.Path)
		seen := map[string]bool{}
		for _, file := range pkg.Files {
			for _, imp := range file.Imports {
				path := strings.Trim(imp.Path.Value, `"`)
				if prog.IsModuleLocal(path) {
					seen[relPath(prog.ModPath, path)] = true
				}
			}
		}
		edges[key] = sortedKeys(seen)
	}
	return edges
}
