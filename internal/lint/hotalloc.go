package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// HotAlloc keeps allocation out of the simulator hot paths. The
// micro-architectural simulation and the pipeline fan-out run
// millions of passes per experiment; an allocation that creeps into
// one of their inner loops costs more than the arithmetic it feeds.
// The analyzer walks the static module-local call graph from the
// configured hot roots, counts the allocation sites in every
// reachable function body, and gates the counts against a committed
// per-function budget — the ledger of sites the repository has
// deliberately accepted (per-call setup, error paths, geometry
// rebuilds).
//
// Counted site kinds: make, new, append, &T{…} and slice/map
// composite literals, function literals (closure headers), go
// statements, non-constant string concatenation, and calls that box a
// concrete value into an interface parameter (one site per call).
// Value-struct composite literals are not counted — they live in
// registers or the stack frame.
//
// Rules:
//
//   - hotalloc/over-budget: a reachable function has more allocation
//     sites than RepoAllocBudget records (unlisted functions have
//     budget zero). New allocation in a hot path must be argued into
//     the ledger, not slipped in.
//   - hotalloc/stale-budget: a reachable function has fewer sites
//     than budgeted. The ledger pins counts exactly, layering-style:
//     an improvement must shrink the committed budget so it cannot
//     silently regress later.
//
// Approximation: the walk resolves static calls only. Interface and
// function-value calls are walk boundaries — the concrete hot
// implementations behind them (the engines) are covered by naming
// their entry points as roots.
type HotAlloc struct {
	// Roots are the hot entry points, as go/types FullName strings.
	Roots []string
	// Budget maps function FullNames to their accepted allocation-site
	// count. Functions not listed must have zero sites.
	Budget map[string]int
}

// NewHotAlloc returns the analyzer configured with the repository's
// committed budget.
func NewHotAlloc() *HotAlloc {
	b := RepoAllocBudget()
	return &HotAlloc{Roots: b.Roots, Budget: b.Budget}
}

func (*HotAlloc) Name() string { return "hotalloc" }
func (*HotAlloc) Doc() string {
	return "functions reachable from the simulator hot paths must match the committed allocation-site budget exactly"
}

// AllocBudget is the committed ledger, also emitted as
// results/hotalloc_budget.json by cmd/flexlint -alloc-report so CI
// can archive the enforced budget next to the findings.
type AllocBudget struct {
	Schema int            `json:"schema"`
	Module string         `json:"module"`
	Roots  []string       `json:"roots"`
	Budget map[string]int `json:"budget"`
}

// Encode renders the ledger in its canonical committed form
// (two-space-indented JSON, sorted keys, trailing newline).
func (b *AllocBudget) Encode() []byte {
	out, err := json.MarshalIndent(b, "", "  ")
	if err != nil { // strings and ints cannot fail to marshal
		panic(err)
	}
	return append(out, '\n')
}

// allocSite is one counted allocation site.
type allocSite struct {
	kind string
	pos  token.Pos
}

// hotFunc is one reachable function's scan result.
type hotFunc struct {
	fn    *types.Func
	decl  *ast.FuncDecl
	pkg   *Package
	sites []allocSite
}

func (a *HotAlloc) Run(prog *Program) ([]Finding, error) {
	if !a.applies(prog) {
		return nil, nil
	}
	reach, err := a.reachable(prog)
	if err != nil {
		return nil, err
	}

	var out []Finding
	names := make([]string, 0, len(reach))
	byName := map[string]*hotFunc{}
	for _, hf := range reach {
		n := hf.fn.FullName()
		names = append(names, n)
		byName[n] = hf
	}
	sort.Strings(names)

	for _, n := range names {
		hf := byName[n]
		budget := a.Budget[n]
		actual := len(hf.sites)
		if actual == budget {
			continue
		}
		id, verdict := "hotalloc/over-budget", "exceeds"
		if actual < budget {
			id, verdict = "hotalloc/stale-budget", "is below"
		}
		out = append(out, Finding{
			ID:  id,
			Pos: prog.Fset.Position(hf.decl.Name.Pos()),
			Message: fmt.Sprintf("hot function %s has %d allocation site(s), which %s the committed budget of %d: %s",
				n, actual, verdict, budget, describeSites(prog.Fset, hf.sites)),
		})
	}

	// Budget entries for functions that are no longer reachable are as
	// stale as shrunk counts; anchor them to the module root since the
	// function they point at may not exist at all.
	for _, n := range sortedBudgetKeys(a.Budget) {
		if byName[n] == nil {
			out = append(out, Finding{
				ID:  "hotalloc/stale-budget",
				Pos: token.Position{Filename: prog.ModRoot},
				Message: fmt.Sprintf("budget lists %s (%d site(s)), but it is not reachable from any hot root — delete the entry",
					n, a.Budget[n]),
			})
		}
	}
	return out, nil
}

// Report computes the actual per-function site counts over the
// reachable set — the data a refreshed budget commits.
func (a *HotAlloc) Report(prog *Program) (*AllocBudget, error) {
	reach, err := a.reachable(prog)
	if err != nil {
		return nil, err
	}
	b := &AllocBudget{Schema: 1, Module: prog.ModPath, Roots: append([]string(nil), a.Roots...), Budget: map[string]int{}}
	sort.Strings(b.Roots)
	for _, hf := range reach {
		if len(hf.sites) > 0 {
			b.Budget[hf.fn.FullName()] = len(hf.sites)
		}
	}
	return b, nil
}

// applies reports whether any configured root lives in the analyzed
// module; when none does (flexlint run on an unrelated tree), the
// analyzer — including its stale-budget sweep — is a no-op.
func (a *HotAlloc) applies(prog *Program) bool {
	for _, name := range a.Roots {
		if prog.IsModuleLocal(fullNamePkgPath(name)) {
			return true
		}
	}
	return false
}

// reachable walks the static call graph from every root and scans
// each visited function once.
func (a *HotAlloc) reachable(prog *Program) ([]*hotFunc, error) {
	declIdx := map[*Package]map[types.Object]*ast.FuncDecl{}
	declOf := func(pkg *Package, fn *types.Func) *ast.FuncDecl {
		idx := declIdx[pkg]
		if idx == nil {
			idx = funcDecls(pkg)
			declIdx[pkg] = idx
		}
		return idx[fn]
	}

	visited := map[*types.Func]*hotFunc{}
	var visit func(fn *types.Func) error
	visit = func(fn *types.Func) error {
		if _, ok := visited[fn]; ok {
			return nil
		}
		if fn.Pkg() == nil || !prog.IsModuleLocal(fn.Pkg().Path()) {
			return nil
		}
		sig, _ := fn.Type().(*types.Signature)
		if sig != nil && sig.Recv() != nil && types.IsInterface(sig.Recv().Type()) {
			return nil // interface method: walk boundary
		}
		pkg, err := prog.Package(fn.Pkg().Path())
		if err != nil {
			return err
		}
		decl := declOf(pkg, fn)
		if decl == nil || decl.Body == nil {
			return nil
		}
		hf := &hotFunc{fn: fn, decl: decl, pkg: pkg}
		visited[fn] = hf
		callees := scanAllocs(pkg, decl, hf)
		for _, c := range callees {
			if err := visit(c); err != nil {
				return err
			}
		}
		return nil
	}

	for _, name := range a.Roots {
		// Roots configured for another module (the repo defaults, when
		// flexlint analyzes an unrelated tree) are skipped, matching
		// the other repo-configured analyzers.
		if !prog.IsModuleLocal(fullNamePkgPath(name)) {
			continue
		}
		fn, err := resolveFullName(prog, name)
		if err != nil {
			return nil, fmt.Errorf("hotalloc: root %s: %w", name, err)
		}
		if err := visit(fn); err != nil {
			return nil, fmt.Errorf("hotalloc: %w", err)
		}
	}

	out := make([]*hotFunc, 0, len(visited))
	for _, hf := range visited {
		out = append(out, hf)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].fn.FullName() < out[j].fn.FullName() })
	return out, nil
}

// scanAllocs scans one function body, recording allocation sites on
// hf (function-literal bodies count toward the enclosing function)
// and returning the statically resolved callees.
func scanAllocs(pkg *Package, decl *ast.FuncDecl, hf *hotFunc) []*types.Func {
	info := pkg.Info
	var callees []*types.Func
	site := func(kind string, pos token.Pos) {
		hf.sites = append(hf.sites, allocSite{kind: kind, pos: pos})
	}

	// Composite literals under a & are counted once, as the &T{…}
	// heap allocation, not again as the literal.
	addrLits := map[*ast.CompositeLit]bool{}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if u, ok := n.(*ast.UnaryExpr); ok && u.Op == token.AND {
			if cl, ok := unparen(u.X).(*ast.CompositeLit); ok {
				addrLits[cl] = true
			}
		}
		return true
	})

	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.GoStmt:
			site("go", x.Pos())
		case *ast.FuncLit:
			site("closure", x.Pos())
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if cl, ok := unparen(x.X).(*ast.CompositeLit); ok && addrLits[cl] {
					site("&composite", x.Pos())
				}
			}
		case *ast.CompositeLit:
			if addrLits[x] {
				return true
			}
			if tv, ok := info.Types[x]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Slice, *types.Map:
					site("composite", x.Pos())
				}
			}
		case *ast.BinaryExpr:
			if x.Op == token.ADD {
				if tv, ok := info.Types[x]; ok && tv.Value == nil {
					if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						site("string-concat", x.Pos())
					}
				}
			}
		case *ast.CallExpr:
			if c := scanAllocCall(info, x, site); c != nil {
				callees = append(callees, c)
			}
		}
		return true
	})
	return callees
}

// scanAllocCall classifies one call: builtin allocators and
// interface-boxing argument passing are sites; a statically resolved
// function is returned for the walk.
func scanAllocCall(info *types.Info, call *ast.CallExpr, site func(string, token.Pos)) *types.Func {
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return nil // conversion
	}
	fun := unparen(call.Fun)
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make", "new", "append":
				site(b.Name(), call.Pos())
			}
			return nil
		}
	}
	fn := calleeObj(info, fun)
	if fn == nil {
		return nil
	}
	if sig, ok := fn.Type().(*types.Signature); ok && boxesIntoInterface(info, call, sig) {
		site("iface-boxing", call.Pos())
	}
	return fn
}

// boxesIntoInterface reports whether any argument of call is a
// concrete (non-interface, non-nil) value passed to an interface
// parameter of sig — the allocation go calls "interface boxing".
func boxesIntoInterface(info *types.Info, call *ast.CallExpr, sig *types.Signature) bool {
	params := sig.Params()
	np := params.Len()
	if np == 0 {
		return false
	}
	for i, arg := range call.Args {
		p := i
		if p >= np {
			p = np - 1
		}
		pt := params.At(p).Type()
		if sig.Variadic() && p == np-1 {
			if s, ok := pt.(*types.Slice); ok && !call.Ellipsis.IsValid() {
				pt = s.Elem()
			}
		}
		if !types.IsInterface(pt) {
			continue
		}
		tv, ok := info.Types[arg]
		if !ok || tv.Type == nil {
			continue
		}
		if tv.IsNil() || types.IsInterface(tv.Type.Underlying()) {
			continue
		}
		return true
	}
	return false
}

// describeSites renders the sites compactly for the finding message.
func describeSites(fset *token.FileSet, sites []allocSite) string {
	if len(sites) == 0 {
		return "no sites remain"
	}
	parts := make([]string, 0, len(sites))
	for _, s := range sites {
		pos := fset.Position(s.pos)
		parts = append(parts, fmt.Sprintf("%s at %s:%d", s.kind, lastPathSegment(pos.Filename), pos.Line))
	}
	return strings.Join(parts, ", ")
}

func lastPathSegment(p string) string {
	if i := strings.LastIndexAny(p, "/\\"); i >= 0 {
		return p[i+1:]
	}
	return p
}

func sortedBudgetKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// RepoAllocBudget is the committed allocation ledger for this
// repository: the hot roots and, for every function reachable from
// them, the allocation-site count the tree has accepted. The counts
// are pinned exactly — TestRepoAllocBudgetMatchesReality regenerates
// this table from source and diffs it — so both a new allocation and
// a forgotten shrink fail the suite.
//
// What the entries are: MicroSimulate's remaining sites are per-call
// setup (the output tensor) plus cold error returns — its per-pass
// working set, IADP banks, and psum buffer live on the engine
// (core.microScratch; psumScratch's one site and NewBankedBuffer are
// the high-water rebuilds). Scheduler.Map's three are the fan-out
// itself (error slots, worker closure, go). Each LayerCacheKey's one
// site is the key buffer it returns (the AppendKey helpers' sites are
// the append growth of that same buffer); Cache.insert's one is the
// sorted-insert shift. Every 1–2-site store/bank accessor is a panic
// or error path whose fmt call boxes its operands; the hot success
// paths are allocation-free.
func RepoAllocBudget() *AllocBudget {
	return &AllocBudget{
		Schema: 1,
		Module: "flexflow",
		Roots: []string{
			"(*flexflow/internal/core.Engine).LayerCacheKey",
			"(*flexflow/internal/core.Engine).MicroSimulate",
			"(*flexflow/internal/mapping.Engine).LayerCacheKey",
			"(*flexflow/internal/mapping2d.Engine).LayerCacheKey",
			"(*flexflow/internal/rowstat.Engine).LayerCacheKey",
			"(*flexflow/internal/systolic.Engine).LayerCacheKey",
			"(*flexflow/internal/tiling.Engine).LayerCacheKey",
			"(flexflow/internal/pipeline.Scheduler).Map",
			"flexflow/internal/pipeline.RunLayer",
		},
		Budget: map[string]int{
			"(*flexflow/internal/core.Engine).LayerCacheKey":      1,
			"(*flexflow/internal/core.Engine).MicroSimulate":      12,
			"(*flexflow/internal/core.Engine).physRows":           1,
			"(*flexflow/internal/core.Engine).psumScratch":        1,
			// make + the prefix append (capacity 224 covers the digest,
			// so the append never reallocates at runtime).
			"(*flexflow/internal/mapping.Engine).LayerCacheKey":   2,
			"(*flexflow/internal/mapping2d.Engine).LayerCacheKey": 1,
			"(*flexflow/internal/pipeline.Cache).insert":          1,
			"(*flexflow/internal/rowstat.Engine).LayerCacheKey":   1,
			"(*flexflow/internal/systolic.Engine).LayerCacheKey":  1,
			"(*flexflow/internal/tiling.Engine).LayerCacheKey":    1,
			"flexflow/internal/arch.AppendKeyBool":                3,
			"flexflow/internal/arch.AppendKeyInt":                 1,
			"flexflow/internal/arch.AppendKeyString":              2,
			"(*flexflow/internal/core.PE).Preload":                2,
			"(*flexflow/internal/core.Row).Step":                  1,
			"(*flexflow/internal/fault.Injector).StoreReadHook":   1,
			"(*flexflow/internal/mem.Bank).Read":                  1,
			"(*flexflow/internal/mem.Bank).Write":                 1,
			"(*flexflow/internal/mem.BankedBuffer).Bank":          1,
			"(*flexflow/internal/mem.LocalStore).Read":            1,
			"(*flexflow/internal/mem.LocalStore).Write":           1,
			"(flexflow/internal/arch.T).Validate":                 8,
			"(flexflow/internal/mem.NeuronLayout).Place":          1,
			"(flexflow/internal/nn.ConvLayer).Validate":           2,
			"(flexflow/internal/pipeline.Scheduler).Map":          3,
			"flexflow/internal/core.NewPE":                        1,
			"flexflow/internal/core.NewRow":                       2,
			"flexflow/internal/mem.NewBank":                       2,
			"flexflow/internal/mem.NewBankedBuffer":               3,
			"flexflow/internal/mem.NewLocalStore":                 2,
			"flexflow/internal/tensor.NewMap2":                    3,
			"flexflow/internal/tensor.NewMap3":                    2,
		},
	}
}
