package lint

// chanaudit certifies channel ownership and protocol:
//
//   - chanaudit/direction: a function parameter declared as a
//     bidirectional channel but used in only one direction (and never
//     escaping as a value) must declare that direction (<-chan /
//     chan<-) — the compiler then enforces the protocol.
//   - chanaudit/multi-close: close() of the same channel from more
//     than one function has no single owner; a second closer is a
//     panic waiting for a race. The first closing function (in source
//     order) is taken as the owner, every other closing site is
//     flagged.
//   - chanaudit/send-no-cancel: a send to a channel-typed struct
//     field (the bounded queues of the serving layer) must have a
//     cancellation path — a select with a default or
//     ctx.Done()/shutdown arm — unless the sender is the channel's
//     closing owner (the owner drives the protocol and knows the
//     receiver outlives it) or lives in package main.
//
// The channel inventory (field, element type, declared direction,
// closer) feeds the conc manifest certificate.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// ChanAudit is the channel-discipline analyzer. It has no
// configuration: the ownership contract is universal.
type ChanAudit struct{}

// NewChanAudit returns the analyzer.
func NewChanAudit() *ChanAudit { return &ChanAudit{} }

func (*ChanAudit) Name() string { return "chanaudit" }
func (*ChanAudit) Doc() string {
	return "channel params declare direction where expressible; one close owner per channel; field sends have a cancellation path"
}

// chanFieldInfo is one channel-typed struct field.
type chanFieldInfo struct {
	name string // "pkg/path.Type.field"
	elem string
	dir  string
}

// closeSite is one close(x) call.
type closeSite struct {
	fn  *types.Func
	pos token.Pos
}

// chanFacts is the per-program harvest the rules and the manifest
// share.
type chanFacts struct {
	fields map[types.Object]*chanFieldInfo
	order  []types.Object              // deterministic field order
	closes map[types.Object][]closeSite // per closed entity (field or local)
}

// Run applies the three rules.
func (a *ChanAudit) Run(prog *Program) ([]Finding, error) {
	facts, err := collectChanFacts(prog)
	if err != nil {
		return nil, err
	}
	var findings []Finding

	// multi-close: every site outside the owning (first) function.
	for _, obj := range facts.order {
		findings = append(findings, multiCloseFindings(prog, obj, facts.closes[obj])...)
	}
	for obj, sites := range facts.closes {
		if _, isField := facts.fields[obj]; !isField {
			findings = append(findings, multiCloseFindings(prog, obj, sites)...)
		}
	}

	// send-no-cancel and direction, per package.
	for _, pkg := range prog.Pkgs {
		isMain := pkg.Types.Name() == "main"
		for _, file := range pkg.Files {
			for _, d := range file.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				if !isMain {
					findings = append(findings, sendNoCancelFindings(prog, pkg, fn, fd.Body, facts)...)
				}
				findings = append(findings, directionFindings(prog, pkg, fd)...)
			}
		}
	}
	return findings, nil
}

// Channels returns the channel-field inventory for the concurrency
// manifest.
func (a *ChanAudit) Channels(prog *Program) ([]ChannelEntry, error) {
	facts, err := collectChanFacts(prog)
	if err != nil {
		return nil, err
	}
	var out []ChannelEntry
	for _, obj := range facts.order {
		info := facts.fields[obj]
		closer := "none"
		if sites := facts.closes[obj]; len(sites) > 0 {
			closer = closeOwner(sites).FullName()
		}
		out = append(out, ChannelEntry{Channel: info.name, Elem: info.elem, Dir: info.dir, Closer: closer})
	}
	return out, nil
}

func chanDirString(dir types.ChanDir) string {
	switch dir {
	case types.RecvOnly:
		return "recv-only"
	case types.SendOnly:
		return "send-only"
	}
	return "bidirectional"
}

// collectChanFacts indexes channel-typed struct fields and every
// close() site of the analyzed packages.
func collectChanFacts(prog *Program) (*chanFacts, error) {
	facts := &chanFacts{
		fields: map[types.Object]*chanFieldInfo{},
		closes: map[types.Object][]closeSite{},
	}
	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				ts, ok := n.(*ast.TypeSpec)
				if !ok {
					return true
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					return true
				}
				for _, f := range st.Fields.List {
					ch := chanType(pkg.Info.TypeOf(f.Type))
					if ch == nil {
						continue
					}
					for _, name := range f.Names {
						obj := pkg.Info.Defs[name]
						if obj == nil {
							continue
						}
						facts.fields[obj] = &chanFieldInfo{
							name: pkg.Path + "." + ts.Name.Name + "." + name.Name,
							elem: types.TypeString(ch.Elem(), nil),
							dir:  chanDirString(ch.Dir()),
						}
						facts.order = append(facts.order, obj)
					}
				}
				return true
			})
		}
		for _, file := range pkg.Files {
			for _, d := range file.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok || len(call.Args) != 1 {
						return true
					}
					id, ok := unparen(call.Fun).(*ast.Ident)
					if !ok || id.Name != "close" {
						return true
					}
					if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); !isBuiltin {
						return true
					}
					if obj := chanEntity(pkg.Info, call.Args[0]); obj != nil {
						facts.closes[obj] = append(facts.closes[obj], closeSite{fn: fn, pos: call.Pos()})
					}
					return true
				})
			}
		}
	}
	return facts, nil
}

// chanEntity resolves the object a channel expression names: a struct
// field (via selector) or a plain variable.
func chanEntity(info *types.Info, e ast.Expr) types.Object {
	switch x := unparen(e).(type) {
	case *ast.Ident:
		return firstObj(info, x)
	case *ast.SelectorExpr:
		if obj := info.Uses[x.Sel]; obj != nil {
			return obj
		}
		if sel := info.Selections[x]; sel != nil {
			return sel.Obj()
		}
	}
	return nil
}

// closeOwner is the close site that owns the channel: the first one
// in source order.
func closeOwner(sites []closeSite) *types.Func {
	owner := sites[0]
	for _, s := range sites[1:] {
		if s.pos < owner.pos {
			owner = s
		}
	}
	return owner.fn
}

func multiCloseFindings(prog *Program, obj types.Object, sites []closeSite) []Finding {
	if len(sites) < 2 {
		return nil
	}
	owner := closeOwner(sites)
	distinct := false
	for _, s := range sites {
		if s.fn != owner {
			distinct = true
		}
	}
	if !distinct {
		return nil // several close paths inside one owner are its own protocol
	}
	var findings []Finding
	for _, s := range sites {
		if s.fn == owner {
			continue
		}
		findings = append(findings, Finding{
			ID:  "chanaudit/multi-close",
			Pos: prog.Fset.Position(s.pos),
			Message: fmt.Sprintf("close of %s in %s, but %s already owns the close; a channel has exactly one closing owner",
				obj.Name(), s.fn.FullName(), owner.FullName()),
		})
	}
	return findings
}

// sendNoCancelFindings flags sends to channel-typed struct fields
// that have no cancellation path and are not the owner's.
func sendNoCancelFindings(prog *Program, pkg *Package, fn *types.Func, body *ast.BlockStmt, facts *chanFacts) []Finding {
	compliant := map[ast.Node]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		if selectHasDefault(sel) || selectHasCancelArm(sel) {
			markCommNodes(sel, compliant)
		}
		return true
	})
	var findings []Finding
	ast.Inspect(body, func(n ast.Node) bool {
		send, ok := n.(*ast.SendStmt)
		if !ok || compliant[send] {
			return true
		}
		obj := chanEntity(pkg.Info, send.Chan)
		if obj == nil {
			return true
		}
		info, isField := facts.fields[obj]
		if !isField {
			return true
		}
		if sites := facts.closes[obj]; len(sites) > 0 && closeOwner(sites) == fn {
			return true // the closing owner drives the protocol
		}
		findings = append(findings, Finding{
			ID:  "chanaudit/send-no-cancel",
			Pos: prog.Fset.Position(send.Pos()),
			Message: fmt.Sprintf("send to %s in %s has no cancellation path (not in a select with a default or shutdown arm, and %s is not the channel's closing owner)",
				info.name, fn.FullName(), fn.Name()),
		})
		return true
	})
	return findings
}

// directionFindings flags bidirectional channel parameters used in
// only one direction.
func directionFindings(prog *Program, pkg *Package, fd *ast.FuncDecl) []Finding {
	var findings []Finding
	if fd.Type.Params == nil {
		return nil
	}
	for _, field := range fd.Type.Params.List {
		ch := chanType(pkg.Info.TypeOf(field.Type))
		if ch == nil || ch.Dir() != types.SendRecv {
			continue
		}
		for _, name := range field.Names {
			obj := pkg.Info.Defs[name]
			if obj == nil {
				continue
			}
			sends, recvs, escapes := classifyChanUses(pkg.Info, fd.Body, obj)
			if escapes || sends == recvs {
				continue // both directions, or no direction claim possible
			}
			want := "<-chan"
			used := "received from"
			if sends {
				want = "chan<-"
				used = "sent to"
			}
			findings = append(findings, Finding{
				ID:  "chanaudit/direction",
				Pos: prog.Fset.Position(name.Pos()),
				Message: fmt.Sprintf("parameter %s of %s is only %s; declare it %s %s so the compiler enforces the direction",
					name.Name, fd.Name.Name, used, want, types.TypeString(ch.Elem(), types.RelativeTo(pkg.Types))),
			})
		}
	}
	return findings
}

// classifyChanUses inspects every use of a channel parameter:
// direction-specific operations count toward a direction; any other
// use (an argument, an assignment, a return) escapes the value and
// forfeits the direction claim.
func classifyChanUses(info *types.Info, body *ast.BlockStmt, obj types.Object) (sends, recvs, escapes bool) {
	isObj := func(e ast.Expr) *ast.Ident {
		if id, ok := unparen(e).(*ast.Ident); ok && firstObj(info, id) == obj {
			return id
		}
		return nil
	}
	counted := map[*ast.Ident]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SendStmt:
			if id := isObj(x.Chan); id != nil {
				sends = true
				counted[id] = true
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				if id := isObj(x.X); id != nil {
					recvs = true
					counted[id] = true
				}
			}
		case *ast.RangeStmt:
			if id := isObj(x.X); id != nil {
				recvs = true
				counted[id] = true
			}
		case *ast.CallExpr:
			if fid, ok := unparen(x.Fun).(*ast.Ident); ok && fid.Name == "close" && len(x.Args) == 1 {
				if _, isBuiltin := info.Uses[fid].(*types.Builtin); isBuiltin {
					if id := isObj(x.Args[0]); id != nil {
						sends = true // closing is the send side's act
						counted[id] = true
					}
				}
			}
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && !counted[id] && firstObj(info, id) == obj {
			escapes = true
		}
		return true
	})
	return sends, recvs, escapes
}
