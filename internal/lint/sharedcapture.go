package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// SharedCapture proves the independence contract the deterministic
// scheduler relies on. Scheduler.Map runs its function argument
// concurrently at worker counts above one, with no locks: the results
// stay bit-identical only because each invocation touches its own
// per-index slot and nothing else. That contract lives in a doc
// comment on Map; this analyzer makes it checkable. Every call to a
// configured fan-out function must pass a function literal, and
// inside the literal the only writes that may leave the invocation's
// own frame are index-writes into a captured slice whose every index
// expression is derived from the closure's index parameter — the
// result-slot pattern (`res.Layers[i] = lr`, or `i, j := idx/n, idx%n`
// feeding `out[i][j]`).
//
// Rules:
//
//   - sharedcapture/non-literal: the function argument is not a
//     literal, so its captures cannot be checked at the call site.
//   - sharedcapture/captured-write: the closure writes a captured
//     variable (directly, through a field or pointer, or into a
//     captured slice at an index not derived from the index
//     parameter).
//   - sharedcapture/map-write: the closure writes into a captured
//     map. Distinct keys do not help — concurrent map writes fault at
//     runtime regardless of disjointness.
//
// A variable counts as derived when it is the index parameter or a
// closure-local assigned from an expression that mentions a derived
// variable (`i, j := idx/len(names), idx%len(names)`). Reads of
// captured state are not flagged — concurrent reads are safe, and the
// scheduler's jobs are expected to share read-only inputs. Mutation
// hidden behind calls is out of this analyzer's scope by design: the
// closure bodies on the hot paths call into the engine Model methods,
// whose freedom from shared mutation the purity analyzer certifies.
type SharedCapture struct {
	// MapFuncs are the fan-out entry points whose function argument
	// runs concurrently, as go/types FullName strings.
	MapFuncs []string
}

// NewSharedCapture returns the analyzer configured for this
// repository's scheduler.
func NewSharedCapture() *SharedCapture {
	return &SharedCapture{MapFuncs: []string{"(flexflow/internal/pipeline.Scheduler).Map"}}
}

func (*SharedCapture) Name() string { return "sharedcapture" }
func (*SharedCapture) Doc() string {
	return "closures handed to the parallel scheduler may only write per-index slots of captured slices"
}

func (a *SharedCapture) Run(prog *Program) ([]Finding, error) {
	targets := map[*types.Func]bool{}
	for _, name := range a.MapFuncs {
		// Entry points configured for another module (the repo
		// defaults, when flexlint analyzes an unrelated tree) are
		// skipped, matching the other repo-configured analyzers.
		if !prog.IsModuleLocal(fullNamePkgPath(name)) {
			continue
		}
		fn, err := resolveFullName(prog, name)
		if err != nil {
			return nil, fmt.Errorf("sharedcapture: map func %s: %w", name, err)
		}
		targets[fn] = true
	}
	if len(targets) == 0 {
		return nil, nil
	}

	var out []Finding
	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeObj(pkg.Info, unparen(call.Fun))
				if fn == nil || !targets[fn] {
					return true
				}
				out = append(out, a.checkCall(prog, pkg, call, fn)...)
				return true
			})
		}
	}
	return out, nil
}

// checkCall validates one fan-out call site.
func (a *SharedCapture) checkCall(prog *Program, pkg *Package, call *ast.CallExpr, fn *types.Func) []Finding {
	var arg ast.Expr
	for _, e := range call.Args {
		if tv, ok := pkg.Info.Types[e]; ok && tv.Type != nil {
			if _, ok := tv.Type.Underlying().(*types.Signature); ok {
				arg = e
				break
			}
		}
	}
	if arg == nil {
		return nil
	}
	lit, ok := unparen(arg).(*ast.FuncLit)
	if !ok {
		return []Finding{{
			ID:  "sharedcapture/non-literal",
			Pos: prog.Fset.Position(arg.Pos()),
			Message: fmt.Sprintf("argument to %s must be a function literal so its captures can be checked at the call site",
				fn.FullName()),
		}}
	}
	return a.checkLit(prog, pkg, lit, fn)
}

// checkLit walks one closure body, flagging every write that escapes
// the invocation's own frame outside the result-slot pattern.
func (a *SharedCapture) checkLit(prog *Program, pkg *Package, lit *ast.FuncLit, fn *types.Func) []Finding {
	info := pkg.Info
	inside := func(obj types.Object) bool {
		return obj != nil && lit.Pos() <= obj.Pos() && obj.Pos() < lit.End()
	}

	// derived tracks variables whose value is a function of the index
	// parameter. Seed: the literal's first parameter. Propagate through
	// closure-local assignments in source order (ast.Inspect visits
	// statements lexically).
	derived := map[types.Object]bool{}
	if params := lit.Type.Params; params != nil && len(params.List) > 0 {
		for _, name := range params.List[0].Names {
			if obj := info.Defs[name]; obj != nil {
				derived[obj] = true
			}
		}
	}
	mentionsDerived := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && derived[info.Uses[id]] {
				found = true
			}
			return !found
		})
		return found
	}

	var out []Finding
	flag := func(id string, pos token.Pos, format string, args ...any) {
		out = append(out, Finding{
			ID:      id,
			Pos:     prog.Fset.Position(pos),
			Message: fmt.Sprintf(format, args...),
		})
	}

	// checkWrite classifies one written lvalue.
	checkWrite := func(lhs ast.Expr) {
		lhs = unparen(lhs)

		// Peel index layers, remembering each index expression and
		// whether any indexed container is a map.
		var indices []ast.Expr
		sawMap := false
		base := lhs
		for {
			ix, ok := unparen(base).(*ast.IndexExpr)
			if !ok {
				break
			}
			indices = append(indices, ix.Index)
			if tv, ok := info.Types[ix.X]; ok && tv.Type != nil {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					sawMap = true
				}
			}
			base = ix.X
		}

		root := rootObject(info, base)
		if root == nil || inside(root) {
			return // invocation-local: each fn(i) call has its own frame
		}
		name := root.Name()
		if len(indices) == 0 {
			switch unparen(base).(type) {
			case *ast.StarExpr:
				flag("sharedcapture/captured-write", lhs.Pos(),
					"closure passed to %s writes through captured pointer %s", fn.FullName(), name)
			case *ast.SelectorExpr:
				flag("sharedcapture/captured-write", lhs.Pos(),
					"closure passed to %s writes a field of captured %s", fn.FullName(), name)
			default:
				flag("sharedcapture/captured-write", lhs.Pos(),
					"closure passed to %s writes captured variable %s", fn.FullName(), name)
			}
			return
		}
		if sawMap {
			flag("sharedcapture/map-write", lhs.Pos(),
				"closure passed to %s writes into captured map %s; concurrent map writes fault even at distinct keys", fn.FullName(), name)
			return
		}
		for _, ix := range indices {
			if !mentionsDerived(ix) {
				flag("sharedcapture/captured-write", lhs.Pos(),
					"closure passed to %s writes captured %s at an index not derived from the closure's index parameter", fn.FullName(), name)
				return
			}
		}
	}

	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			if x.Tok == token.DEFINE {
				// New locals are invocation-private; record whether each
				// is derived from the index parameter.
				allDerived := true
				for _, rhs := range x.Rhs {
					if !mentionsDerived(rhs) {
						allDerived = false
					}
				}
				for _, l := range x.Lhs {
					if id, ok := unparen(l).(*ast.Ident); ok {
						if obj := info.Defs[id]; obj != nil && allDerived {
							derived[obj] = true
						}
					}
				}
				return true
			}
			for i, l := range x.Lhs {
				checkWrite(l)
				// A plain reassignment re-derives (or un-derives) a local.
				if id, ok := unparen(l).(*ast.Ident); ok {
					if obj := info.Uses[id]; obj != nil && inside(obj) {
						rhs := x.Rhs[0]
						if len(x.Rhs) == len(x.Lhs) {
							rhs = x.Rhs[i]
						}
						derived[obj] = mentionsDerived(rhs)
					}
				}
			}
		case *ast.IncDecStmt:
			checkWrite(x.X)
		case *ast.RangeStmt:
			if x.Tok == token.ASSIGN {
				if x.Key != nil {
					checkWrite(x.Key)
				}
				if x.Value != nil {
					checkWrite(x.Value)
				}
			}
		}
		return true
	})
	return out
}

// rootObject resolves the leftmost identifier of an lvalue chain
// (selectors, stars, indexes) to its object.
func rootObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := unparen(e).(type) {
		case *ast.Ident:
			if obj := info.Uses[x]; obj != nil {
				return obj
			}
			return info.Defs[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return nil
		}
	}
}
