package lint

// Golden-file self-tests: each analyzer runs over a fixture package
// under testdata/ whose files carry `// want "regexp"` comments on the
// lines expected to be flagged. The test fails on any unexpected,
// missing or mismatched finding, so the fixtures double as the
// analyzers' behavioral specification.

import (
	"regexp"
	"slices"
	"sort"
	"strings"
	"testing"
)

// quotedRE extracts the quoted regexps of one want comment.
var quotedRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

type wantKey struct {
	file string
	line int
}

// parseWants collects the want expectations of every analyzed file.
func parseWants(t *testing.T, prog *Program) map[wantKey][]*regexp.Regexp {
	t.Helper()
	wants := map[wantKey][]*regexp.Regexp{}
	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					rest, ok := strings.CutPrefix(text, "want ")
					if !ok {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					key := wantKey{pos.Filename, pos.Line}
					for _, m := range quotedRE.FindAllStringSubmatch(rest, -1) {
						re, err := regexp.Compile(m[1])
						if err != nil {
							t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, m[1], err)
						}
						wants[key] = append(wants[key], re)
					}
					if len(wants[key]) == 0 {
						t.Fatalf("%s:%d: want comment without a quoted regexp", pos.Filename, pos.Line)
					}
				}
			}
		}
	}
	return wants
}

// runGolden loads the fixture tree under root and checks the
// analyzer's findings against the want comments.
func runGolden(t *testing.T, a Analyzer, root string) {
	t.Helper()
	prog, err := Load(".", root+"/...")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := RunAnalyzers(prog, []Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}
	wants := parseWants(t, prog)
	for _, f := range findings {
		key := wantKey{f.Pos.Filename, f.Pos.Line}
		matched := false
		for i, re := range wants[key] {
			if re.MatchString(f.Message) || re.MatchString(f.ID) {
				wants[key] = append(wants[key][:i], wants[key][i+1:]...)
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f.Render(prog.ModRoot))
		}
	}
	for key, res := range wants {
		for _, re := range res {
			t.Errorf("%s:%d: expected finding matching %q, got none", key.file, key.line, re)
		}
	}
}

func TestFixedSatGolden(t *testing.T) {
	runGolden(t, NewFixedSat(), "testdata/fixedsat")
}

func TestDetSimGolden(t *testing.T) {
	a := NewDetSim()
	// The fixture lives under internal/lint, which the repository
	// configuration exempts; rescope the contract to the fixture.
	a.Match = func(path string) bool {
		return strings.Contains(path, "/testdata/detsim/")
	}
	runGolden(t, a, "testdata/detsim")
}

func TestCounterAuditGolden(t *testing.T) {
	const base = "flexflow/internal/lint/testdata/counteraudit/"
	a := &CounterAudit{
		ResultPkg:  base + "archx",
		ResultType: "Result",
		EnergyPkg:  base + "energyx",
		EnergyFunc: "LayerEnergy",
		SimPkgs:    []string{base + "simx"},
	}
	runGolden(t, a, "testdata/counteraudit")
}

func TestErrDropGolden(t *testing.T) {
	runGolden(t, NewErrDrop(), "testdata/errdrop")
}

func TestLayeringGolden(t *testing.T) {
	const base = "internal/lint/testdata/layering/"
	a := &Layering{Allowed: map[string][]string{
		base + "a": {base + "b"},
		base + "b": {},
		base + "e": {},
		// c is deliberately untracked.
	}}
	runGolden(t, a, "testdata/layering")
}

func TestUnitCheckGolden(t *testing.T) {
	const upkg = "flexflow/internal/lint/testdata/unitcheck/unitx"
	a := &UnitCheck{
		Fields: map[string]string{
			upkg + ".Result.Cycles": UnitCycles,
			upkg + ".Result.MACs":   UnitEvents,
			upkg + ".Result.Loads":  UnitEvents,
			upkg + ".Result.PEs":    UnitPlain,
			upkg + ".Tariff.MAC":    UnitPJ,
		},
		Funcs:  map[string]string{upkg + ".IdleSlots": UnitEvents},
		Exempt: []string{upkg + ".IdleSlots"},
	}
	runGolden(t, a, "testdata/unitcheck")
}

func TestAPIGuardGolden(t *testing.T) {
	a := &APIGuard{
		Pkg:       "flexflow/internal/lint/testdata/apiguard/apix",
		GuardFunc: "guard",
	}
	runGolden(t, a, "testdata/apiguard")
}

func TestHookParityGolden(t *testing.T) {
	const base = "flexflow/internal/lint/testdata/hookparity/"
	a := &HookParity{
		FaultPkg:   base + "faultx",
		SiteType:   "Site",
		WiringPkgs: []string{base + "corex"},
		ImplicitWiring: map[string][]string{
			"SiteImplicit": {"(*" + base + "faultx.Injector).MACZero"},
		},
		HookPkgs:   []string{base + "memx"},
		EnergyPkg:  base + "energyx",
		ParamsType: "Tariff",
		EnergyFunc: "Bill",
	}
	runGolden(t, a, "testdata/hookparity")
}

func TestConcSafeGolden(t *testing.T) {
	runGolden(t, NewConcSafe(), "testdata/concsafe")
}

// TestIgnoreGolden pins the suppression mechanism end to end: both
// placements suppress, and a reason is mandatory.
func TestIgnoreGolden(t *testing.T) {
	runGolden(t, NewErrDrop(), "testdata/ignore")
}

// TestRepoClean is the self-gate: the repository's own tree must be
// free of findings under the default suite, mirroring what
// `flexlint ./...` enforces in CI.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	prog, err := Load(".")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := RunAnalyzers(prog, DefaultAnalyzers())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f.Render(prog.ModRoot))
	}
}

// TestAnalyzerMetadata keeps names, docs and ID prefixes consistent.
func TestAnalyzerMetadata(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range DefaultAnalyzers() {
		name := a.Name()
		if name == "" || a.Doc() == "" {
			t.Errorf("analyzer %T lacks a name or doc", a)
		}
		if seen[name] {
			t.Errorf("duplicate analyzer name %q", name)
		}
		seen[name] = true
		if strings.ContainsAny(name, "/ ") {
			t.Errorf("analyzer name %q must be a single path segment", name)
		}
	}
	if len(seen) != 9 {
		t.Errorf("expected the 9-analyzer suite, got %d", len(seen))
	}
}

// TestLayeringTableMatchesReality pins the committed DAG exactly
// against the module's real import graph: a new package or a new edge
// must be added to RepoLayering, and a removed edge must be deleted
// from it — stale rows fail as fast as missing ones.
func TestLayeringTableMatchesReality(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	prog, err := Load(".")
	if err != nil {
		t.Fatal(err)
	}
	actual := ActualEdges(prog)
	table := RepoLayering()
	for pkg, deps := range actual {
		row, ok := table[pkg]
		if !ok {
			t.Errorf("package %s is missing from RepoLayering", pkg)
			continue
		}
		sort.Strings(row)
		if !slices.Equal(row, deps) {
			t.Errorf("RepoLayering[%q] = %v, but the real imports are %v", pkg, row, deps)
		}
	}
	for pkg := range table {
		if _, ok := actual[pkg]; !ok {
			t.Errorf("RepoLayering lists %s, which no longer exists in the module", pkg)
		}
	}
}
