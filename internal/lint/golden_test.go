package lint

// Golden-file self-tests: each analyzer runs over a fixture package
// under testdata/ whose files carry `// want "regexp"` comments on the
// lines expected to be flagged. The test fails on any unexpected,
// missing or mismatched finding, so the fixtures double as the
// analyzers' behavioral specification.

import (
	"maps"
	"regexp"
	"slices"
	"sort"
	"strings"
	"testing"
)

// quotedRE extracts the quoted regexps of one want comment.
var quotedRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

type wantKey struct {
	file string
	line int
}

// parseWants collects the want expectations of every analyzed file.
func parseWants(t *testing.T, prog *Program) map[wantKey][]*regexp.Regexp {
	t.Helper()
	wants := map[wantKey][]*regexp.Regexp{}
	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					rest, ok := strings.CutPrefix(text, "want ")
					if !ok {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					key := wantKey{pos.Filename, pos.Line}
					for _, m := range quotedRE.FindAllStringSubmatch(rest, -1) {
						re, err := regexp.Compile(m[1])
						if err != nil {
							t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, m[1], err)
						}
						wants[key] = append(wants[key], re)
					}
					if len(wants[key]) == 0 {
						t.Fatalf("%s:%d: want comment without a quoted regexp", pos.Filename, pos.Line)
					}
				}
			}
		}
	}
	return wants
}

// runGolden loads the fixture tree under root and checks the
// analyzer's findings against the want comments.
func runGolden(t *testing.T, a Analyzer, root string) {
	t.Helper()
	prog, err := Load(".", root+"/...")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := RunAnalyzers(prog, []Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}
	wants := parseWants(t, prog)
	for _, f := range findings {
		key := wantKey{f.Pos.Filename, f.Pos.Line}
		matched := false
		for i, re := range wants[key] {
			if re.MatchString(f.Message) || re.MatchString(f.ID) {
				wants[key] = append(wants[key][:i], wants[key][i+1:]...)
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f.Render(prog.ModRoot))
		}
	}
	for key, res := range wants {
		for _, re := range res {
			t.Errorf("%s:%d: expected finding matching %q, got none", key.file, key.line, re)
		}
	}
}

func TestFixedSatGolden(t *testing.T) {
	runGolden(t, NewFixedSat(), "testdata/fixedsat")
}

func TestDetSimGolden(t *testing.T) {
	a := NewDetSim()
	// The fixture lives under internal/lint, which the repository
	// configuration exempts; rescope the contract to the fixture.
	a.Match = func(path string) bool {
		return strings.Contains(path, "/testdata/detsim/")
	}
	runGolden(t, a, "testdata/detsim")
}

func TestCounterAuditGolden(t *testing.T) {
	const base = "flexflow/internal/lint/testdata/counteraudit/"
	a := &CounterAudit{
		ResultPkg:  base + "archx",
		ResultType: "Result",
		EnergyPkg:  base + "energyx",
		EnergyFunc: "LayerEnergy",
		SimPkgs:    []string{base + "simx"},
	}
	runGolden(t, a, "testdata/counteraudit")
}

func TestErrDropGolden(t *testing.T) {
	runGolden(t, NewErrDrop(), "testdata/errdrop")
}

func TestLayeringGolden(t *testing.T) {
	const base = "internal/lint/testdata/layering/"
	a := &Layering{Allowed: map[string][]string{
		base + "a": {base + "b"},
		base + "b": {},
		base + "e": {},
		// c is deliberately untracked.
	}}
	runGolden(t, a, "testdata/layering")
}

func TestUnitCheckGolden(t *testing.T) {
	const upkg = "flexflow/internal/lint/testdata/unitcheck/unitx"
	a := &UnitCheck{
		Fields: map[string]string{
			upkg + ".Result.Cycles": UnitCycles,
			upkg + ".Result.MACs":   UnitEvents,
			upkg + ".Result.Loads":  UnitEvents,
			upkg + ".Result.PEs":    UnitPlain,
			upkg + ".Tariff.MAC":    UnitPJ,
		},
		Funcs:  map[string]string{upkg + ".IdleSlots": UnitEvents},
		Exempt: []string{upkg + ".IdleSlots"},
	}
	runGolden(t, a, "testdata/unitcheck")
}

func TestAPIGuardGolden(t *testing.T) {
	a := &APIGuard{
		Pkg:       "flexflow/internal/lint/testdata/apiguard/apix",
		GuardFunc: "guard",
	}
	runGolden(t, a, "testdata/apiguard")
}

func TestHookParityGolden(t *testing.T) {
	const base = "flexflow/internal/lint/testdata/hookparity/"
	a := &HookParity{
		FaultPkg:   base + "faultx",
		SiteType:   "Site",
		WiringPkgs: []string{base + "corex"},
		ImplicitWiring: map[string][]string{
			"SiteImplicit": {"(*" + base + "faultx.Injector).MACZero"},
		},
		HookPkgs:   []string{base + "memx"},
		EnergyPkg:  base + "energyx",
		ParamsType: "Tariff",
		EnergyFunc: "Bill",
	}
	runGolden(t, a, "testdata/hookparity")
}

func TestConcSafeGolden(t *testing.T) {
	runGolden(t, NewConcSafe(), "testdata/concsafe")
}

func TestPurityGolden(t *testing.T) {
	const base = "flexflow/internal/lint/testdata/purity/purex"
	a := &Purity{
		Roots: []string{
			"(*" + base + ".Engine).GoodModel",
			base + ".BadGlobalWrite",
			base + ".BadGlobalRead",
			base + ".BadMapRange",
			base + ".BadClock",
			base + ".BadDynamic",
			base + ".BadParamMutation",
			base + ".BadEscapedMutation",
			base + ".BadHelperMutation",
			base + ".BadChan",
			base + ".BadGo",
		},
		AssumePure: []string{base + ".Engine.Chooser"},
	}
	runGolden(t, a, "testdata/purity")
}

// TestPurityManifestShape pins the certificate the fixture produces:
// the clean root certifies pure with its chooser assumption recorded,
// and every Bad* root is reported impure with the rule that broke it.
func TestPurityManifestShape(t *testing.T) {
	const base = "flexflow/internal/lint/testdata/purity/purex"
	a := &Purity{
		Roots: []string{
			"(*" + base + ".Engine).GoodModel",
			base + ".BadHelperMutation",
			base + ".BadClock",
		},
		AssumePure: []string{base + ".Engine.Chooser"},
	}
	prog, err := Load(".", "testdata/purity/...")
	if err != nil {
		t.Fatal(err)
	}
	m, err := a.Manifest(prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Roots) != 3 {
		t.Fatalf("manifest has %d roots, want 3", len(m.Roots))
	}
	byRoot := map[string]PurityEntry{}
	for _, e := range m.Roots {
		byRoot[e.Root] = e
	}
	good := byRoot["(*"+base+".Engine).GoodModel"]
	if !good.Pure {
		t.Errorf("GoodModel not certified pure: impure=%v mutates=%v", good.Impure, good.Mutates)
	}
	if len(good.Assumed) != 1 || good.Assumed[0] != base+".Engine.Chooser" {
		t.Errorf("GoodModel assumed = %v, want the chooser field", good.Assumed)
	}
	if good.Functions < 3 {
		t.Errorf("GoodModel certificate covers %d functions, want at least the root and two helpers", good.Functions)
	}
	if mut := byRoot[base+".BadHelperMutation"]; mut.Pure || len(mut.Mutates) == 0 {
		t.Errorf("BadHelperMutation should be impure via mutation, got %+v", mut)
	}
	if clock := byRoot[base+".BadClock"]; clock.Pure || !slices.Contains(clock.Impure, "purity/nondet-call") {
		t.Errorf("BadClock should be impure via nondet-call, got %+v", clock)
	}
}

func TestHotAllocGolden(t *testing.T) {
	const base = "flexflow/internal/lint/testdata/hotalloc/hotx"
	a := &HotAlloc{
		Roots: []string{base + ".Hot", base + ".Clean", base + ".Busy"},
		Budget: map[string]int{
			base + ".Hot":    1,
			base + ".Clean":  2,
			base + ".Busy":   7,
			base + ".helper": 1,
		},
	}
	runGolden(t, a, "testdata/hotalloc")
}

// TestHotAllocReportShape pins the site-counting semantics exactly:
// Report over the fixture must return one entry per allocating
// function with the kind-by-kind count the fixture documents.
func TestHotAllocReportShape(t *testing.T) {
	const base = "flexflow/internal/lint/testdata/hotalloc/hotx"
	a := &HotAlloc{Roots: []string{base + ".Hot", base + ".Clean", base + ".Busy"}}
	prog, err := Load(".", "testdata/hotalloc/...")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := a.Report(prog)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{
		base + ".Hot":    2, // make + append
		base + ".Busy":   7, // &composite, slice+map composites, closure, go, iface-boxing, string-concat
		base + ".helper": 1, // iface-boxing
	}
	if !maps.Equal(rep.Budget, want) {
		t.Errorf("Report budget = %v, want %v", rep.Budget, want)
	}
}

func TestSharedCaptureGolden(t *testing.T) {
	a := &SharedCapture{
		MapFuncs: []string{"(flexflow/internal/lint/testdata/sharedcapture/schedx.Pool).Map"},
	}
	runGolden(t, a, "testdata/sharedcapture")
}

// TestHotAllocStaleEntry covers the one rule the golden fixture
// cannot express with a want comment: a budget entry for a function
// no hot root reaches is anchored at the module root, not a file.
func TestHotAllocStaleEntry(t *testing.T) {
	const base = "flexflow/internal/lint/testdata/hotalloc/hotx"
	a := &HotAlloc{
		Roots:  []string{base + ".Hot"},
		Budget: map[string]int{base + ".Hot": 2, base + ".Gone": 1},
	}
	prog, err := Load(".", "testdata/hotalloc/...")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := RunAnalyzers(prog, []Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want exactly the stale entry: %v", len(findings), findings)
	}
	f := findings[0]
	if f.ID != "hotalloc/stale-budget" || !strings.Contains(f.Message, "not reachable") {
		t.Errorf("unexpected finding: id=%s message=%s", f.ID, f.Message)
	}
	if f.Pos.Filename != prog.ModRoot {
		t.Errorf("stale-entry finding anchored at %s, want the module root", f.Pos.Filename)
	}
}

func TestLockGuardGolden(t *testing.T) {
	const base = "flexflow/internal/lint/testdata/lockguard/lockx"
	a := &LockGuard{BlockingCalls: []string{base + ".execBackend"}}
	runGolden(t, a, "testdata/lockguard")
}

func TestCtxFlowGolden(t *testing.T) {
	const base = "(*flexflow/internal/lint/testdata/ctxflow/ctxx.Server)."
	a := &CtxFlow{Roots: []string{
		base + "Handle",
		base + "HandleBare",
		base + "HandleNoCancel",
		base + "HandleTry",
		base + "HandleShutdownArm",
		base + "HandleNested",
		base + "Consume",
	}}
	runGolden(t, a, "testdata/ctxflow")
}

func TestGoLeakGolden(t *testing.T) {
	runGolden(t, NewGoLeak(), "testdata/goleak")
}

func TestChanAuditGolden(t *testing.T) {
	runGolden(t, NewChanAudit(), "testdata/chanaudit")
}

// TestConcManifestShape pins the certificate's semantics over the
// fixtures: the lock → guarded-field map reflects the annotations,
// goroutine entries carry the accepted join evidence, and channel
// fields name their single closing owner.
func TestConcManifestShape(t *testing.T) {
	prog, err := Load(".", "testdata/lockguard/...", "testdata/goleak/...", "testdata/chanaudit/...")
	if err != nil {
		t.Fatal(err)
	}
	m, err := BuildConcManifest(prog)
	if err != nil {
		t.Fatal(err)
	}
	locks := map[string][]string{}
	for _, e := range m.Locks {
		locks[e.Lock] = e.Guards
	}
	const lockBase = "flexflow/internal/lint/testdata/lockguard/lockx."
	if got := locks[lockBase+"Store.mu"]; !slices.Equal(got, []string{"items", "n"}) {
		t.Errorf("Store.mu guards = %v, want [items n]", got)
	}
	if got, ok := locks[lockBase+"Free.mu"]; !ok || len(got) != 0 {
		t.Errorf("Free.mu (guards: none) = %v, %v; want an empty entry", got, ok)
	}
	joins := map[string]string{}
	for _, g := range m.Goroutines {
		joins[g.Func+" -> "+g.Spawns] = g.Join
	}
	const leakBase = "flexflow/internal/lint/testdata/goleak/leakx."
	if got := joins[leakBase+"Joined -> func literal"]; got != "waitgroup wg" {
		t.Errorf("Joined literal join = %q, want waitgroup wg", got)
	}
	if got := joins["(*"+leakBase+"Pool).Start -> (*"+leakBase+"Pool).run"]; got != "waitgroup wg" {
		t.Errorf("Pool.Start join = %q, want waitgroup wg", got)
	}
	if got := joins[leakBase+"DoneChannel -> func literal"]; got != "channel errc" {
		t.Errorf("DoneChannel join = %q, want channel errc", got)
	}
	if got := joins[leakBase+"Forget -> <dynamic>"]; got != "none" {
		t.Errorf("Forget join = %q, want none", got)
	}
	chans := map[string]ChannelEntry{}
	for _, c := range m.Channels {
		chans[c.Channel] = c
	}
	const chanBase = "flexflow/internal/lint/testdata/chanaudit/chanx."
	if got := chans[chanBase+"Hub.feed"]; got.Closer != "(*"+chanBase+"Hub).Run" || got.Elem != "int" {
		t.Errorf("Hub.feed entry = %+v, want closer (*Hub).Run, elem int", got)
	}
	// Encode is canonical: re-encoding an identical build is stable.
	m2, err := BuildConcManifest(prog)
	if err != nil {
		t.Fatal(err)
	}
	if string(m.Encode()) != string(m2.Encode()) {
		t.Error("ConcManifest.Encode is not byte-stable across builds")
	}
}

// TestIgnoreGolden pins the suppression mechanism end to end: both
// placements suppress, a reason is mandatory, and analyzer-id globs
// ("errdrop/*") match.
func TestIgnoreGolden(t *testing.T) {
	runGolden(t, NewErrDrop(), "testdata/ignore")
}

// TestRepoClean is the self-gate: the repository's own tree must be
// free of findings under the default suite, mirroring what
// `flexlint ./...` enforces in CI.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	prog, err := Load(".")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := RunAnalyzers(prog, DefaultAnalyzers())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f.Render(prog.ModRoot))
	}
}

// TestAnalyzerMetadata keeps names, docs and ID prefixes consistent.
func TestAnalyzerMetadata(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range DefaultAnalyzers() {
		name := a.Name()
		if name == "" || a.Doc() == "" {
			t.Errorf("analyzer %T lacks a name or doc", a)
		}
		if seen[name] {
			t.Errorf("duplicate analyzer name %q", name)
		}
		seen[name] = true
		if strings.ContainsAny(name, "/ ") {
			t.Errorf("analyzer name %q must be a single path segment", name)
		}
	}
	if len(seen) != 16 {
		t.Errorf("expected the 16-analyzer suite, got %d", len(seen))
	}
}

// TestLayeringTableMatchesReality pins the committed DAG exactly
// against the module's real import graph: a new package or a new edge
// must be added to RepoLayering, and a removed edge must be deleted
// from it — stale rows fail as fast as missing ones.
func TestLayeringTableMatchesReality(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	prog, err := Load(".")
	if err != nil {
		t.Fatal(err)
	}
	actual := ActualEdges(prog)
	table := RepoLayering()
	for pkg, deps := range actual {
		row, ok := table[pkg]
		if !ok {
			t.Errorf("package %s is missing from RepoLayering", pkg)
			continue
		}
		sort.Strings(row)
		if !slices.Equal(row, deps) {
			t.Errorf("RepoLayering[%q] = %v, but the real imports are %v", pkg, row, deps)
		}
	}
	for pkg := range table {
		if _, ok := actual[pkg]; !ok {
			t.Errorf("RepoLayering lists %s, which no longer exists in the module", pkg)
		}
	}
}
