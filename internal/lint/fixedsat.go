package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// FixedSat flags raw two's-complement arithmetic (+, -, *, <<, and
// their assignment/inc-dec forms) on fixed.Word or fixed.Acc outside
// the fixed package itself. The paper's datapaths are 16-bit
// fixed-point MAC hardware that saturates on overflow (§6.1.1); Go's
// built-in operators silently wrap, so any raw operation bypasses the
// saturation the numerics depend on. Use fixed.Add / fixed.Sub /
// fixed.Mul / fixed.MAC / fixed.AddAcc instead.
//
// Constant-folded expressions are exempt: the compiler rejects
// overflowing constants, so they cannot wrap at run time.
type FixedSat struct {
	// FixedPkg is the import path of the saturating-arithmetic package
	// whose internals are exempt.
	FixedPkg string
	// TypeNames are the saturating types within FixedPkg.
	TypeNames []string
}

// NewFixedSat returns the analyzer configured for this repository.
func NewFixedSat() *FixedSat {
	return &FixedSat{
		FixedPkg:  "flexflow/internal/fixed",
		TypeNames: []string{"Word", "Acc"},
	}
}

func (*FixedSat) Name() string { return "fixedsat" }
func (*FixedSat) Doc() string {
	return "raw +, -, *, << on fixed.Word/fixed.Acc bypasses hardware saturation"
}

var fixedsatOps = map[token.Token]bool{
	token.ADD: true, token.SUB: true, token.MUL: true, token.SHL: true,
	token.ADD_ASSIGN: true, token.SUB_ASSIGN: true, token.MUL_ASSIGN: true, token.SHL_ASSIGN: true,
	token.INC: true, token.DEC: true,
}

func (a *FixedSat) Run(prog *Program) ([]Finding, error) {
	var out []Finding
	report := func(pos token.Pos, op token.Token, t types.Type) {
		out = append(out, Finding{
			ID:  "fixedsat/raw-op",
			Pos: prog.Fset.Position(pos),
			Message: fmt.Sprintf("raw %s on %s wraps instead of saturating; use the fixed package's saturating helpers",
				op, types.TypeString(t, func(p *types.Package) string { return p.Name() })),
		})
	}
	for _, pkg := range prog.Pkgs {
		if pkg.Path == a.FixedPkg {
			continue
		}
		info := pkg.Info
		inspectFiles(pkg, func(_ *ast.File, n ast.Node) bool {
			switch e := n.(type) {
			case *ast.BinaryExpr:
				if !fixedsatOps[e.Op] {
					return true
				}
				// Constant expressions are folded (and overflow-checked)
				// at compile time.
				if tv, ok := info.Types[e]; ok && tv.Value != nil {
					return true
				}
				if t := a.fixedType(info.TypeOf(e.X)); t != nil {
					report(e.OpPos, e.Op, t)
				} else if t := a.fixedType(info.TypeOf(e.Y)); t != nil {
					report(e.OpPos, e.Op, t)
				}
			case *ast.AssignStmt:
				if !fixedsatOps[e.Tok] {
					return true
				}
				for _, lhs := range e.Lhs {
					if t := a.fixedType(info.TypeOf(lhs)); t != nil {
						report(e.TokPos, e.Tok, t)
					}
				}
			case *ast.IncDecStmt:
				if t := a.fixedType(info.TypeOf(e.X)); t != nil {
					report(e.TokPos, e.Tok, t)
				}
			}
			return true
		})
	}
	return out, nil
}

// fixedType returns t if it is (an alias of) one of the saturating
// named types, else nil.
func (a *FixedSat) fixedType(t types.Type) types.Type {
	if t == nil {
		return nil
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return nil
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != a.FixedPkg {
		return nil
	}
	for _, name := range a.TypeNames {
		if obj.Name() == name {
			return t
		}
	}
	return nil
}
