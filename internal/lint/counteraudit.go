package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// CounterAudit is a types-driven cross-check of the contract between
// the simulators and the energy model: every event counter a
// simulator accumulates into the per-layer result record must be
// charged by the energy model's per-layer function, and every counter
// the energy model charges must be produced by at least one
// simulator. Two rules:
//
//   - counteraudit/unbilled: a counter field written by a simulator
//     package is never read inside the energy function — the event is
//     counted but never billed, so the energy tables silently drift
//     from what the simulators measure.
//   - counteraudit/uncharged: the energy function reads a counter no
//     simulator ever writes — a dead charge that hides a missing
//     accounting path.
//
// Counters are the int64 fields of the result struct (shape and
// configuration fields such as PEs are not audited).
type CounterAudit struct {
	ResultPkg  string   // package defining the per-layer result record
	ResultType string   // the record's type name
	EnergyPkg  string   // package holding the billing function
	EnergyFunc string   // function (or method) charging one record
	SimPkgs    []string // simulator packages whose writes are audited
}

// NewCounterAudit returns the analyzer configured for this repository.
func NewCounterAudit() *CounterAudit {
	return &CounterAudit{
		ResultPkg:  "flexflow/internal/arch",
		ResultType: "LayerResult",
		EnergyPkg:  "flexflow/internal/energy",
		EnergyFunc: "LayerEnergy",
		SimPkgs: []string{
			"flexflow/internal/core",
			"flexflow/internal/systolic",
			"flexflow/internal/mapping2d",
			"flexflow/internal/tiling",
			"flexflow/internal/mapping",
		},
	}
}

func (*CounterAudit) Name() string { return "counteraudit" }
func (*CounterAudit) Doc() string {
	return "every counter a simulator accumulates must be charged by the energy model, and vice versa"
}

func (a *CounterAudit) Run(prog *Program) ([]Finding, error) {
	// The audit is tied to one module's packages; when flexlint is
	// pointed at a different module the contract does not apply.
	if !prog.IsModuleLocal(a.ResultPkg) {
		return nil, nil
	}
	resPkg, err := prog.Package(a.ResultPkg)
	if err != nil {
		return nil, err
	}
	obj := resPkg.Types.Scope().Lookup(a.ResultType)
	if obj == nil {
		return nil, fmt.Errorf("%s.%s not found", a.ResultPkg, a.ResultType)
	}
	named, ok := types.Unalias(obj.Type()).(*types.Named)
	if !ok {
		return nil, fmt.Errorf("%s.%s is not a named type", a.ResultPkg, a.ResultType)
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil, fmt.Errorf("%s.%s is not a struct", a.ResultPkg, a.ResultType)
	}

	// The audited counters: int64 fields of the result record.
	counters := map[string]bool{}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if b, ok := f.Type().Underlying().(*types.Basic); ok && b.Kind() == types.Int64 {
			counters[f.Name()] = true
		}
	}
	if len(counters) == 0 {
		return nil, fmt.Errorf("%s.%s has no int64 counter fields", a.ResultPkg, a.ResultType)
	}

	// Collect counter writes across the simulator packages.
	writes := map[string][]token.Pos{} // field → write sites
	for _, path := range a.SimPkgs {
		pkg, err := prog.Package(path)
		if err != nil {
			return nil, err
		}
		a.collectWrites(pkg, named, counters, writes)
	}

	// Collect counter reads inside the energy function.
	energyPkg, err := prog.Package(a.EnergyPkg)
	if err != nil {
		return nil, err
	}
	reads := map[string][]token.Pos{}
	found := false
	for _, file := range energyPkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != a.EnergyFunc || fd.Body == nil {
				continue
			}
			found = true
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				if field := fieldOf(energyPkg.Info, sel, named); field != "" && counters[field] {
					reads[field] = append(reads[field], sel.Sel.Pos())
				}
				return true
			})
		}
	}
	if !found {
		return nil, fmt.Errorf("%s.%s not found", a.EnergyPkg, a.EnergyFunc)
	}

	short := func(path string) string { return path[lastSlash(path)+1:] }
	var out []Finding
	for _, field := range sortedKeys(counters) {
		w, r := writes[field], reads[field]
		switch {
		case len(w) > 0 && len(r) == 0:
			pos := minPos(w)
			out = append(out, Finding{
				ID:  "counteraudit/unbilled",
				Pos: prog.Fset.Position(pos),
				Message: fmt.Sprintf("%s.%s is accumulated by the simulators but never read in %s.%s: the event is counted but never billed",
					a.ResultType, field, short(a.EnergyPkg), a.EnergyFunc),
			})
		case len(r) > 0 && len(w) == 0:
			pos := minPos(r)
			out = append(out, Finding{
				ID:  "counteraudit/uncharged",
				Pos: prog.Fset.Position(pos),
				Message: fmt.Sprintf("%s.%s charges %s.%s but no simulator package ever writes it",
					short(a.EnergyPkg), a.EnergyFunc, a.ResultType, field),
			})
		}
	}
	return out, nil
}

// collectWrites records assignments, inc/dec statements and composite
// literals that store into counter fields of the result type.
func (a *CounterAudit) collectWrites(pkg *Package, named *types.Named, counters map[string]bool, writes map[string][]token.Pos) {
	info := pkg.Info
	record := func(field string, pos token.Pos) {
		if counters[field] {
			writes[field] = append(writes[field], pos)
		}
	}
	inspectFiles(pkg, func(_ *ast.File, n ast.Node) bool {
		switch e := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range e.Lhs {
				if sel, ok := unparen(lhs).(*ast.SelectorExpr); ok {
					if field := fieldOf(info, sel, named); field != "" {
						record(field, sel.Sel.Pos())
					}
				}
			}
		case *ast.IncDecStmt:
			if sel, ok := unparen(e.X).(*ast.SelectorExpr); ok {
				if field := fieldOf(info, sel, named); field != "" {
					record(field, sel.Sel.Pos())
				}
			}
		case *ast.CompositeLit:
			t := info.TypeOf(e)
			if t == nil || !sameNamed(t, named) {
				return true
			}
			st := named.Underlying().(*types.Struct)
			for i, elt := range e.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					if id, ok := kv.Key.(*ast.Ident); ok {
						record(id.Name, id.Pos())
					}
				} else if i < st.NumFields() {
					record(st.Field(i).Name(), elt.Pos())
				}
			}
		}
		return true
	})
}

// fieldOf returns the field name when sel selects a field of the named
// struct type (directly or through a pointer), else "".
func fieldOf(info *types.Info, sel *ast.SelectorExpr, named *types.Named) string {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return ""
	}
	recv := s.Recv()
	if p, ok := recv.Underlying().(*types.Pointer); ok {
		recv = p.Elem()
	}
	if !sameNamed(recv, named) {
		return ""
	}
	// Only direct fields of the record count (no embedded promotion in
	// play here).
	return s.Obj().Name()
}

func sameNamed(t types.Type, named *types.Named) bool {
	n, ok := types.Unalias(t).(*types.Named)
	return ok && n.Obj() == named.Obj()
}

func sortedKeys(m map[string]bool) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func minPos(ps []token.Pos) token.Pos {
	min := ps[0]
	for _, p := range ps[1:] {
		if p < min {
			min = p
		}
	}
	return min
}

func lastSlash(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '/' {
			return i
		}
	}
	return -1
}
