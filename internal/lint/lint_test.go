package lint

import (
	"go/token"
	"strings"
	"testing"
)

// TestLoadModule pins the loader's basic contract: it discovers the
// module, selects packages under the requested roots, and resolves
// other module packages lazily.
func TestLoadModule(t *testing.T) {
	prog, err := Load(".", "testdata/fixedsat/...")
	if err != nil {
		t.Fatal(err)
	}
	if prog.ModPath != "flexflow" {
		t.Errorf("ModPath = %q, want flexflow", prog.ModPath)
	}
	if len(prog.Pkgs) != 1 || prog.Pkgs[0].Path != "flexflow/internal/lint/testdata/fixedsat/a" {
		t.Fatalf("Pkgs = %v, want exactly the fixture package", pkgPaths(prog))
	}
	// Lazy resolution of a package outside the analysis roots.
	fixed, err := prog.Package("flexflow/internal/fixed")
	if err != nil {
		t.Fatal(err)
	}
	if fixed.Types.Scope().Lookup("Word") == nil {
		t.Error("lazily loaded fixed package lacks Word")
	}
	// Unknown paths fail rather than guessing.
	if _, err := prog.Package("flexflow/internal/nosuchpkg"); err == nil {
		t.Error("expected error for unknown package path")
	}
}

// TestLoadWholeModule checks the default root selection covers the
// interesting packages and skips testdata.
func TestLoadWholeModule(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	prog, err := Load(".")
	if err != nil {
		t.Fatal(err)
	}
	paths := pkgPaths(prog)
	for _, want := range []string{
		"flexflow",
		"flexflow/cmd/flexlint",
		"flexflow/internal/core",
		"flexflow/internal/energy",
	} {
		found := false
		for _, p := range paths {
			if p == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("whole-module load is missing %s (got %d packages)", want, len(paths))
		}
	}
	for _, p := range paths {
		if strings.Contains(p, "/testdata/") {
			t.Errorf("whole-module load must skip testdata, got %s", p)
		}
	}
}

// TestLoadBrokenPackage pins the loader's failure mode for a package
// that parses but does not type-check: the load fails loudly, the
// error names the package, and it carries every type error rather
// than only the first — no silent degradation to syntax-only
// analysis.
func TestLoadBrokenPackage(t *testing.T) {
	_, err := Load(".", "testdata/broken/...")
	if err == nil {
		t.Fatal("loading the deliberately broken fixture succeeded")
	}
	msg := err.Error()
	if !strings.Contains(msg, "flexflow/internal/lint/testdata/broken/brokenx") {
		t.Errorf("load error lacks package context: %v", err)
	}
	for _, frag := range []string{"cannot use 42", "missing"} {
		if !strings.Contains(msg, frag) {
			t.Errorf("load error does not surface the type error %q: %v", frag, err)
		}
	}
}

func pkgPaths(prog *Program) []string {
	var out []string
	for _, p := range prog.Pkgs {
		out = append(out, p.Path)
	}
	return out
}

// TestFindingRender pins the file:line:col diagnostic format the CI
// gate and the smoke tests grep for.
func TestFindingRender(t *testing.T) {
	f := Finding{
		ID:      "detsim/map-range",
		Pos:     token.Position{Filename: "/mod/internal/core/x.go", Line: 7, Column: 3},
		Message: "range over a map",
	}
	if got, want := f.Render("/mod"), "internal/core/x.go:7:3: range over a map [detsim/map-range]"; got != want {
		t.Errorf("Render = %q, want %q", got, want)
	}
	if got, want := f.Render("/elsewhere/unrelated"), "/mod/internal/core/x.go:7:3: range over a map [detsim/map-range]"; got != want {
		t.Errorf("Render outside dir = %q, want %q", got, want)
	}
}

// TestDetSimCoversFaultSubsystem pins the determinism gate's scope: the
// fault-injection subsystem is simulation code and must stay inside the
// detsim analyzer's match set (its randomness comes from the seeded
// splitmix64 streams, never wall clocks or math/rand), while the CLI,
// example, and lint trees stay exempt.
func TestDetSimCoversFaultSubsystem(t *testing.T) {
	match := NewDetSim().Match
	for _, covered := range []string{
		"flexflow",
		"flexflow/internal/fault",
		"flexflow/internal/core",
		"flexflow/internal/sim",
	} {
		if !match(covered) {
			t.Errorf("detsim does not cover %s", covered)
		}
	}
	for _, exempt := range []string{
		"flexflow/cmd/flexfault",
		"flexflow/examples/lenet",
		"flexflow/internal/lint",
	} {
		if match(exempt) {
			t.Errorf("detsim unexpectedly covers %s", exempt)
		}
	}
}
