package compiler

import (
	"math/rand"
	"strings"
	"testing"

	"flexflow/internal/arch"
	"flexflow/internal/nn"
	"flexflow/internal/workloads"
)

func TestPlanRespectsConstraints(t *testing.T) {
	for _, nw := range workloads.All() {
		prog := Plan(nw, 16)
		if len(prog.Plans) != len(nw.ConvLayers()) {
			t.Fatalf("%s: %d plans for %d conv layers", nw.Name, len(prog.Plans), len(nw.ConvLayers()))
		}
		for _, lp := range prog.Plans {
			if err := lp.Factors.Validate(lp.Layer, 16, lp.RCBound); err != nil {
				t.Errorf("%s %s: %v", nw.Name, lp.Layer.Name, err)
			}
		}
	}
}

func TestPlanCouplesLayers(t *testing.T) {
	// The IADP constraint: layer i's ⟨T_n⟩ must equal layer i-1's
	// ⟨T_m⟩ (clamped into the feasible range).
	for _, nw := range workloads.All() {
		prog := Plan(nw, 16)
		for i := 1; i < len(prog.Plans); i++ {
			prev, cur := prog.Plans[i-1], prog.Plans[i]
			want := prev.Factors.Tm
			if want > cur.Layer.N {
				want = cur.Layer.N
			}
			if cur.Factors.Tn != want {
				t.Errorf("%s %s: Tn=%d, want coupled %d", nw.Name, cur.Layer.Name, cur.Factors.Tn, want)
			}
		}
	}
}

func TestUncoupledAtLeastAsGood(t *testing.T) {
	for _, nw := range workloads.All() {
		c := Plan(nw, 16)
		u := PlanUncoupled(nw, 16)
		for i := range c.Plans {
			if u.Plans[i].Utilization < c.Plans[i].Utilization-1e-9 {
				t.Errorf("%s %s: uncoupled %v < coupled %v", nw.Name,
					c.Plans[i].Layer.Name, u.Plans[i].Utilization, c.Plans[i].Utilization)
			}
		}
	}
}

func TestTable4Comparison(t *testing.T) {
	// Table 4 pins the paper's chosen factors for four workloads at
	// 16×16. Our search maximizes the same objective under the same
	// constraints, so our utilization must be at least the paper's.
	paper := map[string]map[string]arch.T{
		"PV": {
			"C1": {Tm: 8, Tn: 1, Tr: 1, Tc: 2, Ti: 2, Tj: 6},
			"C3": {Tm: 3, Tn: 8, Tr: 1, Tc: 5, Ti: 1, Tj: 2},
		},
		"FR": {
			"C1": {Tm: 4, Tn: 1, Tr: 1, Tc: 4, Ti: 3, Tj: 15},
			"C3": {Tm: 16, Tn: 4, Tr: 1, Tc: 1, Ti: 1, Tj: 4},
		},
		"LeNet-5": {
			"C1": {Tm: 3, Tn: 1, Tr: 1, Tc: 5, Ti: 3, Tj: 5},
			"C3": {Tm: 16, Tn: 3, Tr: 1, Tc: 1, Ti: 1, Tj: 5},
		},
		"HG": {
			"C1": {Tm: 3, Tn: 1, Tr: 1, Tc: 5, Ti: 3, Tj: 5},
			"C3": {Tm: 4, Tn: 2, Tr: 1, Tc: 4, Ti: 2, Tj: 4},
		},
	}
	for _, nw := range workloads.All() {
		want, ok := paper[nw.Name]
		if !ok {
			continue
		}
		prog := PlanUncoupled(nw, 16)
		for _, lp := range prog.Plans {
			pf, ok := want[lp.Layer.Name]
			if !ok {
				continue
			}
			// Note: the paper's FR C1 entry (Ti=3, Tj=15) violates its
			// own T_j ≤ K constraint (K=5); compare utilization only
			// where the entry is feasible.
			if pf.Validate(lp.Layer, 16, lp.Layer.S) != nil {
				continue
			}
			paperU := arch.TotalUtilization(lp.Layer, pf, 16)
			if lp.Utilization < paperU-1e-9 {
				t.Errorf("%s %s: our factors %v (U=%.3f) worse than paper's %v (U=%.3f)",
					nw.Name, lp.Layer.Name, lp.Factors, lp.Utilization, pf, paperU)
			}
		}
	}
}

func TestAssemblyRoundTrip(t *testing.T) {
	prog := Plan(workloads.LeNet5(), 16)
	text := prog.Assembly()
	for _, want := range []string{"LAYER C1", "LAYER C3", "CONFIG", "LDKERN", "LDNEUR", "CONV PASSES=", "STORE"} {
		if !strings.Contains(text, want) {
			t.Errorf("assembly missing %q:\n%s", want, text)
		}
	}
	parsed, err := ParseAssembly(text)
	if err != nil {
		t.Fatalf("ParseAssembly: %v", err)
	}
	if len(parsed.Plans) != len(prog.Plans) {
		t.Fatalf("round trip lost plans: %d vs %d", len(parsed.Plans), len(prog.Plans))
	}
	for i := range prog.Plans {
		if parsed.Plans[i].Layer != prog.Plans[i].Layer {
			t.Errorf("plan %d layer %+v != %+v", i, parsed.Plans[i].Layer, prog.Plans[i].Layer)
		}
		if parsed.Plans[i].Factors != prog.Plans[i].Factors {
			t.Errorf("plan %d factors %v != %v", i, parsed.Plans[i].Factors, prog.Plans[i].Factors)
		}
	}
}

func TestParseAssemblyErrors(t *testing.T) {
	cases := []string{
		"CONFIG TM=1 TN=1 TR=1 TC=1 TI=1 TJ=1", // CONFIG before LAYER
		"BOGUS X=1",
		"LAYER C1 M=x N=1 S=1 K=1",
	}
	for _, text := range cases {
		if _, err := ParseAssembly(text); err == nil {
			t.Errorf("ParseAssembly(%q) accepted", text)
		}
	}
}

func TestFactorsFor(t *testing.T) {
	prog := Plan(workloads.LeNet5(), 16)
	if _, ok := prog.FactorsFor("C1"); !ok {
		t.Error("C1 not found")
	}
	if _, ok := prog.FactorsFor("nope"); ok {
		t.Error("phantom layer found")
	}
}

func TestChooserUsesPlan(t *testing.T) {
	nw := workloads.LeNet5()
	prog := Plan(nw, 16)
	ch := prog.Chooser()
	for _, lp := range prog.Plans {
		if got := ch(lp.Layer); got != lp.Factors {
			t.Errorf("%s: chooser returned %v, want planned %v", lp.Layer.Name, got, lp.Factors)
		}
	}
	// Unknown layers fall back to the search.
	other := nw.ConvLayers()[0]
	other.S = 7
	f := ch(other)
	if err := f.Validate(other, 16, other.S); err != nil {
		t.Errorf("fallback factors invalid: %v", err)
	}
}

func TestRCBoundApplied(t *testing.T) {
	// LeNet-5 C1 is followed by 2×2 pooling then C3 (K=5): bound 10.
	prog := Plan(workloads.LeNet5(), 16)
	c1 := prog.Plans[0]
	if c1.RCBound != 10 {
		t.Errorf("C1 RCBound = %d, want 10", c1.RCBound)
	}
	if c1.Factors.Tr > 10 || c1.Factors.Tc > 10 {
		t.Errorf("C1 factors %v violate the P·K' bound", c1.Factors)
	}
}

func TestDPPlanAtLeastGreedyCoupled(t *testing.T) {
	// The DP planner must never produce a worse total schedule than the
	// greedy layer-by-layer coupling (ChooseFactorsCoupled chained).
	for _, nw := range workloads.All() {
		dp := Plan(nw, 16)
		var dpCycles int64
		for _, lp := range dp.Plans {
			dpCycles += lp.Passes * lp.CyclesPass
		}
		// Greedy baseline.
		var greedyCycles int64
		var prev arch.T
		for i, l := range nw.ConvLayers() {
			bound := rcBoundFor(nw, i, l)
			var f arch.T
			if i == 0 {
				f = arch.ChooseFactors(l, 16, bound)
			} else {
				f = arch.ChooseFactorsCoupled(l, 16, bound, prev)
			}
			greedyCycles += arch.GroupPasses(l, f) * arch.CyclesPerPass(l, f)
			prev = f
		}
		if dpCycles > greedyCycles {
			t.Errorf("%s: DP %d cycles worse than greedy %d", nw.Name, dpCycles, greedyCycles)
		}
	}
}

func TestRowCandidatesRespectBounds(t *testing.T) {
	l := nn.ConvLayer{M: 5, N: 3, S: 9, K: 3}
	cands := rowCandidates(l, 8, 4)
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	for _, c := range cands {
		if c.Tm < 1 || c.Tm > 5 || c.Tr > 4 || c.Tc > 4 || c.Rows() > 8 {
			t.Errorf("candidate %v violates bounds", c)
		}
	}
}

func TestColForClamps(t *testing.T) {
	l := nn.ConvLayer{M: 4, N: 2, S: 6, K: 3}
	// prev row triple too large for this layer's N and K.
	col := colFor(arch.T{Tm: 9, Tr: 7, Tc: 7}, l, 16)
	if col.Tn > 2 || col.Ti > 3 || col.Tj > 3 {
		t.Errorf("colFor did not clamp: %v", col)
	}
	if col.Tn*col.Ti*col.Tj > 16 {
		t.Errorf("colFor exceeded D: %v", col)
	}
}

func TestAnalyzeShowsComplementaryGain(t *testing.T) {
	// §3.4's quantitative point on LeNet-5: every single parallelism is
	// far below the complementary mix, and the dominant type differs
	// between layers.
	analyses := Analyze(workloads.LeNet5(), 16)
	if len(analyses) != 2 {
		t.Fatalf("analyses = %d", len(analyses))
	}
	for _, a := range analyses {
		if a.Gain() < 2 {
			t.Errorf("%s: mix gain %.1fx over %s; expected well above 2x",
				a.Layer.Name, a.Gain(), a.Dominant)
		}
		if a.Mixed <= a.PureNP || a.Mixed <= a.PureSP || a.Mixed <= a.PureFP {
			t.Errorf("%s: mix %.3f not above all pure types (%v/%v/%v)",
				a.Layer.Name, a.Mixed, a.PureNP, a.PureSP, a.PureFP)
		}
	}
}

func TestAnalyzeDominantVaries(t *testing.T) {
	// Across the six workloads' layers the dominant single parallelism
	// must not be constant — the mismatch §3.4 describes.
	seen := map[string]bool{}
	for _, nw := range workloads.All() {
		for _, a := range Analyze(nw, 16) {
			seen[a.Dominant] = true
		}
	}
	if len(seen) < 2 {
		t.Errorf("dominant parallelism constant across all layers: %v", seen)
	}
}

func TestSweepTopEqualsChooser(t *testing.T) {
	// The sweep's best entry must reach the same utilization as
	// ChooseFactors (both are exhaustive over the same space).
	layers := []nn.ConvLayer{
		{Name: "a", M: 6, N: 1, S: 28, K: 5},
		{Name: "b", M: 16, N: 6, S: 10, K: 5},
		{Name: "c", M: 12, N: 8, S: 20, K: 3},
	}
	for _, l := range layers {
		top := Sweep(l, 16, l.S, 1)
		if len(top) != 1 {
			t.Fatalf("%s: sweep empty", l.Name)
		}
		chosen := arch.ChooseFactors(l, 16, l.S)
		if want := arch.TotalUtilization(l, chosen, 16); top[0].Ut < want-1e-9 {
			t.Errorf("%s: sweep best %.4f below chooser %.4f", l.Name, top[0].Ut, want)
		}
	}
}

func TestSweepOrderedAndBounded(t *testing.T) {
	l := nn.ConvLayer{Name: "x", M: 8, N: 4, S: 12, K: 3}
	entries := Sweep(l, 8, 6, 25)
	if len(entries) != 25 {
		t.Fatalf("entries = %d", len(entries))
	}
	for i := 1; i < len(entries); i++ {
		if entries[i].Ut > entries[i-1].Ut+1e-12 {
			t.Fatalf("sweep not sorted at %d", i)
		}
	}
	for _, e := range entries {
		if err := e.Factors.Validate(l, 8, 6); err != nil {
			t.Errorf("infeasible entry %v: %v", e.Factors, err)
		}
	}
}

func TestParseAssemblyRobustAgainstNoise(t *testing.T) {
	// Fuzz-ish robustness: random line soups must never panic — they
	// either parse (possibly to an empty program) or return an error.
	pieces := []string{
		"LAYER X M=1 N=1 S=1 K=1", "CONFIG TM=1 TN=1 TR=1 TC=1 TI=1 TJ=1",
		"POOL P=2", "STORE LAYOUT=1x1x1", "; comment", "",
		"LAYER", "CONFIG", "POOL", "LAYER Y M=-3 N=0 S=2 K=2",
		"LDKERN GROUPS=1x1x1", "CONV PASSES=1 CPP=1",
	}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(8)
		var sb strings.Builder
		for i := 0; i < n; i++ {
			sb.WriteString(pieces[rng.Intn(len(pieces))])
			sb.WriteByte('\n')
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("ParseAssembly panicked on:\n%s\n%v", sb.String(), r)
				}
			}()
			_, _ = ParseAssembly(sb.String())
		}()
	}
}

func TestPlanDeterministic(t *testing.T) {
	for _, nw := range workloads.All() {
		a := Plan(nw, 16)
		b := Plan(nw, 16)
		for i := range a.Plans {
			if a.Plans[i].Factors != b.Plans[i].Factors {
				t.Errorf("%s layer %d: nondeterministic plan", nw.Name, i)
			}
		}
	}
}

func TestPlanBalancedTradesTrafficForCycles(t *testing.T) {
	// With a positive lambda the planner may accept more cycles to cut
	// traffic; it must never be worse on BOTH axes, and lambda = 0 must
	// reduce to the plain plan.
	for _, name := range []string{"LeNet-5", "PV", "AlexNet"} {
		nw := workloads.ByName(name)
		base := Plan(nw, 16)
		zero := PlanBalanced(nw, 16, 0)
		for i := range base.Plans {
			if zero.Plans[i].Factors != base.Plans[i].Factors {
				t.Errorf("%s: lambda=0 differs from Plan at layer %d", name, i)
			}
		}
		bal := PlanBalanced(nw, 16, 50)
		var baseCycles, balCycles, baseTraffic, balTraffic int64
		for i := range base.Plans {
			baseCycles += base.Plans[i].Passes * base.Plans[i].CyclesPass
			balCycles += bal.Plans[i].Passes * bal.Plans[i].CyclesPass
			baseTraffic += trafficEstimate(base.Plans[i].Layer, base.Plans[i].Factors)
			balTraffic += trafficEstimate(bal.Plans[i].Layer, bal.Plans[i].Factors)
		}
		if balCycles < baseCycles {
			t.Errorf("%s: balanced plan beat the cycles-only DP on cycles — DP bug", name)
		}
		if balCycles > baseCycles && balTraffic >= baseTraffic {
			t.Errorf("%s: balanced plan pays %d extra cycles for no traffic gain (%d vs %d)",
				name, balCycles-baseCycles, balTraffic, baseTraffic)
		}
		// All factor choices remain feasible.
		for _, lp := range bal.Plans {
			if err := lp.Factors.Validate(lp.Layer, 16, lp.RCBound); err != nil {
				t.Errorf("%s %s: %v", name, lp.Layer.Name, err)
			}
		}
	}
}

func TestTrafficEstimateTracksModel(t *testing.T) {
	// The closed-form estimate must rank factor choices the same way
	// the engine's measured loads do, at least for clear-cut pairs.
	l := nn.ConvLayer{M: 16, N: 6, S: 10, K: 5}
	wide := arch.T{Tm: 4, Tn: 3, Tr: 2, Tc: 2, Ti: 1, Tj: 5}   // few bands
	narrow := arch.T{Tm: 1, Tn: 1, Tr: 1, Tc: 1, Ti: 3, Tj: 5} // a band per output row & m
	if trafficEstimate(l, wide) >= trafficEstimate(l, narrow) {
		t.Errorf("estimate ranks wide (%d) above narrow (%d)",
			trafficEstimate(l, wide), trafficEstimate(l, narrow))
	}
}
