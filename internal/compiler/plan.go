package compiler

import (
	"flexflow/internal/arch"
	"flexflow/internal/nn"
)

// rowCandidates enumerates every feasible ⟨T_m,T_r,T_c⟩ triple for a
// layer: positive, bounded by the layer shape and the P·K′ limit, with
// T_m·T_r·T_c ≤ D.
func rowCandidates(l nn.ConvLayer, d, rcBound int) []arch.T {
	if rcBound > l.S {
		rcBound = l.S
	}
	if rcBound < 1 {
		rcBound = 1
	}
	var out []arch.T
	for tm := 1; tm <= minInt(l.M, d); tm++ {
		for tr := 1; tr <= minInt(rcBound, d/tm); tr++ {
			for tc := 1; tc <= minInt(rcBound, d/(tm*tr)); tc++ {
				out = append(out, arch.T{Tm: tm, Tr: tr, Tc: tc, Tn: 1, Ti: 1, Tj: 1})
			}
		}
	}
	return out
}

// colFor derives a layer's coupled ⟨T_n,T_i,T_j⟩ from the previous
// layer's row triple (the IADP layout constraint), clamped into the
// layer's feasible range.
func colFor(prev arch.T, l nn.ConvLayer, d int) arch.T {
	tn := clampInt(prev.Tm, 1, minInt(l.N, d))
	ti := clampInt(prev.Tr, 1, minInt(l.K, d/tn))
	tj := clampInt(prev.Tc, 1, minInt(l.K, d/(tn*ti)))
	return arch.T{Tn: tn, Ti: ti, Tj: tj, Tm: 1, Tr: 1, Tc: 1}
}

// layerCost scores one layer under a full factor vector. The default
// objective is compute cycles; PlanBalanced adds a traffic term.
type layerCost func(l nn.ConvLayer, t arch.T) int64

// cyclesCost is the paper's objective: total compute cycles.
func cyclesCost(l nn.ConvLayer, t arch.T) int64 {
	return arch.GroupPasses(l, t) * arch.CyclesPerPass(l, t)
}

// trafficEstimate is a closed-form estimate of the buffer→PE neuron
// words a factor choice implies (the dominant variable term of
// Fig. 17), mirroring the engine's RA/RS accounting without iterating
// passes: per m-block and input chunk, each row band streams its
// staged window once plus the incremental columns, and every chunk
// beyond the first spills and re-reads the outputs.
func trafficEstimate(l nn.ConvLayer, t arch.T) int64 {
	const storeWords = 128 // the Table 5 local-store capacity
	kij := int64(ceilDivI(l.K, t.Ti)) * int64(ceilDivI(l.K, t.Tj))
	blocks := int64(1)
	if kij > 0 && storeWords/kij > 0 {
		blocks = storeWords / kij
	}
	nChunk := int(blocks) * t.Tn
	if nChunk >= l.N {
		nChunk = l.N
	}
	if nChunk < t.Tn {
		nChunk = t.Tn
	}
	chunks := int64(ceilDivI(l.N, nChunk))
	mB := int64(ceilDivI(l.M, t.Tm))
	in := int64(l.InSize())
	// Exact sum of the row-band spans, including the narrower last band.
	var rowSpanSum int64
	for r0 := 0; r0 < l.S; r0 += t.Tr {
		vTr := t.Tr
		if r0+vTr > l.S {
			vTr = l.S - r0
		}
		rowSpanSum += int64(vTr + l.K - 1)
	}
	// Each chunk walks every band over its own maps, and the chunks
	// together cover each input map exactly once.
	loads := mB * rowSpanSum * in * int64(l.N)
	// Partial-sum spills and re-reads across chunks.
	spills := (chunks - 1) * 2 * l.OutputWords()
	return loads + spills
}

// planCoupledDP chooses row triples for every CONV layer jointly,
// minimizing the total cost under the IADP coupling: layer i's column
// triple is a function of layer i-1's row triple, so a locally
// attractive row choice can make the next layer slow. The DP state is
// the row triple of the current layer.
func planCoupledDP(nw *nn.Network, d int, cost layerCost) []LayerPlan {
	layers := nw.ConvLayers()
	if len(layers) == 0 {
		return nil
	}
	bounds := make([]int, len(layers))
	cands := make([][]arch.T, len(layers))
	for i, l := range layers {
		bounds[i] = rcBoundFor(nw, i, l)
		cands[i] = rowCandidates(l, d, bounds[i])
	}

	// Layer 0's column side is free: the per-layer optimum.
	freeCol0 := arch.ChooseFactors(layers[0], d, bounds[0])

	combine := func(row, col arch.T) arch.T {
		return arch.T{Tm: row.Tm, Tr: row.Tr, Tc: row.Tc, Tn: col.Tn, Ti: col.Ti, Tj: col.Tj}
	}

	total := make([][]int64, len(layers))
	back := make([][]int, len(layers))
	total[0] = make([]int64, len(cands[0]))
	back[0] = make([]int, len(cands[0]))
	for j := range cands[0] {
		total[0][j] = cost(layers[0], combine(cands[0][j], freeCol0))
		back[0][j] = -1
	}

	for i := 1; i < len(layers); i++ {
		l := layers[i]
		// colFromPrev[k]: layer i's coupled column triple when layer
		// i-1 used row candidate k.
		colFromPrev := make([]arch.T, len(cands[i-1]))
		for k, prev := range cands[i-1] {
			colFromPrev[k] = colFor(prev, l, d)
		}
		total[i] = make([]int64, len(cands[i]))
		back[i] = make([]int, len(cands[i]))
		for j := range cands[i] {
			bestCost := int64(-1)
			bestK := -1
			for k := range cands[i-1] {
				c := total[i-1][k] + cost(l, combine(cands[i][j], colFromPrev[k]))
				if bestCost < 0 || c < bestCost {
					bestCost, bestK = c, k
				}
			}
			total[i][j], back[i][j] = bestCost, bestK
		}
	}

	// Pick the cheapest final state and walk back.
	last := len(layers) - 1
	bestJ := 0
	for j := range total[last] {
		if total[last][j] < total[last][bestJ] {
			bestJ = j
		}
	}
	choice := make([]int, len(layers))
	for i, j := last, bestJ; i >= 0; i-- {
		choice[i] = j
		j = back[i][j]
	}

	// Assemble the plans: row triple from the DP, column triple coupled
	// (layer 0 free).
	plans := make([]LayerPlan, len(layers))
	for i, l := range layers {
		row := cands[i][choice[i]]
		var col arch.T
		if i == 0 {
			col = freeCol0
		} else {
			col = colFor(cands[i-1][choice[i-1]], l, d)
		}
		f := arch.T{Tm: row.Tm, Tr: row.Tr, Tc: row.Tc, Tn: col.Tn, Ti: col.Ti, Tj: col.Tj}
		plans[i] = LayerPlan{
			Layer:       l,
			Factors:     f,
			RCBound:     bounds[i],
			Utilization: arch.TotalUtilization(l, f, d),
			Passes:      arch.GroupPasses(l, f),
			CyclesPass:  arch.CyclesPerPass(l, f),
			PoolAfter:   poolAfter(nw, i),
		}
	}
	return plans
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func ceilDivI(a, b int) int { return (a + b - 1) / b }
