package compiler

import (
	"sort"

	"flexflow/internal/arch"
	"flexflow/internal/nn"
)

// LayerAnalysis quantifies Section 3.4's argument for one layer: the
// best utilization each *single* parallelism type can reach on a D×D
// FlexFlow array, next to the complementary mix. The dominant single
// type varies from layer to layer, and even the dominant one is far
// below the mix — which is why rigid single-parallelism architectures
// are volatile.
type LayerAnalysis struct {
	Layer    nn.ConvLayer
	PureNP   float64 // neuron parallelism only (T_r, T_c free)
	PureSP   float64 // synapse parallelism only (T_i, T_j free)
	PureFP   float64 // feature-map parallelism only (T_m, T_n free)
	Mixed    float64 // the complementary mix (ChooseFactors)
	Dominant string  // which pure type wins ("NP", "SP" or "FP")
}

// Gain returns how much the complementary mix improves on the best
// single parallelism.
func (a LayerAnalysis) Gain() float64 {
	best := a.PureNP
	if a.PureSP > best {
		best = a.PureSP
	}
	if a.PureFP > best {
		best = a.PureFP
	}
	if best == 0 {
		return 0
	}
	return a.Mixed / best
}

// bestPure maximizes U_t over factor vectors restricted to one
// parallelism type.
func bestPure(l nn.ConvLayer, d int, vary func(a, b int) arch.T, maxA, maxB int) float64 {
	best := 0.0
	for a := 1; a <= maxA; a++ {
		for b := 1; b <= maxB; b++ {
			t := vary(a, b)
			if t.Rows() > d || t.Cols() > d {
				continue
			}
			if u := arch.TotalUtilization(l, t, d); u > best {
				best = u
			}
		}
	}
	return best
}

// AnalyzeLayer computes the single-parallelism ceilings and the mixed
// choice for one layer.
func AnalyzeLayer(l nn.ConvLayer, d int) LayerAnalysis {
	one := arch.T{Tm: 1, Tn: 1, Tr: 1, Tc: 1, Ti: 1, Tj: 1}
	a := LayerAnalysis{Layer: l}
	a.PureNP = bestPure(l, d, func(x, y int) arch.T {
		t := one
		t.Tr, t.Tc = x, y
		return t
	}, minI(l.S, d), minI(l.S, d))
	a.PureSP = bestPure(l, d, func(x, y int) arch.T {
		t := one
		t.Ti, t.Tj = x, y
		return t
	}, minI(l.K, d), minI(l.K, d))
	a.PureFP = bestPure(l, d, func(x, y int) arch.T {
		t := one
		t.Tm, t.Tn = x, y
		return t
	}, minI(l.M, d), minI(l.N, d))
	a.Mixed = arch.TotalUtilization(l, arch.ChooseFactors(l, d, l.S), d)

	a.Dominant = "NP"
	best := a.PureNP
	if a.PureSP > best {
		a.Dominant, best = "SP", a.PureSP
	}
	if a.PureFP > best {
		a.Dominant = "FP"
	}
	return a
}

// Analyze runs AnalyzeLayer over a network's CONV layers.
func Analyze(nw *nn.Network, d int) []LayerAnalysis {
	var out []LayerAnalysis
	for _, l := range nw.ConvLayers() {
		out = append(out, AnalyzeLayer(l, d))
	}
	return out
}

func minI(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// SweepEntry is one candidate factor vector with its score, used by
// the -sweep tooling to expose the utilization landscape the optimizer
// searches.
type SweepEntry struct {
	Factors arch.T
	Ur, Uc  float64
	Ut      float64
}

// Sweep enumerates every feasible factor vector for a layer on a D×D
// array (Constraint 1, with rcBound on T_r/T_c) and returns the topK
// by total utilization, ties broken toward fewer group passes. It is
// exhaustive over the composed row/column candidate spaces.
func Sweep(l nn.ConvLayer, d, rcBound, topK int) []SweepEntry {
	if rcBound > l.S {
		rcBound = l.S
	}
	if rcBound < 1 {
		rcBound = 1
	}
	var rows, cols []arch.T
	for tm := 1; tm <= minI(l.M, d); tm++ {
		for tr := 1; tr <= minI(rcBound, d/tm); tr++ {
			for tc := 1; tc <= minI(rcBound, d/(tm*tr)); tc++ {
				rows = append(rows, arch.T{Tm: tm, Tr: tr, Tc: tc})
			}
		}
	}
	for tn := 1; tn <= minI(l.N, d); tn++ {
		for ti := 1; ti <= minI(l.K, d/tn); ti++ {
			for tj := 1; tj <= minI(l.K, d/(tn*ti)); tj++ {
				cols = append(cols, arch.T{Tn: tn, Ti: ti, Tj: tj})
			}
		}
	}
	var entries []SweepEntry
	for _, r := range rows {
		uc := arch.ColUtilization(l, arch.T{Tm: r.Tm, Tr: r.Tr, Tc: r.Tc, Tn: 1, Ti: 1, Tj: 1}, d)
		for _, c := range cols {
			t := arch.T{Tm: r.Tm, Tr: r.Tr, Tc: r.Tc, Tn: c.Tn, Ti: c.Ti, Tj: c.Tj}
			ur := arch.RowUtilization(l, t, d)
			entries = append(entries, SweepEntry{Factors: t, Ur: ur, Uc: uc, Ut: ur * uc})
		}
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Ut != entries[j].Ut {
			return entries[i].Ut > entries[j].Ut
		}
		pi := arch.GroupPasses(l, entries[i].Factors) * arch.CyclesPerPass(l, entries[i].Factors)
		pj := arch.GroupPasses(l, entries[j].Factors) * arch.CyclesPerPass(l, entries[j].Factors)
		return pi < pj
	})
	if topK > 0 && len(entries) > topK {
		entries = entries[:topK]
	}
	return entries
}

// TrafficEstimateForTest exposes the internal traffic estimate for
// diagnostics and tests.
func TrafficEstimateForTest(l nn.ConvLayer, t arch.T) int64 { return trafficEstimate(l, t) }
