// Package compiler implements the paper's specialized compiler
// (Section 5): a workload analyzer that determines the unrolling
// factors ⟨T_m,T_n,T_r,T_c,T_i,T_j⟩ for every CONV layer of a network,
// and a code generator that emits the assembly program consumed by the
// FlexFlow instruction decoder.
//
// Two planning modes are provided. Plan applies the paper's IADP
// inter-layer constraints: T_r and T_c are bounded by P·K′ of the next
// layers, and each layer's ⟨T_n,T_i,T_j⟩ equals the previous layer's
// ⟨T_m,T_r,T_c⟩ so that one layer's outputs are already laid out in the
// next layer's buffer format. PlanUncoupled optimizes each layer
// independently (the upper bound the coupled plan is compared against).
package compiler

import (
	"fmt"
	"strings"

	"flexflow/internal/arch"
	"flexflow/internal/nn"
	"flexflow/internal/tensor"
)

// LayerPlan is the compilation result for one CONV layer.
type LayerPlan struct {
	Layer       nn.ConvLayer
	Factors     arch.T
	RCBound     int     // the P·K′ bound applied to T_r/T_c
	Utilization float64 // U_r · U_c at the target array size
	Passes      int64   // group passes
	CyclesPass  int64   // cycles per pass
	PoolAfter   int     // pooling window following this layer (0 = none)
}

// Program is a compiled network: an ordered set of layer plans for a
// D×D FlexFlow engine.
type Program struct {
	Network string
	D       int
	Coupled bool
	Plans   []LayerPlan
}

// rcBoundFor computes the paper's T_r/T_c bound for CONV layer index i:
// P·K′ with P the pooling window between it and the next CONV layer and
// K′ the next layer's kernel size; the layer's own S when it is last.
func rcBoundFor(nw *nn.Network, i int, l nn.ConvLayer) int {
	next, p, ok := nw.NextConvAfter(i)
	if !ok {
		return l.S
	}
	b := p * next.K
	if b > l.S {
		b = l.S
	}
	if b < 1 {
		b = 1
	}
	return b
}

// Plan compiles a network with the inter-layer coupling constraints.
func Plan(nw *nn.Network, d int) *Program {
	return plan(nw, d, true)
}

// PlanUncoupled compiles each layer independently.
func PlanUncoupled(nw *nn.Network, d int) *Program {
	return plan(nw, d, false)
}

// PlanBalanced compiles with a joint cycles+traffic objective: the DP
// minimizes cycles + lambda·(estimated buffer→PE words)/D. lambda is in
// cycle-equivalents per D words (0 reduces to Plan); small values trade
// a few percent of utilization for materially less data movement —
// useful when the deployment is energy-bound rather than latency-bound.
func PlanBalanced(nw *nn.Network, d int, lambda float64) *Program {
	prog := &Program{Network: nw.Name, D: d, Coupled: true}
	cost := func(l nn.ConvLayer, t arch.T) int64 {
		c := cyclesCost(l, t)
		if lambda > 0 {
			c += int64(lambda * float64(trafficEstimate(l, t)) / float64(d))
		}
		return c
	}
	prog.Plans = planCoupledDP(nw, d, cost)
	return prog
}

func plan(nw *nn.Network, d int, coupled bool) *Program {
	prog := &Program{Network: nw.Name, D: d, Coupled: coupled}
	if coupled {
		prog.Plans = planCoupledDP(nw, d, cyclesCost)
		return prog
	}
	for i, l := range nw.ConvLayers() {
		bound := rcBoundFor(nw, i, l)
		f := arch.ChooseFactors(l, d, bound)
		prog.Plans = append(prog.Plans, LayerPlan{
			Layer:       l,
			Factors:     f,
			RCBound:     bound,
			Utilization: arch.TotalUtilization(l, f, d),
			Passes:      arch.GroupPasses(l, f),
			CyclesPass:  arch.CyclesPerPass(l, f),
			PoolAfter:   poolAfter(nw, i),
		})
	}
	return prog
}

// poolAfter returns the pooling window that follows CONV layer i
// (0 when none).
func poolAfter(nw *nn.Network, i int) int {
	if _, p, ok := nw.NextConvAfter(i); ok && p > 1 {
		return p
	}
	// A trailing pool after the last CONV layer also counts.
	seen := -1
	for idx, l := range nw.Layers {
		if l.Kind == nn.Conv {
			seen++
		}
		if seen == i && l.Kind == nn.Conv {
			for _, after := range nw.Layers[idx+1:] {
				switch after.Kind {
				case nn.Pool:
					return after.Pool.P
				case nn.Conv, nn.FC:
					return 0
				}
			}
		}
	}
	return 0
}

// FactorsFor returns the planned factors of the named layer.
func (p *Program) FactorsFor(name string) (arch.T, bool) {
	for _, lp := range p.Plans {
		if lp.Layer.Name == name {
			return lp.Factors, true
		}
	}
	return arch.T{}, false
}

// Chooser returns a factor-selection function suitable for
// core.Engine.Chooser: planned layers get their planned factors, and
// unknown layers fall back to the per-layer search.
func (p *Program) Chooser() func(nn.ConvLayer) arch.T {
	byShape := make(map[nn.ConvLayer]arch.T, len(p.Plans))
	for _, lp := range p.Plans {
		byShape[lp.Layer] = lp.Factors
	}
	d := p.D
	return func(l nn.ConvLayer) arch.T {
		if f, ok := byShape[l]; ok {
			return f
		}
		return arch.ChooseFactors(l, d, l.S)
	}
}

// Assembly renders the program as the textual configuration code the
// instruction decoder consumes. The format is line-oriented:
//
//	LAYER <name> M=<m> N=<n> S=<s> K=<k>
//	CONFIG TM=.. TN=.. TR=.. TC=.. TI=.. TJ=..
//	LDKERN GROUPS=<Tm>x<Tr>x<Tc>   ; IADP kernel-buffer partitioning
//	LDNEUR GROUPS=<Tn>x<Ti>x<Tj>   ; IADP neuron-buffer partitioning
//	CONV PASSES=<passes> CPP=<cycles-per-pass>
//	STORE LAYOUT=<Tm>x<Tr>x<Tc>    ; outputs written in next layer's form
func (p *Program) Assembly() string {
	var b strings.Builder
	fmt.Fprintf(&b, "; FlexFlow program for %s on %dx%d PEs (coupled=%v)\n", p.Network, p.D, p.D, p.Coupled)
	for _, lp := range p.Plans {
		f := lp.Factors
		fmt.Fprintf(&b, "LAYER %s M=%d N=%d S=%d K=%d\n", lp.Layer.Name, lp.Layer.M, lp.Layer.N, lp.Layer.S, lp.Layer.K)
		fmt.Fprintf(&b, "CONFIG TM=%d TN=%d TR=%d TC=%d TI=%d TJ=%d\n", f.Tm, f.Tn, f.Tr, f.Tc, f.Ti, f.Tj)
		fmt.Fprintf(&b, "LDKERN GROUPS=%dx%dx%d\n", f.Tm, f.Tr, f.Tc)
		fmt.Fprintf(&b, "LDNEUR GROUPS=%dx%dx%d\n", f.Tn, f.Ti, f.Tj)
		fmt.Fprintf(&b, "CONV PASSES=%d CPP=%d\n", lp.Passes, lp.CyclesPass)
		if lp.PoolAfter > 1 {
			fmt.Fprintf(&b, "POOL P=%d KIND=max\n", lp.PoolAfter)
		}
		fmt.Fprintf(&b, "STORE LAYOUT=%dx%dx%d\n", f.Tm, f.Tr, f.Tc)
	}
	return b.String()
}

// ParseAssembly parses the output of Assembly back into the layer/
// factor pairs (the instruction-decoder front end). It accepts comments
// introduced by ';'.
func ParseAssembly(text string) (*Program, error) {
	prog := &Program{}
	var cur *LayerPlan
	flush := func() {
		if cur != nil {
			prog.Plans = append(prog.Plans, *cur)
			cur = nil
		}
	}
	for lineNo, raw := range strings.Split(text, "\n") {
		line := raw
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		op := fields[0]
		kv := map[string]string{}
		var name string
		for _, f := range fields[1:] {
			if i := strings.IndexByte(f, '='); i >= 0 {
				kv[f[:i]] = f[i+1:]
			} else {
				name = f
			}
		}
		atoi := func(key string) (int, error) {
			var v int
			if _, err := fmt.Sscanf(kv[key], "%d", &v); err != nil {
				return 0, fmt.Errorf("compiler: line %d: bad %s=%q", lineNo+1, key, kv[key])
			}
			return v, nil
		}
		switch op {
		case "LAYER":
			flush()
			m, err1 := atoi("M")
			n, err2 := atoi("N")
			s, err3 := atoi("S")
			k, err4 := atoi("K")
			for _, err := range []error{err1, err2, err3, err4} {
				if err != nil {
					return nil, err
				}
			}
			cur = &LayerPlan{Layer: nn.ConvLayer{Name: name, M: m, N: n, S: s, K: k}}
		case "CONFIG":
			if cur == nil {
				return nil, fmt.Errorf("compiler: line %d: CONFIG before LAYER", lineNo+1)
			}
			var errs []error
			get := func(key string) int {
				v, err := atoi(key)
				errs = append(errs, err)
				return v
			}
			cur.Factors = arch.T{
				Tm: get("TM"), Tn: get("TN"), Tr: get("TR"),
				Tc: get("TC"), Ti: get("TI"), Tj: get("TJ"),
			}
			for _, err := range errs {
				if err != nil {
					return nil, err
				}
			}
		case "POOL":
			if cur == nil {
				return nil, fmt.Errorf("compiler: line %d: POOL before LAYER", lineNo+1)
			}
			p, err := atoi("P")
			if err != nil {
				return nil, err
			}
			cur.PoolAfter = p
		case "LDKERN", "LDNEUR", "CONV", "STORE":
			// Layout/schedule directives carry no state the decoder
			// cannot rederive from LAYER+CONFIG.
		default:
			return nil, fmt.Errorf("compiler: line %d: unknown opcode %q", lineNo+1, op)
		}
	}
	flush()
	return prog, nil
}

// BuildNetwork reconstructs a runnable CNN topology from the program:
// the decoder back end. CONV layers come from the LAYER/CONFIG
// directives and POOL directives become max-pooling layers, so a
// parsed assembly program can be handed straight to a functional
// executor. The rebuilt network chains only if the original did.
func (p *Program) BuildNetwork() *nn.Network {
	nw := &nn.Network{Name: p.Network}
	if len(p.Plans) > 0 {
		first := p.Plans[0].Layer
		nw.InputN = first.N
		nw.InputS = first.InSize()
	}
	cur := 0
	for i, lp := range p.Plans {
		nw.Layers = append(nw.Layers, nn.Layer{Kind: nn.Conv, Conv: lp.Layer})
		cur = lp.Layer.S
		if lp.PoolAfter > 1 {
			nw.Layers = append(nw.Layers, nn.Layer{Kind: nn.Pool, Pool: nn.PoolLayer{
				Name: fmt.Sprintf("P%d", i+1),
				N:    lp.Layer.M,
				In:   cur,
				P:    lp.PoolAfter,
				Kind: tensor.MaxPool,
			}})
		}
	}
	return nw
}
