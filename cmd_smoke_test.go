package flexflow_test

// Smoke tests for the command-line tools: build each binary once and
// run it against representative flags, checking for a zero exit and a
// plausible stdout. Skipped when the go tool is unavailable.

import (
	"bytes"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

func buildTools(t *testing.T) string {
	t.Helper()
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go tool unavailable")
	}
	dir := t.TempDir()
	cmd := exec.Command("go", "build", "-o", dir, "./cmd/...")
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/...: %v\n%s", err, out)
	}
	return dir
}

func runTool(t *testing.T, dir, name string, args ...string) string {
	t.Helper()
	cmd := exec.Command(filepath.Join(dir, name), args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", name, args, err, out)
	}
	return string(out)
}

func TestCommandSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := buildTools(t)

	out := runTool(t, dir, "flexsim", "-workload", "LeNet-5")
	if !strings.Contains(out, "FlexFlow") || !strings.Contains(out, "GOPS") {
		t.Errorf("flexsim output unexpected:\n%s", out)
	}

	out = runTool(t, dir, "flexsim", "-layer", "M=4,N=2,S=6,K=3", "-arch", "Tiling", "-scale", "8")
	if !strings.Contains(out, "Tiling") {
		t.Errorf("flexsim -layer output unexpected:\n%s", out)
	}

	out = runTool(t, dir, "flexcc", "-workload", "PV", "-asm")
	if !strings.Contains(out, "LAYER C1") || !strings.Contains(out, "CONFIG") {
		t.Errorf("flexcc -asm output unexpected:\n%s", out)
	}

	out = runTool(t, dir, "flexcc", "-workload", "HG", "-analyze")
	if !strings.Contains(out, "Dominant") {
		t.Errorf("flexcc -analyze output unexpected:\n%s", out)
	}

	spec := filepath.Join(dir, "net.json")
	if err := os.WriteFile(spec, []byte(`{
		"name":"smoke","input":{"maps":1,"size":12},
		"layers":[{"type":"conv","m":2,"k":3}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	out = runTool(t, dir, "flexsim", "-spec", spec)
	if !strings.Contains(out, "smoke") {
		t.Errorf("flexsim -spec output unexpected:\n%s", out)
	}

	trace := filepath.Join(dir, "trace.txt")
	out = runTool(t, dir, "flexsim", "-workload", "Example", "-scale", "4", "-trace", trace)
	if !strings.Contains(out, "traced") {
		t.Errorf("flexsim -trace output unexpected:\n%s", out)
	}
	if data, err := os.ReadFile(trace); err != nil || !strings.Contains(string(data), "mac") {
		t.Errorf("trace file missing MAC events: %v", err)
	}

	report := filepath.Join(dir, "report.md")
	runTool(t, dir, "flexreport", "-o", report)
	if data, err := os.ReadFile(report); err != nil || !strings.Contains(string(data), "# FlexFlow reproduction report") {
		t.Errorf("flexreport output wrong: %v", err)
	}

	outDir := filepath.Join(dir, "results")
	out = runTool(t, dir, "flexbench", "-out", outDir)
	if !strings.Contains(out, "wrote") {
		t.Errorf("flexbench output unexpected:\n%s", out)
	}
	entries, err := os.ReadDir(outDir)
	if err != nil || len(entries) < 12 {
		t.Errorf("flexbench wrote %d artifacts, want ≥ 12 (%v)", len(entries), err)
	}
}

// TestFlexlintSmoke covers the static-analysis gate: the repository's
// own tree must be clean (exit 0), and a module with a violation must
// produce exit status 1 with a file:line diagnostic.
func TestFlexlintSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := buildTools(t)

	out := runTool(t, dir, "flexlint", "-list")
	for _, analyzer := range []string{
		"fixedsat", "detsim", "counteraudit", "errdrop", "concsafe",
		"layering", "unitcheck", "apiguard", "hookparity",
		"purity", "hotalloc", "sharedcapture",
		"lockguard", "ctxflow", "goleak", "chanaudit",
	} {
		if !strings.Contains(out, analyzer) {
			t.Errorf("flexlint -list missing analyzer %q:\n%s", analyzer, out)
		}
	}

	// Clean tree: runTool fails the test on a nonzero exit.
	runTool(t, dir, "flexlint", "./...")

	// A scratch module with a silently dropped error must be rejected.
	mod := t.TempDir()
	if err := os.WriteFile(filepath.Join(mod, "go.mod"), []byte("module scratch\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(mod, "internal", "bad"), 0o755); err != nil {
		t.Fatal(err)
	}
	src := "package bad\n\nimport \"os\"\n\nfunc Cleanup() {\n\tos.Remove(\"scratch\")\n}\n"
	if err := os.WriteFile(filepath.Join(mod, "internal", "bad", "bad.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(filepath.Join(dir, "flexlint"), "./...")
	cmd.Dir = mod
	violOut, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 1 {
		t.Fatalf("flexlint on a violating module: want exit status 1, got %v\n%s", err, violOut)
	}
	text := string(violOut)
	if !strings.Contains(text, filepath.Join("internal", "bad", "bad.go")+":6:") {
		t.Errorf("flexlint diagnostic lacks the file:line position:\n%s", text)
	}
	if !strings.Contains(text, "errdrop/ignored") {
		t.Errorf("flexlint diagnostic lacks the stable finding ID:\n%s", text)
	}
}

// TestFlexlintJSONBaseline pins the machine-readable interface: -json
// output round-trips through encoding/json and shares its shape with
// baseline files, -baseline suppresses exactly the findings it lists
// (matching id and file, not line), and a malformed baseline is
// rejected with exit status 1 and a one-line diagnostic.
func TestFlexlintJSONBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := buildTools(t)
	bin := filepath.Join(dir, "flexlint")

	// A scratch module with one errdrop violation in each of two files.
	mod := t.TempDir()
	if err := os.WriteFile(filepath.Join(mod, "go.mod"), []byte("module scratch\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, pkg := range []string{"one", "two"} {
		if err := os.MkdirAll(filepath.Join(mod, "internal", pkg), 0o755); err != nil {
			t.Fatal(err)
		}
		src := "package " + pkg + "\n\nimport \"os\"\n\nfunc Cleanup() {\n\tos.Remove(\"scratch\")\n}\n"
		if err := os.WriteFile(filepath.Join(mod, "internal", pkg, pkg+".go"), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	run := func(args ...string) (stdout, stderr string, code int) {
		t.Helper()
		cmd := exec.Command(bin, args...)
		cmd.Dir = mod
		var so, se strings.Builder
		cmd.Stdout, cmd.Stderr = &so, &se
		err := cmd.Run()
		if ee, ok := err.(*exec.ExitError); ok {
			code = ee.ExitCode()
		} else if err != nil {
			t.Fatalf("flexlint %v: %v", args, err)
		}
		return so.String(), se.String(), code
	}

	type finding struct {
		ID      string `json:"id"`
		File    string `json:"file"`
		Line    int    `json:"line"`
		Column  int    `json:"column"`
		Message string `json:"message"`
	}
	type report struct {
		Findings []finding `json:"findings"`
	}

	// -json must be valid JSON whose entries carry stable IDs and
	// module-relative slash-separated paths.
	stdout, _, code := run("-json", "./...")
	if code != 1 {
		t.Fatalf("flexlint -json on a violating module: want exit 1, got %d\n%s", code, stdout)
	}
	var rep report
	if err := json.Unmarshal([]byte(stdout), &rep); err != nil {
		t.Fatalf("-json output does not round-trip through encoding/json: %v\n%s", err, stdout)
	}
	if len(rep.Findings) != 2 {
		t.Fatalf("want 2 findings, got %d:\n%s", len(rep.Findings), stdout)
	}
	for _, f := range rep.Findings {
		if f.ID != "errdrop/ignored" {
			t.Errorf("finding ID = %q, want errdrop/ignored", f.ID)
		}
		if strings.Contains(f.File, "\\") || filepath.IsAbs(f.File) || !strings.HasPrefix(f.File, "internal/") {
			t.Errorf("finding file %q is not a module-relative slash path", f.File)
		}
		if f.Line <= 0 || f.Message == "" {
			t.Errorf("finding %+v lacks position or message", f)
		}
	}

	// A baseline listing the first finding suppresses exactly that one,
	// regardless of the recorded line number.
	writeBaseline := func(name string, fs ...finding) string {
		t.Helper()
		data, err := json.Marshal(report{Findings: fs})
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	first, second := rep.Findings[0], rep.Findings[1]
	first.Line = 9999 // lines churn; matching is on (id, file) only
	partial := writeBaseline("partial.json", first)
	stdout, stderr, code := run("-json", "-baseline", partial, "./...")
	if code != 1 {
		t.Fatalf("partially baselined module: want exit 1, got %d\n%s", code, stdout)
	}
	rep = report{}
	if err := json.Unmarshal([]byte(stdout), &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Findings) != 1 || rep.Findings[0].File != second.File {
		t.Errorf("baseline suppressed the wrong finding set:\n%s", stdout)
	}
	if !strings.Contains(stderr, "1 more in baseline") {
		t.Errorf("stderr does not account for the baselined finding:\n%s", stderr)
	}

	// A baseline covering everything makes the gate pass.
	full := writeBaseline("full.json", rep.Findings[0], first)
	_, stderr, code = run("-baseline", full, "./...")
	if code != 0 {
		t.Fatalf("fully baselined module: want exit 0, got %d\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "baseline finding(s) still present") {
		t.Errorf("stderr does not report baseline debt:\n%s", stderr)
	}

	// Malformed baselines fail with exit 1 and a one-line diagnostic.
	for name, content := range map[string]string{
		"syntax.json":  `{"findings":[`,
		"unknown.json": `{"findings":[],"extra":true}`,
		"missing.json": `{"findings":[{"id":"errdrop/ignored"}]}`,
	} {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		stdout, stderr, code := run("-baseline", path, "./...")
		if code != 1 {
			t.Errorf("malformed baseline %s: want exit 1, got %d", name, code)
		}
		if stdout != "" {
			t.Errorf("malformed baseline %s still ran the analysis:\n%s", name, stdout)
		}
		if n := strings.Count(strings.TrimRight(stderr, "\n"), "\n"); n != 0 || !strings.HasPrefix(stderr, "flexlint: baseline") {
			t.Errorf("malformed baseline %s: want one flexlint-prefixed diagnostic line, got:\n%s", name, stderr)
		}
	}

	// Analyzer selection: a disabled analyzer stops reporting, an
	// unknown name is a usage error (exit 2), not a silent no-op.
	if _, _, code := run("-disable", "errdrop", "./..."); code != 0 {
		t.Errorf("-disable errdrop: want exit 0, got %d", code)
	}
	if _, stderr, code := run("-enable", "nosuch", "./..."); code != 2 || !strings.Contains(stderr, "unknown analyzer") {
		t.Errorf("-enable nosuch: want exit 2 with diagnostic, got %d\n%s", code, stderr)
	}
}

func TestExampleSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go tool unavailable")
	}
	examples := map[string]string{
		"quickstart":  "Correct",
		"lenet":       "bit-exact",
		"mapping":     "bit-for-bit",
		"scalability": "utilization vs engine scale",
		"compiler":    "assembly program",
		"custom":      "bit-exact",
		"precision":   "ULP",
	}
	for name, want := range examples {
		name, want := name, want
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cmd := exec.Command("go", "run", "./examples/"+name)
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("example %s: %v\n%s", name, err, out)
			}
			if !strings.Contains(string(out), want) {
				t.Errorf("example %s output missing %q:\n%s", name, want, out)
			}
		})
	}
}

// runToolExpectError runs a tool expecting a nonzero exit with a
// one-line diagnostic: no panic stack, no goroutine dump.
func runToolExpectError(t *testing.T, dir, name string, args ...string) string {
	t.Helper()
	cmd := exec.Command(filepath.Join(dir, name), args...)
	out, err := cmd.CombinedOutput()
	text := string(out)
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() < 1 {
		t.Fatalf("%s %v: want exit status >= 1, got %v\n%s", name, args, err, text)
	}
	if strings.Contains(text, "panic:") || strings.Contains(text, "goroutine ") {
		t.Errorf("%s %v leaked a panic stack:\n%s", name, args, text)
	}
	// The diagnostic itself is the prefixed final line (a tool may
	// legitimately print results before a late failure like -expect).
	if !strings.HasPrefix(lastLine(text), name+": ") {
		t.Errorf("%s %v: final line is not a %q-prefixed diagnostic:\n%s", name, args, name, text)
	}
	return text
}

// TestCommandRejectsMalformedInput pins the CLI robustness contract:
// every tool must reject malformed input with exit status 1 and a
// one-line diagnostic — never a panic stack.
func TestCommandRejectsMalformedInput(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := buildTools(t)

	badSpec := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(badSpec, []byte(`{"name":"broken","layers":[`), 0o644); err != nil {
		t.Fatal(err)
	}
	zeroSpec := filepath.Join(dir, "zero.json")
	if err := os.WriteFile(zeroSpec, []byte(`{
		"name":"zero","input":{"maps":1,"size":8},
		"layers":[{"type":"conv","m":0,"k":3}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	// A plain file where flexbench expects to create a directory.
	notDir := filepath.Join(dir, "notadir")
	if err := os.WriteFile(notDir, nil, 0o644); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		tool string
		args []string
	}{
		{"flexsim", []string{"-workload", "NoSuchNet"}},
		{"flexsim", []string{"-spec", badSpec}},
		{"flexsim", []string{"-spec", filepath.Join(dir, "missing.json")}},
		{"flexsim", []string{"-spec", zeroSpec}},
		{"flexsim", []string{"-layer", "M=six,N=1"}},
		{"flexsim", []string{"-layer", "M=2,N=1,S=0,K=3"}},
		{"flexsim", []string{"-workload", "LeNet-5", "-scale", "-4"}},
		{"flexsim", []string{"-workload", "LeNet-5", "-bandwidth", "-1"}},
		{"flexcc", []string{"-workload", "NoSuchNet"}},
		{"flexcc", []string{"-workload", "LeNet-5", "-scale", "0"}},
		{"flexfault", []string{"-workload", "NoSuchNet"}},
		{"flexfault", []string{"-workload", "Example", "-scale", "0"}},
		{"flexfault", []string{"-workload", "Example", "-n", "-2"}},
		{"flexfault", []string{"-workload", "Example", "-scale", "4", "-n", "1", "-expect", "nonsense"}},
		{"flextune", []string{"-workload", "NoSuchNet"}},
		{"flextune", []string{"-workload", "LeNet-5", "-scale", "0"}},
		{"flextune", []string{"-workload", "LeNet-5", "-beam", "-1"}},
		{"flexreport", []string{"-o", filepath.Join(dir, "no", "such", "dir", "r.md")}},
		{"flexbench", []string{"-out", filepath.Join(notDir, "sub")}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.tool+strings.Join(c.args, "_"), func(t *testing.T) {
			t.Parallel()
			runToolExpectError(t, dir, c.tool, c.args...)
		})
	}
}

// TestFlexfaultSmoke runs a small campaign end to end: the table must
// carry the taxonomy, -expect must verify the totals, and two runs with
// the same seed must be byte-identical on stdout.
func TestFlexfaultSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := buildTools(t)

	args := []string{"-workload", "Example", "-scale", "8", "-n", "5", "-seed", "3"}
	out1 := runTool(t, dir, "flexfault", args...)
	for _, want := range []string{"fault-coverage:", "masked", "detected", "sdc", "total"} {
		if !strings.Contains(out1, want) {
			t.Errorf("flexfault table missing %q:\n%s", want, out1)
		}
	}
	out2 := runTool(t, dir, "flexfault", args...)
	if out1 != out2 {
		t.Errorf("same campaign seed produced different stdout:\n%s\nvs\n%s", out1, out2)
	}

	// -out writes the table; -expect with the true totals passes.
	table := filepath.Join(dir, "coverage.txt")
	out := runTool(t, dir, "flexfault", append(args, "-out", table)...)
	if !strings.Contains(out, "wrote") {
		t.Errorf("flexfault -out output unexpected:\n%s", out)
	}
	data, err := os.ReadFile(table)
	if err != nil || !strings.Contains(string(data), "fault-coverage:") {
		t.Errorf("flexfault -out file wrong: %v", err)
	}
	if !strings.Contains(out1, "total") {
		t.Fatalf("no totals line:\n%s", out1)
	}
	// The stdout table ends with the totals row; feed it back via -expect.
	fields := strings.Fields(lastLine(out1))
	if len(fields) != 6 {
		t.Fatalf("unexpected totals row %q", lastLine(out1))
	}
	expect := "trials=" + fields[1] + ",fired=" + fields[2] + ",masked=" + fields[3] +
		",detected=" + fields[4] + ",sdc=" + fields[5]
	out = runTool(t, dir, "flexfault", append(args, "-expect", expect)...)
	if !strings.Contains(out, "confirmed") {
		t.Errorf("flexfault -expect did not confirm:\n%s", out)
	}
	// And a wrong expectation must fail.
	runToolExpectError(t, dir, "flexfault", append(args, "-expect", "masked=99999")...)
}

// TestFlextuneSmoke pins the autotuner's contract: the artifact for a
// workload is byte-identical at any -workers setting (the beam search
// is deterministic and its total order worker-independent), it matches
// the committed results/tuned/ artifact, and the tuned mapping never
// loses to the compiler baseline it was seeded with.
func TestFlextuneSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := buildTools(t)

	w1 := filepath.Join(dir, "tuned-w1")
	w4 := filepath.Join(dir, "tuned-w4")
	runTool(t, dir, "flextune", "-workload", "LeNet-5", "-workers", "1", "-out", w1)
	runTool(t, dir, "flextune", "-workload", "LeNet-5", "-workers", "4", "-out", w4)

	got1, err := os.ReadFile(filepath.Join(w1, "lenet-5.json"))
	if err != nil {
		t.Fatal(err)
	}
	got4, err := os.ReadFile(filepath.Join(w4, "lenet-5.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got1, got4) {
		t.Errorf("flextune artifact differs between -workers 1 and -workers 4:\n%s\nvs\n%s", got1, got4)
	}
	committed, err := os.ReadFile(filepath.Join("results", "tuned", "lenet-5.json"))
	if err != nil {
		t.Fatalf("committed tuned artifact missing (regenerate with `go run ./cmd/flextune -all -out results/tuned`): %v", err)
	}
	if !bytes.Equal(got1, committed) {
		t.Errorf("committed results/tuned/lenet-5.json is stale; regenerate with `go run ./cmd/flextune -all -out results/tuned`")
	}

	var art struct {
		Layers []struct {
			Baseline struct {
				Cycles int64 `json:"cycles"`
			} `json:"baseline"`
			Tuned struct {
				Cycles int64 `json:"cycles"`
			} `json:"tuned"`
			Spec string `json:"spec"`
		} `json:"layers"`
		BaselineCycles int64 `json:"baseline_cycles"`
		TunedCycles    int64 `json:"tuned_cycles"`
	}
	if err := json.Unmarshal(got1, &art); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if len(art.Layers) == 0 || art.TunedCycles <= 0 {
		t.Fatalf("artifact has no tuned layers:\n%s", got1)
	}
	if art.TunedCycles > art.BaselineCycles {
		t.Errorf("tuned total %d cycles is worse than the compiler baseline %d — the baseline is a beam seed, so this cannot happen",
			art.TunedCycles, art.BaselineCycles)
	}
	for i, l := range art.Layers {
		if l.Tuned.Cycles > l.Baseline.Cycles {
			t.Errorf("layer %d: tuned %d cycles > baseline %d", i, l.Tuned.Cycles, l.Baseline.Cycles)
		}
		if !strings.Contains(l.Spec, "dataflow flexflow") {
			t.Errorf("layer %d: emitted spec is not flexflow DSL text:\n%s", i, l.Spec)
		}
	}
}

func lastLine(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	return lines[len(lines)-1]
}

// TestFlexserveSmoke boots the real flexserve binary, answers one
// request through it, and SIGTERMs it: the process must drain and
// print the clean-shutdown marker.
func TestFlexserveSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := buildTools(t)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	_ = ln.Close()

	cmd := exec.Command(filepath.Join(dir, "flexserve"),
		"-addr", addr, "-scale", "8", "-workers", "1", "-engine-workers", "1")
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cmd.Process.Kill() }()

	base := "http://" + addr
	ready := false
	for i := 0; i < 100 && !ready; i++ {
		resp, err := http.Get(base + "/readyz")
		if err == nil {
			_ = resp.Body.Close()
			ready = resp.StatusCode == http.StatusOK
		}
		if !ready {
			time.Sleep(50 * time.Millisecond)
		}
	}
	if !ready {
		t.Fatalf("flexserve never became ready:\n%s", buf.String())
	}

	resp, err := http.Post(base+"/v1/run", "application/json",
		strings.NewReader(`{"workload":"LeNet-5","mode":"model"}`))
	if err != nil {
		t.Fatal(err)
	}
	var reply struct {
		Cycles int64 `json:"cycles"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK || reply.Cycles <= 0 {
		t.Fatalf("run: status %d cycles %d", resp.StatusCode, reply.Cycles)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("flexserve exited dirty: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "flexserve: clean shutdown") {
		t.Errorf("no clean-shutdown marker:\n%s", buf.String())
	}
}
