package flexflow

// Allocation regression guards for the analytic fast path. The
// flexlint hotalloc analyzer bounds the *sites* that may allocate in
// functions reachable from the pipeline hot paths; these tests bound
// the *runtime counts*, so a regression shows up whichever side it
// enters from. The ceilings are deliberately above the measured
// values (see the comments) — they are tripwires, not benchmarks.

import (
	"testing"

	"flexflow/internal/workloads"
)

// TestRunModelAllocGuard pins the steady-state allocation count of a
// serial analytic run. Measured: 3 allocs/run on VGG-11 (the layer
// slice, the result slice, and the scheduler closure) after the
// exact-size ConvLayers and single-extraction CheckLayers changes —
// down from 10 before them.
func TestRunModelAllocGuard(t *testing.T) {
	const ceiling = 6
	nw := workloads.VGG11()
	e, err := NewEngine(FlexFlow, 16, nw)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunOpts(e, nw, Options{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	n := testing.AllocsPerRun(10, func() {
		if _, err := RunOpts(e, nw, Options{Workers: 1}); err != nil {
			t.Fatal(err)
		}
	})
	if n > ceiling {
		t.Errorf("RunOpts(workers=1) allocates %.0f times per run, guard is %d", n, ceiling)
	}
}
