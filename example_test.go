package flexflow_test

// Runnable godoc examples: these execute under `go test` and render in
// the package documentation.

import (
	"fmt"

	"flexflow"
)

// ExampleRun evaluates LeNet-5 analytically on the paper's 16×16
// FlexFlow configuration.
func ExampleRun() {
	nw, _ := flexflow.Workload("LeNet-5")
	engine, _ := flexflow.NewEngine(flexflow.FlexFlow, 16, nw)
	r, _ := flexflow.Run(engine, nw)
	fmt.Printf("%.1f%% utilization, %.0f GOPS\n", 100*r.Utilization(), r.GOPS(flexflow.ClockHz))
	// Output: 83.5% utilization, 428 GOPS
}

// ExampleCompile shows the Section 5 workload analyzer's factor choice
// for LeNet-5's first layer.
func ExampleCompile() {
	nw, _ := flexflow.Workload("LeNet-5")
	prog, _ := flexflow.Compile(nw, 16)
	fmt.Println(prog.Plans[0].Factors)
	// Output: <Tm=3 Tn=1 Tr=1 Tc=5 Ti=3 Tj=5>
}

// ExampleParseMappingSpec parses a mapping from the compact text DSL,
// lowers it through the analytic interpreter, and evaluates one layer.
// (examples/mapping runs the same spec functionally, value by value.)
func ExampleParseMappingSpec() {
	spec, _ := flexflow.ParseMappingSpec([]byte(`
name Hand-Tuned
dataflow flexflow
array 4x4
repl 1
store neuron=128 kernel=128
buffer 16384
opt ra rs ipdr
spatial N factor=1
spatial M factor=2
spatial R factor=1
spatial C factor=2
spatial I factor=1
spatial J factor=4
`))
	engine, _ := flexflow.LowerSpec(spec)
	res := engine.Model(flexflow.ConvLayer{Name: "C1", M: 2, N: 1, S: 10, K: 4})
	fmt.Printf("%s: %d cycles at %.0f%% utilization\n", spec.Name, res.Cycles, 100*res.Utilization())
	// Output: Hand-Tuned: 200 cycles at 100% utilization
}

// ExampleExecute runs the small Section 4 network functionally and
// checks it against the software reference.
func ExampleExecute() {
	nw, _ := flexflow.Workload("Example")
	in := flexflow.RandomInput(nw, 1)
	ks := flexflow.RandomKernels(nw, 2)
	exec, _ := flexflow.Execute(nw, in, ks, 4)
	ref, _ := flexflow.Reference(nw, in, ks)
	fmt.Println("bit-exact:", exec.Output.Equal(ref))
	// Output: bit-exact: true
}
