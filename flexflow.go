// Package flexflow is a from-scratch reproduction of the FlexFlow CNN
// accelerator (Lu et al., HPCA 2017) together with the three baseline
// dataflow architectures the paper compares against. It provides:
//
//   - cycle-level functional simulators for all four architectures
//     (Systolic, 2D-Mapping, Tiling, FlexFlow) that move 16-bit
//     fixed-point operands through explicit PE dataflow and are
//     validated bit-exactly against a golden software convolution;
//   - analytic performance/traffic models validated against the
//     simulators, fast enough for the AlexNet/VGG-scale workloads;
//   - the unrolling-factor compiler of the paper's Section 5;
//   - a calibrated 65 nm energy/area model; and
//   - generators that regenerate every table and figure of the paper's
//     evaluation (see the internal/experiments package and the
//     repository benchmarks).
//
// This root package is the facade: it re-exports the types a user
// composes and offers one-call helpers for the common flows. See
// examples/ for runnable walk-throughs.
package flexflow

import (
	"fmt"

	"flexflow/internal/arch"
	"flexflow/internal/compiler"
	"flexflow/internal/core"
	"flexflow/internal/energy"
	"flexflow/internal/fixed"
	"flexflow/internal/mapping2d"
	"flexflow/internal/nn"
	"flexflow/internal/pipeline"
	"flexflow/internal/rowstat"
	"flexflow/internal/systolic"
	"flexflow/internal/tensor"
	"flexflow/internal/tiling"
	"flexflow/internal/workloads"
)

// Re-exported core types. The definitions live in internal packages;
// these aliases are the public names.
type (
	// Engine is the common interface of the four architecture models.
	Engine = arch.Engine
	// LayerResult and RunResult carry cycle and traffic measurements.
	LayerResult = arch.LayerResult
	RunResult   = arch.RunResult
	// T is the loop-unrolling factor vector ⟨Tm,Tn,Tr,Tc,Ti,Tj⟩.
	T = arch.T
	// Network, ConvLayer and friends describe CNN topologies.
	Network   = nn.Network
	ConvLayer = nn.ConvLayer
	// Map3 and Kernel4 are fixed-point operand tensors; Word is the
	// 16-bit Q7.8 fixed-point storage type and Acc the 32-bit
	// accumulator.
	Map3    = tensor.Map3
	Kernel4 = tensor.Kernel4
	Word    = fixed.Word
	Acc     = fixed.Acc
	// Program is a compiled FlexFlow configuration.
	Program = compiler.Program
	// EnergyParams and Breakdown form the 65 nm power model.
	EnergyParams    = energy.Params
	EnergyBreakdown = energy.Breakdown
)

// Arch names one of the four architectures.
type Arch string

// The four architectures of the paper's evaluation, plus the
// row-stationary extension comparator.
const (
	Systolic      Arch = "Systolic"
	Mapping2D     Arch = "2D-Mapping"
	Tiling        Arch = "Tiling"
	FlexFlow      Arch = "FlexFlow"
	RowStationary Arch = "Row-Stationary"
)

// Arches lists the paper's four architectures in its order
// (RowStationary is the extension comparator and is not included).
func Arches() []Arch { return []Arch{Systolic, Mapping2D, Tiling, FlexFlow} }

// ClockHz is the evaluation clock frequency (1 GHz).
const ClockHz = 1e9

// NewEngine builds an engine of the given architecture at the given
// scale (the PE-array edge; 16 reproduces the paper's evaluation
// configuration). When nw is non-nil the engine is tuned for that
// workload: the Systolic baseline picks its kernel-matched array size
// and FlexFlow compiles the coupled layer plan.
func NewEngine(a Arch, scale int, nw *Network) (Engine, error) {
	var eng Engine
	err := guard(func() error {
		if scale <= 0 {
			return invalid("scale must be positive, got %d", scale)
		}
		if nw != nil {
			// Per-layer shapes must be sane before the compiler sizes its
			// plans; full chaining is not required here (the Table 1
			// workloads keep published shapes that do not chain exactly).
			for _, l := range nw.ConvLayers() {
				if err := l.Validate(); err != nil {
					return fmt.Errorf("%w: %v", ErrInvalidConfig, err)
				}
			}
		}
		switch a {
		case Systolic:
			k0 := 6
			if nw != nil && nw.Name == "AlexNet" {
				k0 = 11
			}
			arrays := scale * scale / (k0 * k0)
			if arrays < 1 {
				arrays = 1
			}
			eng = systolic.New(k0, arrays)
		case Mapping2D:
			eng = mapping2d.New(scale)
		case Tiling:
			eng = tiling.New(scale, scale)
		case RowStationary:
			// Eyeriss-like geometry scaled to the requested PE budget.
			eng = rowstat.New(scale, scale)
		case FlexFlow:
			e := core.New(scale)
			if nw != nil {
				e.Chooser = compiler.Plan(nw, scale).Chooser()
			}
			eng = e
		default:
			return invalid("unknown architecture %q", a)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return eng, nil
}

// Workloads returns the six Table 1 networks (PV, FR, LeNet-5, HG,
// AlexNet, VGG-11).
func Workloads() []*Network { return workloads.All() }

// Workload returns one workload by name ("LeNet-5", "AlexNet", …, or
// "Example" for the small Section 4 running example), or an error.
func Workload(name string) (*Network, error) {
	var nw *Network
	err := guard(func() error {
		if nw = workloads.ByName(name); nw == nil {
			return invalid("unknown workload %q", name)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return nw, nil
}

// Run analytically evaluates every CONV layer of the network on the
// engine (cycles, utilization, traffic). The network is validated
// against the engine first (topology chaining plus per-engine layer
// constraints, e.g. the rigid baselines' unit-stride contract), so a
// malformed or unrunnable network returns ErrInvalidConfig instead of
// crashing; an escaped internal panic comes back as ErrInternal.
func Run(e Engine, nw *Network) (RunResult, error) {
	return RunOpts(e, nw, Options{})
}

// RunOpts is Run with the execution controls of an Options: context
// cancellation, a modelled-cycle budget, and a worker count for
// layer-parallel evaluation. Results are bit-identical at any Workers
// setting.
func RunOpts(e Engine, nw *Network, opts Options) (RunResult, error) {
	var res RunResult
	err := guard(func() error {
		var err error
		res, err = pipeline.RunModel(e, nw, pipeline.Options{
			Context:   opts.Context,
			MaxCycles: opts.MaxCycles,
			Workers:   opts.Workers,
			Cache:     opts.Cache,
		})
		return fromPipeline(err)
	})
	if err != nil {
		return RunResult{}, err
	}
	return res, nil
}

// Compile runs the Section 5 workload analyzer: unrolling factors for
// every CONV layer with the inter-layer IADP coupling, ready for
// Program.Assembly.
func Compile(nw *Network, scale int) (*Program, error) {
	return compile(nw, scale, func() *Program { return compiler.Plan(nw, scale) })
}

// CompileUncoupled optimizes each layer independently (the upper bound
// the coupled plan is measured against).
func CompileUncoupled(nw *Network, scale int) (*Program, error) {
	return compile(nw, scale, func() *Program { return compiler.PlanUncoupled(nw, scale) })
}

// CompileBalanced compiles with a joint cycles+traffic objective:
// lambda > 0 lets the planner pay cycles to cut buffer→PE data
// movement (energy-bound deployments); lambda = 0 reduces to Compile.
func CompileBalanced(nw *Network, scale int, lambda float64) (*Program, error) {
	return compile(nw, scale, func() *Program { return compiler.PlanBalanced(nw, scale, lambda) })
}

// compile validates the compiler inputs and runs the planner inside
// the recovery boundary.
func compile(nw *Network, scale int, plan func() *Program) (*Program, error) {
	var p *Program
	err := guard(func() error {
		if nw == nil {
			return invalid("nil network")
		}
		if scale <= 0 {
			return invalid("scale must be positive, got %d", scale)
		}
		for _, l := range nw.ConvLayers() {
			if err := l.Validate(); err != nil {
				return fmt.Errorf("%w: %v", ErrInvalidConfig, err)
			}
		}
		p = plan()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return p, nil
}

// DefaultEnergy returns the calibrated 65 nm energy parameters.
func DefaultEnergy() EnergyParams { return energy.Default65nm() }

// Energy charges the 65 nm model against a run's measured counters.
func Energy(r RunResult, scale int) EnergyBreakdown {
	return energy.Default65nm().RunEnergy(r, scale)
}

// PowerMW returns the average on-chip power of a run at ClockHz.
func PowerMW(r RunResult, scale int) float64 {
	return energy.PowerMW(Energy(r, scale), r.Cycles(), ClockHz)
}

// Area returns the modelled chip area (mm²) of an architecture at the
// paper's buffer configuration.
func Area(a Arch, pes int) float64 {
	local := map[Arch]int{Systolic: 4, Mapping2D: 8, Tiling: 2, FlexFlow: 512, RowStationary: 512}[a]
	return energy.Area(string(a), pes, local, 64*1024)
}
