package flexflow

// Cross-architecture integration tests: the four engines are different
// machines but compute the same mathematics. Every engine must produce
// bit-identical outputs for identical operands, and every measurement
// must satisfy the architectural invariants.

import (
	"math/rand"
	"testing"
	"testing/quick"

	"flexflow/internal/rowstat"
	"flexflow/internal/tensor"
)

func randomLayer(rng *rand.Rand) ConvLayer {
	return ConvLayer{
		Name: "rand",
		M:    1 + rng.Intn(5),
		N:    1 + rng.Intn(3),
		S:    2 + rng.Intn(6),
		K:    1 + rng.Intn(4),
	}
}

func operandsFor(l ConvLayer, seed uint64) (*Map3, *Kernel4) {
	in := tensor.NewMap3(l.N, l.InSize(), l.InSize())
	in.FillPattern(seed)
	k := tensor.NewKernel4(l.M, l.N, l.K)
	k.FillPattern(seed + 1)
	return in, k
}

func TestAllEnginesAgreeBitExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 10; trial++ {
		l := randomLayer(rng)
		in, k := operandsFor(l, uint64(trial))
		golden := tensor.Conv(in, k)
		engines := make([]Engine, 0, 5)
		for _, a := range Arches() {
			e, err := NewEngine(a, 4, nil)
			if err != nil {
				t.Fatal(err)
			}
			engines = append(engines, e)
		}
		// The row-stationary extension engine computes the same math.
		engines = append(engines, rowstat.New(6, 5))
		for _, e := range engines {
			out, res, err := e.Simulate(l, in, k)
			if err != nil {
				t.Fatalf("%s on %+v: %v", e.Name(), l, err)
			}
			if !out.Equal(golden) {
				t.Errorf("%s on %+v: output differs from golden", e.Name(), l)
			}
			if res.MACs != l.MACs() {
				t.Errorf("%s on %+v: MACs %d != %d", e.Name(), l, res.MACs, l.MACs())
			}
		}
	}
}

func TestEngineInvariants(t *testing.T) {
	// For every workload × architecture × two scales: utilization in
	// (0,1], positive cycles, traffic at least the compulsory working
	// set, FlexFlow leading utilization.
	for _, nw := range Workloads() {
		for _, scale := range []int{8, 16} {
			var ffUtil float64
			var others []float64
			for _, a := range Arches() {
				e, err := NewEngine(a, scale, nw)
				if err != nil {
					t.Fatal(err)
				}
				r, err := Run(e, nw)
				if err != nil {
					t.Fatal(err)
				}
				u := r.Utilization()
				if u <= 0 || u > 1.0+1e-9 {
					t.Errorf("%s/%s@%d: utilization %v out of (0,1]", nw.Name, a, scale, u)
				}
				if r.Cycles() <= 0 {
					t.Errorf("%s/%s@%d: no cycles", nw.Name, a, scale)
				}
				for i, lr := range r.Layers {
					l := nw.ConvLayers()[i]
					if lr.KernelLoads < l.KernelWords() {
						t.Errorf("%s/%s@%d %s: kernel loads %d below working set %d",
							nw.Name, a, scale, l.Name, lr.KernelLoads, l.KernelWords())
					}
					if lr.NeuronStores < l.OutputWords() {
						t.Errorf("%s/%s@%d %s: stores %d below outputs %d",
							nw.Name, a, scale, l.Name, lr.NeuronStores, l.OutputWords())
					}
				}
				if a == FlexFlow {
					ffUtil = u
				} else {
					others = append(others, u)
				}
			}
			// FlexFlow leads at the paper's 16×16 evaluation scale. At
			// other scales a rigid baseline can luck into a perfect
			// fit (e.g. 2D-Mapping on HG at 8×8, whose map sizes are
			// exact multiples of 8) — that is precisely the paper's
			// point about rigidity, so no ordering is asserted there.
			if scale == 16 {
				for _, u := range others {
					if u >= ffUtil {
						t.Errorf("%s@%d: a baseline (%.3f) matches FlexFlow (%.3f)", nw.Name, scale, u, ffUtil)
					}
				}
			}
		}
	}
}

func TestQuickFlexFlowMatchesGolden(t *testing.T) {
	// Property: for any small layer shape and seed, the FlexFlow engine
	// computes the golden convolution bit-exactly.
	f := func(m, n, s, k, seed uint8) bool {
		l := ConvLayer{
			Name: "q",
			M:    1 + int(m%4),
			N:    1 + int(n%3),
			S:    1 + int(s%6),
			K:    1 + int(k%4),
		}
		in, kn := operandsFor(l, uint64(seed))
		e, err := NewEngine(FlexFlow, 4, nil)
		if err != nil {
			return false
		}
		out, _, err := e.Simulate(l, in, kn)
		if err != nil {
			return false
		}
		return out.Equal(tensor.Conv(in, kn))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestQuickUtilizationNeverExceedsOne(t *testing.T) {
	f := func(m, n, s, k uint8, scaleSel uint8) bool {
		l := ConvLayer{
			M: 1 + int(m%40), N: 1 + int(n%40),
			S: 1 + int(s%40), K: 1 + int(k%8),
		}
		scale := []int{4, 8, 16}[scaleSel%3]
		e, err := NewEngine(FlexFlow, scale, nil)
		if err != nil {
			return false
		}
		res := e.Model(l)
		u := res.Utilization()
		return u > 0 && u <= 1.0+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
