package flexflow

import (
	"fmt"

	"flexflow/internal/compiler"
	"flexflow/internal/core"
	"flexflow/internal/nn"
	"flexflow/internal/sim"
	"flexflow/internal/tensor"
)

// ExecResult is the outcome of a functional end-to-end Execute run.
type ExecResult struct {
	// Output is the feature-map stack leaving the last layer.
	Output *Map3
	// Layers holds one measurement per CONV layer, in order.
	Layers []LayerResult
	// PoolCycles is the total time spent in the 1-D pooling unit.
	PoolCycles int64
}

// Cycles returns the total engine cycles (convolution + pooling).
func (r ExecResult) Cycles() int64 {
	var c int64
	for _, l := range r.Layers {
		c += l.Cycles
	}
	return c + r.PoolCycles
}

// RandomKernels builds deterministic pseudo-random kernel sets for
// every CONV layer of a network (one Kernel4 per layer, seeded).
func RandomKernels(nw *Network, seed uint64) []*Kernel4 {
	var out []*Kernel4
	for i, l := range nw.ConvLayers() {
		k := tensor.NewKernel4(l.M, l.N, l.K)
		k.FillPattern(seed + uint64(i)*7919)
		out = append(out, k)
	}
	return out
}

// RandomInput builds a deterministic pseudo-random input stack matching
// the network's input shape.
func RandomInput(nw *Network, seed uint64) *Map3 {
	in := tensor.NewMap3(nw.InputN, nw.InputS, nw.InputS)
	in.FillPattern(seed)
	return in
}

// Execute runs a network end to end through a FlexFlow engine,
// functionally: every CONV layer goes through the cycle-level PE-array
// simulator (configured by the compiled program, i.e. the instruction
// decoder path), every POOL layer through the 1-D pooling unit, and —
// when weight vectors are supplied — every FC layer as the equivalent
// 1×1 CONV problem on the same array. The network must chain exactly
// (Validate); kernels supplies one kernel set per CONV layer and
// fcWeights one row-major Out×In weight slice per FC layer. Without
// fcWeights, execution stops at the first classifier with the tensor
// that feeds it.
func Execute(nw *Network, input *Map3, kernels []*Kernel4, scale int, fcWeights ...[]Word) (ExecResult, error) {
	return ExecuteTraced(nw, input, kernels, scale, nil, fcWeights...)
}

// ExecuteTraced is Execute with a dataflow tracer attached to the
// engine: every MAC issue and output drain is reported as a sim.Event
// (the Fig. 5-style snapshot stream). Tracing is only practical for
// small networks.
func ExecuteTraced(nw *Network, input *Map3, kernels []*Kernel4, scale int, tracer sim.Tracer, fcWeights ...[]Word) (ExecResult, error) {
	if err := nw.Validate(); err != nil {
		return ExecResult{}, fmt.Errorf("flexflow: network does not chain: %w", err)
	}
	if got, want := len(kernels), len(nw.ConvLayers()); got != want {
		return ExecResult{}, fmt.Errorf("flexflow: %d kernel sets for %d CONV layers", got, want)
	}

	engine := core.New(scale)
	engine.Chooser = compiler.Plan(nw, scale).Chooser()
	engine.Tracer = tracer
	pool := core.NewPoolUnit(scale)

	res := ExecResult{}
	cur := input
	convIdx := 0
	fcIdx := 0
	for _, layer := range nw.Layers {
		switch layer.Kind {
		case nn.Conv:
			out, lr, err := engine.Simulate(layer.Conv, cur, kernels[convIdx])
			if err != nil {
				return ExecResult{}, fmt.Errorf("flexflow: layer %s: %w", layer.Conv.Name, err)
			}
			if layer.Conv.ReLU {
				out = tensor.ReLU(out)
			}
			res.Layers = append(res.Layers, lr)
			cur = out
			convIdx++
		case nn.Pool:
			out, err := pool.Apply(cur, layer.Pool.P, layer.Pool.Kind)
			if err != nil {
				return ExecResult{}, fmt.Errorf("flexflow: layer %s: %w", layer.Pool.Name, err)
			}
			cur = out
		case nn.FC:
			// A classifier layer is a matrix–vector product, which the
			// convolutional unit computes as a CONV layer with M = Out,
			// N = In, S = 1, K = 1: the flattened activations become In
			// single-neuron feature maps and the weight matrix an
			// In-deep stack of 1×1 kernels.
			if fcIdx >= len(fcWeights) {
				// No weights supplied: stop at the classifier input,
				// as the paper's engine evaluation does.
				res.Output = cur
				res.PoolCycles = pool.Cycles()
				return res, nil
			}
			conv, flat, kset, err := fcAsConv(layer.FC, cur, fcWeights[fcIdx])
			if err != nil {
				return ExecResult{}, fmt.Errorf("flexflow: layer %s: %w", layer.FC.Name, err)
			}
			out, lr, err := engine.Simulate(conv, flat, kset)
			if err != nil {
				return ExecResult{}, fmt.Errorf("flexflow: layer %s: %w", layer.FC.Name, err)
			}
			res.Layers = append(res.Layers, lr)
			// Back to a 1×1 stack of Out maps for any following layer.
			cur = out
			fcIdx++
		}
	}
	res.Output = cur
	res.PoolCycles = pool.Cycles()
	return res, nil
}

// fcAsConv rewrites a classifier layer over the current activations as
// the equivalent 1×1 CONV problem.
func fcAsConv(fc nn.FCLayer, cur *Map3, weights []Word) (nn.ConvLayer, *Map3, *Kernel4, error) {
	total := cur.Words()
	if fc.In != total {
		return nn.ConvLayer{}, nil, nil, fmt.Errorf("classifier expects %d inputs, activations hold %d", fc.In, total)
	}
	if len(weights) != fc.In*fc.Out {
		return nn.ConvLayer{}, nil, nil, fmt.Errorf("classifier needs %d weights, got %d", fc.In*fc.Out, len(weights))
	}
	flat := tensor.NewMap3(total, 1, 1)
	x := 0
	for n := 0; n < cur.N; n++ {
		for _, v := range cur.Maps[n].Data {
			flat.Set(x, 0, 0, v)
			x++
		}
	}
	kset := tensor.NewKernel4(fc.Out, fc.In, 1)
	for m := 0; m < fc.Out; m++ {
		for n := 0; n < fc.In; n++ {
			kset.Set(m, n, 0, 0, weights[m*fc.In+n])
		}
	}
	conv := nn.ConvLayer{Name: fc.Name, M: fc.Out, N: fc.In, S: 1, K: 1}
	return conv, flat, kset, nil
}

// Reference computes the same network purely in software (golden
// convolution, pooling and fully connected layers), for validating
// Execute.
func Reference(nw *Network, input *Map3, kernels []*Kernel4, fcWeights ...[]Word) (*Map3, error) {
	if err := nw.Validate(); err != nil {
		return nil, err
	}
	cur := input
	convIdx := 0
	fcIdx := 0
	for _, layer := range nw.Layers {
		switch layer.Kind {
		case nn.Conv:
			cur = tensor.ConvStride(cur, kernels[convIdx], layer.Conv.Str())
			if layer.Conv.ReLU {
				cur = tensor.ReLU(cur)
			}
			convIdx++
		case nn.Pool:
			cur = tensor.Pool(cur, layer.Pool.P, layer.Pool.Kind)
		case nn.FC:
			if fcIdx >= len(fcWeights) {
				return cur, nil
			}
			outs := tensor.FullyConnected(cur, fcWeights[fcIdx], layer.FC.Out)
			next := tensor.NewMap3(layer.FC.Out, 1, 1)
			for m, v := range outs {
				next.Set(m, 0, 0, v)
			}
			cur = next
			fcIdx++
		}
	}
	return cur, nil
}

// ExecuteAssembly is the full instruction-decoder path: it parses a
// FlexFlow assembly program (the Compile → Program.Assembly format),
// rebuilds the network topology from the LAYER/POOL directives,
// installs the CONFIG unrolling factors, and executes functionally.
func ExecuteAssembly(asm string, input *Map3, kernels []*Kernel4, scale int) (ExecResult, error) {
	prog, err := compiler.ParseAssembly(asm)
	if err != nil {
		return ExecResult{}, err
	}
	nw := prog.BuildNetwork()
	if err := nw.Validate(); err != nil {
		return ExecResult{}, fmt.Errorf("flexflow: decoded program does not chain: %w", err)
	}
	if got, want := len(kernels), len(prog.Plans); got != want {
		return ExecResult{}, fmt.Errorf("flexflow: %d kernel sets for %d program layers", got, want)
	}

	engine := core.New(scale)
	prog.D = scale
	engine.Chooser = prog.Chooser()
	pool := core.NewPoolUnit(scale)

	res := ExecResult{}
	cur := input
	convIdx := 0
	for _, layer := range nw.Layers {
		switch layer.Kind {
		case nn.Conv:
			out, lr, err := engine.Simulate(layer.Conv, cur, kernels[convIdx])
			if err != nil {
				return ExecResult{}, fmt.Errorf("flexflow: layer %s: %w", layer.Conv.Name, err)
			}
			res.Layers = append(res.Layers, lr)
			cur = out
			convIdx++
		case nn.Pool:
			out, err := pool.Apply(cur, layer.Pool.P, layer.Pool.Kind)
			if err != nil {
				return ExecResult{}, fmt.Errorf("flexflow: layer %s: %w", layer.Pool.Name, err)
			}
			cur = out
		}
	}
	res.Output = cur
	res.PoolCycles = pool.Cycles()
	return res, nil
}

// ExecuteBatch runs several input images through the network on the
// same engine back to back, as the accelerator would process a batch:
// the compiled plan and kernel working sets are reused, only the
// activations stream. Results are returned per image, in order.
func ExecuteBatch(nw *Network, inputs []*Map3, kernels []*Kernel4, scale int, fcWeights ...[]Word) ([]ExecResult, error) {
	out := make([]ExecResult, 0, len(inputs))
	for i, in := range inputs {
		r, err := Execute(nw, in, kernels, scale, fcWeights...)
		if err != nil {
			return nil, fmt.Errorf("flexflow: batch image %d: %w", i, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// BatchSummary aggregates a batch run with kernel residency taken into
// account: the weights stay in the kernel buffer across images, so the
// batch pays their buffer traffic once while activations stream per
// image. AmortizedVolume is the per-image buffer↔PE traffic under that
// residency.
type BatchSummary struct {
	Images          int
	TotalCycles     int64
	PerImageCycles  int64
	TotalVolume     int64 // words, kernels counted once
	AmortizedVolume int64 // words per image
}

// Summarize folds per-image batch results into a BatchSummary.
func Summarize(results []ExecResult) BatchSummary {
	s := BatchSummary{Images: len(results)}
	if len(results) == 0 {
		return s
	}
	var kernelOnce, perImage int64
	for i, r := range results {
		s.TotalCycles += r.Cycles()
		for _, l := range r.Layers {
			if i == 0 {
				kernelOnce += l.KernelLoads
			}
			perImage += l.NeuronLoads + l.NeuronStores
		}
	}
	s.PerImageCycles = s.TotalCycles / int64(len(results))
	s.TotalVolume = kernelOnce + perImage
	s.AmortizedVolume = s.TotalVolume / int64(len(results))
	return s
}
