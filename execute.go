package flexflow

import (
	"context"
	"fmt"

	"flexflow/internal/compiler"
	"flexflow/internal/core"
	"flexflow/internal/fault"
	"flexflow/internal/nn"
	"flexflow/internal/sim"
	"flexflow/internal/tensor"
)

// ExecResult is the outcome of a functional end-to-end Execute run.
type ExecResult struct {
	// Output is the feature-map stack leaving the last layer.
	Output *Map3
	// Layers holds one measurement per CONV layer, in order.
	Layers []LayerResult
	// PoolCycles is the total time spent in the 1-D pooling unit.
	PoolCycles int64

	// FaultsFired and FaultHits report fault-plan activity when a plan
	// was installed via Options: how many plan events matched at least
	// once, and how many individual corruptions were applied. Zero on
	// fault-free runs — and a fired-but-masked fault is what campaigns
	// classify as "masked".
	FaultsFired int
	FaultHits   int64
}

// Cycles returns the total engine cycles (convolution + pooling).
func (r ExecResult) Cycles() int64 {
	var c int64
	for _, l := range r.Layers {
		c += l.Cycles
	}
	return c + r.PoolCycles
}

// RandomKernels builds deterministic pseudo-random kernel sets for
// every CONV layer of a network (one Kernel4 per layer, seeded).
func RandomKernels(nw *Network, seed uint64) []*Kernel4 {
	var out []*Kernel4
	for i, l := range nw.ConvLayers() {
		k := tensor.NewKernel4(l.M, l.N, l.K)
		k.FillPattern(seed + uint64(i)*7919)
		out = append(out, k)
	}
	return out
}

// RandomInput builds a deterministic pseudo-random input stack matching
// the network's input shape.
func RandomInput(nw *Network, seed uint64) *Map3 {
	in := tensor.NewMap3(nw.InputN, nw.InputS, nw.InputS)
	in.FillPattern(seed)
	return in
}

// Execute runs a network end to end through a FlexFlow engine,
// functionally: every CONV layer goes through the cycle-level PE-array
// simulator (configured by the compiled program, i.e. the instruction
// decoder path), every POOL layer through the 1-D pooling unit, and —
// when weight vectors are supplied — every FC layer as the equivalent
// 1×1 CONV problem on the same array. The network must chain exactly
// (Validate); kernels supplies one kernel set per CONV layer and
// fcWeights one row-major Out×In weight slice per FC layer. Without
// fcWeights, execution stops at the first classifier with the tensor
// that feeds it.
func Execute(nw *Network, input *Map3, kernels []*Kernel4, scale int, fcWeights ...[]Word) (ExecResult, error) {
	return ExecuteOpts(nw, input, kernels, scale, Options{}, fcWeights...)
}

// ExecuteTraced is Execute with a dataflow tracer attached to the
// engine: every MAC issue and output drain is reported as a sim.Event
// (the Fig. 5-style snapshot stream). Tracing is only practical for
// small networks.
func ExecuteTraced(nw *Network, input *Map3, kernels []*Kernel4, scale int, tracer sim.Tracer, fcWeights ...[]Word) (ExecResult, error) {
	return ExecuteOpts(nw, input, kernels, scale, Options{Tracer: tracer}, fcWeights...)
}

// Options bundles the robustness controls of an Execute run. The zero
// value is the plain fast path: no cancellation, no cycle bound, no
// faults, no tracing.
type Options struct {
	// Context, when non-nil, cancels the run between schedule passes;
	// the result is an ErrCancelled-wrapped error.
	Context context.Context
	// MaxCycles, when positive, bounds the total engine cycles across
	// all layers; exceeding it returns an ErrBudget-wrapped error.
	MaxCycles int64
	// Plan, when non-nil, arms a fault-injection plan on the engine.
	// DRAM events corrupt (cloned) operand tensors before the run; all
	// other sites fire inside the PE-array dataflow.
	Plan *FaultPlan
	// Tracer, when non-nil, receives every MAC issue and output drain.
	Tracer sim.Tracer
}

// ExecuteOpts is Execute with robustness controls: context
// cancellation, a cycle-budget watchdog, and fault injection. It is
// panic-free: malformed inputs return ErrInvalidConfig and escaped
// internal panics ErrInternal.
func ExecuteOpts(nw *Network, input *Map3, kernels []*Kernel4, scale int, opts Options, fcWeights ...[]Word) (ExecResult, error) {
	var res ExecResult
	err := guard(func() error {
		var err error
		res, err = executeOpts(nw, input, kernels, scale, opts, fcWeights)
		return err
	})
	if err != nil {
		return ExecResult{}, err
	}
	return res, nil
}

func executeOpts(nw *Network, input *Map3, kernels []*Kernel4, scale int, opts Options, fcWeights [][]Word) (ExecResult, error) {
	if scale <= 0 {
		return ExecResult{}, invalid("scale must be positive, got %d", scale)
	}
	if nw == nil {
		return ExecResult{}, invalid("nil network")
	}
	if err := nw.Validate(); err != nil {
		return ExecResult{}, fmt.Errorf("%w: network does not chain: %v", ErrInvalidConfig, err)
	}
	if input == nil {
		return ExecResult{}, invalid("nil input tensor")
	}
	if input.N != nw.InputN || input.H != nw.InputS || input.W != nw.InputS {
		return ExecResult{}, invalid("input is %d@%dx%d, network %s expects %d@%dx%d",
			input.N, input.H, input.W, nw.Name, nw.InputN, nw.InputS, nw.InputS)
	}
	if got, want := len(kernels), len(nw.ConvLayers()); got != want {
		return ExecResult{}, invalid("%d kernel sets for %d CONV layers", got, want)
	}
	for i, k := range kernels {
		if k == nil {
			return ExecResult{}, invalid("kernel set %d is nil", i)
		}
	}

	engine := core.New(scale)
	engine.Chooser = compiler.Plan(nw, scale).Chooser()
	engine.Tracer = opts.Tracer

	var inj *fault.Injector
	if opts.Plan != nil {
		inj = fault.NewInjector(opts.Plan)
		engine.Injector = inj
		input, kernels = applyDRAMFaults(inj, opts.Plan, input, kernels)
	}
	if opts.Context != nil || opts.MaxCycles > 0 {
		engine.Watchdog = sim.NewWatchdog(opts.Context, opts.MaxCycles)
	}
	pool := core.NewPoolUnit(scale)

	res := ExecResult{}
	cur := input
	convIdx := 0
	fcIdx := 0
	for _, layer := range nw.Layers {
		switch layer.Kind {
		case nn.Conv:
			out, lr, err := engine.Simulate(layer.Conv, cur, kernels[convIdx])
			if err != nil {
				return ExecResult{}, layerErr(inj, layer.Conv.Name, err)
			}
			if layer.Conv.ReLU {
				out = tensor.ReLU(out)
			}
			res.Layers = append(res.Layers, lr)
			cur = out
			convIdx++
		case nn.Pool:
			out, err := pool.Apply(cur, layer.Pool.P, layer.Pool.Kind)
			if err != nil {
				return ExecResult{}, fmt.Errorf("flexflow: layer %s: %w", layer.Pool.Name, err)
			}
			cur = out
		case nn.FC:
			// A classifier layer is a matrix–vector product, which the
			// convolutional unit computes as a CONV layer with M = Out,
			// N = In, S = 1, K = 1: the flattened activations become In
			// single-neuron feature maps and the weight matrix an
			// In-deep stack of 1×1 kernels.
			if fcIdx >= len(fcWeights) {
				// No weights supplied: stop at the classifier input,
				// as the paper's engine evaluation does.
				res.Output = cur
				res.PoolCycles = pool.Cycles()
				res.FaultsFired = inj.Fired()
				res.FaultHits = inj.Hits()
				return res, nil
			}
			conv, flat, kset, err := fcAsConv(layer.FC, cur, fcWeights[fcIdx])
			if err != nil {
				return ExecResult{}, fmt.Errorf("flexflow: layer %s: %w", layer.FC.Name, err)
			}
			out, lr, err := engine.Simulate(conv, flat, kset)
			if err != nil {
				return ExecResult{}, layerErr(inj, layer.FC.Name, err)
			}
			res.Layers = append(res.Layers, lr)
			// Back to a 1×1 stack of Out maps for any following layer.
			cur = out
			fcIdx++
		}
	}
	res.Output = cur
	res.PoolCycles = pool.Cycles()
	res.FaultsFired = inj.Fired()
	res.FaultHits = inj.Hits()
	return res, nil
}

// layerErr attributes a mid-simulation failure: once an armed injector
// has fired, the failure is additionally marked ErrFaulted so callers
// can tell an injected-fault crash from an ordinary one (both wrapped
// errors stay visible to errors.Is).
func layerErr(inj *fault.Injector, name string, err error) error {
	if inj.Fired() > 0 {
		return fmt.Errorf("flexflow: layer %s: %w: %w", name, fault.ErrFaulted, err)
	}
	return fmt.Errorf("flexflow: layer %s: %w", name, err)
}

// applyDRAMFaults applies the plan's external-memory events to clones
// of the operand tensors (the caller's tensors are never touched),
// returning the possibly corrupted working set. Neuron events address
// the flattened input image; kernel events the concatenation of all
// layers' kernel sets.
func applyDRAMFaults(inj *fault.Injector, p *FaultPlan, input *Map3, kernels []*Kernel4) (*Map3, []*Kernel4) {
	if len(p.EventsAt(fault.SiteDRAMNeuron)) > 0 {
		input = input.Clone()
		flat := make([]Word, 0, input.Words())
		for _, m := range input.Maps {
			flat = append(flat, m.Data...)
		}
		inj.CorruptMemory(fault.SiteDRAMNeuron, flat)
		x := 0
		for _, m := range input.Maps {
			copy(m.Data, flat[x:x+len(m.Data)])
			x += len(m.Data)
		}
	}
	if len(p.EventsAt(fault.SiteDRAMKernel)) > 0 {
		cloned := make([]*Kernel4, len(kernels))
		var total int
		for i, k := range kernels {
			cloned[i] = k.Clone()
			total += k.Words()
		}
		flat := make([]Word, 0, total)
		for _, k := range cloned {
			flat = append(flat, k.Data...)
		}
		inj.CorruptMemory(fault.SiteDRAMKernel, flat)
		x := 0
		for _, k := range cloned {
			copy(k.Data, flat[x:x+len(k.Data)])
			x += len(k.Data)
		}
		kernels = cloned
	}
	return input, kernels
}

// fcAsConv rewrites a classifier layer over the current activations as
// the equivalent 1×1 CONV problem.
func fcAsConv(fc nn.FCLayer, cur *Map3, weights []Word) (nn.ConvLayer, *Map3, *Kernel4, error) {
	total := cur.Words()
	if fc.In != total {
		return nn.ConvLayer{}, nil, nil, invalid("classifier expects %d inputs, activations hold %d", fc.In, total)
	}
	if len(weights) != fc.In*fc.Out {
		return nn.ConvLayer{}, nil, nil, invalid("classifier needs %d weights, got %d", fc.In*fc.Out, len(weights))
	}
	flat := tensor.NewMap3(total, 1, 1)
	x := 0
	for n := 0; n < cur.N; n++ {
		for _, v := range cur.Maps[n].Data {
			flat.Set(x, 0, 0, v)
			x++
		}
	}
	kset := tensor.NewKernel4(fc.Out, fc.In, 1)
	for m := 0; m < fc.Out; m++ {
		for n := 0; n < fc.In; n++ {
			kset.Set(m, n, 0, 0, weights[m*fc.In+n])
		}
	}
	conv := nn.ConvLayer{Name: fc.Name, M: fc.Out, N: fc.In, S: 1, K: 1}
	return conv, flat, kset, nil
}

// Reference computes the same network purely in software (golden
// convolution, pooling and fully connected layers), for validating
// Execute.
func Reference(nw *Network, input *Map3, kernels []*Kernel4, fcWeights ...[]Word) (*Map3, error) {
	var out *Map3
	err := guard(func() error {
		var err error
		out, err = reference(nw, input, kernels, fcWeights)
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func reference(nw *Network, input *Map3, kernels []*Kernel4, fcWeights [][]Word) (*Map3, error) {
	if nw == nil {
		return nil, invalid("nil network")
	}
	if err := nw.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidConfig, err)
	}
	if input == nil {
		return nil, invalid("nil input tensor")
	}
	if got, want := len(kernels), len(nw.ConvLayers()); got != want {
		return nil, invalid("%d kernel sets for %d CONV layers", got, want)
	}
	cur := input
	convIdx := 0
	fcIdx := 0
	for _, layer := range nw.Layers {
		switch layer.Kind {
		case nn.Conv:
			cur = tensor.ConvStride(cur, kernels[convIdx], layer.Conv.Str())
			if layer.Conv.ReLU {
				cur = tensor.ReLU(cur)
			}
			convIdx++
		case nn.Pool:
			cur = tensor.Pool(cur, layer.Pool.P, layer.Pool.Kind)
		case nn.FC:
			if fcIdx >= len(fcWeights) {
				return cur, nil
			}
			outs := tensor.FullyConnected(cur, fcWeights[fcIdx], layer.FC.Out)
			next := tensor.NewMap3(layer.FC.Out, 1, 1)
			for m, v := range outs {
				next.Set(m, 0, 0, v)
			}
			cur = next
			fcIdx++
		}
	}
	return cur, nil
}

// ExecuteAssembly is the full instruction-decoder path: it parses a
// FlexFlow assembly program (the Compile → Program.Assembly format),
// rebuilds the network topology from the LAYER/POOL directives,
// installs the CONFIG unrolling factors, and executes functionally.
func ExecuteAssembly(asm string, input *Map3, kernels []*Kernel4, scale int) (ExecResult, error) {
	var res ExecResult
	err := guard(func() error {
		var err error
		res, err = executeAssembly(asm, input, kernels, scale)
		return err
	})
	if err != nil {
		return ExecResult{}, err
	}
	return res, nil
}

func executeAssembly(asm string, input *Map3, kernels []*Kernel4, scale int) (ExecResult, error) {
	if scale <= 0 {
		return ExecResult{}, invalid("scale must be positive, got %d", scale)
	}
	if input == nil {
		return ExecResult{}, invalid("nil input tensor")
	}
	prog, err := compiler.ParseAssembly(asm)
	if err != nil {
		return ExecResult{}, fmt.Errorf("%w: %v", ErrInvalidConfig, err)
	}
	nw := prog.BuildNetwork()
	if err := nw.Validate(); err != nil {
		return ExecResult{}, fmt.Errorf("%w: decoded program does not chain: %v", ErrInvalidConfig, err)
	}
	if got, want := len(kernels), len(prog.Plans); got != want {
		return ExecResult{}, invalid("%d kernel sets for %d program layers", got, want)
	}
	for i, k := range kernels {
		if k == nil {
			return ExecResult{}, invalid("kernel set %d is nil", i)
		}
	}

	engine := core.New(scale)
	prog.D = scale
	engine.Chooser = prog.Chooser()
	pool := core.NewPoolUnit(scale)

	res := ExecResult{}
	cur := input
	convIdx := 0
	for _, layer := range nw.Layers {
		switch layer.Kind {
		case nn.Conv:
			out, lr, err := engine.Simulate(layer.Conv, cur, kernels[convIdx])
			if err != nil {
				return ExecResult{}, fmt.Errorf("flexflow: layer %s: %w", layer.Conv.Name, err)
			}
			res.Layers = append(res.Layers, lr)
			cur = out
			convIdx++
		case nn.Pool:
			out, err := pool.Apply(cur, layer.Pool.P, layer.Pool.Kind)
			if err != nil {
				return ExecResult{}, fmt.Errorf("flexflow: layer %s: %w", layer.Pool.Name, err)
			}
			cur = out
		}
	}
	res.Output = cur
	res.PoolCycles = pool.Cycles()
	return res, nil
}

// ExecuteBatch runs several input images through the network on the
// same engine back to back, as the accelerator would process a batch:
// the compiled plan and kernel working sets are reused, only the
// activations stream. Results are returned per image, in order.
func ExecuteBatch(nw *Network, inputs []*Map3, kernels []*Kernel4, scale int, fcWeights ...[]Word) ([]ExecResult, error) {
	out := make([]ExecResult, 0, len(inputs))
	for i, in := range inputs {
		r, err := Execute(nw, in, kernels, scale, fcWeights...)
		if err != nil {
			return nil, fmt.Errorf("flexflow: batch image %d: %w", i, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// BatchSummary aggregates a batch run with kernel residency taken into
// account: the weights stay in the kernel buffer across images, so the
// batch pays their buffer traffic once while activations stream per
// image. AmortizedVolume is the per-image buffer↔PE traffic under that
// residency.
type BatchSummary struct {
	Images          int
	TotalCycles     int64
	PerImageCycles  int64
	TotalVolume     int64 // words, kernels counted once
	AmortizedVolume int64 // words per image
}

// Summarize folds per-image batch results into a BatchSummary.
func Summarize(results []ExecResult) BatchSummary {
	s := BatchSummary{Images: len(results)}
	if len(results) == 0 {
		return s
	}
	var kernelOnce, perImage int64
	for i, r := range results {
		s.TotalCycles += r.Cycles()
		for _, l := range r.Layers {
			if i == 0 {
				kernelOnce += l.KernelLoads
			}
			perImage += l.NeuronLoads + l.NeuronStores
		}
	}
	s.PerImageCycles = s.TotalCycles / int64(len(results))
	s.TotalVolume = kernelOnce + perImage
	s.AmortizedVolume = s.TotalVolume / int64(len(results))
	return s
}
