package flexflow

import (
	"context"
	"fmt"

	"flexflow/internal/arch"
	"flexflow/internal/compiler"
	"flexflow/internal/core"
	"flexflow/internal/fault"
	"flexflow/internal/nn"
	"flexflow/internal/pipeline"
	"flexflow/internal/sim"
	"flexflow/internal/tensor"
)

// ExecResult is the outcome of a functional end-to-end Execute run.
type ExecResult struct {
	// Output is the feature-map stack leaving the last layer.
	Output *Map3
	// Layers holds one measurement per CONV layer, in order.
	Layers []LayerResult
	// PoolCycles is the total time spent in the 1-D pooling unit.
	PoolCycles int64

	// FaultsFired and FaultHits report fault-plan activity when a plan
	// was installed via Options: how many plan events matched at least
	// once, and how many individual corruptions were applied. Zero on
	// fault-free runs — and a fired-but-masked fault is what campaigns
	// classify as "masked".
	FaultsFired int
	FaultHits   int64
}

// Cycles returns the total engine cycles (convolution + pooling).
func (r ExecResult) Cycles() int64 {
	var c int64
	for _, l := range r.Layers {
		c += l.Cycles
	}
	return c + r.PoolCycles
}

// RandomKernels builds deterministic pseudo-random kernel sets for
// every CONV layer of a network (one Kernel4 per layer, seeded).
func RandomKernels(nw *Network, seed uint64) []*Kernel4 {
	var out []*Kernel4
	for i, l := range nw.ConvLayers() {
		k := tensor.NewKernel4(l.M, l.N, l.K)
		k.FillPattern(seed + uint64(i)*7919)
		out = append(out, k)
	}
	return out
}

// RandomInput builds a deterministic pseudo-random input stack matching
// the network's input shape.
func RandomInput(nw *Network, seed uint64) *Map3 {
	in := tensor.NewMap3(nw.InputN, nw.InputS, nw.InputS)
	in.FillPattern(seed)
	return in
}

// Execute runs a network end to end through a FlexFlow engine,
// functionally: every CONV layer goes through the cycle-level PE-array
// simulator (configured by the compiled program, i.e. the instruction
// decoder path), every POOL layer through the 1-D pooling unit, and —
// when weight vectors are supplied — every FC layer as the equivalent
// 1×1 CONV problem on the same array. The network must chain exactly
// (Validate); kernels supplies one kernel set per CONV layer and
// fcWeights one row-major Out×In weight slice per FC layer. Without
// fcWeights, execution stops at the first classifier with the tensor
// that feeds it.
func Execute(nw *Network, input *Map3, kernels []*Kernel4, scale int, fcWeights ...[]Word) (ExecResult, error) {
	return ExecuteOpts(nw, input, kernels, scale, Options{}, fcWeights...)
}

// ExecuteTraced is Execute with a dataflow tracer attached to the
// engine: every MAC issue and output drain is reported as a sim.Event
// (the Fig. 5-style snapshot stream). Tracing is only practical for
// small networks.
func ExecuteTraced(nw *Network, input *Map3, kernels []*Kernel4, scale int, tracer sim.Tracer, fcWeights ...[]Word) (ExecResult, error) {
	return ExecuteOpts(nw, input, kernels, scale, Options{Tracer: tracer}, fcWeights...)
}

// Mode selects how an Execute run answers: by cycle-level simulation
// of the PE-array dataflow (the default), or analytically from the
// closed-form cycle/energy models.
type Mode string

const (
	// ModeSimulate is the default: every CONV/FC layer runs through the
	// engine's cycle-level simulator and produces real feature maps.
	ModeSimulate Mode = "simulate"
	// ModeAnalytic answers from the closed-form models: per-layer
	// counters and pool cycles are bit-identical to the simulated run
	// (the cross-engine parity test pins this), but no feature maps are
	// computed (ExecResult.Output is nil), operand tensors are optional,
	// and fault plans never fire. Orders of magnitude faster.
	ModeAnalytic Mode = "analytic"
)

// checkMode validates a Mode ("" means ModeSimulate).
func checkMode(m Mode) error {
	switch m {
	case "", ModeSimulate, ModeAnalytic:
		return nil
	}
	return invalid("unknown mode %q", string(m))
}

// LayerCache is the bounded, shape-keyed memo of analytic layer
// results. One cache may be shared across runs, engines and goroutines
// (it is safe for concurrent use); eviction is deterministic — the
// lexicographically smallest keys survive — so cache contents are a
// pure function of the layers offered, at any worker count. Create one
// with NewLayerCache and pass it through Options.Cache.
type LayerCache = pipeline.Cache

// LayerCacheStats is a point-in-time snapshot of a LayerCache.
type LayerCacheStats = pipeline.CacheStats

// NewLayerCache returns a cache bounded to capacity analytic layer
// entries; capacity < 1 returns nil, which disables memoization.
func NewLayerCache(capacity int) *LayerCache { return pipeline.NewCache(capacity) }

// Options bundles the robustness controls of an Execute run. The zero
// value is the plain fast path: no cancellation, no cycle bound, no
// faults, no tracing, serial-equivalent scheduling.
type Options struct {
	// Context, when non-nil, cancels the run between schedule passes;
	// the result is an ErrCancelled-wrapped error.
	Context context.Context
	// MaxCycles, when positive, bounds the total engine cycles across
	// all layers; exceeding it returns an ErrBudget-wrapped error.
	MaxCycles int64
	// Plan, when non-nil, arms a fault-injection plan on the engine.
	// DRAM events corrupt (cloned) operand tensors before the run; all
	// other sites fire inside the PE-array dataflow.
	Plan *FaultPlan
	// Tracer, when non-nil, receives every MAC issue and output drain.
	Tracer sim.Tracer
	// Workers sets the scheduler pool width for the run's independent
	// units (batch images in ExecuteBatchOpts, layers in RunOpts):
	// 0 means GOMAXPROCS, 1 serial. Results are bit-identical at any
	// setting.
	Workers int
	// Mode selects cycle-level simulation (default) or the analytic
	// fast path; see ModeAnalytic for the contract.
	Mode Mode
	// Cache, when non-nil, memoizes analytic layer results (RunOpts
	// layers and ModeAnalytic runs; simulation never consults it).
	Cache *LayerCache
}

// ExecuteOpts is Execute with robustness controls: context
// cancellation, a cycle-budget watchdog, and fault injection. It is
// panic-free: malformed inputs return ErrInvalidConfig and escaped
// internal panics ErrInternal.
func ExecuteOpts(nw *Network, input *Map3, kernels []*Kernel4, scale int, opts Options, fcWeights ...[]Word) (ExecResult, error) {
	var res ExecResult
	err := guard(func() error {
		var err error
		res, err = executeOpts(nw, input, kernels, scale, opts, fcWeights)
		return err
	})
	if err != nil {
		return ExecResult{}, err
	}
	return res, nil
}

func executeOpts(nw *Network, input *Map3, kernels []*Kernel4, scale int, opts Options, fcWeights [][]Word) (ExecResult, error) {
	if scale <= 0 {
		return ExecResult{}, invalid("scale must be positive, got %d", scale)
	}
	if err := checkMode(opts.Mode); err != nil {
		return ExecResult{}, err
	}
	job := pipeline.NetworkJob{Network: nw, Input: input, Kernels: kernels, FCWeights: fcWeights}
	// Validate before planning: a malformed job must come back as
	// ErrInvalidConfig, never reach the compiler. The analytic mode
	// relaxes the operand requirements (tensors are optional there).
	if err := validateJob(job, opts.Mode); err != nil {
		return ExecResult{}, fromPipeline(err)
	}

	engine := core.New(scale)
	engine.Chooser = compiler.Plan(nw, scale).Chooser()

	out, err := pipeline.Exec(engine, core.NewPoolUnit(scale), job, pipelineOptions(opts))
	if err != nil {
		return ExecResult{}, fromPipeline(err)
	}
	return fromOutcome(out), nil
}

// validateJob runs the mode-appropriate validation stage.
func validateJob(job pipeline.NetworkJob, mode Mode) error {
	if mode == ModeAnalytic {
		return job.ValidateAnalytic()
	}
	return job.Validate()
}

// pipelineOptions translates the public run controls into the pipeline
// form, arming a fresh injector when a fault plan is installed.
func pipelineOptions(opts Options) pipeline.Options {
	po := pipeline.Options{
		Context:   opts.Context,
		MaxCycles: opts.MaxCycles,
		Tracer:    opts.Tracer,
		Workers:   opts.Workers,
		Analytic:  opts.Mode == ModeAnalytic,
		Cache:     opts.Cache,
	}
	if opts.Plan != nil {
		po.Injector = fault.NewInjector(opts.Plan)
	}
	return po
}

// fromOutcome converts a pipeline outcome into the public result type.
func fromOutcome(o pipeline.ExecOutcome) ExecResult {
	return ExecResult{
		Output:      o.Output,
		Layers:      o.Layers,
		PoolCycles:  o.PoolCycles,
		FaultsFired: o.FaultsFired,
		FaultHits:   o.FaultHits,
	}
}

// Reference computes the same network purely in software (golden
// convolution, pooling and fully connected layers), for validating
// Execute.
func Reference(nw *Network, input *Map3, kernels []*Kernel4, fcWeights ...[]Word) (*Map3, error) {
	var out *Map3
	err := guard(func() error {
		var err error
		out, err = reference(nw, input, kernels, fcWeights)
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func reference(nw *Network, input *Map3, kernels []*Kernel4, fcWeights [][]Word) (*Map3, error) {
	if nw == nil {
		return nil, invalid("nil network")
	}
	if err := nw.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidConfig, err)
	}
	if input == nil {
		return nil, invalid("nil input tensor")
	}
	if got, want := len(kernels), len(nw.ConvLayers()); got != want {
		return nil, invalid("%d kernel sets for %d CONV layers", got, want)
	}
	cur := input
	convIdx := 0
	fcIdx := 0
	for _, layer := range nw.Layers {
		switch layer.Kind {
		case nn.Conv:
			cur = tensor.ConvStride(cur, kernels[convIdx], layer.Conv.Str())
			if layer.Conv.ReLU {
				cur = tensor.ReLU(cur)
			}
			convIdx++
		case nn.Pool:
			cur = tensor.Pool(cur, layer.Pool.P, layer.Pool.Kind)
		case nn.FC:
			if fcIdx >= len(fcWeights) {
				return cur, nil
			}
			outs := tensor.FullyConnected(cur, fcWeights[fcIdx], layer.FC.Out)
			next := tensor.NewMap3(layer.FC.Out, 1, 1)
			for m, v := range outs {
				next.Set(m, 0, 0, v)
			}
			cur = next
			fcIdx++
		}
	}
	return cur, nil
}

// ExecuteAssembly is the full instruction-decoder path: it parses a
// FlexFlow assembly program (the Compile → Program.Assembly format),
// rebuilds the network topology from the LAYER/POOL directives,
// installs the CONFIG unrolling factors, and executes functionally.
func ExecuteAssembly(asm string, input *Map3, kernels []*Kernel4, scale int) (ExecResult, error) {
	var res ExecResult
	err := guard(func() error {
		var err error
		res, err = executeAssembly(asm, input, kernels, scale)
		return err
	})
	if err != nil {
		return ExecResult{}, err
	}
	return res, nil
}

func executeAssembly(asm string, input *Map3, kernels []*Kernel4, scale int) (ExecResult, error) {
	if scale <= 0 {
		return ExecResult{}, invalid("scale must be positive, got %d", scale)
	}
	if input == nil {
		return ExecResult{}, invalid("nil input tensor")
	}
	prog, err := compiler.ParseAssembly(asm)
	if err != nil {
		return ExecResult{}, fmt.Errorf("%w: %v", ErrInvalidConfig, err)
	}
	nw := prog.BuildNetwork()
	if err := nw.Validate(); err != nil {
		return ExecResult{}, fmt.Errorf("%w: decoded program does not chain: %v", ErrInvalidConfig, err)
	}
	if got, want := len(kernels), len(prog.Plans); got != want {
		return ExecResult{}, invalid("%d kernel sets for %d program layers", got, want)
	}
	for i, k := range kernels {
		if k == nil {
			return ExecResult{}, invalid("kernel set %d is nil", i)
		}
	}

	engine := core.New(scale)
	prog.D = scale
	engine.Chooser = prog.Chooser()

	job := pipeline.NetworkJob{Network: nw, Input: input, Kernels: kernels}
	out, err := pipeline.Exec(engine, core.NewPoolUnit(scale), job, pipeline.Options{})
	if err != nil {
		return ExecResult{}, fromPipeline(err)
	}
	return fromOutcome(out), nil
}

// ExecuteBatch runs several input images through the network on the
// same compiled plan back to back, as the accelerator would process a
// batch: the plan and kernel working sets are reused, only the
// activations stream. Results are returned per image, in order.
func ExecuteBatch(nw *Network, inputs []*Map3, kernels []*Kernel4, scale int, fcWeights ...[]Word) ([]ExecResult, error) {
	return ExecuteBatchOpts(nw, inputs, kernels, scale, Options{}, fcWeights...)
}

// ExecuteBatchOpts is ExecuteBatch with execution controls. Images are
// independent, so Options.Workers spreads them across the scheduler —
// each on its own engine instance sharing the one compiled plan — and
// the merged results are bit-identical to the serial run. A fault Plan
// arms a fresh injector per image (each image sees the same plan, as a
// batch replay campaign would).
func ExecuteBatchOpts(nw *Network, inputs []*Map3, kernels []*Kernel4, scale int, opts Options, fcWeights ...[]Word) ([]ExecResult, error) {
	var out []ExecResult
	err := guard(func() error {
		if scale <= 0 {
			return invalid("scale must be positive, got %d", scale)
		}
		if err := checkMode(opts.Mode); err != nil {
			return err
		}
		jobs := make([]pipeline.NetworkJob, len(inputs))
		for i, in := range inputs {
			jobs[i] = pipeline.NetworkJob{Network: nw, Input: in, Kernels: kernels, FCWeights: fcWeights}
			// Validate up front so a malformed image fails as
			// ErrInvalidConfig before the compiler plans anything, and the
			// failing index does not depend on scheduling.
			if err := validateJob(jobs[i], opts.Mode); err != nil {
				return &BatchError{Index: i, Err: fromPipeline(err)}
			}
		}
		// One compiled plan for the whole batch; the chooser is read-only
		// at run time, so every image's engine can share it.
		chooser := compiler.Plan(nw, scale).Chooser()
		outcomes, err := pipeline.ExecBatch(opts.Workers, jobs, func(i int) (arch.Engine, pipeline.Pooler, pipeline.Options) {
			engine := core.New(scale)
			engine.Chooser = chooser
			return engine, core.NewPoolUnit(scale), pipelineOptions(opts)
		})
		if err != nil {
			return fromPipeline(err)
		}
		out = make([]ExecResult, len(outcomes))
		for i, o := range outcomes {
			out[i] = fromOutcome(o)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// BatchSummary aggregates a batch run with kernel residency taken into
// account: the weights stay in the kernel buffer across images, so the
// batch pays their buffer traffic once while activations stream per
// image. AmortizedVolume is the per-image buffer↔PE traffic under that
// residency.
type BatchSummary struct {
	Images          int
	TotalCycles     int64
	PerImageCycles  int64
	TotalVolume     int64 // words, kernels counted once
	AmortizedVolume int64 // words per image
}

// Summarize folds per-image batch results into a BatchSummary.
func Summarize(results []ExecResult) BatchSummary {
	s := BatchSummary{Images: len(results)}
	if len(results) == 0 {
		return s
	}
	var kernelOnce, perImage int64
	for i, r := range results {
		s.TotalCycles += r.Cycles()
		for _, l := range r.Layers {
			if i == 0 {
				kernelOnce += l.KernelLoads
			}
			perImage += l.NeuronLoads + l.NeuronStores
		}
	}
	s.PerImageCycles = s.TotalCycles / int64(len(results))
	s.TotalVolume = kernelOnce + perImage
	s.AmortizedVolume = s.TotalVolume / int64(len(results))
	return s
}
