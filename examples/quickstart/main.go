// Quickstart: run one CONV layer on all four accelerator
// architectures, functionally, and compare the measured dataflow.
//
//	go run ./examples/quickstart
//
// It builds the paper's Section 4 running-example layer, simulates it
// cycle by cycle through each architecture's PE array, checks every
// output against the golden software convolution, and prints the
// cycles/utilization/traffic each dataflow needed for the exact same
// arithmetic.
package main

import (
	"fmt"
	"log"

	"flexflow"
	"flexflow/internal/metrics"
	"flexflow/internal/tensor"
)

func main() {
	log.SetFlags(0)

	// The paper's running example: C1 with M=2 output maps, N=1 input
	// map, 10×10 outputs, 4×4 kernels.
	layer := flexflow.ConvLayer{Name: "C1", M: 2, N: 1, S: 10, K: 4}

	// Deterministic synthetic operands (16-bit fixed point, Q7.8).
	in := tensor.NewMap3(layer.N, layer.InSize(), layer.InSize())
	in.FillPattern(42)
	kernels := tensor.NewKernel4(layer.M, layer.N, layer.K)
	kernels.FillPattern(43)

	// The golden result every engine must reproduce bit-exactly.
	golden := tensor.Conv(in, kernels)

	tb := metrics.NewTable(
		fmt.Sprintf("layer %s on a 4x4-scale engine (all outputs checked against golden conv)", layer),
		"Architecture", "Cycles", "Utilization", "Buf->PE words", "Inter-PE moves", "Correct")
	for _, a := range flexflow.Arches() {
		engine, err := flexflow.NewEngine(a, 4, nil)
		if err != nil {
			log.Fatal(err)
		}
		out, res, err := engine.Simulate(layer, in, kernels)
		if err != nil {
			log.Fatal(err)
		}
		tb.Add(engine.Name(),
			fmt.Sprintf("%d", res.Cycles),
			metrics.Pct(res.Utilization()),
			fmt.Sprintf("%d", res.DataVolume()),
			fmt.Sprintf("%d", res.InterPEMoves),
			fmt.Sprintf("%v", out.Equal(golden)))
	}
	fmt.Print(tb)
	fmt.Println("\nSame arithmetic, four dataflows: the cycle and traffic columns")
	fmt.Println("are the architectural story the paper tells.")
}
