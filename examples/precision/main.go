// Precision: why 16-bit fixed point is enough — the numeric
// justification behind the paper's §6.1.1 datatype choice (and every
// DianNao-era accelerator).
//
//	go run ./examples/precision
//
// Runs LeNet-5's CONV/POOL pipeline twice over the same synthetic
// data: once in float64 software and once through the Q7.8 fixed-point
// engine, then reports the quantization error layer by layer.
package main

import (
	"fmt"
	"log"
	"math"

	"flexflow"
	"flexflow/internal/metrics"
	"flexflow/internal/nn"
	"flexflow/internal/tensor"
)

// floatConv is the float64 reference convolution.
func floatConv(in [][][]float64, k [][][][]float64) [][][]float64 {
	n := len(in)
	h := len(in[0])
	m := len(k)
	kk := len(k[0][0])
	outH := h - kk + 1
	out := make([][][]float64, m)
	for mi := 0; mi < m; mi++ {
		out[mi] = make([][]float64, outH)
		for r := 0; r < outH; r++ {
			out[mi][r] = make([]float64, outH)
			for c := 0; c < outH; c++ {
				sum := 0.0
				for ni := 0; ni < n; ni++ {
					for i := 0; i < kk; i++ {
						for j := 0; j < kk; j++ {
							sum += in[ni][r+i][c+j] * k[mi][ni][i][j]
						}
					}
				}
				out[mi][r][c] = sum
			}
		}
	}
	return out
}

func floatPool(in [][][]float64, p int) [][][]float64 {
	n := len(in)
	outH := len(in[0]) / p
	out := make([][][]float64, n)
	for ni := 0; ni < n; ni++ {
		out[ni] = make([][]float64, outH)
		for r := 0; r < outH; r++ {
			out[ni][r] = make([]float64, outH)
			for c := 0; c < outH; c++ {
				best := math.Inf(-1)
				for i := 0; i < p; i++ {
					for j := 0; j < p; j++ {
						if v := in[ni][r*p+i][c*p+j]; v > best {
							best = v
						}
					}
				}
				out[ni][r][c] = best
			}
		}
	}
	return out
}

func toFloat(m *flexflow.Map3) [][][]float64 {
	out := make([][][]float64, m.N)
	for n := 0; n < m.N; n++ {
		out[n] = make([][]float64, m.H)
		for r := 0; r < m.H; r++ {
			out[n][r] = make([]float64, m.W)
			for c := 0; c < m.W; c++ {
				out[n][r][c] = m.At(n, r, c).Float()
			}
		}
	}
	return out
}

func kernelFloat(k *flexflow.Kernel4) [][][][]float64 {
	out := make([][][][]float64, k.M)
	for m := 0; m < k.M; m++ {
		out[m] = make([][][]float64, k.N)
		for n := 0; n < k.N; n++ {
			out[m][n] = make([][]float64, k.K)
			for i := 0; i < k.K; i++ {
				out[m][n][i] = make([]float64, k.K)
				for j := 0; j < k.K; j++ {
					out[m][n][i][j] = k.At(m, n, i, j).Float()
				}
			}
		}
	}
	return out
}

func errorStats(fx *flexflow.Map3, fl [][][]float64) (maxAbs, rms float64) {
	var sum float64
	var count int
	for n := 0; n < fx.N; n++ {
		for r := 0; r < fx.H; r++ {
			for c := 0; c < fx.W; c++ {
				d := fx.At(n, r, c).Float() - fl[n][r][c]
				if a := math.Abs(d); a > maxAbs {
					maxAbs = a
				}
				sum += d * d
				count++
			}
		}
	}
	return maxAbs, math.Sqrt(sum / float64(count))
}

func main() {
	log.SetFlags(0)
	nw, err := flexflow.Workload("LeNet-5")
	if err != nil {
		log.Fatal(err)
	}
	input := flexflow.RandomInput(nw, 13)
	kernels := flexflow.RandomKernels(nw, 14)
	// Scale kernels down so deep accumulations stay well inside Q7.8
	// (as trained nets do): divide every synapse by 8.
	for _, k := range kernels {
		for i := range k.Data {
			k.Data[i] /= 8
		}
	}

	fxCur := input
	flCur := toFloat(input)
	convIdx := 0
	tb := metrics.NewTable("Q7.8 engine vs float64 software, LeNet-5",
		"Layer", "Output words", "Max |err|", "RMS err", "ULPs (max)")
	for _, layer := range nw.Layers {
		switch layer.Kind {
		case nn.Conv:
			engine, _ := flexflow.NewEngine(flexflow.FlexFlow, 16, nw)
			sim := engine.(interface {
				Simulate(nn.ConvLayer, *flexflow.Map3, *flexflow.Kernel4) (*flexflow.Map3, flexflow.LayerResult, error)
			})
			out, _, err := sim.Simulate(layer.Conv, fxCur, kernels[convIdx])
			if err != nil {
				log.Fatal(err)
			}
			flCur = floatConv(flCur, kernelFloat(kernels[convIdx]))
			fxCur = out
			maxAbs, rms := errorStats(fxCur, flCur)
			tb.Add(layer.Conv.Name,
				fmt.Sprintf("%d", fxCur.Words()),
				fmt.Sprintf("%.5f", maxAbs),
				fmt.Sprintf("%.5f", rms),
				fmt.Sprintf("%.1f", maxAbs*256))
			convIdx++
		case nn.Pool:
			out, _ := tensor.Pool(fxCur, layer.Pool.P, layer.Pool.Kind), 0
			fxCur = out
			flCur = floatPool(flCur, layer.Pool.P)
		}
	}
	fmt.Println(tb)
	fmt.Println("One ULP of Q7.8 is 1/256 ≈ 0.0039: the fixed-point engine stays")
	fmt.Println("within a few ULPs of float64 through the whole pipeline, which is")
	fmt.Println("why the paper's 16-bit datapath loses no accuracy that matters.")
}
