// Custom networks: define your own CNN as a JSON spec, compile it,
// execute it on the engine (including the classifier), and read the
// measurements — the downstream-user workflow.
//
//	go run ./examples/custom
package main

import (
	"fmt"
	"log"

	"flexflow"
	"flexflow/internal/metrics"
	"flexflow/internal/nn"
)

const spec = `{
  "name": "digits",
  "input": {"maps": 1, "size": 20},
  "layers": [
    {"type": "conv", "name": "C1", "m": 4, "k": 5},
    {"type": "pool", "p": 2},
    {"type": "conv", "name": "C2", "m": 8, "k": 3},
    {"type": "fc", "name": "F1", "out": 10}
  ]
}`

func main() {
	log.SetFlags(0)

	// Parse the spec; chained shapes (input-map counts, output sizes,
	// the classifier width) are inferred.
	nw, err := nn.ParseJSON([]byte(spec))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parsed %q: %d layers, %d conv ops total\n\n", nw.Name, len(nw.Layers), nw.TotalConvOps())

	// Compile: the Section 5 workload analyzer picks unrolling factors
	// per layer, coupled so each layer writes its outputs in the next
	// layer's buffer layout.
	prog, err := flexflow.Compile(nw, 8)
	if err != nil {
		log.Fatal(err)
	}
	tb := metrics.NewTable("compiled plan (8x8 engine)", "Layer", "Factors", "Style", "U_t")
	for _, lp := range prog.Plans {
		tb.Add(lp.Layer.Name, lp.Factors.String(), lp.Factors.Style(), metrics.Pct(lp.Utilization))
	}
	fmt.Println(tb)

	// Execute end to end — conv layers on the PE array, pooling on the
	// 1-D pooling unit, the classifier as a 1×1 CONV — and check
	// against the software reference.
	input := flexflow.RandomInput(nw, 1)
	kernels := flexflow.RandomKernels(nw, 2)
	fcIn := 8 * 6 * 6 // C2: 8 maps of 6×6
	weights := make([]flexflow.Word, fcIn*10)
	for i := range weights {
		weights[i] = flexflow.Word(int16(i%41) - 20)
	}

	exec, err := flexflow.Execute(nw, input, kernels, 8, weights)
	if err != nil {
		log.Fatal(err)
	}
	ref, err := flexflow.Reference(nw, input, kernels, weights)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("executed in %d cycles (%d in pooling); 10-way classifier output bit-exact: %v\n",
		exec.Cycles(), exec.PoolCycles, exec.Output.Equal(ref))

	// The same spec can round-trip back to JSON for storage.
	data, err := nn.ToJSON(nw)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncanonical spec (%d bytes):\n%s\n", len(data), data)
}
