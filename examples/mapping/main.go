// Mapping DSL: express a dataflow as a declarative spec, lower it,
// and run it — first analytically, then functionally.
//
//	go run ./examples/mapping
//
// The example parses a hand-written mapping (the compact text form of
// DESIGN.md §11) that pins an unrolling-factor vector onto the
// FlexFlow geometry, lowers it through the analytic interpreter, and
// then lowers the same spec onto the real simulator to prove the
// mapping is not just a cost model: the functional engine computes the
// layer bit-exactly and reproduces the interpreter's counters. It ends
// by comparing the hand mapping against the preset auto-factor spec —
// the design-space question cmd/flextune answers at scale.
package main

import (
	"fmt"
	"log"

	"flexflow"
	"flexflow/internal/metrics"
	"flexflow/internal/tensor"
)

// A complete mapping in the compact text DSL: one header block, one
// directive per loop dimension in the dataflow's nest order. The
// factor= values pin the paper's T vector; factor=auto would let the
// engine's chooser pick instead.
const handMapping = `
# FlexFlow geometry, hand-pinned unrolling factors.
name Hand-Tuned
dataflow flexflow
array 4x4
repl 1
store neuron=128 kernel=128
buffer 16384
opt ra rs ipdr
spatial N factor=1
spatial M factor=2
spatial R factor=1
spatial C factor=2
spatial I factor=1
spatial J factor=4
`

func main() {
	log.SetFlags(0)

	spec, err := flexflow.ParseMappingSpec([]byte(handMapping))
	if err != nil {
		log.Fatal(err)
	}

	// The paper's Section 4 running example layer.
	layer := flexflow.ConvLayer{Name: "C1", M: 2, N: 1, S: 10, K: 4}

	// Lower the spec onto the analytic interpreter: a pure cost model.
	analytic, err := flexflow.LowerSpec(spec)
	if err != nil {
		log.Fatal(err)
	}
	predicted := analytic.Model(layer)

	// Lower the same spec onto the functional engine and execute the
	// layer value-by-value against the golden software convolution.
	engine, err := flexflow.NewSpecEngine(spec)
	if err != nil {
		log.Fatal(err)
	}
	in := tensor.NewMap3(layer.N, layer.InSize(), layer.InSize())
	in.FillPattern(42)
	kernels := tensor.NewKernel4(layer.M, layer.N, layer.K)
	kernels.FillPattern(43)
	golden := tensor.Conv(in, kernels)
	out, measured, err := engine.Simulate(layer, in, kernels)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("spec %q lowered onto %s (%d PEs)\n", spec.Name, engine.Name(), engine.PEs())
	fmt.Printf("functional output correct: %v\n", out.Equal(golden))
	fmt.Printf("predicted %d cycles, measured %d — model and machine agree bit-for-bit: %v\n\n",
		predicted.Cycles, measured.Cycles, predicted.Cycles == measured.Cycles)

	// The same geometry with auto factors: the engine's own chooser.
	preset, err := flexflow.PresetSpec(flexflow.FlexFlow, 4, nil)
	if err != nil {
		log.Fatal(err)
	}
	auto, err := flexflow.LowerSpec(preset)
	if err != nil {
		log.Fatal(err)
	}
	chosen := auto.Model(layer)

	tb := metrics.NewTable(
		fmt.Sprintf("layer %s: hand mapping vs auto factors on the same 4x4 array", layer),
		"Mapping", "Factors", "Cycles", "Utilization", "Buf->PE words")
	tb.Add(spec.Name, predicted.Factors.String(),
		fmt.Sprintf("%d", predicted.Cycles), metrics.Pct(predicted.Utilization()),
		fmt.Sprintf("%d", predicted.DataVolume()))
	tb.Add(preset.Name, chosen.Factors.String(),
		fmt.Sprintf("%d", chosen.Cycles), metrics.Pct(chosen.Utilization()),
		fmt.Sprintf("%d", chosen.DataVolume()))
	fmt.Print(tb)
	fmt.Println("\nEvery factor assignment is one point in the mapping space;")
	fmt.Println("cmd/flextune beam-searches that space per layer and commits the best.")
}
