// Scalability: the paper's Figure 19 study as a runnable walk-through.
//
//	go run ./examples/scalability
//
// Sweeps the computing-engine scale from 8×8 to 64×64 PEs on AlexNet
// and reports how each architecture's utilization, power and area
// respond. The rigid baselines collapse as the array outgrows the
// layers' parallelism; FlexFlow re-mixes feature-map, neuron and
// synapse parallelism at every scale and stays utilized.
package main

import (
	"fmt"
	"log"

	"flexflow"
	"flexflow/internal/metrics"
)

func main() {
	log.SetFlags(0)

	nw, err := flexflow.Workload("AlexNet")
	if err != nil {
		log.Fatal(err)
	}

	scales := []int{8, 16, 32, 64}
	util := metrics.NewTable("utilization vs engine scale (AlexNet)",
		"Scale", "Systolic", "2D-Mapping", "Tiling", "FlexFlow")
	gops := metrics.NewTable("performance vs engine scale, GOPS @ 1 GHz",
		"Scale", "Systolic", "2D-Mapping", "Tiling", "FlexFlow")
	area := metrics.NewTable("area vs engine scale, mm²",
		"Scale", "Systolic", "2D-Mapping", "Tiling", "FlexFlow")

	for _, s := range scales {
		uRow := []string{fmt.Sprintf("%dx%d", s, s)}
		gRow := []string{fmt.Sprintf("%dx%d", s, s)}
		aRow := []string{fmt.Sprintf("%dx%d", s, s)}
		for _, a := range flexflow.Arches() {
			engine, err := flexflow.NewEngine(a, s, nw)
			if err != nil {
				log.Fatal(err)
			}
			run, err := flexflow.Run(engine, nw)
			if err != nil {
				log.Fatal(err)
			}
			uRow = append(uRow, metrics.Pct(run.Utilization()))
			gRow = append(gRow, fmt.Sprintf("%.0f", run.GOPS(flexflow.ClockHz)))
			aRow = append(aRow, fmt.Sprintf("%.1f", flexflow.Area(a, engine.PEs())))
		}
		util.Add(uRow...)
		gops.Add(gRow...)
		area.Add(aRow...)
	}
	fmt.Println(util)
	fmt.Println(gops)
	fmt.Println(area)
	fmt.Println("Scaling up only helps an architecture that can keep its PEs fed:")
	fmt.Println("FlexFlow's utilization holds while the baselines' collapses (Fig. 19).")
}
