// LeNet-5 end to end: the workload the paper's Figure 1 motivation is
// built on.
//
//	go run ./examples/lenet
//
// Part 1 executes LeNet-5's CONV/POOL pipeline functionally through
// the FlexFlow engine (compiled by the Section 5 workload analyzer,
// pooled by the 1-D pooling unit) and verifies the final feature maps
// against the pure-software reference.
//
// Part 2 reproduces the Figure 1 story: how much of each rigid
// baseline's nominal GOPS LeNet-5 actually achieves, next to FlexFlow.
package main

import (
	"fmt"
	"log"

	"flexflow"
	"flexflow/internal/metrics"
)

func main() {
	log.SetFlags(0)

	nw, err := flexflow.Workload("LeNet-5")
	if err != nil {
		log.Fatal(err)
	}

	// --- Part 1: functional execution on the FlexFlow engine ---
	input := flexflow.RandomInput(nw, 7)
	kernels := flexflow.RandomKernels(nw, 8)

	exec, err := flexflow.Execute(nw, input, kernels, 16)
	if err != nil {
		log.Fatal(err)
	}
	ref, err := flexflow.Reference(nw, input, kernels)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("LeNet-5 executed on a 16x16 FlexFlow engine: %d conv cycles + %d pool cycles\n",
		exec.Cycles()-exec.PoolCycles, exec.PoolCycles)
	fmt.Printf("final feature maps: %d@%dx%d, bit-exact vs software reference: %v\n\n",
		exec.Output.N, exec.Output.H, exec.Output.W, exec.Output.Equal(ref))

	tb := metrics.NewTable("per-layer measurements (functional simulation)",
		"Layer", "Factors", "Cycles", "Utilization", "GOPS")
	for _, l := range exec.Layers {
		tb.Add(l.Layer.Name, l.Factors.String(),
			fmt.Sprintf("%d", l.Cycles),
			metrics.Pct(l.Utilization()),
			fmt.Sprintf("%.1f", l.GOPS(flexflow.ClockHz)))
	}
	fmt.Println(tb)

	// --- Part 2: the Figure 1 motivation ---
	tb2 := metrics.NewTable("achievable vs nominal performance on LeNet-5 (Fig. 1)",
		"Architecture", "Nominal GOPS", "Achieved GOPS", "Achieved/Nominal")
	for _, a := range flexflow.Arches() {
		engine, err := flexflow.NewEngine(a, 16, nw)
		if err != nil {
			log.Fatal(err)
		}
		run, err := flexflow.Run(engine, nw)
		if err != nil {
			log.Fatal(err)
		}
		nominal := 2 * float64(engine.PEs())
		achieved := run.GOPS(flexflow.ClockHz)
		tb2.Add(engine.Name(),
			fmt.Sprintf("%.0f", nominal),
			fmt.Sprintf("%.1f", achieved),
			metrics.Pct(achieved/nominal))
	}
	fmt.Print(tb2)
	fmt.Println("\nThe rigid baselines deliver a fraction of their nominal GOPS;")
	fmt.Println("FlexFlow's complementary parallelism closes most of the gap.")
}
