// Compiler walk-through: how the Section 5 workload analyzer picks
// unrolling factors, and what the IADP inter-layer coupling costs.
//
//	go run ./examples/compiler
//
// For each small workload it prints the coupled plan (one layer's
// ⟨T_m,T_r,T_c⟩ becomes the next layer's ⟨T_n,T_i,T_j⟩ so outputs are
// written directly in the next layer's buffer layout) next to the
// per-layer optimum, then emits the LeNet-5 assembly program and
// parses it back through the instruction-decoder front end.
package main

import (
	"fmt"
	"log"

	"flexflow"
	"flexflow/internal/compiler"
	"flexflow/internal/metrics"
)

func main() {
	log.SetFlags(0)

	for _, name := range []string{"PV", "FR", "LeNet-5", "HG"} {
		nw, err := flexflow.Workload(name)
		if err != nil {
			log.Fatal(err)
		}
		coupled, err := flexflow.Compile(nw, 16)
		if err != nil {
			log.Fatal(err)
		}
		free, err := flexflow.CompileUncoupled(nw, 16)
		if err != nil {
			log.Fatal(err)
		}

		tb := metrics.NewTable(fmt.Sprintf("%s at 16x16: coupled plan vs per-layer optimum", name),
			"Layer", "Coupled factors", "U_t", "Uncoupled factors", "U_t", "Coupling cost")
		for i, lp := range coupled.Plans {
			fp := free.Plans[i]
			tb.Add(lp.Layer.Name,
				lp.Factors.String(), metrics.Pct(lp.Utilization),
				fp.Factors.String(), metrics.Pct(fp.Utilization),
				metrics.Pct(fp.Utilization-lp.Utilization))
		}
		fmt.Println(tb)
	}

	nw, _ := flexflow.Workload("LeNet-5")
	prog, err := flexflow.Compile(nw, 16)
	if err != nil {
		log.Fatal(err)
	}
	asm := prog.Assembly()
	fmt.Println("LeNet-5 assembly program:")
	fmt.Println(asm)

	parsed, err := compiler.ParseAssembly(asm)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("decoder front end parsed %d layer configurations back, factors preserved: %v\n",
		len(parsed.Plans), parsed.Plans[0].Factors == prog.Plans[0].Factors)
}
