package flexflow

// The ModeAnalytic parity contract (DESIGN.md §10): wherever the
// analytic fast path claims a counter, the cycle-accurate simulators
// are the oracle. These tests pin that contract on the full Table 1
// workload set across all five engines — through the shape-keyed
// cache, so the memoized path (not just the direct Model call) is what
// gets certified — and end to end on the chaining workloads, where the
// analytic Exec walk must reproduce the simulated run's counters and
// pool cycles bit for bit.

import (
	"reflect"
	"testing"

	"flexflow/internal/arch"
	"flexflow/internal/core"
	"flexflow/internal/mapping2d"
	"flexflow/internal/nn"
	"flexflow/internal/pipeline"
	"flexflow/internal/rowstat"
	"flexflow/internal/systolic"
	"flexflow/internal/tensor"
	"flexflow/internal/tiling"
)

// parityEngines declares, per engine, which counters its Model
// guarantees against Simulate (the same lists as the pipeline's
// randomized parity test).
var parityEngines = []struct {
	name     string
	build    func() arch.Engine
	counters []string
}{
	{"FlexFlow", func() arch.Engine { return core.New(4) },
		[]string{"Cycles", "MACs", "NeuronLoads", "NeuronStores", "KernelLoads",
			"LocalReads", "LocalWrites", "DRAMReads"}},
	{"Systolic", func() arch.Engine { return systolic.New(4, 3) },
		[]string{"Cycles", "MACs", "NeuronLoads", "NeuronStores", "KernelLoads", "InterPEMoves"}},
	{"2D-Mapping", func() arch.Engine { return mapping2d.New(4) },
		[]string{"Cycles", "NeuronLoads", "KernelLoads", "InterPEMoves", "NeuronStores"}},
	{"Tiling", func() arch.Engine { return tiling.New(4, 3) },
		[]string{"Cycles", "MACs", "NeuronLoads", "NeuronStores", "KernelLoads", "LocalReads"}},
	{"Row-Stationary", func() arch.Engine { return rowstat.New(6, 5) },
		[]string{"Cycles", "MACs", "NeuronLoads", "NeuronStores", "KernelLoads", "InterPEMoves"}},
}

// layerCounter reads one named counter off a LayerResult.
func layerCounter(t *testing.T, lr LayerResult, name string) int64 {
	t.Helper()
	switch name {
	case "Cycles":
		return lr.Cycles
	case "MACs":
		return lr.MACs
	case "NeuronLoads":
		return lr.NeuronLoads
	case "NeuronStores":
		return lr.NeuronStores
	case "KernelLoads":
		return lr.KernelLoads
	case "LocalReads":
		return lr.LocalReads
	case "LocalWrites":
		return lr.LocalWrites
	case "InterPEMoves":
		return lr.InterPEMoves
	case "DRAMReads":
		return lr.DRAMReads
	}
	t.Fatalf("unknown counter %s", name)
	return 0
}

// shrinkForSim caps a Table 1 layer to a cycle-simulable size while
// preserving its kernel geometry and stride — the shape features the
// analytic models branch on. The mapping is deterministic, so the
// parity set is stable across runs.
func shrinkForSim(l nn.ConvLayer) nn.ConvLayer {
	s := l
	if s.M > 6 {
		s.M = 6
	}
	if s.N > 4 {
		s.N = 4
	}
	if s.S > 8 {
		s.S = 8
	}
	return s
}

// TestAnalyticParityTable1 is the cross-engine parity gate of the
// tentpole: for every CONV layer of every Table 1 workload (plus the
// paper's worked Example), on every engine that accepts the layer, the
// memoized analytic result — a cache hit, not just a direct Model call
// — must agree exactly with the cycle-accurate simulator on the
// engine's guaranteed counter set. Layers are deterministically shrunk
// so the simulators stay fast; kernel geometry and stride survive the
// shrink.
func TestAnalyticParityTable1(t *testing.T) {
	nws := Workloads()
	if ex, err := Workload("Example"); err == nil {
		nws = append(nws, ex)
	}
	if len(nws) < 6 {
		t.Fatalf("Table 1 set too small: %d workloads", len(nws))
	}
	for _, tc := range parityEngines {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			e := tc.build()
			cache := NewLayerCache(256)
			checked := 0
			for _, nw := range nws {
				for _, full := range nw.ConvLayers() {
					l := shrinkForSim(full)
					if err := arch.CheckLayers(e, []nn.ConvLayer{l}); err != nil {
						continue // engine rejects the shape (e.g. stride on a rigid baseline)
					}
					in := tensor.NewMap3(l.N, l.InSize(), l.InSize())
					in.FillPattern(7)
					k := tensor.NewKernel4(l.M, l.N, l.K)
					k.FillPattern(8)
					_, sim, err := pipeline.RunLayer(e, pipeline.LayerJob{Layer: l, Input: in, Kernel: k})
					if err != nil {
						t.Fatalf("%s %s: simulate: %v", nw.Name, l.Name, err)
					}
					// Prime the cache, then assert on the hit.
					if _, _, err := pipeline.RunLayer(e, pipeline.LayerJob{Layer: l, Cache: cache}); err != nil {
						t.Fatalf("%s %s: model: %v", nw.Name, l.Name, err)
					}
					_, hit, err := pipeline.RunLayer(e, pipeline.LayerJob{Layer: l, Cache: cache})
					if err != nil {
						t.Fatalf("%s %s: cached model: %v", nw.Name, l.Name, err)
					}
					for _, name := range tc.counters {
						if s, m := layerCounter(t, sim, name), layerCounter(t, hit, name); s != m {
							t.Errorf("%s %s: %s sim=%d analytic=%d", nw.Name, l.Name, name, s, m)
						}
					}
					checked++
				}
			}
			if checked == 0 {
				t.Fatal("no layer was checked")
			}
			if s := cache.Stats(); s.Hits == 0 {
				t.Fatalf("parity never exercised the cache-hit path: %+v", s)
			}
		})
	}
}

// TestAnalyticExecMatchesSimulatedExec pins the end-to-end contract on
// the chaining workloads: the whole-network analytic walk must agree
// with the functional cycle-level run on every per-layer counter set
// and on the pooling unit's cycles, while computing no output.
func TestAnalyticExecMatchesSimulatedExec(t *testing.T) {
	for _, name := range []string{"Example", "LeNet-5"} {
		nw, err := Workload(name)
		if err != nil {
			t.Fatal(err)
		}
		kernels := RandomKernels(nw, 3)
		input := RandomInput(nw, 4)
		simRes, err := ExecuteOpts(nw, input, kernels, 8, Options{})
		if err != nil {
			t.Fatalf("%s simulate: %v", name, err)
		}
		cache := NewLayerCache(64)
		for round := 0; round < 2; round++ { // round 1 answers from the cache
			anaRes, err := ExecuteOpts(nw, nil, nil, 8, Options{Mode: ModeAnalytic, Cache: cache})
			if err != nil {
				t.Fatalf("%s analytic round %d: %v", name, round, err)
			}
			if anaRes.Output != nil {
				t.Fatalf("%s: analytic run produced feature maps", name)
			}
			if len(anaRes.Layers) != len(simRes.Layers) {
				t.Fatalf("%s: %d analytic layers vs %d simulated", name, len(anaRes.Layers), len(simRes.Layers))
			}
			for i := range simRes.Layers {
				if !reflect.DeepEqual(simRes.Layers[i], anaRes.Layers[i]) {
					t.Errorf("%s layer %d round %d:\nsim %+v\nana %+v",
						name, i, round, simRes.Layers[i], anaRes.Layers[i])
				}
			}
			if simRes.PoolCycles != anaRes.PoolCycles {
				t.Errorf("%s round %d: pool cycles sim=%d ana=%d", name, round, simRes.PoolCycles, anaRes.PoolCycles)
			}
			if simRes.Cycles() != anaRes.Cycles() {
				t.Errorf("%s round %d: total cycles sim=%d ana=%d", name, round, simRes.Cycles(), anaRes.Cycles())
			}
		}
		if s := cache.Stats(); s.Hits == 0 || s.Misses == 0 {
			t.Fatalf("%s: cache rounds did not exercise miss+hit: %+v", name, s)
		}
	}
}
