package flexflow_test

// Pins for the committed preset mapping specs: the five dataflows as
// DSL text under results/specs/, the declarative record of what each
// engine is. TestPresetSpecParity (internal/mapping) proves these
// specs lower bit-for-bit to the pre-refactor engines; this test
// proves the committed text IS those specs.

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"flexflow"
)

var writeSpecs = flag.Bool("write-specs", false, "rewrite results/specs/*.spec from the code's presets")

// presetSpecFiles maps each architecture to its committed spec file,
// all at the paper's 16×16 scale (Systolic at its default 6×6 K0).
func presetSpecFiles() map[flexflow.Arch]string {
	return map[flexflow.Arch]string{
		flexflow.FlexFlow:      "flexflow.spec",
		flexflow.Systolic:      "systolic.spec",
		flexflow.Mapping2D:     "mapping2d.spec",
		flexflow.Tiling:        "tiling.spec",
		flexflow.RowStationary: "rowstat.spec",
	}
}

// TestCommittedPresetSpecs regenerates each preset's canonical text
// and byte-compares it against results/specs/. A drifted file means
// the committed dataflow description no longer matches the code;
// regenerate with `go test -run TestCommittedPresetSpecs -write-specs`.
func TestCommittedPresetSpecs(t *testing.T) {
	for a, file := range presetSpecFiles() {
		spec, err := flexflow.PresetSpec(a, 16, nil)
		if err != nil {
			t.Fatalf("%s: %v", a, err)
		}
		want := spec.Text()

		// The committed text must parse back to the identical spec
		// (the DSL round-trip, on the committed artifact itself).
		rt, err := flexflow.ParseMappingSpec([]byte(want))
		if err != nil || rt != spec {
			t.Errorf("%s: canonical text does not round-trip: %v", a, err)
		}

		path := filepath.Join("results", "specs", file)
		if *writeSpecs {
			if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, []byte(want), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		committed, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: committed preset spec missing (regenerate with -write-specs): %v", a, err)
		}
		if string(committed) != want {
			t.Errorf("%s: %s is stale; regenerate with `go test -run TestCommittedPresetSpecs -write-specs .`\ncommitted:\n%s\nwant:\n%s",
				a, path, committed, want)
		}
	}
	if *writeSpecs {
		fmt.Println("wrote results/specs/*.spec")
	}
}
