package flexflow

// Public surface of the fault-injection subsystem (internal/fault):
// type aliases and thin constructors, so campaigns can be scripted
// against the facade without importing internal packages.

import "flexflow/internal/fault"

// Re-exported fault-injection types.
type (
	// FaultPlan is a deterministic list of fault events to inject.
	FaultPlan = fault.Plan
	// FaultEvent is one fault: a site, a model, and where/when it hits.
	FaultEvent = fault.Event
	// FaultBounds bounds the random coordinates RandomFaultPlan draws.
	FaultBounds = fault.Bounds
	// FaultInjector matches events against simulation state; install it
	// on a FlexFlow engine (or pass a plan via Options).
	FaultInjector = fault.Injector
	// FaultSite names a hardware structure faults can hit.
	FaultSite = fault.Site
	// FaultModel names how a fault corrupts its site.
	FaultModel = fault.Model
)

// The fault sites (FaultSite values).
const (
	SiteNeuronStore   = fault.SiteNeuronStore
	SiteKernelStore   = fault.SiteKernelStore
	SiteBankRead      = fault.SiteBankRead
	SiteMAC           = fault.SiteMAC
	SiteBusVertical   = fault.SiteBusVertical
	SiteBusHorizontal = fault.SiteBusHorizontal
	SiteDRAMNeuron    = fault.SiteDRAMNeuron
	SiteDRAMKernel    = fault.SiteDRAMKernel
)

// The fault models (FaultModel values).
const (
	FaultBitFlip     = fault.BitFlip
	FaultStuckAtZero = fault.StuckAtZero
	FaultDrop        = fault.Drop
	FaultDuplicate   = fault.Duplicate
)

// RandomFaultPlan draws n random single-fault events within the given
// bounds, deterministically from the seed: the same (seed, n, bounds)
// always produces the same plan, which is what makes campaigns
// reproducible.
func RandomFaultPlan(seed uint64, n int, b FaultBounds) *FaultPlan {
	return fault.RandomPlan(seed, n, b)
}

// NewFaultInjector arms a plan. A nil plan (or nil injector) is inert.
func NewFaultInjector(p *FaultPlan) *FaultInjector { return fault.NewInjector(p) }

// MixSeed derives an independent deterministic seed stream from a
// campaign seed and lane indices (layer number, trial number, ...), so
// every trial of a campaign gets its own reproducible randomness.
func MixSeed(seed uint64, lanes ...uint64) uint64 { return fault.Mix(seed, lanes...) }
