package flexflow

import (
	"fmt"

	"flexflow/internal/core"
	"flexflow/internal/mapping"
	"flexflow/internal/mapping2d"
	"flexflow/internal/rowstat"
	"flexflow/internal/systolic"
	"flexflow/internal/tiling"
)

// MappingSpec is a declarative dataflow mapping: per-loop-dimension
// directives (spatial vs temporal, unroll factors, tile sizes) over an
// engine geometry. Specs parse from JSON or the compact text form (see
// ParseMappingSpec), validate against the geometry, and lower either
// onto the analytic interpreter (LowerSpec) or onto a functional
// engine package (NewSpecEngine).
type MappingSpec = mapping.Spec

// ParseMappingSpec parses a spec from either wire form — JSON when the
// input starts with '{', the compact text DSL otherwise — and
// validates it. The accepted grammar is documented in DESIGN.md §11.
func ParseMappingSpec(src []byte) (MappingSpec, error) {
	var s MappingSpec
	err := guard(func() error {
		var err error
		s, err = mapping.Parse(src)
		if err != nil {
			return fmt.Errorf("%w: %v", ErrInvalidConfig, err)
		}
		return nil
	})
	if err != nil {
		return MappingSpec{}, err
	}
	return s, nil
}

// PresetSpec returns the named architecture's mapping spec at the
// given scale — the same geometry NewEngine builds, expressed
// declaratively. When nw is non-nil the Systolic preset picks its
// kernel-matched array size, as NewEngine does. Lowering the preset
// through LowerSpec reproduces the corresponding engine's analytic
// model bit-for-bit (the FlexFlow preset with auto factors uses the
// per-layer default chooser; NewEngine's network-coupled compiler
// chooser is a property of the engine, not the dataflow).
func PresetSpec(a Arch, scale int, nw *Network) (MappingSpec, error) {
	var s MappingSpec
	err := guard(func() error {
		if scale <= 0 {
			return invalid("scale must be positive, got %d", scale)
		}
		switch a {
		case Systolic:
			k0 := 6
			if nw != nil && nw.Name == "AlexNet" {
				k0 = 11
			}
			arrays := scale * scale / (k0 * k0)
			if arrays < 1 {
				arrays = 1
			}
			s = mapping.PresetSystolic(k0, arrays)
		case Mapping2D:
			s = mapping.PresetMapping2D(scale)
		case Tiling:
			s = mapping.PresetTiling(scale, scale)
		case RowStationary:
			s = mapping.PresetRowStationary(scale, scale)
		case FlexFlow:
			s = mapping.PresetFlexFlow(scale)
		default:
			return invalid("unknown architecture %q", a)
		}
		return nil
	})
	if err != nil {
		return MappingSpec{}, err
	}
	return s, nil
}

// LowerSpec lowers a mapping spec onto the analytic interpreter: an
// Engine whose Model evaluates the spec's dataflow rule. The result is
// analytic-only (Simulate returns an error); use NewSpecEngine for a
// functional value-moving engine with the same analytic model.
func LowerSpec(s MappingSpec) (Engine, error) {
	var eng Engine
	err := guard(func() error {
		e, err := mapping.Lower(s)
		if err != nil {
			return fmt.Errorf("%w: %v", ErrInvalidConfig, err)
		}
		eng = e
		return nil
	})
	if err != nil {
		return nil, err
	}
	return eng, nil
}

// NewSpecEngine lowers a mapping spec onto the engine package that
// implements its dataflow, yielding a fully functional engine
// (cycle-level Simulate included) whose analytic Model agrees with
// LowerSpec bit-for-bit. A flexflow spec with a fixed factor vector
// installs that vector as the engine's chooser.
func NewSpecEngine(s MappingSpec) (Engine, error) {
	var eng Engine
	err := guard(func() error {
		if err := s.Validate(); err != nil {
			return fmt.Errorf("%w: %v", ErrInvalidConfig, err)
		}
		g := s.Geom
		switch s.Dataflow {
		case mapping.DataflowFlexFlow:
			if s.NTile() != 0 {
				return invalid("spec %q fixes an N tile; the functional engine schedules chunks itself — use LowerSpec for the analytic model", s.Name)
			}
			e := core.New(g.Rows)
			e.NeuronStoreWords = g.NeuronStoreWords
			e.KernelStoreWords = g.KernelStoreWords
			e.BufferWords = g.BufferWords
			e.RA, e.RS, e.IPDR = s.RA, s.RS, s.IPDR
			if t := s.FixedFactors(); t.Tm > 0 {
				e.Chooser = func(l ConvLayer) T { return t }
			}
			eng = e
		case mapping.DataflowSystolic:
			e := systolic.New(g.Rows, g.Repl)
			e.BufferWords = g.BufferWords
			eng = e
		case mapping.DataflowMapping2D:
			e := mapping2d.New(g.Rows)
			e.BufferWords = g.BufferWords
			eng = e
		case mapping.DataflowTiling:
			e := tiling.New(g.Rows, g.Cols)
			e.BufferWords = g.BufferWords
			eng = e
		default: // mapping.DataflowRowStat
			e := rowstat.New(g.Rows, g.Cols)
			e.BufferWords = g.BufferWords
			eng = e
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return eng, nil
}
