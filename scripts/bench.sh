#!/usr/bin/env sh
# bench.sh — run the pipeline scheduler benchmarks and record the
# 1-vs-4-worker throughput, plus bytes/op and allocs/op from
# b.ReportAllocs(), in BENCH_pipeline.json. The allocation columns
# are the runtime counterpart of the static flexlint hotalloc budget:
# the analyzer pins the sites, these numbers show what they cost.
#
# The two benchmarks exercise the pipeline's two fan-outs:
#   BenchmarkRunModel     — layers of VGG-11 across workers (analytic model)
#   BenchmarkExecuteBatch — images of a LeNet-5 batch across workers
#                           (cycle-level simulation; the hot path)
#
# On a multi-core runner BenchmarkExecuteBatch/workers=4 must show
# >= 2x the throughput of workers=1; on a single-CPU machine the
# speedup is physically pinned to ~1x, so the JSON records the CPU
# count alongside the ratio and the gate is only meaningful when
# cpus >= 4. Results (counters, outputs) are bit-identical at every
# worker count — only wall-clock moves.
#
# Usage: scripts/bench.sh [benchtime]   (default 10x)
set -eu
cd "$(dirname "$0")/.."

BENCHTIME="${1:-10x}"
OUT="BENCH_pipeline.json"

RAW="$(go test -run '^$' -bench 'BenchmarkRunModel|BenchmarkExecuteBatch' \
    -benchtime "$BENCHTIME" -count=1 . 2>&1)"
echo "$RAW"

echo "$RAW" | awk -v cpus="$(nproc 2>/dev/null || echo 1)" '
/^Benchmark(RunModel|ExecuteBatch)\// {
    # BenchmarkExecuteBatch/workers=4-8  12  57687487 ns/op  138.7 images/s  1520 B/op  31 allocs/op
    split($1, parts, "/")
    bench = substr(parts[1], 10)            # strip "Benchmark"
    sub(/-[0-9]+$/, "", parts[2])           # strip GOMAXPROCS suffix
    sub(/^workers=/, "", parts[2])
    key = bench "," parts[2]
    ns[key] = $3
    # The benchmarks run with b.ReportAllocs(), so every line carries
    # B/op and allocs/op columns; locate them by unit, not position.
    for (f = 2; f <= NF; f++) {
        if ($f == "B/op")      bytes[key]  = $(f - 1)
        if ($f == "allocs/op") allocs[key] = $(f - 1)
    }
    order[++n] = key
}
END {
    printf "{\n"
    printf "  \"bench\": \"pipeline scheduler, 1 vs N workers\",\n"
    printf "  \"cpus\": %d,\n", cpus
    printf "  \"benchmarks\": [\n"
    for (i = 1; i <= n; i++) {
        split(order[i], kv, ",")
        printf "    {\"name\": \"%s\", \"workers\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}%s\n", \
            kv[1], kv[2], ns[order[i]], bytes[order[i]] + 0, allocs[order[i]] + 0, (i < n ? "," : "")
    }
    printf "  ],\n"
    sm = ns["RunModel,1"]     ; sp = ns["RunModel,4"]
    bm = ns["ExecuteBatch,1"] ; bp = ns["ExecuteBatch,4"]
    printf "  \"speedup_at_4_workers\": {\n"
    printf "    \"RunModel\": %.2f,\n",     (sp > 0 ? sm / sp : 0)
    printf "    \"ExecuteBatch\": %.2f\n",  (bp > 0 ? bm / bp : 0)
    printf "  },\n"
    ok = (bp > 0 && bm / bp >= 2.0)
    printf "  \"gate_2x_at_4_workers\": %s,\n", (ok ? "true" : "false")
    printf "  \"gate_note\": \"%s\"\n", (cpus >= 4 ? "multi-core runner: gate is binding" : \
        "single-core runner (" cpus " cpu): parallel speedup is physically capped at 1x; gate is advisory")
    printf "}\n"
}' > "$OUT"

echo "wrote $OUT"
